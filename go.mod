module umi

go 1.22
