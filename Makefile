GO ?= go
FUZZTIME ?= 5s

# The perf-trajectory micro-benchmarks: the hot paths every simulated
# reference crosses. bench-json pins -benchtime/-count so BENCH_umi.json
# baselines are comparable run to run on one machine.
BENCH_HOT = ^Benchmark(CacheAccess|AnalyzeProfile|PipelineEndToEnd|WireEncode|WireEncodeV2|WireDecode|WireDecodeV2|SampledAccess|OverheadAttribution)$$
BENCH_TIME ?= 300ms
BENCH_COUNT ?= 3

.PHONY: build test check bench bench-json bench-compare fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: static vetting, the zero-allocation tests in
# a plain pass (they are !race — the detector's instrumentation skews
# allocation counts), then the full suite under the race detector (the
# analyzer pipeline and harness fan-out are concurrent; -race is what
# validates their synchronization). The harness package runs every
# experiment driver; under the race detector's ~10x slowdown that outgrows
# go test's default 10m per-package timeout.
check:
	$(GO) vet ./...
	$(GO) test -run ZeroAllocs ./internal/cache ./internal/umi
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json refreshes the committed perf baseline from the hot-path
# micro-benchmarks. Run it on a quiet machine when a PR moves ns/ref.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_HOT)' -benchmem \
		-benchtime $(BENCH_TIME) -count $(BENCH_COUNT) . \
		| $(GO) run ./cmd/benchjson -out BENCH_umi.json

# bench-compare measures the same suite and diffs it against the committed
# baseline, warning (never failing) past a 15% headline regression.
bench-compare:
	$(GO) test -run '^$$' -bench '$(BENCH_HOT)' -benchmem \
		-benchtime $(BENCH_TIME) -count $(BENCH_COUNT) . \
		| $(GO) run ./cmd/benchjson -compare BENCH_umi.json -warn-pct 15

# fuzz gives each fuzz target a short randomized run (FUZZTIME each; the
# corpus-replay cases also run under plain `make test`). Go allows one
# -fuzz target per invocation, hence one line per fuzzer.
fuzz:
	$(GO) test ./internal/trace -run FuzzReader -fuzz FuzzReader -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cache -run FuzzCacheConfig -fuzz FuzzCacheConfig -fuzztime $(FUZZTIME)
	$(GO) test ./internal/umi -run FuzzAnalyzerProfile -fuzz FuzzAnalyzerProfile -fuzztime $(FUZZTIME)
	$(GO) test ./internal/umi -run FuzzWindowSummary -fuzz FuzzWindowSummary -fuzztime $(FUZZTIME)
	$(GO) test ./internal/umi -run FuzzSamplerConfig -fuzz FuzzSamplerConfig -fuzztime $(FUZZTIME)
	$(GO) test ./internal/umi -run FuzzReservoirProfile -fuzz FuzzReservoirProfile -fuzztime $(FUZZTIME)
	$(GO) test ./internal/introspect -run FuzzSessionConfig -fuzz FuzzSessionConfig -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run FuzzWireDecode -fuzz FuzzWireDecode -fuzztime $(FUZZTIME)
