GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: static vetting plus the full suite under
# the race detector (the analyzer pipeline and harness fan-out are
# concurrent; -race is what validates their synchronization).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
