GO ?= go
FUZZTIME ?= 5s

.PHONY: build test check bench fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: static vetting plus the full suite under
# the race detector (the analyzer pipeline and harness fan-out are
# concurrent; -race is what validates their synchronization). The harness
# package runs every experiment driver; under the race detector's ~10x
# slowdown that outgrows go test's default 10m per-package timeout.
check:
	$(GO) vet ./...
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# fuzz gives each fuzz target a short randomized run (FUZZTIME each; the
# corpus-replay cases also run under plain `make test`). Go allows one
# -fuzz target per invocation, hence one line per fuzzer.
fuzz:
	$(GO) test ./internal/trace -run FuzzReader -fuzz FuzzReader -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cache -run FuzzCacheConfig -fuzz FuzzCacheConfig -fuzztime $(FUZZTIME)
	$(GO) test ./internal/umi -run FuzzAnalyzerProfile -fuzz FuzzAnalyzerProfile -fuzztime $(FUZZTIME)
