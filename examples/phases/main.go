// Phase adaptivity: UMI's sample-based region selector re-instruments
// traces as program phases change (§2: sampling "provides a natural
// mechanism to adapt the introspection according to the various phases of
// the application lifetime"). The program alternates between a streaming
// phase and a resident compute phase; the report shows the same traces
// being re-profiled across phases and both behaviours captured.
//
//	go run ./examples/phases
package main

import (
	"fmt"
	"log"
	"sort"

	"umi/internal/isa"
	"umi/internal/program"
	"umi/pkg/umi"
)

func buildPhased() (*umi.Program, error) {
	b := umi.NewProgram("phased")
	e := b.Block("entry")
	e.MovI(isa.R2, int64(program.HeapBase))
	e.MovI(isa.R5, int64(program.GlobalBase))
	e.MovI(isa.R8, 0)
	e.MovI(isa.R9, 6) // phases
	ph := b.Block("phase")
	ph.MovI(isa.R0, 0)
	ph.MulI(isa.R11, isa.R8, 65536) // fresh stream region per phase

	st := b.Block("streamphase") // cold, strided
	st.Add(isa.R12, isa.R11, isa.R0)
	st.Load(isa.R1, 8, isa.MemIdx(isa.R2, isa.R12, 8, 0))
	st.Add(isa.R7, isa.R7, isa.R1)
	st.AddI(isa.R0, isa.R0, 8)
	st.BrI(isa.CondLT, isa.R0, 65536, "streamphase")

	mid := b.Block("mid")
	mid.MovI(isa.R0, 0)
	res := b.Block("residentphase") // warm, tiny footprint
	res.AndI(isa.R12, isa.R0, 63)
	res.Load(isa.R3, 8, isa.MemIdx(isa.R5, isa.R12, 8, 0))
	res.Add(isa.R7, isa.R7, isa.R3)
	res.Mul(isa.R7, isa.R7, isa.R7)
	res.AddI(isa.R0, isa.R0, 1)
	res.BrI(isa.CondLT, isa.R0, 60_000, "residentphase")

	fin := b.Block("phend")
	fin.AddI(isa.R8, isa.R8, 1)
	fin.Br(isa.CondLT, isa.R8, isa.R9, "phase")
	b.Block("done").Halt()
	return b.Assemble()
}

func main() {
	prog, err := buildPhased()
	if err != nil {
		log.Fatal(err)
	}
	sess := umi.NewSession(prog, umi.WithSamplePeriod(1500))
	rep, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("phases: 6 alternating stream/compute\n")
	fmt.Printf("traces seen: %d, instrument events: %d (re-instrumentation across phases)\n",
		rep.TracesSeen, rep.InstrumentEvents)
	fmt.Printf("analyzer invocations: %d, profiles: %d\n",
		rep.AnalyzerInvocations, rep.ProfilesCollected)
	if rep.InstrumentEvents <= rep.TracesSeen {
		fmt.Println("note: no re-instrumentation observed (phases too short?)")
	}

	streamPC := prog.Symbols["streamphase"] + 16 // the strided load
	resPC := prog.Symbols["residentphase"] + 16  // the resident load

	var pcs []uint64
	for pc := range rep.OpStats {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	fmt.Println("\nper-operation mini-simulation results:")
	for _, pc := range pcs {
		st := rep.OpStats[pc]
		tag := ""
		switch pc {
		case streamPC:
			tag = "  <- stream-phase load"
		case resPC:
			tag = "  <- resident-phase load"
		}
		fmt.Printf("  %#x: ratio %.2f over %d sampled refs, delinquent=%v%s\n",
			pc, st.MissRatio(), st.Accesses, rep.Delinquent[pc], tag)
	}
}
