// Delinquent-load identification on a pointer-chasing workload: the
// motivating use case of UMI §7. The program walks a linked ring twice —
// once in a cache-hostile random layout, once in a sequential layout — and
// UMI's online introspection tells the two loads apart without any offline
// simulation.
//
//	go run ./examples/delinquent
package main

import (
	"fmt"
	"log"
	"math/rand"

	"umi/internal/isa"
	"umi/internal/program"
	"umi/pkg/umi"
)

const (
	nodes    = 1 << 15 // 32K nodes x 64B = 2 MiB: far beyond the 512 KiB L2
	seqNodes = 128     // packed resident ring: 16 cache lines, warm within a burst
)

func buildProgram() (*umi.Program, error) {
	b := umi.NewProgram("delinquent")

	// Random layout at HeapBase: next pointers form a random Hamiltonian
	// cycle, so every hop lands on a cold line.
	r := rand.New(rand.NewSource(42))
	perm := r.Perm(nodes)
	randWords := make([]uint64, nodes*8)
	for i := 0; i < nodes; i++ {
		randWords[perm[i]*8] = program.HeapBase + uint64(perm[(i+1)%nodes]*64)
	}
	b.AddWords(program.HeapBase, randWords)

	// Packed sequential layout 16 MiB higher: node i is just the next
	// pointer (8 bytes), so a line holds 8 nodes and the tiny ring warms
	// up within a single profiling burst — the cache-friendly
	// counterpart.
	seqBase := program.HeapBase + (16 << 20)
	seqWords := make([]uint64, seqNodes)
	for i := 0; i < seqNodes; i++ {
		seqWords[i] = seqBase + uint64(((i+1)%seqNodes)*8)
	}
	b.AddWords(seqBase, seqWords)

	e := b.Block("entry")
	e.MovI(isa.R1, int64(program.HeapBase))
	e.MovI(isa.R2, int64(seqBase))
	e.MovI(isa.R0, 0)
	e.MovI(isa.R6, 300_000)
	l := b.Block("walk")
	l.Load(isa.R1, 8, isa.Mem(isa.R1, 0)) // random chase: delinquent
	l.Load(isa.R2, 8, isa.Mem(isa.R2, 0)) // sequential chase: mostly L1 hits
	l.AddI(isa.R0, isa.R0, 1)
	l.Br(isa.CondLT, isa.R0, isa.R6, "walk")
	b.Block("done").Halt()
	return b.Assemble()
}

func main() {
	prog, err := buildProgram()
	if err != nil {
		log.Fatal(err)
	}
	chasePC := prog.Symbols["walk"]
	seqPC := chasePC + 16

	sess := umi.NewSession(prog)
	report, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hardware L2 miss ratio: %.2f%%\n", 100*sess.HardwareMissRatio())
	describe := func(name string, pc uint64) {
		st := report.OpStats[pc]
		if st == nil {
			fmt.Printf("%-18s pc %#x: not profiled\n", name, pc)
			return
		}
		fmt.Printf("%-18s pc %#x: simulated miss ratio %.2f, delinquent=%v\n",
			name, pc, st.MissRatio(), report.Delinquent[pc])
	}
	describe("random layout", chasePC)
	describe("sequential layout", seqPC)

	if report.Delinquent[chasePC] && !report.Delinquent[seqPC] {
		fmt.Println("\nUMI separated the two walks online: only the random-layout")
		fmt.Println("chase is delinquent — the signal a runtime optimizer (or a")
		fmt.Println("data-layout pass) needs, at a fraction of full-simulation cost.")
	} else {
		fmt.Println("\nunexpected classification; see the report above")
	}
}
