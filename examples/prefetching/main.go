// Online software prefetching (§8): UMI labels the delinquent strided
// load, discovers its stride, and rewrites the hot trace — while the
// program runs — to prefetch ahead of the access stream. The example runs
// the same workload with and without the optimization and reports the
// speedup and L2 miss reduction.
//
//	go run ./examples/prefetching
package main

import (
	"fmt"
	"log"

	"umi/internal/isa"
	"umi/internal/program"
	"umi/pkg/umi"
)

func buildStencil() (*umi.Program, error) {
	// A 1-D stencil over a 16 MiB array: out[i] = a[i] + a[i+line] with
	// some ALU work per element — the loop is compute-dense enough that
	// a well-placed prefetch hides most of the memory latency.
	b := umi.NewProgram("stencil")
	e := b.Block("entry")
	e.MovI(isa.R2, int64(program.HeapBase))
	e.MovI(isa.R0, 0)
	e.MovI(isa.R6, 2_000_000)
	l := b.Block("loop")
	l.Load(isa.R1, 8, isa.MemIdx(isa.R2, isa.R0, 8, 0))
	l.Load(isa.R3, 8, isa.MemIdx(isa.R2, isa.R0, 8, 64))
	l.Add(isa.R7, isa.R1, isa.R3)
	l.Mul(isa.R7, isa.R7, isa.R7)
	l.AddI(isa.R7, isa.R7, 3)
	l.Mul(isa.R7, isa.R7, isa.R7)
	l.Store(isa.R7, 8, isa.MemIdx(isa.R2, isa.R0, 8, 1<<24))
	l.AddI(isa.R0, isa.R0, 8) // one cache line per iteration
	l.Br(isa.CondLT, isa.R0, isa.R6, "loop")
	b.Block("done").Halt()
	return b.Assemble()
}

func main() {
	prog, err := buildStencil()
	if err != nil {
		log.Fatal(err)
	}

	baseline := umi.NewSession(prog)
	if _, err := baseline.Run(); err != nil {
		log.Fatal(err)
	}

	optimized := umi.NewSession(prog, umi.WithSoftwarePrefetch())
	if _, err := optimized.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("baseline:   %12d cycles, %8d L2 misses\n",
		baseline.TotalCycles(), baseline.HardwareL2Misses())
	fmt.Printf("prefetched: %12d cycles, %8d L2 misses (%d prefetches injected)\n",
		optimized.TotalCycles(), optimized.HardwareL2Misses(),
		optimized.PrefetchesInserted())
	speedup := float64(baseline.TotalCycles()) / float64(optimized.TotalCycles())
	missCut := 1 - float64(optimized.HardwareL2Misses())/float64(baseline.HardwareL2Misses())
	fmt.Printf("\nspeedup %.2fx, L2 misses reduced by %.0f%%\n", speedup, 100*missCut)

	fmt.Println("\nwhat UMI discovered online:")
	rep := optimized.Report()
	for pc := range rep.Delinquent {
		if si, ok := rep.Strides[pc]; ok {
			fmt.Printf("  delinquent load at %#x, stride %+d bytes -> prefetch injected\n",
				pc, si.Stride)
		}
	}
}
