// What-if exploration (§1.4: UMI "can be used to quickly evaluate
// speculative optimizations that consider multiple what-if scenarios").
// One profiled run answers, online, a question that normally needs a
// simulator sweep: is this program's working set pressure relieved by a
// bigger cache (capacity-bound), or is it insensitive (streaming)?
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"

	"umi/internal/isa"
	"umi/internal/program"
	"umi/pkg/umi"
)

// buildCapacityBound touches a working set of ~1 MiB repeatedly: twice the
// modelled 512 KiB L2, so misses vanish in a 2 MiB what-if cache.
func buildCapacityBound() (*umi.Program, error) {
	b := umi.NewProgram("capacity-bound")
	e := b.Block("entry")
	e.MovI(isa.R2, int64(program.HeapBase))
	e.MovI(isa.R0, 0)
	e.MovI(isa.R6, 4_000_000)
	l := b.Block("loop")
	l.AndI(isa.R12, isa.R0, (1<<17)-1) // wrap inside 1 MiB (2^17 elems x 8B)
	l.Load(isa.R1, 8, isa.MemIdx(isa.R2, isa.R12, 8, 0))
	l.Add(isa.R7, isa.R7, isa.R1)
	l.AddI(isa.R0, isa.R0, 8)
	l.Br(isa.CondLT, isa.R0, isa.R6, "loop")
	b.Block("done").Halt()
	return b.Assemble()
}

func main() {
	prog, err := buildCapacityBound()
	if err != nil {
		log.Fatal(err)
	}

	half := umi.PentiumL2()
	half.Size /= 2
	half.Name = "L2/2"
	double := umi.PentiumL2()
	double.Size *= 2
	double.Name = "L2x2"
	quad := umi.PentiumL2()
	quad.Size *= 4
	quad.Name = "L2x4"

	// Long address profiles: the what-if verdict needs bursts long
	// enough to observe reuse across the 1 MiB working set (the paper's
	// §5/§7.2 observation that profile length is the dominant knob).
	sess := umi.NewSession(prog,
		umi.WithWhatIf(half, umi.PentiumL2(), double, quad),
		umi.WithWorkingSet(),
		umi.WithPatternCensus(),
		umi.WithAddressProfileRows(20_000),
	)
	if _, err := sess.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("what-if cache sweep (from one online profiling run):")
	results := sess.WhatIfResults()
	for _, r := range results {
		fmt.Printf("  %-6s %5d KiB  miss ratio %.3f\n",
			r.Config.Name, r.Config.Size/1024, r.MissRatio)
	}
	fmt.Printf("\nworking set: %v\n", sess.WorkingSet())
	fmt.Printf("%s\n", sess.Patterns().Summary())

	base := results[1].MissRatio // the real L2
	big := results[2].MissRatio  // doubled
	switch {
	case base > 0.05 && big < base/2:
		fmt.Println("\nverdict: capacity-bound — a cache-blocking (tiling) transformation")
		fmt.Println("or a larger cache would eliminate most misses.")
	case base > 0.05:
		fmt.Println("\nverdict: streaming — capacity won't help; prefetching will.")
	default:
		fmt.Println("\nverdict: already cache-friendly.")
	}
}
