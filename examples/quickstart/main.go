// Quickstart: profile a small program with UMI and print what the online
// mini-simulations discovered.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"umi/internal/isa"
	"umi/internal/program"
	"umi/pkg/umi"
)

func main() {
	// Build a guest program: sum a 3 MiB array (streaming, delinquent
	// load) while repeatedly touching a small table (resident load).
	b := umi.NewProgram("quickstart")
	e := b.Block("entry")
	e.MovI(isa.R2, int64(program.HeapBase)) // big array
	e.MovI(isa.R5, int64(program.GlobalBase))
	e.MovI(isa.R0, 0)
	e.MovI(isa.R6, 400_000)
	l := b.Block("loop")
	l.Load(isa.R1, 8, isa.MemIdx(isa.R2, isa.R0, 8, 0)) // streaming: misses
	l.Add(isa.R7, isa.R7, isa.R1)
	l.AndI(isa.R12, isa.R0, 63)
	l.Load(isa.R3, 8, isa.MemIdx(isa.R5, isa.R12, 8, 0)) // resident: hits
	l.Add(isa.R7, isa.R7, isa.R3)
	l.AddI(isa.R0, isa.R0, 8)
	l.Br(isa.CondLT, isa.R0, isa.R6, "loop")
	b.Block("done").Halt()
	prog, err := b.Assemble()
	if err != nil {
		log.Fatal(err)
	}

	// Run it under UMI on the modelled Pentium 4.
	sess := umi.NewSession(prog)
	report, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("guest instructions: %d\n", sess.GuestInstructions())
	fmt.Printf("hardware L2 miss ratio: %.2f%%\n", 100*sess.HardwareMissRatio())
	fmt.Printf("UMI mini-simulated ratio: %.2f%% from %d sampled references\n",
		100*report.SimMissRatio, report.SimulatedRefs)
	fmt.Printf("profiled %d of %d candidate memory operations\n",
		report.ProfiledOps, report.CandidateOps)

	fmt.Println("\ndelinquent loads predicted online:")
	for pc := range report.Delinquent {
		line := fmt.Sprintf("  pc %#x", pc)
		if st, ok := report.OpStats[pc]; ok {
			line += fmt.Sprintf("  (simulated miss ratio %.2f)", st.MissRatio())
		}
		if si, ok := report.Strides[pc]; ok {
			line += fmt.Sprintf("  stride %+d bytes", si.Stride)
		}
		fmt.Println(line)
	}
}
