// Package bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks, plus ablation benchmarks for the design
// choices DESIGN.md calls out. Each benchmark runs the corresponding
// harness experiment and reports the headline quantities as custom
// metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation and prints the numbers EXPERIMENTS.md
// records. Individual artifacts: -bench=BenchmarkTable4, etc.
package bench

import (
	"bytes"
	"io"
	"testing"

	"umi/internal/cache"
	"umi/internal/harness"
	"umi/internal/isa"
	"umi/internal/prefetch"
	programpkg "umi/internal/program"
	"umi/internal/rio"
	iumi "umi/internal/umi"
	"umi/internal/vm"
	"umi/internal/wire"
	"umi/internal/workloads"
)

// ---------------------------------------------------------------------
// One benchmark per table.
// ---------------------------------------------------------------------

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Table1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[1].SlowdownPct, "slowdown@10_%")
		b.ReportMetric(res.Rows[len(res.Rows)-1].SlowdownPct, "slowdown@1M_%")
		b.ReportMetric(res.UMISlowPct, "umi_slowdown_%")
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Table3(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgPct, "avg_profiled_%")
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Table4(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.UMINoPF[len(res.UMINoPF)-1].R, "umi_corr_noPF")
		b.ReportMetric(res.UMIPF[len(res.UMIPF)-1].R, "umi_corr_PF")
		b.ReportMetric(res.UMIK7[len(res.UMIK7)-1].R, "umi_corr_K7")
		b.ReportMetric(res.CachegrindNoPF[len(res.CachegrindNoPF)-1].R, "cachegrind_corr")
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Table5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Cells[len(res.Cells)-1].R, "spec2006_corr")
	}
}

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Table6(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.AvgHigh.Recall, "recall_high_%")
		b.ReportMetric(100*res.AvgAll.Recall, "recall_all_%")
		b.ReportMetric(100*res.AvgAll.FalsePositives, "false_pos_%")
		b.ReportMetric(100*res.AvgHigh.PMissCoverage, "coverage_high_%")
	}
}

// ---------------------------------------------------------------------
// One benchmark per figure.
// ---------------------------------------------------------------------

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig2(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GeoRIO, "rio_geomean")
		b.ReportMetric(res.GeoNoS, "umi_nosamp_geomean")
		b.ReportMetric(res.GeoSamp, "umi_samp_geomean")
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig3(nil)
		if err != nil {
			b.Fatal(err)
		}
		best := 1.0
		for _, r := range res.Rows {
			if r.UMISW < best {
				best = r.UMISW
			}
		}
		b.ReportMetric(res.GeoSW, "sw_prefetch_geomean")
		b.ReportMetric(best, "best_case")
		b.ReportMetric(float64(len(res.Rows)), "benchmarks")
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig4(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GeoSW, "sw_prefetch_geomean_k7")
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig5(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GeoSW, "sw_geomean")
		b.ReportMetric(res.GeoHW, "hw_geomean")
		b.ReportMetric(res.GeoBoth, "both_geomean")
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig6(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GeoSW, "sw_miss_geomean")
		b.ReportMetric(res.GeoHW, "hw_miss_geomean")
		b.ReportMetric(res.GeoBoth, "both_miss_geomean")
	}
}

func BenchmarkSensThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.SensitivityThreshold(nil)
		if err != nil {
			b.Fatal(err)
		}
		mcf := res[0].Points
		b.ReportMetric(100*mcf[0].Recall, "mcf_recall_th1_%")
		b.ReportMetric(100*mcf[len(mcf)-1].Recall, "mcf_recall_th1024_%")
	}
}

func BenchmarkSensProfileLen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.SensitivityProfileLen(nil)
		if err != nil {
			b.Fatal(err)
		}
		mcf := res[0].Points
		b.ReportMetric(100*mcf[0].Recall, "mcf_recall_64_%")
		b.ReportMetric(100*mcf[len(mcf)-1].Recall, "mcf_recall_32K_%")
	}
}

// ---------------------------------------------------------------------
// Ablations for the design decisions in DESIGN.md §5.
// ---------------------------------------------------------------------

// ablationRun executes mcf under UMI with an edited config and returns
// the run.
func ablationRun(b *testing.B, name string, edit func(*iumi.Config)) *harness.UMIRun {
	b.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		b.Fatalf("workload %s missing", name)
	}
	cfg := harness.UMIParams(harness.P4)
	if edit != nil {
		edit(&cfg)
	}
	run, err := harness.RunUMI(w, harness.P4, cfg, false, false)
	if err != nil {
		b.Fatal(err)
	}
	return run
}

// BenchmarkAblationFiltering compares instrumentation overhead with and
// without the stack/static operation filter (§4.1).
func BenchmarkAblationFiltering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		filtered := ablationRun(b, "181.mcf", nil)
		unfiltered := ablationRun(b, "181.mcf", func(c *iumi.Config) { c.FilterOps = false })
		b.ReportMetric(float64(filtered.Report.ProfiledOps), "ops_filtered")
		b.ReportMetric(float64(unfiltered.Report.ProfiledOps), "ops_unfiltered")
		b.ReportMetric(float64(filtered.RT.Overhead), "overhead_filtered_cy")
		b.ReportMetric(float64(unfiltered.RT.Overhead), "overhead_unfiltered_cy")
	}
}

// BenchmarkAblationWarmup compares the mini-simulated miss ratio with and
// without warm-up skipping (§5): without it, compulsory misses inflate
// the ratio.
func BenchmarkAblationWarmup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		warm := ablationRun(b, "177.mesa", nil)
		cold := ablationRun(b, "177.mesa", func(c *iumi.Config) { c.WarmupRows = 0 })
		b.ReportMetric(warm.Report.SimMissRatio, "ratio_warmup")
		b.ReportMetric(cold.Report.SimMissRatio, "ratio_no_warmup")
	}
}

// BenchmarkAblationFlush compares the shared logical cache with periodic
// flushing against flushing before every invocation (no state carry-over).
func BenchmarkAblationFlush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		carry := ablationRun(b, "177.mesa", nil)
		fresh := ablationRun(b, "177.mesa", func(c *iumi.Config) { c.FlushCycleGap = 0 })
		b.ReportMetric(carry.Report.SimMissRatio, "ratio_carryover")
		b.ReportMetric(fresh.Report.SimMissRatio, "ratio_always_flush")
	}
}

// BenchmarkAblationAdaptiveThreshold reproduces §7.1's claim: the
// adaptive per-trace delinquency threshold cuts false positives versus a
// single global threshold at the floor value.
func BenchmarkAblationAdaptiveThreshold(b *testing.B) {
	w, _ := workloads.ByName("197.parser")
	for i := 0; i < b.N; i++ {
		cg, err := harness.RunCachegrind(w, harness.P4)
		if err != nil {
			b.Fatal(err)
		}
		truth := cg.DelinquentSet(0.90)
		adaptive := ablationRun(b, "197.parser", nil)
		global := ablationRun(b, "197.parser", func(c *iumi.Config) {
			c.Adaptive = false
			c.DelinquencyInit = 0.10 // the floor, applied globally
		})
		b.ReportMetric(fpRatio(adaptive.Report.Delinquent, truth), "fp_adaptive")
		b.ReportMetric(fpRatio(global.Report.Delinquent, truth), "fp_global_low")
	}
}

func fpRatio(pred, truth map[uint64]bool) float64 {
	if len(pred) == 0 {
		return 0
	}
	wrong := 0
	for pc := range pred {
		if !truth[pc] {
			wrong++
		}
	}
	return float64(wrong) / float64(len(pred))
}

// BenchmarkAblationSampling compares sample-based region selection with
// instrument-everything on the many-trace gcc stand-in (§6.1's gcc story).
func BenchmarkAblationSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sampled := ablationRun(b, "176.gcc", nil)
		eager := ablationRun(b, "176.gcc", func(c *iumi.Config) { c.UseSampling = false })
		b.ReportMetric(float64(sampled.RT.Overhead), "overhead_sampled_cy")
		b.ReportMetric(float64(eager.RT.Overhead), "overhead_eager_cy")
		b.ReportMetric(float64(sampled.Report.InstrumentEvents), "events_sampled")
		b.ReportMetric(float64(eager.Report.InstrumentEvents), "events_eager")
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the core engines (allocation behaviour matters for
// an online system).
// ---------------------------------------------------------------------

func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(cache.P4L2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) * 64)
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := cache.NewP4(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i)*64, 8, false)
	}
}

func BenchmarkVMExecution(b *testing.B) {
	w, _ := workloads.ByName("252.eon")
	p := w.Program()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := vm.New(p, nil)
		if err := m.Run(harness.MaxInstrs); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(m.Instrs))
	}
}

func BenchmarkRIOExecution(b *testing.B) {
	w, _ := workloads.ByName("252.eon")
	p := w.Program()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := vm.New(p, nil)
		rt := rio.NewRuntime(m)
		if err := rt.Run(harness.MaxInstrs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeProfile measures the analyzer's inner loop — the
// mini-simulation every recorded reference funnels through — on a profile
// shaped like the paper's defaults (§4.2 geometry, mixed hit/miss columns).
// ns/ref is the perf-trajectory headline (BENCH_umi.json); allocs/op must
// stay 0 in steady state (TestAnalyzeProfileZeroAllocs is the CI gate).
func BenchmarkAnalyzeProfile(b *testing.B) {
	cfg := iumi.DefaultConfig(cache.P4L2)
	an := iumi.NewAnalyzer(&cfg)
	const nOps, rows = 16, 256
	ops := make([]uint64, nOps)
	isLoad := make([]bool, nOps)
	for i := range ops {
		ops[i] = uint64(0x1000 + i*16)
		isLoad[i] = i%4 != 3
	}
	prof := iumi.NewAddressProfile(ops, isLoad, rows)
	for r := 0; r < rows; r++ {
		row, _ := prof.OpenRow()
		for c := 0; c < nOps; c++ {
			// Half the columns stream (miss-heavy), half cycle a small
			// resident set (hit-heavy), so both Access outcomes are hot.
			if c%2 == 0 {
				prof.Record(row, c, uint64(r)*4096+uint64(c)*64)
			} else {
				prof.Record(row, c, uint64(r%8)*64+uint64(c)*8192)
			}
		}
	}
	refsPerOp := uint64(prof.Recorded())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an.BeginInvocation(uint64(i))
		an.AnalyzeProfile(prof, 0.9)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(uint64(b.N)*refsPerOp), "ns/ref")
}

// BenchmarkPipelineEndToEnd runs a full workload through the asynchronous
// analysis pipeline (4 preparation workers + sequencer) — guest execution,
// instrumentation, profile recording, hand-off, mini-simulation, merge —
// and reports wall time per simulated reference.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	w, ok := workloads.ByName("181.mcf")
	if !ok {
		b.Fatal("workload 181.mcf missing")
	}
	cfg := harness.UMIParams(harness.P4)
	cfg.AnalyzerWorkers = 4
	var refs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := harness.RunUMI(w, harness.P4, cfg, false, false)
		if err != nil {
			b.Fatal(err)
		}
		refs += run.Report.SimulatedRefs
	}
	if refs > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(refs), "ns/ref")
	}
}

// BenchmarkSampledAccess runs the full pipeline under burst sampling with
// adaptation (1-in-8 trace executions profiled, stable phases shrinking
// further) — the configuration the overhead-frontier harness recommends —
// and reports wall time per simulated reference next to the modelled
// self-overhead it leaves behind. Belongs in BENCH_umi.json beside
// BenchmarkPipelineEndToEnd, its instrument-everything counterpart.
func BenchmarkSampledAccess(b *testing.B) {
	w, ok := workloads.ByName("181.mcf")
	if !ok {
		b.Fatal("workload 181.mcf missing")
	}
	cfg := harness.UMIParams(harness.P4)
	cfg.BurstPeriod = 8
	cfg.SamplerSeed = 1
	cfg.AdaptSampling = true
	var refs uint64
	var overheadPct float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := harness.RunUMI(w, harness.P4, cfg, false, false)
		if err != nil {
			b.Fatal(err)
		}
		refs += run.Report.SimulatedRefs
		overheadPct = 100 * run.Overhead.OverheadRatio
	}
	if refs > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(refs), "ns/ref")
	}
	b.ReportMetric(overheadPct, "overhead_%")
}

// BenchmarkOverheadAttribution measures assembling the per-stage
// attribution report from the live registry — the cost the introspection
// endpoint pays per /overhead scrape while the guest runs.
func BenchmarkOverheadAttribution(b *testing.B) {
	w, _ := workloads.ByName("181.mcf")
	h := harness.P4.Hierarchy(false)
	m := vm.New(w.Program(), h)
	rt := rio.NewRuntime(m)
	s := iumi.Attach(rt, harness.UMIParams(harness.P4))
	if err := rt.Run(harness.MaxInstrs); err != nil {
		b.Fatal(err)
	}
	s.Finish()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := s.LiveOverhead()
		if r.GuestCycles == 0 {
			b.Fatal("live report empty")
		}
	}
}

// wireBenchEmit writes a umi-profile/v1 stream shaped like the analyzer's
// defaults — 32 invocations of one 16-op × 256-row profile (the
// BenchmarkAnalyzeProfile geometry), a 64-window history, a trailer with
// 256-entry PC sets — and returns the recorded references it carried.
func wireBenchEmit(enc *wire.Encoder) uint64 {
	const nOps, rows, invocations, windows = 16, 256, 32, 64
	hdr := wire.Header{
		Workload: "bench", Machine: "P4",
		CacheName: "P4-L2", CacheSize: 512 << 10, CacheAssoc: 8, CacheLine: 64,
		WarmupRows: 8, FlushCycleGap: 1 << 20,
		AnalyzerPerRef: 3, AnalyzerFixed: 1000,
		HistoryWindows: 64, PhaseMissDelta: 0.02, PhaseChurnDelta: 0.5,
	}
	prof := wire.Profile{
		Alpha:  0.9,
		PCs:    make([]uint64, nOps),
		IsLoad: make([]bool, nOps),
		Rows:   rows,
		Cells:  make([]uint64, nOps*rows),
	}
	for i := range prof.PCs {
		prof.PCs[i] = uint64(0x1000 + i*16)
		prof.IsLoad[i] = i%4 != 3
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < nOps; c++ {
			i := r*nOps + c
			switch {
			case r > rows/2 && c == nOps-1: // a trace that exited early
				prof.Cells[i] = wire.NoCell
			case c%2 == 0: // streaming column: large positive deltas
				prof.Cells[i] = uint64(r)*4096 + uint64(c)*64
				prof.Recorded++
			default: // resident column: small alternating deltas
				prof.Cells[i] = uint64(r%8)*64 + uint64(c)*8192
				prof.Recorded++
			}
		}
	}
	pcs := make([]uint64, 256)
	for i := range pcs {
		pcs[i] = uint64(0x1000 + i*24)
	}
	enc.Header(hdr)
	var refs uint64
	for i := 0; i < invocations; i++ {
		enc.Invocation(uint64(i+1)*100_000, 1)
		enc.Profile(prof)
		refs += uint64(prof.Recorded)
	}
	enc.History(wire.HistoryMeta{Total: windows, Cap: windows, Windows: windows})
	for i := 0; i < windows; i++ {
		enc.Window(wire.Window{
			Invocation: i + 1, Cycles: uint64(i+1) * 100_000, Refs: nOps * rows,
			Accesses: nOps * rows, Misses: uint64(200 + i),
			WindowMissRatio: 0.05, CumMissRatio: 0.05,
			Delinquent: 12, NewDelinquent: i % 3, DelinquentHash: uint64(i) * 0x9e3779b97f4a7c15,
			Jaccard: 0.92, PhaseChange: i%16 == 0, StridedLoads: 4, TopStride: 64,
			WSLines: 4096,
		})
	}
	enc.Trailer(wire.Trailer{
		InstrumentEvents: 1 << 20, GuestCycles: 1 << 30, TotalCycles: 1<<30 + 1<<24,
		Instrs: 1 << 28, HWAccesses: 1 << 26, HWMisses: 1 << 20, HWEvictions: 1 << 19,
		CandidatePCs: pcs, TracePCs: pcs[:64],
	})
	return refs
}

// BenchmarkWireEncode measures umi-profile/v1 emission (framing, delta
// encoding, bitmaps) for the stream wireBenchEmit describes. ns/ref is the
// per-recorded-reference cost the capture process pays on the guest
// thread; it belongs in BENCH_umi.json next to the analyzer's ns/ref.
func BenchmarkWireEncode(b *testing.B) {
	var refs uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := wire.NewEncoder(io.Discard)
		refs = wireBenchEmit(enc)
		if err := enc.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(uint64(b.N)*refs), "ns/ref")
}

// BenchmarkWireDecode measures the bounded-memory decode of the same
// stream — the cost umid pays per ingested reference before any analysis
// runs.
func BenchmarkWireDecode(b *testing.B) {
	var buf bytes.Buffer
	enc := wire.NewEncoder(&buf)
	refs := wireBenchEmit(enc)
	if err := enc.Flush(); err != nil {
		b.Fatal(err)
	}
	stream := buf.Bytes()
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := wire.NewDecoder(bytes.NewReader(stream))
		if _, err := dec.Header(); err != nil {
			b.Fatal(err)
		}
		for {
			rec, err := dec.Next()
			if err != nil {
				b.Fatal(err)
			}
			if _, done := rec.(*wire.Trailer); done {
				break
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(uint64(b.N)*refs), "ns/ref")
}

// BenchmarkWireEncodeV2 measures umi-profile/v2 emission — the v1 work
// plus predictor selection, the cell delta pre-transform, and per-frame
// DEFLATE — and reports the compression ratio the extra cycles buy
// (v1 bytes over v2 bytes for the same record stream).
func BenchmarkWireEncodeV2(b *testing.B) {
	var v1 bytes.Buffer
	e1 := wire.NewEncoder(&v1)
	refs := wireBenchEmit(e1)
	if err := e1.Flush(); err != nil {
		b.Fatal(err)
	}
	var v2Len int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var v2 countingWriter
		enc := wire.NewEncoderV2(&v2)
		wireBenchEmit(enc)
		if err := enc.Flush(); err != nil {
			b.Fatal(err)
		}
		v2Len = v2.n
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(uint64(b.N)*refs), "ns/ref")
	b.ReportMetric(float64(v1.Len())/float64(v2Len), "x-ratio")
}

// countingWriter discards while counting, so encode benchmarks measure
// compressed output size without buffer-growth noise.
type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// BenchmarkWireDecodeV2 measures the v2 decode path: per-frame inflate
// plus the predictor-driven cell reconstruction umid pays per ingested
// reference.
func BenchmarkWireDecodeV2(b *testing.B) {
	var buf bytes.Buffer
	enc := wire.NewEncoderV2(&buf)
	refs := wireBenchEmit(enc)
	if err := enc.Flush(); err != nil {
		b.Fatal(err)
	}
	stream := buf.Bytes()
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := wire.NewDecoder(bytes.NewReader(stream))
		if _, err := dec.Header(); err != nil {
			b.Fatal(err)
		}
		for {
			rec, err := dec.Next()
			if err != nil {
				b.Fatal(err)
			}
			if _, done := rec.(*wire.Trailer); done {
				break
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(uint64(b.N)*refs), "ns/ref")
}

// BenchmarkAblationPolicy measures the mini-simulator's sensitivity to the
// replacement policy (§5: "The simulator implements an LRU replacement
// policy although other schemes are possible"). The paper's observation —
// results depend far more on profile length than simulator detail —
// predicts small deltas.
func BenchmarkAblationPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, pol := range []cache.Policy{cache.LRU, cache.FIFO, cache.Random, cache.PLRU} {
			run := ablationRun(b, "181.mcf", func(c *iumi.Config) {
				c.MiniSimCache.Policy = pol
			})
			b.ReportMetric(run.Report.SimMissRatio, "ratio_"+pol.String())
		}
	}
}

// BenchmarkAblationAdaptiveFrequency measures the §7.2 future-work
// extension: per-trace frequency thresholds back off boring traces,
// trading overhead for coverage on gcc-like codes.
func BenchmarkAblationAdaptiveFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fixed := ablationRun(b, "176.gcc", nil)
		adaptive := ablationRun(b, "176.gcc", func(c *iumi.Config) {
			c.AdaptiveFrequency = true
			c.MaxFrequencyThreshold = 256
		})
		b.ReportMetric(float64(fixed.RT.Overhead), "overhead_fixed_cy")
		b.ReportMetric(float64(adaptive.RT.Overhead), "overhead_adaptive_cy")
		b.ReportMetric(float64(fixed.Report.InstrumentEvents), "events_fixed")
		b.ReportMetric(float64(adaptive.Report.InstrumentEvents), "events_adaptive")
	}
}

// BenchmarkAblationICache quantifies the unified-L2 perturbation from
// instruction fetches that the paper conjectures explains part of the K7
// correlation gap (§6.2): ground truth with an instruction cache vs the
// data-only view UMI simulates.
func BenchmarkAblationICache(b *testing.B) {
	w, _ := workloads.ByName("176.gcc")
	for i := 0; i < b.N; i++ {
		plain := cache.NewK7()
		m := vm.New(w.Program(), plain)
		if err := m.Run(harness.MaxInstrs); err != nil {
			b.Fatal(err)
		}
		withI := cache.NewK7()
		withI.EnableICache(cache.K7L1I)
		m2 := vm.New(w.Program(), withI)
		if err := m2.Run(harness.MaxInstrs); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(plain.L2Stats.MissRatio(), "l2_ratio_no_icache")
		b.ReportMetric(withI.L2Stats.MissRatio(), "l2_ratio_icache")
		b.ReportMetric(float64(withI.L1IStats.Misses), "icache_misses")
	}
}

// BenchmarkOptBypass measures the second online optimization (the
// conclusion's "enhance ... cache replacement policies"): non-temporal
// rewriting of a streaming delinquent load that would otherwise thrash a
// 384 KiB L2-resident working set out of the 512 KiB L2.
func BenchmarkOptBypass(b *testing.B) {
	prog := bypassProgram(b)
	for i := 0; i < b.N; i++ {
		run := func(withNT bool) (uint64, int) {
			h := harness.P4.Hierarchy(false)
			m := vm.New(prog, h)
			rt := rio.NewRuntime(m)
			s := iumi.Attach(rt, harness.UMIParams(harness.P4))
			var nt *prefetch.NTOptimizer
			if withNT {
				nt = prefetch.NewNTOptimizer()
				s.OnAnalyzed = nt.Hook()
			}
			if err := rt.Run(harness.MaxInstrs); err != nil {
				b.Fatal(err)
			}
			s.Finish()
			rewritten := 0
			if nt != nil {
				rewritten = len(nt.Rewritten)
			}
			return h.L2Stats.Misses, rewritten
		}
		plain, _ := run(false)
		bypass, rewritten := run(true)
		b.ReportMetric(float64(plain), "misses_plain")
		b.ReportMetric(float64(bypass), "misses_bypass")
		b.ReportMetric(float64(rewritten), "loads_rewritten")
	}
}

// bypassProgram streams one line per iteration while cycling six loads
// over a 384 KiB resident region.
func bypassProgram(b *testing.B) *programpkg.Program {
	bl := programpkg.NewBuilder("bypass-bench")
	e := bl.Block("entry")
	e.MovI(isa.R2, int64(programpkg.HeapBase))
	e.MovI(isa.R5, int64(programpkg.HeapBase+(64<<20)))
	e.MovI(isa.R0, 0)
	e.MovI(isa.R6, 1_000_000)
	l := bl.Block("loop")
	l.Load(isa.R1, 8, isa.MemIdx(isa.R2, isa.R0, 8, 0))
	l.Add(isa.R7, isa.R7, isa.R1)
	for j := 0; j < 6; j++ {
		l.AddI(isa.R12, isa.R0, int64(j)*1024)
		l.AndI(isa.R12, isa.R12, (48<<10)-1)
		l.Load(isa.R4, 8, isa.MemIdx(isa.R5, isa.R12, 8, 0))
		l.Add(isa.R7, isa.R7, isa.R4)
	}
	l.AddI(isa.R0, isa.R0, 8)
	l.Br(isa.CondLT, isa.R0, isa.R6, "loop")
	bl.Block("done").Halt()
	p, err := bl.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	return p
}
