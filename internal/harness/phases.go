package harness

import (
	"fmt"
	"strings"

	"umi/internal/rio"
	"umi/internal/umi"
	"umi/internal/vm"
)

// The phases experiment is the profile-history layer's figure: per
// workload, the windowed evolution of memory behaviour — each analyzer
// invocation's miss ratio, delinquent-set churn (Jaccard similarity
// against the previous window), and working-set size, with detected phase
// transitions marked. The timeline figure shows when the analyzer ran;
// this one shows what changed between runs, which is the signal online
// phase-aware optimization would key on (Shen et al.'s locality phases).
// Everything derives from modelled state, so the render is golden-testable.

// BenchmarkPhases is one workload's windowed history.
type BenchmarkPhases struct {
	Name         string
	Total        uint64 // windows recorded (== analyzer invocations)
	PhaseChanges uint64
	Windows      []struct {
		Invocation int
		Cycles     uint64
		WindowMiss float64
		CumMiss    float64
		Delinquent int
		Jaccard    float64
		WSLines    int
		Phase      bool
	}
}

// PhasesResult is the umibench "phases" experiment.
type PhasesResult struct {
	Rows []BenchmarkPhases
}

// Phases runs the selected workloads (nil = the paper's 32) under the
// standard configuration and collects each run's profile history.
func Phases(names []string) (*PhasesResult, error) {
	ws, err := selectWorkloads(names)
	if err != nil {
		return nil, err
	}
	res := &PhasesResult{Rows: make([]BenchmarkPhases, len(ws))}
	err = forEachIndexed(len(ws), func(i int) error {
		// A bespoke run rather than RunUMI: the ws-lines column needs a
		// WorkingSet consumer attached, which the standard driver omits.
		h := P4.Hierarchy(false)
		m := vm.New(ws[i].Program(), h)
		rt := rio.NewRuntime(m)
		s := umi.Attach(rt, UMIParams(P4))
		s.AddConsumer(umi.NewWorkingSet(P4.L2.LineSize))
		if err := rt.Run(MaxInstrs); err != nil {
			return fmt.Errorf("%s phases: %w", ws[i].Name, err)
		}
		s.Finish()
		hv := s.History()
		bp := BenchmarkPhases{
			Name:         ws[i].Name,
			Total:        hv.Total,
			PhaseChanges: hv.PhaseChanges,
		}
		for _, w := range hv.Windows {
			bp.Windows = append(bp.Windows, struct {
				Invocation int
				Cycles     uint64
				WindowMiss float64
				CumMiss    float64
				Delinquent int
				Jaccard    float64
				WSLines    int
				Phase      bool
			}{w.Invocation, w.Cycles, w.WindowMissRatio, w.CumMissRatio,
				w.Delinquent, w.Jaccard, w.WSLines, w.PhaseChange})
		}
		res.Rows[i] = bp
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the figure: per benchmark, one line per window with a bar
// tracking the window miss ratio and *PHASE* markers on transitions.
// Deterministic — every column derives from modelled state.
func (r *PhasesResult) String() string {
	if len(r.Rows) == 0 {
		return "Phases: no benchmarks selected\n"
	}
	var sb strings.Builder
	sb.WriteString("Phases: windowed miss-ratio and delinquent-set churn per analyzer invocation\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "\n%s (%d windows, %d phase changes):\n",
			row.Name, row.Total, row.PhaseChanges)
		if len(row.Windows) == 0 {
			sb.WriteString("  no analyzer invocations\n")
			continue
		}
		maxMiss := 0.0
		for _, w := range row.Windows {
			if w.WindowMiss > maxMiss {
				maxMiss = w.WindowMiss
			}
		}
		fmt.Fprintf(&sb, "  %4s  %12s  %8s  %8s  %5s  %7s  %8s\n",
			"inv", "cycles", "win-miss", "cum-miss", "|P|", "jaccard", "ws-lines")
		for _, w := range row.Windows {
			bar := 0
			if maxMiss > 0 {
				bar = int(w.WindowMiss * barWidth / maxMiss)
			}
			line := fmt.Sprintf("  %4d  %12d  %8.4f  %8.4f  %5d  %7.3f  %8d  %s",
				w.Invocation, w.Cycles, w.WindowMiss, w.CumMiss,
				w.Delinquent, w.Jaccard, w.WSLines, strings.Repeat("#", bar))
			if w.Phase {
				line = strings.TrimRight(line, " ") + "  *PHASE*"
			}
			sb.WriteString(strings.TrimRight(line, " ") + "\n")
		}
	}
	return sb.String()
}
