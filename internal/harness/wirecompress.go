package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"umi/internal/stats"
	"umi/internal/umi"
	"umi/internal/wire"
)

// Wire-format compression: record real workloads' telemetry, transcode
// the v1 recording to umi-profile/v2 (delta pre-transform + per-frame
// DEFLATE), and measure what the format buys — stream size — and what it
// must not cost: the replayed report has to stay byte-identical across
// versions. Profiled address streams are stride-regular, which is exactly
// the shape the v2 cell deltas and block coder exploit.

// WireCompressRow is one workload's measurement.
type WireCompressRow struct {
	Workload  string
	V1Bytes   int
	V2Bytes   int
	Ratio     float64 // v1 / v2
	Identical bool    // replayed reports byte-identical across versions

	// Wall-clock transcode throughput (nondeterministic; LiveString only).
	EncodeNsPerMB float64 `json:"-"`
	DecodeNsPerMB float64 `json:"-"`
}

// WireCompressResult is the sweep.
type WireCompressResult struct {
	Rows []WireCompressRow
}

// replayFingerprint replays one stream and marshals everything the
// RunResult surfaces from it — the report, the streamed history, and the
// trailer-derived run accounting — so two streams with equal fingerprints
// are interchangeable inputs to every downstream consumer.
func replayFingerprint(stream []byte) ([]byte, error) {
	dec := wire.NewDecoder(bytes.NewReader(stream))
	h, err := dec.Header()
	if err != nil {
		return nil, err
	}
	cfg, err := umi.ConfigFromWireHeader(h)
	if err != nil {
		return nil, err
	}
	rp := umi.NewReplay(cfg)
	shard, err := rp.Consume(dec)
	if err != nil {
		return nil, err
	}
	tr := shard.Trailer
	rep := rp.Report(len(tr.TracePCs), len(tr.CandidatePCs), tr.InstrumentEvents)
	return json.Marshal(struct {
		Report      *umi.Report
		History     umi.HistoryView
		HWMissRatio float64
		Cycles      uint64
		Instrs      uint64
	}{rep, shard.History, umi.HWMissRatio(tr.HWAccesses, tr.HWMisses), tr.TotalCycles, tr.Instrs})
}

// WireCompress records each workload, transcodes its stream to v2, and
// verifies replay equivalence. Empty names defaults to em3d (the paper's
// stride-heavy graph chase) plus 181.mcf.
func WireCompress(names []string) (*WireCompressResult, error) {
	if len(names) == 0 {
		names = []string{"em3d", "181.mcf"}
	}
	res := &WireCompressResult{}
	for _, name := range names {
		v1, err := EmitWorkloadStream(name)
		if err != nil {
			return nil, err
		}
		var v2 bytes.Buffer
		encStart := time.Now()
		if err := wire.Transcode(&v2, bytes.NewReader(v1), wire.Version2); err != nil {
			return nil, fmt.Errorf("harness: transcode %s: %w", name, err)
		}
		encNs := float64(time.Since(encStart).Nanoseconds())
		decStart := time.Now()
		f2, err := replayFingerprint(v2.Bytes())
		if err != nil {
			return nil, fmt.Errorf("harness: replay v2 %s: %w", name, err)
		}
		decNs := float64(time.Since(decStart).Nanoseconds())
		f1, err := replayFingerprint(v1)
		if err != nil {
			return nil, fmt.Errorf("harness: replay v1 %s: %w", name, err)
		}
		mb := float64(len(v1)) / (1 << 20)
		res.Rows = append(res.Rows, WireCompressRow{
			Workload:      name,
			V1Bytes:       len(v1),
			V2Bytes:       v2.Len(),
			Ratio:         float64(len(v1)) / float64(v2.Len()),
			Identical:     bytes.Equal(f1, f2),
			EncodeNsPerMB: encNs / mb,
			DecodeNsPerMB: decNs / mb,
		})
	}
	return res, nil
}

// String renders the deterministic half: sizes, ratios, and replay
// equivalence (golden-testable). Throughput lives in LiveString.
func (r *WireCompressResult) String() string {
	t := stats.NewTable(
		"Wire-format v2 compression — one recording, two encodings, identical replays",
		"Workload", "v1 bytes", "v2 bytes", "Ratio", "Replay identical")
	for _, row := range r.Rows {
		t.AddRow(row.Workload,
			fmt.Sprint(row.V1Bytes), fmt.Sprint(row.V2Bytes),
			fmt.Sprintf("%.2fx", row.Ratio), fmt.Sprint(row.Identical))
	}
	return t.String()
}

// LiveString renders the measured half: wall-clock transcode and replay
// throughput, which varies run to run.
func (r *WireCompressResult) LiveString() string {
	var sb bytes.Buffer
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-16s transcode %.1f ms/MB of v1, v2 replay %.1f ms/MB\n",
			row.Workload, row.EncodeNsPerMB/1e6, row.DecodeNsPerMB/1e6)
	}
	return sb.String()
}
