package harness

import (
	"strings"
	"testing"
)

// A small cross-suite subset keeps test time reasonable; the bench suite
// runs the full 32-benchmark experiments.
var subset = []string{"181.mcf", "171.swim", "164.gzip", "252.eon", "ft", "em3d"}

func TestSelectWorkloads(t *testing.T) {
	ws, err := selectWorkloads(nil)
	if err != nil || len(ws) != 32 {
		t.Fatalf("nil selection = %d workloads, err %v; want the paper's 32", len(ws), err)
	}
	ws, err = selectWorkloads(subset)
	if err != nil || len(ws) != len(subset) {
		t.Fatalf("subset selection failed: %v", err)
	}
	if _, err := selectWorkloads([]string{"nope"}); err == nil {
		t.Error("unknown name must error")
	}
}

func TestPlatforms(t *testing.T) {
	h := P4.Hierarchy(true)
	if len(h.Prefetchers) == 0 {
		t.Error("P4 with prefetch must attach prefetchers")
	}
	h = P4.Hierarchy(false)
	if len(h.Prefetchers) != 0 {
		t.Error("P4 without prefetch must not attach prefetchers")
	}
	h = K7.Hierarchy(true)
	if len(h.Prefetchers) != 0 {
		t.Error("K7 has no documented hardware prefetcher")
	}
	if K7.L2.Size >= P4.L2.Size {
		t.Error("K7 L2 must be half the P4 L2 (256KB vs 512KB)")
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	// Monotonically decreasing slowdown with sample size.
	var prev = 1e18
	for _, row := range res.Rows[1:] {
		if row.SlowdownPct >= prev {
			t.Errorf("slowdown not decreasing at size %d: %.1f >= %.1f",
				row.SampleSize, row.SlowdownPct, prev)
		}
		prev = row.SlowdownPct
	}
	first := res.Rows[1]
	last := res.Rows[len(res.Rows)-1]
	if first.SampleSize != 10 || first.SlowdownPct < 300 {
		t.Errorf("sample size 10 slowdown = %.1f%%, want ruinous (>=300%%)", first.SlowdownPct)
	}
	if last.SlowdownPct > 5 {
		t.Errorf("sample size 1M slowdown = %.1f%%, want near-free", last.SlowdownPct)
	}
	// UMI must be far cheaper than fine-grained counter sampling.
	if res.UMISlowPct > 20 {
		t.Errorf("UMI slowdown = %.1f%%, want small", res.UMISlowPct)
	}
	if !strings.Contains(res.String(), "Table 1") {
		t.Error("render must carry the table title")
	}
}

func TestTable2(t *testing.T) {
	out := Table2()
	for _, want := range []string{"Simulators", "HW counters", "UMI", "Overhead", "Versatility"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := Table3(subset)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(subset) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(subset))
	}
	for _, row := range res.Rows {
		if row.ProfiledOps == 0 {
			t.Errorf("%s: no profiled operations", row.Name)
		}
		if row.ProfiledPct <= 0 || row.ProfiledPct >= 100 {
			t.Errorf("%s: %% profiled = %.2f, want in (0, 100): filtering must bite",
				row.Name, row.ProfiledPct)
		}
		if row.Profiles < row.Invocations {
			t.Errorf("%s: profiles %d < invocations %d", row.Name, row.Profiles, row.Invocations)
		}
		if row.Invocations == 0 {
			t.Errorf("%s: analyzer never ran", row.Name)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	res, err := Table4(subset)
	if err != nil {
		t.Fatal(err)
	}
	all := res.CachegrindNoPF[len(res.CachegrindNoPF)-1]
	// Cachegrind simulates the same geometry as the ground truth without
	// prefetchers: correlation must be exactly 1 (DESIGN.md).
	if all.R < 0.9999 {
		t.Errorf("Cachegrind no-prefetch correlation = %.4f, want 1.0", all.R)
	}
	umiAll := res.UMINoPF[len(res.UMINoPF)-1]
	if umiAll.R < 0.5 {
		t.Errorf("UMI overall correlation = %.3f, want strong (on full suite: ~0.96)", umiAll.R)
	}
	// Prefetch-on correlation must not exceed prefetch-off (prefetching
	// side effects are unmodelled by the simulators).
	umiPF := res.UMIPF[len(res.UMIPF)-1]
	if umiPF.R > umiAll.R+0.01 {
		t.Errorf("prefetch-on correlation %.3f exceeds prefetch-off %.3f", umiPF.R, umiAll.R)
	}
	for _, b := range res.PerBench {
		if b.Cachegrind != b.HWNoPF {
			t.Errorf("%s: cachegrind %.4f != HW no-prefetch %.4f", b.Name, b.Cachegrind, b.HWNoPF)
		}
		if b.HWPF > b.HWNoPF+1e-9 {
			t.Errorf("%s: prefetching increased the miss ratio (%.4f > %.4f)",
				b.Name, b.HWPF, b.HWNoPF)
		}
	}
}

func TestTable6Shape(t *testing.T) {
	res, err := Table6(subset)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table6Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	// Memory-intensive benchmarks: near-perfect recall and coverage.
	for _, name := range []string{"181.mcf", "ft", "em3d", "171.swim"} {
		r := byName[name]
		if r.Recall < 0.99 {
			t.Errorf("%s: recall = %.2f, want ~1.0", name, r.Recall)
		}
		if r.PMissCoverage < 0.9 {
			t.Errorf("%s: P coverage = %.2f, want >= 0.9", name, r.PMissCoverage)
		}
	}
	// The high-miss average must dominate the low-miss average, the
	// paper's headline contrast (88% vs much lower).
	if res.AvgHigh.Recall <= res.AvgLow.Recall {
		t.Errorf("high-group recall %.2f must exceed low-group %.2f",
			res.AvgHigh.Recall, res.AvgLow.Recall)
	}
	if res.AvgHigh.PMissCoverage < 0.8 {
		t.Errorf("high-group coverage = %.2f, want >= 0.8", res.AvgHigh.PMissCoverage)
	}
}

func TestFig2Shape(t *testing.T) {
	res, err := Fig2(subset)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.RIO < 0.8 || row.RIO > 2.0 {
			t.Errorf("%s: substrate ratio %.3f implausible", row.Name, row.RIO)
		}
		// UMI costs at least as much as the bare substrate.
		if row.UMINoSamp < row.RIO-0.01 {
			t.Errorf("%s: UMI (%.3f) cheaper than substrate (%.3f)",
				row.Name, row.UMINoSamp, row.RIO)
		}
		// Sampling must not cost more than always-instrument.
		if row.UMISampling > row.UMINoSamp+0.02 {
			t.Errorf("%s: sampling (%.3f) costlier than no-sampling (%.3f)",
				row.Name, row.UMISampling, row.UMINoSamp)
		}
	}
	// Overall overhead stays modest (the paper's 14% story).
	if res.GeoSamp > 1.30 {
		t.Errorf("geomean UMI overhead = %.3f, want <= 1.30", res.GeoSamp)
	}
}

func TestFig3PrefetchingWins(t *testing.T) {
	res, err := Fig3(subset)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no prefetching opportunities found")
	}
	// Software prefetching must win on average, with ft the best case
	// (the paper: 11% average, 64% best case).
	if res.GeoSW >= res.GeoUMI {
		t.Errorf("SW prefetching geomean %.3f not better than plain UMI %.3f",
			res.GeoSW, res.GeoUMI)
	}
	best := 1.0
	for _, row := range res.Rows {
		if row.UMISW < best {
			best = row.UMISW
		}
	}
	if best > 0.8 {
		t.Errorf("best case normalized time = %.3f, want a large win (<= 0.8)", best)
	}
}

func TestFig6CumulativeMissReduction(t *testing.T) {
	res, err := Fig6(subset)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Combined prefetching reduces misses at least as much as either
	// scheme alone, per benchmark (§8's cumulative coverage finding).
	for _, row := range res.Rows {
		if row.MissBoth > row.MissHW+0.02 || row.MissBoth > row.MissSW+0.02 {
			t.Errorf("%s: combined misses %.3f exceed single schemes (SW %.3f, HW %.3f)",
				row.Name, row.MissBoth, row.MissSW, row.MissHW)
		}
	}
}

func TestSensitivityThresholdShape(t *testing.T) {
	res, err := SensitivityThreshold([]string{"181.mcf"})
	if err != nil {
		t.Fatal(err)
	}
	pts := res[0].Points
	if len(pts) != 11 { // 1..1024 in powers of two
		t.Fatalf("points = %d, want 11", len(pts))
	}
	// mcf: recall stable at low thresholds (paper: constant for 1-256).
	if pts[0].Recall < 0.99 {
		t.Errorf("threshold 1 recall = %.2f, want ~1", pts[0].Recall)
	}
	// Recall at the highest threshold must not exceed the lowest (it
	// generally decreases).
	if pts[len(pts)-1].Recall > pts[0].Recall+1e-9 {
		t.Errorf("recall rose with threshold: %.2f -> %.2f",
			pts[0].Recall, pts[len(pts)-1].Recall)
	}
	if out := RenderSens(res); !strings.Contains(out, "181.mcf") {
		t.Error("render missing benchmark name")
	}
}

func TestTable5Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 15-benchmark 2006 subset")
	}
	res, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerBench) != 15 {
		t.Fatalf("benchmarks = %d, want 15", len(res.PerBench))
	}
	all := res.Cells[len(res.Cells)-1]
	if all.Group != "SPEC2006" {
		t.Errorf("aggregate group = %q", all.Group)
	}
	if all.R < 0.5 {
		t.Errorf("SPEC2006 correlation = %.3f, want strong (paper: 0.85)", all.R)
	}
}

func TestSensitivityGeometryShape(t *testing.T) {
	res, err := SensitivityGeometry([]string{"181.mcf"})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if len(r.Geometries) != 5 || len(r.Lengths) == 0 {
		t.Fatalf("sweep sizes: %d geometries, %d lengths", len(r.Geometries), len(r.Lengths))
	}
	// §5's claim: profile length matters far more than cache geometry.
	if r.LenSpread < 3*r.GeomSpread {
		t.Errorf("length spread %.4f must dominate geometry spread %.4f",
			r.LenSpread, r.GeomSpread)
	}
	if out := RenderGeometry(res); out == "" {
		t.Error("empty render")
	}
}

func TestLinuxAppsShape(t *testing.T) {
	res, err := LinuxApps()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.HWMissRatio >= 0.01 {
			t.Errorf("%s: HW miss ratio %.2f%%, must be very low (§6.3)",
				row.Name, 100*row.HWMissRatio)
		}
		if row.OverheadPct > 40 {
			t.Errorf("%s: overhead %.1f%%, implausibly high", row.Name, row.OverheadPct)
		}
	}
}

func TestCountersVsUMIShape(t *testing.T) {
	res, err := CountersVsUMIRun([]string{"168.wupwise"})
	if err != nil {
		t.Fatal(err)
	}
	rows := res[0].Rows
	umiRow := rows[len(rows)-1]
	if umiRow.Label != "UMI" {
		t.Fatalf("last row = %q, want UMI", umiRow.Label)
	}
	if umiRow.Recall < 0.99 {
		t.Errorf("UMI recall = %.2f, want ~1.0", umiRow.Recall)
	}
	// The finest PMU sampling must be ruinously expensive relative to UMI.
	finest := rows[0]
	if finest.SampleSize != 10 {
		t.Fatalf("first row sample size = %d", finest.SampleSize)
	}
	if finest.OverheadPct < 5*umiRow.OverheadPct {
		t.Errorf("PMU@10 overhead %.1f%% should dwarf UMI's %.1f%%",
			finest.OverheadPct, umiRow.OverheadPct)
	}
	// Coarse sampling on a light misser sees little or nothing (§1.2).
	coarse := rows[len(rows)-2] // PMU@100000
	if coarse.Recall > umiRow.Recall {
		t.Errorf("coarse PMU recall %.2f exceeds UMI %.2f on a light misser",
			coarse.Recall, umiRow.Recall)
	}
}

func TestFig4K7Shape(t *testing.T) {
	res, err := Fig4([]string{"ft", "171.swim", "181.mcf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no prefetch candidates on the K7")
	}
	// As on the P4, software prefetching wins on the K7 (the paper's 11%
	// on both platforms).
	if res.GeoSW >= res.GeoUMI {
		t.Errorf("K7 SW geomean %.3f not better than plain %.3f", res.GeoSW, res.GeoUMI)
	}
}

func TestFig5NotCumulative(t *testing.T) {
	res, err := Fig5([]string{"ft", "171.swim"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// §8's finding: combining software and hardware prefetching does not
	// compound running-time gains — the combination must not beat the
	// better single scheme by any meaningful margin.
	bestSingle := res.GeoHW
	if res.GeoSW < bestSingle {
		bestSingle = res.GeoSW
	}
	if res.GeoBoth < bestSingle-0.02 {
		t.Errorf("combination %.3f beats best single %.3f by too much: gains compounded",
			res.GeoBoth, bestSingle)
	}
}
