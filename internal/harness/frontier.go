package harness

import (
	"fmt"

	"umi/internal/stats"
	"umi/internal/umi"
	"umi/internal/workloads"
)

// The overhead/accuracy frontier: what does burst sampling and adaptive
// instrumentation actually buy, and what does it cost in prediction
// quality? Each frontier point is one sampling configuration run over the
// same workload set; rows report the fill-stage cost-model charge (the
// instrumented-execution overhead sampling is supposed to shrink), its
// reduction against the full-instrumentation baseline, the whole-run
// overhead ratio, and prediction quality against the Cachegrind ground
// truth the accuracy tables already use. Everything rendered is modelled
// or counted — byte-stable at any worker count, golden-testable.

// FrontierSchema identifies the FrontierResult JSON shape.
const FrontierSchema = "umi-frontier/v1"

// FrontierConfig is one sampling configuration under sweep.
type FrontierConfig struct {
	Label       string `json:"label"`
	BurstPeriod int    `json:"burst_period"` // 0/1 = every execution
	Adaptive    bool   `json:"adaptive"`
	SamplerSeed uint64 `json:"sampler_seed"`
}

// FrontierRow is one workload under one configuration.
type FrontierRow struct {
	Benchmark string `json:"benchmark"`
	// FillCycles is the fill stage's modelled charge (prologs + recorded
	// refs); FillReductionPct relates it to the full-instrumentation
	// baseline for the same workload.
	FillCycles       uint64  `json:"fill_cycles"`
	FillReductionPct float64 `json:"fill_reduction_pct"`
	// OverheadPct is the run's whole-stack self-overhead ratio
	// (introspection cycles / guest cycles).
	OverheadPct float64 `json:"overhead_pct"`
	Recall      float64 `json:"recall"`
	FalsePos    float64 `json:"false_pos"`
	SetSize     int     `json:"set_size"`
	// SimMissRatio vs HWMissRatio feed the per-configuration correlation.
	SimMissRatio float64 `json:"sim_miss_ratio"`
	HWMissRatio  float64 `json:"hw_miss_ratio"`
}

// FrontierPoint is one configuration's column of the frontier.
type FrontierPoint struct {
	Config FrontierConfig `json:"config"`
	Rows   []FrontierRow  `json:"rows"`
	// Aggregates across the workload set: mean fill reduction, mean
	// recall, and the sim-vs-hardware miss-ratio correlation.
	MeanFillReductionPct float64 `json:"mean_fill_reduction_pct"`
	MeanRecall           float64 `json:"mean_recall"`
	MissCorrelation      float64 `json:"miss_correlation"`
}

// FrontierResult is the umibench "overhead-frontier" experiment.
type FrontierResult struct {
	Schema string           `json:"schema"`
	Points []*FrontierPoint `json:"points"`
}

// frontierConfigs is the standard sweep: the full-instrumentation
// baseline first (reductions are relative to it), then burst sampling
// alone and combined with history-driven adaptation.
func frontierConfigs() []FrontierConfig {
	return []FrontierConfig{
		{Label: "full", BurstPeriod: 1},
		{Label: "burst-8", BurstPeriod: 8, SamplerSeed: 1},
		{Label: "burst-8+adapt", BurstPeriod: 8, Adaptive: true, SamplerSeed: 1},
		{Label: "burst-32+adapt", BurstPeriod: 32, Adaptive: true, SamplerSeed: 1},
	}
}

// frontierParams clones the harness's standard UMI configuration and
// applies one frontier cell's sampling knobs.
func frontierParams(fc FrontierConfig) umi.Config {
	cfg := UMIParams(P4)
	if fc.BurstPeriod > 1 {
		cfg.BurstPeriod = fc.BurstPeriod
		cfg.SamplerSeed = fc.SamplerSeed
	}
	if fc.Adaptive {
		cfg.AdaptSampling = true
	}
	return cfg
}

// OverheadFrontier sweeps the sampling configurations over the named
// workloads (default: two memory-bound SPEC benchmarks and two Olden-style
// pointer chasers — the accuracy-table regulars).
func OverheadFrontier(names []string) (*FrontierResult, error) {
	if names == nil {
		names = []string{"181.mcf", "197.parser", "em3d", "470.lbm"}
	}
	ws := make([]*workloads.Workload, len(names))
	for i, n := range names {
		w, ok := workloads.ByName(n)
		if !ok {
			return nil, fmt.Errorf("harness: unknown workload %q", n)
		}
		ws[i] = w
	}
	configs := frontierConfigs()
	res := &FrontierResult{Schema: FrontierSchema,
		Points: make([]*FrontierPoint, len(configs))}
	for ci, fc := range configs {
		res.Points[ci] = &FrontierPoint{Config: fc,
			Rows: make([]FrontierRow, len(ws))}
	}
	// One cell = workload × configuration, plus a ground-truth run per
	// workload. Cells share nothing, so fan the whole grid out; the
	// baseline-relative reduction is filled in a second pass. Prediction
	// sets stay out of the JSON artifact (maps of PCs), so they live in a
	// side grid for the scoring pass.
	truths := make([]map[uint64]bool, len(ws))
	hwMiss := make([]float64, len(ws))
	preds := make([][]map[uint64]bool, len(configs))
	for ci := range preds {
		preds[ci] = make([]map[uint64]bool, len(ws))
	}
	err := forEachIndexed(len(ws)*(len(configs)+1), func(cell int) error {
		wi, ci := cell/(len(configs)+1), cell%(len(configs)+1)
		w := ws[wi]
		if ci == len(configs) {
			cg, err := RunCachegrind(w, P4)
			if err != nil {
				return err
			}
			truths[wi] = cg.DelinquentSet(0.90)
			hwMiss[wi] = cg.L2MissRatio()
			return nil
		}
		run, err := RunUMI(w, P4, frontierParams(configs[ci]), false, false)
		if err != nil {
			return err
		}
		pred := run.Report.Delinquent
		preds[ci][wi] = pred
		res.Points[ci].Rows[wi] = FrontierRow{
			Benchmark:    w.Name,
			FillCycles:   run.Overhead.Stage("fill").ModelledCycles,
			OverheadPct:  100 * run.Overhead.OverheadRatio,
			SetSize:      len(pred),
			SimMissRatio: run.Report.SimMissRatio,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	base := res.Points[0]
	for ci, pt := range res.Points {
		var sim, hw []float64
		for wi := range pt.Rows {
			row := &pt.Rows[wi]
			truth := truths[wi]
			row.Recall = stats.Recall(preds[ci][wi], truth)
			row.FalsePos = stats.FalsePositiveRatio(preds[ci][wi], truth)
			row.HWMissRatio = hwMiss[wi]
			if full := base.Rows[wi].FillCycles; full > 0 {
				row.FillReductionPct = 100 * (1 - float64(row.FillCycles)/float64(full))
			}
			sim = append(sim, row.SimMissRatio)
			hw = append(hw, row.HWMissRatio)
			pt.MeanFillReductionPct += row.FillReductionPct
			pt.MeanRecall += row.Recall
		}
		if n := len(pt.Rows); n > 0 {
			pt.MeanFillReductionPct /= float64(n)
			pt.MeanRecall /= float64(n)
		}
		pt.MissCorrelation = stats.Correlation(sim, hw)
	}
	return res, nil
}

// String renders the frontier in the accuracy tables' style: one table
// per configuration with an aggregate footer. Fully deterministic.
func (r *FrontierResult) String() string {
	if r == nil || len(r.Points) == 0 {
		return "Overhead frontier: no configurations\n"
	}
	var s string
	for _, pt := range r.Points {
		t := stats.NewTable(
			fmt.Sprintf("Overhead/accuracy frontier: %s", pt.Config.Label),
			"Benchmark", "Fill Cycles", "Fill Cut", "Overhead", "Recall",
			"False Pos", "|P|", "Sim MR", "HW MR")
		for _, row := range pt.Rows {
			t.AddRow(row.Benchmark,
				fmt.Sprint(row.FillCycles),
				fmt.Sprintf("%.1f%%", row.FillReductionPct),
				fmt.Sprintf("%.3f%%", row.OverheadPct),
				stats.Pct(row.Recall), stats.Pct(row.FalsePos),
				fmt.Sprint(row.SetSize),
				fmt.Sprintf("%.4f", row.SimMissRatio),
				fmt.Sprintf("%.4f", row.HWMissRatio))
		}
		t.AddRow("mean", "", fmt.Sprintf("%.1f%%", pt.MeanFillReductionPct), "",
			stats.Pct(pt.MeanRecall), "", "",
			fmt.Sprintf("r=%.3f", pt.MissCorrelation), "")
		s += t.String() + "\n"
	}
	return s
}
