package harness

import (
	"fmt"

	"umi/internal/stats"
	"umi/internal/workloads"
)

// LinuxAppsRow is one application's measurement (§6.3).
type LinuxAppsRow struct {
	Name        string
	HWMissRatio float64
	UMISimRatio float64
	OverheadPct float64
}

// LinuxAppsResult reproduces the §6.3 observation: commonly used Linux
// desktop/server applications have very low hardware-measured miss ratios,
// and UMI profiles them with the same low overhead as the benchmarks.
type LinuxAppsResult struct {
	Rows []LinuxAppsRow
}

// LinuxApps profiles the §6.3 application stand-ins.
func LinuxApps() (*LinuxAppsResult, error) {
	res := &LinuxAppsResult{}
	for _, w := range workloads.BySuite(workloads.LinuxApps) {
		native, err := RunNative(w, P4, true)
		if err != nil {
			return nil, err
		}
		run, err := RunUMI(w, P4, UMIParams(P4), true, false)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, LinuxAppsRow{
			Name:        w.Name,
			HWMissRatio: native.H.L2Stats.MissRatio(),
			UMISimRatio: run.Report.SimMissRatio,
			OverheadPct: 100 * (float64(run.TotalCycles())/float64(native.Cycles) - 1),
		})
	}
	return res, nil
}

func (r *LinuxAppsResult) String() string {
	t := stats.NewTable("Linux applications (§6.3): HW miss ratios are very low",
		"Application", "HW L2 miss ratio", "UMI simulated", "UMI overhead")
	for _, row := range r.Rows {
		t.AddRow(row.Name, fmt.Sprintf("%.3f%%", 100*row.HWMissRatio),
			fmt.Sprintf("%.3f%%", 100*row.UMISimRatio),
			fmt.Sprintf("%.1f%%", row.OverheadPct))
	}
	return t.String()
}
