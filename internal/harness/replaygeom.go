package harness

import (
	"bytes"
	"fmt"

	"umi/internal/cache"
	"umi/internal/rio"
	"umi/internal/stats"
	"umi/internal/umi"
	"umi/internal/vm"
	"umi/internal/wire"
	"umi/internal/workloads"
)

// Capture-once/analyze-many over the wire format: one recorded
// umi-profile/v1 stream replayed against several simulated cache
// geometries. Unlike the §5 what-if consumer (which rides along a live
// run), this sweep needs no guest at all — the profiled address stream is
// already on disk, so each geometry is one cheap replay. The same
// recording a fleet ships to umid doubles as the input to offline design
//-space exploration.

// ReplayGeometryPoint is one geometry's replayed outcome.
type ReplayGeometryPoint struct {
	Config     cache.Config
	MissRatio  float64
	Delinquent int
}

// ReplayGeometryResult is one stream's sweep.
type ReplayGeometryResult struct {
	Workload string
	Machine  string
	Captured string // geometry the stream was recorded under
	Points   []ReplayGeometryPoint
	Spread   float64 // max-min miss ratio across geometries
}

// EmitWorkloadStream records one workload's umi-profile/v1 stream under
// the standard P4 parameters — the capture half for callers (tests, the
// umibench replay-geometry experiment) that have no recording on hand.
func EmitWorkloadStream(name string) ([]byte, error) {
	w, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("harness: unknown workload %q", name)
	}
	cfg := UMIParams(P4)
	h := P4.Hierarchy(false)
	m := vm.New(w.Program(), h)
	rt := rio.NewRuntime(m)
	s := umi.Attach(rt, cfg)
	var buf bytes.Buffer
	enc := wire.NewEncoder(&buf)
	enc.Header(umi.WireHeader(&cfg, w.Name, P4.Name))
	s.EnableWireEmit(enc)
	if err := rt.Run(MaxInstrs); err != nil {
		return nil, fmt.Errorf("%s umi: %w", w.Name, err)
	}
	s.Finish()
	s.EmitWireTail(enc, wire.Trailer{
		GuestCycles: m.Cycles,
		TotalCycles: rt.TotalCycles(),
		Instrs:      m.Instrs,
		HWAccesses:  h.L2Stats.Accesses,
		HWMisses:    h.L2Stats.Misses,
		HWEvictions: h.L2.Stats().Evictions,
	})
	if err := enc.Flush(); err != nil {
		return nil, fmt.Errorf("%s emit: %w", w.Name, err)
	}
	return buf.Bytes(), nil
}

// replayGeometrySweep scales the captured geometry from a quarter to four
// times its size, mirroring the §5 what-if ladder but anchored to
// whatever cache the stream was recorded under.
func replayGeometrySweep(base cache.Config) []cache.Config {
	out := make([]cache.Config, 0, 5)
	for _, scale := range []int{4, 2, 1} {
		c := base
		c.Size /= scale
		c.Name = fmt.Sprintf("L2/%d", scale)
		out = append(out, c)
	}
	for _, scale := range []int{2, 4} {
		c := base
		c.Size *= scale
		c.Name = fmt.Sprintf("L2x%d", scale)
		out = append(out, c)
	}
	out[2].Name = base.Name // the 1x point is the captured geometry itself
	return out
}

// ReplayGeometry sweeps one recorded stream across cache geometries: a
// fresh inline replay per configuration, each re-simulating the identical
// profiled address stream.
func ReplayGeometry(stream []byte) (*ReplayGeometryResult, error) {
	dec := wire.NewDecoder(bytes.NewReader(stream))
	h, err := dec.Header()
	if err != nil {
		return nil, fmt.Errorf("harness: stream header: %w", err)
	}
	base, err := umi.ConfigFromWireHeader(h)
	if err != nil {
		return nil, fmt.Errorf("harness: stream header: %w", err)
	}
	res := &ReplayGeometryResult{
		Workload: h.Workload,
		Machine:  h.Machine,
		Captured: base.MiniSimCache.Name,
	}
	lo, hi := 1.0, 0.0
	for _, cc := range replayGeometrySweep(base.MiniSimCache) {
		if err := cc.Validate(); err != nil {
			return nil, fmt.Errorf("harness: swept geometry %s: %w", cc.Name, err)
		}
		d := wire.NewDecoder(bytes.NewReader(stream))
		hh, err := d.Header()
		if err != nil {
			return nil, fmt.Errorf("harness: stream header: %w", err)
		}
		cfg, err := umi.ConfigFromWireHeader(hh)
		if err != nil {
			return nil, fmt.Errorf("harness: stream header: %w", err)
		}
		cfg.MiniSimCache = cc
		rp := umi.NewReplay(cfg)
		shard, err := rp.Consume(d)
		if err != nil {
			return nil, fmt.Errorf("harness: replay %s: %w", cc.Name, err)
		}
		tr := shard.Trailer
		rep := rp.Report(len(tr.TracePCs), len(tr.CandidatePCs), tr.InstrumentEvents)
		res.Points = append(res.Points, ReplayGeometryPoint{
			Config: cc, MissRatio: rep.SimMissRatio, Delinquent: len(rep.Delinquent),
		})
		if rep.SimMissRatio < lo {
			lo = rep.SimMissRatio
		}
		if rep.SimMissRatio > hi {
			hi = rep.SimMissRatio
		}
	}
	res.Spread = hi - lo
	return res, nil
}

// ReplayGeometryWorkload is the self-contained form: record the named
// workload's stream in memory, then sweep it. One capture, five replays.
func ReplayGeometryWorkload(name string) (*ReplayGeometryResult, error) {
	stream, err := EmitWorkloadStream(name)
	if err != nil {
		return nil, err
	}
	return ReplayGeometry(stream)
}

// RenderReplayGeometry renders the sweep.
func RenderReplayGeometry(r *ReplayGeometryResult) string {
	t := stats.NewTable(
		fmt.Sprintf("Replay geometry sweep: %s on %s — one recorded stream, many caches",
			r.Workload, r.Machine),
		"Cache", "Size", "Sim miss ratio", "|P|")
	for _, p := range r.Points {
		name := p.Config.Name
		if name == r.Captured {
			name += " (captured)"
		}
		t.AddRow(name, fmt.Sprintf("%dKB", p.Config.Size/1024),
			fmt.Sprintf("%.4f", p.MissRatio), fmt.Sprint(p.Delinquent))
	}
	return t.String() + fmt.Sprintf("spread across geometries: %.4f\n", r.Spread)
}
