package harness

import "sync"

// Experiment-level parallelism: every driver in this package iterates
// independent (workload × configuration) cells — each cell builds its own
// machine, hierarchy, and UMI system, so cells share nothing but the
// immutable workload programs. forEachIndexed fans those loops out across
// a bounded worker pool while keeping output deterministic: results land
// in index-addressed slots, so the rendered tables are byte-identical at
// any parallelism level.

var parallelism = 1

// SetParallelism sets the number of experiment cells the harness runs
// concurrently (cmd/umibench's -parallel flag). Values below 1 mean
// serial. Not safe to call while a driver is running.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism = n
}

// Parallelism returns the configured worker count.
func Parallelism() int { return parallelism }

// forEachIndexed runs fn(0) … fn(n-1) across the configured worker pool
// and returns the lowest-index error, mirroring where a serial loop would
// have stopped. With parallelism 1 it degenerates to that serial loop.
func forEachIndexed(n int, fn func(i int) error) error {
	if parallelism <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
