package harness

import (
	"fmt"

	"umi/internal/stats"
	"umi/internal/workloads"
)

// Sensitivity studies from §7.2: the frequency threshold sweep and the
// address-profile length sweep, both on 181.mcf (memory intensive, stable
// loops) and 197.parser (low miss ratio, short dynamic loops) — the
// paper's two representative benchmarks.

// SensPoint is one configuration's prediction quality.
type SensPoint struct {
	Value          int // threshold or profile rows
	Recall         float64
	FalsePositives float64
	OverheadPct    float64
	PredSize       int
}

// SensResult is one benchmark's sweep.
type SensResult struct {
	Benchmark string
	Param     string
	Points    []SensPoint
}

// SensitivityThreshold sweeps the sampling frequency threshold in powers
// of two from 1 to 1024 (§7.2).
func SensitivityThreshold(benchNames []string) ([]*SensResult, error) {
	if benchNames == nil {
		benchNames = []string{"181.mcf", "197.parser"}
	}
	var out []*SensResult
	for _, name := range benchNames {
		w, ok := workloads.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown workload %q", name)
		}
		cg, err := RunCachegrind(w, P4)
		if err != nil {
			return nil, err
		}
		truth := cg.DelinquentSet(0.90)
		native, err := RunNative(w, P4, false)
		if err != nil {
			return nil, err
		}
		var thresholds []int
		for th := 1; th <= 1024; th *= 2 {
			thresholds = append(thresholds, th)
		}
		res := &SensResult{Benchmark: name, Param: "frequency threshold",
			Points: make([]SensPoint, len(thresholds))}
		err = forEachIndexed(len(thresholds), func(i int) error {
			cfg := UMIParams(P4)
			cfg.FrequencyThreshold = thresholds[i]
			run, err := RunUMI(w, P4, cfg, false, false)
			if err != nil {
				return err
			}
			p := run.Report.Delinquent
			res.Points[i] = SensPoint{
				Value:          thresholds[i],
				Recall:         stats.Recall(p, truth),
				FalsePositives: stats.FalsePositiveRatio(p, truth),
				OverheadPct:    100 * (float64(run.TotalCycles())/float64(native.Cycles) - 1),
				PredSize:       len(p),
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// SensitivityProfileLen sweeps the address-profile length (executions
// recorded per trace) in powers of two from 64 to 32K (§7.2).
func SensitivityProfileLen(benchNames []string) ([]*SensResult, error) {
	if benchNames == nil {
		benchNames = []string{"181.mcf", "197.parser"}
	}
	var out []*SensResult
	for _, name := range benchNames {
		w, ok := workloads.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown workload %q", name)
		}
		cg, err := RunCachegrind(w, P4)
		if err != nil {
			return nil, err
		}
		truth := cg.DelinquentSet(0.90)
		native, err := RunNative(w, P4, false)
		if err != nil {
			return nil, err
		}
		var rowCounts []int
		for rows := 64; rows <= 32768; rows *= 2 {
			rowCounts = append(rowCounts, rows)
		}
		res := &SensResult{Benchmark: name, Param: "address profile rows",
			Points: make([]SensPoint, len(rowCounts))}
		err = forEachIndexed(len(rowCounts), func(i int) error {
			rows := rowCounts[i]
			cfg := UMIParams(P4)
			cfg.AddressProfileRows = rows
			// Keep the global trace-profile trigger from firing before
			// a single profile fills, as in the paper's setup.
			if cfg.TraceProfileLen < rows {
				cfg.TraceProfileLen = rows * 4
			}
			run, err := RunUMI(w, P4, cfg, false, false)
			if err != nil {
				return err
			}
			p := run.Report.Delinquent
			res.Points[i] = SensPoint{
				Value:          rows,
				Recall:         stats.Recall(p, truth),
				FalsePositives: stats.FalsePositiveRatio(p, truth),
				OverheadPct:    100 * (float64(run.TotalCycles())/float64(native.Cycles) - 1),
				PredSize:       len(p),
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// RenderSens renders a sweep result set.
func RenderSens(results []*SensResult) string {
	if len(results) == 0 {
		return "Sensitivity: no benchmarks selected\n"
	}
	var s string
	for _, r := range results {
		t := stats.NewTable(fmt.Sprintf("Sensitivity: %s vs %s", r.Benchmark, r.Param),
			r.Param, "Recall", "False Pos", "Overhead", "|P|")
		for _, pt := range r.Points {
			t.AddRow(fmt.Sprint(pt.Value), stats.Pct(pt.Recall), stats.Pct(pt.FalsePositives),
				fmt.Sprintf("%.1f%%", pt.OverheadPct), fmt.Sprint(pt.PredSize))
		}
		s += t.String() + "\n"
	}
	return s
}
