package harness

import (
	"fmt"
	"sort"
	"strings"

	"umi/internal/counters"
	"umi/internal/stats"
	"umi/internal/workloads"
)

// ---------------------------------------------------------------------
// Table 1 — running time for a range of HW counter sample sizes vs UMI.
// ---------------------------------------------------------------------

// Table1Row is one sampling configuration.
type Table1Row struct {
	SampleSize  uint64 // 0 = native, no counter
	Cycles      uint64
	SlowdownPct float64
}

// Table1Result reproduces Table 1: counter-sampling overhead on a
// memory-intensive workload, against UMI's overhead on the same workload.
type Table1Result struct {
	Workload    string
	Events      uint64 // countable events (L1 misses)
	Rows        []Table1Row
	UMICycles   uint64
	UMISlowPct  float64
	NativeCycle uint64
}

// Table1 reproduces Table 1 on the mcf stand-in (the paper's choice: "one
// of the more memory intensive applications").
func Table1() (*Table1Result, error) {
	w, ok := workloads.ByName("181.mcf")
	if !ok {
		return nil, fmt.Errorf("harness: mcf workload missing")
	}
	native, err := RunNative(w, P4, false)
	if err != nil {
		return nil, err
	}
	events := native.H.L1Stats.Misses
	model := counters.DefaultSamplingModel
	res := &Table1Result{Workload: w.Name, Events: events, NativeCycle: native.Cycles}
	res.Rows = append(res.Rows, Table1Row{SampleSize: 0, Cycles: native.Cycles})
	for _, size := range []uint64{10, 100, 1_000, 10_000, 100_000, 1_000_000} {
		t := model.Time(native.Cycles, events, size)
		res.Rows = append(res.Rows, Table1Row{
			SampleSize:  size,
			Cycles:      t,
			SlowdownPct: model.SlowdownPct(native.Cycles, events, size),
		})
	}
	umiRun, err := RunUMI(w, P4, UMIParams(P4), false, false)
	if err != nil {
		return nil, err
	}
	res.UMICycles = umiRun.TotalCycles()
	res.UMISlowPct = 100 * (float64(res.UMICycles)/float64(native.Cycles) - 1)
	return res, nil
}

func (r *Table1Result) String() string {
	t := stats.NewTable(
		fmt.Sprintf("Table 1: HW counter sampling overhead on %s (events=%d)", r.Workload, r.Events),
		"Sample Size", "Cycles", "% Slowdown")
	t.AddRow("0 (native)", fmt.Sprint(r.NativeCycle), "-")
	t.AddRow("(UMI)", fmt.Sprint(r.UMICycles), fmt.Sprintf("%.2f", r.UMISlowPct))
	for _, row := range r.Rows[1:] {
		t.AddRow(fmt.Sprint(row.SampleSize), fmt.Sprint(row.Cycles),
			fmt.Sprintf("%.2f", row.SlowdownPct))
	}
	return t.String()
}

// ---------------------------------------------------------------------
// Table 2 — qualitative tradeoffs (reprinted).
// ---------------------------------------------------------------------

// Table2 returns the paper's qualitative comparison of profiling
// methodologies.
func Table2() string {
	t := stats.NewTable("Table 2: tradeoffs in profiling methodologies",
		"", "Simulators", "HW counters", "UMI")
	t.AddRow("Overhead", "very high", "very low", "low")
	t.AddRow("Detail Level", "very high", "very low", "high")
	t.AddRow("Versatility", "very high", "very low", "high")
	return t.String()
}

// ---------------------------------------------------------------------
// Table 3 — profiling statistics (no sampling reinforcement).
// ---------------------------------------------------------------------

// Table3Row is one benchmark's profiling statistics.
type Table3Row struct {
	Name         string
	StaticLoads  int
	StaticStores int
	ProfiledOps  int
	ProfiledPct  float64
	Profiles     int
	Invocations  int
}

// Table3Result reproduces Table 3.
type Table3Result struct {
	Rows   []Table3Row
	AvgPct float64
}

// Table3 runs every selected benchmark under UMI without sample-based
// reinforcement (as the paper's Table 3 does) and reports instrumentation
// statistics. names == nil selects the paper's 32 benchmarks.
func Table3(names []string) (*Table3Result, error) {
	ws, err := selectWorkloads(names)
	if err != nil {
		return nil, err
	}
	cfg := UMIParams(P4)
	cfg.UseSampling = false
	res := &Table3Result{Rows: make([]Table3Row, len(ws))}
	err = forEachIndexed(len(ws), func(i int) error {
		w := ws[i]
		run, err := RunUMI(w, P4, cfg, false, false)
		if err != nil {
			return err
		}
		p := w.Program()
		loads, stores := p.StaticLoads(), p.StaticStores()
		res.Rows[i] = Table3Row{
			Name:         w.Name,
			StaticLoads:  loads,
			StaticStores: stores,
			ProfiledOps:  run.Report.ProfiledOps,
			ProfiledPct:  100 * float64(run.Report.ProfiledOps) / float64(loads+stores),
			Profiles:     run.Report.ProfilesCollected,
			Invocations:  run.Report.AnalyzerInvocations,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pctSum float64
	for _, row := range res.Rows {
		pctSum += row.ProfiledPct
	}
	if len(res.Rows) > 0 {
		res.AvgPct = pctSum / float64(len(res.Rows))
	}
	return res, nil
}

func (r *Table3Result) String() string {
	if len(r.Rows) == 0 {
		return "Table 3: no benchmarks selected\n"
	}
	t := stats.NewTable("Table 3: profiling statistics (no sampling reinforcement)",
		"Benchmark", "Static Loads", "Static Stores", "Profiled Ops", "% Profiled",
		"Profiles", "Analyzer Invocations")
	for _, row := range r.Rows {
		t.AddRow(row.Name, fmt.Sprint(row.StaticLoads), fmt.Sprint(row.StaticStores),
			fmt.Sprint(row.ProfiledOps), fmt.Sprintf("%.2f%%", row.ProfiledPct),
			fmt.Sprint(row.Profiles), fmt.Sprint(row.Invocations))
	}
	return t.String() + fmt.Sprintf("Average %% profiled: %.2f%%\n", r.AvgPct)
}

// ---------------------------------------------------------------------
// Tables 4 and 5 — coefficients of correlation.
// ---------------------------------------------------------------------

// CorrelationCell holds one group's correlation and sample size.
type CorrelationCell struct {
	Group string
	N     int
	R     float64
}

// Table4Result reproduces Table 4: correlations between simulated and
// hardware-measured L2 miss ratios per benchmark group, for the Pentium 4
// with and without hardware prefetching and for the AMD K7.
type Table4Result struct {
	CachegrindNoPF []CorrelationCell // vs P4 counters, prefetch off
	CachegrindPF   []CorrelationCell // vs P4 counters, prefetch on
	UMINoPF        []CorrelationCell
	UMIPF          []CorrelationCell
	UMIK7          []CorrelationCell
	// PerBench records the underlying ratios for inspection.
	PerBench []Table4Bench
}

// Table4Bench carries one benchmark's miss ratios from every measurement
// source.
type Table4Bench struct {
	Name       string
	Suite      workloads.Suite
	HWNoPF     float64 // P4 counters, prefetch disabled
	HWPF       float64 // P4 counters, prefetch enabled
	HWK7       float64 // K7 counters
	Cachegrind float64
	UMISim     float64 // UMI mini-simulation (P4 geometry)
	UMISimK7   float64 // UMI mini-simulation (K7 geometry)
}

func groupCorrelations(rows []Table4Bench, sim func(Table4Bench) float64, hw func(Table4Bench) float64,
	groups []workloads.Suite) []CorrelationCell {
	cells := make([]CorrelationCell, 0, len(groups)+1)
	var allS, allH []float64
	for _, g := range groups {
		var s, h []float64
		for _, r := range rows {
			if r.Suite != g {
				continue
			}
			s = append(s, sim(r))
			h = append(h, hw(r))
		}
		allS = append(allS, s...)
		allH = append(allH, h...)
		cells = append(cells, CorrelationCell{Group: g.String(), N: len(s), R: stats.Correlation(s, h)})
	}
	cells = append(cells, CorrelationCell{Group: "All", N: len(allS), R: stats.Correlation(allS, allH)})
	return cells
}

// Table4 reproduces Table 4 over the selected benchmarks (nil = the
// paper's 32).
func Table4(names []string) (*Table4Result, error) {
	ws, err := selectWorkloads(names)
	if err != nil {
		return nil, err
	}
	res := &Table4Result{PerBench: make([]Table4Bench, len(ws))}
	err = forEachIndexed(len(ws), func(i int) error {
		w := ws[i]
		row := Table4Bench{Name: w.Name, Suite: w.Suite}

		nNoPF, err := RunNative(w, P4, false)
		if err != nil {
			return err
		}
		row.HWNoPF = nNoPF.H.L2Stats.MissRatio()

		nPF, err := RunNative(w, P4, true)
		if err != nil {
			return err
		}
		row.HWPF = nPF.H.L2Stats.MissRatio()

		nK7, err := RunNative(w, K7, false)
		if err != nil {
			return err
		}
		row.HWK7 = nK7.H.L2Stats.MissRatio()

		cg, err := RunCachegrind(w, P4)
		if err != nil {
			return err
		}
		row.Cachegrind = cg.L2MissRatio()

		uP4, err := RunUMI(w, P4, UMIParams(P4), false, false)
		if err != nil {
			return err
		}
		row.UMISim = uP4.Report.SimMissRatio

		uK7, err := RunUMI(w, K7, UMIParams(K7), false, false)
		if err != nil {
			return err
		}
		row.UMISimK7 = uK7.Report.SimMissRatio

		res.PerBench[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	groups := []workloads.Suite{workloads.CFP2000, workloads.CINT2000, workloads.Olden}
	simCG := func(r Table4Bench) float64 { return r.Cachegrind }
	simUMI := func(r Table4Bench) float64 { return r.UMISim }
	simUMIK7 := func(r Table4Bench) float64 { return r.UMISimK7 }
	res.CachegrindNoPF = groupCorrelations(res.PerBench, simCG, func(r Table4Bench) float64 { return r.HWNoPF }, groups)
	res.CachegrindPF = groupCorrelations(res.PerBench, simCG, func(r Table4Bench) float64 { return r.HWPF }, groups)
	res.UMINoPF = groupCorrelations(res.PerBench, simUMI, func(r Table4Bench) float64 { return r.HWNoPF }, groups)
	res.UMIPF = groupCorrelations(res.PerBench, simUMI, func(r Table4Bench) float64 { return r.HWPF }, groups)
	res.UMIK7 = groupCorrelations(res.PerBench, simUMIK7, func(r Table4Bench) float64 { return r.HWK7 }, groups)
	return res, nil
}

func cellsToRow(cells []CorrelationCell) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = fmt.Sprintf("%.3f", c.R)
	}
	return out
}

func (r *Table4Result) String() string {
	header := []string{"Platform / Tool"}
	for _, c := range r.UMINoPF {
		header = append(header, c.Group)
	}
	t := stats.NewTable("Table 4: coefficients of correlation (simulated vs HW-measured L2 miss ratios)", header...)
	t.AddRow(append([]string{"P4 no-prefetch / Cachegrind"}, cellsToRow(r.CachegrindNoPF)...)...)
	t.AddRow(append([]string{"P4 prefetch    / Cachegrind"}, cellsToRow(r.CachegrindPF)...)...)
	t.AddRow(append([]string{"P4 no-prefetch / UMI"}, cellsToRow(r.UMINoPF)...)...)
	t.AddRow(append([]string{"P4 prefetch    / UMI"}, cellsToRow(r.UMIPF)...)...)
	t.AddRow(append([]string{"AMD K7         / UMI"}, cellsToRow(r.UMIK7)...)...)
	return t.String()
}

// Table5Result reproduces Table 5: SPEC2006 correlations on the Pentium 4
// with hardware prefetching.
type Table5Result struct {
	Cells    []CorrelationCell
	PerBench []Table4Bench
}

// Table5 runs the CPU2006 subset.
func Table5() (*Table5Result, error) {
	var names []string
	for _, w := range workloads.BySuite(workloads.CFP2006) {
		names = append(names, w.Name)
	}
	for _, w := range workloads.BySuite(workloads.CINT2006) {
		names = append(names, w.Name)
	}
	ws, err := selectWorkloads(names)
	if err != nil {
		return nil, err
	}
	res := &Table5Result{PerBench: make([]Table4Bench, len(ws))}
	err = forEachIndexed(len(ws), func(i int) error {
		w := ws[i]
		nPF, err := RunNative(w, P4, true)
		if err != nil {
			return err
		}
		u, err := RunUMI(w, P4, UMIParams(P4), true, false)
		if err != nil {
			return err
		}
		res.PerBench[i] = Table4Bench{
			Name: w.Name, Suite: w.Suite,
			HWPF:   nPF.H.L2Stats.MissRatio(),
			UMISim: u.Report.SimMissRatio,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	groups := []workloads.Suite{workloads.CFP2006, workloads.CINT2006}
	res.Cells = groupCorrelations(res.PerBench,
		func(r Table4Bench) float64 { return r.UMISim },
		func(r Table4Bench) float64 { return r.HWPF }, groups)
	// Rename the aggregate to match the paper's column.
	res.Cells[len(res.Cells)-1].Group = "SPEC2006"
	return res, nil
}

func (r *Table5Result) String() string {
	header := []string{"Platform"}
	for _, c := range r.Cells {
		header = append(header, c.Group)
	}
	t := stats.NewTable("Table 5: SPEC2006 coefficients of correlation", header...)
	t.AddRow(append([]string{"P4 with HW prefetching / UMI"}, cellsToRow(r.Cells)...)...)
	return t.String()
}

// ---------------------------------------------------------------------
// Table 6 — quality of delinquent load prediction.
// ---------------------------------------------------------------------

// Table6Row is one benchmark's prediction-quality record.
type Table6Row struct {
	Name           string
	L2MissRatio    float64 // Cachegrind-measured
	P              int     // |P|: loads UMI predicted delinquent
	PToTotalLoads  float64 // |P| / static loads
	PMissCoverage  float64 // misses covered by P
	C              int     // |C|: 90%-coverage set from Cachegrind
	PandC          int     // |P ∩ C|
	PandCMissCover float64
	Recall         float64 // |P∩C| / |C|
	FalsePositives float64 // |P-C| / |P|
}

// Table6Result reproduces Table 6 with the paper's three average rows.
type Table6Result struct {
	Rows    []Table6Row
	AvgLow  Table6Row // miss ratio < 1%
	AvgHigh Table6Row // miss ratio >= 1%
	AvgAll  Table6Row
}

// Table6 evaluates delinquent-load prediction quality against the
// Cachegrind reference on the selected benchmarks (nil = the paper's 32),
// with x = 90% delinquency coverage.
func Table6(names []string) (*Table6Result, error) {
	ws, err := selectWorkloads(names)
	if err != nil {
		return nil, err
	}
	res := &Table6Result{Rows: make([]Table6Row, len(ws))}
	err = forEachIndexed(len(ws), func(i int) error {
		w := ws[i]
		cg, err := RunCachegrind(w, P4)
		if err != nil {
			return err
		}
		run, err := RunUMI(w, P4, UMIParams(P4), false, false)
		if err != nil {
			return err
		}
		c := cg.DelinquentSet(0.90)
		p := run.Report.Delinquent
		inter := stats.Intersection(p, c)
		res.Rows[i] = Table6Row{
			Name:           w.Name,
			L2MissRatio:    cg.L2MissRatio(),
			P:              len(p),
			PToTotalLoads:  float64(len(p)) / float64(w.Program().StaticLoads()),
			PMissCoverage:  cg.MissCoverage(p),
			C:              len(c),
			PandC:          len(inter),
			PandCMissCover: cg.MissCoverage(inter),
			Recall:         stats.Recall(p, c),
			FalsePositives: stats.FalsePositiveRatio(p, c),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.AvgLow = averageRows("Average (miss ratio < 1%)", res.Rows, func(r Table6Row) bool {
		return r.L2MissRatio < 0.01
	})
	res.AvgHigh = averageRows("Average (miss ratio >= 1%)", res.Rows, func(r Table6Row) bool {
		return r.L2MissRatio >= 0.01
	})
	res.AvgAll = averageRows("Average (all benchmarks)", res.Rows, func(Table6Row) bool { return true })
	return res, nil
}

func averageRows(name string, rows []Table6Row, keep func(Table6Row) bool) Table6Row {
	var out Table6Row
	out.Name = name
	n := 0
	for _, r := range rows {
		if !keep(r) {
			continue
		}
		n++
		out.P += r.P
		out.C += r.C
		out.PandC += r.PandC
		out.PToTotalLoads += r.PToTotalLoads
		out.PMissCoverage += r.PMissCoverage
		out.PandCMissCover += r.PandCMissCover
		out.Recall += r.Recall
		out.FalsePositives += r.FalsePositives
	}
	if n == 0 {
		return out
	}
	out.P /= n
	out.C /= n
	out.PandC /= n
	out.PToTotalLoads /= float64(n)
	out.PMissCoverage /= float64(n)
	out.PandCMissCover /= float64(n)
	out.Recall /= float64(n)
	out.FalsePositives /= float64(n)
	return out
}

func table6Cells(r Table6Row) []string {
	ratio := fmt.Sprintf("%.2f%%", 100*r.L2MissRatio)
	if r.L2MissRatio == 0 && r.P == 0 && r.C == 0 {
		ratio = "-"
	}
	if strings.HasPrefix(r.Name, "Average") {
		ratio = "-"
	}
	return []string{
		r.Name,
		ratio,
		fmt.Sprint(r.P),
		fmt.Sprintf("%.2f%%", 100*r.PToTotalLoads),
		fmt.Sprintf("%.2f%%", 100*r.PMissCoverage),
		fmt.Sprint(r.C),
		fmt.Sprint(r.PandC),
		fmt.Sprintf("%.2f%%", 100*r.PandCMissCover),
		fmt.Sprintf("%.2f%%", 100*r.Recall),
		fmt.Sprintf("%.2f%%", 100*r.FalsePositives),
	}
}

func (r *Table6Result) String() string {
	if len(r.Rows) == 0 {
		return "Table 6: no benchmarks selected\n"
	}
	t := stats.NewTable("Table 6: quality of delinquent load prediction (x = 90%)",
		"Benchmark", "L2 Miss Ratio", "|P|", "|P|/loads", "P Coverage",
		"|C|", "|P^C|", "P^C Coverage", "Recall", "False Pos")
	for _, row := range r.Rows {
		t.AddRow(table6Cells(row)...)
	}
	t.AddRow(table6Cells(r.AvgLow)...)
	t.AddRow(table6Cells(r.AvgHigh)...)
	t.AddRow(table6Cells(r.AvgAll)...)
	return t.String()
}

// SortedPCs renders a delinquent set deterministically (test helper).
func SortedPCs(set map[uint64]bool) string {
	pcs := make([]uint64, 0, len(set))
	for pc := range set {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	var sb strings.Builder
	for _, pc := range pcs {
		fmt.Fprintf(&sb, "%#x ", pc)
	}
	return sb.String()
}
