package harness

import (
	"fmt"

	"umi/internal/cache"
	"umi/internal/rio"
	"umi/internal/stats"
	"umi/internal/umi"
	"umi/internal/vm"
	"umi/internal/workloads"
)

// §5 claim: "The mini-simulation results were observed to be far more
// dependent on the length of the address profiles, than on the actual
// configuration of the simulated cache." This experiment quantifies both
// sensitivities: one UMI run per benchmark feeds the identical profiles to
// several cache geometries at once (the what-if consumer), while separate
// runs sweep the address-profile length.

// GeometryPoint is one simulated-geometry outcome.
type GeometryPoint struct {
	Config    cache.Config
	MissRatio float64
}

// LengthPoint is one profile-length outcome.
type LengthPoint struct {
	Rows      int
	MissRatio float64
}

// GeometryResult is one benchmark's two sweeps.
type GeometryResult struct {
	Benchmark  string
	Geometries []GeometryPoint
	Lengths    []LengthPoint
	GeomSpread float64 // max-min across geometries
	LenSpread  float64 // max-min across lengths
}

// RunUMIWithConsumers is RunUMI plus extra profile analyses attached to
// the system.
func RunUMIWithConsumers(w *workloads.Workload, p *Platform, cfg umi.Config,
	hwPrefetch bool, consumers ...umi.ProfileConsumer) (*UMIRun, error) {
	h := p.Hierarchy(hwPrefetch)
	m := vm.New(w.Program(), h)
	rt := rio.NewRuntime(m)
	s := umi.Attach(rt, cfg)
	for _, c := range consumers {
		s.AddConsumer(c)
	}
	if err := rt.Run(MaxInstrs); err != nil {
		return nil, fmt.Errorf("%s umi: %w", w.Name, err)
	}
	s.Finish()
	return &UMIRun{Report: s.Report(), RT: rt, H: h, Metrics: s.MetricsSnapshot()}, nil
}

// geometrySweep is the set of what-if cache configurations: the host L2
// scaled from a quarter to four times its size.
func geometrySweep() []cache.Config {
	out := make([]cache.Config, 0, 5)
	for _, scale := range []int{4, 2, 1} {
		c := cache.P4L2
		c.Size /= scale
		c.Name = fmt.Sprintf("L2/%d", scale)
		out = append(out, c)
	}
	for _, scale := range []int{2, 4} {
		c := cache.P4L2
		c.Size *= scale
		c.Name = fmt.Sprintf("L2x%d", scale)
		out = append(out, c)
	}
	return out
}

// SensitivityGeometry runs the §5 sensitivity comparison on the given
// benchmarks (default: mcf and swim — one pointer chaser, one streamer).
func SensitivityGeometry(benchNames []string) ([]*GeometryResult, error) {
	if benchNames == nil {
		benchNames = []string{"181.mcf", "171.swim"}
	}
	var out []*GeometryResult
	for _, name := range benchNames {
		w, ok := workloads.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown workload %q", name)
		}
		res := &GeometryResult{Benchmark: name}

		// One run, many geometries over the identical profiles.
		cfg := UMIParams(P4)
		wi := umi.NewWhatIf(cfg.WarmupRows, geometrySweep()...)
		if _, err := RunUMIWithConsumers(w, P4, cfg, false, wi); err != nil {
			return nil, err
		}
		lo, hi := 1.0, 0.0
		for _, r := range wi.Results() {
			res.Geometries = append(res.Geometries, GeometryPoint{Config: r.Config, MissRatio: r.MissRatio})
			if r.MissRatio < lo {
				lo = r.MissRatio
			}
			if r.MissRatio > hi {
				hi = r.MissRatio
			}
		}
		res.GeomSpread = hi - lo

		// Profile-length sweep (separate runs; the recorded history
		// itself changes).
		lo, hi = 1.0, 0.0
		for rows := 16; rows <= 1024; rows *= 4 {
			c := UMIParams(P4)
			c.AddressProfileRows = rows
			if c.TraceProfileLen < rows {
				c.TraceProfileLen = rows * 4
			}
			run, err := RunUMI(w, P4, c, false, false)
			if err != nil {
				return nil, err
			}
			r := run.Report.SimMissRatio
			res.Lengths = append(res.Lengths, LengthPoint{Rows: rows, MissRatio: r})
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		res.LenSpread = hi - lo
		out = append(out, res)
	}
	return out, nil
}

// RenderGeometry renders the sensitivity comparison.
func RenderGeometry(results []*GeometryResult) string {
	if len(results) == 0 {
		return "Geometry sensitivity: no benchmarks selected\n"
	}
	var s string
	for _, r := range results {
		t := stats.NewTable(
			fmt.Sprintf("Geometry sensitivity (§5): %s — identical profiles, varying cache", r.Benchmark),
			"Cache", "Size", "Sim miss ratio")
		for _, g := range r.Geometries {
			t.AddRow(g.Config.Name, fmt.Sprintf("%dKB", g.Config.Size/1024),
				fmt.Sprintf("%.4f", g.MissRatio))
		}
		s += t.String()
		t2 := stats.NewTable(
			fmt.Sprintf("Profile-length sensitivity: %s — fixed cache, varying rows", r.Benchmark),
			"Rows", "Sim miss ratio")
		for _, l := range r.Lengths {
			t2.AddRow(fmt.Sprint(l.Rows), fmt.Sprintf("%.4f", l.MissRatio))
		}
		s += t2.String()
		s += fmt.Sprintf("spread: geometry %.4f vs profile length %.4f\n\n",
			r.GeomSpread, r.LenSpread)
	}
	return s
}
