package harness

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"umi/internal/umi"
	"umi/internal/workloads"
)

// The golden tests pin every rendered report byte-exact. The simulator is
// deterministic, so any drift — a reordered row, a reformatted column, a
// changed statistic — fails the comparison. After an intentional change,
// regenerate with:
//
//	go test ./internal/harness -run Golden -update

var update = flag.Bool("update", false, "rewrite golden files with current output")

// golden compares got against testdata/<name>.golden byte-exact, or
// rewrites the file under -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with `go test ./internal/harness -run Golden -update`): %v",
			path, err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from its golden file at %s\n--- got ---\n%s--- want ---\n%s",
			name, firstDiff(string(want), got), got, want)
	}
}

// firstDiff names the first diverging line, so a one-character drift in a
// wide table is findable without eyeballing the full dump.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return "line " + itoa(i+1)
		}
	}
	return "line " + itoa(min(len(wl), len(gl))+1)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// figNames is a smaller subset for the prefetch figures, which run each
// candidate benchmark four times. Kept to two workloads (one streamer
// with prefetch opportunities, one pointer code) so the package stays
// inside the race detector's time budget in `make check`.
var figNames = []string{"171.swim", "em3d"}

func TestGoldenTable1(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "table1", r.String())
}

func TestGoldenTable2(t *testing.T) {
	golden(t, "table2", Table2())
}

func TestGoldenTable3(t *testing.T) {
	r, err := Table3(subset)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "table3", r.String())
}

func TestGoldenTable4(t *testing.T) {
	r, err := Table4(subset)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "table4", r.String())
}

func TestGoldenTable5(t *testing.T) {
	r, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "table5", r.String())
}

func TestGoldenTable6(t *testing.T) {
	r, err := Table6(subset)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "table6", r.String())
}

func TestGoldenFig2(t *testing.T) {
	r, err := Fig2(figNames)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fig2", r.String())
}

func TestGoldenFig3(t *testing.T) {
	r, err := Fig3(figNames)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fig3", r.String())
}

func TestGoldenFig4(t *testing.T) {
	r, err := Fig4(figNames)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fig4", r.String())
}

func TestGoldenFig5(t *testing.T) {
	r, err := Fig5(figNames)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fig5", r.String())
}

func TestGoldenFig6(t *testing.T) {
	r, err := Fig6(figNames)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fig6", r.String())
}

func TestGoldenSensThreshold(t *testing.T) {
	r, err := SensitivityThreshold([]string{"470.lbm"})
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "sens_threshold", RenderSens(r))
}

func TestGoldenSensProfileLen(t *testing.T) {
	r, err := SensitivityProfileLen([]string{"470.lbm"})
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "sens_profile", RenderSens(r))
}

func TestGoldenSensGeometry(t *testing.T) {
	r, err := SensitivityGeometry([]string{"em3d"})
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "sens_geometry", RenderGeometry(r))
}

func TestGoldenCountersVsUMI(t *testing.T) {
	r, err := CountersVsUMIRun([]string{"470.lbm"})
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "counters_vs_umi", RenderCvU(r))
}

func TestGoldenLinuxApps(t *testing.T) {
	r, err := LinuxApps()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "linuxapps", r.String())
}

// TestGoldenSelfOverhead pins only the deterministic half of the
// self-overhead report; LiveString carries wall-clock latency and is
// excluded by design.
func TestGoldenSelfOverhead(t *testing.T) {
	r, err := SelfOverhead([]string{"470.lbm", "em3d"})
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "self_overhead", r.String())
	// The measured half is never golden-compared, but it must render the
	// wall sections for the same workloads.
	live := r.LiveString()
	for _, want := range []string{"Measured analysis latency", "Event tracing throughput", "470.lbm"} {
		if !strings.Contains(live, want) {
			t.Errorf("LiveString missing %q:\n%s", want, live)
		}
	}
}

// TestGoldenTimeline pins the delinquent-set-evolution figure, the
// event-tracing layer's deterministic render: every column derives from
// the modelled cycle clock, so it is byte-stable like any other table.
func TestGoldenTimeline(t *testing.T) {
	r, err := Timeline([]string{"470.lbm", "em3d"})
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "timeline", r.String())
}

// TestGoldenPhases pins the phase-history figure: the windowed
// miss-ratio/churn render drawn from the profile-history ring. Every
// column derives from modelled state, so it is byte-stable.
func TestGoldenPhases(t *testing.T) {
	r, err := Phases([]string{"470.lbm", "em3d"})
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "phases", r.String())
}

// TestGoldenUMIReport pins the umi.Report rendering itself, the string
// every consumer above the harness sees.
func TestGoldenUMIReport(t *testing.T) {
	w, ok := workloads.ByName("470.lbm")
	if !ok {
		t.Fatal("470.lbm missing from the workload registry")
	}
	run, err := RunUMI(w, P4, UMIParams(P4), false, false)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "umi_report", run.Report.String()+"\n")
}

// TestGoldenOverheadReport pins the per-stage attribution render for one
// deterministic run — the modelled-cycles view only (String); the wall
// view (LiveString) is measured and excluded by design.
func TestGoldenOverheadReport(t *testing.T) {
	w, ok := workloads.ByName("470.lbm")
	if !ok {
		t.Fatal("470.lbm missing from the workload registry")
	}
	run, err := RunUMI(w, P4, UMIParams(P4), false, false)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "overhead_report", run.Overhead.String())
}

// TestGoldenOverheadFrontier pins the overhead/accuracy frontier figure on
// a two-workload subset and asserts the acceptance bar the figure exists
// to demonstrate: the burst-8 + adaptation point must cut fill cycles by
// at least 40% on average while keeping delinquent-set recall at 0.90+.
func TestGoldenOverheadFrontier(t *testing.T) {
	r, err := OverheadFrontier(figNames)
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "overhead_frontier", r.String())

	var adapt *FrontierPoint
	for _, pt := range r.Points {
		if pt.Config.Label == "burst-8+adapt" {
			adapt = pt
		}
	}
	if adapt == nil {
		t.Fatal("frontier has no burst-8+adapt point")
	}
	if adapt.MeanFillReductionPct < 40 {
		t.Errorf("burst-8+adapt cuts fill cycles by %.1f%%, acceptance bar is 40%%",
			adapt.MeanFillReductionPct)
	}
	if adapt.MeanRecall < 0.90 {
		t.Errorf("burst-8+adapt recall = %.3f, acceptance bar is 0.90", adapt.MeanRecall)
	}
}

// TestEmptyRenderers checks the degraded renders: every report producer
// must say explicitly that there is nothing to show rather than emitting
// an empty string or a header-only table (satellite of the observability
// work — an empty session must be distinguishable from a broken pipe).
func TestEmptyRenderers(t *testing.T) {
	cases := []struct {
		name, got, want string
	}{
		{"umi.Report", (&umi.Report{}).String(), "no traces instrumented"},
		{"RenderSens", RenderSens(nil), "Sensitivity: no benchmarks selected\n"},
		{"RenderGeometry", RenderGeometry(nil), "Geometry sensitivity: no benchmarks selected\n"},
		{"RenderCvU", RenderCvU(nil), "Counter sampling vs UMI: no benchmarks selected\n"},
		{"Fig2Result", (&Fig2Result{}).String(), "Figure 2: no benchmarks selected\n"},
		{"PrefetchResult", (&PrefetchResult{Title: "Figure 3"}).String(),
			"Figure 3: no benchmarks with prefetching opportunities\n"},
		{"Table3Result", (&Table3Result{}).String(), "Table 3: no benchmarks selected\n"},
		{"Table6Result", (&Table6Result{}).String(), "Table 6: no benchmarks selected\n"},
		{"SelfOverheadResult", (&SelfOverheadResult{}).String(), "Self-overhead: no workloads selected\n"},
		{"TimelineResult", (&TimelineResult{}).String(), "Timeline: no benchmarks selected\n"},
		{"PhasesResult", (&PhasesResult{}).String(), "Phases: no benchmarks selected\n"},
		{"FormatHistory", umi.FormatHistory(nil), "phase history: no analyzer invocations\n"},
		{"OverheadReport", (&umi.OverheadReport{}).String(), "self-overhead: no guest cycles recorded\n"},
		{"OverheadReport.Live", (&umi.OverheadReport{}).LiveString(), "self-overhead (wall): no wall time recorded\n"},
		{"FrontierResult", (&FrontierResult{}).String(), "Overhead frontier: no configurations\n"},
	}
	for _, c := range cases {
		if !strings.Contains(c.got, strings.TrimSuffix(c.want, "\n")) {
			t.Errorf("%s empty render = %q, want it to contain %q", c.name, c.got, c.want)
		}
	}
}
