// Package harness drives the reproduction's experiments: one driver per
// table and figure of the paper's evaluation (see DESIGN.md's
// per-experiment index). Every driver returns a typed result with a
// String() rendering that mirrors the paper's presentation, so
// cmd/umibench and the bench suite can regenerate any artifact.
package harness

import (
	"fmt"
	"time"

	"umi/internal/cache"
	"umi/internal/cachegrind"
	"umi/internal/metrics"
	"umi/internal/prefetch"
	"umi/internal/rio"
	"umi/internal/tracelog"
	"umi/internal/umi"
	"umi/internal/vm"
	"umi/internal/workloads"
)

// MaxInstrs bounds any single simulated run; the workloads retire a few
// million instructions, so hitting this indicates a bug.
const MaxInstrs = 200_000_000

// Platform describes one evaluation machine from §6.
type Platform struct {
	Name          string
	L2            cache.Config
	HasHWPrefetch bool
	newHierarchy  func(hwPrefetch bool) *cache.Hierarchy
}

// Hierarchy builds a fresh memory system for the platform.
func (p *Platform) Hierarchy(hwPrefetch bool) *cache.Hierarchy {
	return p.newHierarchy(hwPrefetch && p.HasHWPrefetch)
}

// The two evaluation platforms.
var (
	P4 = &Platform{Name: "Pentium 4", L2: cache.P4L2, HasHWPrefetch: true,
		newHierarchy: cache.NewP4}
	K7 = &Platform{Name: "AMD K7", L2: cache.K7L2, HasHWPrefetch: false,
		newHierarchy: func(bool) *cache.Hierarchy { return cache.NewK7() }}
)

// UMIParams returns the harness's standard UMI configuration for a
// platform. The paper's sampling constants assume minutes-long SPEC runs;
// these are the same policies rescaled to the workloads' few-million
// instruction budgets (DESIGN.md records the substitution).
func UMIParams(p *Platform) umi.Config {
	cfg := umi.DefaultConfig(p.L2)
	cfg.SamplePeriod = 2_000
	cfg.FrequencyThreshold = 8
	cfg.ReinstrumentGap = 100_000
	return cfg
}

// NativeResult is one plain-hardware run.
type NativeResult struct {
	Cycles uint64
	Instrs uint64
	H      *cache.Hierarchy
}

// RunNative executes the workload directly on the platform's hardware
// model (the paper's "native execution").
func RunNative(w *workloads.Workload, p *Platform, hwPrefetch bool) (*NativeResult, error) {
	h := p.Hierarchy(hwPrefetch)
	m := vm.New(w.Program(), h)
	if err := m.Run(MaxInstrs); err != nil {
		return nil, fmt.Errorf("%s native: %w", w.Name, err)
	}
	return &NativeResult{Cycles: m.Cycles, Instrs: m.Instrs, H: h}, nil
}

// RunRIO executes the workload under the code-cache substrate alone
// (the "DynamoRIO" bar of Figure 2).
func RunRIO(w *workloads.Workload, p *Platform, hwPrefetch bool) (*rio.Runtime, error) {
	h := p.Hierarchy(hwPrefetch)
	m := vm.New(w.Program(), h)
	rt := rio.NewRuntime(m)
	if err := rt.Run(MaxInstrs); err != nil {
		return nil, fmt.Errorf("%s rio: %w", w.Name, err)
	}
	return rt, nil
}

// UMIRun is one full UMI execution.
type UMIRun struct {
	Report *umi.Report
	RT     *rio.Runtime
	H      *cache.Hierarchy
	Opt    *prefetch.Optimizer // nil unless prefetching was enabled
	// Metrics is the run's final self-observability snapshot (filter
	// counts, analysis latency, pipeline queue pressure).
	Metrics metrics.Snapshot
	// Events is the run's structured event timeline. The harness always
	// records it: recording is observational (every experiment's modelled
	// numbers are byte-identical with or without it), and the timeline
	// experiments read it back.
	Events *tracelog.Log
	// History is the run's profile-history snapshot: one WindowSummary per
	// analyzer invocation, with churn and phase-change accounting. Like
	// Events it is always recorded (capture is observational) and fully
	// deterministic, so the phases experiment can render it golden-tested.
	History umi.HistoryView
	// Wall is the measured wall-clock duration of the guest run — the
	// denominator for events/sec and other live rates. Nondeterministic;
	// never renders into a golden surface.
	Wall time.Duration
	// Overhead is the per-stage self-overhead attribution report. The
	// modelled-cycles half is deterministic (golden-safe); the wall half is
	// measured and belongs to live renders only.
	Overhead *umi.OverheadReport
}

// TotalCycles is the modelled running time under UMI.
func (r *UMIRun) TotalCycles() uint64 { return r.RT.TotalCycles() }

// RunUMI executes the workload under the full UMI stack. withPrefetch
// attaches the software stride prefetcher at the analysis boundary.
func RunUMI(w *workloads.Workload, p *Platform, cfg umi.Config, hwPrefetch, withPrefetch bool) (*UMIRun, error) {
	h := p.Hierarchy(hwPrefetch)
	m := vm.New(w.Program(), h)
	rt := rio.NewRuntime(m)
	s := umi.Attach(rt, cfg)
	elog := s.EnableEventTrace(0)
	var opt *prefetch.Optimizer
	if withPrefetch {
		opt = prefetch.NewOptimizer(prefetch.DefaultConfig)
		s.OnAnalyzed = opt.Hook()
	}
	start := time.Now()
	if err := rt.Run(MaxInstrs); err != nil {
		return nil, fmt.Errorf("%s umi: %w", w.Name, err)
	}
	s.Finish()
	wall := time.Since(start)
	return &UMIRun{Report: s.Report(), RT: rt, H: h, Opt: opt,
		Metrics: s.MetricsSnapshot(), Events: elog,
		History: s.History(), Wall: wall, Overhead: s.Overhead()}, nil
}

// RunCachegrind executes the workload natively while feeding every memory
// reference through the offline simulator configured like the platform.
func RunCachegrind(w *workloads.Workload, p *Platform) (*cachegrind.Simulator, error) {
	var sim *cachegrind.Simulator
	switch p {
	case K7:
		sim = cachegrind.NewK7()
	default:
		sim = cachegrind.NewP4()
	}
	m := vm.New(w.Program(), nil)
	m.RefHook = sim.Ref
	if err := m.Run(MaxInstrs); err != nil {
		return nil, fmt.Errorf("%s cachegrind: %w", w.Name, err)
	}
	return sim, nil
}

// namesOf is a selection helper: nil means the paper's 32-benchmark core.
func selectWorkloads(names []string) ([]*workloads.Workload, error) {
	if names == nil {
		return workloads.CPU2000AndOlden(), nil
	}
	out := make([]*workloads.Workload, 0, len(names))
	for _, n := range names {
		w, ok := workloads.ByName(n)
		if !ok {
			return nil, fmt.Errorf("harness: unknown workload %q", n)
		}
		out = append(out, w)
	}
	return out, nil
}
