package harness

import (
	"fmt"

	"umi/internal/stats"
	"umi/internal/workloads"
)

// ---------------------------------------------------------------------
// Figure 2 — runtime overhead of the substrate and UMI.
// ---------------------------------------------------------------------

// Fig2Row is one benchmark's overhead bars, as ratios to native time.
type Fig2Row struct {
	Name        string
	RIO         float64 // substrate only ("DynamoRIO" bar)
	UMINoSamp   float64 // UMI without sampling reinforcement
	UMISampling float64 // UMI with sampling
}

// Fig2Result reproduces Figure 2.
type Fig2Result struct {
	Rows    []Fig2Row
	GeoRIO  float64
	GeoNoS  float64
	GeoSamp float64
}

// Fig2 measures runtime overhead on the Pentium 4 with hardware
// prefetching enabled, as the paper's Figure 2 does (nil = the 32 core
// benchmarks).
func Fig2(names []string) (*Fig2Result, error) {
	ws, err := selectWorkloads(names)
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{Rows: make([]Fig2Row, len(ws))}
	err = forEachIndexed(len(ws), func(i int) error {
		w := ws[i]
		native, err := RunNative(w, P4, true)
		if err != nil {
			return err
		}
		rt, err := RunRIO(w, P4, true)
		if err != nil {
			return err
		}
		cfgNo := UMIParams(P4)
		cfgNo.UseSampling = false
		noSamp, err := RunUMI(w, P4, cfgNo, true, false)
		if err != nil {
			return err
		}
		samp, err := RunUMI(w, P4, UMIParams(P4), true, false)
		if err != nil {
			return err
		}
		res.Rows[i] = Fig2Row{
			Name:        w.Name,
			RIO:         float64(rt.TotalCycles()) / float64(native.Cycles),
			UMINoSamp:   float64(noSamp.TotalCycles()) / float64(native.Cycles),
			UMISampling: float64(samp.TotalCycles()) / float64(native.Cycles),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rs, ns, ss []float64
	for _, row := range res.Rows {
		rs = append(rs, row.RIO)
		ns = append(ns, row.UMINoSamp)
		ss = append(ss, row.UMISampling)
	}
	res.GeoRIO = stats.GeoMean(rs)
	res.GeoNoS = stats.GeoMean(ns)
	res.GeoSamp = stats.GeoMean(ss)
	return res, nil
}

func (r *Fig2Result) String() string {
	if len(r.Rows) == 0 {
		return "Figure 2: no benchmarks selected\n"
	}
	t := stats.NewTable("Figure 2: runtime overhead on Pentium 4 (ratios to native; 1.00 = no overhead)",
		"Benchmark", "DynamoRIO", "UMI no-sampling", "UMI sampling")
	for _, row := range r.Rows {
		t.AddRow(row.Name, fmt.Sprintf("%.3f", row.RIO),
			fmt.Sprintf("%.3f", row.UMINoSamp), fmt.Sprintf("%.3f", row.UMISampling))
	}
	t.AddRow("geomean", fmt.Sprintf("%.3f", r.GeoRIO),
		fmt.Sprintf("%.3f", r.GeoNoS), fmt.Sprintf("%.3f", r.GeoSamp))
	return t.String()
}

// ---------------------------------------------------------------------
// Figures 3-5 — running time with software prefetching.
// ---------------------------------------------------------------------

// PrefetchRow is one benchmark's normalized running times for a
// prefetching figure. Fields not used by a given figure are zero.
type PrefetchRow struct {
	Name     string
	Inserted int     // prefetches the optimizer injected
	UMIOnly  float64 // introspection, no optimization
	UMISW    float64 // introspection + software prefetching
	HWOnly   float64 // native with hardware prefetch (Fig 5)
	UMISWHW  float64 // software + hardware combined (Fig 5)
	// Figure 6 companions: L2 misses normalized to native-no-prefetch.
	MissSW   float64
	MissHW   float64
	MissBoth float64
}

// PrefetchResult covers Figures 3, 4, 5 and 6.
type PrefetchResult struct {
	Title   string
	Rows    []PrefetchRow
	GeoUMI  float64
	GeoSW   float64
	GeoHW   float64
	GeoBoth float64
}

// prefetchCandidates runs the selected benchmarks with the optimizer
// attached on the given platform and keeps those where it found
// opportunities (the paper found 11 of 32).
func prefetchCandidates(names []string, p *Platform) ([]*workloads.Workload, error) {
	ws, err := selectWorkloads(names)
	if err != nil {
		return nil, err
	}
	keep := make([]bool, len(ws))
	err = forEachIndexed(len(ws), func(i int) error {
		run, err := RunUMI(ws[i], p, UMIParams(p), false, true)
		if err != nil {
			return err
		}
		keep[i] = run.Opt != nil && len(run.Opt.Insertions) > 0
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*workloads.Workload
	for i, w := range ws {
		if keep[i] {
			out = append(out, w)
		}
	}
	return out, nil
}

// Fig3 reproduces Figure 3: running time on the Pentium 4 with hardware
// prefetching disabled, normalized to native, for the benchmarks with
// prefetching opportunities.
func Fig3(names []string) (*PrefetchResult, error) {
	return prefetchFigure("Figure 3: running time on Pentium 4, HW prefetch disabled (normalized to native)",
		names, P4)
}

// Fig4 reproduces Figure 4: the same experiment on the AMD K7.
func Fig4(names []string) (*PrefetchResult, error) {
	return prefetchFigure("Figure 4: running time on AMD K7 (normalized to native)", names, K7)
}

func prefetchFigure(title string, names []string, p *Platform) (*PrefetchResult, error) {
	cands, err := prefetchCandidates(names, p)
	if err != nil {
		return nil, err
	}
	res := &PrefetchResult{Title: title, Rows: make([]PrefetchRow, len(cands))}
	err = forEachIndexed(len(cands), func(i int) error {
		w := cands[i]
		native, err := RunNative(w, p, false)
		if err != nil {
			return err
		}
		plain, err := RunUMI(w, p, UMIParams(p), false, false)
		if err != nil {
			return err
		}
		sw, err := RunUMI(w, p, UMIParams(p), false, true)
		if err != nil {
			return err
		}
		res.Rows[i] = PrefetchRow{
			Name:     w.Name,
			Inserted: len(sw.Opt.Insertions),
			UMIOnly:  float64(plain.TotalCycles()) / float64(native.Cycles),
			UMISW:    float64(sw.TotalCycles()) / float64(native.Cycles),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var umiOnly, umiSW []float64
	for _, row := range res.Rows {
		umiOnly = append(umiOnly, row.UMIOnly)
		umiSW = append(umiSW, row.UMISW)
	}
	res.GeoUMI = stats.GeoMean(umiOnly)
	res.GeoSW = stats.GeoMean(umiSW)
	return res, nil
}

// Fig5 reproduces Figure 5: Pentium 4 with hardware prefetchers enabled;
// bars normalized to native execution with no prefetching.
func Fig5(names []string) (*PrefetchResult, error) {
	cands, err := prefetchCandidates(names, P4)
	if err != nil {
		return nil, err
	}
	res := &PrefetchResult{
		Title: "Figure 5: running time on Pentium 4, HW prefetch enabled (normalized to native, no prefetching)",
	}
	res.Rows = make([]PrefetchRow, len(cands))
	err = forEachIndexed(len(cands), func(i int) error {
		w := cands[i]
		base, err := RunNative(w, P4, false) // native, no prefetching
		if err != nil {
			return err
		}
		sw, err := RunUMI(w, P4, UMIParams(P4), false, true) // SW only
		if err != nil {
			return err
		}
		hw, err := RunNative(w, P4, true) // HW only
		if err != nil {
			return err
		}
		both, err := RunUMI(w, P4, UMIParams(P4), true, true) // SW + HW
		if err != nil {
			return err
		}
		res.Rows[i] = PrefetchRow{
			Name:     w.Name,
			Inserted: len(sw.Opt.Insertions),
			UMISW:    float64(sw.TotalCycles()) / float64(base.Cycles),
			HWOnly:   float64(hw.Cycles) / float64(base.Cycles),
			UMISWHW:  float64(both.TotalCycles()) / float64(base.Cycles),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var sws, hws, boths []float64
	for _, row := range res.Rows {
		sws = append(sws, row.UMISW)
		hws = append(hws, row.HWOnly)
		boths = append(boths, row.UMISWHW)
	}
	res.GeoSW = stats.GeoMean(sws)
	res.GeoHW = stats.GeoMean(hws)
	res.GeoBoth = stats.GeoMean(boths)
	return res, nil
}

// Fig6 reproduces Figure 6: L2 misses on the Pentium 4 under software,
// hardware, and combined prefetching, normalized to native execution with
// no prefetching. Lower is better; the combination should reduce misses
// more than either scheme alone (the paper's cumulative-coverage finding).
func Fig6(names []string) (*PrefetchResult, error) {
	cands, err := prefetchCandidates(names, P4)
	if err != nil {
		return nil, err
	}
	res := &PrefetchResult{
		Title: "Figure 6: L2 misses on Pentium 4 (normalized to native, no prefetching)",
	}
	rows := make([]PrefetchRow, len(cands))
	keep := make([]bool, len(cands))
	err = forEachIndexed(len(cands), func(i int) error {
		w := cands[i]
		base, err := RunNative(w, P4, false)
		if err != nil {
			return err
		}
		baseMiss := float64(base.H.L2Stats.Misses)
		if baseMiss == 0 {
			return nil
		}
		sw, err := RunUMI(w, P4, UMIParams(P4), false, true)
		if err != nil {
			return err
		}
		hw, err := RunNative(w, P4, true)
		if err != nil {
			return err
		}
		both, err := RunUMI(w, P4, UMIParams(P4), true, true)
		if err != nil {
			return err
		}
		rows[i] = PrefetchRow{
			Name:     w.Name,
			MissSW:   float64(sw.H.L2Stats.Misses) / baseMiss,
			MissHW:   float64(hw.H.L2Stats.Misses) / baseMiss,
			MissBoth: float64(both.H.L2Stats.Misses) / baseMiss,
		}
		keep[i] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	var sws, hws, boths []float64
	for i, row := range rows {
		if !keep[i] {
			continue
		}
		sws = append(sws, row.MissSW)
		hws = append(hws, row.MissHW)
		boths = append(boths, row.MissBoth)
		res.Rows = append(res.Rows, row)
	}
	res.GeoSW = stats.GeoMean(sws)
	res.GeoHW = stats.GeoMean(hws)
	res.GeoBoth = stats.GeoMean(boths)
	return res, nil
}

func (r *PrefetchResult) String() string {
	if len(r.Rows) == 0 {
		return r.Title + ": no benchmarks with prefetching opportunities\n"
	}
	switch {
	case len(r.Rows) > 0 && r.Rows[0].MissSW > 0:
		t := stats.NewTable(r.Title, "Benchmark", "SW misses", "HW misses", "SW+HW misses")
		for _, row := range r.Rows {
			t.AddRow(row.Name, fmt.Sprintf("%.3f", row.MissSW),
				fmt.Sprintf("%.3f", row.MissHW), fmt.Sprintf("%.3f", row.MissBoth))
		}
		t.AddRow("geomean", fmt.Sprintf("%.3f", r.GeoSW),
			fmt.Sprintf("%.3f", r.GeoHW), fmt.Sprintf("%.3f", r.GeoBoth))
		return t.String()
	case len(r.Rows) > 0 && r.Rows[0].HWOnly > 0:
		t := stats.NewTable(r.Title, "Benchmark", "#pf", "UMI+SW", "HW only", "SW+HW")
		for _, row := range r.Rows {
			t.AddRow(row.Name, fmt.Sprint(row.Inserted), fmt.Sprintf("%.3f", row.UMISW),
				fmt.Sprintf("%.3f", row.HWOnly), fmt.Sprintf("%.3f", row.UMISWHW))
		}
		t.AddRow("geomean", "", fmt.Sprintf("%.3f", r.GeoSW),
			fmt.Sprintf("%.3f", r.GeoHW), fmt.Sprintf("%.3f", r.GeoBoth))
		return t.String()
	default:
		t := stats.NewTable(r.Title, "Benchmark", "#pf", "UMI only", "UMI+SW prefetch")
		for _, row := range r.Rows {
			t.AddRow(row.Name, fmt.Sprint(row.Inserted),
				fmt.Sprintf("%.3f", row.UMIOnly), fmt.Sprintf("%.3f", row.UMISW))
		}
		t.AddRow("geomean", "", fmt.Sprintf("%.3f", r.GeoUMI), fmt.Sprintf("%.3f", r.GeoSW))
		return t.String()
	}
}
