package harness

import (
	"fmt"
	"sort"
	"testing"

	"umi/internal/umi"
	"umi/internal/workloads"
)

// reportKey serializes everything a UMI run reports — the delinquent set,
// per-PC simulation statistics, stride table, aggregate counters, and the
// modelled cycle total — deterministically, so two runs can be compared
// byte for byte.
func reportKey(t *testing.T, name string, cfg umi.Config) string {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	run, err := RunUMI(w, P4, cfg, false, false)
	if err != nil {
		t.Fatal(err)
	}
	r := run.Report
	s := fmt.Sprintf("%s: del=%s nstrides=%v miss=%v refs=%d flushes=%d cycles=%d inv=%d prof=%d instr=%d ",
		name, SortedPCs(r.Delinquent), len(r.Strides), r.SimMissRatio, r.SimulatedRefs, r.Flushes,
		run.TotalCycles(), r.AnalyzerInvocations, r.ProfilesCollected, r.InstrumentEvents)
	type opKey struct{ PC, A, M uint64 }
	var ops []opKey
	for pc, st := range r.OpStats {
		ops = append(ops, opKey{pc, st.Accesses, st.Misses})
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].PC < ops[j].PC })
	var st []string
	for pc, si := range r.Strides {
		st = append(st, fmt.Sprintf("%x:%d:%.4f", pc, si.Stride, si.Confidence))
	}
	sort.Strings(st)
	return s + fmt.Sprint(ops) + fmt.Sprint(st)
}

// TestAnalyzerWorkersDeterminism asserts the pipeline's core contract:
// workers=1 (inline) and workers=4 (asynchronous) produce identical
// reports. 197.parser regularly has several live profiles per analyzer
// invocation, so it exercises the fixed PC-sorted merge order; mcf is the
// memory-intensive single-hot-loop case. Run under -race (make check)
// this also validates the pipeline's synchronization.
func TestAnalyzerWorkersDeterminism(t *testing.T) {
	for _, name := range []string{"197.parser", "181.mcf"} {
		serial := UMIParams(P4)
		serial.AnalyzerWorkers = 1
		parallel := UMIParams(P4)
		parallel.AnalyzerWorkers = 4
		got, want := reportKey(t, name, parallel), reportKey(t, name, serial)
		if got != want {
			t.Errorf("%s: workers=4 report differs from workers=1:\n  workers=4: %s\n  workers=1: %s",
				name, got, want)
		}
	}
}

// TestSerialRunsAreDeterministic guards the determinism bugfix: the
// analyzer used to walk live profiles in Go map order, so two identical
// serial runs of a multi-trace workload could report different delinquent
// sets and miss counts. parser and eon are the two workloads that
// empirically exposed this.
func TestSerialRunsAreDeterministic(t *testing.T) {
	for _, name := range []string{"197.parser", "252.eon"} {
		cfg := UMIParams(P4)
		first := reportKey(t, name, cfg)
		if again := reportKey(t, name, cfg); again != first {
			t.Errorf("%s: two serial runs differ:\n  run 1: %s\n  run 2: %s", name, first, again)
		}
	}
}

// TestHarnessParallelismDeterminism asserts the experiment-level fan-out
// contract: -parallel N renders the same tables as a serial run.
func TestHarnessParallelismDeterminism(t *testing.T) {
	subset := []string{"181.mcf", "em3d", "164.gzip", "ft"}
	serial, err := Table3(subset)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	defer SetParallelism(1)
	parallel, err := Table3(subset)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := parallel.String(), serial.String(); got != want {
		t.Errorf("Table3 differs at parallelism 4:\n--- parallel\n%s\n--- serial\n%s", got, want)
	}
}
