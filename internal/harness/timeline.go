package harness

import (
	"fmt"
	"strings"

	"umi/internal/tracelog"
)

// The timeline experiment is the event-tracing layer's figure: the
// evolution of the delinquent-load set over a run, one row per analyzer
// invocation, read back from the structured event log every harness run
// records. The paper presents P as a single final set; this view shows
// how the runtime converged on it — how many invocations, at which
// modelled cycles, simulating how many references each — which is the
// story the adaptive-threshold policy (§4.2) is about. Everything here
// derives from the modelled cycle clock, so the render is golden-testable.

// InvocationPoint is one analyzer invocation as recorded by its
// analyzer.end span event.
type InvocationPoint struct {
	Cycles     uint64 // modelled cycle stamp at invocation start
	DurCycles  uint64 // modelled analysis cost charged to the guest
	Refs       uint64 // references mini-simulated by this invocation
	Misses     uint64 // post-warmup misses observed by this invocation
	Delinquent uint64 // |P| after this invocation (cumulative)
}

// BenchmarkTimeline is one workload's invocation history.
type BenchmarkTimeline struct {
	Name   string
	Events uint64 // lifecycle events the run emitted
	Drops  uint64 // events the ring discarded (0 at default capacity)
	Points []InvocationPoint
}

// TimelineResult is the umibench "timeline" experiment.
type TimelineResult struct {
	Rows []BenchmarkTimeline
}

// Timeline runs the selected workloads (nil = the paper's 32) under the
// standard configuration and extracts each run's analyzer-invocation
// history from the event log.
func Timeline(names []string) (*TimelineResult, error) {
	ws, err := selectWorkloads(names)
	if err != nil {
		return nil, err
	}
	res := &TimelineResult{Rows: make([]BenchmarkTimeline, len(ws))}
	err = forEachIndexed(len(ws), func(i int) error {
		run, err := RunUMI(ws[i], P4, UMIParams(P4), false, false)
		if err != nil {
			return err
		}
		bt := BenchmarkTimeline{
			Name:   ws[i].Name,
			Events: run.Events.Total(),
			Drops:  run.Events.Drops(),
		}
		for _, e := range tracelog.Sorted(run.Events.Events()) {
			if e.Type != tracelog.EvAnalyzerEnd {
				continue
			}
			bt.Points = append(bt.Points, InvocationPoint{
				Cycles: e.Cycles, DurCycles: e.Dur,
				Refs: e.Arg1, Misses: e.Arg2, Delinquent: e.Arg3,
			})
		}
		res.Rows[i] = bt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// barWidth is the |P| bar's full scale in the rendered figure.
const barWidth = 30

// String renders the figure: per benchmark, one line per analyzer
// invocation with a bar tracking |P| against the run's final value.
// Deterministic — every column derives from the modelled cycle clock.
func (r *TimelineResult) String() string {
	if len(r.Rows) == 0 {
		return "Timeline: no benchmarks selected\n"
	}
	var sb strings.Builder
	sb.WriteString("Timeline: delinquent-set evolution per analyzer invocation\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "\n%s (%d events", row.Name, row.Events)
		if row.Drops > 0 {
			fmt.Fprintf(&sb, ", %d dropped", row.Drops)
		}
		sb.WriteString("):\n")
		if len(row.Points) == 0 {
			sb.WriteString("  no analyzer invocations\n")
			continue
		}
		maxP := uint64(1)
		for _, p := range row.Points {
			if p.Delinquent > maxP {
				maxP = p.Delinquent
			}
		}
		fmt.Fprintf(&sb, "  %4s  %12s  %10s  %9s  %9s  %5s\n",
			"inv", "cycles", "analysis", "refs", "misses", "|P|")
		for i, p := range row.Points {
			line := fmt.Sprintf("  %4d  %12d  %10d  %9d  %9d  %5d  %s",
				i+1, p.Cycles, p.DurCycles, p.Refs, p.Misses, p.Delinquent,
				strings.Repeat("#", int(p.Delinquent*barWidth/maxP)))
			sb.WriteString(strings.TrimRight(line, " ") + "\n")
		}
	}
	return sb.String()
}
