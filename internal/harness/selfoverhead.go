package harness

import (
	"fmt"
	"strings"
	"time"

	"umi/internal/metrics"
	"umi/internal/stats"
	"umi/internal/umi"
)

// The self-overhead experiment cross-checks the paper reproduction's
// modelled overhead stream against the runtime's own measured cost. Every
// other table trusts the cycle model (InstrumentCost, AnalyzerPerRef, ...);
// this one puts the model next to the metrics layer's live accounting —
// filter rates, profile fills, analysis latency — so a change that cheapens
// the model without cheapening the work (or vice versa) shows up as the two
// columns drifting apart.

// SelfOverheadRow is one workload's modelled-vs-measured accounting.
type SelfOverheadRow struct {
	Name string

	// Deterministic quantities (modelled cycles and event counts).
	NativeCycles    uint64
	UMICycles       uint64
	ModelledOvhdPct float64 // (UMI - native) / native
	TracesSeen      uint64
	Instrumented    uint64  // instrumentation events
	FilterRatePct   float64 // candidates filtered / candidates (§4.1)
	ProfileFills    uint64
	GlobalFills     uint64
	Invocations     uint64
	SimulatedRefs   uint64
	// Event-timeline accounting: how many lifecycle events the run
	// emitted and how many the ring discarded. Both follow the modelled
	// execution alone (the harness runs the inline analyzer path), so
	// they belong to the deterministic render.
	Events uint64
	Drops  uint64

	// Measured quantities (wall clock; vary run to run, excluded from the
	// deterministic render).
	Latency metrics.HistogramValue // per-invocation analysis latency, ns
	Wall    time.Duration          // guest run wall time (events/sec denominator)
}

// SelfOverheadResult is the umibench "self-overhead" experiment.
type SelfOverheadResult struct {
	Rows []SelfOverheadRow
}

// SelfOverhead runs the selected workloads (nil = the paper's 32) under
// the standard UMI configuration and collects both sides of the overhead
// story: the modelled cycle stream the tables report, and the metrics
// layer's event counts and measured analysis latency.
func SelfOverhead(names []string) (*SelfOverheadResult, error) {
	ws, err := selectWorkloads(names)
	if err != nil {
		return nil, err
	}
	res := &SelfOverheadResult{Rows: make([]SelfOverheadRow, len(ws))}
	err = forEachIndexed(len(ws), func(i int) error {
		w := ws[i]
		native, err := RunNative(w, P4, false)
		if err != nil {
			return err
		}
		run, err := RunUMI(w, P4, UMIParams(P4), false, false)
		if err != nil {
			return err
		}
		snap := run.Metrics
		row := SelfOverheadRow{
			Name:          w.Name,
			NativeCycles:  native.Cycles,
			UMICycles:     run.TotalCycles(),
			TracesSeen:    snap.Counter("umi.traces.seen"),
			Instrumented:  snap.Counter("umi.traces.instrumented"),
			ProfileFills:  snap.Counter("umi.profiles.fills"),
			GlobalFills:   snap.Counter("umi.profiles.global_fills"),
			Invocations:   snap.Counter("umi.analyzer.invocations"),
			SimulatedRefs: snap.Counter("umi.analyzer.refs"),
			Events:        run.Events.Total(),
			Drops:         run.Events.Drops(),
			Latency:       snap.Histogram("umi.analyzer.latency_ns"),
			Wall:          run.Wall,
		}
		row.ModelledOvhdPct = 100 * (float64(row.UMICycles)/float64(row.NativeCycles) - 1)
		if rate, ok := umi.FilterRate(snap); ok {
			row.FilterRatePct = 100 * rate
		}
		res.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the deterministic half of the experiment: modelled
// overhead and event counts only, so the output is byte-stable across runs
// and machines (golden-testable). Measured latency lives in LiveString.
func (r *SelfOverheadResult) String() string {
	if len(r.Rows) == 0 {
		return "Self-overhead: no workloads selected\n"
	}
	t := stats.NewTable("Self-overhead: modelled UMI cost vs runtime event counts",
		"Benchmark", "Modelled Ovhd", "Traces", "Instrumented", "Filter Rate",
		"Fills (prof/glob)", "Invocations", "Sim Refs", "Events (drops)")
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			fmt.Sprintf("%.2f%%", row.ModelledOvhdPct),
			fmt.Sprint(row.TracesSeen),
			fmt.Sprint(row.Instrumented),
			fmt.Sprintf("%.1f%%", row.FilterRatePct),
			fmt.Sprintf("%d/%d", row.ProfileFills, row.GlobalFills),
			fmt.Sprint(row.Invocations),
			fmt.Sprint(row.SimulatedRefs),
			fmt.Sprintf("%d (%d)", row.Events, row.Drops))
	}
	return t.String()
}

// LiveString renders the measured half: wall-clock analysis latency and
// event-tracing throughput per workload. Nondeterministic by nature —
// never golden-compare it.
func (r *SelfOverheadResult) LiveString() string {
	var sb strings.Builder
	sb.WriteString("Measured analysis latency (wall clock, varies run to run):\n")
	for _, row := range r.Rows {
		if row.Latency.Count == 0 {
			fmt.Fprintf(&sb, "  %-16s no analyzer invocations\n", row.Name)
			continue
		}
		fmt.Fprintf(&sb, "  %-16s n=%d mean=%.0fns p50=%dns p99=%dns max=%dns\n",
			row.Name, row.Latency.Count, row.Latency.Mean(),
			row.Latency.Quantile(0.50), row.Latency.Quantile(0.99), row.Latency.Max)
	}
	sb.WriteString("Event tracing throughput (wall clock, varies run to run):\n")
	for _, row := range r.Rows {
		if row.Wall <= 0 {
			fmt.Fprintf(&sb, "  %-16s no wall-clock measurement\n", row.Name)
			continue
		}
		rate := float64(row.Events) / row.Wall.Seconds()
		fmt.Fprintf(&sb, "  %-16s %d events in %v (%.0f events/sec, %d dropped)\n",
			row.Name, row.Events, row.Wall.Round(time.Millisecond), rate, row.Drops)
	}
	return sb.String()
}
