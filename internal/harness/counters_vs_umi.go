package harness

import (
	"fmt"

	"umi/internal/counters"
	"umi/internal/stats"
	"umi/internal/vm"
	"umi/internal/workloads"
)

// CountersVsUMI quantifies §1.2's tradeoff: what delinquent-load quality
// does interrupt-driven counter sampling buy at each overhead level,
// against UMI's quality at its own (low, fixed) overhead? For each counter
// sample size, the PMU profiler records the PC of every Nth L2 miss; its
// 90%-coverage PC set is scored against the Cachegrind reference exactly
// like UMI's prediction set.

// CvURow is one sampling configuration.
type CvURow struct {
	Label       string
	SampleSize  uint64
	OverheadPct float64
	Recall      float64
	FalsePos    float64
	SetSize     int
}

// CvUResult compares PMU sampling against UMI on one benchmark.
type CvUResult struct {
	Benchmark string
	Rows      []CvURow
}

// CountersVsUMIRun runs the comparison for the named benchmarks (default:
// mcf, the paper's Table 1 subject).
func CountersVsUMIRun(benchNames []string) ([]*CvUResult, error) {
	if benchNames == nil {
		// One heavy misser (PMU-friendly), one moderate, one light: the
		// lighter the benchmark, the finer (and costlier) the sampling a
		// PMU needs before it sees anything at all.
		benchNames = []string{"181.mcf", "171.swim", "168.wupwise"}
	}
	model := counters.DefaultSamplingModel
	var out []*CvUResult
	for _, name := range benchNames {
		w, ok := workloads.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown workload %q", name)
		}
		cg, err := RunCachegrind(w, P4)
		if err != nil {
			return nil, err
		}
		truth := cg.DelinquentSet(0.90)
		native, err := RunNative(w, P4, false)
		if err != nil {
			return nil, err
		}

		sizes := []uint64{10, 100, 1_000, 10_000, 100_000}
		res := &CvUResult{Benchmark: name, Rows: make([]CvURow, len(sizes), len(sizes)+1)}
		err = forEachIndexed(len(sizes), func(i int) error {
			size := sizes[i]
			prof := counters.NewSampledProfiler(P4.L2, size)
			m := vm.New(w.Program(), nil)
			m.RefHook = prof.Ref
			if err := m.Run(MaxInstrs); err != nil {
				return err
			}
			pred := prof.DelinquentSet(0.90)
			res.Rows[i] = CvURow{
				Label:       fmt.Sprintf("PMU@%d", size),
				SampleSize:  size,
				OverheadPct: 100 * float64(prof.OverheadCycles(model)) / float64(native.Cycles),
				Recall:      stats.Recall(pred, truth),
				FalsePos:    stats.FalsePositiveRatio(pred, truth),
				SetSize:     len(pred),
			}
			return nil
		})
		if err != nil {
			return nil, err
		}

		umiRun, err := RunUMI(w, P4, UMIParams(P4), false, false)
		if err != nil {
			return nil, err
		}
		pred := umiRun.Report.Delinquent
		res.Rows = append(res.Rows, CvURow{
			Label:       "UMI",
			OverheadPct: 100 * (float64(umiRun.TotalCycles())/float64(native.Cycles) - 1),
			Recall:      stats.Recall(pred, truth),
			FalsePos:    stats.FalsePositiveRatio(pred, truth),
			SetSize:     len(pred),
		})
		out = append(out, res)
	}
	return out, nil
}

// RenderCvU renders the comparison.
func RenderCvU(results []*CvUResult) string {
	if len(results) == 0 {
		return "Counter sampling vs UMI: no benchmarks selected\n"
	}
	var s string
	for _, r := range results {
		t := stats.NewTable(
			fmt.Sprintf("Counter sampling vs UMI on %s (§1.2): quality per overhead", r.Benchmark),
			"Profiler", "Overhead", "Recall", "False Pos", "|set|")
		for _, row := range r.Rows {
			t.AddRow(row.Label, fmt.Sprintf("%.2f%%", row.OverheadPct),
				stats.Pct(row.Recall), stats.Pct(row.FalsePos), fmt.Sprint(row.SetSize))
		}
		s += t.String() + "\n"
	}
	return s
}
