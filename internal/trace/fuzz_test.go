package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader asserts the trace decoder never panics and never fabricates
// records from garbage: every decode either yields a structurally valid
// record or a non-EOF error at the corruption point.
func FuzzReader(f *testing.F) {
	// Seed with a genuine trace.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Add(Record{PC: 0x400000, Addr: 0x1000, Size: 8})
	w.Add(Record{PC: 0x400010, Addr: 0x1040, Size: 4, Write: true})
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("UMITRACE"))
	f.Add(append(append([]byte{}, magic[:]...), 1, 0, 0, 0, 0xFF, 0xFF))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1_000_000; i++ {
			rec, err := r.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return // corruption detected; fine
			}
			switch rec.Size {
			case 0:
				t.Fatalf("decoded record with size 0: %+v", rec)
			}
		}
	})
}
