// Package trace defines a compact binary format for memory-reference
// traces: the record/replay substrate for offline analysis (the role long
// address traces play in the paper's "common practice" discussion, §1.1).
// A Writer attaches to vm.Machine.RefHook; a Reader feeds any consumer
// with the vm.RefHook signature — the cachegrind simulator in particular —
// so full-trace simulations can run long after the program did.
//
// Format: a 12-byte header ("UMITRACE", version uint32 LE), then one
// varint-delta record per reference:
//
//	flagByte   bit0 = write, bit1 = pc changed since last record
//	[pcDelta]  zig-zag varint, present when bit1 set
//	addrDelta  zig-zag varint against the previous address
//	size       uvarint (1, 2, 4 or 8)
//
// Delta coding makes typical traces 3-6 bytes per reference instead of 17.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Record is one memory reference.
type Record struct {
	PC    uint64
	Addr  uint64
	Size  uint8
	Write bool
}

var magic = [8]byte{'U', 'M', 'I', 'T', 'R', 'A', 'C', 'E'}

// Version of the trace format.
const Version = 1

// ErrBadHeader reports a stream that is not a UMI trace.
var ErrBadHeader = errors.New("trace: bad header")

const (
	flagWrite    = 1 << 0
	flagPCChange = 1 << 1
)

// Writer streams records to an io.Writer.
type Writer struct {
	w        *bufio.Writer
	lastPC   uint64
	lastAddr uint64
	count    uint64
	buf      [2 * binary.MaxVarintLen64]byte
	err      error
}

// NewWriter writes the header and returns a Writer. Call Flush when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], Version)
	if _, err := bw.Write(v[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Add appends one record. Errors are sticky and surfaced by Flush.
func (w *Writer) Add(r Record) {
	if w.err != nil {
		return
	}
	flags := byte(0)
	if r.Write {
		flags |= flagWrite
	}
	if r.PC != w.lastPC {
		flags |= flagPCChange
	}
	if err := w.w.WriteByte(flags); err != nil {
		w.err = err
		return
	}
	if flags&flagPCChange != 0 {
		n := binary.PutVarint(w.buf[:], int64(r.PC-w.lastPC))
		if _, err := w.w.Write(w.buf[:n]); err != nil {
			w.err = err
			return
		}
		w.lastPC = r.PC
	}
	n := binary.PutVarint(w.buf[:], int64(r.Addr-w.lastAddr))
	n += binary.PutUvarint(w.buf[n:], uint64(r.Size))
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		w.err = err
		return
	}
	w.lastAddr = r.Addr
	w.count++
}

// Hook returns a vm.RefHook-compatible function that records every
// reference.
func (w *Writer) Hook() func(pc, addr uint64, size uint8, write bool) {
	return func(pc, addr uint64, size uint8, write bool) {
		w.Add(Record{PC: pc, Addr: addr, Size: size, Write: write})
	}
}

// Count reports records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains buffers and returns the first sticky error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes a trace stream.
type Reader struct {
	r        *bufio.Reader
	lastPC   uint64
	lastAddr uint64
	count    uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	for i := range magic {
		if hdr[i] != magic[i] {
			return nil, ErrBadHeader
		}
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadHeader, v)
	}
	return &Reader{r: br}, nil
}

// Next returns the next record, or io.EOF at end of stream.
func (r *Reader) Next() (Record, error) {
	flags, err := r.r.ReadByte()
	if err != nil {
		return Record{}, err // io.EOF included
	}
	var rec Record
	rec.Write = flags&flagWrite != 0
	if flags&flagPCChange != 0 {
		d, err := binary.ReadVarint(r.r)
		if err != nil {
			return Record{}, fmt.Errorf("trace: truncated pc delta: %w", err)
		}
		r.lastPC += uint64(d)
	}
	rec.PC = r.lastPC
	d, err := binary.ReadVarint(r.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated addr delta: %w", err)
	}
	r.lastAddr += uint64(d)
	rec.Addr = r.lastAddr
	sz, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated size: %w", err)
	}
	if sz == 0 || sz > 255 {
		return Record{}, fmt.Errorf("trace: invalid access size %d", sz)
	}
	rec.Size = uint8(sz)
	r.count++
	return rec, nil
}

// Count reports records decoded so far.
func (r *Reader) Count() uint64 { return r.count }

// Replay feeds every record to sink (a vm.RefHook-compatible consumer)
// and returns the number of records replayed.
func (r *Reader) Replay(sink func(pc, addr uint64, size uint8, write bool)) (uint64, error) {
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return r.count, nil
		}
		if err != nil {
			return r.count, err
		}
		sink(rec.PC, rec.Addr, rec.Size, rec.Write)
	}
}
