package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"umi/internal/cachegrind"
	"umi/internal/vm"
	"umi/internal/workloads"
)

func roundTrip(t *testing.T, recs []Record) []Record {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, r := range recs {
		w.Add(r)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(recs))
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	var out []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, rec)
	}
	return out
}

func TestRoundTripBasic(t *testing.T) {
	recs := []Record{
		{PC: 0x400000, Addr: 0x10000000, Size: 8, Write: false},
		{PC: 0x400000, Addr: 0x10000008, Size: 8, Write: false}, // same pc
		{PC: 0x400010, Addr: 0x10000000, Size: 1, Write: true},  // addr goes back
		{PC: 0x3FFFF0, Addr: 0x00000001, Size: 4, Write: false}, // negative deltas
		{PC: 0x400000, Addr: ^uint64(0), Size: 2, Write: true},  // extremes
	}
	got := roundTrip(t, recs)
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, nSel uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nSel)%200 + 1
		recs := make([]Record, n)
		pc := uint64(0x400000)
		for i := range recs {
			if r.Intn(3) == 0 {
				pc = uint64(r.Intn(1 << 24))
			}
			recs[i] = Record{
				PC:    pc,
				Addr:  uint64(r.Int63()),
				Size:  uint8(1 << r.Intn(4)),
				Write: r.Intn(2) == 0,
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, rec := range recs {
			w.Add(rec)
		}
		if w.Flush() != nil {
			return false
		}
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for i := range recs {
			got, err := rd.Next()
			if err != nil || got != recs[i] {
				return false
			}
		}
		_, err = rd.Next()
		return errors.Is(err, io.EOF)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace"))); !errors.Is(err, ErrBadHeader) {
		t.Errorf("err = %v, want ErrBadHeader", err)
	}
	bad := append(append([]byte{}, 'U', 'M', 'I', 'T', 'R', 'A', 'C', 'E'), 9, 0, 0, 0)
	if _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrBadHeader) {
		t.Errorf("wrong version: err = %v, want ErrBadHeader", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Add(Record{PC: 0x400000, Addr: 0x1000, Size: 8})
	w.Add(Record{PC: 0x400010, Addr: 0x2000, Size: 8})
	_ = w.Flush()
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("first record must decode: %v", err)
	}
	if _, err := r.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("truncated record: err = %v, want decode error", err)
	}
}

// Record a real workload, replay into cachegrind, and require identical
// statistics to a live-hooked run: the offline pipeline is lossless.
func TestRecordReplayMatchesLive(t *testing.T) {
	w, ok := workloads.ByName("181.mcf")
	if !ok {
		t.Fatal("mcf missing")
	}
	live := cachegrind.NewP4()
	m := vm.New(w.Program(), nil)
	var buf bytes.Buffer
	tw, err := NewWriter(&buf)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	hook := tw.Hook()
	m.RefHook = func(pc, addr uint64, size uint8, write bool) {
		live.Ref(pc, addr, size, write)
		hook(pc, addr, size, write)
	}
	if err := m.Run(60_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	t.Logf("trace: %d refs in %d bytes (%.1f bytes/ref)",
		tw.Count(), buf.Len(), float64(buf.Len())/float64(tw.Count()))
	if perRef := float64(buf.Len()) / float64(tw.Count()); perRef > 8 {
		t.Errorf("encoding too fat: %.1f bytes/ref", perRef)
	}

	replayed := cachegrind.NewP4()
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	n, err := rd.Replay(replayed.Ref)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != tw.Count() {
		t.Fatalf("replayed %d of %d records", n, tw.Count())
	}
	if replayed.L2Misses != live.L2Misses || replayed.L2Accesses != live.L2Accesses {
		t.Errorf("replayed L2 %d/%d != live %d/%d",
			replayed.L2Misses, replayed.L2Accesses, live.L2Misses, live.L2Accesses)
	}
	if len(replayed.Stats()) != len(live.Stats()) {
		t.Errorf("per-PC tables differ: %d vs %d", len(replayed.Stats()), len(live.Stats()))
	}
}
