package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary instruction encoding.
//
// Each instruction occupies exactly InstrBytes (16) bytes, little endian:
//
//	byte  0     opcode
//	byte  1     Rd
//	byte  2     Rs1
//	byte  3     Rs2
//	byte  4     Cond
//	byte  5     Size
//	byte  6     Mem.Base
//	byte  7     Mem.Index<<4 | hasIndexBit | scaleCode (scaleCode: 0..3 for 1,2,4,8)
//	bytes 8-15  primary immediate (Imm) OR Mem.Disp for memory ops
//
// Memory instructions have no room for both a 64-bit displacement and a
// 64-bit immediate; they use none of Imm. OpBrI packs its compare value
// (Imm2) into bytes 2..3 being registers is unaffected; Imm2 is stored as a
// 16-bit signed value in bytes 4..5 would clash with Cond/Size, so instead
// OpBrI restricts Imm2 to a 32-bit signed value stored in bytes 4..7 of a
// second layout selected by the opcode. See encodeBrI/decodeBrI.

const (
	scaleShift  = 4
	hasIndexBit = 0x04
	ntBit       = 0x80 // non-temporal flag, stored in the Cond byte of memory ops
)

func scaleCode(s uint8) (uint8, error) {
	switch s {
	case 0, 1:
		return 0, nil
	case 2:
		return 1, nil
	case 4:
		return 2, nil
	case 8:
		return 3, nil
	}
	return 0, fmt.Errorf("isa: invalid scale %d", s)
}

func scaleFromCode(c uint8) uint8 { return 1 << c }

// Encode writes the instruction into dst, which must be at least InstrBytes
// long. It returns an error for malformed instructions.
func (in *Instr) Encode(dst []byte) error {
	if len(dst) < InstrBytes {
		return fmt.Errorf("isa: encode buffer too short: %d", len(dst))
	}
	if err := in.Validate(); err != nil {
		return err
	}
	for i := 0; i < InstrBytes; i++ {
		dst[i] = 0
	}
	dst[0] = byte(in.Op)
	dst[1] = byte(in.Rd)
	dst[2] = byte(in.Rs1)
	dst[3] = byte(in.Rs2)
	if in.Op == OpBrI {
		return in.encodeBrI(dst)
	}
	dst[4] = byte(in.Cond)
	if in.Op.IsMemory() && in.NT {
		dst[4] |= ntBit // Cond is unused by memory ops
	}
	dst[5] = in.Size
	if in.Op.IsMemory() {
		dst[6] = byte(in.Mem.Base)
		if in.Mem.Index == NoReg {
			dst[7] = 0 // hasIndex bit clear
		} else {
			sc, err := scaleCode(in.Mem.Scale)
			if err != nil {
				return err
			}
			dst[7] = byte(in.Mem.Index)<<scaleShift | hasIndexBit | sc
		}
		binary.LittleEndian.PutUint64(dst[8:], uint64(in.Mem.Disp))
		return nil
	}
	dst[6] = 0xFF // NoReg base marks "no memory operand"
	binary.LittleEndian.PutUint64(dst[8:], uint64(in.Imm))
	return nil
}

// encodeBrI uses bytes 4..7 for the 32-bit compare immediate and 8..15 for
// the branch target.
func (in *Instr) encodeBrI(dst []byte) error {
	if in.Imm2 < -(1<<31) || in.Imm2 >= 1<<31 {
		return fmt.Errorf("isa: bri compare immediate %d out of 32-bit range", in.Imm2)
	}
	dst[3] = byte(in.Cond) // Rs2 slot is free for OpBrI
	binary.LittleEndian.PutUint32(dst[4:], uint32(int32(in.Imm2)))
	binary.LittleEndian.PutUint64(dst[8:], uint64(in.Imm))
	return nil
}

// Decode reads one instruction from src, which must hold at least
// InstrBytes bytes.
func Decode(src []byte) (Instr, error) {
	if len(src) < InstrBytes {
		return Instr{}, fmt.Errorf("isa: decode buffer too short: %d", len(src))
	}
	var in Instr
	in.Op = Op(src[0])
	if !in.Op.Valid() {
		return Instr{}, fmt.Errorf("isa: invalid opcode byte %d", src[0])
	}
	in.Rd = Reg(src[1])
	in.Rs1 = Reg(src[2])
	if in.Op == OpBrI {
		in.Cond = Cond(src[3])
		in.Imm2 = int64(int32(binary.LittleEndian.Uint32(src[4:])))
		in.Imm = int64(binary.LittleEndian.Uint64(src[8:]))
		in.Mem = NoMem
		in.Rs2 = 0
		if err := in.Validate(); err != nil {
			return Instr{}, err
		}
		return in, nil
	}
	in.Rs2 = Reg(src[3])
	in.Cond = Cond(src[4])
	in.Size = src[5]
	if in.Op.IsMemory() {
		if src[4]&ntBit != 0 {
			in.NT = true
			in.Cond = Cond(src[4] &^ ntBit)
		}
		in.Mem.Base = Reg(src[6])
		if src[7]&hasIndexBit == 0 {
			in.Mem.Index = NoReg
			in.Mem.Scale = 0
		} else {
			in.Mem.Index = Reg(src[7] >> scaleShift)
			in.Mem.Scale = scaleFromCode(src[7] & 0x03)
		}
		in.Mem.Disp = int64(binary.LittleEndian.Uint64(src[8:]))
	} else {
		in.Mem = NoMem
		in.Imm = int64(binary.LittleEndian.Uint64(src[8:]))
	}
	if err := in.Validate(); err != nil {
		return Instr{}, err
	}
	return in, nil
}

// EncodeAll encodes a sequence of instructions into a flat image.
func EncodeAll(ins []Instr) ([]byte, error) {
	buf := make([]byte, len(ins)*InstrBytes)
	for i := range ins {
		if err := ins[i].Encode(buf[i*InstrBytes:]); err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
	}
	return buf, nil
}

// DecodeAll decodes a flat image back into instructions. The image length
// must be a multiple of InstrBytes.
func DecodeAll(img []byte) ([]Instr, error) {
	if len(img)%InstrBytes != 0 {
		return nil, fmt.Errorf("isa: image length %d not a multiple of %d", len(img), InstrBytes)
	}
	out := make([]Instr, 0, len(img)/InstrBytes)
	for off := 0; off < len(img); off += InstrBytes {
		in, err := Decode(img[off:])
		if err != nil {
			return nil, fmt.Errorf("isa: offset %d: %w", off, err)
		}
		out = append(out, in)
	}
	return out, nil
}
