package isa

// Mem returns a base+displacement memory operand.
func Mem(base Reg, disp int64) MemRef {
	return MemRef{Base: base, Index: NoReg, Disp: disp}
}

// MemIdx returns a base+index*scale+displacement memory operand.
func MemIdx(base, index Reg, scale uint8, disp int64) MemRef {
	return MemRef{Base: base, Index: index, Scale: scale, Disp: disp}
}

// MemAbs returns an absolute (static) memory operand.
func MemAbs(addr uint64) MemRef {
	return MemRef{Base: NoReg, Index: NoReg, Disp: int64(addr)}
}
