// Package isa defines the guest instruction set architecture executed by the
// reproduction's virtual machine.
//
// The paper instruments IA-32 binaries under DynamoRIO. A Go reproduction
// cannot rewrite native x86 at runtime, so the entire stack — the program
// under test, the DynamoRIO-like runtime, and the "hardware" the counters
// observe — runs on this small load/store ISA instead. The ISA keeps the two
// properties UMI's heuristics depend on:
//
//   - memory operands carry a base register, so the instrumentor can filter
//     stack-relative references (base SP or BP) and static references
//     (absolute displacement, no base), mirroring the paper's esp/ebp rule;
//   - every instruction has a unique PC, so profiles are keyed by
//     (pc, address) tuples exactly as in the paper.
//
// Instructions use a fixed 16-byte binary encoding (see encoding.go) so that
// code can be stored in, copied between, and patched inside code caches the
// way a binary rewriter would.
package isa

import "fmt"

// Reg names a general-purpose register. The guest machine has 16.
type Reg uint8

// Register conventions. SP and BP matter to UMI's operation filter: memory
// references based on them are assumed stack-local and are not profiled.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // stack pointer (x86 esp analogue)
	BP // frame base pointer (x86 ebp analogue)
	LR // link register, written by CALL
)

// NumRegs is the size of the architectural register file.
const NumRegs = 16

// NoReg marks an absent register operand in a MemRef.
const NoReg Reg = 0xFF

func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case BP:
		return "bp"
	case LR:
		return "lr"
	case NoReg:
		return "-"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Op is an opcode.
type Op uint8

// Opcodes. The set is intentionally small: enough arithmetic to express
// loop kernels, full load/store addressing, and the control flow shapes
// (direct, conditional, indirect, call/return) a trace builder must handle.
const (
	OpNop Op = iota
	OpHalt
	// ALU, register-register: Rd = Rs1 op Rs2.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	// ALU, register-immediate: Rd = Rs1 op Imm.
	OpAddI
	OpMulI
	OpAndI
	OpShrI
	// Data movement.
	OpMov  // Rd = Rs1
	OpMovI // Rd = Imm
	// Memory. Size in bytes is Instr.Size (1, 2, 4 or 8).
	OpLoad     // Rd = mem[ea]
	OpStore    // mem[ea] = Rs1
	OpPrefetch // hint: fetch line containing ea into the cache
	// Control flow. Branch targets are absolute instruction addresses.
	OpJmp    // pc = Imm
	OpBr     // if Rs1 <cond> Rs2 then pc = Imm
	OpBrI    // if Rs1 <cond> Imm2 then pc = Imm
	OpCall   // LR = next pc; pc = Imm
	OpRet    // pc = LR
	OpJmpInd // pc = Rs1 (indirect jump, e.g. switch tables)

	numOps
)

var opNames = [...]string{
	OpNop:      "nop",
	OpHalt:     "halt",
	OpAdd:      "add",
	OpSub:      "sub",
	OpMul:      "mul",
	OpDiv:      "div",
	OpAnd:      "and",
	OpOr:       "or",
	OpXor:      "xor",
	OpShl:      "shl",
	OpShr:      "shr",
	OpAddI:     "addi",
	OpMulI:     "muli",
	OpAndI:     "andi",
	OpShrI:     "shri",
	OpMov:      "mov",
	OpMovI:     "movi",
	OpLoad:     "load",
	OpStore:    "store",
	OpPrefetch: "prefetch",
	OpJmp:      "jmp",
	OpBr:       "br",
	OpBrI:      "bri",
	OpCall:     "call",
	OpRet:      "ret",
	OpJmpInd:   "jmpind",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < numOps }

// IsMemory reports whether op computes an effective address and touches the
// memory hierarchy (prefetches touch the hierarchy but not program state).
func (op Op) IsMemory() bool { return op == OpLoad || op == OpStore || op == OpPrefetch }

// IsLoad reports whether op reads program-visible memory.
func (op Op) IsLoad() bool { return op == OpLoad }

// IsStore reports whether op writes program-visible memory.
func (op Op) IsStore() bool { return op == OpStore }

// IsBranch reports whether op may change the program counter.
func (op Op) IsBranch() bool {
	switch op {
	case OpJmp, OpBr, OpBrI, OpCall, OpRet, OpJmpInd, OpHalt:
		return true
	}
	return false
}

// IsConditional reports whether op is a conditional branch: it may either
// take its target or fall through.
func (op Op) IsConditional() bool { return op == OpBr || op == OpBrI }

// IsIndirect reports whether the branch target is computed at run time.
func (op Op) IsIndirect() bool { return op == OpRet || op == OpJmpInd }

// Cond is a branch condition comparing two operands as signed integers
// (unsigned variants exist for address comparisons).
type Cond uint8

// Branch conditions.
const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondGE
	CondGT
	CondLE
	CondLTU // unsigned <
	CondGEU // unsigned >=

	numConds
)

var condNames = [...]string{
	CondEQ:  "eq",
	CondNE:  "ne",
	CondLT:  "lt",
	CondGE:  "ge",
	CondGT:  "gt",
	CondLE:  "le",
	CondLTU: "ltu",
	CondGEU: "geu",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Valid reports whether c is a defined condition.
func (c Cond) Valid() bool { return c < numConds }

// Eval applies the condition to two operand values.
func (c Cond) Eval(a, b uint64) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return int64(a) < int64(b)
	case CondGE:
		return int64(a) >= int64(b)
	case CondGT:
		return int64(a) > int64(b)
	case CondLE:
		return int64(a) <= int64(b)
	case CondLTU:
		return a < b
	case CondGEU:
		return a >= b
	}
	return false
}

// MemRef describes a memory operand: effective address =
// Base + Index*Scale + Disp. Base and Index may be NoReg. A reference with
// no base and no index is a static (absolute) reference.
type MemRef struct {
	Base  Reg
	Index Reg
	Scale uint8 // 1, 2, 4 or 8; meaningful only when Index != NoReg
	Disp  int64
}

// NoMem is the zero-value memory operand used by non-memory instructions.
var NoMem = MemRef{Base: NoReg, Index: NoReg}

// IsStatic reports whether the reference has a compile-time constant
// address (no base, no index). The paper's instrumentor skips these.
func (m MemRef) IsStatic() bool { return m.Base == NoReg && m.Index == NoReg }

// IsStackRelative reports whether the reference is based on the stack or
// frame pointer. The paper's instrumentor skips these too.
func (m MemRef) IsStackRelative() bool { return m.Base == SP || m.Base == BP }

func (m MemRef) String() string {
	s := "["
	switch {
	case m.Base != NoReg && m.Index != NoReg:
		s += fmt.Sprintf("%v+%v*%d", m.Base, m.Index, m.Scale)
	case m.Base != NoReg:
		s += m.Base.String()
	case m.Index != NoReg:
		s += fmt.Sprintf("%v*%d", m.Index, m.Scale)
	}
	if m.Disp != 0 || (m.Base == NoReg && m.Index == NoReg) {
		s += fmt.Sprintf("%+d", m.Disp)
	}
	return s + "]"
}

// Instr is one decoded guest instruction.
//
// Field use by opcode class:
//
//	ALU reg-reg:  Rd, Rs1, Rs2
//	ALU reg-imm:  Rd, Rs1, Imm
//	OpMov:        Rd, Rs1        OpMovI: Rd, Imm
//	OpLoad:       Rd, Mem, Size  OpStore: Rs1, Mem, Size
//	OpPrefetch:   Mem
//	OpJmp/OpCall: Imm (target)   OpBr: Cond, Rs1, Rs2, Imm (target)
//	OpBrI:        Cond, Rs1, Imm2 (compare value), Imm (target)
//	OpJmpInd:     Rs1
type Instr struct {
	Op   Op
	Rd   Reg
	Rs1  Reg
	Rs2  Reg
	Cond Cond
	Size uint8 // access size in bytes for memory ops
	// NT marks a load/store as non-temporal: the memory hierarchy should
	// not cache the line beyond the first level (an x86 MOVNT-style
	// hint). Runtime optimizers set it on streaming delinquent loads to
	// stop them polluting the L2.
	NT   bool
	Mem  MemRef
	Imm  int64 // immediate operand / branch target
	Imm2 int64 // second immediate (OpBrI compare value)
}

// Target returns the static branch target of a direct branch, and whether
// the instruction has one.
func (in *Instr) Target() (uint64, bool) {
	switch in.Op {
	case OpJmp, OpBr, OpBrI, OpCall:
		return uint64(in.Imm), true
	}
	return 0, false
}

func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpHalt, OpRet:
		return in.Op.String()
	case OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor, OpShl, OpShr:
		return fmt.Sprintf("%v %v, %v, %v", in.Op, in.Rd, in.Rs1, in.Rs2)
	case OpAddI, OpMulI, OpAndI, OpShrI:
		return fmt.Sprintf("%v %v, %v, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case OpMov:
		return fmt.Sprintf("mov %v, %v", in.Rd, in.Rs1)
	case OpMovI:
		return fmt.Sprintf("movi %v, %d", in.Rd, in.Imm)
	case OpLoad:
		return fmt.Sprintf("load%d%s %v, %v", in.Size, in.ntSuffix(), in.Rd, in.Mem)
	case OpStore:
		return fmt.Sprintf("store%d%s %v, %v", in.Size, in.ntSuffix(), in.Rs1, in.Mem)
	case OpPrefetch:
		return fmt.Sprintf("prefetch %v", in.Mem)
	case OpJmp:
		return fmt.Sprintf("jmp %#x", uint64(in.Imm))
	case OpBr:
		return fmt.Sprintf("br.%v %v, %v, %#x", in.Cond, in.Rs1, in.Rs2, uint64(in.Imm))
	case OpBrI:
		return fmt.Sprintf("bri.%v %v, %d, %#x", in.Cond, in.Rs1, in.Imm2, uint64(in.Imm))
	case OpCall:
		return fmt.Sprintf("call %#x", uint64(in.Imm))
	case OpJmpInd:
		return fmt.Sprintf("jmpind %v", in.Rs1)
	}
	return in.Op.String()
}

func (in *Instr) ntSuffix() string {
	if in.NT {
		return ".nt"
	}
	return ""
}

// InstrBytes is the size of one encoded instruction. Instruction PCs
// advance by this amount, giving every instruction a distinct address in
// the same address space as data (profiles mix the two, as on real
// hardware).
const InstrBytes = 16

// BaseCost returns the base cycle cost of executing the instruction,
// excluding memory-hierarchy stalls. The costs are loosely modelled on a
// simple in-order pipeline; what matters for the reproduction is that the
// ratio between ALU work and memory stalls is plausible.
func (in *Instr) BaseCost() uint64 {
	switch in.Op {
	case OpNop:
		return 1
	case OpMul, OpMulI:
		return 3
	case OpDiv:
		return 12
	case OpLoad, OpStore:
		return 1 // plus hierarchy latency, added by the machine
	case OpPrefetch:
		return 1
	case OpCall, OpRet, OpJmpInd:
		return 2
	default:
		return 1
	}
}

// Validate reports whether the instruction is well formed: defined opcode,
// valid registers for the fields its opcode uses, and a legal access size
// for memory ops.
func (in *Instr) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", uint8(in.Op))
	}
	checkReg := func(name string, r Reg) error {
		if !r.Valid() {
			return fmt.Errorf("isa: %v: invalid %s register %d", in.Op, name, uint8(r))
		}
		return nil
	}
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpAnd, OpOr, OpXor, OpShl, OpShr:
		for _, c := range []struct {
			n string
			r Reg
		}{{"rd", in.Rd}, {"rs1", in.Rs1}, {"rs2", in.Rs2}} {
			if err := checkReg(c.n, c.r); err != nil {
				return err
			}
		}
	case OpAddI, OpMulI, OpAndI, OpShrI, OpMov:
		if err := checkReg("rd", in.Rd); err != nil {
			return err
		}
		if err := checkReg("rs1", in.Rs1); err != nil {
			return err
		}
	case OpMovI:
		if err := checkReg("rd", in.Rd); err != nil {
			return err
		}
	case OpLoad:
		if err := checkReg("rd", in.Rd); err != nil {
			return err
		}
		if err := in.validateMem(); err != nil {
			return err
		}
	case OpStore:
		if err := checkReg("rs1", in.Rs1); err != nil {
			return err
		}
		if err := in.validateMem(); err != nil {
			return err
		}
	case OpPrefetch:
		if err := in.validateMem(); err != nil {
			return err
		}
	case OpBr:
		if !in.Cond.Valid() {
			return fmt.Errorf("isa: br: invalid condition %d", uint8(in.Cond))
		}
		if err := checkReg("rs1", in.Rs1); err != nil {
			return err
		}
		if err := checkReg("rs2", in.Rs2); err != nil {
			return err
		}
	case OpBrI:
		if !in.Cond.Valid() {
			return fmt.Errorf("isa: bri: invalid condition %d", uint8(in.Cond))
		}
		if err := checkReg("rs1", in.Rs1); err != nil {
			return err
		}
	case OpJmpInd:
		if err := checkReg("rs1", in.Rs1); err != nil {
			return err
		}
	}
	return nil
}

func (in *Instr) validateMem() error {
	m := in.Mem
	if m.Base != NoReg && !m.Base.Valid() {
		return fmt.Errorf("isa: %v: invalid base register %d", in.Op, uint8(m.Base))
	}
	if m.Index != NoReg {
		if !m.Index.Valid() {
			return fmt.Errorf("isa: %v: invalid index register %d", in.Op, uint8(m.Index))
		}
		switch m.Scale {
		case 1, 2, 4, 8:
		default:
			return fmt.Errorf("isa: %v: invalid scale %d", in.Op, m.Scale)
		}
	}
	if in.Op == OpPrefetch {
		return nil
	}
	switch in.Size {
	case 1, 2, 4, 8:
		return nil
	}
	return fmt.Errorf("isa: %v: invalid access size %d", in.Op, in.Size)
}
