package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{R0, "r0"}, {R12, "r12"}, {SP, "sp"}, {BP, "bp"}, {LR, "lr"}, {NoReg, "-"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", uint8(c.r), got, c.want)
		}
	}
}

func TestOpClassification(t *testing.T) {
	if !OpLoad.IsMemory() || !OpStore.IsMemory() || !OpPrefetch.IsMemory() {
		t.Error("load/store/prefetch must be memory ops")
	}
	if OpAdd.IsMemory() {
		t.Error("add is not a memory op")
	}
	if !OpLoad.IsLoad() || OpStore.IsLoad() || OpPrefetch.IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !OpStore.IsStore() || OpLoad.IsStore() {
		t.Error("IsStore misclassifies")
	}
	for _, op := range []Op{OpJmp, OpBr, OpBrI, OpCall, OpRet, OpJmpInd, OpHalt} {
		if !op.IsBranch() {
			t.Errorf("%v must be a branch", op)
		}
	}
	for _, op := range []Op{OpAdd, OpLoad, OpMovI} {
		if op.IsBranch() {
			t.Errorf("%v must not be a branch", op)
		}
	}
	if !OpBr.IsConditional() || !OpBrI.IsConditional() || OpJmp.IsConditional() {
		t.Error("IsConditional misclassifies")
	}
	if !OpRet.IsIndirect() || !OpJmpInd.IsIndirect() || OpJmp.IsIndirect() {
		t.Error("IsIndirect misclassifies")
	}
}

func TestCondEval(t *testing.T) {
	cases := []struct {
		c    Cond
		a, b uint64
		want bool
	}{
		{CondEQ, 5, 5, true},
		{CondEQ, 5, 6, false},
		{CondNE, 5, 6, true},
		{CondLT, ^uint64(0), 1, true}, // -1 < 1 signed
		{CondLTU, ^uint64(0), 1, false},
		{CondGE, 7, 7, true},
		{CondGT, 8, 7, true},
		{CondGT, 7, 7, false},
		{CondLE, 7, 7, true},
		{CondGEU, ^uint64(0), 1, true},
	}
	for _, c := range cases {
		if got := c.c.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v.Eval(%d, %d) = %v, want %v", c.c, c.a, c.b, got, c.want)
		}
	}
}

func TestMemRefClassification(t *testing.T) {
	if !(MemRef{Base: NoReg, Index: NoReg, Disp: 0x1000}).IsStatic() {
		t.Error("absolute reference must be static")
	}
	if (MemRef{Base: R1, Index: NoReg}).IsStatic() {
		t.Error("based reference must not be static")
	}
	if !(MemRef{Base: SP, Index: NoReg}).IsStackRelative() {
		t.Error("sp-based reference must be stack relative")
	}
	if !(MemRef{Base: BP, Index: NoReg}).IsStackRelative() {
		t.Error("bp-based reference must be stack relative")
	}
	if (MemRef{Base: R3, Index: NoReg}).IsStackRelative() {
		t.Error("r3-based reference must not be stack relative")
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Op: OpLoad, Rd: R1, Size: 8, Mem: MemRef{Base: R2, Index: R3, Scale: 8, Disp: 16}}
	s := in.String()
	for _, want := range []string{"load8", "r1", "r2", "r3*8", "+16"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestTarget(t *testing.T) {
	in := Instr{Op: OpBr, Cond: CondLT, Rs1: R0, Rs2: R1, Imm: 0x400}
	tgt, ok := in.Target()
	if !ok || tgt != 0x400 {
		t.Errorf("Target() = %#x, %v; want 0x400, true", tgt, ok)
	}
	if _, ok := (&Instr{Op: OpRet}).Target(); ok {
		t.Error("ret must not report a static target")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Instr{
		{Op: numOps},
		{Op: OpAdd, Rd: 99, Rs1: R0, Rs2: R0},
		{Op: OpLoad, Rd: R0, Size: 3, Mem: MemRef{Base: R1, Index: NoReg}},
		{Op: OpLoad, Rd: R0, Size: 8, Mem: MemRef{Base: R1, Index: R2, Scale: 5}},
		{Op: OpBr, Cond: numConds, Rs1: R0, Rs2: R1},
		{Op: OpJmpInd, Rs1: 200},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate() accepted invalid instruction", i, in)
		}
	}
}

func TestEncodeDecodeFixed(t *testing.T) {
	cases := []Instr{
		{Op: OpNop, Mem: NoMem},
		{Op: OpHalt, Mem: NoMem},
		{Op: OpAdd, Rd: R1, Rs1: R2, Rs2: R3, Mem: NoMem},
		{Op: OpMovI, Rd: R5, Imm: -123456789, Mem: NoMem},
		{Op: OpLoad, Rd: R1, Size: 8, Mem: MemRef{Base: R2, Index: R3, Scale: 4, Disp: -64}},
		{Op: OpStore, Rs1: R7, Size: 4, Mem: MemRef{Base: SP, Index: NoReg, Disp: 24}},
		{Op: OpPrefetch, Mem: MemRef{Base: R9, Index: NoReg, Disp: 512}},
		{Op: OpLoad, Rd: R0, Size: 1, Mem: MemRef{Base: NoReg, Index: NoReg, Disp: 0x100000}},
		{Op: OpJmp, Imm: 0x12340, Mem: NoMem},
		{Op: OpBr, Cond: CondGE, Rs1: R4, Rs2: R5, Imm: 0x80, Mem: NoMem},
		{Op: OpBrI, Cond: CondLT, Rs1: R4, Imm2: -7, Imm: 0x80, Mem: NoMem},
		{Op: OpCall, Imm: 0x9990, Mem: NoMem},
		{Op: OpRet, Mem: NoMem},
		{Op: OpJmpInd, Rs1: R11, Mem: NoMem},
	}
	var buf [InstrBytes]byte
	for i, in := range cases {
		if err := in.Encode(buf[:]); err != nil {
			t.Fatalf("case %d: Encode: %v", i, err)
		}
		got, err := Decode(buf[:])
		if err != nil {
			t.Fatalf("case %d: Decode: %v", i, err)
		}
		if got != in {
			t.Errorf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, in)
		}
	}
}

func TestEncodeRejectsShortBuffer(t *testing.T) {
	in := Instr{Op: OpNop, Mem: NoMem}
	if err := in.Encode(make([]byte, InstrBytes-1)); err == nil {
		t.Error("Encode accepted short buffer")
	}
	if _, err := Decode(make([]byte, InstrBytes-1)); err == nil {
		t.Error("Decode accepted short buffer")
	}
}

func TestBrIImmediateRange(t *testing.T) {
	in := Instr{Op: OpBrI, Cond: CondEQ, Rs1: R0, Imm2: 1 << 40, Imm: 0, Mem: NoMem}
	var buf [InstrBytes]byte
	if err := in.Encode(buf[:]); err == nil {
		t.Error("Encode accepted out-of-range bri immediate")
	}
}

// randInstr generates a canonical random instruction: one whose unused
// fields are zeroed the way Decode leaves them, so encode/decode must be an
// exact identity.
func randInstr(r *rand.Rand) Instr {
	reg := func() Reg { return Reg(r.Intn(NumRegs)) }
	size := func() uint8 { return uint8(1 << r.Intn(4)) }
	mem := func() MemRef {
		m := MemRef{Base: NoReg, Index: NoReg}
		if r.Intn(4) != 0 {
			m.Base = reg()
		}
		if r.Intn(2) == 0 {
			m.Index = reg()
			m.Scale = uint8(1 << r.Intn(4))
		}
		m.Disp = int64(r.Intn(1<<20)) - 1<<19
		return m
	}
	switch r.Intn(10) {
	case 0:
		return Instr{Op: OpAdd, Rd: reg(), Rs1: reg(), Rs2: reg(), Mem: NoMem}
	case 1:
		return Instr{Op: OpAddI, Rd: reg(), Rs1: reg(), Imm: int64(r.Int31()), Mem: NoMem}
	case 2:
		return Instr{Op: OpMovI, Rd: reg(), Imm: int64(int32(r.Uint32())), Mem: NoMem}
	case 3:
		return Instr{Op: OpLoad, Rd: reg(), Size: size(), Mem: mem()}
	case 4:
		return Instr{Op: OpStore, Rs1: reg(), Size: size(), Mem: mem()}
	case 5:
		return Instr{Op: OpPrefetch, Mem: mem()}
	case 6:
		return Instr{Op: OpJmp, Imm: int64(r.Intn(1 << 30)), Mem: NoMem}
	case 7:
		return Instr{Op: OpBr, Cond: Cond(r.Intn(int(numConds))), Rs1: reg(), Rs2: reg(),
			Imm: int64(r.Intn(1 << 30)), Mem: NoMem}
	case 8:
		return Instr{Op: OpBrI, Cond: Cond(r.Intn(int(numConds))), Rs1: reg(),
			Imm2: int64(int32(r.Uint32())), Imm: int64(r.Intn(1 << 30)), Mem: NoMem}
	default:
		return Instr{Op: OpMul, Rd: reg(), Rs1: reg(), Rs2: reg(), Mem: NoMem}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		_ = seed
		in := randInstr(r)
		var buf [InstrBytes]byte
		if err := in.Encode(buf[:]); err != nil {
			t.Logf("Encode(%+v): %v", in, err)
			return false
		}
		got, err := Decode(buf[:])
		if err != nil {
			t.Logf("Decode: %v", err)
			return false
		}
		return got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeAllDecodeAll(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ins := make([]Instr, 100)
	for i := range ins {
		ins[i] = randInstr(r)
	}
	img, err := EncodeAll(ins)
	if err != nil {
		t.Fatalf("EncodeAll: %v", err)
	}
	if len(img) != 100*InstrBytes {
		t.Fatalf("image length = %d, want %d", len(img), 100*InstrBytes)
	}
	back, err := DecodeAll(img)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	for i := range ins {
		if back[i] != ins[i] {
			t.Fatalf("instruction %d mismatch: got %+v want %+v", i, back[i], ins[i])
		}
	}
	if _, err := DecodeAll(img[:InstrBytes+1]); err == nil {
		t.Error("DecodeAll accepted misaligned image")
	}
}

func TestBaseCostPositive(t *testing.T) {
	for op := OpNop; op < numOps; op++ {
		in := Instr{Op: op}
		if in.BaseCost() == 0 {
			t.Errorf("%v: base cost must be positive", op)
		}
	}
	div := Instr{Op: OpDiv}
	add := Instr{Op: OpAdd}
	if div.BaseCost() <= add.BaseCost() {
		t.Error("div must cost more than add")
	}
}

func TestNTEncodeDecode(t *testing.T) {
	cases := []Instr{
		{Op: OpLoad, Rd: R1, Size: 8, NT: true, Mem: MemRef{Base: R2, Index: NoReg}},
		{Op: OpStore, Rs1: R1, Size: 4, NT: true, Mem: MemRef{Base: R2, Index: R3, Scale: 8, Disp: 8}},
		{Op: OpLoad, Rd: R1, Size: 8, NT: false, Mem: MemRef{Base: R2, Index: NoReg}},
	}
	var buf [InstrBytes]byte
	for i, in := range cases {
		if err := in.Encode(buf[:]); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got, err := Decode(buf[:])
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != in {
			t.Errorf("case %d: %+v -> %+v", i, in, got)
		}
	}
	in := Instr{Op: OpLoad, Rd: R1, Size: 8, NT: true, Mem: MemRef{Base: R2, Index: NoReg}}
	if s := in.String(); !strings.Contains(s, "load8.nt") {
		t.Errorf("String = %q, want .nt suffix", s)
	}
}

func TestStringAllOps(t *testing.T) {
	// Every opcode must render without the fallback formatter.
	ins := []Instr{
		{Op: OpNop}, {Op: OpHalt}, {Op: OpRet},
		{Op: OpAdd, Rd: R0, Rs1: R1, Rs2: R2},
		{Op: OpSub, Rd: R0, Rs1: R1, Rs2: R2},
		{Op: OpMul, Rd: R0, Rs1: R1, Rs2: R2},
		{Op: OpDiv, Rd: R0, Rs1: R1, Rs2: R2},
		{Op: OpAnd, Rd: R0, Rs1: R1, Rs2: R2},
		{Op: OpOr, Rd: R0, Rs1: R1, Rs2: R2},
		{Op: OpXor, Rd: R0, Rs1: R1, Rs2: R2},
		{Op: OpShl, Rd: R0, Rs1: R1, Rs2: R2},
		{Op: OpShr, Rd: R0, Rs1: R1, Rs2: R2},
		{Op: OpAddI, Rd: R0, Rs1: R1, Imm: 1},
		{Op: OpMulI, Rd: R0, Rs1: R1, Imm: 2},
		{Op: OpAndI, Rd: R0, Rs1: R1, Imm: 3},
		{Op: OpShrI, Rd: R0, Rs1: R1, Imm: 4},
		{Op: OpMov, Rd: R0, Rs1: R1},
		{Op: OpMovI, Rd: R0, Imm: 5},
		{Op: OpLoad, Rd: R0, Size: 8, Mem: Mem(R1, 0)},
		{Op: OpStore, Rs1: R0, Size: 8, Mem: Mem(R1, 0)},
		{Op: OpPrefetch, Mem: Mem(R1, 0)},
		{Op: OpJmp, Imm: 0x400000},
		{Op: OpBr, Cond: CondEQ, Rs1: R0, Rs2: R1, Imm: 0x400000},
		{Op: OpBrI, Cond: CondNE, Rs1: R0, Imm2: 7, Imm: 0x400000},
		{Op: OpCall, Imm: 0x400000},
		{Op: OpJmpInd, Rs1: R0},
	}
	for _, in := range ins {
		s := in.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("%v renders as %q", in.Op, s)
		}
	}
	if Op(200).String() == "" || Cond(200).String() == "" || Reg(200).String() == "" {
		t.Error("fallback formatters must render")
	}
}

func TestMemRefStringForms(t *testing.T) {
	cases := []struct {
		m    MemRef
		want string
	}{
		{Mem(R2, 0), "[r2]"},
		{Mem(R2, 16), "[r2+16]"},
		{Mem(R2, -8), "[r2-8]"},
		{MemIdx(R2, R3, 8, 0), "[r2+r3*8]"},
		{MemIdx(R2, R3, 4, -4), "[r2+r3*4-4]"},
		{MemRef{Base: NoReg, Index: R3, Scale: 2, Disp: 64}, "[r3*2+64]"},
		{MemAbs(4096), "[+4096]"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("MemRef %+v = %q, want %q", c.m, got, c.want)
		}
	}
}
