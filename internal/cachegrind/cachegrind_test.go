package cachegrind

import (
	"strings"
	"testing"

	"umi/internal/cache"
	"umi/internal/isa"
	"umi/internal/program"
	"umi/internal/vm"
)

func TestPerPCAccounting(t *testing.T) {
	sim := NewP4()
	// PC 0x100 streams (every access a new line, all miss); PC 0x200
	// hammers one address (misses once).
	for i := uint64(0); i < 1000; i++ {
		sim.Ref(0x100, i*64, 8, false)
		sim.Ref(0x200, 0x9000000, 8, false)
	}
	st1, ok := sim.StatOf(0x100)
	if !ok || st1.Accesses != 1000 {
		t.Fatalf("StatOf(0x100) = %+v, %v", st1, ok)
	}
	if st1.L2Misses != 1000 {
		t.Errorf("streaming PC misses = %d, want 1000", st1.L2Misses)
	}
	st2, _ := sim.StatOf(0x200)
	if st2.L2Misses != 1 {
		t.Errorf("resident PC misses = %d, want 1", st2.L2Misses)
	}
	if st2.MissRatio() >= st1.MissRatio() {
		t.Error("resident PC must have lower miss ratio than streaming PC")
	}
	if !st1.IsLoad {
		t.Error("read refs must be loads")
	}
}

func TestDelinquentSetCoverage(t *testing.T) {
	sim := NewP4()
	// Three loads with controlled L2 misses: walk disjoint gigantic
	// regions so every access misses. Miss counts: A=800, B=150, C=50.
	for i := uint64(0); i < 800; i++ {
		sim.Ref(0xA, 0x1_0000_0000+i*4096, 8, false)
	}
	for i := uint64(0); i < 150; i++ {
		sim.Ref(0xB, 0x2_0000_0000+i*4096, 8, false)
	}
	for i := uint64(0); i < 50; i++ {
		sim.Ref(0xC, 0x3_0000_0000+i*4096, 8, false)
	}
	set := sim.DelinquentSet(0.90)
	// A (80%) alone is not 90%; A+B = 95% suffices; C excluded.
	if !set[0xA] || !set[0xB] {
		t.Errorf("set = %v, want A and B", set)
	}
	if set[0xC] {
		t.Errorf("set = %v, must exclude C", set)
	}
	cov := sim.MissCoverage(set)
	if cov < 0.90 {
		t.Errorf("coverage = %.3f, want >= 0.90", cov)
	}
}

func TestDelinquentSetStoresExcluded(t *testing.T) {
	sim := NewP4()
	for i := uint64(0); i < 500; i++ {
		sim.Ref(0xD, 0x1_0000_0000+i*4096, 8, true) // stores
		sim.Ref(0xE, 0x2_0000_0000+i*4096, 8, false)
	}
	set := sim.DelinquentSet(0.90)
	if set[0xD] {
		t.Error("stores must not appear in the delinquent load set")
	}
	if !set[0xE] {
		t.Error("the missing load must appear")
	}
}

func TestDelinquentSetEmptyWhenNoMisses(t *testing.T) {
	sim := NewP4()
	for i := 0; i < 100; i++ {
		sim.Ref(0xF, 0x1000, 8, false)
	}
	set := sim.DelinquentSet(0.90)
	if len(set) > 1 {
		t.Errorf("set = %v; a single compulsory miss must yield at most one entry", set)
	}
	sim2 := NewP4()
	if got := sim2.DelinquentSet(0.90); len(got) != 0 {
		t.Errorf("empty simulator must yield empty set, got %v", got)
	}
}

func TestMatchesGroundTruthHierarchy(t *testing.T) {
	// Cachegrind on the same reference stream as the ground-truth
	// hierarchy (no prefetchers) must produce identical L2 miss counts —
	// the reproduction's analogue of Table 4's near-perfect Cachegrind
	// correlation.
	b := program.NewBuilder("walk")
	e := b.Block("entry")
	e.MovI(isa.R0, 0)
	e.MovI(isa.R2, int64(program.HeapBase))
	l := b.Block("loop")
	l.Load(isa.R3, 8, isa.MemIdx(isa.R2, isa.R0, 8, 0))
	l.Store(isa.R3, 8, isa.MemIdx(isa.R2, isa.R0, 8, 1<<22))
	l.AddI(isa.R0, isa.R0, 5)
	l.BrI(isa.CondLT, isa.R0, 200_000, "loop")
	b.Block("done").Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}

	h := cache.NewP4(false)
	m := vm.New(p, h)
	sim := NewP4()
	m.RefHook = sim.Ref
	if err := m.Run(10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sim.L2Misses != h.L2Stats.Misses {
		t.Errorf("cachegrind L2 misses = %d, hierarchy = %d", sim.L2Misses, h.L2Stats.Misses)
	}
	if sim.L2Accesses != h.L2Stats.Accesses {
		t.Errorf("cachegrind L2 accesses = %d, hierarchy = %d", sim.L2Accesses, h.L2Stats.Accesses)
	}
	if sim.L2MissRatio() != h.L2Stats.MissRatio() {
		t.Error("miss ratios must match exactly")
	}
}

func TestAnnotate(t *testing.T) {
	b := program.NewBuilder("anno")
	e := b.Block("entry")
	e.MovI(isa.R2, int64(program.HeapBase))
	e.MovI(isa.R0, 0)
	l := b.Block("hotloop")
	l.Load(isa.R1, 8, isa.MemIdx(isa.R2, isa.R0, 8, 0))
	l.AddI(isa.R0, isa.R0, 8)
	l.BrI(isa.CondLT, isa.R0, 80_000, "hotloop")
	b.Block("done").Halt()
	// A cold library block that never executes.
	cold := b.Block("libfunc")
	cold.Load(isa.R3, 8, isa.Mem(isa.R4, 0))
	cold.Ret()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	sim := NewP4()
	m := vm.New(p, nil)
	m.RefHook = sim.Ref
	if err := m.Run(1_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := sim.Annotate(p, false)
	for _, want := range []string{"hotloop:", "load8 r1", "L2", "cold blocks elided"} {
		if !strings.Contains(out, want) {
			t.Errorf("annotation missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "libfunc:") {
		t.Error("cold block must be elided by default")
	}
	withCold := sim.Annotate(p, true)
	if !strings.Contains(withCold, "libfunc:") {
		t.Error("withCold must include the cold block")
	}
}
