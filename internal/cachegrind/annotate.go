package cachegrind

import (
	"fmt"
	"sort"
	"strings"

	"umi/internal/program"
)

// Annotate renders the program's disassembly with per-instruction miss
// statistics interleaved — the reproduction's cg_annotate. Only memory
// instructions with recorded activity carry annotations; block labels come
// from the symbol table. Cold code (never-executed library blocks) is
// elided by default; withCold includes it.
func (s *Simulator) Annotate(p *program.Program, withCold bool) string {
	byAddr := make(map[uint64][]string)
	for sym, addr := range p.Symbols {
		byAddr[addr] = append(byAddr[addr], sym)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "; %s — %d refs, L2 %d/%d misses (%.3f%%)\n",
		p.Name, s.Refs, s.L2Misses, s.L2Accesses, 100*s.L2MissRatio())
	fmt.Fprintf(&sb, "; %-12s %-12s %-10s\n", "accesses", "L2 misses", "ratio")

	skipping := false
	skipped := 0
	for i := range p.Instrs {
		pc := p.PCOf(i)
		in := &p.Instrs[i]
		st := s.perPC[pc]
		executed := st != nil
		cold := !executed && !in.Op.IsBranch() && !withCold

		if syms := byAddr[pc]; len(syms) > 0 {
			// A label boundary: decide whether the following block is
			// cold by looking at this instruction.
			if !withCold && st == nil && !blockExecuted(s, p, i) {
				if !skipping {
					skipping = true
				}
				sort.Strings(syms)
				skipped++
				continue
			}
			if skipping {
				fmt.Fprintf(&sb, "; ... %d cold blocks elided ...\n", skipped)
				skipping = false
				skipped = 0
			}
			sort.Strings(syms)
			for _, sym := range syms {
				fmt.Fprintf(&sb, "%s:\n", sym)
			}
		}
		if skipping {
			continue
		}
		_ = cold
		switch {
		case st != nil:
			fmt.Fprintf(&sb, "  %-12d %-12d %-8.4f  %#08x  %v\n",
				st.Accesses, st.L2Misses, st.MissRatio(), pc, in)
		default:
			fmt.Fprintf(&sb, "  %-12s %-12s %-8s  %#08x  %v\n", ".", ".", ".", pc, in)
		}
	}
	if skipping {
		fmt.Fprintf(&sb, "; ... %d cold blocks elided ...\n", skipped)
	}
	return sb.String()
}

// blockExecuted reports whether any memory instruction from index i to the
// end of its block (first branch) has recorded activity; blocks without
// memory instructions are treated as executed so control flow stays
// visible.
func blockExecuted(s *Simulator, p *program.Program, i int) bool {
	sawMem := false
	for ; i < len(p.Instrs); i++ {
		in := &p.Instrs[i]
		if in.Op.IsLoad() || in.Op.IsStore() {
			sawMem = true
			if _, ok := s.perPC[p.PCOf(i)]; ok {
				return true
			}
		}
		if in.Op.IsBranch() {
			break
		}
	}
	return !sawMem
}
