// Package cachegrind is the reproduction's offline, full-trace cache
// simulator — the role Cachegrind plays in the paper: ground truth for
// per-instruction miss counts (modified, as the authors did, "to report the
// number of cache misses for individual memory references rather than for
// each line of code"), the source of the reference delinquent-load set C,
// and the high-overhead end of the profiling tradeoff space.
//
// Attach a Simulator to a vm.Machine's RefHook and every memory reference
// of the run flows through a two-level hierarchy with per-PC accounting.
package cachegrind

import (
	"fmt"
	"sort"

	"umi/internal/cache"
)

// PCStat is the simulated behaviour of one static memory instruction.
type PCStat struct {
	PC       uint64
	IsLoad   bool
	Accesses uint64
	L1Misses uint64
	L2Misses uint64
}

// MissRatio returns L2 misses per access for this instruction.
func (s *PCStat) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.L2Misses) / float64(s.Accesses)
}

// Simulator is a trace-driven two-level cache simulator with
// per-instruction accounting.
type Simulator struct {
	l1 *cache.Cache
	l2 *cache.Cache

	perPC map[uint64]*PCStat

	// Aggregate L2 statistics (loads and stores).
	L2Accesses uint64
	L2Misses   uint64
	L1Accesses uint64
	L1Misses   uint64
	Refs       uint64
}

// New builds a simulator with the given level geometries.
func New(l1, l2 cache.Config) *Simulator {
	return &Simulator{l1: cache.New(l1), l2: cache.New(l2), perPC: make(map[uint64]*PCStat)}
}

// NewP4 returns a simulator configured like the Pentium 4 hierarchy.
func NewP4() *Simulator { return New(cache.P4L1D, cache.P4L2) }

// NewK7 returns a simulator configured like the AMD K7 hierarchy.
func NewK7() *Simulator { return New(cache.K7L1D, cache.K7L2) }

// Ref processes one memory reference; its signature matches vm.RefHook.
func (s *Simulator) Ref(pc, addr uint64, size uint8, write bool) {
	s.Refs++
	st := s.perPC[pc]
	if st == nil {
		st = &PCStat{PC: pc, IsLoad: !write}
		s.perPC[pc] = st
	}
	st.Accesses++

	s.L1Accesses++
	if s.l1.Access(addr).Hit {
		return
	}
	s.L1Misses++
	st.L1Misses++

	s.L2Accesses++
	if s.l2.Access(addr).Hit {
		return
	}
	s.L2Misses++
	st.L2Misses++
}

// L2MissRatio is the whole-program L2 miss ratio (loads and stores), the
// simulator column of the paper's Table 4 correlation.
func (s *Simulator) L2MissRatio() float64 {
	if s.L2Accesses == 0 {
		return 0
	}
	return float64(s.L2Misses) / float64(s.L2Accesses)
}

// Stats returns the per-instruction table (live map; do not mutate).
func (s *Simulator) Stats() map[uint64]*PCStat { return s.perPC }

// StatOf returns the record for one instruction.
func (s *Simulator) StatOf(pc uint64) (*PCStat, bool) {
	st, ok := s.perPC[pc]
	return st, ok
}

// TotalLoadMisses sums L2 misses over load instructions.
func (s *Simulator) TotalLoadMisses() uint64 {
	var total uint64
	for _, st := range s.perPC {
		if st.IsLoad {
			total += st.L2Misses
		}
	}
	return total
}

// DelinquentSet computes the paper's reference set C: the minimal set of
// load instructions that together account for at least the given fraction
// (e.g. 0.90) of all L2 load misses, built by taking instructions in
// descending miss count order.
func (s *Simulator) DelinquentSet(coverage float64) map[uint64]bool {
	type rec struct {
		pc     uint64
		misses uint64
	}
	var loads []rec
	var total uint64
	for pc, st := range s.perPC {
		if st.IsLoad && st.L2Misses > 0 {
			loads = append(loads, rec{pc, st.L2Misses})
			total += st.L2Misses
		}
	}
	set := make(map[uint64]bool)
	if total == 0 {
		return set
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].misses != loads[j].misses {
			return loads[i].misses > loads[j].misses
		}
		return loads[i].pc < loads[j].pc
	})
	need := uint64(coverage * float64(total))
	var acc uint64
	for _, r := range loads {
		if acc >= need {
			break
		}
		set[r.pc] = true
		acc += r.misses
	}
	return set
}

// MissCoverage returns the fraction of all L2 load misses accounted for by
// the loads in the given set (the paper's "miss coverage" columns).
func (s *Simulator) MissCoverage(set map[uint64]bool) float64 {
	total := s.TotalLoadMisses()
	if total == 0 {
		return 0
	}
	var covered uint64
	for pc := range set {
		if st, ok := s.perPC[pc]; ok && st.IsLoad {
			covered += st.L2Misses
		}
	}
	return float64(covered) / float64(total)
}

func (s *Simulator) String() string {
	return fmt.Sprintf("cachegrind.Simulator{%d refs, L2 %d/%d misses (%.3f%%), %d static refs}",
		s.Refs, s.L2Misses, s.L2Accesses, 100*s.L2MissRatio(), len(s.perPC))
}
