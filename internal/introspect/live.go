// Live stream tailing: the client half of `umiprof -emit-live`. A
// LiveShipper owns one ingest session on a umid daemon and ships the
// telemetry stream to it while the guest is still running, one wire frame
// at a time over a single chunked POST /sessions/{id}/ingest?live=1 — the
// daemon analyzes frames as they arrive on the shared prep pool.
//
// Flow control is a bounded window of in-flight frames: the capture side
// blocks in the encoder's frame hook when the window is full (the
// producer backs off; frames are never dropped). Every shipped byte is
// also spooled, so when the connection dies the shipper re-POSTs the
// whole stream — the daemon, holding the session resumable at the last
// applied invocation boundary, skip-verifies the prefix by rolling
// checksum and applies only what it has not seen.
package introspect

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// LiveConfig sizes a LiveShipper.
type LiveConfig struct {
	// Workers is the session's analyzer width on the daemon.
	Workers int
	// Window bounds in-flight (sent-but-unacknowledged-by-TCP) frames;
	// the producer blocks past it. Default 64.
	Window int
	// MaxAttempts bounds connection attempts (first try included).
	// Default 5.
	MaxAttempts int
	// RetryDelay spaces reconnect attempts and session-state polls.
	// Default 200ms.
	RetryDelay time.Duration
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 200 * time.Millisecond
	}
	return c
}

// LiveShipper streams one wire-encoded telemetry stream into a daemon
// ingest session as it is produced. Use it as the encoder's destination
// writer and install FrameEnd as the encoder's frame hook; Close after
// the encoder's final Flush returns the daemon's merged RunResult.
type LiveShipper struct {
	base   string
	id     string
	cfg    LiveConfig
	client *http.Client

	pend   []byte      // bytes of the frame being encoded
	window chan []byte // completed frames awaiting the wire
	closed bool        // window closed (producer side)

	done chan struct{} // sender exited

	mu     sync.Mutex
	result *RunResult
	err    error
}

// NewLiveShipper creates an ingest session on the daemon at base (a URL
// or host:port) and starts the sender. The returned shipper is ready to
// be written to.
func NewLiveShipper(base string, cfg LiveConfig) (*LiveShipper, error) {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	s := &LiveShipper{
		base:   base,
		cfg:    cfg.withDefaults(),
		client: &http.Client{},
		done:   make(chan struct{}),
	}
	s.window = make(chan []byte, s.cfg.Window)
	cfgBody := fmt.Sprintf(`{"ingest": true, "workers": %d}`, s.cfg.Workers)
	resp, err := s.client.Post(s.base+"/sessions", "application/json", strings.NewReader(cfgBody))
	if err != nil {
		return nil, fmt.Errorf("create session: %w", err)
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil || resp.StatusCode != http.StatusCreated {
		return nil, fmt.Errorf("create session: status %d, body %s", resp.StatusCode, body)
	}
	var inf struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &inf); err != nil || inf.ID == "" {
		return nil, fmt.Errorf("create session: bad response %s", body)
	}
	s.id = inf.ID
	go s.run()
	return s, nil
}

// SessionID names the daemon session this shipper streams into.
func (s *LiveShipper) SessionID() string { return s.id }

// Write accumulates encoder output for the frame currently being encoded.
// Never fails: transport trouble is absorbed by the retry loop and
// surfaced at Close.
func (s *LiveShipper) Write(p []byte) (int, error) {
	s.pend = append(s.pend, p...)
	return len(p), nil
}

// FrameEnd marks a frame boundary (install as wire.Encoder.SetFrameHook).
// It hands the completed frame to the sender, blocking while the
// flow-control window is full — the producer backs off instead of
// dropping or buffering unboundedly.
func (s *LiveShipper) FrameEnd() {
	if len(s.pend) == 0 {
		return
	}
	frame := make([]byte, len(s.pend))
	copy(frame, s.pend)
	s.pend = s.pend[:0]
	s.window <- frame
}

// Close signals end of stream, waits for the daemon to acknowledge the
// complete upload, and returns its merged RunResult. Call after the
// encoder's final Flush.
func (s *LiveShipper) Close() (*RunResult, error) {
	if !s.closed {
		s.closed = true
		close(s.window)
	}
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.result, s.err
}

// run is the sender: it drives POST attempts until the stream is fully
// acknowledged or retries are exhausted. All window consumption happens
// here, so frame order and the spool are trivially consistent.
func (s *LiveShipper) run() {
	defer close(s.done)
	var spool []byte    // every frame handed to any attempt, in order
	streamDone := false // producer closed the window and spool holds it all
	for attempt := 1; ; attempt++ {
		res, err := s.attempt(&spool, &streamDone)
		if err == nil {
			s.finish(res, nil)
			return
		}
		if attempt >= s.cfg.MaxAttempts {
			s.finish(nil, fmt.Errorf("live ingest: %w (after %d attempts)", err, attempt))
			return
		}
		// Wait for the daemon to notice the cut and park the session
		// resumable (or discover it actually completed).
		res, retry, werr := s.awaitResumable()
		if res != nil {
			s.finish(res, nil)
			return
		}
		if !retry {
			s.finish(nil, fmt.Errorf("live ingest: %w", werr))
			return
		}
	}
}

// finish publishes the outcome and keeps draining the window so a
// producer blocked in FrameEnd always gets unstuck.
func (s *LiveShipper) finish(res *RunResult, err error) {
	s.mu.Lock()
	s.result, s.err = res, err
	s.mu.Unlock()
	for range s.window {
	}
}

// attempt runs one POST: the spool so far (a resume re-send, empty on the
// first try), then live frames off the window. A nil error means the
// daemon acknowledged the complete stream with a result.
func (s *LiveShipper) attempt(spool *[]byte, streamDone *bool) (*RunResult, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, s.base+"/sessions/"+s.id+"/ingest?live=1", pr)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	type outcome struct {
		resp *http.Response
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		resp, err := s.client.Do(req)
		ch <- outcome{resp, err}
		if err == nil {
			return
		}
		// A failed Do may leave the feeder blocked in pw.Write; unblock it.
		pr.CloseWithError(err)
	}()

	// Feed: spooled bytes first, then live frames. A frame is spooled
	// before it is written, so an attempt that dies mid-write still
	// covers that frame on the next re-send.
	_, werr := pw.Write(*spool)
	if werr == nil && !*streamDone {
		for frame := range s.window {
			*spool = append(*spool, frame...)
			if _, werr = pw.Write(frame); werr != nil {
				break
			}
		}
		if werr == nil {
			*streamDone = true
		}
	}
	pw.Close()

	out := <-ch
	if out.err != nil {
		return nil, out.err
	}
	defer out.resp.Body.Close()
	body, rerr := io.ReadAll(out.resp.Body)
	if rerr != nil {
		return nil, rerr
	}
	if out.resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", out.resp.StatusCode, bytes.TrimSpace(body))
	}
	var res RunResult
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, fmt.Errorf("bad result: %w", err)
	}
	return &res, nil
}

// awaitResumable polls the session until it is safe to re-send: resumable
// or created means retry; done means the daemon actually got everything
// (the cut hit the response, not the upload) and its report is fetched;
// failed is fatal.
func (s *LiveShipper) awaitResumable() (*RunResult, bool, error) {
	deadline := time.Now().Add(time.Duration(s.cfg.MaxAttempts) * 10 * s.cfg.RetryDelay)
	for {
		time.Sleep(s.cfg.RetryDelay)
		state, err := s.sessionState()
		if err != nil {
			if time.Now().After(deadline) {
				return nil, false, err
			}
			continue
		}
		switch state {
		case "resumable", "created", "done":
			if state == "done" {
				res, err := s.fetchReport()
				return res, false, err
			}
			return nil, true, nil
		case "failed":
			return nil, false, fmt.Errorf("session %s poisoned", s.id)
		}
		if time.Now().After(deadline) {
			return nil, false, fmt.Errorf("session %s still %s", s.id, state)
		}
	}
}

// sessionState looks this shipper's session up in the daemon listing.
func (s *LiveShipper) sessionState() (string, error) {
	resp, err := s.client.Get(s.base + "/sessions")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var infos []struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return "", err
	}
	for _, inf := range infos {
		if inf.ID == s.id {
			return inf.State, nil
		}
	}
	return "", fmt.Errorf("session %s not found", s.id)
}

func (s *LiveShipper) fetchReport() (*RunResult, error) {
	resp, err := s.client.Get(s.base + "/sessions/" + s.id + "/report")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("report: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var res RunResult
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, err
	}
	return &res, nil
}
