package introspect

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// emitStream records one session config's umi-profile/v1 stream and
// returns it with the live result.
func emitStream(t *testing.T, cfg SessionConfig) (*RunResult, []byte) {
	t.Helper()
	var buf bytes.Buffer
	res, err := EmitStandalone(cfg, &buf)
	if err != nil {
		t.Fatalf("EmitStandalone: %v", err)
	}
	return res, buf.Bytes()
}

// ingestConfigJSON is the POST /sessions body for an ingest session.
func ingestConfigJSON(workers int) []byte {
	return []byte(fmt.Sprintf(`{"ingest": true, "workers": %d}`, workers))
}

// createIngestSession creates an ingest session and returns its id.
func createIngestSession(t *testing.T, base string, workers int) string {
	t.Helper()
	code, data := doReq(t, http.MethodPost, base+"/sessions", ingestConfigJSON(workers))
	if code != http.StatusCreated {
		t.Fatalf("create ingest session: status %d, body %s", code, data)
	}
	var inf sessionInfo
	if err := json.Unmarshal(data, &inf); err != nil {
		t.Fatalf("create response: %v", err)
	}
	return inf.ID
}

// TestIngestByteIdentity is the wire format's end-to-end contract through
// the HTTP surface: a stream recorded by EmitStandalone and POSTed to an
// ingest session produces a response body byte-identical to the capture
// process's RunResult — whatever the capture-side pipeline width and
// whatever the ingest-side one.
func TestIngestByteIdentity(t *testing.T) {
	for _, emitWorkers := range []int{0, 4} {
		cfg := traceSessionConfig(1, emitWorkers)
		live, stream := emitStream(t, cfg)
		want := resultBytes(t, live)

		// Emission must not perturb the run: the emitting result matches
		// the silent standalone one.
		cfgSilent := cfg
		silent, err := RunStandalone(cfgSilent)
		if err != nil {
			t.Fatalf("RunStandalone: %v", err)
		}
		if !bytes.Equal(want, resultBytes(t, silent)) {
			t.Fatalf("emitWorkers=%d: emission perturbed the run", emitWorkers)
		}

		for _, ingestWorkers := range []int{0, 4} {
			t.Run(fmt.Sprintf("emit=%d/ingest=%d", emitWorkers, ingestWorkers), func(t *testing.T) {
				_, base := startDaemon(t, DaemonConfig{PrepWorkers: 4})
				id := createIngestSession(t, base, ingestWorkers)
				code, body := doReq(t, http.MethodPost, base+"/sessions/"+id+"/ingest", stream)
				if code != http.StatusOK {
					t.Fatalf("ingest: status %d, body %s", code, body)
				}
				if !bytes.Equal(body, want) {
					t.Errorf("ingested result diverges from capture result\n want %d bytes\n got  %d bytes\n%s", len(want), len(body), body)
				}
				// The report endpoint serves the same merged result.
				code, rep := doReq(t, http.MethodGet, base+"/sessions/"+id+"/report", nil)
				if code != http.StatusOK || !bytes.Equal(rep, want) {
					t.Errorf("report after ingest: status %d, diverges=%v", code, !bytes.Equal(rep, want))
				}
			})
		}
	}
}

// TestIngestShardMerge posts the same stream twice: the session must
// merge the shards into one logical run — analyzer totals double, set
// cardinalities stay (identical shards), hardware counts sum.
func TestIngestShardMerge(t *testing.T) {
	live, stream := emitStream(t, traceSessionConfig(2, 0))
	_, base := startDaemon(t, DaemonConfig{PrepWorkers: 4})
	id := createIngestSession(t, base, 0)
	for shard := 0; shard < 2; shard++ {
		code, body := doReq(t, http.MethodPost, base+"/sessions/"+id+"/ingest", stream)
		if code != http.StatusOK {
			t.Fatalf("shard %d: status %d, body %s", shard, code, body)
		}
	}
	code, body := doReq(t, http.MethodGet, base+"/sessions/"+id+"/report", nil)
	if code != http.StatusOK {
		t.Fatalf("report: status %d", code)
	}
	var merged RunResult
	if err := json.Unmarshal(body, &merged); err != nil {
		t.Fatalf("report: %v", err)
	}
	if got, want := merged.Report.AnalyzerInvocations, 2*live.Report.AnalyzerInvocations; got != want {
		t.Errorf("invocations = %d, want %d", got, want)
	}
	if got, want := merged.Report.SimulatedRefs, 2*live.Report.SimulatedRefs; got != want {
		t.Errorf("refs = %d, want %d", got, want)
	}
	if got, want := merged.Cycles, 2*live.Cycles; got != want {
		t.Errorf("cycles = %d, want %d", got, want)
	}
	if got, want := merged.Instrs, 2*live.Instrs; got != want {
		t.Errorf("instrs = %d, want %d", got, want)
	}
	// Identical shards carry identical PC sets: union cardinality stays.
	if got, want := merged.Report.TracesSeen, live.Report.TracesSeen; got != want {
		t.Errorf("traces = %d, want %d", got, want)
	}
	if got, want := merged.Report.CandidateOps, live.Report.CandidateOps; got != want {
		t.Errorf("candidates = %d, want %d", got, want)
	}
	// Raw hardware counts summed; the ratio recomputes to the same value.
	if merged.HWMissRatio != live.HWMissRatio {
		t.Errorf("hw miss ratio = %v, want %v", merged.HWMissRatio, live.HWMissRatio)
	}
}

// TestIngestConfigMismatch: a shard recorded under a different analyzer
// configuration must be refused with 409 and must NOT poison the session
// — nothing from it was applied.
func TestIngestConfigMismatch(t *testing.T) {
	_, streamA := emitStream(t, traceSessionConfig(0, 0))
	cfgB := traceSessionConfig(0, 0)
	cfgB.HistoryWindows = 7 // different analyzer-relevant config
	_, streamB := emitStream(t, cfgB)

	_, base := startDaemon(t, DaemonConfig{PrepWorkers: 2})
	id := createIngestSession(t, base, 0)
	if code, body := doReq(t, http.MethodPost, base+"/sessions/"+id+"/ingest", streamA); code != http.StatusOK {
		t.Fatalf("first shard: status %d, body %s", code, body)
	}
	code, body := doReq(t, http.MethodPost, base+"/sessions/"+id+"/ingest", streamB)
	if code != http.StatusConflict {
		t.Fatalf("mismatched shard: status %d, want 409; body %s", code, body)
	}
	// The session survives and still accepts matching shards.
	if code, body := doReq(t, http.MethodPost, base+"/sessions/"+id+"/ingest", streamA); code != http.StatusOK {
		t.Errorf("post-mismatch shard: status %d, body %s", code, body)
	}
}

// TestIngestDecodeErrorPoisons: a stream that fails mid-decode leaves
// partially-applied analysis, so the session flips to failed, refuses
// further shards, and the decode-error counter ticks.
func TestIngestDecodeErrorPoisons(t *testing.T) {
	_, stream := emitStream(t, traceSessionConfig(0, 0))
	d, base := startDaemon(t, DaemonConfig{PrepWorkers: 2})
	id := createIngestSession(t, base, 0)

	cut := stream[:len(stream)*3/4]
	code, body := doReq(t, http.MethodPost, base+"/sessions/"+id+"/ingest", cut)
	if code != http.StatusBadRequest {
		t.Fatalf("truncated stream: status %d, want 400; body %s", code, body)
	}
	if got := d.ingest.DecodeErrors.Load(); got != 1 {
		t.Errorf("decode_errors = %d, want 1", got)
	}
	code, body = doReq(t, http.MethodPost, base+"/sessions/"+id+"/ingest", stream)
	if code != http.StatusConflict {
		t.Errorf("shard into poisoned session: status %d, want 409; body %s", code, body)
	}
}

// TestIngestRejectsRunAndGuests: the run/ingest surfaces are exclusive —
// an ingest session refuses /run, a guest session refuses /ingest, and an
// ingest config with guest knobs is rejected at creation.
func TestIngestRejectsRunAndGuests(t *testing.T) {
	_, stream := emitStream(t, traceSessionConfig(0, 0))
	_, base := startDaemon(t, DaemonConfig{PrepWorkers: 2})

	ingID := createIngestSession(t, base, 0)
	if code, body := doReq(t, http.MethodPost, base+"/sessions/"+ingID+"/run", nil); code != http.StatusConflict {
		t.Errorf("run on ingest session: status %d, want 409; body %s", code, body)
	}

	guestID := createSession(t, base, traceSessionConfig(0, 0))
	if code, body := doReq(t, http.MethodPost, base+"/sessions/"+guestID+"/ingest", stream); code != http.StatusConflict {
		t.Errorf("ingest on guest session: status %d, want 409; body %s", code, body)
	}

	bad := []byte(`{"ingest": true, "workload": "stride"}`)
	if code, _ := doReq(t, http.MethodPost, base+"/sessions", bad); code != http.StatusBadRequest {
		t.Errorf("ingest config with workload: status %d, want 400", code)
	}
}

// TestIngestMetricsExposed: the fleet Prometheus exposition carries the
// daemon's ingest counters (under the reserved "ingest" session label)
// and the per-frame latency histogram.
func TestIngestMetricsExposed(t *testing.T) {
	_, stream := emitStream(t, traceSessionConfig(0, 0))
	_, base := startDaemon(t, DaemonConfig{PrepWorkers: 2})
	id := createIngestSession(t, base, 0)
	if code, body := doReq(t, http.MethodPost, base+"/sessions/"+id+"/ingest", stream); code != http.StatusOK {
		t.Fatalf("ingest: status %d, body %s", code, body)
	}
	code, body := doReq(t, http.MethodGet, base+"/metrics/prom", nil)
	if code != http.StatusOK {
		t.Fatalf("prom: status %d", code)
	}
	text := string(body)
	for _, want := range []string{
		`umid_ingest_streams{session="ingest"} 1`,
		`umid_ingest_frames{session="ingest"}`,
		`umid_ingest_bytes{session="ingest"}`,
		`umid_ingest_decode_errors{session="ingest"} 0`,
		`umid_ingest_frame_latency_ns_count{session="ingest"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The ingest session itself serves its replayer's registry.
	code, snap := doReq(t, http.MethodGet, base+"/sessions/"+id+"/metrics", nil)
	if code != http.StatusOK || !strings.Contains(string(snap), "umi.analyzer.invocations") {
		t.Errorf("ingest session metrics: status %d, body %.120s", code, snap)
	}
}

// TestIngestFleetRenders: completed ingest sessions join the fleet
// delinquent/phase aggregations alongside guest sessions.
func TestIngestFleetRenders(t *testing.T) {
	_, stream := emitStream(t, traceSessionConfig(0, 0))
	_, base := startDaemon(t, DaemonConfig{PrepWorkers: 2})

	guestID := createSession(t, base, traceSessionConfig(1, 0))
	if code, body := doReq(t, http.MethodPost, base+"/sessions/"+guestID+"/run", nil); code != http.StatusOK {
		t.Fatalf("guest run: status %d, body %s", code, body)
	}
	ingID := createIngestSession(t, base, 0)
	if code, body := doReq(t, http.MethodPost, base+"/sessions/"+ingID+"/ingest", stream); code != http.StatusOK {
		t.Fatalf("ingest: status %d, body %s", code, body)
	}
	code, body := doReq(t, http.MethodGet, base+"/fleet/delinquent", nil)
	if code != http.StatusOK {
		t.Fatalf("fleet: status %d", code)
	}
	text := string(body)
	if !strings.Contains(text, ingID) || !strings.Contains(text, "ingest:") {
		t.Errorf("fleet render missing the ingested session:\n%s", text)
	}
	if !strings.Contains(text, guestID) {
		t.Errorf("fleet render missing the guest session:\n%s", text)
	}
}

// TestDaemonRouteContentTypes asserts the Content-Type of every daemon
// route, including responses that commit a non-200 status: a JSON body
// must always arrive as application/json, text renders as text/plain, and
// the Prometheus exposition as its versioned type.
func TestDaemonRouteContentTypes(t *testing.T) {
	_, stream := emitStream(t, traceSessionConfig(0, 0))
	_, base := startDaemon(t, DaemonConfig{PrepWorkers: 2})

	guestID := createSession(t, base, traceSessionConfig(0, 0))
	if code, body := doReq(t, http.MethodPost, base+"/sessions/"+guestID+"/run", nil); code != http.StatusOK {
		t.Fatalf("guest run: status %d, body %s", code, body)
	}
	ingID := createIngestSession(t, base, 0)

	const jsonCT = "application/json"
	const textCT = "text/plain; charset=utf-8"
	cases := []struct {
		name     string
		method   string
		path     string
		body     []byte
		wantCode int
		wantCT   string
	}{
		{"index", http.MethodGet, "/", nil, http.StatusOK, textCT},
		{"create", http.MethodPost, "/sessions", []byte(`{"workload": "mst"}`), http.StatusCreated, jsonCT},
		{"list", http.MethodGet, "/sessions", nil, http.StatusOK, jsonCT},
		{"report", http.MethodGet, "/sessions/" + guestID + "/report", nil, http.StatusOK, jsonCT},
		{"history", http.MethodGet, "/sessions/" + guestID + "/history", nil, http.StatusOK, jsonCT},
		{"metrics", http.MethodGet, "/sessions/" + guestID + "/metrics", nil, http.StatusOK, jsonCT},
		{"ingest", http.MethodPost, "/sessions/" + ingID + "/ingest", stream, http.StatusOK, jsonCT},
		{"prom", http.MethodGet, "/metrics/prom", nil, http.StatusOK, "text/plain; version=0.0.4; charset=utf-8"},
		{"fleet-delinquent", http.MethodGet, "/fleet/delinquent", nil, http.StatusOK, textCT},
		{"fleet-phases", http.MethodGet, "/fleet/phases", nil, http.StatusOK, textCT},
		{"error", http.MethodGet, "/sessions/nosuch/report", nil, http.StatusNotFound, textCT},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, base+tc.path, bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantCode)
			}
			if got := resp.Header.Get("Content-Type"); got != tc.wantCT {
				t.Errorf("Content-Type = %q, want %q", got, tc.wantCT)
			}
		})
	}
	// DELETE returns 204 with no body and therefore no Content-Type.
	req, _ := http.NewRequest(http.MethodDelete, base+"/sessions/"+guestID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("delete status = %d, want 204", resp.StatusCode)
	}
}
