// Fleet-wide aggregation: cross-session views over the daemon's completed
// runs. The paper profiles one process at a time; a daemon multiplexing
// many sessions can also answer questions no single session can — which
// delinquent loads are universal across co-tenants (union/intersection of
// the per-session P sets) and whose phase behaviour moves together
// (pairwise correlation of phase-change windows). Both renders are pure
// functions of the completed results, so fixed fleets render
// byte-identically and golden tests pin the layout.
package introspect

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
)

// FormatFleetDelinquent renders the cross-session delinquent-load view:
// per-session set sizes, then every PC in the union with the sessions
// predicting it, intersection members starred. Deterministic: sessions in
// creation order, PCs ascending.
func FormatFleetDelinquent(fleet []fleetMember) string {
	var sb strings.Builder
	if len(fleet) == 0 {
		sb.WriteString("fleet delinquent loads: no completed sessions\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "fleet delinquent loads: %d completed sessions\n\n", len(fleet))

	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "session\tguest\t|P|\tsim miss\n")
	for _, m := range fleet {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.4f\n",
			m.ID, m.Guest, len(m.Result.Report.Delinquent), m.Result.Report.SimMissRatio)
	}
	tw.Flush()

	// Membership per PC across the fleet.
	members := map[uint64][]string{}
	for _, m := range fleet {
		for pc := range m.Result.Report.Delinquent {
			members[pc] = append(members[pc], m.ID)
		}
	}
	union := make([]uint64, 0, len(members))
	intersection := 0
	for pc, ids := range members {
		union = append(union, pc)
		if len(ids) == len(fleet) {
			intersection++
		}
	}
	sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
	fmt.Fprintf(&sb, "\nunion %d  intersection %d\n", len(union), intersection)
	if len(union) == 0 {
		return sb.String()
	}

	sb.WriteString("\n")
	tw = tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "pc\tsessions\t\n")
	for _, pc := range union {
		ids := members[pc]
		star := ""
		if len(ids) == len(fleet) {
			star = "*"
		}
		fmt.Fprintf(tw, "%#x\t%s\t%s\n", pc, strings.Join(ids, ","), star)
	}
	tw.Flush()
	sb.WriteString("\n* = delinquent in every session\n")
	return sb.String()
}

// phaseSet extracts the invocation indexes of a session's phase-change
// windows — the session's phase signature.
func phaseSet(m fleetMember) map[int]bool {
	set := map[int]bool{}
	for _, w := range m.Result.History.Windows {
		if w.PhaseChange {
			set[w.Invocation] = true
		}
	}
	return set
}

// jaccardInt is |a∩b| / |a∪b|, defined as 1 when both sets are empty
// (two sessions that never changed phase agree perfectly).
func jaccardInt(a, b map[int]bool) (float64, int) {
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	uni := len(a) + len(b) - inter
	if uni == 0 {
		return 1, 0
	}
	return float64(inter) / float64(uni), inter
}

// FormatFleetPhases renders cross-session phase-change correlation: each
// session's phase-change count, then every pair's Jaccard similarity over
// phase-change invocation indexes. Sessions whose guests shift phase at
// the same analyzer invocations score high — co-tenants moving together.
func FormatFleetPhases(fleet []fleetMember) string {
	var sb strings.Builder
	if len(fleet) == 0 {
		sb.WriteString("fleet phase correlation: no completed sessions\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "fleet phase correlation: %d completed sessions\n\n", len(fleet))

	sets := make([]map[int]bool, len(fleet))
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "session\tguest\twindows\tphase changes\n")
	for i, m := range fleet {
		sets[i] = phaseSet(m)
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\n",
			m.ID, m.Guest, len(m.Result.History.Windows), m.Result.History.PhaseChanges)
	}
	tw.Flush()

	if len(fleet) < 2 {
		sb.WriteString("\nno pairs: correlation needs at least two sessions\n")
		return sb.String()
	}
	sb.WriteString("\n")
	tw = tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "pair\tjaccard\tshared\n")
	for i := 0; i < len(fleet); i++ {
		for j := i + 1; j < len(fleet); j++ {
			jac, shared := jaccardInt(sets[i], sets[j])
			fmt.Fprintf(tw, "%s~%s\t%.3f\t%d\n", fleet[i].ID, fleet[j].ID, jac, shared)
		}
	}
	tw.Flush()
	return sb.String()
}
