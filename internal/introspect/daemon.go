// The umid daemon: a long-lived control plane multiplexing many
// concurrent profiling sessions over one shared analyzer preparation
// pool. Each session keeps its own System (per-session sequencer, logical
// cache, history ring) so co-tenancy cannot perturb results — a session
// run through the daemon produces byte-identical output to the same
// config run standalone — while the expensive stateless preparation work
// is shared and scheduled fairly (round-robin across session lanes).
//
// Lifecycle surface (Go 1.22 method+pattern routes):
//
//	POST   /sessions             create from a SessionConfig JSON body
//	GET    /sessions             list sessions with state
//	POST   /sessions/{id}/run    execute to completion, return the result
//	POST   /sessions/{id}/ingest replay a umi-profile/v1|v2 stream (?live=1 to tail)
//	GET    /sessions/{id}/report completed RunResult (409 until done)
//	GET    /sessions/{id}/history  live profile-history windows
//	GET    /sessions/{id}/metrics  live self-observability snapshot
//	DELETE /sessions/{id}        remove the session
//	GET    /metrics/prom         fleet Prometheus exposition (session label)
//	GET    /fleet/delinquent     cross-session delinquent-set union/intersection
//	GET    /fleet/phases         cross-session phase-change correlation
//
// Admission control: creates past MaxSessions and runs past the shared
// queue's high-water mark are rejected with 429 so a saturated daemon
// sheds load instead of queueing unboundedly; during a drain every
// mutating request gets 503.
package introspect

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"umi/internal/metrics"
	"umi/internal/umi"
)

// Daemon defaults, used when the corresponding DaemonConfig field is zero.
const (
	DefaultMaxSessions = 64
	DefaultPrepWorkers = 4
	// maxConfigBytes bounds a POST /sessions body; MaxTraceAddrs addresses
	// at ~20 JSON bytes each fit with ample slack.
	maxConfigBytes = 1 << 20
)

// DaemonConfig sizes a Daemon.
type DaemonConfig struct {
	// MaxSessions caps concurrently-registered sessions; creates past it
	// are rejected with 429.
	MaxSessions int
	// PrepWorkers is the shared preparation pool's width.
	PrepWorkers int
	// QueueBound caps the shared pool's pending-job queue (0 takes the
	// pool default). Enqueues past it block the submitting session only.
	QueueBound int
	// QueueHighWater rejects new run requests with 429 while the shared
	// queue holds at least this many jobs (0 takes the queue bound).
	QueueHighWater int
}

func (c DaemonConfig) withDefaults() DaemonConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.PrepWorkers <= 0 {
		c.PrepWorkers = DefaultPrepWorkers
	}
	return c
}

// sessionState is the lifecycle state machine: created → running →
// done|failed, and for ingest sessions running → resumable (a live
// upload cut off at a recoverable point; re-sending the stream resumes
// it) → running. DELETE is legal in any state.
type sessionState string

const (
	stateCreated   sessionState = "created"
	stateRunning   sessionState = "running"
	stateDone      sessionState = "done"
	stateFailed    sessionState = "failed"
	stateResumable sessionState = "resumable"
)

// session is one registered guest session.
type session struct {
	id  string
	seq uint64 // creation order, for stable listings
	cfg SessionConfig

	mu     sync.Mutex
	state  sessionState
	sys    *umi.System // live once a run has attached; kept after finish
	ing    *ingestState
	result *RunResult
	runErr error
}

// liveMetrics snapshots the session's registry if a run has attached one.
// Ingest sessions serve their replayer's registry instead.
func (s *session) liveMetrics() metrics.Snapshot {
	s.mu.Lock()
	sys, ing := s.sys, s.ing
	s.mu.Unlock()
	if sys != nil {
		return sys.LiveMetricsSnapshot()
	}
	if ing != nil && ing.replay != nil {
		return ing.replay.Metrics().Snapshot()
	}
	return metrics.Snapshot{}
}

// liveOverhead assembles the session's per-stage self-overhead report when
// a live run is attached. Ingest sessions have no guest (the replayer pays
// its own costs on daemon time), so they serve nothing here.
func (s *session) liveOverhead() *umi.OverheadReport {
	s.mu.Lock()
	sys := s.sys
	s.mu.Unlock()
	if sys != nil {
		return sys.LiveOverhead()
	}
	return nil
}

// liveHistory snapshots the session's history ring if a run has attached.
// Ingest sessions serve the merged streamed history from the last
// completed shard (their replayer has no live ring of its own to scrape
// without draining it).
func (s *session) liveHistory() umi.HistoryView {
	s.mu.Lock()
	sys, res := s.sys, s.result
	s.mu.Unlock()
	if sys != nil {
		return sys.LiveHistory()
	}
	if res != nil {
		return res.History
	}
	return (*umi.History)(nil).View()
}

// Daemon multiplexes sessions over one shared preparation pool.
type Daemon struct {
	cfg    DaemonConfig
	shared *umi.SharedPrep
	ingest *ingestMetrics

	mu       sync.Mutex
	sessions map[string]*session
	nextID   uint64
	draining bool

	runs sync.WaitGroup // in-flight run handlers, for graceful drain
}

// NewDaemon builds a daemon and its shared pool.
func NewDaemon(cfg DaemonConfig) *Daemon {
	cfg = cfg.withDefaults()
	return &Daemon{
		cfg:      cfg,
		shared:   umi.NewSharedPrep(cfg.PrepWorkers, cfg.QueueBound),
		ingest:   newIngestMetrics(),
		sessions: make(map[string]*session),
	}
}

// SessionCount reports currently-registered sessions (exact accounting:
// a DELETE removes its session before the handler returns).
func (d *Daemon) SessionCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.sessions)
}

// Shutdown drains the daemon: new mutating requests are refused with 503,
// in-flight runs complete, then the shared pool stops. Idempotent.
func (d *Daemon) Shutdown() {
	d.mu.Lock()
	already := d.draining
	d.draining = true
	d.mu.Unlock()
	d.runs.Wait()
	if !already {
		d.shared.Close()
	}
}

// lookup resolves a session id; the bool reports existence.
func (d *Daemon) lookup(id string) (*session, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.sessions[id]
	return s, ok
}

// snapshotSessions returns the registered sessions in creation order.
func (d *Daemon) snapshotSessions() []*session {
	d.mu.Lock()
	out := make([]*session, 0, len(d.sessions))
	for _, s := range d.sessions {
		out = append(out, s)
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// Handler returns the daemon's route table.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", d.index)
	mux.HandleFunc("POST /sessions", d.createSession)
	mux.HandleFunc("GET /sessions", d.listSessions)
	mux.HandleFunc("POST /sessions/{id}/run", d.runSession)
	mux.HandleFunc("POST /sessions/{id}/ingest", d.ingestSession)
	mux.HandleFunc("GET /sessions/{id}/report", d.sessionReport)
	mux.HandleFunc("GET /sessions/{id}/history", d.sessionHistory)
	mux.HandleFunc("GET /sessions/{id}/metrics", d.sessionMetrics)
	mux.HandleFunc("DELETE /sessions/{id}", d.deleteSession)
	mux.HandleFunc("GET /metrics/prom", d.fleetProm)
	mux.HandleFunc("GET /fleet/delinquent", d.fleetDelinquent)
	mux.HandleFunc("GET /fleet/phases", d.fleetPhases)
	return mux
}

func (d *Daemon) index(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `umid — multi-session UMI profiling daemon

POST   /sessions             create a session (SessionConfig JSON)
GET    /sessions             list sessions
POST   /sessions/{id}/run    run to completion, returns the result
POST   /sessions/{id}/ingest replay a umi-profile/v1|v2 stream (?live=1 to tail)
GET    /sessions/{id}/report completed run result
GET    /sessions/{id}/history  profile-history windows
GET    /sessions/{id}/metrics  self-observability snapshot
DELETE /sessions/{id}        remove a session
GET    /metrics/prom         fleet Prometheus exposition
GET    /fleet/delinquent     delinquent-set union/intersection
GET    /fleet/phases         phase-change correlation
`)
}

// sessionInfo is the listing/creation JSON shape.
type sessionInfo struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Guest names the workload, or "trace[n]" for a submitted stream.
	Guest string `json:"guest"`
	Error string `json:"error,omitempty"`
	// Resume, present while the session is resumable, names the safe
	// point (stream frame count and rolling checksum) a re-sent live
	// stream will be resumed from.
	Resume *resumePoint `json:"resume,omitempty"`
}

type resumePoint struct {
	Frames   uint64 `json:"frames"`
	Checksum uint64 `json:"checksum"`
}

// guestLabel names the session's guest. Ingest sessions pick up the
// workload name from the first stream header. Caller holds s.mu.
func (s *session) guestLabel() string {
	if s.cfg.Ingest {
		if s.ing != nil && s.ing.guest != "" {
			return "ingest:" + s.ing.guest
		}
		return "ingest"
	}
	return s.cfg.guestName()
}

func (s *session) info() sessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	inf := sessionInfo{ID: s.id, State: string(s.state), Guest: s.guestLabel()}
	if s.runErr != nil {
		inf.Error = s.runErr.Error()
	}
	if s.state == stateResumable && s.ing != nil {
		inf.Resume = &resumePoint{Frames: s.ing.resumeFrames, Checksum: s.ing.resumeChk}
	}
	return inf
}

func (d *Daemon) createSession(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxConfigBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxConfigBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "config exceeds %d bytes", maxConfigBytes)
		return
	}
	cfg, err := ParseSessionConfig(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	if len(d.sessions) >= d.cfg.MaxSessions {
		d.mu.Unlock()
		httpError(w, http.StatusTooManyRequests, "session limit %d reached", d.cfg.MaxSessions)
		return
	}
	d.nextID++
	s := &session{id: fmt.Sprintf("s%d", d.nextID), seq: d.nextID, cfg: cfg, state: stateCreated}
	d.sessions[s.id] = s
	d.mu.Unlock()

	// The Content-Type must be set before WriteHeader commits the response
	// head; writeJSON's own Set would land too late to be sent.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, s.info())
}

func (d *Daemon) listSessions(w http.ResponseWriter, r *http.Request) {
	sessions := d.snapshotSessions()
	infos := make([]sessionInfo, 0, len(sessions))
	for _, s := range sessions {
		infos = append(infos, s.info())
	}
	writeJSON(w, infos)
}

func (d *Daemon) runSession(w http.ResponseWriter, r *http.Request) {
	s, ok := d.lookup(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}

	// Admission: refuse while draining, and shed load past the shared
	// queue's high-water mark rather than deepening the backlog.
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	high := d.cfg.QueueHighWater
	if high <= 0 {
		high = d.shared.QueueBound()
	}
	if depth := d.shared.QueueDepth(); depth >= high {
		d.mu.Unlock()
		httpError(w, http.StatusTooManyRequests, "analyzer queue depth %d at high-water %d", depth, high)
		return
	}
	// The run must be registered for drain before draining can flip, so
	// Shutdown's runs.Wait() covers it; both happen under d.mu.
	d.runs.Add(1)
	d.mu.Unlock()
	defer d.runs.Done()

	if s.cfg.Ingest {
		httpError(w, http.StatusConflict, "session %s ingests streams; POST to /sessions/%s/ingest", s.id, s.id)
		return
	}
	s.mu.Lock()
	if s.state != stateCreated {
		state := s.state
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "session %s is %s, can only run once from created", s.id, state)
		return
	}
	s.state = stateRunning
	s.mu.Unlock()

	// Runs execute synchronously on the request goroutine: the HTTP server
	// already gives each session its own goroutine, and the client gets
	// the result as the response body.
	res, err := runSession(&s.cfg, d.shared, func(sys *umi.System) {
		s.mu.Lock()
		s.sys = sys
		s.mu.Unlock()
	}, nil)

	s.mu.Lock()
	if err != nil {
		s.state = stateFailed
		s.runErr = err
	} else {
		s.state = stateDone
		s.result = res
	}
	s.mu.Unlock()

	if err != nil {
		httpError(w, http.StatusInternalServerError, "run: %v", err)
		return
	}
	writeJSON(w, res)
}

func (d *Daemon) sessionReport(w http.ResponseWriter, r *http.Request) {
	s, ok := d.lookup(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	s.mu.Lock()
	res, state, runErr := s.result, s.state, s.runErr
	s.mu.Unlock()
	if state == stateFailed {
		httpError(w, http.StatusInternalServerError, "run failed: %v", runErr)
		return
	}
	if res == nil {
		httpError(w, http.StatusConflict, "session %s is %s; report available once done", s.id, state)
		return
	}
	writeJSON(w, res)
}

func (d *Daemon) sessionHistory(w http.ResponseWriter, r *http.Request) {
	s, ok := d.lookup(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, s.liveHistory())
}

func (d *Daemon) sessionMetrics(w http.ResponseWriter, r *http.Request) {
	s, ok := d.lookup(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, s.liveMetrics())
}

func (d *Daemon) deleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d.mu.Lock()
	_, ok := d.sessions[id]
	delete(d.sessions, id)
	d.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	// A run still executing holds its own reference and completes against
	// the shared pool; its result is simply unreachable. Accounting is
	// exact the moment the delete returns.
	w.WriteHeader(http.StatusNoContent)
}

// fleetProm renders every session's registry as one labeled exposition,
// plus the daemon's own ingest counters under the reserved label
// "ingest".
func (d *Daemon) fleetProm(w http.ResponseWriter, r *http.Request) {
	sessions := d.snapshotSessions()
	labeled := make([]metrics.LabeledSnapshot, 0, len(sessions)+1)
	labeled = append(labeled, metrics.LabeledSnapshot{Label: "ingest", Snap: d.ingest.reg.Snapshot()})
	for _, s := range sessions {
		labeled = append(labeled, metrics.LabeledSnapshot{Label: s.id, Snap: s.liveMetrics()})
	}
	w.Header().Set("Content-Type", metrics.PromContentType)
	metrics.WritePrometheusFleet(w, labeled)
	ovh := make([]umi.LabeledOverhead, 0, len(sessions))
	for _, s := range sessions {
		if rep := s.liveOverhead(); rep != nil {
			ovh = append(ovh, umi.LabeledOverhead{Label: s.id, Report: rep})
		}
	}
	umi.WriteOverheadPromFleet(w, ovh)
}

// fleetMember pairs a session id with its completed result, the input to
// the fleet aggregation renders. Sessions without a completed run are
// excluded — aggregation compares results, not intentions.
type fleetMember struct {
	ID     string
	Guest  string
	Result *RunResult
}

// completedFleet snapshots sessions holding a completed result, in
// creation order.
func (d *Daemon) completedFleet() []fleetMember {
	var fleet []fleetMember
	for _, s := range d.snapshotSessions() {
		s.mu.Lock()
		res, guest := s.result, s.guestLabel()
		s.mu.Unlock()
		if res != nil {
			fleet = append(fleet, fleetMember{ID: s.id, Guest: guest, Result: res})
		}
	}
	return fleet
}

func (d *Daemon) fleetDelinquent(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, FormatFleetDelinquent(d.completedFleet()))
}

func (d *Daemon) fleetPhases(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, FormatFleetPhases(d.completedFleet()))
}

// Serve starts the daemon's HTTP surface on addr; same contract as
// Server.Serve. The stop function shuts the listener down but does not
// drain the daemon — call Shutdown for that.
func (d *Daemon) Serve(addr string) (string, func(), error) {
	return serveHandler(addr, d.Handler())
}
