package introspect

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"umi/internal/wire"
)

// The ingest fault matrix: every classified failure mode of
// POST /sessions/{id}/ingest driven through the HTTP surface, at each
// analyzer width — oversized bodies, mid-stream corruption, duplicate
// shard uploads, and live-tail cuts with resume.

// transcodeV2 re-encodes a recorded v1 stream as umi-profile/v2.
func transcodeV2(t *testing.T, stream []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := wire.Transcode(&buf, bytes.NewReader(stream), wire.Version2); err != nil {
		t.Fatalf("transcode: %v", err)
	}
	return buf.Bytes()
}

// postStream is doReq with the ingest extras: optional ?live=1, optional
// X-Umi-Shard-* manifest headers, and optional chunked transfer (no
// declared Content-Length — how a live tail arrives).
func postStream(t *testing.T, url string, stream []byte, man *wire.Manifest, chunked bool) (int, []byte) {
	t.Helper()
	var body io.Reader = bytes.NewReader(stream)
	if chunked {
		body = struct{ io.Reader }{body} // hide the length from net/http
	}
	req, err := http.NewRequest(http.MethodPost, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if man != nil {
		req.Header.Set("X-Umi-Shard-Id", strconv.FormatUint(man.ShardID, 10))
		req.Header.Set("X-Umi-Shard-Frames", strconv.FormatUint(man.Frames, 10))
		req.Header.Set("X-Umi-Shard-Checksum", strconv.FormatUint(man.Checksum, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s read: %v", url, err)
	}
	return resp.StatusCode, data
}

// sessionListing fetches one session's info from GET /sessions.
func sessionListing(t *testing.T, base, id string) sessionInfo {
	t.Helper()
	code, body := doReq(t, http.MethodGet, base+"/sessions", nil)
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	var infos []sessionInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatalf("list: %v", err)
	}
	for _, inf := range infos {
		if inf.ID == id {
			return inf
		}
	}
	t.Fatalf("session %s not in listing", id)
	return sessionInfo{}
}

func TestIngestFaultMatrix(t *testing.T) {
	live, v1 := emitStream(t, traceSessionConfig(3, 0))
	v2 := transcodeV2(t, v1)
	want := resultBytes(t, live)
	man, ok, err := wire.ScanManifest(bytes.NewReader(v2))
	if err != nil || !ok {
		t.Fatalf("ScanManifest: ok=%v err=%v", ok, err)
	}

	for _, workers := range []int{0, 1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {

			// Oversized: a body past the cap is 413 — whether declared up
			// front by Content-Length or discovered mid-read on a chunked
			// body — counts as oversized (not a decode error), and leaves
			// the session healthy for a corrected retry.
			t.Run("oversized-then-retry", func(t *testing.T) {
				d, base := startDaemon(t, DaemonConfig{PrepWorkers: 4})
				id := createIngestSession(t, base, workers)
				url := base + "/sessions/" + id + "/ingest"

				old := MaxStreamBytes
				MaxStreamBytes = 1024
				defer func() { MaxStreamBytes = old }()
				if int64(len(v2)) <= MaxStreamBytes {
					t.Fatalf("stream of %d bytes does not exceed the lowered cap", len(v2))
				}
				if code, body := postStream(t, url, v2, nil, false); code != http.StatusRequestEntityTooLarge {
					t.Fatalf("declared oversized: status %d, want 413; body %s", code, body)
				}
				if code, body := postStream(t, url, v2, nil, true); code != http.StatusRequestEntityTooLarge {
					t.Fatalf("chunked oversized: status %d, want 413; body %s", code, body)
				}
				if got := d.ingest.Oversized.Load(); got != 2 {
					t.Errorf("oversized counter = %d, want 2", got)
				}
				if got := d.ingest.DecodeErrors.Load(); got != 0 {
					t.Errorf("decode_errors = %d, want 0 (oversized counts apart)", got)
				}

				MaxStreamBytes = old
				code, body := postStream(t, url, v2, nil, false)
				if code != http.StatusOK {
					t.Fatalf("retry after oversized: status %d, body %s", code, body)
				}
				if !bytes.Equal(body, want) {
					t.Errorf("retried ingest diverges from capture result")
				}
			})

			// Corruption mid-stream: part of the shard was analyzed before
			// the fault surfaced, so the session poisons and refuses the
			// next shard with 409.
			t.Run("corrupt-poisons", func(t *testing.T) {
				d, base := startDaemon(t, DaemonConfig{PrepWorkers: 4})
				id := createIngestSession(t, base, workers)
				url := base + "/sessions/" + id + "/ingest"

				bad := bytes.Clone(v2)
				bad[len(bad)*2/3] ^= 0xff
				code, body := postStream(t, url, bad, nil, false)
				if code != http.StatusBadRequest {
					t.Fatalf("corrupt stream: status %d, want 400; body %s", code, body)
				}
				if got := d.ingest.DecodeErrors.Load(); got != 1 {
					t.Errorf("decode_errors = %d, want 1", got)
				}
				if code, body := postStream(t, url, v2, nil, false); code != http.StatusConflict {
					t.Errorf("shard into poisoned session: status %d, want 409; body %s", code, body)
				}
			})

			// Duplicate upload: a shard declaring an already-applied
			// manifest is an idempotent no-op; the same shard ID with
			// different content is a conflict.
			t.Run("duplicate-idempotent", func(t *testing.T) {
				d, base := startDaemon(t, DaemonConfig{PrepWorkers: 4})
				id := createIngestSession(t, base, workers)
				url := base + "/sessions/" + id + "/ingest"

				code, first := postStream(t, url, v2, &man, false)
				if code != http.StatusOK {
					t.Fatalf("first shard: status %d, body %s", code, first)
				}
				code, second := postStream(t, url, v2, &man, false)
				if code != http.StatusOK {
					t.Fatalf("duplicate shard: status %d, body %s", code, second)
				}
				if !bytes.Equal(first, second) {
					t.Errorf("duplicate response diverges from the first")
				}
				if got := d.ingest.Duplicates.Load(); got != 1 {
					t.Errorf("duplicate_shards = %d, want 1", got)
				}
				// Applied exactly once: the merged report is the
				// single-shard (capture-identical) result.
				if code, rep := doReq(t, http.MethodGet, url[:len(url)-len("ingest")]+"report", nil); code != http.StatusOK || !bytes.Equal(rep, want) {
					t.Errorf("report after duplicate: status %d, diverges=%v", code, !bytes.Equal(rep, want))
				}
				forged := man
				forged.Frames++
				if code, body := postStream(t, url, v2, &forged, false); code != http.StatusConflict {
					t.Errorf("same shard ID, different content: status %d, want 409; body %s", code, body)
				}
			})

			// Live cut and resume: a ?live=1 upload that dies mid-stream
			// parks the session resumable at the last applied invocation
			// boundary; a retry that dies even earlier must not regress the
			// resume point; re-sending the whole stream completes the
			// session with the capture-identical result.
			t.Run("live-cut-resume", func(t *testing.T) {
				d, base := startDaemon(t, DaemonConfig{PrepWorkers: 4})
				id := createIngestSession(t, base, workers)
				url := base + "/sessions/" + id + "/ingest?live=1"

				code, body := postStream(t, url, v2[:len(v2)*2/3], nil, true)
				if code != http.StatusConflict || !strings.Contains(string(body), "resumable") {
					t.Fatalf("live cut: status %d, want 409 resumable; body %s", code, body)
				}
				inf := sessionListing(t, base, id)
				if inf.State != "resumable" || inf.Resume == nil {
					t.Fatalf("after cut: state %q resume %+v, want resumable with a resume point", inf.State, inf.Resume)
				}
				mark := *inf.Resume

				// A retry that dies before the previous cut keeps the
				// further-along resume point.
				if code, _ := postStream(t, url, v2[:len(v2)/4], nil, true); code != http.StatusConflict {
					t.Fatalf("shorter retry: status %d, want 409", code)
				}
				inf = sessionListing(t, base, id)
				if inf.State != "resumable" || inf.Resume == nil || inf.Resume.Frames < mark.Frames {
					t.Fatalf("after shorter retry: state %q resume %+v, want >= frame %d", inf.State, inf.Resume, mark.Frames)
				}

				code, body = postStream(t, url, v2, nil, true)
				if code != http.StatusOK {
					t.Fatalf("full re-send: status %d, body %s", code, body)
				}
				if !bytes.Equal(body, want) {
					t.Errorf("resumed ingest diverges from capture result")
				}
				if mark.Frames > 0 {
					if got := d.ingest.Resumed.Load(); got != 1 {
						t.Errorf("resumed_streams = %d, want 1", got)
					}
				}
				if inf = sessionListing(t, base, id); inf.State != "done" || inf.Resume != nil {
					t.Errorf("after resume: state %q resume %+v, want done with no resume point", inf.State, inf.Resume)
				}
			})
		})
	}
}

// startFlakyProxy fronts upstream with a TCP proxy that kills the first
// connection to carry killAfter client-side bytes — both directions
// severed mid-upload, the way a live tail loses its daemon. Connections
// after the kill pass through untouched.
func startFlakyProxy(t *testing.T, upstream string, killAfter int64) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu     sync.Mutex
		conns  []net.Conn
		killed bool
	)
	track := func(c net.Conn) {
		mu.Lock()
		conns = append(conns, c)
		mu.Unlock()
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", upstream)
			if err != nil {
				c.Close()
				continue
			}
			track(c)
			track(up)
			go func() {
				mu.Lock()
				armed := !killed
				mu.Unlock()
				done := make(chan struct{}, 2)
				go func() {
					defer func() { done <- struct{}{} }()
					if !armed {
						io.Copy(up, c)
						return
					}
					if n, err := io.CopyN(up, c, killAfter); err != nil || n < killAfter {
						return // connection ended below the fuse; pass
					}
					mu.Lock()
					killed = true
					mu.Unlock()
				}()
				go func() {
					io.Copy(c, up)
					done <- struct{}{}
				}()
				<-done
				c.Close()
				up.Close()
				<-done
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
	})
	return ln.Addr().String()
}

// TestLiveShipperKillReconnect is the client half end-to-end: a
// LiveShipper streaming a recording into a daemon through a proxy that
// kills the connection mid-upload must reconnect, resume, and come back
// with the capture-identical merged result — at every analyzer width.
func TestLiveShipperKillReconnect(t *testing.T) {
	live, v1 := emitStream(t, traceSessionConfig(1, 0))
	want := resultBytes(t, live)

	for _, workers := range []int{0, 1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			d, base := startDaemon(t, DaemonConfig{PrepWorkers: 4})
			proxy := startFlakyProxy(t, strings.TrimPrefix(base, "http://"), 2000)

			sh, err := NewLiveShipper(proxy, LiveConfig{
				Workers:     workers,
				Window:      8,
				MaxAttempts: 6,
				RetryDelay:  20 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("NewLiveShipper: %v", err)
			}
			enc := wire.NewEncoderV2(sh)
			enc.SetFrameHook(sh.FrameEnd)
			if err := wire.TranscodeInto(enc, bytes.NewReader(v1)); err != nil {
				t.Fatalf("TranscodeInto: %v", err)
			}
			res, err := sh.Close()
			if err != nil {
				t.Fatalf("Close: %v", err)
			}
			if !bytes.Equal(resultBytes(t, res), want) {
				t.Errorf("live-shipped result diverges from capture result")
			}
			inf := sessionListing(t, base, sh.SessionID())
			if inf.State != "done" {
				t.Errorf("session state %q, want done", inf.State)
			}
			if got := d.ingest.Streams.Load(); got != 1 {
				t.Errorf("streams = %d, want 1", got)
			}
			_ = d
		})
	}
}
