// Package introspect is the runtime's live observation surface: a small
// stdlib-only HTTP server exposing the self-observability metrics and the
// structured event timeline of a running (or finished) UMI session.
//
// The paper's position is that introspection should be cheap enough to
// leave on in production; this package is the operational payoff — point a
// browser or a scraper at a running profiler and watch it profile itself:
//
//	/metrics          current metrics snapshot (JSON)
//	/metrics/delta    change since the previous /metrics/delta scrape (JSON)
//	/metrics/prom     Prometheus text exposition: full registry + latest
//	                  phase-window gauges (scrape this from Prometheus)
//	/history          profile-history ring: per-invocation window summaries
//	                  with churn and phase-change flags (JSON)
//	/events           recent ring contents with drop accounting (JSON)
//	/events/timeline  deterministic plain-text timeline
//	/events/trace     Chrome trace-event JSON (load in Perfetto)
//	/debug/pprof/     the Go runtime's own profiles
//
// Handlers only read atomics (the metrics registry, the event ring), so
// serving concurrently with a running guest is safe and perturbs nothing:
// the guest never blocks on an observer. The metrics source is pulled per
// request; pass the session's live snapshot function, not a stale copy.
package introspect

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"umi/internal/metrics"
	"umi/internal/tracelog"
	"umi/internal/umi"
)

// Sources bundles one session's observability taps: the live metrics
// snapshot function, the event ring, and the live history snapshot
// function. A Server holds the current Sources behind an atomic pointer so
// the wired session can be swapped (or torn down) while scrapes are in
// flight: a handler resolves the pointer once per request and works from
// that consistent bundle, never from fields mid-replacement.
type Sources struct {
	// Metrics returns the current self-observability snapshot. It is
	// called once per request and must be safe from any goroutine (the
	// session's LiveMetricsSnapshot, not the draining MetricsSnapshot).
	Metrics func() metrics.Snapshot
	// Events is the session's event ring (may be nil).
	Events *tracelog.Log
	// History returns the current profile-history snapshot. Like Metrics
	// it is called once per request and must be safe from any goroutine —
	// the session's LiveHistory, which never drains the pipeline, so a
	// scrape cannot block or reorder guest progress. Nil serves an empty
	// (schema-stamped) view.
	History func() umi.HistoryView
	// Overhead returns the current per-stage self-overhead attribution —
	// the session's LiveOverhead, assembled purely from the registry, so
	// it is safe from any goroutine and never touches guest-owned state.
	// Nil serves an empty report.
	Overhead func() *umi.OverheadReport
}

// Server serves one session's observability state. Zero-value fields are
// legal: a nil Metrics source serves empty snapshots, a nil Events log
// serves an empty timeline. The construction-time fields seed the initial
// wiring; SetSources replaces the whole bundle atomically at any time
// (e.g. when the profiled session is being torn down), so a scrape racing
// a teardown sees either the old session or the empty state — never a
// half-cleared mix.
type Server struct {
	// Metrics, Events, History are the construction-time sources — see
	// Sources for their contracts. They are read only until the first
	// SetSources call; after that the atomic bundle wins.
	Metrics  func() metrics.Snapshot
	Events   *tracelog.Log
	History  func() umi.HistoryView
	Overhead func() *umi.OverheadReport

	src atomic.Pointer[Sources]

	// delta state: the snapshot taken by the previous /metrics/delta
	// request, so each scrape reports one interval.
	mu   sync.Mutex
	prev metrics.Snapshot
}

// SetSources atomically replaces the server's observability sources. A nil
// argument detaches the current session: subsequent scrapes serve empty
// payloads. Safe to call concurrently with in-flight requests — each
// request resolved its bundle once and finishes against it.
func (s *Server) SetSources(src *Sources) {
	if src == nil {
		src = &Sources{}
	}
	s.src.Store(src)
}

// sources resolves the current bundle: the atomically-swapped one if
// SetSources has run, else a view of the construction-time fields.
func (s *Server) sources() *Sources {
	if p := s.src.Load(); p != nil {
		return p
	}
	return &Sources{Metrics: s.Metrics, Events: s.Events, History: s.History,
		Overhead: s.Overhead}
}

func (s *Server) snapshot() metrics.Snapshot {
	if src := s.sources(); src.Metrics != nil {
		return src.Metrics()
	}
	return metrics.Snapshot{}
}

func (s *Server) history() umi.HistoryView {
	if src := s.sources(); src.History != nil {
		return src.History()
	}
	return (*umi.History)(nil).View()
}

func (s *Server) overhead() *umi.OverheadReport {
	if src := s.sources(); src.Overhead != nil {
		return src.Overhead()
	}
	return &umi.OverheadReport{Schema: umi.OverheadSchema}
}

func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.index)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.snapshot())
	})
	mux.HandleFunc("/metrics/delta", func(w http.ResponseWriter, r *http.Request) {
		cur := s.snapshot()
		s.mu.Lock()
		d := cur.Diff(s.prev)
		s.prev = cur
		s.mu.Unlock()
		writeJSON(w, d)
	})
	mux.HandleFunc("/metrics/prom", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", metrics.PromContentType)
		metrics.WritePrometheus(w, s.snapshot())
		umi.WriteHistoryProm(w, s.history())
		umi.WriteOverheadProm(w, s.overhead())
	})
	mux.HandleFunc("/overhead", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.overhead())
	})
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.history())
	})
	mux.HandleFunc("/events", s.events)
	mux.HandleFunc("/events/timeline", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		elog := s.sources().Events
		fmt.Fprint(w, tracelog.Timeline(elog.Events(), elog.Drops()))
	})
	mux.HandleFunc("/events/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		tracelog.WriteChromeTrace(w, s.sources().Events.Events())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `umi runtime introspection

/metrics          current self-observability snapshot (JSON)
/metrics/delta    change since the previous /metrics/delta scrape (JSON)
/metrics/prom     Prometheus text exposition (registry + phase gauges)
/history          profile-history windows with phase-change flags (JSON)
/overhead         per-stage self-overhead attribution (JSON)
/events           recent lifecycle events (JSON; ?n=100 limits)
/events/timeline  deterministic plain-text timeline
/events/trace     Chrome trace-event JSON (open in Perfetto)
/debug/pprof/     Go runtime profiles
`)
}

// eventsPayload is the /events response: ring accounting plus the
// retained events, oldest first.
type eventsPayload struct {
	Total  uint64           `json:"total"`
	Drops  uint64           `json:"drops"`
	Cap    int              `json:"cap"`
	Events []tracelog.Event `json:"events"`
}

func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	elog := s.sources().Events
	evs := elog.Recent(n)
	if evs == nil {
		evs = []tracelog.Event{}
	}
	writeJSON(w, eventsPayload{
		Total: elog.Total(), Drops: elog.Drops(),
		Cap: elog.Cap(), Events: evs,
	})
}

// Serve starts the server on addr (e.g. ":8080", "127.0.0.1:0") and
// returns the bound listener address and a stop function that shuts the
// server down and waits for it to exit. Serving happens on a background
// goroutine; the caller's thread is never involved.
func (s *Server) Serve(addr string) (string, func(), error) {
	return serveHandler(addr, s.Handler())
}

// serveHandler binds addr, serves h on a background goroutine, and
// returns the bound address plus a stop function that closes the server
// and waits for the serving goroutine to exit.
func serveHandler(addr string, h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	stop := func() {
		srv.Close()
		<-done
	}
	return ln.Addr().String(), stop, nil
}
