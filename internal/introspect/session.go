// Session configuration and execution for the umid daemon: the JSON
// surface a client POSTs to create a profiling session, its validation,
// and the runner that executes one session's guest under the full UMI
// stack on a shared analyzer pool.
package introspect

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"umi/internal/harness"
	"umi/internal/isa"
	"umi/internal/program"
	"umi/internal/rio"
	"umi/internal/umi"
	"umi/internal/vm"
	"umi/internal/wire"
	"umi/internal/workloads"
)

// Limits on client-supplied session parameters. They bound what one
// session can cost the daemon, not what the library supports.
const (
	// MaxTraceAddrs caps a submitted address-trace stream. Each distinct
	// address can materialize a guest memory page, so the cap bounds
	// per-session guest memory.
	MaxTraceAddrs = 8192
	// MaxSessionWorkers caps the per-session pipeline width request.
	MaxSessionWorkers = 64
	// maxTraceReps caps the submitted-trace replay count.
	maxTraceReps = 4096
	// traceAddrMask keeps submitted addresses inside a 44-bit guest
	// address space (16 TiB), far above any workload but finite.
	traceAddrMask = (uint64(1) << 44) - 1
)

// SessionConfig is the JSON body of POST /sessions: what to run and how
// to profile it. Exactly one of Workload and Trace must be set.
type SessionConfig struct {
	// Workload names a registered benchmark (umiprof -list enumerates).
	Workload string `json:"workload,omitempty"`
	// Trace is a submitted address stream: the session's guest becomes a
	// synthetic program that loads each address in order, Reps times.
	// Addresses are masked to the guest address space; at most
	// MaxTraceAddrs entries.
	Trace []uint64 `json:"trace,omitempty"`
	// Reps is how many times a submitted trace stream is replayed
	// (default 64, so short streams still get hot enough to profile).
	Reps int `json:"reps,omitempty"`

	// Machine selects the hardware model: "p4" (default) or "k7".
	Machine string `json:"machine,omitempty"`
	// HWPrefetch enables the platform's hardware prefetchers (P4 only).
	HWPrefetch bool `json:"hw_prefetch,omitempty"`
	// Sampling toggles sample-based region selection (default true).
	Sampling *bool `json:"sampling,omitempty"`
	// Workers is the analyzer pipeline width. 0 or 1 runs the analyzer
	// inline on the session's run goroutine; ≥ 2 routes preparation
	// through the daemon's shared worker pool. Reports are byte-identical
	// at any setting.
	Workers int `json:"workers,omitempty"`
	// HistoryWindows bounds the session's profile-history ring (0 keeps
	// the library default, negative disables).
	HistoryWindows int `json:"history_windows,omitempty"`
	// MaxInstrs bounds the run in retired guest instructions (0 keeps the
	// harness default).
	MaxInstrs uint64 `json:"max_instrs,omitempty"`

	// Ingest declares a replay session: it runs no guest and instead
	// accepts umi-profile/v1 streams via POST /sessions/{id}/ingest,
	// analyzing them on the daemon's shared pool. Mutually exclusive with
	// every guest-execution knob — the stream header carries the analyzer
	// configuration — except Workers, which picks the replay pipeline
	// width.
	Ingest bool `json:"ingest,omitempty"`
}

// ParseSessionConfig decodes and validates a POST /sessions body. Unknown
// fields are rejected — a misspelled knob must fail loudly, not silently
// profile with defaults.
func ParseSessionConfig(data []byte) (SessionConfig, error) {
	var cfg SessionConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return SessionConfig{}, fmt.Errorf("config: %w", err)
	}
	// Trailing garbage after the object is a malformed request too.
	if dec.More() {
		return SessionConfig{}, errors.New("config: trailing data after JSON object")
	}
	if err := cfg.Validate(); err != nil {
		return SessionConfig{}, err
	}
	return cfg, nil
}

// Validate checks a decoded config against the daemon's limits.
func (c *SessionConfig) Validate() error {
	if c.Ingest {
		// An ingest session's analyzer configuration arrives in the stream
		// header; every guest-execution knob here would be silently dead,
		// so their presence is an error.
		if c.Workload != "" || len(c.Trace) > 0 || c.Reps != 0 || c.Machine != "" ||
			c.HWPrefetch || c.Sampling != nil || c.MaxInstrs != 0 || c.HistoryWindows != 0 {
			return errors.New("config: ingest only admits the workers knob; analyzer configuration comes from the stream header")
		}
		if c.Workers < 0 || c.Workers > MaxSessionWorkers {
			return fmt.Errorf("config: workers %d outside [0, %d]", c.Workers, MaxSessionWorkers)
		}
		return nil
	}
	switch {
	case c.Workload == "" && len(c.Trace) == 0:
		return errors.New("config: one of workload or trace is required")
	case c.Workload != "" && len(c.Trace) > 0:
		return errors.New("config: workload and trace are mutually exclusive")
	}
	if c.Workload != "" {
		if _, ok := workloads.ByName(c.Workload); !ok {
			return fmt.Errorf("config: unknown workload %q", c.Workload)
		}
	}
	if len(c.Trace) > MaxTraceAddrs {
		return fmt.Errorf("config: trace has %d addresses, max %d", len(c.Trace), MaxTraceAddrs)
	}
	if c.Reps < 0 || c.Reps > maxTraceReps {
		return fmt.Errorf("config: reps %d outside [0, %d]", c.Reps, maxTraceReps)
	}
	if c.Reps != 0 && len(c.Trace) == 0 {
		return errors.New("config: reps requires a trace stream")
	}
	if c.Machine != "" && c.Machine != "p4" && c.Machine != "k7" {
		return fmt.Errorf("config: machine %q not in {p4, k7}", c.Machine)
	}
	if c.Workers < 0 || c.Workers > MaxSessionWorkers {
		return fmt.Errorf("config: workers %d outside [0, %d]", c.Workers, MaxSessionWorkers)
	}
	if c.HistoryWindows > 1<<20 {
		return fmt.Errorf("config: history_windows %d too large", c.HistoryWindows)
	}
	if c.MaxInstrs > harness.MaxInstrs {
		return fmt.Errorf("config: max_instrs %d above cap %d", c.MaxInstrs, harness.MaxInstrs)
	}
	return nil
}

// platform resolves the config's hardware model.
func (c *SessionConfig) platform() *harness.Platform {
	if c.Machine == "k7" {
		return harness.K7
	}
	return harness.P4
}

// umiConfig builds the session's UMI parameters: the harness's standard
// per-platform configuration with the client's overrides applied, and the
// daemon's shared preparation pool attached when the session asked for an
// asynchronous pipeline.
func (c *SessionConfig) umiConfig(shared *umi.SharedPrep) umi.Config {
	cfg := harness.UMIParams(c.platform())
	if c.Sampling != nil {
		cfg.UseSampling = *c.Sampling
	}
	cfg.AnalyzerWorkers = c.Workers
	if c.HistoryWindows != 0 {
		cfg.HistoryWindows = c.HistoryWindows
	}
	cfg.SharedPrep = shared
	return cfg
}

// guestProgram resolves the config's guest: a registered workload, or a
// synthetic program replaying the submitted address stream.
func (c *SessionConfig) guestProgram() (*program.Program, error) {
	if c.Workload != "" {
		w, ok := workloads.ByName(c.Workload)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", c.Workload)
		}
		return w.Program(), nil
	}
	return traceStreamProgram(c.Trace, c.Reps)
}

// maxInstrs resolves the run bound.
func (c *SessionConfig) maxInstrs() uint64 {
	if c.MaxInstrs > 0 {
		return c.MaxInstrs
	}
	return harness.MaxInstrs
}

// traceStreamProgram builds the guest for a submitted address stream: a
// pointer table holding the masked addresses and a hot loop that loads the
// pointer, dereferences it, and advances — DINAMITE's cheap-capture /
// heavy-analysis split, with the capture done client-side and the stream
// analyzed here. The loop repeats reps times so short streams cross the
// region selector's frequency threshold.
func traceStreamProgram(addrs []uint64, reps int) (*program.Program, error) {
	if len(addrs) == 0 {
		return nil, errors.New("empty trace stream")
	}
	if reps <= 0 {
		reps = 64
	}
	masked := make([]uint64, len(addrs))
	for i, a := range addrs {
		masked[i] = a & traceAddrMask
	}
	const tableBase = program.HeapBase
	b := program.NewBuilder("trace-stream")
	b.AddWords(tableBase, masked)
	e := b.Block("entry")
	e.MovI(isa.R2, int64(tableBase)) // table base
	e.MovI(isa.R7, 0)                // checksum
	e.MovI(isa.R8, 0)                // rep counter
	e.MovI(isa.R9, int64(reps))      // rep limit
	rep := b.Block("rep")
	rep.MovI(isa.R0, 0)                 // stream index
	rep.MovI(isa.R6, int64(len(addrs))) // stream length
	l := b.Block("loop")
	l.Load(isa.R1, 8, isa.MemIdx(isa.R2, isa.R0, 8, 0)) // ptr = table[i]
	l.Load(isa.R3, 8, isa.Mem(isa.R1, 0))               // touch the submitted address
	l.Add(isa.R7, isa.R7, isa.R3)
	l.AddI(isa.R0, isa.R0, 1)
	l.Br(isa.CondLT, isa.R0, isa.R6, "loop")
	tail := b.Block("tail")
	tail.AddI(isa.R8, isa.R8, 1)
	tail.Br(isa.CondLT, isa.R8, isa.R9, "rep")
	b.Block("done").Halt()
	return b.Assemble()
}

// RunResult is one completed session run: the full UMI report, the
// profile-history windows, and the ground-truth scalars from the machine
// model. Every field is a pure function of the config and the guest, so
// marshaling one yields byte-identical JSON however the run was scheduled
// — that is the daemon's load-bearing equivalence contract, and what the
// session-equivalence tests compare.
type RunResult struct {
	Report      *umi.Report     `json:"report"`
	History     umi.HistoryView `json:"history"`
	HWMissRatio float64         `json:"hw_miss_ratio"`
	Cycles      uint64          `json:"cycles"`
	Instrs      uint64          `json:"instrs"`
}

// guestName is the session's display name: the workload, or "trace[n]"
// for a submitted stream.
func (c *SessionConfig) guestName() string {
	if c.Workload != "" {
		return c.Workload
	}
	return fmt.Sprintf("trace[%d]", len(c.Trace))
}

// machineName resolves the config's platform label.
func (c *SessionConfig) machineName() string {
	if c.Machine == "" {
		return "p4"
	}
	return c.Machine
}

// runSession executes one session's guest to completion. publish, when
// non-nil, receives the attached System before the guest starts so live
// scrapes can observe the run in flight. enc, when non-nil, records the
// run's umi-profile/v1 stream; emission is observational, so the result
// is byte-identical with or without it.
func runSession(cfg *SessionConfig, shared *umi.SharedPrep, publish func(*umi.System), enc *wire.Encoder) (*RunResult, error) {
	prog, err := cfg.guestProgram()
	if err != nil {
		return nil, err
	}
	plat := cfg.platform()
	h := plat.Hierarchy(cfg.HWPrefetch)
	m := vm.New(prog, h)
	rt := rio.NewRuntime(m)
	ucfg := cfg.umiConfig(shared)
	sys := umi.Attach(rt, ucfg)
	if enc != nil {
		enc.Header(umi.WireHeader(&ucfg, cfg.guestName(), cfg.machineName()))
		sys.EnableWireEmit(enc)
	}
	if publish != nil {
		publish(sys)
	}
	// An exhausted instruction budget is a bounded run, not a failure:
	// max_instrs is exactly the knob clients use to truncate long guests,
	// and the profile over what did run is the deliverable.
	if err := rt.Run(cfg.maxInstrs()); err != nil && !errors.Is(err, rio.ErrNotHalted) {
		return nil, fmt.Errorf("run: %w", err)
	}
	sys.Finish()
	if enc != nil {
		sys.EmitWireTail(enc, wire.Trailer{
			GuestCycles: rt.M.Cycles,
			TotalCycles: rt.TotalCycles(),
			Instrs:      m.Instrs,
			HWAccesses:  h.L2Stats.Accesses,
			HWMisses:    h.L2Stats.Misses,
			HWEvictions: h.L2.Stats().Evictions,
		})
		if err := enc.Flush(); err != nil {
			return nil, fmt.Errorf("emit: %w", err)
		}
	}
	return &RunResult{
		Report:      sys.Report(),
		History:     sys.History(),
		HWMissRatio: h.L2Stats.MissRatio(),
		Cycles:      rt.TotalCycles(),
		Instrs:      m.Instrs,
	}, nil
}

// RunStandalone executes a session config outside any daemon — a private
// inline-or-private-pool run with no shared pool and no co-tenants. It is
// the reference the equivalence tests hold daemon sessions to.
func RunStandalone(cfg SessionConfig) (*RunResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Ingest {
		return nil, errors.New("config: ingest sessions replay streams; nothing to run")
	}
	return runSession(&cfg, nil, nil, nil)
}

// EmitStandalone is RunStandalone with stream capture: the run's
// umi-profile/v1 telemetry is written to out while the guest executes.
// The returned result is byte-identical to RunStandalone's — emission
// never perturbs the run — and the stream, replayed, reproduces it.
func EmitStandalone(cfg SessionConfig, out io.Writer) (*RunResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Ingest {
		return nil, errors.New("config: ingest sessions replay streams; nothing to emit")
	}
	return runSession(&cfg, nil, nil, wire.NewEncoder(out))
}
