package introspect

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- helpers ---

// startDaemon boots a daemon on an ephemeral port and returns it with its
// base URL. The listener stops and the daemon drains at cleanup.
func startDaemon(t *testing.T, cfg DaemonConfig) (*Daemon, string) {
	t.Helper()
	d := NewDaemon(cfg)
	addr, stop, err := d.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(func() {
		stop()
		d.Shutdown()
	})
	return d, "http://" + addr
}

// doReq performs one request and returns status + body.
func doReq(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s %s read: %v", method, url, err)
	}
	return resp.StatusCode, data
}

// createSession posts cfg and returns the new session id.
func createSession(t *testing.T, base string, cfg SessionConfig) string {
	t.Helper()
	body, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	code, data := doReq(t, http.MethodPost, base+"/sessions", body)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d, body %s", code, data)
	}
	var inf sessionInfo
	if err := json.Unmarshal(data, &inf); err != nil {
		t.Fatalf("create response: %v", err)
	}
	return inf.ID
}

// traceSessionConfig builds a deterministic submitted-trace config for
// signature sig: a strided walk with an LCG-scattered minority so stride
// discovery and the logical cache both see structure that differs per
// signature.
func traceSessionConfig(sig, workers int) SessionConfig {
	const n = 512
	addrs := make([]uint64, n)
	lcg := uint64(2*sig + 1)
	stride := uint64(64 + 64*sig)
	for i := range addrs {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		if i%7 == 3 {
			// scattered minority: irregular lines in a 4 MiB window
			addrs[i] = 0x2000_0000 + (lcg % (1 << 22) &^ 7)
		} else {
			addrs[i] = 0x2000_0000 + uint64(i)*stride
		}
	}
	return SessionConfig{
		Trace:     addrs,
		Reps:      192,
		Workers:   workers,
		MaxInstrs: 2_000_000,
	}
}

// resultBytes marshals a RunResult exactly as the daemon's HTTP layer
// does, so standalone baselines compare byte-for-byte against bodies.
func resultBytes(t *testing.T, res *RunResult) []byte {
	t.Helper()
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// --- the load-bearing invariant ---

// TestDaemonSessionEquivalence is the daemon's contract: a session run
// through the shared pool produces byte-identical output to the same
// config run standalone — at any worker count, with any number of
// co-tenant sessions running concurrently. The baseline is the inline
// (workers=0) standalone run, so the comparison also re-proves pipeline
// worker-count invariance end to end through the HTTP surface.
func TestDaemonSessionEquivalence(t *testing.T) {
	const signatures = 4
	baseline := make([][]byte, signatures)
	for sig := range baseline {
		res, err := RunStandalone(traceSessionConfig(sig, 0))
		if err != nil {
			t.Fatalf("baseline sig %d: %v", sig, err)
		}
		baseline[sig] = resultBytes(t, res)
	}

	for _, sessions := range []int{1, 4, 16} {
		for _, workers := range []int{0, 1, 4} {
			t.Run(fmt.Sprintf("sessions=%d/workers=%d", sessions, workers), func(t *testing.T) {
				d, base := startDaemon(t, DaemonConfig{MaxSessions: sessions, PrepWorkers: 4})
				var wg sync.WaitGroup
				errs := make(chan error, sessions)
				for i := 0; i < sessions; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						sig := i % signatures
						id := createSession(t, base, traceSessionConfig(sig, workers))
						code, body := doReq(t, http.MethodPost, base+"/sessions/"+id+"/run", nil)
						if code != http.StatusOK {
							errs <- fmt.Errorf("session %s run: status %d, body %.200s", id, code, body)
							return
						}
						if !bytes.Equal(body, baseline[sig]) {
							errs <- fmt.Errorf("session %s (sig %d) run body differs from standalone baseline", id, sig)
							return
						}
						// The report endpoint must serve the identical bytes.
						code, rep := doReq(t, http.MethodGet, base+"/sessions/"+id+"/report", nil)
						if code != http.StatusOK || !bytes.Equal(rep, baseline[sig]) {
							errs <- fmt.Errorf("session %s report: status %d or bytes differ", id, code)
						}
					}(i)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Error(err)
				}
				if got := d.SessionCount(); got != sessions {
					t.Errorf("SessionCount = %d, want %d", got, sessions)
				}
			})
		}
	}
}

// --- lifecycle, admission, accounting ---

// tinyConfig is a fast-running config for lifecycle tests.
func tinyConfig(workers int) SessionConfig {
	addrs := make([]uint64, 64)
	for i := range addrs {
		addrs[i] = 0x2000_0000 + uint64(i)*128
	}
	return SessionConfig{Trace: addrs, Reps: 16, Workers: workers, MaxInstrs: 200_000}
}

func TestDaemonLifecycle(t *testing.T) {
	d, base := startDaemon(t, DaemonConfig{MaxSessions: 4})

	// Unknown session: every per-session route 404s.
	for _, probe := range []struct{ method, path string }{
		{http.MethodPost, "/sessions/nope/run"},
		{http.MethodGet, "/sessions/nope/report"},
		{http.MethodGet, "/sessions/nope/history"},
		{http.MethodGet, "/sessions/nope/metrics"},
		{http.MethodDelete, "/sessions/nope"},
	} {
		if code, _ := doReq(t, probe.method, base+probe.path, nil); code != http.StatusNotFound {
			t.Errorf("%s %s on unknown id: status %d, want 404", probe.method, probe.path, code)
		}
	}

	id := createSession(t, base, tinyConfig(2))

	// Report before run: 409, not an empty payload.
	if code, _ := doReq(t, http.MethodGet, base+"/sessions/"+id+"/report", nil); code != http.StatusConflict {
		t.Errorf("report before run: status %d, want 409", code)
	}

	if code, body := doReq(t, http.MethodPost, base+"/sessions/"+id+"/run", nil); code != http.StatusOK {
		t.Fatalf("run: status %d, body %s", code, body)
	}

	// Second run: the state machine forbids it.
	if code, _ := doReq(t, http.MethodPost, base+"/sessions/"+id+"/run", nil); code != http.StatusConflict {
		t.Errorf("second run: status %d, want 409", code)
	}

	// History and metrics serve the finished session's state.
	code, hist := doReq(t, http.MethodGet, base+"/sessions/"+id+"/history", nil)
	if code != http.StatusOK || !strings.Contains(string(hist), "umi-history/v1") {
		t.Errorf("history: status %d, body %.100s", code, hist)
	}
	if code, _ := doReq(t, http.MethodGet, base+"/sessions/"+id+"/metrics", nil); code != http.StatusOK {
		t.Errorf("metrics: status %d", code)
	}

	// Fleet exposition carries the session label.
	code, prom := doReq(t, http.MethodGet, base+"/metrics/prom", nil)
	if code != http.StatusOK || !strings.Contains(string(prom), `session="`+id+`"`) {
		t.Errorf("fleet prom: status %d, missing session label; body %.200s", code, prom)
	}

	if code, _ := doReq(t, http.MethodDelete, base+"/sessions/"+id, nil); code != http.StatusNoContent {
		t.Errorf("delete: unexpected status %d", code)
	}
	if got := d.SessionCount(); got != 0 {
		t.Errorf("SessionCount after delete = %d, want 0", got)
	}
	// Double delete: gone means gone.
	if code, _ := doReq(t, http.MethodDelete, base+"/sessions/"+id, nil); code != http.StatusNotFound {
		t.Errorf("double delete: status %d, want 404", code)
	}
}

func TestDaemonAdmission(t *testing.T) {
	d, base := startDaemon(t, DaemonConfig{MaxSessions: 2})

	a := createSession(t, base, tinyConfig(0))
	createSession(t, base, tinyConfig(0))

	// Past MaxSessions: reject with 429, count unchanged.
	body, _ := json.Marshal(tinyConfig(0))
	code, msg := doReq(t, http.MethodPost, base+"/sessions", body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("create past limit: status %d (%s), want 429", code, msg)
	}
	if got := d.SessionCount(); got != 2 {
		t.Errorf("SessionCount = %d after rejected create, want 2", got)
	}

	// Deleting frees a slot.
	doReq(t, http.MethodDelete, base+"/sessions/"+a, nil)
	createSession(t, base, tinyConfig(0))
	if got := d.SessionCount(); got != 2 {
		t.Errorf("SessionCount = %d after delete+create, want 2", got)
	}

	// Malformed configs are 400, never sessions.
	for _, bad := range []string{
		`{"workload":"no-such-workload"}`,
		`{"trace":[1,2],"workload":"art"}`,
		`{"trace":[1],"workers":-1}`,
		`{"unknown_knob":true,"trace":[1]}`,
		`{"trace":[1]} trailing`,
		`not json`,
		`{}`,
	} {
		if code, _ := doReq(t, http.MethodPost, base+"/sessions", []byte(bad)); code != http.StatusBadRequest {
			t.Errorf("create %q: status %d, want 400", bad, code)
		}
	}
}

// TestDaemonGracefulDrain: Shutdown must refuse new work with 503 but let
// the in-flight run finish — never kill it, never deadlock.
func TestDaemonGracefulDrain(t *testing.T) {
	d, base := startDaemon(t, DaemonConfig{MaxSessions: 4})
	id := createSession(t, base, traceSessionConfig(0, 2))

	runDone := make(chan int, 1)
	go func() {
		code, _ := doReq(t, http.MethodPost, base+"/sessions/"+id+"/run", nil)
		runDone <- code
	}()
	// Wait until the run is admitted (state leaves "created").
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, ok := d.lookup(id)
		if !ok {
			t.Fatal("session vanished")
		}
		s.mu.Lock()
		st := s.state
		s.mu.Unlock()
		if st != stateCreated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never started")
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan struct{})
	go func() { d.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown did not complete")
	}
	// The in-flight run finished successfully rather than being dropped.
	select {
	case code := <-runDone:
		if code != http.StatusOK {
			t.Errorf("in-flight run finished with status %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run handler never returned after drain")
	}

	// Draining daemon refuses mutations.
	body, _ := json.Marshal(tinyConfig(0))
	if code, _ := doReq(t, http.MethodPost, base+"/sessions", body); code != http.StatusServiceUnavailable {
		t.Errorf("create while draining: status %d, want 503", code)
	}
	id2 := createSessionDirect(t, d) // registry path, bypassing admission
	if code, _ := doReq(t, http.MethodPost, base+"/sessions/"+id2+"/run", nil); code != http.StatusServiceUnavailable {
		t.Errorf("run while draining: status %d, want 503", code)
	}
	// Reads still work during/after drain.
	if code, _ := doReq(t, http.MethodGet, base+"/sessions", nil); code != http.StatusOK {
		t.Errorf("list while draining: status %d, want 200", code)
	}
	d.Shutdown() // idempotent
}

// createSessionDirect registers a session through the internal registry,
// for tests that need one despite admission control.
func createSessionDirect(t *testing.T, d *Daemon) string {
	t.Helper()
	cfg := tinyConfig(0)
	d.mu.Lock()
	d.nextID++
	s := &session{id: fmt.Sprintf("s%d", d.nextID), seq: d.nextID, cfg: cfg, state: stateCreated}
	d.sessions[s.id] = s
	d.mu.Unlock()
	return s.id
}

// --- churn stress ---

// TestDaemonChurnStress hammers the control plane from many goroutines
// with a randomized create/run/scrape/delete mix (seeded, so failures
// reproduce), then checks exact accounting and a clean drain. Run under
// -race this is the daemon's data-race net.
func TestDaemonChurnStress(t *testing.T) {
	const (
		actors        = 8
		opsPerActor   = 12
		maxConcurrent = actors * 4
	)
	d, base := startDaemon(t, DaemonConfig{MaxSessions: maxConcurrent, PrepWorkers: 2})

	var wg sync.WaitGroup
	for a := 0; a < actors; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + a)))
			var mine []string
			for op := 0; op < opsPerActor; op++ {
				switch rng.Intn(5) {
				case 0, 1: // create
					cfg := tinyConfig(rng.Intn(3))
					body, _ := json.Marshal(cfg)
					code, data := doReq(t, http.MethodPost, base+"/sessions", body)
					if code == http.StatusCreated {
						var inf sessionInfo
						json.Unmarshal(data, &inf)
						mine = append(mine, inf.ID)
					} else if code != http.StatusTooManyRequests {
						t.Errorf("actor %d create: status %d", a, code)
					}
				case 2: // run one of mine
					if len(mine) > 0 {
						id := mine[rng.Intn(len(mine))]
						code, _ := doReq(t, http.MethodPost, base+"/sessions/"+id+"/run", nil)
						switch code {
						case http.StatusOK, http.StatusConflict, http.StatusNotFound,
							http.StatusTooManyRequests:
						default:
							t.Errorf("actor %d run %s: status %d", a, id, code)
						}
					}
				case 3: // scrape
					paths := []string{"/sessions", "/metrics/prom", "/fleet/delinquent", "/fleet/phases"}
					if len(mine) > 0 {
						id := mine[rng.Intn(len(mine))]
						paths = append(paths, "/sessions/"+id+"/history", "/sessions/"+id+"/metrics")
					}
					p := paths[rng.Intn(len(paths))]
					if code, _ := doReq(t, http.MethodGet, base+p, nil); code != http.StatusOK && code != http.StatusNotFound {
						t.Errorf("actor %d GET %s: status %d", a, p, code)
					}
				case 4: // delete one of mine
					if len(mine) > 0 {
						i := rng.Intn(len(mine))
						id := mine[i]
						mine = append(mine[:i], mine[i+1:]...)
						if code, _ := doReq(t, http.MethodDelete, base+"/sessions/"+id, nil); code != http.StatusNoContent {
							t.Errorf("actor %d delete %s: status %d", a, id, code)
						}
					}
				}
			}
			// Tear down everything this actor still owns.
			for _, id := range mine {
				if code, _ := doReq(t, http.MethodDelete, base+"/sessions/"+id, nil); code != http.StatusNoContent {
					t.Errorf("actor %d final delete %s: status %d", a, id, code)
				}
			}
		}(a)
	}
	wg.Wait()

	// Every actor deleted its sessions: accounting must be exactly zero.
	if got := d.SessionCount(); got != 0 {
		t.Errorf("SessionCount after churn = %d, want 0", got)
	}
	// And the drain must complete promptly with nothing in flight.
	done := make(chan struct{})
	go func() { d.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown hung after churn")
	}
}

// TestDaemonScrapeDuringDelete is the swap-safety regression at the
// daemon level: observers scraping a session's metrics/history while it
// is deleted (and its id reused by a successor) must see complete
// responses — 200 from before the delete or 404 after — never a torn
// state. Run under -race.
func TestDaemonScrapeDuringDelete(t *testing.T) {
	const rounds = 20
	_, base := startDaemon(t, DaemonConfig{MaxSessions: 8})

	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		scrapeWG.Add(1)
		go func(g int) {
			defer scrapeWG.Done()
			i := g
			for {
				select {
				case <-stopScrape:
					return
				default:
				}
				id := fmt.Sprintf("s%d", 1+i%rounds)
				i++
				for _, p := range []string{"/metrics", "/history"} {
					code, _ := doReq(t, http.MethodGet, base+"/sessions/"+id+p, nil)
					if code != http.StatusOK && code != http.StatusNotFound {
						t.Errorf("scrape %s%s: status %d", id, p, code)
					}
				}
			}
		}(g)
	}
	for i := 0; i < rounds; i++ {
		id := createSession(t, base, tinyConfig(0))
		doReq(t, http.MethodPost, base+"/sessions/"+id+"/run", nil)
		doReq(t, http.MethodDelete, base+"/sessions/"+id, nil)
	}
	close(stopScrape)
	scrapeWG.Wait()
}
