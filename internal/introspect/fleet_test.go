package introspect

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// golden compares got against testdata/<name>.golden byte-exact, or
// rewrites the file under -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with `go test ./internal/introspect -update`): %v",
			path, err)
	}
	if got != string(want) {
		t.Errorf("%s: output differs from golden file\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// goldenFleet builds a deterministic three-session fleet from standalone
// runs of heterogeneous guests — two pointer-chasing Olden workloads with
// different delinquent sets plus a submitted trace stream — so the
// union/intersection and phase-correlation renders have real structure to
// pin. Runs are pure functions of their configs, so the renders over them
// are golden-stable.
func goldenFleet(t *testing.T) []fleetMember {
	t.Helper()
	configs := []SessionConfig{
		{Workload: "em3d", MaxInstrs: 2_000_000},
		{Workload: "mst", MaxInstrs: 2_000_000},
		traceSessionConfig(1, 0),
	}
	fleet := make([]fleetMember, len(configs))
	for i, cfg := range configs {
		res, err := RunStandalone(cfg)
		if err != nil {
			t.Fatalf("fleet member %d: %v", i, err)
		}
		guest := cfg.Workload
		if guest == "" {
			guest = fmt.Sprintf("trace[%d]", len(cfg.Trace))
		}
		fleet[i] = fleetMember{ID: fmt.Sprintf("s%d", i+1), Guest: guest, Result: res}
	}
	return fleet
}

func TestFleetDelinquentGolden(t *testing.T) {
	out := FormatFleetDelinquent(goldenFleet(t))
	// Structural sanity before pinning bytes: the golden must capture a
	// real aggregation, not a degenerate render.
	if !strings.Contains(out, "union") || !strings.Contains(out, "s1") {
		t.Fatalf("render missing expected structure:\n%s", out)
	}
	golden(t, "fleet_delinquent", out)
}

func TestFleetPhasesGolden(t *testing.T) {
	out := FormatFleetPhases(goldenFleet(t))
	if !strings.Contains(out, "s1~s2") || !strings.Contains(out, "jaccard") {
		t.Fatalf("render missing expected structure:\n%s", out)
	}
	golden(t, "fleet_phases", out)
}

// TestEmptyRenderers: the degraded renders must say explicitly that there
// is nothing to show — an empty fleet is distinguishable from a broken
// scrape (same convention as the harness report renderers).
func TestEmptyRenderers(t *testing.T) {
	cases := []struct {
		name, got, want string
	}{
		{"FormatFleetDelinquent", FormatFleetDelinquent(nil),
			"fleet delinquent loads: no completed sessions\n"},
		{"FormatFleetPhases", FormatFleetPhases(nil),
			"fleet phase correlation: no completed sessions\n"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s(empty) = %q, want %q", c.name, c.got, c.want)
		}
	}
	// A one-session fleet has no pairs; the phases render must say so.
	fleet := goldenFleet(t)[:1]
	if out := FormatFleetPhases(fleet); !strings.Contains(out, "no pairs") {
		t.Errorf("single-session phases render should state no pairs:\n%s", out)
	}
}
