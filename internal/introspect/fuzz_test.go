package introspect

import (
	"testing"
	"unicode/utf8"
)

// FuzzSessionConfig throws arbitrary bytes at the daemon's config parser:
// it must never panic, and anything it accepts must pass its own
// validator — the parse-implies-valid contract the create handler leans
// on (a 400 is the only legal outcome for bad input).
func FuzzSessionConfig(f *testing.F) {
	seeds := []string{
		`{"workload":"179.art"}`,
		`{"workload":"181.mcf","machine":"k7","hw_prefetch":true,"workers":4}`,
		`{"trace":[268435456,268435520,268435584],"reps":8}`,
		`{"trace":[1],"workers":64,"history_windows":32,"max_instrs":1000}`,
		`{"sampling":false,"workload":"em3d"}`,
		`{}`,
		`{"workload":"no-such"}`,
		`{"trace":[1],"workload":"179.art"}`,
		`{"unknown":1}`,
		`{"trace":[1]}{"trace":[2]}`,
		`[1,2,3]`,
		`"just a string"`,
		`{"trace":[-1]}`,
		`{"workers":-2,"trace":[1]}`,
		"not json at all",
		"",
		`{"trace":`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseSessionConfig(data)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("ParseSessionConfig accepted a config its own validator rejects: %v\ninput: %q", verr, data)
		}
		// Accepted configs must also resolve a guest without panicking —
		// the run path's first step on attacker-shaped input. (Building
		// the program itself is exercised for trace guests only when the
		// stream is small, to keep fuzzing fast.)
		if len(cfg.Trace) > 0 && len(cfg.Trace) <= 64 && utf8.Valid(data) {
			if _, err := cfg.guestProgram(); err != nil {
				t.Fatalf("valid config failed to build its guest: %v", err)
			}
		}
	})
}
