package introspect

import (
	"net/http/httptest"
	"sync"
	"testing"

	"umi/internal/metrics"
	"umi/internal/tracelog"
	"umi/internal/umi"
)

// TestSetSourcesSwapDuringScrape is the regression for the server's old
// construction-time-only wiring: handlers resolved Metrics/Events/History
// fields directly, so tearing a session down while a scrape was in flight
// could observe a half-cleared server. Now the bundle swaps atomically —
// concurrent scrapes during repeated attach/detach cycles must always see
// a complete source set (run under -race).
func TestSetSourcesSwapDuringScrape(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("umi.test.counter").Add(7)
	elog := tracelog.NewLog(16)
	elog.Emit(tracelog.Event{Type: tracelog.EvTracePromoted, Cycles: 42})
	full := &Sources{
		Metrics: reg.Snapshot,
		Events:  elog,
		History: func() umi.HistoryView { return (*umi.History)(nil).View() },
	}

	srv := &Server{}
	srv.SetSources(full)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			paths := []string{"/metrics", "/history", "/events", "/events/timeline", "/metrics/prom"}
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, _ := get(t, ts, paths[i%len(paths)])
				if code != 200 {
					t.Errorf("scrape %s during swap: status %d", paths[i%len(paths)], code)
				}
				i++
			}
		}()
	}
	// Flip between attached and detached, as a daemon deleting and
	// recreating the observed session would.
	for i := 0; i < 200; i++ {
		srv.SetSources(nil)
		srv.SetSources(full)
	}
	close(stop)
	wg.Wait()
}
