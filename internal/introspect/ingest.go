// Remote ingestion: POST /sessions/{id}/ingest accepts umi-profile/v1 and
// /v2 streams (recorded by `umiprof -emit` or EmitStandalone, or tailed
// live by `umiprof -emit-live`) and compiles them into a replay session
// analyzed on the daemon's shared preparation pool. A single ingested
// stream reproduces the capture process's RunResult byte for byte;
// multiple shards merge into one logical run — trailer counts sum, PC
// sets union, streamed window histories concatenate and compact to the
// ring cap, and the analyzer state (delinquent set, strides, logical
// cache) simply carries across shards.
//
// Fault handling is classified, not uniform:
//
//   - Oversized bodies are 413 and never poison: one declared by
//     Content-Length is refused before anything is read, and a chunked
//     body that walks past the cap mid-read parks the session resumable
//     (its applied prefix is skip-verified on the re-send, like a live
//     cut).
//   - Header-stage failures (bad preamble, config rejection) are 400 and
//     restore the previous state — no replay state was touched.
//   - A duplicate shard (same manifest, declared via the X-Umi-Shard-*
//     request headers) is an idempotent no-op.
//   - A live upload (?live=1) that cuts off mid-stream parks the session
//     in state resumable; re-sending the same stream resumes at the last
//     applied invocation boundary, verified by rolling checksum.
//   - Content corruption mid-stream still poisons: part of the shard was
//     analyzed, so any later merge would be silently wrong.
package introspect

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"umi/internal/cache"
	"umi/internal/metrics"
	"umi/internal/umi"
	"umi/internal/wire"
)

// MaxStreamBytes bounds one POST /sessions/{id}/ingest body. The decoder
// is bounded-memory regardless of stream length; this cap bounds the
// analyzer work one request can submit. A variable, not a constant, so
// tests can exercise the oversized path without a quarter-gigabyte body.
var MaxStreamBytes int64 = 256 << 20

// ingestMetrics is the daemon-level ingest observability registry,
// exposed in the fleet Prometheus exposition under the session label
// "ingest".
type ingestMetrics struct {
	reg          *metrics.Registry
	Streams      *metrics.Counter
	Frames       *metrics.Counter
	Bytes        *metrics.Counter
	DecodeErrors *metrics.Counter
	Oversized    *metrics.Counter
	Duplicates   *metrics.Counter
	Resumed      *metrics.Counter
	FrameLatency *metrics.Histogram
}

// frameLatencyBuckets: 250ns doubling through ~4s (24 buckets) — decode
// plus apply for one frame, where the apply may be a whole profile's
// mini-simulation.
var frameLatencyBuckets = metrics.ExpBuckets(250, 24)

func newIngestMetrics() *ingestMetrics {
	reg := metrics.NewRegistry()
	return &ingestMetrics{
		reg:          reg,
		Streams:      reg.Counter("umid.ingest.streams"),
		Frames:       reg.Counter("umid.ingest.frames"),
		Bytes:        reg.Counter("umid.ingest.bytes"),
		DecodeErrors: reg.Counter("umid.ingest.decode_errors"),
		Oversized:    reg.Counter("umid.ingest.oversized"),
		Duplicates:   reg.Counter("umid.ingest.duplicate_shards"),
		Resumed:      reg.Counter("umid.ingest.resumed_streams"),
		FrameLatency: reg.Histogram("umid.ingest.frame_latency_ns", frameLatencyBuckets),
	}
}

// ingestState is the per-session replay accumulator, created on the first
// shard. Guarded by the session mutex; the handler takes ownership while
// state is running, so only one ingest touches it at a time.
type ingestState struct {
	replay *umi.Replay
	key    string // ReplayConfigKey of the first shard; later shards must match
	guest  string // workload name from the first header
	shards int

	// Shard-mergeable accounting: counts sum, PC sets union.
	instrumentEvents uint64
	cycles           uint64
	instrs           uint64
	hw               cache.LevelStats
	candidatePCs     map[uint64]bool
	tracePCs         map[uint64]bool

	// Streamed capture-side window history, concatenated across shards
	// and compacted to the ring cap on render. Streamed rather than
	// recomputed: optional capture-side consumers (working-set size) feed
	// fields a replay cannot rebuild.
	windows      []wire.Window
	histTotal    uint64
	histPhases   uint64
	histCap      int
	histRendered bool

	// applied records the manifest of every v2 shard folded in, keyed by
	// shard ID — the duplicate-upload idempotence check. v1 shards carry
	// no manifest and are never deduplicated.
	applied map[uint64]wire.Manifest

	// Live-tail resume point, meaningful while the session is resumable:
	// the frame count and rolling checksum of the truncated stream's
	// applied prefix (umi.Replay.Progress at the cut).
	resumeFrames uint64
	resumeChk    uint64
}

// errShardConfig distinguishes a cross-shard configuration mismatch (a
// client error on an otherwise healthy session) from a decode failure.
var errShardConfig = errors.New("shard configuration mismatch")

// errShardApplied marks a shard-config mismatch detected only after the
// shard's analyzer input was already replayed (the history cap rides in a
// frame near the stream's end). The request is still the client's fault
// (409), but the session cannot be restored to its previous state — the
// merge is tainted, so it poisons.
var errShardApplied = errors.New("shard partially applied")

// errHeaderStage marks failures before any replay state was touched (bad
// preamble, unsupported version, config rejection): the session restores
// to its previous state so the client can retry with a corrected stream.
var errHeaderStage = errors.New("header stage")

// errOversized classifies a body past MaxStreamBytes: 413, counted apart
// from decode errors.
var errOversized = errors.New("stream too large")

// ingestStream decodes and replays one stream into the session's
// accumulator. Caller holds no locks; the session is in state running, so
// the accumulator is exclusively ours. resume replays a re-sent stream
// through the session's recorded resume point (skip-verify, then apply).
func (d *Daemon) ingestStream(s *session, body io.Reader, workers int, resume bool) error {
	dec := wire.NewDecoder(body)
	h, err := dec.Header()
	if err != nil {
		d.ingest.DecodeErrors.Add(1)
		return fmt.Errorf("stream header: %w (%w)", err, errHeaderStage)
	}
	st := s.ing
	if st.replay == nil {
		cfg, err := umi.ConfigFromWireHeader(h)
		if err != nil {
			d.ingest.DecodeErrors.Add(1)
			return fmt.Errorf("stream header: %w (%w)", err, errHeaderStage)
		}
		cfg.AnalyzerWorkers = workers
		if workers >= 2 {
			cfg.SharedPrep = d.shared
		}
		rp := umi.NewReplay(cfg)
		rp.OnFrame = func(lat time.Duration) {
			d.ingest.FrameLatency.Observe(uint64(lat))
		}
		// Concurrent scrapes read replay and guest through the session
		// mutex; publish them the same way.
		s.mu.Lock()
		st.replay = rp
		st.guest = h.Workload
		s.mu.Unlock()
		st.key = umi.ReplayConfigKey(h)
		st.candidatePCs = make(map[uint64]bool)
		st.tracePCs = make(map[uint64]bool)
		st.applied = make(map[uint64]wire.Manifest)
	} else if key := umi.ReplayConfigKey(h); key != st.key {
		return fmt.Errorf("%w: session expects %q, stream carries %q", errShardConfig, st.key, key)
	}

	var shard *umi.ReplayShard
	if resume && st.resumeFrames > 0 {
		shard, err = st.replay.ConsumeResume(dec, st.resumeFrames, st.resumeChk)
	} else {
		shard, err = st.replay.Consume(dec)
	}
	d.ingest.Frames.Add(uint64(dec.Frames()))
	d.ingest.Bytes.Add(uint64(dec.Bytes()))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			d.ingest.Oversized.Add(1)
			return fmt.Errorf("%w: body exceeds %d bytes", errOversized, MaxStreamBytes)
		}
		d.ingest.DecodeErrors.Add(1)
		return fmt.Errorf("stream decode: %w", err)
	}
	if resume && st.resumeFrames > 0 {
		d.ingest.Resumed.Add(1)
	}
	d.ingest.Streams.Add(1)

	// The history ring cap is config, but it rides in a frame near the
	// stream's end — a disagreement is detected only after this shard's
	// analyzer input was replayed, so it must poison alongside the 409
	// (see errShardApplied). First shard with a history section wins;
	// later shards must agree.
	if st.shards > 0 && st.histCap != 0 && shard.History.Cap != 0 && shard.History.Cap != st.histCap {
		return fmt.Errorf("%w: history cap %d, first shard recorded %d (%w)",
			errShardConfig, shard.History.Cap, st.histCap, errShardApplied)
	}

	st.apply(shard)
	st.resumeFrames, st.resumeChk = 0, 0
	return nil
}

// apply folds one cleanly-consumed shard into the accumulator.
func (st *ingestState) apply(shard *umi.ReplayShard) {
	tr := shard.Trailer
	st.shards++
	st.instrumentEvents += tr.InstrumentEvents
	st.cycles += tr.TotalCycles
	st.instrs += tr.Instrs
	st.hw.Accesses += tr.HWAccesses
	st.hw.Misses += tr.HWMisses
	for _, pc := range tr.CandidatePCs {
		st.candidatePCs[pc] = true
	}
	for _, pc := range tr.TracePCs {
		st.tracePCs[pc] = true
	}
	st.histTotal += shard.History.Total
	st.histPhases += shard.History.PhaseChanges
	if shard.History.Cap != 0 {
		st.histCap = shard.History.Cap
	}
	for _, w := range shard.History.Windows {
		st.windows = append(st.windows, windowRecord(w))
	}
	// Remember the shard's manifest (v2 streams carry one) so a retried
	// upload declaring the same manifest is a no-op.
	if m := tr.Shard; m.ShardID != 0 && st.applied != nil {
		st.applied[m.ShardID] = m
	}
}

// ReplayStream replays one recorded umi-profile/v1 stream outside any
// daemon and returns its RunResult — byte-identical (marshaled) to the
// capture process's, at any worker count. The `umiprof -ingest` path.
func ReplayStream(body io.Reader, workers int) (*RunResult, error) {
	dec := wire.NewDecoder(body)
	h, err := dec.Header()
	if err != nil {
		return nil, fmt.Errorf("stream header: %w", err)
	}
	cfg, err := umi.ConfigFromWireHeader(h)
	if err != nil {
		return nil, fmt.Errorf("stream header: %w", err)
	}
	cfg.AnalyzerWorkers = workers
	rp := umi.NewReplay(cfg)
	defer rp.Close()
	shard, err := rp.Consume(dec)
	if err != nil {
		return nil, fmt.Errorf("stream decode: %w", err)
	}
	st := &ingestState{
		replay:       rp,
		candidatePCs: make(map[uint64]bool),
		tracePCs:     make(map[uint64]bool),
	}
	st.apply(shard)
	return st.result(), nil
}

// windowRecord round-trips a WindowSummary through its wire record so the
// accumulator stores the streamed form verbatim.
func windowRecord(w umi.WindowSummary) wire.Window {
	return wire.Window{
		Invocation: w.Invocation, Cycles: w.Cycles, Refs: w.Refs,
		Accesses: w.Accesses, Misses: w.Misses,
		WindowMissRatio: w.WindowMissRatio, CumMissRatio: w.CumMissRatio,
		Delinquent: w.Delinquent, NewDelinquent: w.NewDelinquent,
		DelinquentHash: w.DelinquentHash, Jaccard: w.Jaccard,
		PhaseChange: w.PhaseChange, StridedLoads: w.StridedLoads,
		TopStride: w.TopStride, WSLines: w.WSLines,
	}
}

// result assembles the session's merged RunResult: the replayed report
// with merged run accounting, the compacted streamed history, and the
// hardware-model ratio recomputed from summed raw counts — for a single
// shard, byte-identical to the capture process's RunResult.
func (st *ingestState) result() *RunResult {
	rep := st.replay.Report(len(st.tracePCs), len(st.candidatePCs), st.instrumentEvents)
	kept := st.windows
	if st.histCap > 0 && len(kept) > st.histCap {
		kept = kept[len(kept)-st.histCap:]
	}
	ws := make([]umi.WindowSummary, len(kept))
	for i, w := range kept {
		ws[i] = umi.WindowSummary{
			Invocation: w.Invocation, Cycles: w.Cycles, Refs: w.Refs,
			Accesses: w.Accesses, Misses: w.Misses,
			WindowMissRatio: w.WindowMissRatio, CumMissRatio: w.CumMissRatio,
			Delinquent: w.Delinquent, NewDelinquent: w.NewDelinquent,
			DelinquentHash: w.DelinquentHash, Jaccard: w.Jaccard,
			PhaseChange: w.PhaseChange, StridedLoads: w.StridedLoads,
			TopStride: w.TopStride, WSLines: w.WSLines,
		}
	}
	hv := (*umi.History)(nil).View()
	hv.Total = st.histTotal
	hv.Dropped = st.histTotal - uint64(len(ws))
	hv.Cap = st.histCap
	hv.PhaseChanges = st.histPhases
	if len(ws) > 0 {
		hv.Windows = ws
	}
	return &RunResult{
		Report:      rep,
		History:     hv,
		HWMissRatio: st.hw.MissRatio(),
		Cycles:      st.cycles,
		Instrs:      st.instrs,
	}
}

// shardManifestHeaders reads the client-declared shard manifest from the
// X-Umi-Shard-{Id,Frames,Checksum} request headers (decimal uint64s, as
// `umiprof` sends after a wire.ScanManifest pass over the file). All
// three present and parseable, or no manifest.
func shardManifestHeaders(r *http.Request) (wire.Manifest, bool) {
	var m wire.Manifest
	for _, f := range []struct {
		name string
		dst  *uint64
	}{
		{"X-Umi-Shard-Id", &m.ShardID},
		{"X-Umi-Shard-Frames", &m.Frames},
		{"X-Umi-Shard-Checksum", &m.Checksum},
	} {
		v, err := strconv.ParseUint(r.Header.Get(f.name), 10, 64)
		if err != nil {
			return wire.Manifest{}, false
		}
		*f.dst = v
	}
	return m, m.ShardID != 0
}

// ingestSession is POST /sessions/{id}/ingest: replay one stream into the
// session. Repeatable — each accepted shard leaves the session done with
// a merged result. Faults are classified (see the package comment): only
// mid-stream content corruption — partially-applied analysis that a
// retry cannot reconcile — poisons the session; a live upload (?live=1)
// that cuts off parks it resumable instead, and everything detected
// before replay state changes restores the previous state.
func (d *Daemon) ingestSession(w http.ResponseWriter, r *http.Request) {
	s, ok := d.lookup(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	if !s.cfg.Ingest {
		httpError(w, http.StatusConflict, "session %s does not ingest; create it with \"ingest\": true", s.id)
		return
	}

	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	d.runs.Add(1)
	d.mu.Unlock()
	defer d.runs.Done()

	// A declared body past the cap is refused before any state changes —
	// the cheap half of the oversized check; chunked bodies without a
	// length are caught by MaxBytesReader below.
	if r.ContentLength > MaxStreamBytes {
		d.ingest.Oversized.Add(1)
		httpError(w, http.StatusRequestEntityTooLarge,
			"stream of %d bytes exceeds the %d-byte ingest cap", r.ContentLength, MaxStreamBytes)
		return
	}
	live := r.URL.Query().Get("live") == "1"

	s.mu.Lock()
	switch s.state {
	case stateRunning:
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "session %s has an ingest in flight", s.id)
		return
	case stateFailed:
		err := s.runErr
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "session %s is poisoned by an earlier shard: %v", s.id, err)
		return
	}
	// Duplicate-shard check: a manifest the session already applied makes
	// this upload an idempotent no-op (same content — the retry case); the
	// same shard ID with different content is a client error.
	if man, ok := shardManifestHeaders(r); ok && s.ing != nil {
		if prevMan, dup := s.ing.applied[man.ShardID]; dup {
			res := s.result
			s.mu.Unlock()
			if prevMan != man {
				httpError(w, http.StatusConflict,
					"shard %d already applied with different content (frames %d checksum %#016x)",
					man.ShardID, prevMan.Frames, prevMan.Checksum)
				return
			}
			d.ingest.Duplicates.Add(1)
			writeJSON(w, res)
			return
		}
	}
	prev := s.state
	s.state = stateRunning
	if s.ing == nil {
		s.ing = &ingestState{}
	}
	s.mu.Unlock()

	err := d.ingestStream(s, http.MaxBytesReader(w, r.Body, MaxStreamBytes), s.cfg.Workers, prev == stateResumable)

	s.mu.Lock()
	var res *RunResult
	var resumedAt uint64
	switch {
	case err == nil:
		s.state = stateDone
		res = s.ing.result()
		s.result = res
	case errors.Is(err, errShardApplied):
		// Client error (409) found only after the shard replayed: the
		// merge is tainted, so the session poisons too.
		s.state = stateFailed
		s.runErr = err
	case errors.Is(err, errShardConfig), errors.Is(err, errHeaderStage),
		errors.Is(err, umi.ErrResume):
		// Nothing was applied; the session stays healthy at its previous
		// state (for ErrResume that is resumable — still awaiting a
		// correct retry).
		s.state = prev
	case live && errors.Is(err, wire.ErrTruncated), errors.Is(err, errOversized):
		// The stream stopped cleanly from the replayer's point of view —
		// a live connection cut, or a chunked body walking past the
		// ingest cap mid-read — at a boundary it can resume from. Park
		// the session resumable; the client re-sends the stream and the
		// applied prefix is skip-verified, not re-applied. A retry that
		// dies earlier than the last one keeps the further-along resume
		// point.
		s.state = stateResumable
		if frames, chk := s.ing.replay.Progress(); frames > s.ing.resumeFrames {
			s.ing.resumeFrames, s.ing.resumeChk = frames, chk
		}
		resumedAt = s.ing.resumeFrames
	default:
		s.state = stateFailed
		s.runErr = err
	}
	s.mu.Unlock()

	switch {
	case err == nil:
		writeJSON(w, res)
	case errors.Is(err, errShardConfig), errors.Is(err, umi.ErrResume):
		httpError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, errOversized):
		httpError(w, http.StatusRequestEntityTooLarge, "%v", err)
	case live && errors.Is(err, wire.ErrTruncated):
		httpError(w, http.StatusConflict,
			"live stream cut off; session resumable at frame %d — re-send the stream to resume: %v", resumedAt, err)
	default:
		httpError(w, http.StatusBadRequest, "%v", err)
	}
}
