// Remote ingestion: POST /sessions/{id}/ingest accepts umi-profile/v1
// streams (recorded by `umiprof -emit` or EmitStandalone) and compiles
// them into a replay session analyzed on the daemon's shared preparation
// pool. A single ingested stream reproduces the capture process's
// RunResult byte for byte; multiple shards merge into one logical run —
// trailer counts sum, PC sets union, streamed window histories
// concatenate and compact to the ring cap, and the analyzer state
// (delinquent set, strides, logical cache) simply carries across shards.
package introspect

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"umi/internal/cache"
	"umi/internal/metrics"
	"umi/internal/umi"
	"umi/internal/wire"
)

// MaxStreamBytes bounds one POST /sessions/{id}/ingest body. The decoder
// is bounded-memory regardless of stream length; this cap bounds the
// analyzer work one request can submit.
const MaxStreamBytes = 256 << 20

// ingestMetrics is the daemon-level ingest observability registry,
// exposed in the fleet Prometheus exposition under the session label
// "ingest".
type ingestMetrics struct {
	reg          *metrics.Registry
	Streams      *metrics.Counter
	Frames       *metrics.Counter
	Bytes        *metrics.Counter
	DecodeErrors *metrics.Counter
	FrameLatency *metrics.Histogram
}

// frameLatencyBuckets: 250ns doubling through ~4s (24 buckets) — decode
// plus apply for one frame, where the apply may be a whole profile's
// mini-simulation.
var frameLatencyBuckets = metrics.ExpBuckets(250, 24)

func newIngestMetrics() *ingestMetrics {
	reg := metrics.NewRegistry()
	return &ingestMetrics{
		reg:          reg,
		Streams:      reg.Counter("umid.ingest.streams"),
		Frames:       reg.Counter("umid.ingest.frames"),
		Bytes:        reg.Counter("umid.ingest.bytes"),
		DecodeErrors: reg.Counter("umid.ingest.decode_errors"),
		FrameLatency: reg.Histogram("umid.ingest.frame_latency_ns", frameLatencyBuckets),
	}
}

// ingestState is the per-session replay accumulator, created on the first
// shard. Guarded by the session mutex; the handler takes ownership while
// state is running, so only one ingest touches it at a time.
type ingestState struct {
	replay *umi.Replay
	key    string // ReplayConfigKey of the first shard; later shards must match
	guest  string // workload name from the first header
	shards int

	// Shard-mergeable accounting: counts sum, PC sets union.
	instrumentEvents uint64
	cycles           uint64
	instrs           uint64
	hw               cache.LevelStats
	candidatePCs     map[uint64]bool
	tracePCs         map[uint64]bool

	// Streamed capture-side window history, concatenated across shards
	// and compacted to the ring cap on render. Streamed rather than
	// recomputed: optional capture-side consumers (working-set size) feed
	// fields a replay cannot rebuild.
	windows      []wire.Window
	histTotal    uint64
	histPhases   uint64
	histCap      int
	histRendered bool
}

// errShardConfig distinguishes a cross-shard configuration mismatch (a
// client error on an otherwise healthy session) from a decode failure.
var errShardConfig = errors.New("shard configuration mismatch")

// ingestStream decodes and replays one stream into the session's
// accumulator. Caller holds no locks; the session is in state running, so
// the accumulator is exclusively ours.
func (d *Daemon) ingestStream(s *session, body io.Reader, workers int) error {
	dec := wire.NewDecoder(body)
	h, err := dec.Header()
	if err != nil {
		d.ingest.DecodeErrors.Add(1)
		return fmt.Errorf("stream header: %w", err)
	}
	st := s.ing
	if st.replay == nil {
		cfg, err := umi.ConfigFromWireHeader(h)
		if err != nil {
			d.ingest.DecodeErrors.Add(1)
			return fmt.Errorf("stream header: %w", err)
		}
		cfg.AnalyzerWorkers = workers
		if workers >= 2 {
			cfg.SharedPrep = d.shared
		}
		rp := umi.NewReplay(cfg)
		rp.OnFrame = func(lat time.Duration) {
			d.ingest.FrameLatency.Observe(uint64(lat))
		}
		// Concurrent scrapes read replay and guest through the session
		// mutex; publish them the same way.
		s.mu.Lock()
		st.replay = rp
		st.guest = h.Workload
		s.mu.Unlock()
		st.key = umi.ReplayConfigKey(h)
		st.candidatePCs = make(map[uint64]bool)
		st.tracePCs = make(map[uint64]bool)
	} else if key := umi.ReplayConfigKey(h); key != st.key {
		return fmt.Errorf("%w: session expects %q, stream carries %q", errShardConfig, st.key, key)
	}

	shard, err := st.replay.Consume(dec)
	d.ingest.Frames.Add(uint64(dec.Frames()))
	d.ingest.Bytes.Add(uint64(dec.Bytes()))
	if err != nil {
		d.ingest.DecodeErrors.Add(1)
		return fmt.Errorf("stream decode: %w", err)
	}
	d.ingest.Streams.Add(1)

	st.apply(shard)
	return nil
}

// apply folds one cleanly-consumed shard into the accumulator.
func (st *ingestState) apply(shard *umi.ReplayShard) {
	tr := shard.Trailer
	st.shards++
	st.instrumentEvents += tr.InstrumentEvents
	st.cycles += tr.TotalCycles
	st.instrs += tr.Instrs
	st.hw.Accesses += tr.HWAccesses
	st.hw.Misses += tr.HWMisses
	for _, pc := range tr.CandidatePCs {
		st.candidatePCs[pc] = true
	}
	for _, pc := range tr.TracePCs {
		st.tracePCs[pc] = true
	}
	st.histTotal += shard.History.Total
	st.histPhases += shard.History.PhaseChanges
	st.histCap = shard.History.Cap
	for _, w := range shard.History.Windows {
		st.windows = append(st.windows, windowRecord(w))
	}
}

// ReplayStream replays one recorded umi-profile/v1 stream outside any
// daemon and returns its RunResult — byte-identical (marshaled) to the
// capture process's, at any worker count. The `umiprof -ingest` path.
func ReplayStream(body io.Reader, workers int) (*RunResult, error) {
	dec := wire.NewDecoder(body)
	h, err := dec.Header()
	if err != nil {
		return nil, fmt.Errorf("stream header: %w", err)
	}
	cfg, err := umi.ConfigFromWireHeader(h)
	if err != nil {
		return nil, fmt.Errorf("stream header: %w", err)
	}
	cfg.AnalyzerWorkers = workers
	rp := umi.NewReplay(cfg)
	defer rp.Close()
	shard, err := rp.Consume(dec)
	if err != nil {
		return nil, fmt.Errorf("stream decode: %w", err)
	}
	st := &ingestState{
		replay:       rp,
		candidatePCs: make(map[uint64]bool),
		tracePCs:     make(map[uint64]bool),
	}
	st.apply(shard)
	return st.result(), nil
}

// windowRecord round-trips a WindowSummary through its wire record so the
// accumulator stores the streamed form verbatim.
func windowRecord(w umi.WindowSummary) wire.Window {
	return wire.Window{
		Invocation: w.Invocation, Cycles: w.Cycles, Refs: w.Refs,
		Accesses: w.Accesses, Misses: w.Misses,
		WindowMissRatio: w.WindowMissRatio, CumMissRatio: w.CumMissRatio,
		Delinquent: w.Delinquent, NewDelinquent: w.NewDelinquent,
		DelinquentHash: w.DelinquentHash, Jaccard: w.Jaccard,
		PhaseChange: w.PhaseChange, StridedLoads: w.StridedLoads,
		TopStride: w.TopStride, WSLines: w.WSLines,
	}
}

// result assembles the session's merged RunResult: the replayed report
// with merged run accounting, the compacted streamed history, and the
// hardware-model ratio recomputed from summed raw counts — for a single
// shard, byte-identical to the capture process's RunResult.
func (st *ingestState) result() *RunResult {
	rep := st.replay.Report(len(st.tracePCs), len(st.candidatePCs), st.instrumentEvents)
	kept := st.windows
	if st.histCap > 0 && len(kept) > st.histCap {
		kept = kept[len(kept)-st.histCap:]
	}
	ws := make([]umi.WindowSummary, len(kept))
	for i, w := range kept {
		ws[i] = umi.WindowSummary{
			Invocation: w.Invocation, Cycles: w.Cycles, Refs: w.Refs,
			Accesses: w.Accesses, Misses: w.Misses,
			WindowMissRatio: w.WindowMissRatio, CumMissRatio: w.CumMissRatio,
			Delinquent: w.Delinquent, NewDelinquent: w.NewDelinquent,
			DelinquentHash: w.DelinquentHash, Jaccard: w.Jaccard,
			PhaseChange: w.PhaseChange, StridedLoads: w.StridedLoads,
			TopStride: w.TopStride, WSLines: w.WSLines,
		}
	}
	hv := (*umi.History)(nil).View()
	hv.Total = st.histTotal
	hv.Dropped = st.histTotal - uint64(len(ws))
	hv.Cap = st.histCap
	hv.PhaseChanges = st.histPhases
	if len(ws) > 0 {
		hv.Windows = ws
	}
	return &RunResult{
		Report:      rep,
		History:     hv,
		HWMissRatio: st.hw.MissRatio(),
		Cycles:      st.cycles,
		Instrs:      st.instrs,
	}
}

// ingestSession is POST /sessions/{id}/ingest: replay one stream into the
// session. Repeatable — each accepted shard leaves the session done with
// a merged result; a mid-stream decode failure leaves partially-applied
// analysis, so it poisons the session (state failed) rather than serving
// a silently wrong merge.
func (d *Daemon) ingestSession(w http.ResponseWriter, r *http.Request) {
	s, ok := d.lookup(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	if !s.cfg.Ingest {
		httpError(w, http.StatusConflict, "session %s does not ingest; create it with \"ingest\": true", s.id)
		return
	}

	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	d.runs.Add(1)
	d.mu.Unlock()
	defer d.runs.Done()

	s.mu.Lock()
	switch s.state {
	case stateRunning:
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "session %s has an ingest in flight", s.id)
		return
	case stateFailed:
		err := s.runErr
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "session %s is poisoned by an earlier shard: %v", s.id, err)
		return
	}
	prev := s.state
	s.state = stateRunning
	if s.ing == nil {
		s.ing = &ingestState{}
	}
	s.mu.Unlock()

	err := d.ingestStream(s, http.MaxBytesReader(w, r.Body, MaxStreamBytes), s.cfg.Workers)

	s.mu.Lock()
	var res *RunResult
	switch {
	case err == nil:
		s.state = stateDone
		res = s.ing.result()
		s.result = res
	case errors.Is(err, errShardConfig):
		// Nothing was applied; the session stays healthy at its previous
		// state.
		s.state = prev
	default:
		s.state = stateFailed
		s.runErr = err
	}
	s.mu.Unlock()

	switch {
	case errors.Is(err, errShardConfig):
		httpError(w, http.StatusConflict, "%v", err)
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSON(w, res)
	}
}
