package introspect

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"umi/internal/metrics"
	"umi/internal/tracelog"
	"umi/internal/umi"
)

func testServer() (*Server, *metrics.Registry, *tracelog.Log) {
	reg := metrics.NewRegistry()
	l := tracelog.NewLog(16)
	return &Server{Metrics: reg.Snapshot, Events: l}, reg, l
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	s, reg, _ := testServer()
	reg.Counter("umi.traces.seen").Add(7)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics is not a Snapshot: %v\n%s", err, body)
	}
	if snap.Counter("umi.traces.seen") != 7 {
		t.Errorf("counter = %d, want 7", snap.Counter("umi.traces.seen"))
	}
}

func TestMetricsDeltaEndpoint(t *testing.T) {
	s, reg, _ := testServer()
	c := reg.Counter("c")
	c.Add(5)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// First scrape diffs against the zero snapshot: cumulative values.
	_, body := get(t, ts, "/metrics/delta")
	var d metrics.Snapshot
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatal(err)
	}
	if d.Counter("c") != 5 {
		t.Errorf("first delta = %d, want 5", d.Counter("c"))
	}
	// Second scrape reports only the interval.
	c.Add(3)
	_, body = get(t, ts, "/metrics/delta")
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatal(err)
	}
	if d.Counter("c") != 3 {
		t.Errorf("second delta = %d, want 3", d.Counter("c"))
	}
}

func TestEventsEndpoint(t *testing.T) {
	s, _, l := testServer()
	for i := 0; i < 20; i++ { // ring cap 16: four drops
		l.Emit(tracelog.Event{Type: tracelog.EvTracePromoted, Cycles: uint64(i)})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := get(t, ts, "/events")
	var p struct {
		Total  uint64           `json:"total"`
		Drops  uint64           `json:"drops"`
		Cap    int              `json:"cap"`
		Events []map[string]any `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/events is not valid JSON: %v\n%s", err, body)
	}
	if p.Total != 20 || p.Drops != 4 || p.Cap != 16 || len(p.Events) != 16 {
		t.Errorf("payload = total %d drops %d cap %d events %d, want 20/4/16/16",
			p.Total, p.Drops, p.Cap, len(p.Events))
	}
	if p.Events[0]["type"] != "trace.promoted" {
		t.Errorf("event type = %v, want trace.promoted", p.Events[0]["type"])
	}

	// ?n limits to the most recent n.
	_, body = get(t, ts, "/events?n=3")
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 3 {
		t.Errorf("?n=3 returned %d events", len(p.Events))
	}

	if code, _ := get(t, ts, "/events?n=bogus"); code != http.StatusBadRequest {
		t.Errorf("?n=bogus status = %d, want 400", code)
	}
}

func TestTimelineAndTraceEndpoints(t *testing.T) {
	s, _, l := testServer()
	l.Emit(tracelog.Event{Type: tracelog.EvAnalyzerEnd, Cycles: 100, Dur: 9,
		Arg1: 10, Arg2: 2, Arg3: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := get(t, ts, "/events/timeline")
	if !strings.HasPrefix(body, "timeline: 1 events") {
		t.Errorf("/events/timeline = %q", body)
	}
	_, body = get(t, ts, "/events/trace")
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/events/trace is not trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("/events/trace has no traceEvents")
	}
}

func TestPprofAndIndex(t *testing.T) {
	s, _, _ := testServer()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body := get(t, ts, "/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index status %d body %q", code, body)
	}
	if code, _ := get(t, ts, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", code)
	}
	if code, _ := get(t, ts, "/nope"); code != http.StatusNotFound {
		t.Errorf("/nope status = %d, want 404", code)
	}
}

// TestNilSources: a server with no metrics source and no event log must
// serve empty payloads, not panic — the disabled-observability state.
func TestNilSources(t *testing.T) {
	ts := httptest.NewServer((&Server{}).Handler())
	defer ts.Close()
	for _, path := range []string{"/metrics", "/metrics/delta", "/events", "/events/timeline", "/events/trace"} {
		if code, _ := get(t, ts, path); code != http.StatusOK {
			t.Errorf("%s status = %d with nil sources", path, code)
		}
	}
}

func TestServeLifecycle(t *testing.T) {
	s, reg, _ := testServer()
	reg.Counter("x").Add(1)
	addr, stop, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET bound server: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	stop()
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still reachable after stop")
	}
}

func TestHistoryEndpoint(t *testing.T) {
	s, _, _ := testServer()
	s.History = func() umi.HistoryView {
		return umi.HistoryView{
			Schema: "umi-history/v1", Total: 5, Dropped: 2, Cap: 3, PhaseChanges: 1,
			Windows: []umi.WindowSummary{
				{Invocation: 3, Cycles: 100, Refs: 10},
				{Invocation: 4, Cycles: 200, Refs: 20, PhaseChange: true},
				{Invocation: 5, Cycles: 300, Refs: 30},
			},
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/history")
	if code != http.StatusOK {
		t.Fatalf("/history status = %d", code)
	}
	var v umi.HistoryView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("/history is not a HistoryView: %v\n%s", err, body)
	}
	if v.Schema != "umi-history/v1" || v.Total != 5 || v.Dropped != 2 || len(v.Windows) != 3 {
		t.Errorf("history payload = %+v", v)
	}
	if v.Windows[1].Invocation != 4 || !v.Windows[1].PhaseChange {
		t.Errorf("window payload = %+v", v.Windows[1])
	}
}

// TestPromEndpoint: /metrics/prom must serve a valid text exposition
// carrying at least one counter, one gauge, and one histogram from the
// registry, plus the phase-history family.
func TestPromEndpoint(t *testing.T) {
	s, reg, _ := testServer()
	reg.Counter("umi.traces.seen").Add(7)
	reg.Gauge("umi.pool.depth").Set(2)
	reg.Histogram("umi.analysis.latency", metrics.ExpBuckets(1, 4)).Observe(3)
	s.History = func() umi.HistoryView {
		return umi.HistoryView{Schema: "umi-history/v1", Total: 2,
			Windows: []umi.WindowSummary{{Invocation: 2, Cycles: 500}}}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != metrics.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, metrics.PromContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Structural validity: every sample preceded by its TYPE line, values
	// parseable, bucket series cumulative with a final +Inf.
	types := make(map[string]string)
	var cum uint64
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			types[f[2]] = f[3]
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("line %d: unparseable value in %q", ln+1, line)
		}
		if strings.HasPrefix(line, "umi_analysis_latency_bucket") {
			v, _ := strconv.ParseUint(line[sp+1:], 10, 64)
			if v < cum {
				t.Fatalf("line %d: bucket not cumulative", ln+1)
			}
			cum = v
		}
	}
	if types["umi_traces_seen"] != "counter" ||
		types["umi_pool_depth"] != "gauge" ||
		types["umi_analysis_latency"] != "histogram" {
		t.Errorf("missing metric families: %v", types)
	}
	if types["umi_phase_windows_total"] != "counter" ||
		types["umi_phase_last_cycles"] != "gauge" {
		t.Errorf("missing phase-history families: %v", types)
	}
	if !strings.Contains(body, `umi_analysis_latency_bucket{le="+Inf"} 1`) {
		t.Errorf("missing +Inf bucket:\n%s", body)
	}
	if !strings.Contains(body, "umi_phase_last_cycles 500\n") {
		t.Errorf("missing latest-window gauge:\n%s", body)
	}
}

// TestOverheadEndpoint: /overhead must serve the attribution report as
// JSON, and /metrics/prom must carry the same numbers in the
// umi_overhead_* families — the two surfaces describe one report.
func TestOverheadEndpoint(t *testing.T) {
	s, _, _ := testServer()
	s.Overhead = func() *umi.OverheadReport {
		return &umi.OverheadReport{
			Schema:         umi.OverheadSchema,
			GuestCycles:    1_000_000,
			OverheadCycles: 25_000,
			OverheadRatio:  0.025,
			GuestWallNs:    4_000_000,
			Stages: []umi.StageCost{
				{Stage: "instrument", Events: 12, ModelledCycles: 6_000, CycleRatio: 0.006},
				{Stage: "fill", Events: 800, ModelledCycles: 19_000, CycleRatio: 0.019, WallNs: 90_000, WallRatio: 0.0225},
			},
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/overhead")
	if code != http.StatusOK {
		t.Fatalf("/overhead status = %d", code)
	}
	var r umi.OverheadReport
	if err := json.Unmarshal([]byte(body), &r); err != nil {
		t.Fatalf("/overhead is not an OverheadReport: %v\n%s", err, body)
	}
	if r.Schema != umi.OverheadSchema || r.GuestCycles != 1_000_000 || len(r.Stages) != 2 {
		t.Errorf("overhead payload = %+v", r)
	}
	if st := r.Stage("fill"); st.ModelledCycles != 19_000 || st.WallNs != 90_000 {
		t.Errorf("fill stage payload = %+v", st)
	}

	// The Prometheus exposition must agree with the JSON report — every
	// umi_overhead_* sample structurally valid (TYPE declared before use,
	// parseable value) and numerically equal to the report's fields.
	_, prom := get(t, ts, "/metrics/prom")
	types := make(map[string]bool)
	samples := make(map[string]float64)
	for ln, line := range strings.Split(strings.TrimRight(prom, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			types[f[2]] = true
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("line %d: unparseable value in %q", ln+1, line)
		}
		name := line[:sp]
		if strings.HasPrefix(name, "umi_overhead") {
			base := name
			if i := strings.IndexByte(base, '{'); i >= 0 {
				base = base[:i]
			}
			if !types[base] {
				t.Fatalf("line %d: sample %q before its TYPE line", ln+1, line)
			}
			samples[name] = v
		}
	}
	want := map[string]float64{
		"umi_overhead_guest_cycles":                     1_000_000,
		"umi_overhead_cycles_total":                     25_000,
		"umi_overhead_ratio":                            0.025,
		`umi_overhead_stage_cycles{stage="fill"}`:       19_000,
		`umi_overhead_stage_wall_ns{stage="fill"}`:      90_000,
		`umi_overhead_stage_cycles{stage="instrument"}`: 6_000,
	}
	for name, w := range want {
		if got, ok := samples[name]; !ok || got != w {
			t.Errorf("/metrics/prom %s = %v (present %v), /overhead says %v", name, got, ok, w)
		}
	}
}

// TestOverheadNilSource: with no overhead source the endpoint serves an
// empty schema-stamped report, and the exposition omits nothing fatal.
func TestOverheadNilSource(t *testing.T) {
	ts := httptest.NewServer((&Server{}).Handler())
	defer ts.Close()
	code, body := get(t, ts, "/overhead")
	if code != http.StatusOK {
		t.Fatalf("/overhead status = %d with nil source", code)
	}
	var r umi.OverheadReport
	if err := json.Unmarshal([]byte(body), &r); err != nil {
		t.Fatal(err)
	}
	if r.Schema != umi.OverheadSchema || r.GuestCycles != 0 || len(r.Stages) != 0 {
		t.Errorf("nil-source overhead = %+v, want empty schema-stamped report", r)
	}
}

// TestHistoryNilSource: both history surfaces must serve the empty view
// when no history source is wired.
func TestHistoryNilSource(t *testing.T) {
	ts := httptest.NewServer((&Server{}).Handler())
	defer ts.Close()
	code, body := get(t, ts, "/history")
	if code != http.StatusOK {
		t.Fatalf("/history status = %d with nil source", code)
	}
	var v umi.HistoryView
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.Schema == "" || v.Total != 0 || len(v.Windows) != 0 {
		t.Errorf("nil-source history = %+v, want empty schema-stamped view", v)
	}
	if code, _ := get(t, ts, "/metrics/prom"); code != http.StatusOK {
		t.Errorf("/metrics/prom status = %d with nil sources", code)
	}
}
