//go:build !race

package cache

import "testing"

// The mini-simulator's hot path must not allocate: every simulated
// reference funnels through Access, and a single allocation per probe would
// dominate a billion-reference harness run. Guarded by !race because the
// race detector's instrumentation skews allocation accounting; make check
// runs these tests in a separate non-race pass.

func TestAccessZeroAllocs(t *testing.T) {
	c := New(P4L2)
	// Warm: fill every set so steady state includes evictions.
	for i := uint64(0); i < uint64(P4L2.Size/P4L2.LineSize)*2; i++ {
		c.Access(i * 64)
	}
	addr := uint64(0)
	if n := testing.AllocsPerRun(1000, func() {
		c.Access(addr)
		addr += 64
	}); n != 0 {
		t.Errorf("Access allocated %v times per op on the LRU fast path", n)
	}
}

func TestAccessBatchZeroAllocs(t *testing.T) {
	for _, pol := range []Policy{LRU, FIFO, PLRU} {
		cfg := P4L2
		cfg.Policy = pol
		c := New(cfg)
		for i := uint64(0); i < uint64(cfg.Size/cfg.LineSize)*2; i++ {
			c.Access(i * 64)
		}
		addrs := make([]uint64, 512)
		res := make([]AccessResult, 512)
		base := uint64(0)
		if n := testing.AllocsPerRun(100, func() {
			for i := range addrs {
				addrs[i] = base + uint64(i)*64
			}
			base += 512 * 64
			c.AccessBatch(addrs, res)
		}); n != 0 {
			t.Errorf("%v: AccessBatch allocated %v times per batch on the fused path", pol, n)
		}
	}
}

func TestAccessSlowPathZeroAllocs(t *testing.T) {
	for _, pol := range []Policy{FIFO, Random, PLRU} {
		c := New(Config{Name: "t", Size: 32 * 1024, Assoc: 4, LineSize: 64, Policy: pol})
		c.Install(0x40, 4) // prefetch state live: forces the general path
		addr := uint64(0)
		if n := testing.AllocsPerRun(1000, func() {
			c.Access(addr)
			addr += 64
		}); n != 0 {
			t.Errorf("%v: Access allocated %v times per op", pol, n)
		}
	}
}
