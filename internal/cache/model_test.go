package cache

import (
	"container/list"
	"math/rand"
	"testing"
)

// refLRU is a trivially correct reference model of one set-associative
// LRU cache: per set, a list ordered by recency.
type refLRU struct {
	cfg  Config
	sets []*list.List // of uint64 tags, front = MRU
}

func newRefLRU(cfg Config) *refLRU {
	r := &refLRU{cfg: cfg, sets: make([]*list.List, cfg.Sets())}
	for i := range r.sets {
		r.sets[i] = list.New()
	}
	return r
}

func (r *refLRU) access(addr uint64) bool {
	line := addr / uint64(r.cfg.LineSize)
	set := line % uint64(r.cfg.Sets())
	tag := line / uint64(r.cfg.Sets())
	l := r.sets[set]
	for e := l.Front(); e != nil; e = e.Next() {
		if e.Value.(uint64) == tag {
			l.MoveToFront(e)
			return true
		}
	}
	l.PushFront(tag)
	if l.Len() > r.cfg.Assoc {
		l.Remove(l.Back())
	}
	return false
}

// TestCacheMatchesReferenceModel drives the production cache and the
// reference model with identical random traces and requires identical
// hit/miss outcomes on every access — the strongest correctness statement
// we can make about the replacement policy.
func TestCacheMatchesReferenceModel(t *testing.T) {
	configs := []Config{
		{Name: "tiny", Size: 1024, Assoc: 2, LineSize: 64},
		{Name: "dm", Size: 4096, Assoc: 1, LineSize: 64},
		{Name: "wide", Size: 16384, Assoc: 8, LineSize: 32},
		P4L1D,
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			c := New(cfg)
			ref := newRefLRU(cfg)
			r := rand.New(rand.NewSource(99))
			// Mix of localized and scattered addresses to exercise both
			// hits and evictions.
			hot := make([]uint64, 32)
			for i := range hot {
				hot[i] = uint64(r.Intn(1 << 16))
			}
			for i := 0; i < 50_000; i++ {
				var addr uint64
				if r.Intn(2) == 0 {
					addr = hot[r.Intn(len(hot))]
				} else {
					addr = uint64(r.Intn(1 << 22))
				}
				got := c.Access(addr).Hit
				want := ref.access(addr)
				if got != want {
					t.Fatalf("access %d (addr %#x): cache hit=%v, reference hit=%v",
						i, addr, got, want)
				}
			}
		})
	}
}

// TestInstallAgainstModel checks that prefetch installs behave like an
// access for residency purposes (minus recency subtleties the model
// shares).
func TestInstallThenAccessResidency(t *testing.T) {
	cfg := Config{Name: "t", Size: 2048, Assoc: 4, LineSize: 64}
	c := New(cfg)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		addr := uint64(r.Intn(1 << 18))
		if r.Intn(4) == 0 {
			c.Install(addr, 0)
			if !c.Probe(addr) {
				t.Fatalf("line %#x absent immediately after install", addr)
			}
		} else {
			c.Access(addr)
			if !c.Probe(addr) {
				t.Fatalf("line %#x absent immediately after access", addr)
			}
		}
	}
}
