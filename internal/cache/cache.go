// Package cache models set-associative caches, multi-level hierarchies, and
// the Pentium 4 hardware prefetchers (adjacent cache line and stride).
//
// The package serves three roles in the reproduction:
//
//  1. as the ground-truth "hardware" the guest machine runs against (the
//     Hierarchy type implements vm.MemModel, and its statistics are what
//     the hardware performance counter model reads);
//  2. as the fast mini-simulator inside UMI's profile analyzer (a single
//     Cache with LRU replacement, exactly the simulator §5 describes);
//  3. as the engine of the Cachegrind-style offline simulator.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name     string
	Size     int // total bytes
	Assoc    int // ways
	LineSize int // bytes, power of two
	// Policy is the replacement policy; the zero value is LRU, the
	// paper's choice.
	Policy Policy
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Size / (c.Assoc * c.LineSize) }

// Validate checks the configuration is realizable.
func (c Config) Validate() error {
	if c.Size <= 0 || c.Assoc <= 0 || c.LineSize <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, c)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineSize)
	}
	sets := c.Sets()
	if sets <= 0 || c.Size != sets*c.Assoc*c.LineSize {
		return fmt.Errorf("cache %s: size %d not divisible into %d-way sets of %d-byte lines",
			c.Name, c.Size, c.Assoc, c.LineSize)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	if !c.Policy.Valid() {
		return fmt.Errorf("cache %s: invalid replacement policy %d", c.Name, int(c.Policy))
	}
	if c.Policy == PLRU && c.Assoc&(c.Assoc-1) != 0 {
		return fmt.Errorf("cache %s: PLRU requires power-of-two associativity, got %d", c.Name, c.Assoc)
	}
	return nil
}

func (c Config) String() string {
	return fmt.Sprintf("%s: %dKB %d-way %dB lines (%d sets)",
		c.Name, c.Size/1024, c.Assoc, c.LineSize, c.Sets())
}

// Evaluation-platform cache configurations from §6 of the paper.
var (
	// PentiumIV (§6): 8KB 4-way L1D, 512KB 8-way unified L2, 64B lines.
	P4L1D = Config{Name: "P4-L1D", Size: 8 * 1024, Assoc: 4, LineSize: 64}
	P4L2  = Config{Name: "P4-L2", Size: 512 * 1024, Assoc: 8, LineSize: 64}

	// AMD K7 (§6): 64KB 2-way L1D, 256KB 16-way unified L2, 64B lines.
	K7L1D = Config{Name: "K7-L1D", Size: 64 * 1024, Assoc: 2, LineSize: 64}
	K7L2  = Config{Name: "K7-L2", Size: 256 * 1024, Assoc: 16, LineSize: 64}
)

// hotLine holds the fields a demand-access probe reads: the tag compare and
// the LRU recency stamp. Splitting these from the prefetch bookkeeping keeps
// a set's probe footprint to one hardware cache line for typical
// associativities, so the mini-simulator's inner loop stays resident.
type hotLine struct {
	tag     uint64
	lastUse uint64 // logical time of last touch (LRU); install time for FIFO
	valid   bool
}

// coldLine holds the prefetch bookkeeping a demand access only touches when
// prefetch state actually exists (coldActive): coverage marking and the
// in-flight fill deadline.
type coldLine struct {
	// readyAt is the logical time at which an in-flight fill completes. A
	// demand access arriving earlier pays a late-fill penalty.
	readyAt uint64
	// prefetched marks a line installed by a prefetcher and not yet
	// touched by a demand access; used for prefetch coverage accounting.
	prefetched bool
}

// Cache is one set-associative cache level with true-LRU replacement, as in
// the paper's mini-simulator ("an empty line, or the oldest line, is
// selected"; "we use a counter to simulate time").
//
// Lines live in two contiguous backing arrays indexed by set*assoc+way: hot
// probe fields in hot, prefetch fields in cold. The flat layout removes the
// per-probe pointer dereference and bounds check a [][]line representation
// costs, and the hot/cold split halves the bytes a demand scan touches.
type Cache struct {
	cfg       Config
	hot       []hotLine // Sets()*Assoc entries, way-major within each set
	cold      []coldLine
	assoc     int
	setMask   uint64
	lineShift uint
	setBits   uint
	clock     uint64

	// coldActive is true while any cold entry is non-zero, so the LRU
	// demand fast path can skip prefetch bookkeeping entirely while false.
	// coldLive counts those entries exactly: it rises when a prefetch
	// installs state and falls when a demand hit consumes it or an eviction
	// overwrites it, so coldActive clears — and the fast path re-engages —
	// as soon as the last prefetched line is gone, not only at Flush.
	coldActive bool
	coldLive   int

	policy   Policy
	rngState uint64   // Random policy state
	plruBits []uint64 // PLRU tree bits, one word per set

	stats Stats
}

// Stats counts the demand traffic a cache has simulated: accesses and
// misses through Access, and evictions of valid lines (demand or prefetch
// installs alike). Plain fields, not atomics — a Cache already requires a
// single owner; the UMI layer mirrors these into its atomic registry at
// synchronization points. Flush keeps the counts running (the analyzer's
// periodic flush is part of one logical run); Reset zeroes them along with
// everything else; Clone copies them so a clone's deltas start from the
// template's totals.
type Stats struct {
	Accesses  uint64
	Misses    uint64
	Evictions uint64
}

// Stats returns the traffic counters accumulated so far.
func (c *Cache) Stats() Stats { return c.stats }

// rngSeed is the initial xorshift state for the Random policy; fixed so
// fresh, Reset, and Cloned caches replay identically.
const rngSeed = 0x9E3779B97F4A7C15

// New builds a cache from the config, panicking on invalid geometry
// (configurations are build-time constants in this codebase).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift != cfg.LineSize {
		shift++
	}
	setBits := uint(0)
	for 1<<setBits != cfg.Sets() {
		setBits++
	}
	n := cfg.Sets() * cfg.Assoc
	c := &Cache{cfg: cfg, hot: make([]hotLine, n), cold: make([]coldLine, n),
		assoc: cfg.Assoc, setMask: uint64(cfg.Sets() - 1), lineShift: shift,
		setBits: setBits, policy: cfg.Policy, rngState: rngSeed}
	if cfg.Policy == PLRU {
		c.plruBits = make([]uint64, cfg.Sets())
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineOf returns the line-aligned address containing addr.
func (c *Cache) LineOf(addr uint64) uint64 { return addr &^ (uint64(c.cfg.LineSize) - 1) }

func (c *Cache) setAndTag(addr uint64) (uint64, uint64) {
	l := addr >> c.lineShift
	return l & c.setMask, l >> c.setBits
}

// AccessResult describes the outcome of one cache access.
type AccessResult struct {
	Hit bool
	// PrefetchedHit is set when the access hit a line that was installed
	// by a prefetcher and had not yet been demanded: a useful prefetch.
	PrefetchedHit bool
	// Late is set when the access hit an in-flight fill that had not yet
	// completed (the prefetch was issued too late to hide all latency).
	Late bool
}

// Access performs one demand access. On miss the line is installed
// (demand fill completes immediately).
func (c *Cache) Access(addr uint64) AccessResult {
	if c.policy == LRU && !c.coldActive {
		return c.accessLRUDemand(addr)
	}
	return c.accessSlow(addr)
}

// accessLRUDemand is the specialized fast path for the configuration the
// profile analyzer always runs: LRU replacement with no prefetch state. One
// fused scan over the set's hot lines resolves the tag compare, the LRU
// victim, and the first invalid way, touching no cold fields. Behaviour is
// exactly accessSlow's under these preconditions (cold entries are all zero
// while coldActive is false, and plruTouch is a no-op for LRU).
func (c *Cache) accessLRUDemand(addr uint64) AccessResult {
	c.clock++
	c.stats.Accesses++
	l := addr >> c.lineShift
	tag := l >> c.setBits
	base := int(l&c.setMask) * c.assoc
	hot := c.hot[base : base+c.assoc]
	invalid := -1
	lruWay, lruUse := 0, ^uint64(0)
	for i := range hot {
		h := &hot[i]
		if !h.valid {
			if invalid < 0 {
				invalid = i
			}
			continue
		}
		if h.tag == tag {
			h.lastUse = c.clock
			return AccessResult{Hit: true}
		}
		if h.lastUse < lruUse {
			lruWay, lruUse = i, h.lastUse
		}
	}
	c.stats.Misses++
	victim := invalid
	if victim < 0 {
		victim = lruWay
		c.stats.Evictions++
	}
	hot[victim] = hotLine{tag: tag, lastUse: c.clock, valid: true}
	return AccessResult{}
}

// accessSlow is the general demand access: any policy, prefetch state live.
func (c *Cache) accessSlow(addr uint64) AccessResult {
	c.clock++
	c.stats.Accesses++
	set, tag := c.setAndTag(addr)
	base := int(set) * c.assoc
	for i := 0; i < c.assoc; i++ {
		h := &c.hot[base+i]
		if h.valid && h.tag == tag {
			res := AccessResult{Hit: true}
			if cd := &c.cold[base+i]; cd.prefetched || cd.readyAt != 0 {
				if cd.prefetched {
					res.PrefetchedHit = true
				}
				if cd.readyAt > c.clock {
					res.Late = true
				}
				// Clear the whole entry, not just the consumed fields: a
				// stale readyAt at or before the clock can never fire again
				// (the Late check and the Install clamp both require a
				// future deadline), so zeroing it is behaviour-neutral and
				// keeps coldLive an exact count of non-zero entries.
				*cd = coldLine{}
				c.coldDec()
			}
			if c.policy != FIFO {
				h.lastUse = c.clock // FIFO keeps install time
			}
			c.plruTouch(set, i)
			return res
		}
	}
	c.stats.Misses++
	c.install(set, tag, false, 0)
	return AccessResult{}
}

// Probe reports whether addr is resident without updating any state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.setAndTag(addr)
	base := int(set) * c.assoc
	for i := 0; i < c.assoc; i++ {
		h := &c.hot[base+i]
		if h.valid && h.tag == tag {
			return true
		}
	}
	return false
}

// Install brings addr's line in as a prefetch that completes after delay
// further accesses. When the line is already resident with a fill still in
// flight, the re-issued prefetch clamps the completion time to
// min(readyAt, clock+delay): a closer prefetch accelerates the fill, and a
// farther one never pushes it back. A resident, completed line is untouched.
func (c *Cache) Install(addr uint64, delay uint64) {
	set, tag := c.setAndTag(addr)
	base := int(set) * c.assoc
	for i := 0; i < c.assoc; i++ {
		h := &c.hot[base+i]
		if h.valid && h.tag == tag {
			if cd := &c.cold[base+i]; c.clock+delay < cd.readyAt {
				cd.readyAt = c.clock + delay
			}
			return
		}
	}
	c.install(set, tag, true, c.clock+delay)
}

func (c *Cache) install(set, tag uint64, prefetched bool, readyAt uint64) {
	base := int(set) * c.assoc
	victim := -1
	for i := 0; i < c.assoc; i++ {
		if !c.hot[base+i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = c.victim(set, c.hot[base:base+c.assoc])
		c.stats.Evictions++
	}
	c.hot[base+victim] = hotLine{tag: tag, valid: true, lastUse: c.clock}
	if cd := &c.cold[base+victim]; cd.prefetched || cd.readyAt != 0 {
		c.coldDec() // evicting a line that still carried prefetch state
	}
	c.cold[base+victim] = coldLine{prefetched: prefetched, readyAt: readyAt}
	if prefetched || readyAt != 0 {
		c.coldLive++
		c.coldActive = true
	}
	c.plruTouch(set, victim)
}

// coldDec retires one live cold entry, re-arming the fused LRU demand fast
// path the moment the last one is gone.
func (c *Cache) coldDec() {
	c.coldLive--
	if c.coldLive == 0 {
		c.coldActive = false
	}
}

// PrefetchResident counts lines still carrying prefetch state (coverage
// marks or in-flight fill deadlines); the demand fast path is available
// exactly while this is zero.
func (c *Cache) PrefetchResident() int { return c.coldLive }

// Flush invalidates the entire cache, including replacement-policy recency
// state: with every line gone, stale PLRU tree bits would otherwise steer
// victim selection by pre-flush history. The clock and statistics keep
// running — the paper's analyzer flushes its logical cache when more than
// 1M cycles have elapsed since it last ran, to avoid long-term
// contamination, and that is a pause within one logical run, not a restart.
func (c *Cache) Flush() {
	for i := range c.hot {
		c.hot[i] = hotLine{}
	}
	for i := range c.cold {
		c.cold[i] = coldLine{}
	}
	for i := range c.plruBits {
		c.plruBits[i] = 0
	}
	c.coldActive = false
	c.coldLive = 0
}

// Clone returns a deep copy of the cache: geometry, line contents, the
// recency clock, and policy state (PLRU tree bits, Random RNG state) are
// all duplicated, so the copy replays any access sequence exactly as the
// original would. Per-worker simulators in parallel experiment cells clone
// a warmed template instead of re-warming from cold; the original and the
// clone share nothing afterwards.
func (c *Cache) Clone() *Cache {
	n := New(c.cfg)
	n.clock = c.clock
	n.rngState = c.rngState
	n.stats = c.stats
	n.coldActive = c.coldActive
	n.coldLive = c.coldLive
	copy(n.hot, c.hot)
	copy(n.cold, c.cold)
	copy(n.plruBits, c.plruBits)
	return n
}

// Reset restores the cache to its just-constructed state: contents
// invalidated and the recency clock and policy state rewound. Unlike
// Flush — which keeps the clock running, as the analyzer's periodic flush
// wants — Reset makes a reused cache indistinguishable from a fresh one,
// which is what a harness reusing an analyzer across runs needs.
func (c *Cache) Reset() {
	c.Flush() // clears lines, prefetch state, and PLRU bits
	c.clock = 0
	c.rngState = rngSeed
	c.stats = Stats{}
}

// Resident counts valid lines (for tests).
func (c *Cache) Resident() int {
	n := 0
	for i := range c.hot {
		if c.hot[i].valid {
			n++
		}
	}
	return n
}
