// Package cache models set-associative caches, multi-level hierarchies, and
// the Pentium 4 hardware prefetchers (adjacent cache line and stride).
//
// The package serves three roles in the reproduction:
//
//  1. as the ground-truth "hardware" the guest machine runs against (the
//     Hierarchy type implements vm.MemModel, and its statistics are what
//     the hardware performance counter model reads);
//  2. as the fast mini-simulator inside UMI's profile analyzer (a single
//     Cache with LRU replacement, exactly the simulator §5 describes);
//  3. as the engine of the Cachegrind-style offline simulator.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes one cache level.
type Config struct {
	Name     string
	Size     int // total bytes
	Assoc    int // ways
	LineSize int // bytes, power of two
	// Policy is the replacement policy; the zero value is LRU, the
	// paper's choice.
	Policy Policy
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Size / (c.Assoc * c.LineSize) }

// Validate checks the configuration is realizable.
func (c Config) Validate() error {
	if c.Size <= 0 || c.Assoc <= 0 || c.LineSize <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, c)
	}
	if c.Assoc > 64 {
		// One valid-bitmask word per set; real hardware tops out far below.
		return fmt.Errorf("cache %s: associativity %d exceeds the 64-way limit", c.Name, c.Assoc)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineSize)
	}
	sets := c.Sets()
	if sets <= 0 || c.Size != sets*c.Assoc*c.LineSize {
		return fmt.Errorf("cache %s: size %d not divisible into %d-way sets of %d-byte lines",
			c.Name, c.Size, c.Assoc, c.LineSize)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	if !c.Policy.Valid() {
		return fmt.Errorf("cache %s: invalid replacement policy %d", c.Name, int(c.Policy))
	}
	if c.Policy == PLRU && c.Assoc&(c.Assoc-1) != 0 {
		return fmt.Errorf("cache %s: PLRU requires power-of-two associativity, got %d", c.Name, c.Assoc)
	}
	return nil
}

func (c Config) String() string {
	return fmt.Sprintf("%s: %dKB %d-way %dB lines (%d sets)",
		c.Name, c.Size/1024, c.Assoc, c.LineSize, c.Sets())
}

// Evaluation-platform cache configurations from §6 of the paper.
var (
	// PentiumIV (§6): 8KB 4-way L1D, 512KB 8-way unified L2, 64B lines.
	P4L1D = Config{Name: "P4-L1D", Size: 8 * 1024, Assoc: 4, LineSize: 64}
	P4L2  = Config{Name: "P4-L2", Size: 512 * 1024, Assoc: 8, LineSize: 64}

	// AMD K7 (§6): 64KB 2-way L1D, 256KB 16-way unified L2, 64B lines.
	K7L1D = Config{Name: "K7-L1D", Size: 64 * 1024, Assoc: 2, LineSize: 64}
	K7L2  = Config{Name: "K7-L2", Size: 256 * 1024, Assoc: 16, LineSize: 64}
)

// coldLine holds the prefetch bookkeeping a demand access only touches when
// prefetch state actually exists (coldActive): coverage marking and the
// in-flight fill deadline.
type coldLine struct {
	// readyAt is the logical time at which an in-flight fill completes. A
	// demand access arriving earlier pays a late-fill penalty.
	readyAt uint64
	// prefetched marks a line installed by a prefetcher and not yet
	// touched by a demand access; used for prefetch coverage accounting.
	prefetched bool
}

// Cache is one set-associative cache level with true-LRU replacement by
// default, as in the paper's mini-simulator ("an empty line, or the oldest
// line, is selected"; "we use a counter to simulate time").
//
// Line state lives in parallel lanes indexed by set*assoc+way, way-major
// within each set, so the bytes a demand scan touches are exactly the lane
// it needs and nothing else:
//
//   - tags: the tag-compare lane the hit scan walks — 8 bytes per way, so
//     a whole 8-way set's tags fit one host cache line;
//   - lastUse: the recency lane (install time under FIFO), written on hit
//     and read only by the LRU victim scan on an eviction;
//   - valid: one bitmask word per set (bit w = way w valid), which turns
//     validity checks, invalid-way selection, and residency counting into
//     single bit operations;
//   - cold: prefetch bookkeeping, consulted only while coldActive.
type Cache struct {
	cfg  Config
	tags []uint64 // Sets()*Assoc entries, way-major within each set
	// lastUse is the wide-LRU recency lane (packed timestamps, see
	// packUse); allocated only for LRU caches wider than 8 ways. Narrow
	// LRU caches keep their whole recency stack in ages instead.
	lastUse []uint64
	// ages holds one SWAR age vector per set (LRU, assoc ≤ 8 only): an
	// age byte per way, 0 = most recent. See hotpath.go.
	ages  []uint64
	valid []uint64 // one word per set
	cold  []coldLine

	assoc     int
	wayMask   uint64 // low Assoc bits set: a full set's valid word
	wayBits   uint   // bits.Len(assoc-1): shift for packed recency stamps
	setMask   uint64
	lineShift uint
	setBits   uint
	clock     uint64

	// coldActive is true while any cold entry is non-zero, so the fused
	// demand fast paths can skip prefetch bookkeeping entirely while false.
	// coldLive counts those entries exactly: it rises when a prefetch
	// installs state and falls when a demand hit consumes it or an eviction
	// overwrites it, so coldActive clears — and the fast path re-engages —
	// as soon as the last prefetched line is gone, not only at Flush.
	coldActive bool
	coldLive   int

	// fast caches the fused-path selection (policy × layout × coldActive)
	// as a single byte, so Access pays one load and one switch instead of
	// re-deriving the choice per call. refast() recomputes it at every
	// coldActive transition.
	fast uint8

	policy   Policy
	rngState uint64   // Random policy state
	plruBits []uint64 // PLRU tree bits, one word per set

	// SWAR masks for the age-vector updates, restricted to the low assoc
	// bytes: the per-byte increment (0x01s), the per-byte high bits
	// (0x80s), and assoc-1 broadcast for the victim scan.
	ageInc  uint64
	ageGE   uint64
	ageVict uint64

	// fifoNext is FIFO's round-robin victim lane: ways fill in index order
	// (fills always take the lowest invalid way and lines only invalidate
	// wholesale at Flush), so once a set is full its oldest line is exactly
	// the way this pointer names — no install-time scan needed. Every
	// install path advances it to victim+1 mod assoc, which keeps it equal
	// to the min-install-time scan the slow path used to do.
	fifoNext []int32

	// PLRU dispatch tables, built once per New: plruVict maps a set's tree
	// bits straight to the victim way (assoc ≤ plruTableMaxAssoc only —
	// the table is 2^(assoc-1) entries); plruOn/plruOff are per-way touch
	// masks replacing the level-by-level tree walk on every touch.
	plruVict []uint8
	plruOn   []uint64
	plruOff  []uint64

	stats Stats
}

// Stats counts the demand traffic a cache has simulated: accesses and
// misses through Access, and evictions of valid lines (demand or prefetch
// installs alike). Plain fields, not atomics — a Cache already requires a
// single owner; the UMI layer mirrors these into its atomic registry at
// synchronization points. Flush keeps the counts running (the analyzer's
// periodic flush is part of one logical run); Reset zeroes them along with
// everything else; Clone copies them so a clone's deltas start from the
// template's totals.
type Stats struct {
	Accesses  uint64
	Misses    uint64
	Evictions uint64
}

// Stats returns the traffic counters accumulated so far. The access count
// is read straight off the recency clock: the clock ticks exactly once
// per demand access (and never for prefetch installs), so the two were
// always the same number and the hot paths only maintain one.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.Accesses = c.clock
	return s
}

// rngSeed is the initial xorshift state for the Random policy; fixed so
// fresh, Reset, and Cloned caches replay identically.
const rngSeed = 0x9E3779B97F4A7C15

// plruTableMaxAssoc bounds the bits→victim lookup table: 16 ways is a
// 32KiB table (2^15 entries); larger trees fall back to the walk.
const plruTableMaxAssoc = 16

// New builds a cache from the config, panicking on invalid geometry
// (configurations are build-time constants in this codebase).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift != cfg.LineSize {
		shift++
	}
	setBits := uint(0)
	for 1<<setBits != cfg.Sets() {
		setBits++
	}
	n := cfg.Sets() * cfg.Assoc
	c := &Cache{cfg: cfg,
		tags:  make([]uint64, n),
		valid: make([]uint64, cfg.Sets()), cold: make([]coldLine, n),
		assoc: cfg.Assoc, wayMask: ^uint64(0) >> (64 - uint(cfg.Assoc)),
		wayBits: uint(bits.Len(uint(cfg.Assoc - 1))),
		setMask: uint64(cfg.Sets() - 1), lineShift: shift,
		setBits: setBits, policy: cfg.Policy, rngState: rngSeed}
	// Invalid ways hold invalidTag so the 8-way fused path's sign-AND miss
	// test is exact for partial sets too (see hotpath.go).
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	switch cfg.Policy {
	case LRU:
		if cfg.Assoc <= 8 {
			c.ages = make([]uint64, cfg.Sets())
			span := ^uint64(0)
			if cfg.Assoc < 8 {
				span = 1<<(8*uint(cfg.Assoc)) - 1
			}
			c.ageInc = lowBytes & span
			c.ageGE = highBytes & span
			c.ageVict = uint64(cfg.Assoc-1) * lowBytes
		} else {
			c.lastUse = make([]uint64, n)
		}
	case PLRU:
		c.plruBits = make([]uint64, cfg.Sets())
		c.plruOn, c.plruOff = plruTouchMasks(cfg.Assoc)
		if cfg.Assoc <= plruTableMaxAssoc {
			c.plruVict = plruVictimTable(cfg.Assoc)
		}
	case FIFO:
		c.fifoNext = make([]int32, cfg.Sets())
	}
	c.refast()
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineOf returns the line-aligned address containing addr.
func (c *Cache) LineOf(addr uint64) uint64 { return addr &^ (uint64(c.cfg.LineSize) - 1) }

func (c *Cache) setAndTag(addr uint64) (uint64, uint64) {
	l := addr >> c.lineShift
	return l & c.setMask, l >> c.setBits
}

// AccessResult describes the outcome of one cache access.
type AccessResult struct {
	Hit bool
	// PrefetchedHit is set when the access hit a line that was installed
	// by a prefetcher and had not yet been demanded: a useful prefetch.
	PrefetchedHit bool
	// Late is set when the access hit an in-flight fill that had not yet
	// completed (the prefetch was issued too late to hide all latency).
	Late bool
}

// Fused-path selector values (Cache.fast). fpSlow is the zero value so a
// cache that never calls refast stays on the always-correct general path.
const (
	fpSlow uint8 = iota
	fpLRU8
	fpLRUNarrow
	fpLRUWide
	fpFIFO
	fpPLRU
)

// refast recomputes the fused-path selector. Call after anything that
// changes its inputs — in practice only coldActive transitions (policy and
// layout are fixed at New).
func (c *Cache) refast() {
	if c.coldActive {
		c.fast = fpSlow
		return
	}
	switch c.policy {
	case LRU:
		switch {
		case c.assoc == 8 && c.lineShift+c.setBits > 0:
			// The 8-way path's exact sign-AND miss test needs invalidTag to
			// be unreachable as a lookup tag, which one bit of shift
			// guarantees (tag < 2^63). A degenerate 1-byte-line single-set
			// geometry falls back to the generic narrow path.
			c.fast = fpLRU8
		case c.ages != nil:
			c.fast = fpLRUNarrow
		default:
			c.fast = fpLRUWide
		}
	case FIFO:
		c.fast = fpFIFO
	case PLRU:
		c.fast = fpPLRU
	default: // Random: victim choice consumes RNG state per access
		c.fast = fpSlow
	}
}

// Access performs one demand access. On miss the line is installed
// (demand fill completes immediately).
func (c *Cache) Access(addr uint64) AccessResult {
	switch c.fast {
	case fpLRU8:
		return c.accessLRU8(addr)
	case fpLRUNarrow:
		return c.accessLRUNarrow(addr)
	case fpLRUWide:
		return c.accessLRUWide(addr)
	case fpFIFO:
		return c.accessFIFODemand(addr)
	case fpPLRU:
		return c.accessPLRUDemand(addr)
	}
	return c.accessSlow(addr)
}

// accessLRUNarrow is the fused LRU demand path for assoc ≤ 8 at widths
// other than 8 (which has its own unrolled body, accessLRU8): generic
// branchless tag scan plus the SWAR age-vector recency update. Behaviour
// is exactly accessSlow's under the fast-path preconditions (cold entries
// are all zero while coldActive is false, and plruTouch is a no-op for
// LRU).
func (c *Cache) accessLRUNarrow(addr uint64) AccessResult {
	c.clock++
	l := addr >> c.lineShift
	set := l & c.setMask
	tag := l >> c.setBits
	base := int(set) * c.assoc
	tags := c.tags[base : base+c.assoc : base+c.assoc]
	vm := c.valid[set]
	if vm == c.wayMask {
		if missAllFull(tags, tag) {
			c.stats.Misses++
			c.stats.Evictions++
			way := ageEvictWay(c.ages[set], c.ageVict, c.ageGE)
			tags[way] = tag
			c.ages[set] = ageInstall(c.ages[set], way, c.ageInc)
			return AccessResult{}
		}
		way := bits.TrailingZeros64(matchWays(tags, tag, vm))
		c.ages[set] = ageTouch(c.ages[set], way, c.ageInc, c.ageGE)
		return AccessResult{Hit: true}
	}
	if m := matchWays(tags, tag, vm); m != 0 {
		way := bits.TrailingZeros64(m)
		c.ages[set] = ageTouch(c.ages[set], way, c.ageInc, c.ageGE)
		return AccessResult{Hit: true}
	}
	c.stats.Misses++
	way := bits.TrailingZeros64(^vm & c.wayMask)
	c.valid[set] = vm | 1<<uint(way)
	tags[way] = tag
	c.ages[set] = ageInstall(c.ages[set], way, c.ageInc)
	return AccessResult{}
}

// accessLRUWide is the fused LRU demand path for assoc > 8: the recency
// stack no longer fits one SWAR word, so per-way packed timestamps in the
// lastUse lane with a linear minimum scan take over.
func (c *Cache) accessLRUWide(addr uint64) AccessResult {
	c.clock++
	l := addr >> c.lineShift
	set := l & c.setMask
	tag := l >> c.setBits
	base := int(set) * c.assoc
	tags := c.tags[base : base+c.assoc : base+c.assoc]
	vm := c.valid[set]
	if vm == c.wayMask {
		if missAllFull(tags, tag) {
			c.stats.Misses++
			c.stats.Evictions++
			use := c.lastUse[base : base+c.assoc : base+c.assoc]
			way := minWay(use, c.wayBits)
			tags[way] = tag
			use[way] = packUse(c.clock, c.wayBits, way)
			return AccessResult{}
		}
		way := bits.TrailingZeros64(matchWays(tags, tag, vm))
		c.lastUse[base+way] = packUse(c.clock, c.wayBits, way)
		return AccessResult{Hit: true}
	}
	if m := matchWays(tags, tag, vm); m != 0 {
		way := bits.TrailingZeros64(m)
		c.lastUse[base+way] = packUse(c.clock, c.wayBits, way)
		return AccessResult{Hit: true}
	}
	c.stats.Misses++
	way := bits.TrailingZeros64(^vm & c.wayMask)
	c.valid[set] = vm | 1<<uint(way)
	tags[way] = tag
	c.lastUse[base+way] = packUse(c.clock, c.wayBits, way)
	return AccessResult{}
}

// accessFIFODemand is FIFO's fused demand path: hits touch nothing (the
// recency lane is an LRU-only structure), and a full set's victim comes
// straight off the fifoNext pointer — no install-time scan at all.
func (c *Cache) accessFIFODemand(addr uint64) AccessResult {
	c.clock++
	l := addr >> c.lineShift
	set := l & c.setMask
	tag := l >> c.setBits
	base := int(set) * c.assoc
	tags := c.tags[base : base+c.assoc : base+c.assoc]
	vm := c.valid[set]
	if vm == c.wayMask {
		if !missAllFull(tags, tag) {
			return AccessResult{Hit: true}
		}
		c.stats.Misses++
		c.stats.Evictions++
		way := int(c.fifoNext[set])
		next := int32(way) + 1
		if int(next) == c.assoc {
			next = 0
		}
		c.fifoNext[set] = next
		tags[way] = tag
		return AccessResult{}
	}
	if matchWays(tags, tag, vm) != 0 {
		return AccessResult{Hit: true}
	}
	c.stats.Misses++
	way := bits.TrailingZeros64(^vm & c.wayMask)
	c.valid[set] = vm | 1<<uint(way)
	next := int32(way) + 1
	if int(next) == c.assoc {
		next = 0
	}
	c.fifoNext[set] = next
	tags[way] = tag
	return AccessResult{}
}

// accessPLRUDemand is PLRU's fused demand path: the victim comes from the
// bits→way table (or the tree walk past plruTableMaxAssoc ways) and the
// touch is two precomputed mask operations instead of a level walk.
func (c *Cache) accessPLRUDemand(addr uint64) AccessResult {
	c.clock++
	l := addr >> c.lineShift
	set := l & c.setMask
	tag := l >> c.setBits
	base := int(set) * c.assoc
	tags := c.tags[base : base+c.assoc : base+c.assoc]
	vm := c.valid[set]
	if m := matchWays(tags, tag, vm); m != 0 {
		way := bits.TrailingZeros64(m)
		c.plruBits[set] = c.plruBits[set]&^c.plruOff[way] | c.plruOn[way]
		return AccessResult{Hit: true}
	}
	c.stats.Misses++
	var way int
	if inv := ^vm & c.wayMask; inv != 0 {
		way = bits.TrailingZeros64(inv)
		c.valid[set] = vm | 1<<uint(way)
	} else {
		way = c.plruVictim(set)
		c.stats.Evictions++
	}
	tags[way] = tag
	c.plruBits[set] = c.plruBits[set]&^c.plruOff[way] | c.plruOn[way]
	return AccessResult{}
}

// AccessBatch performs one demand access per element of addrs, in order,
// writing the i-th outcome into res[i]. It is exactly equivalent to
// calling Access once per element — same results, statistics, clock
// stamps, and replacement state — but amortizes the policy dispatch and
// the clock/statistics read-modify-writes across the whole batch, which
// is what lets the analyzer replay a profile column-by-column without
// paying per-reference entry overhead. res must be at least as long as
// addrs; excess entries are untouched.
func (c *Cache) AccessBatch(addrs []uint64, res []AccessResult) {
	res = res[:len(addrs)]
	switch c.fast {
	case fpLRU8:
		c.batchLRU8(addrs, res)
		return
	case fpLRUNarrow, fpLRUWide:
		c.batchLRU(addrs, res)
		return
	case fpFIFO:
		c.batchFIFO(addrs, res)
		return
	case fpPLRU:
		c.batchPLRU(addrs, res)
		return
	}
	// General path: Random policy, or live prefetch state. Dispatch per
	// element through Access, not accessSlow — draining the last cold
	// entry mid-batch re-arms the fused path exactly as scalar calls would.
	for i, a := range addrs {
		res[i] = c.Access(a)
	}
}

// batchLRU runs the LRU demand paths over a batch with the clock and
// statistics hoisted into locals.
func (c *Cache) batchLRU(addrs []uint64, res []AccessResult) {
	clock := c.clock
	var misses, evicts uint64
	if c.ages != nil { // narrow: SWAR age vectors
		for i, addr := range addrs {
			clock++
			l := addr >> c.lineShift
			set := l & c.setMask
			tag := l >> c.setBits
			base := int(set) * c.assoc
			tags := c.tags[base : base+c.assoc : base+c.assoc]
			vm := c.valid[set]
			if vm == c.wayMask && missAllFull(tags, tag) {
				misses++
				evicts++
				way := ageEvictWay(c.ages[set], c.ageVict, c.ageGE)
				tags[way] = tag
				c.ages[set] = ageInstall(c.ages[set], way, c.ageInc)
				res[i] = AccessResult{}
				continue
			}
			if m := matchWays(tags, tag, vm); m != 0 {
				way := bits.TrailingZeros64(m)
				c.ages[set] = ageTouch(c.ages[set], way, c.ageInc, c.ageGE)
				res[i] = AccessResult{Hit: true}
				continue
			}
			misses++
			way := bits.TrailingZeros64(^vm & c.wayMask)
			c.valid[set] = vm | 1<<uint(way)
			tags[way] = tag
			c.ages[set] = ageInstall(c.ages[set], way, c.ageInc)
			res[i] = AccessResult{}
		}
	} else { // wide: packed timestamps
		for i, addr := range addrs {
			clock++
			l := addr >> c.lineShift
			set := l & c.setMask
			tag := l >> c.setBits
			base := int(set) * c.assoc
			tags := c.tags[base : base+c.assoc : base+c.assoc]
			vm := c.valid[set]
			if vm == c.wayMask && missAllFull(tags, tag) {
				misses++
				evicts++
				use := c.lastUse[base : base+c.assoc : base+c.assoc]
				way := minWay(use, c.wayBits)
				tags[way] = tag
				use[way] = packUse(clock, c.wayBits, way)
				res[i] = AccessResult{}
				continue
			}
			if m := matchWays(tags, tag, vm); m != 0 {
				way := bits.TrailingZeros64(m)
				c.lastUse[base+way] = packUse(clock, c.wayBits, way)
				res[i] = AccessResult{Hit: true}
				continue
			}
			misses++
			way := bits.TrailingZeros64(^vm & c.wayMask)
			c.valid[set] = vm | 1<<uint(way)
			tags[way] = tag
			c.lastUse[base+way] = packUse(clock, c.wayBits, way)
			res[i] = AccessResult{}
		}
	}
	c.clock = clock
	c.stats.Misses += misses
	c.stats.Evictions += evicts
}

// batchFIFO is accessFIFODemand over a batch.
func (c *Cache) batchFIFO(addrs []uint64, res []AccessResult) {
	clock := c.clock
	var misses, evicts uint64
	for i, addr := range addrs {
		clock++
		l := addr >> c.lineShift
		set := l & c.setMask
		tag := l >> c.setBits
		base := int(set) * c.assoc
		tags := c.tags[base : base+c.assoc : base+c.assoc]
		vm := c.valid[set]
		if vm == c.wayMask {
			if !missAllFull(tags, tag) {
				res[i] = AccessResult{Hit: true}
				continue
			}
			misses++
			evicts++
			way := int(c.fifoNext[set])
			next := int32(way) + 1
			if int(next) == c.assoc {
				next = 0
			}
			c.fifoNext[set] = next
			tags[way] = tag
			res[i] = AccessResult{}
			continue
		}
		if matchWays(tags, tag, vm) != 0 {
			res[i] = AccessResult{Hit: true}
			continue
		}
		misses++
		way := bits.TrailingZeros64(^vm & c.wayMask)
		c.valid[set] = vm | 1<<uint(way)
		next := int32(way) + 1
		if int(next) == c.assoc {
			next = 0
		}
		c.fifoNext[set] = next
		tags[way] = tag
		res[i] = AccessResult{}
	}
	c.clock = clock
	c.stats.Misses += misses
	c.stats.Evictions += evicts
}

// batchPLRU is accessPLRUDemand over a batch.
func (c *Cache) batchPLRU(addrs []uint64, res []AccessResult) {
	clock := c.clock
	var misses, evicts uint64
	for i, addr := range addrs {
		clock++
		l := addr >> c.lineShift
		set := l & c.setMask
		tag := l >> c.setBits
		base := int(set) * c.assoc
		tags := c.tags[base : base+c.assoc : base+c.assoc]
		vm := c.valid[set]
		if m := matchWays(tags, tag, vm); m != 0 {
			way := bits.TrailingZeros64(m)
			c.plruBits[set] = c.plruBits[set]&^c.plruOff[way] | c.plruOn[way]
			res[i] = AccessResult{Hit: true}
			continue
		}
		misses++
		var way int
		if inv := ^vm & c.wayMask; inv != 0 {
			way = bits.TrailingZeros64(inv)
			c.valid[set] = vm | 1<<uint(way)
		} else {
			way = c.plruVictim(set)
			evicts++
		}
		tags[way] = tag
		c.plruBits[set] = c.plruBits[set]&^c.plruOff[way] | c.plruOn[way]
		res[i] = AccessResult{}
	}
	c.clock = clock
	c.stats.Misses += misses
	c.stats.Evictions += evicts
}

// accessSlow is the general demand access: any policy, prefetch state live.
func (c *Cache) accessSlow(addr uint64) AccessResult {
	c.clock++
	set, tag := c.setAndTag(addr)
	base := int(set) * c.assoc
	tags := c.tags[base : base+c.assoc : base+c.assoc]
	if m := matchWays(tags, tag, c.valid[set]); m != 0 {
		i := bits.TrailingZeros64(m)
		res := AccessResult{Hit: true}
		if cd := &c.cold[base+i]; cd.prefetched || cd.readyAt != 0 {
			if cd.prefetched {
				res.PrefetchedHit = true
			}
			if cd.readyAt > c.clock {
				res.Late = true
			}
			// Clear the whole entry, not just the consumed fields: a
			// stale readyAt at or before the clock can never fire again
			// (the Late check and the Install clamp both require a
			// future deadline), so zeroing it is behaviour-neutral and
			// keeps coldLive an exact count of non-zero entries.
			*cd = coldLine{}
			c.coldDec()
		}
		if c.ages != nil {
			c.ages[set] = ageTouch(c.ages[set], i, c.ageInc, c.ageGE)
		} else if c.lastUse != nil {
			// Recency state only steers LRU victim selection; other
			// policies keep none.
			c.lastUse[base+i] = packUse(c.clock, c.wayBits, i)
		}
		c.plruTouch(set, i)
		return res
	}
	c.stats.Misses++
	c.install(set, tag, false, 0)
	return AccessResult{}
}

// Probe reports whether addr is resident without updating any state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.setAndTag(addr)
	base := int(set) * c.assoc
	return matchWays(c.tags[base:base+c.assoc:base+c.assoc], tag, c.valid[set]) != 0
}

// Install brings addr's line in as a prefetch that completes after delay
// further accesses. When the line is already resident with a fill still in
// flight, the re-issued prefetch clamps the completion time to
// min(readyAt, clock+delay): a closer prefetch accelerates the fill, and a
// farther one never pushes it back. A resident, completed line is untouched.
func (c *Cache) Install(addr uint64, delay uint64) {
	set, tag := c.setAndTag(addr)
	base := int(set) * c.assoc
	if m := matchWays(c.tags[base:base+c.assoc:base+c.assoc], tag, c.valid[set]); m != 0 {
		i := bits.TrailingZeros64(m)
		if cd := &c.cold[base+i]; c.clock+delay < cd.readyAt {
			cd.readyAt = c.clock + delay
		}
		return
	}
	c.install(set, tag, true, c.clock+delay)
}

func (c *Cache) install(set, tag uint64, prefetched bool, readyAt uint64) {
	base := int(set) * c.assoc
	vm := c.valid[set]
	var victim int
	if inv := ^vm & c.wayMask; inv != 0 {
		victim = bits.TrailingZeros64(inv)
		c.valid[set] = vm | 1<<uint(victim)
	} else {
		victim = c.victim(set, base)
		c.stats.Evictions++
	}
	c.tags[base+victim] = tag
	if c.ages != nil {
		c.ages[set] = ageInstall(c.ages[set], victim, c.ageInc)
	} else if c.lastUse != nil {
		c.lastUse[base+victim] = packUse(c.clock, c.wayBits, victim)
	}
	if c.policy == FIFO {
		// Keep the round-robin lane in lockstep: fills take ways in index
		// order and evictions take the pointer, so victim+1 is always the
		// next-oldest line.
		next := int32(victim) + 1
		if int(next) == c.assoc {
			next = 0
		}
		c.fifoNext[set] = next
	}
	if cd := &c.cold[base+victim]; cd.prefetched || cd.readyAt != 0 {
		c.coldDec() // evicting a line that still carried prefetch state
	}
	c.cold[base+victim] = coldLine{prefetched: prefetched, readyAt: readyAt}
	if prefetched || readyAt != 0 {
		c.coldLive++
		c.coldActive = true
		c.refast()
	}
	c.plruTouch(set, victim)
}

// coldDec retires one live cold entry, re-arming the fused demand fast
// paths the moment the last one is gone.
func (c *Cache) coldDec() {
	c.coldLive--
	if c.coldLive == 0 {
		c.coldActive = false
		c.refast()
	}
}

// PrefetchResident counts lines still carrying prefetch state (coverage
// marks or in-flight fill deadlines); the demand fast path is available
// exactly while this is zero.
func (c *Cache) PrefetchResident() int { return c.coldLive }

// Flush invalidates the entire cache, including replacement-policy recency
// state: with every line gone, stale PLRU tree bits or a stale FIFO
// pointer would otherwise steer victim selection by pre-flush history. The
// clock and statistics keep running — the paper's analyzer flushes its
// logical cache when more than 1M cycles have elapsed since it last ran,
// to avoid long-term contamination, and that is a pause within one logical
// run, not a restart.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = 0
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	for i := range c.lastUse {
		c.lastUse[i] = 0
	}
	for i := range c.ages {
		c.ages[i] = 0
	}
	for i := range c.cold {
		c.cold[i] = coldLine{}
	}
	for i := range c.plruBits {
		c.plruBits[i] = 0
	}
	for i := range c.fifoNext {
		c.fifoNext[i] = 0
	}
	c.coldActive = false
	c.coldLive = 0
	c.refast()
}

// Clone returns a deep copy of the cache: geometry, line contents, the
// recency clock, and policy state (PLRU tree bits, FIFO pointers, Random
// RNG state) are all duplicated, so the copy replays any access sequence
// exactly as the original would. Per-worker simulators in parallel
// experiment cells clone a warmed template instead of re-warming from
// cold; the original and the clone share nothing afterwards. (The PLRU
// dispatch tables are immutable after construction and rebuilt by New,
// identical by construction.)
func (c *Cache) Clone() *Cache {
	n := New(c.cfg)
	n.clock = c.clock
	n.rngState = c.rngState
	n.stats = c.stats
	n.coldActive = c.coldActive
	n.coldLive = c.coldLive
	n.refast()
	copy(n.tags, c.tags)
	copy(n.lastUse, c.lastUse)
	copy(n.ages, c.ages)
	copy(n.valid, c.valid)
	copy(n.cold, c.cold)
	copy(n.plruBits, c.plruBits)
	copy(n.fifoNext, c.fifoNext)
	return n
}

// Reset restores the cache to its just-constructed state: contents
// invalidated and the recency clock and policy state rewound. Unlike
// Flush — which keeps the clock running, as the analyzer's periodic flush
// wants — Reset makes a reused cache indistinguishable from a fresh one,
// which is what a harness reusing an analyzer across runs needs.
func (c *Cache) Reset() {
	c.Flush() // clears lines, prefetch state, PLRU bits, FIFO pointers
	c.clock = 0
	c.rngState = rngSeed
	c.stats = Stats{}
}

// Resident counts valid lines (for tests).
func (c *Cache) Resident() int {
	n := 0
	for _, v := range c.valid {
		n += bits.OnesCount64(v)
	}
	return n
}
