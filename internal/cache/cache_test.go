package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var tiny = Config{Name: "tiny", Size: 1024, Assoc: 2, LineSize: 64} // 8 sets

func TestConfigValidate(t *testing.T) {
	good := []Config{tiny, P4L1D, P4L2, K7L1D, K7L2}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
	bad := []Config{
		{Name: "zero"},
		{Name: "odd-line", Size: 1024, Assoc: 2, LineSize: 48},
		{Name: "indivisible", Size: 1000, Assoc: 2, LineSize: 64},
		{Name: "npo2-sets", Size: 3 * 64 * 2, Assoc: 2, LineSize: 64},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v: Validate accepted invalid config", c)
		}
	}
}

func TestPaperConfigs(t *testing.T) {
	if P4L2.Sets() != 1024 {
		t.Errorf("P4 L2 sets = %d, want 1024", P4L2.Sets())
	}
	if K7L2.Sets() != 256 {
		t.Errorf("K7 L2 sets = %d, want 256", K7L2.Sets())
	}
	if P4L1D.Sets() != 32 {
		t.Errorf("P4 L1D sets = %d, want 32", P4L1D.Sets())
	}
}

func TestAccessHitMiss(t *testing.T) {
	c := New(tiny)
	if res := c.Access(0x1000); res.Hit {
		t.Error("first access must miss")
	}
	if res := c.Access(0x1000); !res.Hit {
		t.Error("second access must hit")
	}
	if res := c.Access(0x1004); !res.Hit {
		t.Error("same-line access must hit")
	}
	if res := c.Access(0x1040); res.Hit {
		t.Error("next-line access must miss")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(tiny) // 2-way, 8 sets, 64B lines: set stride is 512B
	a0 := uint64(0x0000)
	a1 := a0 + 512  // same set
	a2 := a0 + 1024 // same set
	c.Access(a0)
	c.Access(a1)
	c.Access(a0) // a1 is now LRU
	c.Access(a2) // evicts a1
	if !c.Probe(a0) {
		t.Error("a0 must survive (MRU)")
	}
	if c.Probe(a1) {
		t.Error("a1 must be evicted (LRU)")
	}
	if !c.Probe(a2) {
		t.Error("a2 must be resident")
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := New(tiny)
	c.Access(0x0)
	c.Access(0x200) // same set, 2-way now full; 0x0 is LRU
	for i := 0; i < 10; i++ {
		c.Probe(0x0) // must not refresh LRU
	}
	c.Access(0x400) // should evict 0x0
	if c.Probe(0x0) {
		t.Error("probe must not update recency")
	}
}

func TestInstallPrefetch(t *testing.T) {
	c := New(tiny)
	c.Install(0x1000, 0)
	res := c.Access(0x1000)
	if !res.Hit || !res.PrefetchedHit {
		t.Errorf("access after install = %+v, want prefetched hit", res)
	}
	// Second access: prefetched flag consumed.
	if res := c.Access(0x1000); res.PrefetchedHit {
		t.Error("prefetched flag must clear after first demand hit")
	}
}

func TestInstallInFlight(t *testing.T) {
	c := New(tiny)
	c.Install(0x1000, 5) // ready 5 ticks from now
	res := c.Access(0x1000)
	if !res.Hit || !res.Late {
		t.Errorf("early access = %+v, want late hit", res)
	}
	if res := c.Access(0x1000); res.Late {
		t.Error("late flag must clear once paid")
	}

	c2 := New(tiny)
	c2.Install(0x2000, 2)
	c2.Access(0x0)
	c2.Access(0x40)
	c2.Access(0x80) // 3 ticks elapse; fill complete
	if res := c2.Access(0x2000); res.Late {
		t.Error("fill must be ready after delay has elapsed")
	}
}

func TestInstallIdempotentWhenResident(t *testing.T) {
	c := New(tiny)
	c.Access(0x1000)
	c.Install(0x1000, 10)
	res := c.Access(0x1000)
	if res.PrefetchedHit || res.Late {
		t.Errorf("install over resident line must be a no-op, got %+v", res)
	}
}

// TestReissuedPrefetchAcceleratesFill is the regression test for the
// Install/readyAt bug: a prefetch re-issued for an in-flight line with a
// shorter delay must pull the completion time forward (the early return used
// to leave the stale later deadline in place, over-reporting Late hits) —
// and a longer re-issue must never push it back.
func TestReissuedPrefetchAcceleratesFill(t *testing.T) {
	c := New(tiny)
	c.Install(0x1000, 100) // speculative far-ahead prefetch
	c.Access(0x0)
	c.Access(0x40)
	c.Install(0x1000, 2) // re-issued much closer to use
	c.Access(0x80)
	c.Access(0xc0)
	c.Access(0x100) // 3 ticks since the re-issue: the clamped fill is done
	if res := c.Access(0x1000); !res.Hit || res.Late {
		t.Errorf("re-issued shorter prefetch must accelerate the fill, got %+v", res)
	}

	c2 := New(tiny)
	c2.Install(0x2000, 1)
	c2.Install(0x2000, 100) // farther re-issue: must not delay the fill
	c2.Access(0x0)
	c2.Access(0x40)
	if res := c2.Access(0x2000); !res.Hit || res.Late {
		t.Errorf("re-issue with longer delay must not push readyAt back, got %+v", res)
	}
}

// TestStrideReissueLateFill drives the clamp through StrideStreams, the way
// the hierarchy's late-fill model exercises it: a trained stream at depth 2
// issues each line twice (first at distance 2, then at distance 1), and the
// nearer re-issue — modelled with a proportionally shorter delay — must
// govern the fill time.
func TestStrideReissueLateFill(t *testing.T) {
	// 256 sets x 4 ways: roomy enough that the filler accesses below cannot
	// evict the in-flight stream target before the probe.
	c := New(Config{Name: "t", Size: 64 * 1024, Assoc: 4, LineSize: 64})
	pf := NewStrideStreams(64, 2)
	install := func(lineAddr uint64, miss bool) {
		for i, target := range pf.Observe(lineAddr, miss) {
			// Delay scales with prefetch distance: a line fetched d lines
			// ahead has d access-times to complete.
			c.Install(target, uint64(i+1)*8)
		}
	}
	// Train a unit-stride miss stream far from the probe addresses.
	base := uint64(1 << 16)
	for i := uint64(0); i < 8; i++ {
		addr := base + i*64
		miss := !c.Access(addr).Hit
		install(addr, miss)
	}
	// The last Observe issued lines base+8*64 (distance 1, delay 8) and
	// base+9*64 (distance 2, delay 16); the previous one had already issued
	// base+8*64 at distance 2 with the longer delay. The re-issue must have
	// clamped it: 9 further ticks is enough for the distance-1 deadline but
	// not the stale distance-2 one.
	for i := uint64(0); i < 9; i++ {
		c.Access(uint64(0x100000) + i*64)
	}
	res := c.Access(base + 8*64)
	if !res.Hit || !res.PrefetchedHit {
		t.Fatalf("stream target must be a prefetched hit, got %+v", res)
	}
	if res.Late {
		t.Error("re-issued stream prefetch must have accelerated the in-flight fill")
	}
}

// TestFlushClearsPLRUState is the regression test for the Flush/PLRU bug: a
// flushed-then-refilled PLRU cache must evict exactly like one whose sets
// were never populated. Flush invalidates every line, so the replacement
// tree bits describing pre-flush recency must be discarded with them.
func TestFlushClearsPLRUState(t *testing.T) {
	cfg := Config{Name: "plru", Size: 32 * 1024, Assoc: 4, LineSize: 64, Policy: PLRU}
	dirty := New(cfg)
	// Contaminate the tree bits with a skewed access history: repeated
	// touches of high ways in every set.
	for i := 0; i < 4096; i++ {
		dirty.Access(uint64(i%11) * 64 * uint64(cfg.Sets()))
		dirty.Access(uint64(i*13) * 64)
	}
	dirty.Flush()
	if n := dirty.Resident(); n != 0 {
		t.Fatalf("%d lines resident after flush", n)
	}
	// Replay an eviction-heavy sequence on the flushed cache and on a
	// never-populated one; the hit/miss streams must be identical. (The
	// clocks differ, but PLRU victim selection reads only the tree bits.)
	if i := firstDivergence(dirty, New(cfg), cloneSequence()); i >= 0 {
		t.Errorf("flushed PLRU cache diverged from a fresh one at access %d", i)
	}
}

func TestFlush(t *testing.T) {
	c := New(tiny)
	for i := uint64(0); i < 16; i++ {
		c.Access(i * 64)
	}
	if c.Resident() == 0 {
		t.Fatal("expected resident lines")
	}
	c.Flush()
	if c.Resident() != 0 {
		t.Errorf("Resident after flush = %d, want 0", c.Resident())
	}
	if res := c.Access(0); res.Hit {
		t.Error("access after flush must miss")
	}
}

// Property: the number of resident lines never exceeds capacity, and a
// just-accessed line is always resident.
func TestResidencyQuick(t *testing.T) {
	c := New(tiny)
	capacity := tiny.Sets() * tiny.Assoc
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			addr := uint64(a) % (1 << 20)
			c.Access(addr)
			if !c.Probe(addr) {
				return false
			}
			if c.Resident() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a working set that fits in one set's ways never misses after
// the first pass, regardless of access order (true LRU, no pathological
// replacement).
func TestLRUNoThrashWithinAssoc(t *testing.T) {
	c := New(tiny)
	lines := []uint64{0x0, 0x200} // same set, assoc = 2
	for _, a := range lines {
		c.Access(a)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		a := lines[r.Intn(len(lines))]
		if res := c.Access(a); !res.Hit {
			t.Fatalf("iteration %d: unexpected miss on %#x", i, a)
		}
	}
}

func TestAdjacentLinePrefetcher(t *testing.T) {
	pf := NewAdjacentLine(64)
	got := pf.Observe(0x1000, true)
	if len(got) != 1 || got[0] != 0x1040 {
		t.Errorf("Observe(0x1000) = %#x, want [0x1040]", got)
	}
	got = pf.Observe(0x1040, true)
	if len(got) != 1 || got[0] != 0x1000 {
		t.Errorf("Observe(0x1040) = %#x, want [0x1000]", got)
	}
	if got := pf.Observe(0x2000, false); got != nil {
		t.Errorf("hit must not trigger adjacent prefetch, got %#x", got)
	}
}

func TestStridePrefetcherDetectsStream(t *testing.T) {
	pf := NewStrideStreams(64, 2)
	// Unit-stride miss stream: 0, 64, 128, ...
	var issued []uint64
	for i := uint64(0); i < 6; i++ {
		issued = pf.Observe(i*64, true)
	}
	if len(issued) != 2 {
		t.Fatalf("trained stream must issue depth=2 prefetches, got %v", issued)
	}
	if issued[0] != 6*64 || issued[1] != 7*64 {
		t.Errorf("prefetch targets = %#x, want next two lines", issued)
	}
}

func TestStridePrefetcherNegativeStride(t *testing.T) {
	pf := NewStrideStreams(64, 1)
	var issued []uint64
	for i := 10; i >= 5; i-- {
		issued = pf.Observe(uint64(i)*64, true)
	}
	if len(issued) != 1 || issued[0] != 4*64 {
		t.Errorf("descending stream: prefetch = %#x, want [0x100]", issued)
	}
}

func TestStridePrefetcherIgnoresRandom(t *testing.T) {
	pf := NewStrideStreams(64, 2)
	r := rand.New(rand.NewSource(3))
	issued := 0
	for i := 0; i < 200; i++ {
		// Addresses far apart: no stream should train.
		addr := uint64(r.Intn(1<<20)) * 4096
		issued += len(pf.Observe(addr, true))
	}
	if issued > 10 {
		t.Errorf("random misses issued %d prefetches; expected almost none", issued)
	}
}

func TestStridePrefetcherStreamLimit(t *testing.T) {
	pf := NewStrideStreams(64, 1)
	// Allocate more streams than MaxStreams; must not grow unbounded.
	for i := 0; i < 100; i++ {
		pf.Observe(uint64(i)*1<<16, true)
	}
	if len(pf.streams) != MaxStreams {
		t.Errorf("stream table = %d entries, want %d", len(pf.streams), MaxStreams)
	}
}

func TestHierarchySequentialSweep(t *testing.T) {
	h := NewP4(false)
	// Sweep 4 MiB: every new line misses in L2 (footprint >> 512 KiB).
	for addr := uint64(0); addr < 4<<20; addr += 64 {
		h.Access(addr, 8, false)
	}
	if h.L2Stats.Misses != h.L2Stats.Accesses {
		t.Errorf("cold sweep: L2 misses = %d, accesses = %d; want equal",
			h.L2Stats.Misses, h.L2Stats.Accesses)
	}
	if h.L1Stats.Misses != h.L1Stats.Accesses {
		t.Errorf("cold sweep at line granularity: L1 misses = %d, accesses = %d",
			h.L1Stats.Misses, h.L1Stats.Accesses)
	}
}

func TestHierarchyPrefetchReducesMisses(t *testing.T) {
	run := func(hw bool) LevelStats {
		h := NewP4(hw)
		for rep := 0; rep < 4; rep++ {
			for addr := uint64(0); addr < 4<<20; addr += 64 {
				h.Access(addr, 8, false)
			}
		}
		return h.L2Stats
	}
	base := run(false)
	pf := run(true)
	if pf.Misses >= base.Misses {
		t.Errorf("HW prefetch must cut sequential misses: with=%d without=%d",
			pf.Misses, base.Misses)
	}
	if pf.PrefetchedHits == 0 {
		t.Error("expected useful prefetches")
	}
}

func TestHierarchyStallModel(t *testing.T) {
	h := NewP4(false)
	s1 := h.Access(0x100000, 8, false) // cold: memory
	if s1 != h.Lat.Memory {
		t.Errorf("cold stall = %d, want %d", s1, h.Lat.Memory)
	}
	s2 := h.Access(0x100000, 8, false) // L1 hit
	if s2 != 0 {
		t.Errorf("L1 hit stall = %d, want 0", s2)
	}
	// Evict from L1 (8 KiB, 4-way, 32 sets): fill set with conflicting lines.
	for i := uint64(1); i <= 8; i++ {
		h.Access(0x100000+i*8192, 8, false)
	}
	s3 := h.Access(0x100000, 8, false) // L1 miss, L2 hit
	if s3 != h.Lat.L2Hit {
		t.Errorf("L2 hit stall = %d, want %d", s3, h.Lat.L2Hit)
	}
}

func TestSoftwarePrefetchHidesLatency(t *testing.T) {
	h := NewP4(false)
	h.Prefetch(0x40000)
	// Let the in-flight window pass.
	for i := uint64(0); i < PrefetchDelay+1; i++ {
		h.Access(0x800000+i*64, 8, false)
	}
	stall := h.Access(0x40000, 8, false)
	if stall != h.Lat.L2Hit {
		t.Errorf("prefetched access stall = %d, want L2 hit %d", stall, h.Lat.L2Hit)
	}
	if h.L2Stats.PrefetchedHits != 1 {
		t.Errorf("PrefetchedHits = %d, want 1", h.L2Stats.PrefetchedHits)
	}
}

func TestLatePrefetchPaysPartialStall(t *testing.T) {
	h := NewP4(false)
	h.Prefetch(0x40000)
	stall := h.Access(0x40000, 8, false) // immediately: in flight
	want := h.Lat.L2Hit + h.Lat.LateFill
	if stall != want {
		t.Errorf("late prefetch stall = %d, want %d", stall, want)
	}
	if h.L2Stats.LateHits != 1 {
		t.Errorf("LateHits = %d, want 1", h.L2Stats.LateHits)
	}
}

func TestMissRatio(t *testing.T) {
	var s LevelStats
	if s.MissRatio() != 0 {
		t.Error("empty stats must have ratio 0")
	}
	s.Accesses = 200
	s.Misses = 50
	if got := s.MissRatio(); got != 0.25 {
		t.Errorf("MissRatio = %v, want 0.25", got)
	}
}

func TestHierarchyFlushAndReset(t *testing.T) {
	h := NewP4(true)
	for addr := uint64(0); addr < 1<<20; addr += 64 {
		h.Access(addr, 8, false)
	}
	h.Flush()
	if h.L2.Resident() != 0 || h.L1.Resident() != 0 {
		t.Error("Flush must empty both levels")
	}
	if h.L2Stats.Accesses == 0 {
		t.Error("Flush must preserve statistics")
	}
	h.ResetStats()
	if h.L2Stats.Accesses != 0 || h.L1Stats.Accesses != 0 {
		t.Error("ResetStats must zero statistics")
	}
}

// TestColdFastPathReEntry is the regression test for permanent fast-path
// loss: coldLive counts resident prefetch state exactly, so the fused LRU
// demand path re-engages the moment the last prefetched or in-flight line
// is consumed or evicted (it used to stay off for the lifetime of the
// cache after the first Install).
func TestColdFastPathReEntry(t *testing.T) {
	c := New(tiny) // 2-way, 8 sets: set stride 512B, set 0 holds 0x1000/0x1200
	if c.coldActive || c.PrefetchResident() != 0 {
		t.Fatal("fresh cache must start on the fast path")
	}
	c.Install(0x1000, 0)
	c.Install(0x1200, 0)
	if !c.coldActive || c.PrefetchResident() != 2 {
		t.Fatalf("after installs: coldActive=%v resident=%d, want true/2",
			c.coldActive, c.PrefetchResident())
	}

	// Demand hit consumes one prefetch mark.
	if res := c.Access(0x1000); !res.Hit || !res.PrefetchedHit {
		t.Fatalf("prefetched access = %+v", res)
	}
	if c.PrefetchResident() != 1 || !c.coldActive {
		t.Fatalf("after consume: resident=%d coldActive=%v, want 1/true",
			c.PrefetchResident(), c.coldActive)
	}

	// Two demand misses to fresh lines in the same set evict both resident
	// lines, including the remaining prefetched one: fast path re-engages.
	c.Access(0x1400)
	c.Access(0x1600)
	if c.PrefetchResident() != 0 || c.coldActive {
		t.Fatalf("after evictions: resident=%d coldActive=%v, want 0/false",
			c.PrefetchResident(), c.coldActive)
	}

	// An in-flight (non-prefetched-hit-yet, future readyAt) install counts
	// too, and a late demand hit retires it.
	c.Install(0x2000, 100)
	if c.PrefetchResident() != 1 {
		t.Fatalf("in-flight install not counted: %d", c.PrefetchResident())
	}
	if res := c.Access(0x2000); !res.Late {
		t.Fatalf("early demand hit = %+v, want late", res)
	}
	if c.PrefetchResident() != 0 || c.coldActive {
		t.Fatal("late hit must retire the in-flight entry and re-arm the fast path")
	}

	// A prefetch evicting another prefetch keeps the count exact (dec then
	// inc), and Flush clears everything at once.
	c2 := New(tiny)
	c2.Install(0x3000, 0)
	c2.Install(0x3200, 0) // both ways of set 0 now carry prefetch marks
	c2.Install(0x3400, 0) // same set: must evict one of them
	if c2.PrefetchResident() != 2 {
		t.Fatalf("prefetch-over-prefetch count = %d, want 2", c2.PrefetchResident())
	}
	c2.Flush()
	if c2.PrefetchResident() != 0 || c2.coldActive {
		t.Fatal("Flush must clear all prefetch state")
	}

	// Clone carries the count.
	c.Install(0x4000, 0)
	n := c.Clone()
	if n.PrefetchResident() != 1 || !n.coldActive {
		t.Fatalf("clone resident = %d, want 1", n.PrefetchResident())
	}
}

// TestColdFastPathEquivalence pins the fast path's contract byte-exactly:
// once prefetch state has drained, the fused demand path must produce the
// same results, statistics, and replacement decisions the general path
// would. Two identical caches run the same random demand mix — one with
// coldActive pinned on so every access takes accessSlow — and must agree
// on every access.
func TestColdFastPathEquivalence(t *testing.T) {
	fast := New(tiny)
	slow := New(tiny)
	// Exercise the drain path on both so they share pre-history.
	for _, c := range []*Cache{fast, slow} {
		c.Install(0x1000, 0)
		c.Access(0x1000) // consume: coldLive back to 0
	}
	// Pin the reference cache off the fast path. coldLive stays 0, so its
	// cold entries remain all-zero — exactly the fast path's precondition.
	// refast() must follow: Access dispatches on the precomputed selector
	// byte, and without the recompute the pinned cache would still take the
	// fused path, comparing the fast path against itself.
	slow.coldActive = true
	slow.refast()
	if slow.fast != fpSlow {
		t.Fatal("pinned reference cache must dispatch to the general path")
	}

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20_000; i++ {
		addr := uint64(rng.Intn(64)) * 64 // 64 lines over 8 sets: heavy reuse
		if rng.Intn(4) == 0 {
			addr += uint64(rng.Intn(64)) // sub-line offset noise
		}
		rf := fast.Access(addr)
		rs := slow.Access(addr)
		if rf != rs {
			t.Fatalf("access %d (%#x): fast=%+v slow=%+v", i, addr, rf, rs)
		}
	}
	if fast.Stats() != slow.Stats() {
		t.Fatalf("stats diverged: fast=%+v slow=%+v", fast.Stats(), slow.Stats())
	}
	if fast.Resident() != slow.Resident() {
		t.Fatalf("residency diverged: %d vs %d", fast.Resident(), slow.Resident())
	}
}

// TestColdLaneAudit is the fused-fast-path bookkeeping audit: across every
// policy, random Flush → prefetch-Install → demand-Access interleavings
// must keep coldLive exactly equal to a ground-truth scan of the cold
// lane, keep coldActive mirroring it, and engage the fused-path selector
// exactly while no cold state exists. A stale count in either direction
// would let a fused demand path run while prefetch state is resident
// (skipping its bookkeeping) or pin the cache on the slow path forever.
func TestColdLaneAudit(t *testing.T) {
	for _, pol := range []Policy{LRU, FIFO, Random, PLRU} {
		cfg := tiny
		cfg.Policy = pol
		cfg.Name = "audit-" + pol.String()
		c := New(cfg)

		check := func(step int, what string) {
			t.Helper()
			ground := 0
			for _, cd := range c.cold {
				if cd.prefetched || cd.readyAt != 0 {
					ground++
				}
			}
			if c.coldLive != ground || c.PrefetchResident() != ground {
				t.Fatalf("%s step %d (%s): coldLive=%d resident=%d, ground truth %d",
					pol, step, what, c.coldLive, c.PrefetchResident(), ground)
			}
			if c.coldActive != (ground > 0) {
				t.Fatalf("%s step %d (%s): coldActive=%v with %d cold entries",
					pol, step, what, c.coldActive, ground)
			}
			fused := c.fast != fpSlow
			if c.coldActive && fused {
				t.Fatalf("%s step %d (%s): fused path engaged with cold state resident",
					pol, step, what)
			}
			if !c.coldActive && pol != Random && !fused {
				t.Fatalf("%s step %d (%s): fused path not re-engaged with no cold state",
					pol, step, what)
			}
		}

		// The specific sequence the issue calls out: Flush, then prefetch,
		// then demand traffic that consumes and evicts the prefetched lines
		// back to a clean fast-path state.
		c.Flush()
		check(0, "flush")
		c.Install(0x1000, 0)
		c.Install(0x1200, 0)
		check(0, "prefetch")
		c.Access(0x1000) // consume one mark
		check(0, "consume")
		c.Access(0x1400) // evictions flush the rest out of set 0
		c.Access(0x1600)
		check(0, "evict")

		rng := uint64(0x1234567)
		next := func(n uint64) uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng % n
		}
		for step := 1; step <= 4000; step++ {
			switch next(8) {
			case 0:
				c.Flush()
				check(step, "flush")
			case 1, 2:
				c.Install(next(1<<13)&^63, next(3)*40)
				check(step, "install")
			default:
				c.Access(next(1<<13) &^ 63)
				check(step, "access")
			}
		}
	}
}
