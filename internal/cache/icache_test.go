package cache

import "testing"

func TestICacheDisabledIsFree(t *testing.T) {
	h := NewP4(false)
	if stall := h.FetchInstr(0x400000); stall != 0 {
		t.Errorf("fetch without icache stalls %d cycles", stall)
	}
	if h.L1IStats.Accesses != 0 {
		t.Error("fetch without icache must not be counted")
	}
}

func TestICacheHitMiss(t *testing.T) {
	h := NewK7()
	h.EnableICache(K7L1I)
	s1 := h.FetchInstr(0x400000)
	if s1 == 0 {
		t.Error("cold instruction fetch must stall")
	}
	s2 := h.FetchInstr(0x400000)
	if s2 != 0 {
		t.Errorf("warm fetch stalls %d cycles", s2)
	}
	if h.L1IStats.Accesses != 2 || h.L1IStats.Misses != 1 {
		t.Errorf("L1I stats = %+v", h.L1IStats)
	}
	// Instruction traffic must appear in the unified L2.
	if h.L2Stats.Accesses == 0 {
		t.Error("instruction miss must access the unified L2")
	}
}

func TestICachePerturbsUnifiedL2(t *testing.T) {
	// A large code footprint cycled through the icache evicts data from
	// the unified L2: the effect the paper conjectures explains the K7
	// correlation gap.
	run := func(icache bool) uint64 {
		h := NewK7()
		if icache {
			h.EnableICache(K7L1I)
		}
		// Data working set: resident in L2 alone.
		dataLines := uint64(2048) // 128 KiB of the 256 KiB L2
		for rep := 0; rep < 20; rep++ {
			for i := uint64(0); i < dataLines; i++ {
				h.Access(0x1000_0000+i*64, 8, false)
			}
			// Code sweep: 512 KiB of instruction addresses (beyond L1I
			// and L2).
			for pc := uint64(0x40_0000); pc < 0x48_0000; pc += 64 {
				h.FetchInstr(pc)
			}
		}
		return h.L2Stats.Misses
	}
	with, without := run(true), run(false)
	if with <= without {
		t.Errorf("icache traffic must add unified-L2 misses: with=%d without=%d", with, without)
	}
}

func TestMachineChargesInstructionFetch(t *testing.T) {
	// Covered end to end in vm tests via the InstrFetchModel interface;
	// here verify the hierarchy satisfies it structurally.
	var h interface{} = NewP4(false)
	if _, ok := h.(interface{ FetchInstr(uint64) uint64 }); !ok {
		t.Fatal("Hierarchy must implement the instruction-fetch interface")
	}
}
