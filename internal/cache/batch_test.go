package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

// Equivalence suite for the fused per-policy fast paths and the batch
// entry point. Three implementations must agree byte-exactly on every
// access: the general path (accessSlow, pinned via coldActive), the
// scalar fused paths (Access), and the batch loops (AccessBatch). The
// configs cover all three LRU representations — narrow SWAR ages (2-way),
// the sentinel-tag 8-way path, and wide packed timestamps (16-way) — and
// every policy runs over each geometry.

var equivConfigs = []Config{
	{Name: "narrow2", Size: 1024, Assoc: 2, LineSize: 64},      // SWAR ages
	{Name: "fused8", Size: 512 * 1024, Assoc: 8, LineSize: 64}, // sentinel LRU8
	{Name: "wide16", Size: 64 * 1024, Assoc: 16, LineSize: 64}, // packed timestamps
}

// equivAddr draws a demand address with heavy set reuse: the line pool is
// 4x the cache so hits, fills, and evictions all occur, plus occasional
// sub-line offset noise so tag extraction is exercised off line boundaries.
func equivAddr(rng *rand.Rand, cfg Config) uint64 {
	lines := cfg.Size / cfg.LineSize * 4
	addr := uint64(rng.Intn(lines)) * uint64(cfg.LineSize)
	if rng.Intn(4) == 0 {
		addr += uint64(rng.Intn(cfg.LineSize))
	}
	return addr
}

// TestFastSlowEquivalenceAllPolicies pins the scalar fused paths against
// the general path for every policy and geometry: 20k random demand
// accesses after a shared install/consume pre-history must produce
// identical results, statistics, and residency.
func TestFastSlowEquivalenceAllPolicies(t *testing.T) {
	for _, pol := range []Policy{LRU, FIFO, Random, PLRU} {
		for _, base := range equivConfigs {
			cfg := base
			cfg.Policy = pol
			t.Run(fmt.Sprintf("%s/%s", pol, base.Name), func(t *testing.T) {
				fast := New(cfg)
				slow := New(cfg)
				for _, c := range []*Cache{fast, slow} {
					c.Install(0x1000, 0)
					c.Access(0x1000) // consume: cold state drains, fused path re-arms
				}
				slow.coldActive = true
				slow.refast()
				if slow.fast != fpSlow {
					t.Fatal("pinned reference cache must dispatch to the general path")
				}
				if pol != Random && fast.fast == fpSlow {
					t.Fatalf("%s/%s: fused path not engaged after drain", pol, base.Name)
				}

				rng := rand.New(rand.NewSource(42))
				for i := 0; i < 20_000; i++ {
					addr := equivAddr(rng, cfg)
					rf := fast.Access(addr)
					rs := slow.Access(addr)
					if rf != rs {
						t.Fatalf("access %d (%#x): fast=%+v slow=%+v", i, addr, rf, rs)
					}
				}
				if fast.Stats() != slow.Stats() {
					t.Fatalf("stats diverged: fast=%+v slow=%+v", fast.Stats(), slow.Stats())
				}
				if fast.Resident() != slow.Resident() {
					t.Fatalf("residency diverged: %d vs %d", fast.Resident(), slow.Resident())
				}
			})
		}
	}
}

// TestBatchScalarEquivalence pins AccessBatch against per-element Access
// for every policy and geometry: the same 20k-access stream, chopped into
// random-size chunks on the batch side, must produce element-identical
// results and final state. Prefetch installs are interleaved mid-stream so
// the batch path also covers the general-dispatch fallback and the
// re-arming of the fused path when the last cold entry drains inside a
// chunk.
func TestBatchScalarEquivalence(t *testing.T) {
	for _, pol := range []Policy{LRU, FIFO, Random, PLRU} {
		for _, base := range equivConfigs {
			cfg := base
			cfg.Policy = pol
			t.Run(fmt.Sprintf("%s/%s", pol, base.Name), func(t *testing.T) {
				scalar := New(cfg)
				batch := New(cfg)
				rng := rand.New(rand.NewSource(1337))

				addrs := make([]uint64, 0, 257)
				want := make([]AccessResult, 0, 257)
				got := make([]AccessResult, 257)
				total := 0
				for total < 20_000 {
					// Periodically install the same prefetches on both
					// caches: cold state knocks both onto the general path
					// until demand traffic drains it.
					if rng.Intn(16) == 0 {
						a := equivAddr(rng, cfg) &^ uint64(cfg.LineSize-1)
						ready := uint64(rng.Intn(3)) * 40
						scalar.Install(a, ready)
						batch.Install(a, ready)
						// Re-reference the line with the next chunk half the
						// time so consume-vs-evict draining both occur.
						if rng.Intn(2) == 0 {
							addrs = append(addrs, a)
						}
					}
					n := rng.Intn(256) + 1
					for len(addrs) < n {
						addrs = append(addrs, equivAddr(rng, cfg))
					}
					for _, a := range addrs {
						want = append(want, scalar.Access(a))
					}
					batch.AccessBatch(addrs, got[:len(addrs)])
					for i := range addrs {
						if got[i] != want[i] {
							t.Fatalf("chunk at %d, element %d (%#x): batch=%+v scalar=%+v",
								total, i, addrs[i], got[i], want[i])
						}
					}
					total += len(addrs)
					addrs = addrs[:0]
					want = want[:0]
				}
				if scalar.Stats() != batch.Stats() {
					t.Fatalf("stats diverged: scalar=%+v batch=%+v", scalar.Stats(), batch.Stats())
				}
				if scalar.Resident() != batch.Resident() {
					t.Fatalf("residency diverged: %d vs %d", scalar.Resident(), batch.Resident())
				}
				if scalar.PrefetchResident() != batch.PrefetchResident() {
					t.Fatalf("prefetch residency diverged: %d vs %d",
						scalar.PrefetchResident(), batch.PrefetchResident())
				}
			})
		}
	}
}
