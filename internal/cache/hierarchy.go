package cache

import "fmt"

// LevelStats accumulates demand-access statistics for one cache level.
type LevelStats struct {
	Accesses      uint64
	Misses        uint64
	ReadAccesses  uint64
	ReadMisses    uint64
	WriteAccesses uint64
	WriteMisses   uint64
	// PrefetchedHits counts demand hits on lines a prefetcher installed:
	// misses the prefetcher eliminated.
	PrefetchedHits uint64
	// LateHits counts demand hits on in-flight prefetches: partially
	// hidden misses.
	LateHits uint64
	// PrefetchIssued counts fills requested by prefetchers (hardware or
	// software) at this level.
	PrefetchIssued uint64
}

// MissRatio returns misses per access, the quantity the paper's
// correlation study compares ("dividing the number of L2 miss counts by the
// number of L2 references, for both loads and stores").
func (s LevelStats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

func (s LevelStats) String() string {
	return fmt.Sprintf("accesses=%d misses=%d (%.2f%%) pf-hits=%d late=%d pf-issued=%d",
		s.Accesses, s.Misses, 100*s.MissRatio(), s.PrefetchedHits, s.LateHits, s.PrefetchIssued)
}

// Latencies holds the stall model for a hierarchy. Stalls are cycles beyond
// the instruction's base cost. L1 hits are free (folded into base cost).
type Latencies struct {
	L2Hit  uint64 // L1 miss, L2 hit
	Memory uint64 // L2 miss, served from memory
	// LateFill is the residual stall when a demand access catches an
	// in-flight prefetch: the prefetch hid part of the memory latency.
	LateFill uint64
	// PrefetchIssue is the bandwidth/occupancy cost charged for every
	// prefetch fill issued; it models contention when software and
	// hardware prefetchers chase the same streams (§8: the combination
	// "increases contention for resources, and affects timeliness").
	PrefetchIssue uint64
}

// DefaultP4Latencies approximates the 3.06 GHz Pentium 4 of §6.
var DefaultP4Latencies = Latencies{L2Hit: 18, Memory: 210, LateFill: 70, PrefetchIssue: 2}

// DefaultK7Latencies approximates the 1.2 GHz AMD Athlon K7 of §6.
var DefaultK7Latencies = Latencies{L2Hit: 12, Memory: 140, LateFill: 50, PrefetchIssue: 2}

// PrefetchDelay is the in-flight window, in L2 logical ticks, before a
// prefetched line becomes ready. Demand accesses arriving sooner pay
// Latencies.LateFill.
const PrefetchDelay = 24

// Hierarchy is a two-level data-cache hierarchy with optional L2
// prefetchers. It implements vm.MemModel (Access) and vm.PrefetchModel
// (Prefetch), making it the "hardware" a guest machine runs on.
type Hierarchy struct {
	Name string
	L1   *Cache
	L2   *Cache
	// L1I, when non-nil, models the instruction cache (EnableICache);
	// instruction fetches then share the unified L2.
	L1I *Cache
	Lat Latencies

	// Prefetchers observe the L2 demand stream (hardware prefetch).
	Prefetchers []Prefetcher

	L1Stats  LevelStats
	L1IStats LevelStats
	L2Stats  LevelStats
}

// NewHierarchy builds a hierarchy from two level configs.
func NewHierarchy(name string, l1, l2 Config, lat Latencies) *Hierarchy {
	return &Hierarchy{Name: name, L1: New(l1), L2: New(l2), Lat: lat}
}

// NewP4 returns the Pentium 4 hierarchy of §6. withHWPrefetch attaches the
// adjacent-line and stride prefetchers (the paper measures both settings;
// adjacent-line is "always on" in the prefetching experiments).
func NewP4(withHWPrefetch bool) *Hierarchy {
	h := NewHierarchy("P4", P4L1D, P4L2, DefaultP4Latencies)
	if withHWPrefetch {
		h.Prefetchers = []Prefetcher{
			NewAdjacentLine(P4L2.LineSize),
			NewStrideStreams(P4L2.LineSize, 2),
		}
	}
	return h
}

// NewK7 returns the AMD K7 hierarchy of §6 (no hardware prefetch).
func NewK7() *Hierarchy {
	return NewHierarchy("K7", K7L1D, K7L2, DefaultK7Latencies)
}

// Access performs one demand access and returns the stall cycles. It
// implements vm.MemModel.
func (h *Hierarchy) Access(addr uint64, size uint8, write bool) uint64 {
	h.L1Stats.Accesses++
	if write {
		h.L1Stats.WriteAccesses++
	} else {
		h.L1Stats.ReadAccesses++
	}
	if res := h.L1.Access(addr); res.Hit {
		return 0
	}
	h.L1Stats.Misses++
	if write {
		h.L1Stats.WriteMisses++
	} else {
		h.L1Stats.ReadMisses++
	}

	h.L2Stats.Accesses++
	if write {
		h.L2Stats.WriteAccesses++
	} else {
		h.L2Stats.ReadAccesses++
	}
	res := h.L2.Access(addr)
	var stall uint64
	if res.Hit {
		stall = h.Lat.L2Hit
		if res.PrefetchedHit {
			h.L2Stats.PrefetchedHits++
		}
		if res.Late {
			h.L2Stats.LateHits++
			stall += h.Lat.LateFill
		}
	} else {
		h.L2Stats.Misses++
		if write {
			h.L2Stats.WriteMisses++
		} else {
			h.L2Stats.ReadMisses++
		}
		stall = h.Lat.Memory
	}
	stall += h.observePrefetchers(h.L2.LineOf(addr), !res.Hit)
	return stall
}

func (h *Hierarchy) observePrefetchers(lineAddr uint64, miss bool) uint64 {
	var stall uint64
	for _, pf := range h.Prefetchers {
		for _, target := range pf.Observe(lineAddr, miss) {
			if h.L2.Probe(target) {
				continue
			}
			h.L2.Install(target, PrefetchDelay)
			h.L2Stats.PrefetchIssued++
			stall += h.Lat.PrefetchIssue
		}
	}
	return stall
}

// AccessNT performs a non-temporal demand access (vm.NTModel): the line is
// cached in L1 only, never installed into L2, so streaming data cannot
// evict the L2-resident working set. Statistics count it like a normal
// access (the counters cannot tell, just as real PMUs cannot).
func (h *Hierarchy) AccessNT(addr uint64, size uint8, write bool) uint64 {
	h.L1Stats.Accesses++
	if write {
		h.L1Stats.WriteAccesses++
	} else {
		h.L1Stats.ReadAccesses++
	}
	if res := h.L1.Access(addr); res.Hit {
		return 0
	}
	h.L1Stats.Misses++
	if write {
		h.L1Stats.WriteMisses++
	} else {
		h.L1Stats.ReadMisses++
	}

	h.L2Stats.Accesses++
	if write {
		h.L2Stats.WriteAccesses++
	} else {
		h.L2Stats.ReadAccesses++
	}
	// Probe without installing: an L2 hit is still a hit, but a miss is
	// served straight from memory without polluting the L2.
	if h.L2.Probe(addr) {
		h.L2.Access(addr) // refresh recency for the genuine resident line
		return h.Lat.L2Hit
	}
	h.L2Stats.Misses++
	if write {
		h.L2Stats.WriteMisses++
	} else {
		h.L2Stats.ReadMisses++
	}
	return h.Lat.Memory
}

// Prefetch implements vm.PrefetchModel: a software prefetch instruction
// installs the line into L2 with the same in-flight delay as a hardware
// prefetch. Already-resident lines are untouched.
func (h *Hierarchy) Prefetch(addr uint64) {
	line := h.L2.LineOf(addr)
	if h.L2.Probe(line) {
		return
	}
	h.L2.Install(line, PrefetchDelay)
	h.L2Stats.PrefetchIssued++
}

// Flush invalidates all levels and resets prefetcher state (statistics
// are preserved).
func (h *Hierarchy) Flush() {
	h.L1.Flush()
	h.L2.Flush()
	if h.L1I != nil {
		h.L1I.Flush()
	}
	for _, pf := range h.Prefetchers {
		pf.Reset()
	}
}

// ResetStats zeroes the statistics without touching cache contents.
func (h *Hierarchy) ResetStats() {
	h.L1Stats = LevelStats{}
	h.L1IStats = LevelStats{}
	h.L2Stats = LevelStats{}
}

func (h *Hierarchy) String() string {
	return fmt.Sprintf("%s hierarchy\n  L1 %v\n  L2 %v", h.Name, h.L1Stats, h.L2Stats)
}
