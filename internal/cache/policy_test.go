package cache

import (
	"container/list"
	"math/rand"
	"testing"
)

func TestPolicyStrings(t *testing.T) {
	for _, c := range []struct {
		p    Policy
		want string
	}{{LRU, "LRU"}, {FIFO, "FIFO"}, {Random, "Random"}, {PLRU, "PLRU"}} {
		if c.p.String() != c.want {
			t.Errorf("%d.String() = %q, want %q", int(c.p), c.p.String(), c.want)
		}
	}
	if Policy(42).Valid() {
		t.Error("Policy(42) must be invalid")
	}
}

func TestPLRURequiresPow2Assoc(t *testing.T) {
	bad := Config{Name: "p", Size: 3 * 64 * 4, Assoc: 3, LineSize: 64, Policy: PLRU}
	if err := bad.Validate(); err == nil {
		t.Error("PLRU with assoc 3 must be rejected")
	}
}

func TestFIFOEviction(t *testing.T) {
	cfg := Config{Name: "fifo", Size: 2 * 64, Assoc: 2, LineSize: 64, Policy: FIFO}
	c := New(cfg)   // 1 set, 2 ways
	c.Access(0x000) // install A
	c.Access(0x040) // install B (set is full)
	// Re-touch A repeatedly: FIFO must still evict A (oldest install).
	for i := 0; i < 10; i++ {
		c.Access(0x000)
	}
	c.Access(0x080) // install C: evicts A under FIFO, B under LRU
	if c.Probe(0x000) {
		t.Error("FIFO must evict the oldest install even if recently used")
	}
	if !c.Probe(0x040) {
		t.Error("FIFO must keep the younger line")
	}
}

// Reference FIFO model: per-set queue of tags.
type refFIFO struct {
	cfg  Config
	sets []*list.List
}

func newRefFIFO(cfg Config) *refFIFO {
	r := &refFIFO{cfg: cfg, sets: make([]*list.List, cfg.Sets())}
	for i := range r.sets {
		r.sets[i] = list.New()
	}
	return r
}

func (r *refFIFO) access(addr uint64) bool {
	line := addr / uint64(r.cfg.LineSize)
	set := line % uint64(r.cfg.Sets())
	tag := line / uint64(r.cfg.Sets())
	l := r.sets[set]
	for e := l.Front(); e != nil; e = e.Next() {
		if e.Value.(uint64) == tag {
			return true // no reordering on hit
		}
	}
	l.PushFront(tag)
	if l.Len() > r.cfg.Assoc {
		l.Remove(l.Back())
	}
	return false
}

func TestFIFOMatchesReferenceModel(t *testing.T) {
	cfg := Config{Name: "fifo", Size: 4096, Assoc: 4, LineSize: 64, Policy: FIFO}
	c := New(cfg)
	ref := newRefFIFO(cfg)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 50_000; i++ {
		addr := uint64(r.Intn(1 << 16))
		if got, want := c.Access(addr).Hit, ref.access(addr); got != want {
			t.Fatalf("access %d (addr %#x): fifo hit=%v, reference hit=%v", i, addr, got, want)
		}
	}
}

func TestRandomPolicyDeterministicAndBounded(t *testing.T) {
	cfg := Config{Name: "rnd", Size: 4096, Assoc: 4, LineSize: 64, Policy: Random}
	run := func() []bool {
		c := New(cfg)
		r := rand.New(rand.NewSource(11))
		out := make([]bool, 0, 20_000)
		for i := 0; i < 20_000; i++ {
			out = append(out, c.Access(uint64(r.Intn(1<<16))).Hit)
		}
		if got := c.Resident(); got > cfg.Sets()*cfg.Assoc {
			t.Fatalf("Resident = %d exceeds capacity", got)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Random policy not deterministic at access %d", i)
		}
	}
}

func TestPLRUBehavesReasonably(t *testing.T) {
	cfg := Config{Name: "plru", Size: 4 * 64, Assoc: 4, LineSize: 64, Policy: PLRU}
	c := New(cfg) // 1 set, 4 ways
	// Fill the set; a working set equal to associativity must then hit
	// forever (PLRU never evicts the most recently used path).
	addrs := []uint64{0x000, 0x040, 0x080, 0x0C0}
	for _, a := range addrs {
		c.Access(a)
	}
	for i := 0; i < 1000; i++ {
		a := addrs[i%len(addrs)]
		if !c.Access(a).Hit {
			t.Fatalf("PLRU evicted within an associativity-sized working set (iter %d)", i)
		}
	}
	// The most recently touched line must survive one eviction.
	c.Access(0x040)
	c.Access(0x100) // evicts someone, not 0x040
	if !c.Probe(0x040) {
		t.Error("PLRU evicted the most recently used line")
	}
}

// All policies behave identically on a direct-mapped cache.
func TestPoliciesAgreeWhenDirectMapped(t *testing.T) {
	mk := func(p Policy) *Cache {
		return New(Config{Name: "dm", Size: 4096, Assoc: 1, LineSize: 64, Policy: p})
	}
	caches := []*Cache{mk(LRU), mk(FIFO), mk(Random)}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 20_000; i++ {
		addr := uint64(r.Intn(1 << 16))
		first := caches[0].Access(addr).Hit
		for _, c := range caches[1:] {
			if c.Access(addr).Hit != first {
				t.Fatalf("policies diverge on direct-mapped cache at access %d", i)
			}
		}
	}
}

// Hit-rate sanity: on a looping working set slightly over capacity, LRU
// thrash is worst-case (0 hits), while Random keeps some.
func TestRandomBeatsLRUOnCyclicThrash(t *testing.T) {
	lru := New(Config{Name: "l", Size: 8 * 64, Assoc: 8, LineSize: 64, Policy: LRU})
	rnd := New(Config{Name: "r", Size: 8 * 64, Assoc: 8, LineSize: 64, Policy: Random})
	hitsLRU, hitsRnd := 0, 0
	for rep := 0; rep < 300; rep++ {
		for i := uint64(0); i < 9; i++ { // 9 lines over an 8-way set
			if lru.Access(i * 64).Hit {
				hitsLRU++
			}
			if rnd.Access(i * 64).Hit {
				hitsRnd++
			}
		}
	}
	if hitsLRU != 0 {
		t.Errorf("LRU cyclic thrash must miss always, got %d hits", hitsLRU)
	}
	if hitsRnd == 0 {
		t.Error("Random must retain some lines under cyclic thrash")
	}
}
