package cache

import "testing"

// warmAndDiverge drives both caches through the same access sequence and
// reports the first index where their hit/miss outcomes differ (-1: none).
func firstDivergence(a, b *Cache, addrs []uint64) int {
	for i, addr := range addrs {
		if a.Access(addr).Hit != b.Access(addr).Hit {
			return i
		}
	}
	return -1
}

func cloneSequence() []uint64 {
	// A mix of streaming (conflict-heavy) and reused addresses so every
	// policy exercises victim selection.
	var addrs []uint64
	for i := 0; i < 4096; i++ {
		addrs = append(addrs, uint64(i)*64, uint64(i%37)*64, uint64(i*17)*4096)
	}
	return addrs
}

func TestCloneReplaysIdentically(t *testing.T) {
	for _, pol := range []Policy{LRU, FIFO, Random, PLRU} {
		cfg := Config{Name: "t", Size: 32 * 1024, Assoc: 4, LineSize: 64, Policy: pol}
		orig := New(cfg)
		addrs := cloneSequence()
		for _, a := range addrs[:len(addrs)/2] {
			orig.Access(a)
		}
		clone := orig.Clone()
		if got, want := clone.Resident(), orig.Resident(); got != want {
			t.Fatalf("%v: clone resident = %d, original %d", pol, got, want)
		}
		if i := firstDivergence(orig, clone, addrs[len(addrs)/2:]); i >= 0 {
			t.Errorf("%v: clone diverged from original at access %d", pol, i)
		}
	}
}

// TestClonePreservesPrefetchState forks a cache with in-flight and
// untouched-prefetched lines under every policy and checks the full
// AccessResult stream — PrefetchedHit and Late included, not just Hit —
// matches between original and clone. The flat hot/cold layout keeps these
// in separate arrays; Clone must copy both.
func TestClonePreservesPrefetchState(t *testing.T) {
	for _, pol := range []Policy{LRU, FIFO, Random, PLRU} {
		cfg := Config{Name: "t", Size: 32 * 1024, Assoc: 4, LineSize: 64, Policy: pol}
		orig := New(cfg)
		for _, a := range cloneSequence()[:512] {
			orig.Access(a)
		}
		orig.Install(0x10000, 0)  // completed prefetch, not yet demanded
		orig.Install(0x20000, 50) // in-flight fill
		clone := orig.Clone()
		probes := []uint64{0x10000, 0x20000, 0x10000, 0x20000, 0x40, 0x80}
		for i, a := range probes {
			or, cr := orig.Access(a), clone.Access(a)
			if or != cr {
				t.Fatalf("%v: probe %d: original %+v, clone %+v", pol, i, or, cr)
			}
		}
		if orig.Stats() != clone.Stats() {
			t.Errorf("%v: stats diverged: %+v vs %+v", pol, orig.Stats(), clone.Stats())
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	cfg := Config{Name: "t", Size: 8 * 1024, Assoc: 2, LineSize: 64}
	orig := New(cfg)
	orig.Access(0x1000)
	clone := orig.Clone()
	clone.Flush()
	if !orig.Probe(0x1000) {
		t.Error("flushing the clone evicted from the original")
	}
	orig.Flush()
	clone.Access(0x2000)
	if clone.Probe(0x1000) {
		t.Error("clone retained a line flushed before it recorded one")
	}
}

func TestResetMatchesFreshCache(t *testing.T) {
	for _, pol := range []Policy{LRU, FIFO, Random, PLRU} {
		cfg := Config{Name: "t", Size: 32 * 1024, Assoc: 4, LineSize: 64, Policy: pol}
		used := New(cfg)
		addrs := cloneSequence()
		for _, a := range addrs {
			used.Access(a)
		}
		used.Reset()
		if n := used.Resident(); n != 0 {
			t.Fatalf("%v: %d lines resident after Reset", pol, n)
		}
		// A Reset cache must replay exactly like a newly constructed one:
		// same contents (none), same clock, same policy state.
		if i := firstDivergence(used, New(cfg), addrs); i >= 0 {
			t.Errorf("%v: reset cache diverged from a fresh one at access %d", pol, i)
		}
	}
}
