package cache

// Replacement policies. The paper's mini-simulator uses true LRU (§5:
// "The simulator implements an LRU replacement policy although other
// schemes are possible"); the package provides the common alternatives so
// the analyzer's sensitivity to the policy can be measured (see the
// BenchmarkAblationPolicy ablation).

// Policy selects a victim way within a set.
type Policy int

// Supported replacement policies.
const (
	// LRU evicts the least recently used line (default; the paper's
	// choice, and what the modelled P4/K7 approximate).
	LRU Policy = iota
	// FIFO evicts the oldest-installed line regardless of use.
	FIFO
	// Random evicts a pseudo-random line (deterministic xorshift so runs
	// stay reproducible).
	Random
	// PLRU is tree pseudo-LRU, the common hardware approximation.
	PLRU
)

var policyNames = [...]string{LRU: "LRU", FIFO: "FIFO", Random: "Random", PLRU: "PLRU"}

func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return "Policy(?)"
}

// Valid reports whether p names a supported policy.
func (p Policy) Valid() bool { return p >= LRU && p <= PLRU }

// victim picks the way to replace in a full set according to the cache's
// policy. lines is the set's slice of the flat hot array and has no invalid
// entries when victim is called.
func (c *Cache) victim(set uint64, lines []hotLine) int {
	switch c.policy {
	case FIFO:
		// installedAt is tracked in lastUse for FIFO (never refreshed on
		// hit), so the LRU scan below picks the oldest install.
		fallthrough
	case LRU:
		v := 0
		for i := range lines {
			if lines[i].lastUse < lines[v].lastUse {
				v = i
			}
		}
		return v
	case Random:
		// xorshift64 over a per-cache seed: deterministic, cheap, and
		// uncorrelated with the access pattern.
		c.rngState ^= c.rngState << 13
		c.rngState ^= c.rngState >> 7
		c.rngState ^= c.rngState << 17
		return int(c.rngState % uint64(len(lines)))
	case PLRU:
		return c.plruVictim(set)
	}
	return 0
}

// plruVictim walks the PLRU tree bits for the set. The tree is stored as
// assoc-1 bits per set in plruBits; a 0 bit points left, 1 points right,
// and the victim is found by following the bits *away* from recent use.
func (c *Cache) plruVictim(set uint64) int {
	bits := c.plruBits[set]
	node := 0
	idx := 0
	// Walk log2(assoc) levels. assoc is a power of two for PLRU use; the
	// constructor validates this.
	for levelSize := c.cfg.Assoc / 2; levelSize >= 1; levelSize /= 2 {
		bit := (bits >> uint(node)) & 1
		// Follow the bit: it points to the less recently used side.
		idx = idx*2 + int(bit)
		node = node*2 + 1 + int(bit)
	}
	return idx
}

// plruTouch updates the PLRU tree so the path to way points away from it.
func (c *Cache) plruTouch(set uint64, way int) {
	if c.policy != PLRU {
		return
	}
	bits := c.plruBits[set]
	node := 0
	// Reconstruct the path from the way index, most significant level
	// first.
	levels := 0
	for 1<<levels < c.cfg.Assoc {
		levels++
	}
	for l := levels - 1; l >= 0; l-- {
		dir := (way >> uint(l)) & 1
		if dir == 1 {
			bits &^= 1 << uint(node) // recent on the right: point left
		} else {
			bits |= 1 << uint(node) // recent on the left: point right
		}
		node = node*2 + 1 + dir
	}
	c.plruBits[set] = bits
}
