package cache

// Replacement policies. The paper's mini-simulator uses true LRU (§5:
// "The simulator implements an LRU replacement policy although other
// schemes are possible"); the package provides the common alternatives so
// the analyzer's sensitivity to the policy can be measured (see the
// BenchmarkAblationPolicy ablation).

// Policy selects a victim way within a set.
type Policy int

// Supported replacement policies.
const (
	// LRU evicts the least recently used line (default; the paper's
	// choice, and what the modelled P4/K7 approximate).
	LRU Policy = iota
	// FIFO evicts the oldest-installed line regardless of use.
	FIFO
	// Random evicts a pseudo-random line (deterministic xorshift so runs
	// stay reproducible).
	Random
	// PLRU is tree pseudo-LRU, the common hardware approximation.
	PLRU
)

var policyNames = [...]string{LRU: "LRU", FIFO: "FIFO", Random: "Random", PLRU: "PLRU"}

func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return "Policy(?)"
}

// Valid reports whether p names a supported policy.
func (p Policy) Valid() bool { return p >= LRU && p <= PLRU }

// victim picks the way to replace in a full set according to the cache's
// policy. base is the set's offset into the flat lanes; the set has no
// invalid ways when victim is called.
func (c *Cache) victim(set uint64, base int) int {
	switch c.policy {
	case LRU:
		if c.ages != nil {
			return ageEvictWay(c.ages[set], c.ageVict, c.ageGE)
		}
		return minWay(c.lastUse[base:base+c.assoc:base+c.assoc], c.wayBits)
	case FIFO:
		// The round-robin lane already names the oldest install; install()
		// advances it past the victim.
		return int(c.fifoNext[set])
	case Random:
		// xorshift64 over a per-cache seed: deterministic, cheap, and
		// uncorrelated with the access pattern.
		c.rngState ^= c.rngState << 13
		c.rngState ^= c.rngState >> 7
		c.rngState ^= c.rngState << 17
		return int(c.rngState % uint64(c.assoc))
	case PLRU:
		return c.plruVictim(set)
	}
	return 0
}

// plruVictim resolves the PLRU victim for the set. The tree is stored as
// assoc-1 bits per set in plruBits; a 0 bit points left, 1 points right,
// and the victim is found by following the bits *away* from recent use.
// Caches up to plruTableMaxAssoc ways resolve the whole walk with one
// table lookup on the bits word; wider trees walk level by level.
func (c *Cache) plruVictim(set uint64) int {
	tree := c.plruBits[set]
	if c.plruVict != nil {
		return int(c.plruVict[tree])
	}
	node, idx := 0, 0
	// Walk log2(assoc) levels. assoc is a power of two for PLRU use; the
	// constructor validates this.
	for levelSize := c.assoc / 2; levelSize >= 1; levelSize /= 2 {
		bit := (tree >> uint(node)) & 1
		// Follow the bit: it points to the less recently used side.
		idx = idx*2 + int(bit)
		node = node*2 + 1 + int(bit)
	}
	return idx
}

// plruTouch updates the PLRU tree so the path to way points away from it:
// two precomputed mask operations replacing the old level-by-level walk.
func (c *Cache) plruTouch(set uint64, way int) {
	if c.policy != PLRU {
		return
	}
	c.plruBits[set] = c.plruBits[set]&^c.plruOff[way] | c.plruOn[way]
}

// plruTouchMasks precomputes, for every way, the tree bits a touch sets
// (plruOn, nodes entered leftward) and clears (plruOff, nodes entered
// rightward). Touching way w is then bits&^off[w] | on[w].
func plruTouchMasks(assoc int) (on, off []uint64) {
	on = make([]uint64, assoc)
	off = make([]uint64, assoc)
	levels := 0
	for 1<<levels < assoc {
		levels++
	}
	for way := 0; way < assoc; way++ {
		node := 0
		for l := levels - 1; l >= 0; l-- {
			dir := (way >> uint(l)) & 1
			if dir == 1 {
				off[way] |= 1 << uint(node) // recent on the right: point left
			} else {
				on[way] |= 1 << uint(node) // recent on the left: point right
			}
			node = node*2 + 1 + dir
		}
	}
	return on, off
}

// plruVictimTable enumerates every possible tree-bits word and records the
// victim the walk would choose, so victim selection becomes one indexed
// load. 2^(assoc-1) entries: 32KiB at the 16-way limit.
func plruVictimTable(assoc int) []uint8 {
	t := make([]uint8, 1<<uint(assoc-1))
	for b := range t {
		node, idx := 0, 0
		for levelSize := assoc / 2; levelSize >= 1; levelSize /= 2 {
			bit := (uint64(b) >> uint(node)) & 1
			idx = idx*2 + int(bit)
			node = node*2 + 1 + int(bit)
		}
		t[b] = uint8(idx)
	}
	return t
}
