package cache

import "testing"

// FuzzCacheConfig throws random geometries and access sequences at the
// cache and checks the structural invariants the rest of the stack leans
// on: Validate rejects unrealizable shapes before New can panic, Clone is
// an exact fork (identical hit/miss stream and statistics from the fork
// point), and Reset returns a cache to a state indistinguishable from
// freshly constructed.
func FuzzCacheConfig(f *testing.F) {
	f.Add(uint8(3), uint8(7), uint8(3), uint8(0), []byte{0, 1, 2, 3, 0, 1, 255, 128})
	f.Add(uint8(0), uint8(0), uint8(0), uint8(1), []byte{9, 9, 9})
	f.Add(uint8(5), uint8(3), uint8(2), uint8(2), []byte{1, 2, 4, 8, 16, 32, 64, 128})
	f.Add(uint8(2), uint8(1), uint8(1), uint8(3), []byte{7, 7, 7, 7, 200, 100})
	f.Fuzz(func(t *testing.T, setExp, assocRaw, lineExp, polRaw uint8, addrBytes []byte) {
		cfg := Config{
			Name:     "fuzz",
			LineSize: 1 << (3 + lineExp%6), // 8..256 bytes
			Assoc:    1 + int(assocRaw%16),
			Policy:   Policy(polRaw % 4),
		}
		sets := 1 << (setExp % 10) // 1..512 sets
		cfg.Size = sets * cfg.Assoc * cfg.LineSize
		if err := cfg.Validate(); err != nil {
			// e.g. PLRU with non-power-of-two associativity: rejected
			// geometry must never reach New.
			return
		}

		// Widen the byte stream into addresses that straddle sets and tags.
		seq := make([]uint64, len(addrBytes))
		for i, b := range addrBytes {
			seq[i] = uint64(b) * uint64(cfg.LineSize) / 2
		}

		fresh := New(cfg)
		want := make([]AccessResult, len(seq))
		for i, a := range seq {
			want[i] = fresh.Access(a)
		}
		st := fresh.Stats()
		if st.Accesses != uint64(len(seq)) {
			t.Fatalf("accesses %d, want %d", st.Accesses, len(seq))
		}
		if st.Misses > st.Accesses {
			t.Fatalf("misses %d exceed accesses %d", st.Misses, st.Accesses)
		}
		if st.Evictions > st.Misses {
			t.Fatalf("evictions %d exceed demand misses %d", st.Evictions, st.Misses)
		}

		// Clone equivalence: fork at the midpoint, run the tail on both;
		// original, clone, and the uninterrupted run must agree exactly.
		orig := New(cfg)
		half := len(seq) / 2
		for i := 0; i < half; i++ {
			orig.Access(seq[i])
		}
		fork := orig.Clone()
		for i := half; i < len(seq); i++ {
			or, fr := orig.Access(seq[i]), fork.Access(seq[i])
			if or != want[i] || fr != want[i] {
				t.Fatalf("access %d: original %+v, clone %+v, uninterrupted %+v",
					i, or, fr, want[i])
			}
		}
		if orig.Stats() != st || fork.Stats() != st {
			t.Fatalf("stats diverged: original %+v, clone %+v, uninterrupted %+v",
				orig.Stats(), fork.Stats(), st)
		}

		// Reset equivalence: a Reset cache must replay exactly like a fresh
		// one, statistics included.
		fresh.Reset()
		if fresh.Stats() != (Stats{}) {
			t.Fatalf("Reset left stats %+v", fresh.Stats())
		}
		for i, a := range seq {
			if got := fresh.Access(a); got != want[i] {
				t.Fatalf("after Reset, access %d = %+v, want %+v", i, got, want[i])
			}
		}
		if fresh.Stats() != st {
			t.Fatalf("after Reset, stats %+v, want %+v", fresh.Stats(), st)
		}
	})
}
