package cache

// Instruction-cache modelling. The paper's UMI mini-simulator does not
// simulate an instruction cache and conjectures (§6.2) that instruction
// caching magnifies the correlation gap on the AMD K7, whose unified L2 is
// half the Pentium 4's. The hierarchy optionally models an L1I feeding the
// same L2, so that conjecture can be tested: with the instruction cache
// enabled, code misses perturb the L2 the mini-simulator never sees.

// Instruction-cache configurations for the evaluation platforms. The P4's
// trace cache holds 12K micro-ops (§6); 16 KiB is the conventional
// capacity equivalent. The K7 has a 64 KiB L1I.
var (
	P4L1I = Config{Name: "P4-L1I", Size: 16 * 1024, Assoc: 8, LineSize: 64}
	K7L1I = Config{Name: "K7-L1I", Size: 64 * 1024, Assoc: 2, LineSize: 64}
)

// EnableICache attaches an instruction cache to the hierarchy. Instruction
// fetches then flow L1I -> L2 and appear in the L2 statistics exactly like
// data traffic (both platforms have unified L2s).
func (h *Hierarchy) EnableICache(cfg Config) {
	h.L1I = New(cfg)
}

// FetchInstr models one instruction fetch at pc and returns the stall
// cycles. Without an instruction cache attached it is free (the default,
// matching the paper's data-only simulators). It implements
// vm.InstrFetchModel.
func (h *Hierarchy) FetchInstr(pc uint64) uint64 {
	if h.L1I == nil {
		return 0
	}
	h.L1IStats.Accesses++
	h.L1IStats.ReadAccesses++
	if h.L1I.Access(pc).Hit {
		return 0
	}
	h.L1IStats.Misses++
	h.L1IStats.ReadMisses++

	h.L2Stats.Accesses++
	h.L2Stats.ReadAccesses++
	if h.L2.Access(pc).Hit {
		return h.Lat.L2Hit
	}
	h.L2Stats.Misses++
	h.L2Stats.ReadMisses++
	return h.Lat.Memory
}
