package cache

import "math/bits"

// Hot-path primitives shared by the fused demand paths and the batch
// loops. The lane layout (tags / valid / per-set recency, see cache.go)
// makes every one of these a straight walk over contiguous uint64 words.
//
// LRU recency comes in two representations:
//
//   - assoc ≤ 8: a per-set SWAR age vector — one uint64 holding an age
//     byte per way, a permutation of 0..assoc-1 once the set is full
//     (0 = most recent, assoc-1 = the victim). Hits, fills, and
//     evictions update the whole stack with a handful of byte-parallel
//     operations on that single word, so the demand path touches eight
//     recency bytes instead of a 64-byte timestamp lane.
//   - assoc > 8: packed per-way timestamps in the lastUse lane, with a
//     linear minimum scan for the victim.
//
// Both are exact LRU; only the representation differs.

// packUse packs a recency stamp with its way index (wide-LRU
// representation): the victim scan recovers the way straight out of the
// minimum value, and ties between equal clocks break toward the lower
// way. Packing caps the usable clock at 2^(64-wayBits) accesses (2^58 at
// the 64-way limit), far past any realizable run.
func packUse(clock uint64, wayBits uint, way int) uint64 {
	return clock<<wayBits | uint64(way)
}

// isZero64 returns 1 when d is zero, 0 otherwise, without a branch.
func isZero64(d uint64) uint64 { return 1 &^ ((d | -d) >> 63) }

// matchWays returns the bitmask of valid ways whose tag equals tag. The
// scan is branchless — four XOR/zero-test lanes per iteration folded into
// one mask word — so a hit in way 7 costs the same, perfectly predicted,
// instructions as a hit in way 0.
func matchWays(tags []uint64, tag, valid uint64) uint64 {
	var m uint64
	i := 0
	for ; i+4 <= len(tags); i += 4 {
		d0 := tags[i] ^ tag
		d1 := tags[i+1] ^ tag
		d2 := tags[i+2] ^ tag
		d3 := tags[i+3] ^ tag
		m |= (isZero64(d0) | isZero64(d1)<<1 | isZero64(d2)<<2 | isZero64(d3)<<3) << uint(i)
	}
	for ; i < len(tags); i++ {
		m |= isZero64(tags[i]^tag) << uint(i)
	}
	return m & valid
}

// missAllFull reports whether tag misses every way of a FULL set: the
// sign bit of d|-d is set exactly when d is non-zero, so AND-ing the
// sign words over all ways leaves it set exactly when no way matches.
// This is an exact test, not a filter — but only for full sets, where
// no stale tag hides behind a cleared valid bit.
func missAllFull(tags []uint64, tag uint64) bool {
	acc := ^uint64(0)
	for _, x := range tags {
		d := x ^ tag
		acc &= d | -d
	}
	return acc>>63 != 0
}

// minWay returns the way holding the smallest packed recency stamp — the
// wide-LRU victim. Packed stamps are unique (the way index rides in the
// low bits), so plain < comparisons need no tie handling.
func minWay(use []uint64, wayBits uint) int {
	m := use[0]
	for _, x := range use[1:] {
		if x < m {
			m = x
		}
	}
	return int(m & (1<<wayBits - 1))
}

// SWAR byte constants for the age-vector operations.
const (
	lowBytes  = 0x0101010101010101
	highBytes = 0x8080808080808080
)

// invalidTag fills the tag slots of invalid ways (New, Flush). Lookup tags
// are addr >> (lineShift + setBits), so with at least one bit of total
// shift no lookup can produce it — which makes a plain tag comparison
// against an invalid way an automatic mismatch, no valid-mask needed. The
// 8-way fused path leans on this: its sign-AND miss test is exact for
// partial sets too, and its hit path never touches the valid lane.
const invalidTag = ^uint64(0)

// ageTouch ages the set's SWAR stack for a reference to way w: every way
// at least as recent as w grows one step older and w becomes age 0, the
// textbook LRU-stack update done byte-parallel. incMask/geMask restrict
// the update to the low assoc bytes so the unused bytes of narrow sets
// never accumulate (an unbounded stray byte would eventually poison the
// borrow-free byte comparison, which needs every byte below 0x80).
func ageTouch(ages uint64, w int, incMask, geMask uint64) uint64 {
	aw := ages >> (8 * uint(w)) & 0xff
	// Per-byte ages[i] <= aw, high bit of each byte: bytes stay below
	// 0x80, so the subtraction never borrows across byte boundaries.
	ge := ((aw*lowBytes | highBytes) - ages) & geMask
	ages += ge >> 7 & incMask
	return ages &^ (0xff << (8 * uint(w)))
}

// ageEvictWay finds the oldest way of a FULL narrow set: the unique byte
// equal to assoc-1 among the low assoc bytes. vict is assoc-1 broadcast
// over all bytes; geMask keeps stray high bytes out of the zero-byte
// scan. TrailingZeros takes the lowest flagged byte, which sidesteps the
// classic zero-byte-trick false positives (they only occur above a true
// zero byte).
func ageEvictWay(ages, vict, geMask uint64) int {
	x := ages ^ vict
	return bits.TrailingZeros64((x-lowBytes)&^x&geMask) >> 3
}

// ageInstall ages every way of the set one step and installs way w as the
// most recent — the fill/eviction update (the victim's byte, at age
// assoc-1, is overwritten with 0; everyone else shifts one step older).
func ageInstall(ages uint64, w int, incMask uint64) uint64 {
	return (ages + incMask) &^ (0xff << (8 * uint(w)))
}

// accessLRU8 is the fused LRU demand path specialized for 8-way sets
// (P4-L2, the default mini-simulator config). Invalid ways hold invalidTag
// (see above), so one sign-AND reduction over the tag lane — d|-d has its
// sign bit set exactly when d != 0, so ANDing the sign words leaves it set
// exactly when no way matched — resolves hit-vs-miss exactly for full and
// partial sets alike, and the valid lane is only consulted on a miss to
// pick fill-vs-evict. The SWAR bodies are spelled out inline: as functions
// they exceed the compiler's inlining budget, and the call overhead is
// measurable at this grain.
func (c *Cache) accessLRU8(addr uint64) AccessResult {
	c.clock++
	l := addr >> c.lineShift
	valid := c.valid
	ages := c.ages
	// One predictable guard stating the lane-size invariants New()
	// establishes lets the bounds-check-elimination pass drop every check
	// in the body (set <= len(valid)-1 via the mask below).
	if len(valid) == 0 || len(ages) < len(valid) {
		return AccessResult{}
	}
	set := l & uint64(len(valid)-1)
	tag := l >> c.setBits
	base := int(set) * 8
	t := (*[8]uint64)(c.tags[base:])
	d0 := t[0] ^ tag
	d1 := t[1] ^ tag
	d2 := t[2] ^ tag
	d3 := t[3] ^ tag
	d4 := t[4] ^ tag
	d5 := t[5] ^ tag
	d6 := t[6] ^ tag
	d7 := t[7] ^ tag
	acc := (d0 | -d0) & (d1 | -d1) & (d2 | -d2) & (d3 | -d3) &
		(d4 | -d4) & (d5 | -d5) & (d6 | -d6) & (d7 | -d7)
	ag := ages[set]
	if acc>>63 != 0 { // no way matched: miss
		c.stats.Misses++
		vm := valid[set]
		var w int
		if vm == 0xff { // full set: evict the age-7 way
			c.stats.Evictions++
			x := ag ^ 0x0707070707070707
			// &7 is free and tells the compiler w < 8 (TrailingZeros64 of
			// a zero word would read 64, though a full set has an age-7
			// byte).
			w = bits.TrailingZeros64((x-lowBytes)&^x&highBytes) >> 3 & 7
		} else { // fill the lowest invalid way
			w = bits.TrailingZeros64(^vm&0xff) & 7
			valid[set] = vm | 1<<uint(w)
		}
		t[w] = tag
		ages[set] = (ag + lowBytes) &^ (0xff << (8 * uint(w)))
		return AccessResult{}
	}
	m := isZero64(d0) | isZero64(d1)<<1 | isZero64(d2)<<2 | isZero64(d3)<<3 |
		isZero64(d4)<<4 | isZero64(d5)<<5 | isZero64(d6)<<6 | isZero64(d7)<<7
	w := bits.TrailingZeros64(m)
	aw := ag >> (8 * uint(w)) & 0xff
	ge := ((aw*lowBytes | highBytes) - ag) & highBytes
	ages[set] = (ag + ge>>7) &^ (0xff << (8 * uint(w)))
	return AccessResult{Hit: true}
}

// batchLRU8 is accessLRU8 over a batch with the clock and statistics
// hoisted into locals.
func (c *Cache) batchLRU8(addrs []uint64, res []AccessResult) {
	clock := c.clock
	var misses, evicts uint64
	valid := c.valid
	ages := c.ages
	// Same lane-size guard as accessLRU8, hoisted out of the loop.
	if len(valid) == 0 || len(ages) < len(valid) {
		return
	}
	for i, addr := range addrs {
		clock++
		l := addr >> c.lineShift
		set := l & uint64(len(valid)-1)
		tag := l >> c.setBits
		base := int(set) * 8
		t := (*[8]uint64)(c.tags[base:])
		d0 := t[0] ^ tag
		d1 := t[1] ^ tag
		d2 := t[2] ^ tag
		d3 := t[3] ^ tag
		d4 := t[4] ^ tag
		d5 := t[5] ^ tag
		d6 := t[6] ^ tag
		d7 := t[7] ^ tag
		acc := (d0 | -d0) & (d1 | -d1) & (d2 | -d2) & (d3 | -d3) &
			(d4 | -d4) & (d5 | -d5) & (d6 | -d6) & (d7 | -d7)
		ag := ages[set]
		if acc>>63 != 0 { // no way matched: miss
			misses++
			vm := valid[set]
			var w int
			if vm == 0xff { // full set: evict the age-7 way
				evicts++
				x := ag ^ 0x0707070707070707
				w = bits.TrailingZeros64((x-lowBytes)&^x&highBytes) >> 3 & 7
			} else { // fill the lowest invalid way
				w = bits.TrailingZeros64(^vm&0xff) & 7
				valid[set] = vm | 1<<uint(w)
			}
			t[w] = tag
			ages[set] = (ag + lowBytes) &^ (0xff << (8 * uint(w)))
			res[i] = AccessResult{}
			continue
		}
		m := isZero64(d0) | isZero64(d1)<<1 | isZero64(d2)<<2 | isZero64(d3)<<3 |
			isZero64(d4)<<4 | isZero64(d5)<<5 | isZero64(d6)<<6 | isZero64(d7)<<7
		w := bits.TrailingZeros64(m)
		aw := ag >> (8 * uint(w)) & 0xff
		ge := ((aw*lowBytes | highBytes) - ag) & highBytes
		ages[set] = (ag + ge>>7) &^ (0xff << (8 * uint(w)))
		res[i] = AccessResult{Hit: true}
	}
	c.clock = clock
	c.stats.Misses += misses
	c.stats.Evictions += evicts
}
