package cache

// Hardware prefetcher models for the Pentium 4 L2 (§8 of the paper, citing
// the IA-32 optimization manual): an adjacent-cache-line prefetcher and a
// stride prefetcher tracking up to 8 independent streams. The AMD K7 has no
// documented hardware prefetcher, so its hierarchy attaches none.

// Prefetcher observes the L2 demand-access stream and issues line fills.
type Prefetcher interface {
	// Observe is called for every L2 demand access with the line-aligned
	// address and whether the access missed. It returns the line-aligned
	// addresses to prefetch.
	Observe(lineAddr uint64, miss bool) []uint64
	// Reset clears predictor state.
	Reset()
	// Name identifies the prefetcher in statistics.
	Name() string
}

// AdjacentLine prefetches the buddy of every missing line: lines are
// fetched in aligned pairs, mirroring the P4's "adjacent cache line
// prefetch" mode.
type AdjacentLine struct {
	lineSize uint64
	buf      [1]uint64
}

// NewAdjacentLine returns the adjacent-line prefetcher for the given line
// size.
func NewAdjacentLine(lineSize int) *AdjacentLine {
	return &AdjacentLine{lineSize: uint64(lineSize)}
}

// Observe implements Prefetcher.
func (a *AdjacentLine) Observe(lineAddr uint64, miss bool) []uint64 {
	if !miss {
		return nil
	}
	a.buf[0] = lineAddr ^ a.lineSize // buddy line within the aligned pair
	return a.buf[:]
}

// Reset implements Prefetcher.
func (a *AdjacentLine) Reset() {}

// Name implements Prefetcher.
func (a *AdjacentLine) Name() string { return "adjacent-line" }

// StrideStreams is the P4-style stride prefetcher: it tracks up to
// MaxStreams independent miss streams and, once a stream shows two
// consecutive strides of the same sign and magnitude, prefetches Depth
// lines ahead of each subsequent access in the stream.
type StrideStreams struct {
	lineSize uint64
	streams  []stream
	clock    uint64
	depth    int
	buf      []uint64
}

// MaxStreams is the number of concurrent streams the P4 stride prefetcher
// tracks.
const MaxStreams = 8

type stream struct {
	valid     bool
	lastLine  uint64
	stride    int64 // in lines
	confirmed bool
	lastUse   uint64
}

// NewStrideStreams returns a stride prefetcher. depth is how many lines
// ahead of the current access it runs (1 or 2 are typical).
func NewStrideStreams(lineSize, depth int) *StrideStreams {
	return &StrideStreams{
		lineSize: uint64(lineSize),
		streams:  make([]stream, MaxStreams),
		depth:    depth,
		buf:      make([]uint64, 0, depth),
	}
}

// Observe implements Prefetcher. Both hits and misses train the predictor;
// only trained streams issue prefetches.
func (s *StrideStreams) Observe(lineAddr uint64, miss bool) []uint64 {
	s.clock++
	ln := int64(lineAddr / s.lineSize)
	// Find the stream this access extends: the one whose last line is
	// within 8 lines of this access.
	best := -1
	for i := range s.streams {
		st := &s.streams[i]
		if !st.valid {
			continue
		}
		delta := ln - int64(st.lastLine)
		if delta != 0 && delta >= -8 && delta <= 8 {
			best = i
			break
		}
	}
	if best < 0 {
		if !miss {
			return nil // only misses allocate streams
		}
		victim := 0
		for i := range s.streams {
			if !s.streams[i].valid {
				victim = i
				break
			}
			if s.streams[i].lastUse < s.streams[victim].lastUse {
				victim = i
			}
		}
		s.streams[victim] = stream{valid: true, lastLine: uint64(ln), lastUse: s.clock}
		return nil
	}
	st := &s.streams[best]
	delta := ln - int64(st.lastLine)
	st.lastUse = s.clock
	if st.stride == delta {
		st.confirmed = true
	} else {
		st.stride = delta
		st.confirmed = false
	}
	st.lastLine = uint64(ln)
	if !st.confirmed || st.stride == 0 {
		return nil
	}
	s.buf = s.buf[:0]
	for d := 1; d <= s.depth; d++ {
		next := ln + st.stride*int64(d)
		if next < 0 {
			break
		}
		s.buf = append(s.buf, uint64(next)*s.lineSize)
	}
	return s.buf
}

// Reset implements Prefetcher.
func (s *StrideStreams) Reset() {
	for i := range s.streams {
		s.streams[i] = stream{}
	}
	s.clock = 0
}

// Name implements Prefetcher.
func (s *StrideStreams) Name() string { return "stride" }
