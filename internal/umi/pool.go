package umi

import (
	"sync"
	"time"

	"umi/internal/tracelog"
)

// This file is the asynchronous profile-analysis pipeline. The paper runs
// the analyzer synchronously: the guest stalls while every live profile is
// mini-simulated. The pipeline decouples the two so the guest keeps
// executing while analysis proceeds on other cores, without changing a
// single reported number.
//
// The constraint that shapes the design is the analyzer's logical cache:
// it is deliberately shared across profiles and across invocations (§5),
// so the mini-simulation is order-sensitive and cannot be sharded. The
// pipeline therefore splits each profile's analysis into
//
//   - a stateless half (materializing address columns, dominant-stride
//     discovery) fanned out to AnalyzerWorkers preparation goroutines, and
//   - the stateful half (cache simulation, per-PC merge) executed by one
//     sequencer goroutine in exactly the submission order,
//
// with the guest double-buffering profiles across the hand-off: the
// submitted buffer is owned by the pipeline until analyzed, and the
// trace's next instrumentation records into a recycled or fresh buffer.
// Bounded channels give backpressure end to end: a guest far ahead of the
// sequencer blocks on submit rather than queueing unbounded work.
//
// Memory visibility is by channel discipline alone, no locks: the guest's
// writes to a profile happen before the send into prepQ; a preparation
// worker's writes to job.prep happen before close(job.ready); the
// sequencer's writes to analyzer state happen before a barrier or close
// acknowledgement is observed by the guest.

// analysisJob is one filled profile handed from the guest thread to the
// pipeline, with the delinquency threshold captured at hand-off time.
type analysisJob struct {
	profile *AddressProfile
	alpha   float64
	prep    []colPrep
	// buf owns prep's backing storage. The worker that prepares the job
	// attaches a recycled (or fresh) prepBuf; the sequencer returns it to
	// the pool once the job's analysis has consumed prep.
	buf   *prepBuf
	ready chan struct{} // closed by the preparation worker
}

// invocation is one analyzer invocation's worth of jobs, already in the
// fixed PC-sorted merge order, stamped with the guest cycle count at
// hand-off so the flush-gap check sees the same clock as a synchronous
// run would.
type invocation struct {
	cycles uint64
	// cost is the modelled analysis cost the guest charged at hand-off,
	// carried along so the sequencer's analyzer-end event reports the same
	// span duration an inline run would.
	cost uint64
	jobs []*analysisJob
	// barrier, when non-nil, marks a synchronization point instead of an
	// invocation: the sequencer closes it without touching the analyzer.
	barrier chan struct{}
}

// Pipeline queue depths. prepQ scales with the worker count; seqDepth
// bounds how many whole invocations the guest may run ahead of the
// sequencer; recycleDepth bounds the idle-buffer pool.
const (
	seqDepth     = 4
	recycleDepth = 8
)

// analyzerPool runs the pipeline for one System. It owns the analyzer
// between start and drain points: the guest must not touch analyzer state
// while invocations are in flight.
//
// Preparation runs in one of two places: a private worker fleet owned by
// this pool (the standalone, one-session-per-process shape), or a
// SharedPrep pool serving many sessions at once (the daemon shape, with
// round-robin fairness across sessions). The sequencer, the hand-off
// protocol, and every visible result are identical either way.
type analyzerPool struct {
	an        *Analyzer
	consumers []ProfileConsumer
	met       *Metrics
	tlog      *tracelog.Log

	// shared/lane route preparation through a multi-session SharedPrep
	// instead of the private prepQ workers; exactly one of the two
	// preparation paths is active per pool.
	shared *SharedPrep
	lane   *prepLane

	prepQ   chan *analysisJob
	seqQ    chan invocation
	recycle chan *AddressProfile
	// prepBufs recycles preparation buffers from the sequencer (which
	// finishes with them) back to the workers (which fill them), so
	// steady-state preparation allocates nothing. Same best-effort
	// discipline as the profile recycle queue: an empty pool means the
	// worker allocates, a full one lets the GC take the buffer.
	prepBufs chan *prepBuf

	prepWG sync.WaitGroup
	seqWG  sync.WaitGroup
	closed bool
}

func newAnalyzerPool(an *Analyzer, consumers []ProfileConsumer, met *Metrics, tlog *tracelog.Log, workers int, shared *SharedPrep) *analyzerPool {
	bufWorkers := workers
	if shared != nil {
		bufWorkers = shared.Workers()
	}
	p := &analyzerPool{
		an:        an,
		consumers: consumers,
		met:       met,
		tlog:      tlog,
		seqQ:      make(chan invocation, seqDepth),
		recycle:   make(chan *AddressProfile, recycleDepth),
		prepBufs:  make(chan *prepBuf, 2*bufWorkers+seqDepth),
	}
	if shared != nil {
		p.shared = shared
		p.lane = shared.register(p)
	} else {
		p.prepQ = make(chan *analysisJob, 2*workers)
		p.prepWG.Add(workers)
		for i := 0; i < workers; i++ {
			go p.prepWorker()
		}
	}
	p.seqWG.Add(1)
	go p.sequencer()
	return p
}

// prepareJob runs the stateless half of one job's analysis — column
// materialization and stride discovery — and signals the sequencer. Called
// by a private prep worker or a SharedPrep worker; never by the sequencer.
func (p *analyzerPool) prepareJob(job *analysisJob) {
	start := time.Now()
	select {
	case job.buf = <-p.prepBufs:
	default:
		job.buf = new(prepBuf)
	}
	job.prep = job.buf.prepare(job.profile)
	ns := uint64(time.Since(start))
	p.met.PrepBusyNs.Add(ns)
	p.met.PrepLatency.Observe(ns)
	close(job.ready)
}

// prepWorker drains the preparation queue. Workers never block on anything
// but the queue itself, which is what makes the pipeline deadlock-free:
// prepQ always drains, so submit always completes, so the sequencer's
// wait on job.ready is always satisfied.
func (p *analyzerPool) prepWorker() {
	defer p.prepWG.Done()
	for job := range p.prepQ {
		p.prepareJob(job)
	}
}

// sequencer is the single goroutine that owns the analyzer's logical
// cache. It replays invocations, and jobs within each invocation, in
// submission order — the fixed merge order that makes every worker count
// produce identical reports.
func (p *analyzerPool) sequencer() {
	defer p.seqWG.Done()
	for inv := range p.seqQ {
		if inv.barrier != nil {
			close(inv.barrier)
			continue
		}
		// The latency observation spans the whole invocation, including
		// waits on preparation workers — it is the end-to-end time an
		// inline run would have stalled the guest for.
		start := time.Now()
		refs0, miss0 := p.an.SimulatedRefs, p.an.totalMiss
		p.an.BeginInvocation(inv.cycles)
		for _, job := range inv.jobs {
			<-job.ready
			p.an.analyzeWithPrep(job.profile, job.alpha, job.prep)
			// The analysis copied everything it keeps (columns included),
			// so the preparation buffer can go back to the workers.
			select {
			case p.prepBufs <- job.buf:
			default:
			}
			job.prep, job.buf = nil, nil
			for _, c := range p.consumers {
				c.Consume(job.profile)
			}
			select {
			case p.recycle <- job.profile:
			default: // recycling is best-effort; let the GC have it
			}
		}
		// History capture runs here, on the analyzer's owner thread, with
		// the hand-off cycle stamp — the same point and clock the inline
		// path uses, so both paths record byte-identical windows.
		p.an.captureWindow(inv.cycles, p.consumers)
		elapsed := uint64(time.Since(start))
		p.met.AnalysisLatency.Observe(elapsed)
		p.met.SeqBusyNs.Add(elapsed)
		p.met.AnalyzeWallNs.Add(elapsed)
		p.met.RecycleQueue.Set(int64(len(p.recycle)))
		// The span is stamped with the hand-off cycles and the modelled
		// cost — the same deterministic (ts, dur) an inline run reports —
		// while the wall-clock pipeline latency lives in WallNs.
		p.tlog.Emit(tracelog.Event{Type: tracelog.EvAnalyzerEnd,
			Cycles: inv.cycles, Dur: inv.cost,
			Arg1: p.an.SimulatedRefs - refs0, Arg2: p.an.totalMiss - miss0,
			Arg3: uint64(len(p.an.delinquent))})
	}
}

// submit hands one invocation to the pipeline. jobs must already be in
// the fixed merge order; ownership of every job's profile transfers to
// the pipeline. The call blocks when the bounded queues are full — the
// backpressure that keeps the guest from racing ahead of analysis.
func (p *analyzerPool) submit(cycles, cost uint64, jobs []*analysisJob) {
	for _, job := range jobs {
		job.ready = make(chan struct{})
		if p.shared != nil {
			p.shared.enqueue(p.lane, job)
		} else {
			p.prepQ <- job
		}
	}
	p.seqQ <- invocation{cycles: cycles, cost: cost, jobs: jobs}
	p.met.Submits.Inc()
	// Channel lengths are instantaneous, but the gauges' high-water marks
	// are what the self-overhead report cares about: sustained depth at
	// submit time means the guest is outrunning analysis. With a shared
	// pool the relevant depth is the fleet-wide pending total.
	if p.shared != nil {
		p.met.PrepQueue.Set(int64(p.shared.QueueDepth()))
	} else {
		p.met.PrepQueue.Set(int64(len(p.prepQ)))
	}
	p.met.SeqBacklog.Set(int64(len(p.seqQ)))
}

// drain blocks until every invocation submitted so far has been fully
// analyzed. The pipeline stays usable afterwards; analyzer state is safe
// to read until the next submit.
func (p *analyzerPool) drain() {
	b := make(chan struct{})
	p.seqQ <- invocation{barrier: b}
	<-b
}

// close drains the pipeline and stops its goroutines. The pool must not
// be used afterwards. With a SharedPrep attached the shared workers stay
// up (they serve other sessions); only this session's lane is detached,
// after the sequencer's shutdown has consumed every outstanding job.
func (p *analyzerPool) close() {
	if p.closed {
		return
	}
	p.closed = true
	if p.shared == nil {
		close(p.prepQ)
		p.prepWG.Wait()
	}
	close(p.seqQ)
	p.seqWG.Wait()
	if p.shared != nil {
		p.shared.unregister(p.lane)
		p.lane = nil
	}
}

// takeRecycled returns an analyzed profile buffer reinitialized for the
// given operations, or nil when none is idle. Never blocks: an empty
// recycle queue just means the caller allocates.
func (p *analyzerPool) takeRecycled(ops []uint64, isLoad []bool, rows int) *AddressProfile {
	select {
	case prof := <-p.recycle:
		prof.Reinit(ops, isLoad, rows)
		return prof
	default:
		return nil
	}
}
