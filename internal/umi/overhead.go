package umi

import (
	"fmt"
	"io"
	"strings"
	"time"

	"umi/internal/metrics"
)

// Per-stage self-overhead attribution: the observatory behind the paper's
// "cheap enough to leave on" claim. Every introspection stage is stamped
// twice — with modelled cycles from the configured cost model (the cost
// the guest is actually charged, fully deterministic) and with measured
// wall nanoseconds (what the host really paid, reported separately so the
// deterministic render stays golden-testable). The stages:
//
//	instrument  clone-and-patch + swap-back (InstrumentCost × events)
//	fill        guest-thread profile filling: prologs (PrologCost each)
//	            plus recorded references (PerRefCost each)
//	analyze     analyzer invocations (the AnalyzerFixed/AnalyzerPerRef
//	            cost charged at hand-off, inline or pipelined)
//	prep        pipeline preparation workers (wall only: prep is hidden
//	            from the guest by construction, so its modelled cost is 0)
//	history     window capture (observational: modelled 0)
//	emit        wire emit + LiveShipper writes (observational: modelled 0)
//	substrate   everything rio charges below UMI: dispatch, block/trace
//	            building, sample events
//
// All cells live in the metrics registry (single-writer atomics), so the
// live introspection endpoint can assemble a report mid-run without
// touching guest-owned state; the guest mirrors its cycle clock and
// cumulative overhead into gauges at analyzer-invocation boundaries.

// OverheadSchema identifies the OverheadReport JSON shape.
const OverheadSchema = "umi-overhead/v1"

// prologWallSample is the fill-stage wall estimator's sampling period:
// one in this many prolog executions is timed and the reading scaled up.
const prologWallSample = 64

// StageCost is one introspection stage's share of the run.
type StageCost struct {
	Stage  string `json:"stage"`
	Events uint64 `json:"events"`
	// ModelledCycles is the stage's deterministic cost-model charge;
	// CycleRatio relates it to the guest's own cycle count.
	ModelledCycles uint64  `json:"modelled_cycles"`
	CycleRatio     float64 `json:"cycle_ratio"`
	// WallNs is the measured host cost (0 where nothing is measured);
	// WallRatio relates it to the run's wall time.
	WallNs    uint64  `json:"wall_ns"`
	WallRatio float64 `json:"wall_ratio"`
}

// OverheadReport attributes a run's introspection cost per stage.
type OverheadReport struct {
	Schema string `json:"schema"`
	// GuestCycles is the modelled application work; OverheadCycles is
	// everything charged on top of it (UMI stages + substrate), so
	// OverheadRatio is the paper's self-overhead figure in model cycles.
	GuestCycles    uint64  `json:"guest_cycles"`
	OverheadCycles uint64  `json:"overhead_cycles"`
	OverheadRatio  float64 `json:"overhead_ratio"`
	// GuestWallNs is the run's measured wall time (final after Finish;
	// a live report shows the wall so far).
	GuestWallNs uint64      `json:"guest_wall_ns"`
	Stages      []StageCost `json:"stages"`
}

// Stage returns the named stage's cost (zero value when absent).
func (r *OverheadReport) Stage(name string) StageCost {
	for _, st := range r.Stages {
		if st.Stage == name {
			return st
		}
	}
	return StageCost{}
}

// syncGuestMirrors publishes the guest-owned clocks into registry gauges
// so report assembly (including the live HTTP path) never reads
// guest-owned state. Guest thread only; called at analyzer-invocation
// boundaries, at Finish, and at snapshot points.
func (s *System) syncGuestMirrors() {
	s.met.GuestCycles.Set(int64(s.rt.M.Cycles))
	s.met.GuestOverheadCyc.Set(int64(s.rt.Overhead))
	s.met.GuestWallNs.Set(int64(time.Since(s.wallStart)))
}

// Overhead assembles the end-of-run (or checkpoint) attribution report,
// synchronizing with the analysis pipeline first so every stage's cells
// are settled. The modelled fields are deterministic: same program, same
// config, same seed ⇒ identical values at any worker count.
func (s *System) Overhead() *OverheadReport {
	if s.pool != nil {
		s.pool.drain()
	}
	s.syncGuestMirrors()
	return buildOverhead(s.met.reg.Snapshot(), &s.cfg)
}

// LiveOverhead assembles a report from the registry as-is — safe from any
// goroutine mid-run (the HTTP introspection path). Guest-clock mirrors
// lag by up to one analyzer invocation.
func (s *System) LiveOverhead() *OverheadReport {
	return buildOverhead(s.met.reg.Snapshot(), &s.cfg)
}

// OverheadFromSnapshot rebuilds the attribution report a snapshot embeds;
// the daemon uses it to render per-session overhead from fleet snapshots.
func OverheadFromSnapshot(snap metrics.Snapshot, cfg *Config) *OverheadReport {
	return buildOverhead(snap, cfg)
}

func buildOverhead(snap metrics.Snapshot, cfg *Config) *OverheadReport {
	guest := uint64(snap.Gauge("umi.guest.cycles").Value)
	ovhd := uint64(snap.Gauge("umi.guest.overhead_cycles").Value)
	wall := uint64(snap.Gauge("umi.guest.wall_ns").Value)

	instrEv := snap.Counter("umi.traces.instrumented") + snap.Counter("umi.traces.deinstrumented")
	instrCyc := cfg.InstrumentCost * instrEv
	prologs := snap.Counter("umi.stage.fill.prologs")
	refs := snap.Counter("umi.stage.fill.refs")
	fillCyc := cfg.PrologCost*prologs + cfg.PerRefCost*refs
	anCyc := snap.Counter("umi.stage.analyze.cycles")
	var substrate uint64
	if tracked := instrCyc + fillCyc + anCyc; ovhd > tracked {
		substrate = ovhd - tracked
	}

	mk := func(name string, events, cycles, wallNs uint64) StageCost {
		st := StageCost{Stage: name, Events: events, ModelledCycles: cycles, WallNs: wallNs}
		if guest > 0 {
			st.CycleRatio = float64(cycles) / float64(guest)
		}
		if wall > 0 {
			st.WallRatio = float64(wallNs) / float64(wall)
		}
		return st
	}
	r := &OverheadReport{
		Schema:         OverheadSchema,
		GuestCycles:    guest,
		OverheadCycles: ovhd,
		GuestWallNs:    wall,
		Stages: []StageCost{
			mk("instrument", instrEv, instrCyc, snap.Counter("umi.stage.instrument.wall_ns")),
			mk("fill", prologs, fillCyc, snap.Counter("umi.stage.fill.wall_ns")),
			mk("analyze", snap.Counter("umi.analyzer.invocations"), anCyc, snap.Counter("umi.stage.analyze.wall_ns")),
			mk("prep", snap.Counter("umi.profiles.collected"), 0, snap.Counter("umi.pool.prep_busy_ns")),
			mk("history", snap.Histogram("umi.stage.history.latency_ns").Count, 0, snap.Counter("umi.stage.history.wall_ns")),
			mk("emit", snap.Counter("umi.stage.emit.frames"), 0, snap.Counter("umi.stage.emit.wall_ns")),
			mk("substrate", 0, substrate, 0),
		},
	}
	if guest > 0 {
		r.OverheadRatio = float64(ovhd) / float64(guest)
	}
	return r
}

// String renders the deterministic (modelled-cycles) view: golden-safe,
// byte-identical at every worker count. Wall measurements live in
// LiveString.
func (r *OverheadReport) String() string {
	if r == nil || r.GuestCycles == 0 {
		return "self-overhead: no guest cycles recorded\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "self-overhead: guest %d cycles, introspection %d cycles (%.3f%% of guest)\n",
		r.GuestCycles, r.OverheadCycles, 100*r.OverheadRatio)
	fmt.Fprintf(&sb, "  %-11s %12s %14s %9s\n", "stage", "events", "cycles", "of-guest")
	for _, st := range r.Stages {
		cyc := fmt.Sprintf("%d", st.ModelledCycles)
		pct := fmt.Sprintf("%.3f%%", 100*st.CycleRatio)
		if st.ModelledCycles == 0 && (st.Stage == "prep" || st.Stage == "history" || st.Stage == "emit") {
			cyc, pct = "-", "-" // observational: modelled cost 0 by construction
		}
		fmt.Fprintf(&sb, "  %-11s %12d %14s %9s\n", st.Stage, st.Events, cyc, pct)
	}
	return sb.String()
}

// LiveString renders the measured-wall view. Nondeterministic by nature;
// the fill row is a sampled estimate (see prologWallSample).
func (r *OverheadReport) LiveString() string {
	if r == nil || r.GuestWallNs == 0 {
		return "self-overhead (wall): no wall time recorded\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "self-overhead (wall): run %s\n", time.Duration(r.GuestWallNs))
	fmt.Fprintf(&sb, "  %-11s %12s %9s\n", "stage", "wall", "of-run")
	for _, st := range r.Stages {
		if st.Stage == "substrate" {
			continue // modelled-only: rio's wall cost is the run itself
		}
		note := ""
		if st.Stage == "fill" {
			note = "  (sampled estimate)"
		}
		fmt.Fprintf(&sb, "  %-11s %12s %8.3f%%%s\n",
			st.Stage, time.Duration(st.WallNs).String(), 100*st.WallRatio, note)
	}
	return sb.String()
}

// WriteOverheadProm renders the attribution report as Prometheus 0.0.4
// text: a per-stage labeled cycle/wall family plus the headline ratio —
// the derived view dashboards want next to the raw umi_stage_* families
// the registry already exposes.
func WriteOverheadProm(w io.Writer, r *OverheadReport) {
	if r == nil {
		return
	}
	fmt.Fprintf(w, "# TYPE umi_overhead_guest_cycles gauge\numi_overhead_guest_cycles %d\n", r.GuestCycles)
	fmt.Fprintf(w, "# TYPE umi_overhead_cycles_total gauge\numi_overhead_cycles_total %d\n", r.OverheadCycles)
	fmt.Fprintf(w, "# TYPE umi_overhead_ratio gauge\numi_overhead_ratio %s\n", promFloat(r.OverheadRatio))
	fmt.Fprintf(w, "# TYPE umi_overhead_stage_cycles gauge\n")
	for _, st := range r.Stages {
		fmt.Fprintf(w, "umi_overhead_stage_cycles{stage=%q} %d\n", st.Stage, st.ModelledCycles)
	}
	fmt.Fprintf(w, "# TYPE umi_overhead_stage_wall_ns gauge\n")
	for _, st := range r.Stages {
		fmt.Fprintf(w, "umi_overhead_stage_wall_ns{stage=%q} %d\n", st.Stage, st.WallNs)
	}
}

// LabeledOverhead pairs a fleet label (session id) with one report.
type LabeledOverhead struct {
	Label  string
	Report *OverheadReport
}

// WriteOverheadPromFleet renders many sessions' attribution reports as one
// exposition with session-labeled samples (the umid fleet shape). Each
// family's TYPE header is emitted once, ahead of every session's line.
func WriteOverheadPromFleet(w io.Writer, members []LabeledOverhead) {
	live := make([]LabeledOverhead, 0, len(members))
	for _, m := range members {
		if m.Report != nil {
			live = append(live, m)
		}
	}
	if len(live) == 0 {
		return
	}
	fmt.Fprintf(w, "# TYPE umi_overhead_guest_cycles gauge\n")
	for _, m := range live {
		fmt.Fprintf(w, "umi_overhead_guest_cycles{session=%q} %d\n", m.Label, m.Report.GuestCycles)
	}
	fmt.Fprintf(w, "# TYPE umi_overhead_cycles_total gauge\n")
	for _, m := range live {
		fmt.Fprintf(w, "umi_overhead_cycles_total{session=%q} %d\n", m.Label, m.Report.OverheadCycles)
	}
	fmt.Fprintf(w, "# TYPE umi_overhead_ratio gauge\n")
	for _, m := range live {
		fmt.Fprintf(w, "umi_overhead_ratio{session=%q} %s\n", m.Label, promFloat(m.Report.OverheadRatio))
	}
	fmt.Fprintf(w, "# TYPE umi_overhead_stage_cycles gauge\n")
	for _, m := range live {
		for _, st := range m.Report.Stages {
			fmt.Fprintf(w, "umi_overhead_stage_cycles{session=%q,stage=%q} %d\n", m.Label, st.Stage, st.ModelledCycles)
		}
	}
	fmt.Fprintf(w, "# TYPE umi_overhead_stage_wall_ns gauge\n")
	for _, m := range live {
		for _, st := range m.Report.Stages {
			fmt.Fprintf(w, "umi_overhead_stage_wall_ns{session=%q,stage=%q} %d\n", m.Label, st.Stage, st.WallNs)
		}
	}
}
