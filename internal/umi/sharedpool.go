package umi

import "sync"

// SharedPrep is a daemon-wide pool of stateless preparation workers shared
// by many concurrent profiling sessions — the multi-tenant form of the
// pipeline in pool.go. Each session keeps its own sequencer (the logical
// cache is order-sensitive per session and cannot be shared), but the
// stateless half of analysis — column materialization and dominant-stride
// discovery — carries no session state at all, so one worker fleet can
// serve every session.
//
// Two properties shape the implementation:
//
//   - Fairness. Each registered session owns a lane (a FIFO of pending
//     jobs); workers drain lanes round-robin, taking one job per visit, so
//     a session flooding thousands of jobs delays a co-tenant's next job
//     by at most one job per active lane per round — never by the length
//     of the flooder's backlog.
//   - Bounded memory. The queue bound is global: enqueue blocks once
//     maxQueue jobs are pending across all lanes, pushing backpressure
//     into the flooding session's guest thread exactly as the per-session
//     pipeline's bounded channels do. QueueDepth exposes the instantaneous
//     total for admission control at the service layer.
//
// Determinism is inherited, not engineered: preparation is stateless and
// each job signals completion via its own ready channel, so the order
// workers finish jobs in cannot affect the order each session's sequencer
// consumes them in. A session run through a SharedPrep of any width
// produces byte-identical reports to a standalone run.
type SharedPrep struct {
	mu   sync.Mutex
	cond *sync.Cond // signalled on enqueue, dequeue, and close

	lanes    []*prepLane
	rr       int // round-robin scan start, advanced past each pop
	queued   int // jobs enqueued and not yet picked up, across all lanes
	maxQueue int
	closed   bool

	workers int
	wg      sync.WaitGroup
}

// prepLane is one session's FIFO of pending preparation jobs. The owner
// pool supplies the recycled preparation buffers and the metrics registry
// the prepared jobs account against.
type prepLane struct {
	owner *analyzerPool
	jobs  []*analysisJob
	head  int
}

func (l *prepLane) empty() bool { return l.head >= len(l.jobs) }

func (l *prepLane) push(job *analysisJob) {
	// Compact the consumed prefix once it dominates the slice, so a
	// long-lived lane does not grow without bound.
	if l.head > 64 && l.head*2 > len(l.jobs) {
		n := copy(l.jobs, l.jobs[l.head:])
		l.jobs = l.jobs[:n]
		l.head = 0
	}
	l.jobs = append(l.jobs, job)
}

func (l *prepLane) pop() *analysisJob {
	job := l.jobs[l.head]
	l.jobs[l.head] = nil
	l.head++
	if l.empty() {
		l.jobs = l.jobs[:0]
		l.head = 0
	}
	return job
}

// DefaultSharedQueueBound is the global pending-job bound used when
// NewSharedPrep is given a non-positive maxQueue.
const DefaultSharedQueueBound = 256

// NewSharedPrep starts a shared preparation pool with the given worker
// count (minimum 1) and global queue bound (non-positive selects
// DefaultSharedQueueBound). Close stops it.
func NewSharedPrep(workers, maxQueue int) *SharedPrep {
	if workers < 1 {
		workers = 1
	}
	if maxQueue <= 0 {
		maxQueue = DefaultSharedQueueBound
	}
	p := &SharedPrep{workers: workers, maxQueue: maxQueue}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *SharedPrep) Workers() int { return p.workers }

// QueueDepth returns the jobs currently enqueued and not yet picked up,
// across all sessions — the admission-control signal: sustained depth near
// the bound means the fleet is outrunning preparation.
func (p *SharedPrep) QueueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued
}

// QueueBound returns the global pending-job bound.
func (p *SharedPrep) QueueBound() int { return p.maxQueue }

// register attaches a session's pipeline and returns its lane.
func (p *SharedPrep) register(ap *analyzerPool) *prepLane {
	l := &prepLane{owner: ap}
	p.mu.Lock()
	p.lanes = append(p.lanes, l)
	p.mu.Unlock()
	return l
}

// unregister detaches a lane. The caller must have drained the session's
// pipeline first (analyzerPool.close does), so the lane is empty: every
// enqueued job belongs to a submitted invocation, and the sequencer's
// shutdown waited on each job's ready channel.
func (p *SharedPrep) unregister(l *prepLane) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, lane := range p.lanes {
		if lane == l {
			p.lanes = append(p.lanes[:i], p.lanes[i+1:]...)
			if p.rr > i {
				p.rr--
			}
			break
		}
	}
	if len(p.lanes) > 0 {
		p.rr %= len(p.lanes)
	} else {
		p.rr = 0
	}
}

// enqueue hands one job to the pool on behalf of a lane. It blocks while
// the global queue is at its bound — backpressure lands on the submitting
// session's guest thread only; co-tenants' enqueues proceed as soon as a
// worker frees a slot.
func (p *SharedPrep) enqueue(l *prepLane, job *analysisJob) {
	p.mu.Lock()
	for p.queued >= p.maxQueue && !p.closed {
		p.cond.Wait()
	}
	if p.closed {
		// A closed pool can no longer prepare; complete the job inline so
		// the submitting sequencer never deadlocks on job.ready. This only
		// happens when a session outlives its daemon's pool, which the
		// service layer's drain ordering prevents — the fallback keeps the
		// failure mode a slow path, not a hang.
		p.mu.Unlock()
		l.owner.prepareJob(job)
		return
	}
	l.push(job)
	p.queued++
	p.mu.Unlock()
	p.cond.Broadcast()
}

// worker drains lanes round-robin: one job per lane visit, cursor advanced
// past the chosen lane, so every active lane is served once per round
// regardless of backlog skew.
func (p *SharedPrep) worker() {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		if job, lane := p.next(); job != nil {
			p.queued--
			p.mu.Unlock()
			p.cond.Broadcast() // a queue slot freed: unblock enqueuers
			lane.owner.prepareJob(job)
			p.mu.Lock()
			continue
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		p.cond.Wait()
	}
}

// next pops one job round-robin, returning nil when every lane is empty.
// Caller holds p.mu.
func (p *SharedPrep) next() (*analysisJob, *prepLane) {
	n := len(p.lanes)
	for i := 0; i < n; i++ {
		idx := (p.rr + i) % n
		if l := p.lanes[idx]; !l.empty() {
			p.rr = (idx + 1) % n
			return l.pop(), l
		}
	}
	return nil, nil
}

// Close stops the workers after the pending queue drains. Sessions must be
// drained and closed first (the service layer's shutdown ordering); any
// job enqueued after Close is prepared inline by the enqueuer.
func (p *SharedPrep) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
