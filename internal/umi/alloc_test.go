//go:build !race

package umi

import (
	"testing"

	"umi/internal/cache"
)

// The analyzer replays billions of references over a harness run; its
// steady state — warm scratch buffers, stable operation set — must not
// allocate per profile. Guarded by !race because the race detector's
// instrumentation skews allocation accounting; make check runs these tests
// in a separate non-race pass.
func TestAnalyzeProfileZeroAllocs(t *testing.T) {
	cfg := DefaultConfig(cache.P4L2)
	an := NewAnalyzer(&cfg)
	ops := []uint64{0x10, 0x20, 0x30, 0x40}
	isLoad := []bool{true, true, false, true}
	prof := NewAddressProfile(ops, isLoad, 256)
	fill := func() {
		prof.Reset()
		for r := 0; r < 256; r++ {
			row, _ := prof.OpenRow()
			for c := range ops {
				// Strided and conflict-heavy: misses dominate, so the
				// delinquent-column retention path runs every invocation.
				prof.Record(row, c, uint64(r)*4096+uint64(c)*64)
			}
		}
	}
	fill()
	cycles := uint64(0)
	runOnce := func() {
		cycles += 1000
		an.BeginInvocation(cycles)
		an.AnalyzeProfile(prof, 0.5)
	}
	for i := 0; i < 3; i++ {
		runOnce() // warm scratch: prep buffers, columns, per-op stats
	}
	if len(an.Delinquent()) == 0 {
		t.Fatal("test profile must produce delinquent loads")
	}
	if n := testing.AllocsPerRun(100, runOnce); n != 0 {
		t.Errorf("AnalyzeProfile allocated %v times per invocation in steady state", n)
	}
}

// TestAnalyzeProfileSparseZeroAllocs is the sparse-replay twin of the test
// above: unrecorded cells force the analyzer off the dense row-aligned
// batch path and onto the gather path (batchAddrs/batchCols scratch), which
// must be equally allocation-free once warm.
func TestAnalyzeProfileSparseZeroAllocs(t *testing.T) {
	cfg := DefaultConfig(cache.P4L2)
	an := NewAnalyzer(&cfg)
	ops := []uint64{0x10, 0x20, 0x30, 0x40}
	isLoad := []bool{true, true, false, true}
	prof := NewAddressProfile(ops, isLoad, 256)
	prof.Reset()
	for r := 0; r < 256; r++ {
		row, _ := prof.OpenRow()
		for c := range ops {
			if (r+c)%5 == 0 {
				continue // hole: trace exited before this op ran
			}
			prof.Record(row, c, uint64(r)*4096+uint64(c)*64)
		}
	}
	if prof.Recorded() == prof.Rows()*len(ops) {
		t.Fatal("profile must be sparse to exercise the gather path")
	}
	cycles := uint64(0)
	runOnce := func() {
		cycles += 1000
		an.BeginInvocation(cycles)
		an.AnalyzeProfile(prof, 0.5)
	}
	for i := 0; i < 3; i++ {
		runOnce()
	}
	if n := testing.AllocsPerRun(100, runOnce); n != 0 {
		t.Errorf("sparse AnalyzeProfile allocated %v times per invocation in steady state", n)
	}
}
