package umi

import (
	"fmt"
	"strings"

	"umi/internal/metrics"
	"umi/internal/rio"
)

// Self-observability for the UMI runtime. The paper's claim is that
// introspection is cheap enough to leave on in production; this file is
// how the runtime continuously measures its own cost instead of asserting
// it. Every System carries a Metrics set: atomic counters, gauges, and
// latency histograms updated on the thread that owns each event — the
// guest thread for region-selection and instrumentation events, the
// sequencer goroutine for analysis events — so a snapshot is safe from any
// goroutine and the hot-path cost is a handful of uncontended atomic adds.
//
// Metric names, by layer:
//
//	umi.traces.*        region selector / instrumentor events
//	umi.candidates.*    operation filtering (§4.1) accounting
//	umi.profiles.*      address-profile fill events
//	umi.analyzer.*      profile-analyzer invocations and latency
//	umi.pool.*          asynchronous pipeline health (queue depths, busy time)
//	minisim.*           the analyzer's logical cache (accesses, misses, evictions)
//	rio.*               substrate counters mirrored at snapshot points
type Metrics struct {
	reg *metrics.Registry

	// Region selector / instrumentor (guest thread).
	TracesSeen           *metrics.Counter
	TracesInstrumented   *metrics.Counter
	TracesDeinstrumented *metrics.Counter
	TracesBarren         *metrics.Counter
	CandidatesKept       *metrics.Counter
	CandidatesFiltered   *metrics.Counter
	ProfileFills         *metrics.Counter // per-trace profile reached capacity
	GlobalFills          *metrics.Counter // global trace-profile trigger (§4.2)
	ProfilesCollected    *metrics.Counter
	AdaptiveAlphaSteps   *metrics.Counter
	AdaptiveFreqSteps    *metrics.Counter

	// Analyzer (sequencer goroutine, or guest thread on the inline path).
	Invocations      *metrics.Counter
	Flushes          *metrics.Counter
	SimulatedRefs    *metrics.Counter
	MiniSimAccesses  *metrics.Counter
	MiniSimMisses    *metrics.Counter
	MiniSimEvictions *metrics.Counter
	AnalysisLatency  *metrics.Histogram // wall ns per analyzer invocation

	// Pipeline (pool.go).
	Submits       *metrics.Counter
	SyncFallbacks *metrics.Counter // invocations forced inline despite workers >= 2
	PrepQueue     *metrics.Gauge   // prepQ depth at submit (value / high-water)
	SeqBacklog    *metrics.Gauge   // whole invocations queued behind the sequencer
	RecycleQueue  *metrics.Gauge   // idle recycled buffers
	RecycleHits   *metrics.Counter // instrumentations served from a recycled buffer
	RecycleMisses *metrics.Counter // instrumentations that had to allocate
	PrepBusyNs    *metrics.Counter // cumulative preparation-worker busy time
	SeqBusyNs     *metrics.Counter // cumulative sequencer busy time

	// Per-stage self-overhead attribution (overhead.go). Event counters
	// feed the modelled cost model (cycles = events × configured unit
	// cost); wall counters hold measured nanoseconds. Each cell is written
	// only by the thread that owns its stage — guest thread for
	// instrument/fill/analyze-charge/emit, the analyzer owner (sequencer
	// goroutine or inline guest) for history capture, prep workers for
	// prep latency — so scraping them from any goroutine is race-free.
	FillPrologs       *metrics.Counter   // instrumented trace entries (prolog executions)
	FillRefs          *metrics.Counter   // profiled references recorded by hooks
	FillWallNs        *metrics.Counter   // prolog wall time (sampled estimator, see overhead.go)
	InstrumentWallNs  *metrics.Counter   // clone-and-patch wall time
	InstrumentLatency *metrics.Histogram // wall ns per instrument event
	AnalyzeCycles     *metrics.Counter   // modelled analysis cost charged to the guest
	AnalyzeWallNs     *metrics.Counter   // measured analysis wall (inline stall or sequencer busy)
	PrepLatency       *metrics.Histogram // wall ns per profile preparation
	HistoryWallNs     *metrics.Counter   // window-capture wall time
	HistoryLatency    *metrics.Histogram // wall ns per captured window
	EmitWallNs        *metrics.Counter   // wire emit wall time (encoder + LiveShipper)
	EmitFrames        *metrics.Counter   // emitted invocation frames (+1 for the tail)
	EmitLatency       *metrics.Histogram // wall ns per emitted invocation
	GuestCycles       *metrics.Gauge     // mirror of the modelled guest cycle clock
	GuestOverheadCyc  *metrics.Gauge     // mirror of total modelled introspection overhead
	GuestWallNs       *metrics.Gauge     // run wall time (final after Finish)

	// Sampler (sampler.go): burst / reservoir / adaptation activity.
	BurstSkips        *metrics.Counter // trace entries skipped by the burst schedule
	ReservoirReplaced *metrics.Counter // rows that overwrote a reservoir resident
	ReservoirDrops    *metrics.Counter // rows dropped by the reservoir
	AdaptShrinks      *metrics.Counter // adaptation steps down (shrink/stretch)
	AdaptRearms       *metrics.Counter // phase-change re-arms back to full profiling
	AdaptLevel        *metrics.Gauge   // current adaptation level (value / high-water)
}

// analysisLatencyBuckets is the fixed histogram scheme for analyzer
// invocation latency: 1µs doubling through ~8s (24 buckets), wide enough
// for a whole-profile mini-simulation at either end.
var analysisLatencyBuckets = metrics.ExpBuckets(1_000, 24)

// stageLatencyBuckets is the scheme for the finer per-stage latencies
// (instrument, prep, history capture, wire emit): these stages run in the
// hundreds of nanoseconds to low milliseconds, so the scale starts at
// 250ns and doubles through ~2s.
var stageLatencyBuckets = metrics.ExpBuckets(250, 24)

func newMetrics() *Metrics {
	reg := metrics.NewRegistry()
	return &Metrics{
		reg:                  reg,
		TracesSeen:           reg.Counter("umi.traces.seen"),
		TracesInstrumented:   reg.Counter("umi.traces.instrumented"),
		TracesDeinstrumented: reg.Counter("umi.traces.deinstrumented"),
		TracesBarren:         reg.Counter("umi.traces.barren"),
		CandidatesKept:       reg.Counter("umi.candidates.kept"),
		CandidatesFiltered:   reg.Counter("umi.candidates.filtered"),
		ProfileFills:         reg.Counter("umi.profiles.fills"),
		GlobalFills:          reg.Counter("umi.profiles.global_fills"),
		ProfilesCollected:    reg.Counter("umi.profiles.collected"),
		AdaptiveAlphaSteps:   reg.Counter("umi.adaptive.alpha_steps"),
		AdaptiveFreqSteps:    reg.Counter("umi.adaptive.freq_steps"),
		Invocations:          reg.Counter("umi.analyzer.invocations"),
		Flushes:              reg.Counter("umi.analyzer.flushes"),
		SimulatedRefs:        reg.Counter("umi.analyzer.refs"),
		MiniSimAccesses:      reg.Counter("minisim.accesses"),
		MiniSimMisses:        reg.Counter("minisim.misses"),
		MiniSimEvictions:     reg.Counter("minisim.evictions"),
		AnalysisLatency:      reg.Histogram("umi.analyzer.latency_ns", analysisLatencyBuckets),
		Submits:              reg.Counter("umi.pool.submits"),
		SyncFallbacks:        reg.Counter("umi.pool.sync_fallbacks"),
		PrepQueue:            reg.Gauge("umi.pool.prep_queue"),
		SeqBacklog:           reg.Gauge("umi.pool.seq_backlog"),
		RecycleQueue:         reg.Gauge("umi.pool.recycle_queue"),
		RecycleHits:          reg.Counter("umi.pool.recycle_hits"),
		RecycleMisses:        reg.Counter("umi.pool.recycle_misses"),
		PrepBusyNs:           reg.Counter("umi.pool.prep_busy_ns"),
		SeqBusyNs:            reg.Counter("umi.pool.seq_busy_ns"),
		FillPrologs:          reg.Counter("umi.stage.fill.prologs"),
		FillRefs:             reg.Counter("umi.stage.fill.refs"),
		FillWallNs:           reg.Counter("umi.stage.fill.wall_ns"),
		InstrumentWallNs:     reg.Counter("umi.stage.instrument.wall_ns"),
		InstrumentLatency:    reg.Histogram("umi.stage.instrument.latency_ns", stageLatencyBuckets),
		AnalyzeCycles:        reg.Counter("umi.stage.analyze.cycles"),
		AnalyzeWallNs:        reg.Counter("umi.stage.analyze.wall_ns"),
		PrepLatency:          reg.Histogram("umi.stage.prep.latency_ns", stageLatencyBuckets),
		HistoryWallNs:        reg.Counter("umi.stage.history.wall_ns"),
		HistoryLatency:       reg.Histogram("umi.stage.history.latency_ns", stageLatencyBuckets),
		EmitWallNs:           reg.Counter("umi.stage.emit.wall_ns"),
		EmitFrames:           reg.Counter("umi.stage.emit.frames"),
		EmitLatency:          reg.Histogram("umi.stage.emit.latency_ns", stageLatencyBuckets),
		GuestCycles:          reg.Gauge("umi.guest.cycles"),
		GuestOverheadCyc:     reg.Gauge("umi.guest.overhead_cycles"),
		GuestWallNs:          reg.Gauge("umi.guest.wall_ns"),
		BurstSkips:           reg.Counter("umi.sampler.burst_skips"),
		ReservoirReplaced:    reg.Counter("umi.sampler.reservoir_replaced"),
		ReservoirDrops:       reg.Counter("umi.sampler.reservoir_drops"),
		AdaptShrinks:         reg.Counter("umi.sampler.adapt_shrinks"),
		AdaptRearms:          reg.Counter("umi.sampler.adapt_rearms"),
		AdaptLevel:           reg.Gauge("umi.sampler.level"),
	}
}

// syncRIO mirrors the substrate's counters into the registry. Called on
// the guest thread (which owns the runtime) at snapshot points.
func (m *Metrics) syncRIO(rt *rio.Runtime) {
	c := rt.Counters()
	m.reg.Counter("rio.blocks_built").Store(uint64(c.BlocksBuilt))
	m.reg.Counter("rio.traces_built").Store(uint64(c.TracesBuilt))
	m.reg.Counter("rio.block_flushes").Store(uint64(c.BlockFlushes))
	m.reg.Counter("rio.dispatches").Store(c.Dispatches)
	m.reg.Counter("rio.indirect_lookups").Store(c.IndirectLookups)
	m.reg.Counter("rio.samples").Store(c.Samples)
	m.reg.Counter("rio.sample_hits").Store(c.SampleHits)
}

// syncCache mirrors the analyzer's logical-cache statistics. The caller
// must hold analyzer ownership (pipeline drained, or running on the
// sequencer).
func (m *Metrics) syncCache(a *Analyzer) {
	cs := a.cache.Stats()
	m.MiniSimAccesses.Store(cs.Accesses)
	m.MiniSimMisses.Store(cs.Misses)
	m.MiniSimEvictions.Store(cs.Evictions)
}

// FilterRate returns the fraction of candidate memory operations the
// instrumentor filtered out (§4.1; the paper reports ~80%), and false when
// no candidates were seen.
func FilterRate(s metrics.Snapshot) (float64, bool) {
	kept := s.Counter("umi.candidates.kept")
	filtered := s.Counter("umi.candidates.filtered")
	if kept+filtered == 0 {
		return 0, false
	}
	return float64(filtered) / float64(kept+filtered), true
}

// MetricsSnapshot returns a point-in-time copy of every runtime metric,
// synchronizing with the analysis pipeline first so analyzer-side values
// are complete through the last hand-off.
func (s *System) MetricsSnapshot() metrics.Snapshot {
	if s.pool != nil {
		s.pool.drain()
	}
	s.met.syncCache(s.an)
	s.met.syncRIO(s.rt)
	s.syncGuestMirrors()
	return s.met.reg.Snapshot()
}

// LiveMetricsSnapshot copies the registry as-is, without draining the
// pipeline or mirroring substrate counters. Unlike MetricsSnapshot it is
// safe to call from any goroutine while the guest is mid-run — the
// registry is all atomics — which is what the HTTP introspection endpoint
// needs. Analyzer-side values may lag by in-flight invocations, and the
// rio.* / minisim.* mirrors hold their last synced values.
func (s *System) LiveMetricsSnapshot() metrics.Snapshot {
	return s.met.reg.Snapshot()
}

// Metrics exposes the live metric set (for tests and in-process sinks).
func (s *System) Metrics() *Metrics { return s.met }

// Snapshot copies the registry as-is. All registry cells are atomics, so
// it is safe from any goroutine while analysis runs — the replay/ingest
// analogue of LiveMetricsSnapshot.
func (m *Metrics) Snapshot() metrics.Snapshot { return m.reg.Snapshot() }

// emitMetrics delivers a snapshot to the OnMetrics sink, if one is set.
// Runs on the guest thread at analyzer-invocation boundaries; on the
// asynchronous path the snapshot reflects analyses completed so far, not
// the invocation just handed off (those appear in later emissions and in
// the final snapshot from Finish).
func (s *System) emitMetrics() {
	if s.OnMetrics == nil {
		return
	}
	s.met.syncRIO(s.rt)
	s.OnMetrics(s.met.reg.Snapshot())
}

// FormatMetrics renders a snapshot as the CLI's self-overhead section:
// derived headline rates first (filter rate, analysis latency summary,
// queue high-water marks), then the full registry dump.
func FormatMetrics(snap metrics.Snapshot) string {
	var sb strings.Builder
	if rate, ok := FilterRate(snap); ok {
		fmt.Fprintf(&sb, "filter rate:      %.1f%% of candidate ops filtered (%d kept, %d filtered)\n",
			100*rate, snap.Counter("umi.candidates.kept"), snap.Counter("umi.candidates.filtered"))
	}
	lat := snap.Histogram("umi.analyzer.latency_ns")
	if lat.Count > 0 {
		fmt.Fprintf(&sb, "analysis latency: %d invocations, mean %.0fns p50=%dns p99=%dns max=%dns\n",
			lat.Count, lat.Mean(), lat.Quantile(0.50), lat.Quantile(0.99), lat.Max)
	}
	fmt.Fprintf(&sb, "queue pressure:   prep %d (max %d), sequencer %d (max %d), recycle %d (max %d)\n",
		snap.Gauge("umi.pool.prep_queue").Value, snap.Gauge("umi.pool.prep_queue").Max,
		snap.Gauge("umi.pool.seq_backlog").Value, snap.Gauge("umi.pool.seq_backlog").Max,
		snap.Gauge("umi.pool.recycle_queue").Value, snap.Gauge("umi.pool.recycle_queue").Max)
	sb.WriteString(snap.String())
	return sb.String()
}
