package umi

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"umi/internal/cache"
)

// FuzzAnalyzerProfile feeds arbitrary address profiles — random geometry,
// random density, random addresses, random alpha — through the profile
// analyzer and checks the numeric contract every consumer assumes: no
// panic, every miss ratio in [0,1] and never NaN, stride confidences in
// [0,1], and the delinquent set restricted to profiled loads. A second
// analyzer replaying the same profile must land on identical results
// (determinism is what makes the pipeline's out-of-band analysis legal).
func FuzzAnalyzerProfile(f *testing.F) {
	f.Add(uint8(2), uint8(8), uint8(30), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(uint8(1), uint8(1), uint8(0), []byte{})
	f.Add(uint8(7), uint8(31), uint8(100), []byte{255, 0, 255, 0, 128, 64, 32, 16})
	f.Fuzz(func(t *testing.T, nOpsRaw, rowsRaw, alphaRaw uint8, data []byte) {
		nOps := 1 + int(nOpsRaw%8)
		rows := 1 + int(rowsRaw%32)
		alpha := float64(alphaRaw%101) / 100

		cursor := 0
		next := func() byte {
			if cursor >= len(data) {
				return 0
			}
			b := data[cursor]
			cursor++
			return b
		}

		ops := make([]uint64, nOps)
		isLoad := make([]bool, nOps)
		for i := range ops {
			ops[i] = 0x400000 + uint64(i)*4
			isLoad[i] = next()%4 != 0 // mostly loads, as in real traces
		}
		p := NewAddressProfile(ops, isLoad, rows)
		for r := 0; r < rows; r++ {
			row, ok := p.OpenRow()
			if !ok {
				t.Fatalf("profile full after %d of %d rows", r, rows)
			}
			for c := 0; c < nOps; c++ {
				if next()%4 == 0 {
					continue // unrecorded cell (partial trace execution)
				}
				addr := (uint64(next())<<8 | uint64(next())) * 8
				p.Record(row, c, addr)
			}
		}

		cfg := DefaultConfig(cache.P4L2)
		invCycles := uint64(next()) * 100_000
		run := func() *Analyzer {
			an := NewAnalyzer(&cfg)
			an.BeginInvocation(invCycles)
			an.AnalyzeProfile(p, alpha)
			return an
		}
		an := run()

		checkRatio := func(what string, r float64) {
			if math.IsNaN(r) || r < 0 || r > 1 {
				t.Fatalf("%s = %v, want a ratio in [0,1]", what, r)
			}
		}
		checkRatio("analyzer miss ratio", an.MissRatio())
		loads := make(map[uint64]bool)
		for i, pc := range ops {
			if isLoad[i] {
				loads[pc] = true
			}
		}
		for pc, st := range an.OpStats() {
			checkRatio("op stat miss ratio", st.MissRatio())
			if st.Misses > st.Accesses {
				t.Fatalf("op %#x: misses %d exceed accesses %d", pc, st.Misses, st.Accesses)
			}
		}
		for pc := range an.Delinquent() {
			if !loads[pc] {
				t.Fatalf("non-load %#x labelled delinquent", pc)
			}
			if _, ok := an.Column(pc); !ok {
				t.Fatalf("delinquent %#x has no recorded column", pc)
			}
		}
		for pc, si := range an.Strides() {
			checkRatio("stride confidence", si.Confidence)
			if !loads[pc] {
				t.Fatalf("non-load %#x has a stride", pc)
			}
			if si.Stride == 0 {
				t.Fatalf("load %#x: zero stride should not be recorded", pc)
			}
		}

		// Determinism: an independent analyzer over the same profile must
		// reproduce every cumulative result.
		again := run()
		if again.MissRatio() != an.MissRatio() ||
			again.SimulatedRefs != an.SimulatedRefs ||
			len(again.Delinquent()) != len(an.Delinquent()) {
			t.Fatalf("replay diverged: %v vs %v", again, an)
		}
	})
}

// FuzzWindowSummary round-trips arbitrary window summaries through the
// exported JSON layout (umiprof -history-out, /history). Every field must
// survive: a silent drop here would corrupt the history export schema.
func FuzzWindowSummary(f *testing.F) {
	f.Add(1, uint64(1000), uint64(64), uint64(60), uint64(12), 3, -1, uint64(0xdeadbeef), int64(64), 5, 200, true)
	f.Add(0, uint64(0), uint64(0), uint64(0), uint64(0), 0, 0, uint64(0), int64(0), 0, 0, false)
	f.Fuzz(func(t *testing.T, inv int, cycles, refs, acc, miss uint64,
		del, newDel int, hash uint64, stride int64, strided, ws int, phase bool) {
		w := WindowSummary{
			Invocation:     inv,
			Cycles:         cycles,
			Refs:           refs,
			Accesses:       acc,
			Misses:         miss,
			CumMissRatio:   float64(miss%7) / 7,
			Delinquent:     del,
			NewDelinquent:  newDel,
			DelinquentHash: hash,
			Jaccard:        float64(acc%11) / 11,
			PhaseChange:    phase,
			StridedLoads:   strided,
			TopStride:      stride,
			WSLines:        ws,
		}
		if acc > 0 {
			w.WindowMissRatio = float64(miss%acc) / float64(acc)
		}
		b, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back WindowSummary
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !reflect.DeepEqual(w, back) {
			t.Fatalf("round trip diverged:\n  in  %+v\n  out %+v", w, back)
		}
		// The view wrapper must round-trip too, including the schema stamp.
		v := HistoryView{Schema: historySchema, Total: 1, Cap: 4,
			Windows: []WindowSummary{w}}
		if phase {
			v.PhaseChanges = 1
		}
		vb, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal view: %v", err)
		}
		var vback HistoryView
		if err := json.Unmarshal(vb, &vback); err != nil {
			t.Fatalf("unmarshal view: %v", err)
		}
		if !reflect.DeepEqual(v, vback) {
			t.Fatalf("view round trip diverged:\n  in  %+v\n  out %+v", v, vback)
		}
	})
}
