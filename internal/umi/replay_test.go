package umi

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"umi/internal/cache"
	"umi/internal/program"
	"umi/internal/rio"
	"umi/internal/vm"
	"umi/internal/wire"
)

// emitUMI runs a guest with stream emission enabled and returns the live
// system plus the recorded umi-profile/v1 stream — the capture side of
// every replay test.
func emitUMI(t *testing.T, p *program.Program, cfg Config) (*System, *rio.Runtime, []byte) {
	t.Helper()
	h := cache.NewP4(false)
	m := vm.New(p, h)
	rt := rio.NewRuntime(m)
	s := Attach(rt, cfg)
	var buf bytes.Buffer
	enc := wire.NewEncoder(&buf)
	enc.Header(WireHeader(&cfg, p.Name, "p4"))
	s.EnableWireEmit(enc)
	if err := rt.Run(50_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s.Finish()
	s.EmitWireTail(enc, wire.Trailer{
		GuestCycles: rt.M.Cycles,
		TotalCycles: rt.TotalCycles(),
		Instrs:      m.Instrs,
		HWAccesses:  h.L2Stats.Accesses,
		HWMisses:    h.L2Stats.Misses,
		HWEvictions: h.L2.Stats().Evictions,
	})
	if err := enc.Flush(); err != nil {
		t.Fatalf("encoder flush: %v", err)
	}
	return s, rt, buf.Bytes()
}

// reportKey fingerprints a Report the way the pipeline-equivalence tests
// do, but from the report alone so live and replayed runs compare on
// equal footing.
func reportKey(r *Report) string {
	return fmt.Sprintf("del=%d miss=%v refs=%d flush=%d inv=%d prof=%d profops=%d cand=%d traces=%d instr=%d",
		len(r.Delinquent), r.SimMissRatio, r.SimulatedRefs, r.Flushes,
		r.AnalyzerInvocations, r.ProfilesCollected, r.ProfiledOps,
		r.CandidateOps, r.TracesSeen, r.InstrumentEvents)
}

// replayStream decodes one recorded stream into a fresh Replay at the
// given worker count and returns the replayed report, the replayer, and
// the shard.
func replayStream(t *testing.T, stream []byte, workers int) (*Report, *Replay, *ReplayShard) {
	t.Helper()
	dec := wire.NewDecoder(bytes.NewReader(stream))
	h, err := dec.Header()
	if err != nil {
		t.Fatalf("decode header: %v", err)
	}
	cfg, err := ConfigFromWireHeader(h)
	if err != nil {
		t.Fatalf("ConfigFromWireHeader: %v", err)
	}
	cfg.AnalyzerWorkers = workers
	r := NewReplay(cfg)
	defer r.Close()
	shard, err := r.Consume(dec)
	if err != nil {
		t.Fatalf("Consume: %v", err)
	}
	tr := shard.Trailer
	rep := r.Report(len(tr.TracePCs), len(tr.CandidatePCs), tr.InstrumentEvents)
	return rep, r, shard
}

// TestReplayMatchesInline is the wire format's load-bearing contract: a
// recorded stream replayed through umi.Replay reproduces the capture
// process's report — every analyzer-derived quantity, the full delinquent
// set, stride table, and op stats — and the recomputed phase history
// equals the live one. Checked at several replay worker counts, since the
// replayed pipeline must preserve the same determinism the live one does.
func TestReplayMatchesInline(t *testing.T) {
	prog := strideWorkload(t, 600_000)
	sys, _, stream := emitUMI(t, prog, testConfig())
	live := sys.Report()
	liveKey := reportKey(live)
	liveHist := sys.History()

	for _, workers := range []int{0, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rep, r, shard := replayStream(t, stream, workers)
			if got := reportKey(rep); got != liveKey {
				t.Errorf("replayed report key diverges:\n live   %s\n replay %s", liveKey, got)
			}
			if !reflect.DeepEqual(rep.Delinquent, live.Delinquent) {
				t.Errorf("delinquent sets differ: live %v replay %v", live.Delinquent, rep.Delinquent)
			}
			if !reflect.DeepEqual(rep.Strides, live.Strides) {
				t.Errorf("stride tables differ")
			}
			if !reflect.DeepEqual(rep.OpStats, live.OpStats) {
				t.Errorf("op stats differ")
			}
			// The replay re-captures windows from the same invocations, so
			// its recomputed history matches the live one; the shard also
			// carries the capture side's streamed history verbatim.
			if got := r.History(); !reflect.DeepEqual(got, liveHist) {
				t.Errorf("recomputed history diverges:\n live   %+v\n replay %+v", liveHist, got)
			}
			if !reflect.DeepEqual(shard.History, liveHist) {
				t.Errorf("streamed history diverges:\n live   %+v\n stream %+v", liveHist, shard.History)
			}
			// Hardware-model scalars survive via raw trailer counts.
			if shard.Trailer.HWAccesses == 0 {
				t.Error("trailer carried no hardware accesses")
			}
		})
	}
}

// TestReplayEmitDisabledIdentical: enabling emission must not perturb the
// run — the observer effect the telemetry layer promises to avoid.
func TestReplayEmitDisabledIdentical(t *testing.T) {
	prog := strideWorkload(t, 300_000)
	silent, rtS := runUMI(t, prog, testConfig())
	emitted, rtE, _ := emitUMI(t, prog, testConfig())
	if a, b := systemKey(silent, rtS), systemKey(emitted, rtE); a != b {
		t.Errorf("emission perturbed the run:\n silent %s\n emit   %s", a, b)
	}
}

// TestReplayEmitWorkerInvariance: the recorded stream must be
// byte-identical whatever the capture-side pipeline width, because
// emission happens on the guest thread before the analysis paths branch.
func TestReplayEmitWorkerInvariance(t *testing.T) {
	prog := manyLoopsWorkload(t, 8, 30_000)
	var base []byte
	for _, workers := range []int{0, 2, 4} {
		cfg := testConfig()
		cfg.AnalyzerWorkers = workers
		_, _, stream := emitUMI(t, prog, cfg)
		if base == nil {
			base = stream
			continue
		}
		if !bytes.Equal(base, stream) {
			t.Errorf("stream at workers=%d differs from workers=0 (%d vs %d bytes)",
				workers, len(stream), len(base))
		}
	}
}

// TestReplayShardMerge feeds the same stream twice into one Replay: the
// analysis must carry across shards exactly as it carries across
// invocations (twice the invocations and refs, one logical run).
func TestReplayShardMerge(t *testing.T) {
	prog := strideWorkload(t, 300_000)
	sys, _, stream := emitUMI(t, prog, testConfig())
	live := sys.Report()

	dec := wire.NewDecoder(bytes.NewReader(stream))
	h, err := dec.Header()
	if err != nil {
		t.Fatalf("decode header: %v", err)
	}
	cfg, err := ConfigFromWireHeader(h)
	if err != nil {
		t.Fatalf("ConfigFromWireHeader: %v", err)
	}
	r := NewReplay(cfg)
	if _, err := r.Consume(dec); err != nil {
		t.Fatalf("first shard: %v", err)
	}
	dec2 := wire.NewDecoder(bytes.NewReader(stream))
	if _, err := dec2.Header(); err != nil {
		t.Fatalf("second header: %v", err)
	}
	if _, err := r.Consume(dec2); err != nil {
		t.Fatalf("second shard: %v", err)
	}
	rep := r.Report(live.TracesSeen, live.CandidateOps, uint64(2*live.InstrumentEvents))
	if rep.AnalyzerInvocations != 2*live.AnalyzerInvocations {
		t.Errorf("invocations = %d, want %d", rep.AnalyzerInvocations, 2*live.AnalyzerInvocations)
	}
	if rep.SimulatedRefs != 2*live.SimulatedRefs {
		t.Errorf("refs = %d, want %d", rep.SimulatedRefs, 2*live.SimulatedRefs)
	}
	if rep.ProfilesCollected != 2*live.ProfilesCollected {
		t.Errorf("profiles = %d, want %d", rep.ProfilesCollected, 2*live.ProfilesCollected)
	}
}

// TestReplayConsumeDecodeError: a corrupt stream surfaces the decode
// error from Consume; frames before the corruption stay applied.
func TestReplayConsumeDecodeError(t *testing.T) {
	prog := strideWorkload(t, 300_000)
	_, _, stream := emitUMI(t, prog, testConfig())
	cut := stream[:len(stream)/2]
	dec := wire.NewDecoder(bytes.NewReader(cut))
	h, err := dec.Header()
	if err != nil {
		t.Fatalf("decode header: %v", err)
	}
	cfg, err := ConfigFromWireHeader(h)
	if err != nil {
		t.Fatalf("ConfigFromWireHeader: %v", err)
	}
	r := NewReplay(cfg)
	if _, err := r.Consume(dec); err == nil {
		t.Fatal("Consume accepted a truncated stream")
	}
}

// TestConfigFromWireHeaderRejections: malformed headers must be rejected
// before a replay session is built from them.
func TestConfigFromWireHeaderRejections(t *testing.T) {
	cfg := testConfig()
	good := WireHeader(&cfg, "w", "m")
	cases := []struct {
		name   string
		mutate func(*wire.Header)
	}{
		{"zero cache size", func(h *wire.Header) { h.CacheSize = 0 }},
		{"huge cache size", func(h *wire.Header) { h.CacheSize = 1 << 40 }},
		{"assoc too wide", func(h *wire.Header) { h.CacheAssoc = 128 }},
		{"line too long", func(h *wire.Header) { h.CacheLine = 1 << 20 }},
		{"non-power-of-two line", func(h *wire.Header) { h.CacheLine = 48 }},
		{"bad policy", func(h *wire.Header) { h.CachePolicy = 200 }},
		{"warmup out of range", func(h *wire.Header) { h.WarmupRows = wire.MaxProfileRows + 1 }},
		{"history out of range", func(h *wire.Header) { h.HistoryWindows = wire.MaxHistoryWindows + 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := good
			tc.mutate(&h)
			if _, err := ConfigFromWireHeader(h); err == nil {
				t.Errorf("header %+v accepted", h)
			}
		})
	}
	if _, err := ConfigFromWireHeader(good); err != nil {
		t.Errorf("valid header rejected: %v", err)
	}
	// Negative history disables capture, normalized to -1.
	neg := good
	neg.HistoryWindows = -7
	c, err := ConfigFromWireHeader(neg)
	if err != nil {
		t.Fatalf("negative history rejected: %v", err)
	}
	if c.HistoryWindows != -1 {
		t.Errorf("HistoryWindows = %d, want -1", c.HistoryWindows)
	}
}

// TestReplayConfigKey: shard-compat keys ignore the informational names
// but pin every analyzer-relevant field.
func TestReplayConfigKey(t *testing.T) {
	cfg := testConfig()
	a := WireHeader(&cfg, "w1", "m1")
	b := WireHeader(&cfg, "w2", "m2")
	if ReplayConfigKey(a) != ReplayConfigKey(b) {
		t.Error("keys differ on informational fields")
	}
	c := a
	c.CacheSize *= 2
	if ReplayConfigKey(a) == ReplayConfigKey(c) {
		t.Error("keys match across cache geometries")
	}
	d := a
	d.PhaseMissDelta += 0.001
	if ReplayConfigKey(a) == ReplayConfigKey(d) {
		t.Error("keys match across phase thresholds")
	}
}
