package umi

// Sampled and adaptive instrumentation (Examem-style, ROADMAP item): the
// machinery that makes "always on" cheap. Three independent mechanisms,
// each provably inert when disabled:
//
//   - Burst sampling (Config.BurstPeriod): an instrumented trace records
//     only 1-in-N of its executions. The prolog consults a deterministic
//     schedule — seeded from SamplerSeed and the trace's start PC,
//     advanced by the trace's own entry counter — and skipped entries run
//     without reference hooks, paying PrologCost but no per-ref cost.
//   - Reservoir sampling (Config.ReservoirRows): caps a profile's
//     physical rows; once full, each further recorded execution replaces
//     a pseudo-random resident with probability cap/seen (or is
//     dropped), yielding a uniform row sample of the whole burst.
//   - History-driven adaptation (Config.AdaptSampling): consecutive
//     phase-stable analyzer windows shrink the per-trace row target and
//     stretch the reinstrumentation cooldown; a PhaseChange flag re-arms
//     full profiling at once.
//
// Everything here is guest-thread modelled state: the schedules derive
// only from the seed, the trace PC, and deterministic counters, never
// from wall time or worker interleaving — so sampled reports, like
// unsampled ones, are byte-identical at every analyzer worker count.

// splitmix64 is the SplitMix64 output function: a fast, well-mixed
// 64-bit permutation used both to derive per-trace schedule offsets from
// (seed, PC) and as the reservoir's PRNG step.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// samplerInit seeds a trace's deterministic sampling state from the
// configured seed and the trace's start PC: the burst phase offset
// (decorrelating traces so they don't all record the same entries) and
// the reservoir PRNG stream.
func (s *System) samplerInit(ts *traceState) {
	h := splitmix64(s.cfg.SamplerSeed ^ ts.clean.Start)
	ts.burstOffset = h
	ts.rngState = splitmix64(h)
}

// nextRand advances the trace's reservoir PRNG stream.
func (ts *traceState) nextRand() uint64 {
	ts.rngState = splitmix64(ts.rngState)
	return ts.rngState
}

// burstRecord reports whether the trace's next entry is scheduled to
// record a profile row. With BurstPeriod ≤ 1 every entry records. The
// period is clamped to the burst's entry budget so every burst records at
// least one row — the fill trigger's invariant is that the triggering
// trace is always live, so an analyzer invocation never runs empty.
func (s *System) burstRecord(ts *traceState) bool {
	period := s.cfg.burstPeriod()
	if period > ts.rowTarget {
		period = ts.rowTarget
	}
	if period <= 1 {
		return true
	}
	return (uint64(ts.entrySeen)+ts.burstOffset)%uint64(period) == 0
}

// effRows is the adapted per-trace row target: the configured
// AddressProfileRows halved once per adaptation level, floored at
// adaptMinRows (but never raised above the configured target).
func (s *System) effRows() int {
	rows := s.cfg.AddressProfileRows
	if !s.cfg.AdaptSampling || s.adaptLevel == 0 {
		return rows
	}
	adapted := rows >> uint(s.adaptLevel)
	if adapted < adaptMinRows {
		adapted = adaptMinRows
	}
	if adapted > rows {
		adapted = rows
	}
	return adapted
}

// effGap is the adapted reinstrumentation cooldown: the configured gap
// doubled once per adaptation level.
func (s *System) effGap() uint64 {
	gap := s.cfg.ReinstrumentGap
	if !s.cfg.AdaptSampling || s.adaptLevel == 0 {
		return gap
	}
	return gap << uint(s.adaptLevel)
}

// adaptFromWindow runs the adaptation state machine after an inline
// analyzer invocation (AdaptSampling forces the inline path, so the
// just-captured window is visible here on the guest thread). A
// PhaseChange re-arms full profiling; K consecutive stable windows step
// the level down one notch.
func (s *System) adaptFromWindow() {
	w, ok := s.an.hist.lastWindow()
	if !ok {
		return
	}
	if w.PhaseChange {
		if s.adaptLevel != 0 || s.adaptStable != 0 {
			s.met.AdaptRearms.Inc()
		}
		s.adaptLevel = 0
		s.adaptStable = 0
		s.met.AdaptLevel.Set(0)
		return
	}
	s.adaptStable++
	if s.adaptStable >= s.cfg.adaptStableWindows() && s.adaptLevel < adaptMaxLevel {
		s.adaptLevel++
		s.adaptStable = 0
		s.met.AdaptShrinks.Inc()
		s.met.AdaptLevel.Set(int64(s.adaptLevel))
	}
}
