package umi

import (
	"testing"
	"testing/quick"

	"umi/internal/cache"
	"umi/internal/isa"
	"umi/internal/program"
	"umi/internal/rio"
	"umi/internal/vm"
)

func TestAddressProfileRecording(t *testing.T) {
	p := NewAddressProfile([]uint64{100, 200}, []bool{true, false}, 4)
	if p.Full() {
		t.Fatal("fresh profile must not be full")
	}
	for r := 0; r < 4; r++ {
		row, ok := p.OpenRow()
		if !ok || row != r {
			t.Fatalf("OpenRow = %d, %v; want %d, true", row, ok, r)
		}
		p.Record(row, 0, uint64(1000+r*8))
		if r%2 == 0 {
			p.Record(row, 1, uint64(2000+r*8))
		}
	}
	if !p.Full() {
		t.Error("profile must be full after rowCap rows")
	}
	if _, ok := p.OpenRow(); ok {
		t.Error("OpenRow must fail when full")
	}
	if a, ok := p.At(2, 0); !ok || a != 1016 {
		t.Errorf("At(2,0) = %d, %v", a, ok)
	}
	if _, ok := p.At(1, 1); ok {
		t.Error("unrecorded cell must report absent")
	}
	col := p.Column(1)
	if len(col) != 2 || col[0] != 2000 || col[1] != 2016 {
		t.Errorf("Column(1) = %v", col)
	}
	p.Reset()
	if p.Rows() != 0 || p.Full() {
		t.Error("Reset must empty the profile")
	}
	if _, ok := p.At(0, 0); ok {
		t.Error("Reset must clear cells")
	}
}

func TestDominantStride(t *testing.T) {
	cases := []struct {
		addrs  []uint64
		stride int64
		minFr  float64
	}{
		{[]uint64{0, 8, 16, 24, 32}, 8, 0.99},
		{[]uint64{100, 92, 84, 76}, -8, 0.99},
		{[]uint64{0, 64, 128, 999, 1063, 1127}, 64, 0.7},
		{[]uint64{0, 8}, 0, 0}, // too short
	}
	for i, c := range cases {
		s, f := DominantStride(c.addrs)
		if c.minFr == 0 {
			if f != 0 {
				t.Errorf("case %d: frac = %v, want 0", i, f)
			}
			continue
		}
		if s != c.stride || f < c.minFr {
			t.Errorf("case %d: stride=%d frac=%.2f, want stride=%d frac>=%.2f",
				i, s, f, c.stride, c.minFr)
		}
	}
}

func TestDominantStrideQuick(t *testing.T) {
	// Property: for any base and positive stride, a pure strided sequence
	// reports exactly that stride with confidence 1.
	f := func(base uint32, strideSel uint8, nSel uint8) bool {
		stride := int64(strideSel%64) + 1
		n := int(nSel%32) + 3
		addrs := make([]uint64, n)
		for i := range addrs {
			addrs[i] = uint64(base) + uint64(int64(i)*stride)
		}
		s, fr := DominantStride(addrs)
		return s == stride && fr == 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func makeTrace(instrs []isa.Instr) *rio.Fragment {
	pcs := make([]uint64, len(instrs))
	for i := range pcs {
		pcs[i] = 0x400000 + uint64(i)*isa.InstrBytes
	}
	f := &rio.Fragment{Start: pcs[0], Instrs: instrs, PCs: pcs, IsTrace: true}
	return f
}

func TestSelectOpsFiltering(t *testing.T) {
	instrs := []isa.Instr{
		{Op: isa.OpLoad, Rd: isa.R0, Size: 8, Mem: isa.Mem(isa.R1, 0)},    // kept
		{Op: isa.OpLoad, Rd: isa.R0, Size: 8, Mem: isa.Mem(isa.SP, 16)},   // stack: filtered
		{Op: isa.OpStore, Rs1: isa.R0, Size: 8, Mem: isa.Mem(isa.BP, -8)}, // stack: filtered
		{Op: isa.OpLoad, Rd: isa.R0, Size: 8, Mem: isa.MemAbs(0x8000000)}, // static: filtered
		{Op: isa.OpStore, Rs1: isa.R2, Size: 4, Mem: isa.Mem(isa.R3, 32)}, // kept
		{Op: isa.OpAdd, Rd: isa.R0, Rs1: isa.R1, Rs2: isa.R2, Mem: isa.NoMem},
		{Op: isa.OpJmp, Imm: 0x400000, Mem: isa.NoMem},
	}
	f := makeTrace(instrs)
	pcs, isLoad, candidates := selectOps(f, true, 256)
	if candidates != 5 {
		t.Errorf("candidates = %d, want 5", candidates)
	}
	if len(pcs) != 2 {
		t.Fatalf("selected = %d ops, want 2", len(pcs))
	}
	if !isLoad[0] || isLoad[1] {
		t.Errorf("isLoad = %v, want [true false]", isLoad)
	}
	// Filtering off: all five memory ops selected.
	pcs, _, _ = selectOps(f, false, 256)
	if len(pcs) != 5 {
		t.Errorf("unfiltered selected = %d, want 5", len(pcs))
	}
	// Cap respected.
	pcs, _, _ = selectOps(f, false, 3)
	if len(pcs) != 3 {
		t.Errorf("capped selected = %d, want 3", len(pcs))
	}
}

func TestSelectOpsDeduplicates(t *testing.T) {
	ld := isa.Instr{Op: isa.OpLoad, Rd: isa.R0, Size: 8, Mem: isa.Mem(isa.R1, 0)}
	f := makeTrace([]isa.Instr{ld, ld, isa.Instr{Op: isa.OpJmp, Mem: isa.NoMem}})
	// Same PC appearing twice (unrolled trace): force duplicate PCs.
	f.PCs[1] = f.PCs[0]
	pcs, _, candidates := selectOps(f, true, 256)
	if len(pcs) != 1 || candidates != 1 {
		t.Errorf("selected=%d candidates=%d, want 1, 1", len(pcs), candidates)
	}
}

func testConfig() Config {
	cfg := DefaultConfig(cache.P4L2)
	cfg.SamplePeriod = 500
	cfg.FrequencyThreshold = 4
	cfg.ReinstrumentGap = 50_000
	return cfg
}

// strideWorkload builds a program whose hot loop walks a large array with
// a fixed stride, guaranteeing a high L2 miss ratio on the walking load
// and near-perfect hits on a small scratch load.
func strideWorkload(t *testing.T, elems int64) *program.Program {
	t.Helper()
	b := program.NewBuilder("stride")
	e := b.Block("entry")
	e.MovI(isa.R0, 0)                       // i
	e.MovI(isa.R1, elems)                   // limit
	e.MovI(isa.R2, int64(program.HeapBase)) // big array
	e.MovI(isa.R5, int64(program.GlobalBase))
	e.MovI(isa.R7, 0) // accumulator
	l := b.Block("loop")
	l.Load(isa.R3, 8, isa.MemIdx(isa.R2, isa.R0, 8, 0)) // strided: delinquent
	l.Load(isa.R4, 8, isa.Mem(isa.R5, 0))               // scratch: always hits
	l.Add(isa.R7, isa.R7, isa.R3)
	l.AddI(isa.R0, isa.R0, 8) // stride 64 bytes
	l.Br(isa.CondLT, isa.R0, isa.R1, "loop")
	b.Block("done").Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func runUMI(t *testing.T, p *program.Program, cfg Config) (*System, *rio.Runtime) {
	t.Helper()
	h := cache.NewP4(false)
	m := vm.New(p, h)
	rt := rio.NewRuntime(m)
	s := Attach(rt, cfg)
	if err := rt.Run(50_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s.Finish()
	return s, rt
}

func TestEndToEndDelinquentLoad(t *testing.T) {
	p := strideWorkload(t, 600_000)
	s, _ := runUMI(t, p, testConfig())
	rep := s.Report()
	if rep.AnalyzerInvocations == 0 {
		t.Fatalf("analyzer never ran: %v", rep)
	}
	if rep.ProfilesCollected == 0 {
		t.Fatal("no profiles collected")
	}
	// The strided load must be predicted delinquent; the scratch load not.
	loopPC := p.Symbols["loop"]
	stridedPC := loopPC                  // first instr of loop block
	scratchPC := loopPC + isa.InstrBytes // second
	if !rep.Delinquent[stridedPC] {
		t.Errorf("strided load %#x not in P; P=%v", stridedPC, rep.Delinquent)
	}
	if rep.Delinquent[scratchPC] {
		t.Errorf("scratch load %#x wrongly in P", scratchPC)
	}
	// Stride discovery: 64-byte dominant stride.
	si, ok := rep.Strides[stridedPC]
	if !ok || si.Stride != 64 {
		t.Errorf("stride = %+v, want 64", si)
	}
	// The simulated miss ratio should be substantial (the workload
	// streams through memory).
	if rep.SimMissRatio < 0.2 {
		t.Errorf("SimMissRatio = %.3f, want >= 0.2", rep.SimMissRatio)
	}
}

// manyLoopsWorkload is gcc-like: many distinct loops, each just hot enough
// to become a trace but individually lukewarm. Sample-based reinforcement
// should decline to instrument most of them.
func manyLoopsWorkload(t *testing.T, loops int, iters int64) *program.Program {
	t.Helper()
	b := program.NewBuilder("manyloops")
	e := b.Block("entry")
	e.MovI(isa.R2, int64(program.HeapBase))
	for i := 0; i < loops; i++ {
		name := "loop" + string(rune('A'+i/26)) + string(rune('a'+i%26))
		pre := b.Block("pre_" + name)
		pre.MovI(isa.R0, 0)
		l := b.Block(name)
		l.Load(isa.R3, 8, isa.MemIdx(isa.R2, isa.R0, 8, int64(i)*4096))
		l.AddI(isa.R0, isa.R0, 1)
		l.BrI(isa.CondLT, isa.R0, iters, name)
	}
	b.Block("done").Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestSamplingReducesOverhead(t *testing.T) {
	p := manyLoopsWorkload(t, 40, 120)

	cfgNoSamp := testConfig()
	cfgNoSamp.UseSampling = false
	sNo, rtNo := runUMI(t, p, cfgNoSamp)

	cfgSamp := testConfig()
	cfgSamp.UseSampling = true
	cfgSamp.FrequencyThreshold = 8
	sYes, rtYes := runUMI(t, p, cfgSamp)

	repNo, repYes := sNo.Report(), sYes.Report()
	if repNo.InstrumentEvents == 0 {
		t.Fatal("no-sampling mode must instrument traces")
	}
	if repYes.InstrumentEvents >= repNo.InstrumentEvents {
		t.Errorf("sampling instrumented %d traces, no-sampling %d; sampling must defer lukewarm traces",
			repYes.InstrumentEvents, repNo.InstrumentEvents)
	}
	if rtYes.Overhead >= rtNo.Overhead {
		t.Errorf("sampling overhead %d >= no-sampling overhead %d",
			rtYes.Overhead, rtNo.Overhead)
	}
}

func TestProfilingIsBursty(t *testing.T) {
	// After analysis the trace must run clean: the number of profiled
	// rows is bounded by profiles * AddressProfileRows even though the
	// loop runs far more iterations.
	p := strideWorkload(t, 500_000)
	cfg := testConfig()
	s, _ := runUMI(t, p, cfg)
	rep := s.Report()
	maxRows := uint64(rep.ProfilesCollected) * uint64(cfg.AddressProfileRows)
	if rep.SimulatedRefs > 2*maxRows*4 {
		t.Errorf("SimulatedRefs = %d, exceeds plausible burst budget %d",
			rep.SimulatedRefs, 2*maxRows*4)
	}
	// And far fewer than total loop iterations (500k iterations, 2
	// profiled ops each).
	if rep.SimulatedRefs >= 1_000_000 {
		t.Errorf("SimulatedRefs = %d: profiling is not bursty", rep.SimulatedRefs)
	}
}

func TestAdaptiveThresholdDecreases(t *testing.T) {
	p := strideWorkload(t, 500_000)
	cfg := testConfig()
	cfg.Adaptive = true
	s, _ := runUMI(t, p, cfg)
	lowest := 1.0
	for _, ts := range s.traces {
		if ts.alpha < lowest {
			lowest = ts.alpha
		}
	}
	if s.an.Invocations >= 3 && lowest > cfg.DelinquencyInit-cfg.DelinquencyStep {
		t.Errorf("after %d invocations lowest alpha = %.2f; adaptive threshold did not move",
			s.an.Invocations, lowest)
	}
	if lowest < cfg.DelinquencyMin {
		t.Errorf("alpha = %.2f fell below the floor %.2f", lowest, cfg.DelinquencyMin)
	}
}

func TestBarrenTraceNotInstrumented(t *testing.T) {
	// A loop whose only memory refs are stack-relative: filtering leaves
	// nothing, so UMI must not instrument it.
	b := program.NewBuilder("stackonly")
	e := b.Block("entry")
	e.MovI(isa.R0, 0)
	e.AddI(isa.SP, isa.SP, -64)
	l := b.Block("loop")
	l.Load(isa.R1, 8, isa.Mem(isa.SP, 8))
	l.Store(isa.R1, 8, isa.Mem(isa.BP, -16))
	l.AddI(isa.R0, isa.R0, 1)
	l.BrI(isa.CondLT, isa.R0, 200_000, "loop")
	b.Block("done").Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	s, _ := runUMI(t, p, testConfig())
	rep := s.Report()
	if rep.ProfiledOps != 0 {
		t.Errorf("ProfiledOps = %d, want 0 (all refs stack-relative)", rep.ProfiledOps)
	}
	if rep.AnalyzerInvocations != 0 {
		t.Errorf("AnalyzerInvocations = %d, want 0", rep.AnalyzerInvocations)
	}
	if rep.CandidateOps == 0 {
		t.Error("candidates must still be counted")
	}
}

func TestAnalyzerWarmupSuppressesColdMisses(t *testing.T) {
	cfg := testConfig()
	an := NewAnalyzer(&cfg)
	// One op touching the same line every execution: after warm-up, all
	// hits. Without warm-up the first access would count as a miss.
	p := NewAddressProfile([]uint64{0x400000}, []bool{true}, 16)
	for i := 0; i < 16; i++ {
		row, _ := p.OpenRow()
		p.Record(row, 0, 0x1000)
	}
	an.BeginInvocation(0)
	an.AnalyzeProfile(p, 0.9)
	st := an.OpStats()[0x400000]
	if st == nil {
		t.Fatal("no op stats recorded")
	}
	if st.Misses != 0 {
		t.Errorf("misses = %d, want 0 (warm-up must absorb the compulsory miss)", st.Misses)
	}
	if st.Accesses != 14 {
		t.Errorf("accesses = %d, want 14 (16 rows - 2 warm-up)", st.Accesses)
	}
}

func TestAnalyzerFlushAfterGap(t *testing.T) {
	cfg := testConfig()
	cfg.FlushCycleGap = 1000
	an := NewAnalyzer(&cfg)
	p := NewAddressProfile([]uint64{0x400000}, []bool{true}, 4)
	for i := 0; i < 4; i++ {
		row, _ := p.OpenRow()
		p.Record(row, 0, 0x1000)
	}
	an.BeginInvocation(0)
	an.AnalyzeProfile(p, 0.9)
	an.BeginInvocation(500) // within gap: no flush
	if an.Flushes != 0 {
		t.Errorf("Flushes = %d, want 0", an.Flushes)
	}
	an.BeginInvocation(5000) // beyond gap: flush
	if an.Flushes != 1 {
		t.Errorf("Flushes = %d, want 1", an.Flushes)
	}
}

func TestAnalyzerDelinquencyThreshold(t *testing.T) {
	cfg := testConfig()
	an := NewAnalyzer(&cfg)
	// Strided load missing every access (64B lines, 128B stride over a
	// huge range) vs a load hitting one line.
	pMiss := NewAddressProfile([]uint64{0xA0}, []bool{true}, 64)
	for i := 0; i < 64; i++ {
		row, _ := pMiss.OpenRow()
		pMiss.Record(row, 0, uint64(i)*4096)
	}
	an.BeginInvocation(0)
	an.AnalyzeProfile(pMiss, 0.9)
	if !an.Delinquent()[0xA0] {
		t.Error("always-missing load must be delinquent at alpha 0.9")
	}
	pHit := NewAddressProfile([]uint64{0xB0}, []bool{true}, 64)
	for i := 0; i < 64; i++ {
		row, _ := pHit.OpenRow()
		pHit.Record(row, 0, 0x40)
	}
	an.AnalyzeProfile(pHit, 0.9)
	if an.Delinquent()[0xB0] {
		t.Error("always-hitting load must not be delinquent")
	}
}

func TestStoreNeverDelinquent(t *testing.T) {
	cfg := testConfig()
	an := NewAnalyzer(&cfg)
	p := NewAddressProfile([]uint64{0xC0}, []bool{false}, 32) // a store
	for i := 0; i < 32; i++ {
		row, _ := p.OpenRow()
		p.Record(row, 0, uint64(i)*4096)
	}
	an.BeginInvocation(0)
	an.AnalyzeProfile(p, 0.1)
	if an.Delinquent()[0xC0] {
		t.Error("stores must not enter the delinquent load set")
	}
}

func TestFinishFlushesLiveProfiles(t *testing.T) {
	// A loop short enough that no analyzer trigger fires on its own.
	p := strideWorkload(t, 30_000)
	cfg := testConfig()
	cfg.UseSampling = false
	cfg.AddressProfileRows = 100_000 // never fills
	cfg.TraceProfileLen = 1_000_000
	h := cache.NewP4(false)
	m := vm.New(p, h)
	rt := rio.NewRuntime(m)
	s := Attach(rt, cfg)
	if err := rt.Run(10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Report().AnalyzerInvocations != 0 {
		t.Fatal("premise broken: analyzer ran before Finish")
	}
	s.Finish()
	rep := s.Report()
	if rep.AnalyzerInvocations != 1 {
		t.Errorf("AnalyzerInvocations after Finish = %d, want 1", rep.AnalyzerInvocations)
	}
	if rep.SimulatedRefs == 0 {
		t.Error("Finish must simulate pending rows")
	}
}

func TestReportStringer(t *testing.T) {
	p := strideWorkload(t, 100_000)
	s, _ := runUMI(t, p, testConfig())
	got := s.Report().String()
	if got == "" {
		t.Error("empty report string")
	}
}

func TestAdaptiveFrequencyTunesPerTrace(t *testing.T) {
	// A workload with one delinquent hot loop and many boring loops:
	// after several analyses, the delinquent trace's threshold must be
	// at or below the initial value and boring traces' thresholds above.
	b := program.NewBuilder("mixed")
	e := b.Block("entry")
	e.MovI(isa.R2, int64(program.HeapBase))
	e.MovI(isa.R5, int64(program.GlobalBase))
	e.MovI(isa.R0, 0)
	hot := b.Block("hotloop")
	hot.Load(isa.R3, 8, isa.MemIdx(isa.R2, isa.R0, 8, 0)) // streaming: delinquent
	hot.AddI(isa.R0, isa.R0, 8)
	hot.BrI(isa.CondLT, isa.R0, 1_600_000, "hotloop")
	e2 := b.Block("mid")
	e2.MovI(isa.R0, 0)
	cold := b.Block("coldloop")
	cold.AndI(isa.R12, isa.R0, 63)
	cold.Load(isa.R4, 8, isa.MemIdx(isa.R5, isa.R12, 8, 0)) // resident: boring
	cold.AddI(isa.R0, isa.R0, 1)
	cold.BrI(isa.CondLT, isa.R0, 1_000_000, "coldloop")
	b.Block("done").Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}

	cfg := testConfig()
	cfg.AdaptiveFrequency = true
	cfg.MaxFrequencyThreshold = 256
	s, _ := runUMI(t, p, cfg)

	hotTS := s.traces[p.Symbols["hotloop"]]
	coldTS := s.traces[p.Symbols["coldloop"]]
	if hotTS == nil || coldTS == nil {
		t.Fatalf("traces missing: hot=%v cold=%v", hotTS, coldTS)
	}
	if hotTS.analyses == 0 || coldTS.analyses == 0 {
		t.Fatalf("both traces must be analyzed (hot %d, cold %d)", hotTS.analyses, coldTS.analyses)
	}
	if hotTS.freqThresh > cfg.FrequencyThreshold {
		t.Errorf("delinquent trace threshold = %d, must not exceed initial %d",
			hotTS.freqThresh, cfg.FrequencyThreshold)
	}
	if coldTS.freqThresh <= cfg.FrequencyThreshold {
		t.Errorf("boring trace threshold = %d, must back off above initial %d",
			coldTS.freqThresh, cfg.FrequencyThreshold)
	}
	if coldTS.freqThresh > cfg.MaxFrequencyThreshold {
		t.Errorf("threshold %d exceeded the cap %d", coldTS.freqThresh, cfg.MaxFrequencyThreshold)
	}
}

// The global trace profile (8192 rows across all live profiles in the
// paper) must trigger the analyzer even when no single address profile
// fills.
func TestGlobalTraceProfileTrigger(t *testing.T) {
	p := manyLoopsWorkload(t, 20, 400)
	cfg := testConfig()
	cfg.UseSampling = false
	cfg.AddressProfileRows = 1 << 14 // per-trace trigger can never fire
	cfg.TraceProfileLen = 512        // global trigger fires quickly
	s, _ := runUMI(t, p, cfg)
	rep := s.Report()
	if rep.AnalyzerInvocations == 0 {
		t.Fatal("global trace-profile trigger never fired")
	}
	// Rows per invocation are bounded by the global cap plus the rows
	// recorded by fragments entered before their prolog saw the full
	// buffer.
	if rep.SimulatedRefs == 0 {
		t.Fatal("nothing simulated")
	}
}

// AddressProfileOps caps the instrumented operations per trace.
func TestAddressProfileOpsCap(t *testing.T) {
	b := program.NewBuilder("manyops")
	e := b.Block("entry")
	e.MovI(isa.R2, int64(program.HeapBase))
	e.MovI(isa.R0, 0)
	l := b.Block("loop")
	for j := 0; j < 12; j++ {
		l.Load(isa.R3, 8, isa.MemIdx(isa.R2, isa.R0, 8, int64(j)*128))
	}
	l.AddI(isa.R0, isa.R0, 8)
	l.BrI(isa.CondLT, isa.R0, 2_000_000, "loop")
	b.Block("done").Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	cfg := testConfig()
	cfg.AddressProfileOps = 5
	s, _ := runUMI(t, p, cfg)
	if got := s.Report().ProfiledOps; got != 5 {
		t.Errorf("ProfiledOps = %d, want capped at 5", got)
	}
}
