package umi

import (
	"fmt"
	"sort"

	"umi/internal/cache"
	"umi/internal/tracelog"
)

// OpStat accumulates the mini-simulated behaviour of one memory operation
// across all analyzer invocations (post-warmup accesses only).
type OpStat struct {
	PC       uint64
	IsLoad   bool
	Accesses uint64
	Misses   uint64
}

// MissRatio is the operation's simulated miss ratio.
func (s *OpStat) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// StrideInfo is the dominant stride discovered for an operation and the
// fraction of successive-reference deltas it accounts for.
type StrideInfo struct {
	Stride     int64
	Confidence float64
}

// Analyzer is the paper's profile analyzer: a fast cache simulator over
// recorded address profiles. A single logical cache is shared across
// invocations and flushed when the gap since the last invocation exceeds
// the configured limit (§5).
type Analyzer struct {
	cfg   *Config
	cache *cache.Cache
	// met, when non-nil, receives invocation/flush/ref counts as they
	// happen (Attach sets it; analyzers built standalone in tests run
	// unmetered). On the asynchronous path these increments execute on the
	// sequencer goroutine — they are atomics, safe to snapshot from the
	// guest thread at any time.
	met *Metrics
	// tlog, when non-nil, receives analyzer lifecycle events (cache
	// flushes). Same ownership story as met: inline-path emits happen on
	// the guest thread, pipeline-path emits on the sequencer.
	tlog *tracelog.Log
	// hist, when non-nil, receives one WindowSummary per invocation via
	// captureWindow. Same ownership story again: capture runs on whichever
	// thread owns the analyzer, so history state needs no extra locking
	// beyond the ring's own snapshot mutex.
	hist *History

	lastRun   uint64 // guest cycles at last invocation
	ranBefore bool

	// Cumulative results.
	Invocations   int
	SimulatedRefs uint64
	Flushes       int
	opStats       map[uint64]*OpStat
	delinquent    map[uint64]bool
	strides       map[uint64]StrideInfo
	columns       map[uint64][]uint64 // last recorded column per delinquent load
	totalAcc      uint64
	totalMiss     uint64

	// Per-invocation scratch, keyed by column, reused across profiles.
	invAcc  []uint64
	invMiss []uint64
	// Batch-replay scratch: gathered addresses, their column indexes
	// (sparse profiles only), and the per-access results, reused across
	// invocations so steady-state analysis stays allocation-free.
	batchAddrs []uint64
	batchCols  []int32
	batchRes   []cache.AccessResult
	// prep is the inline path's reusable preparation buffer (the pipeline
	// hands in precomputed preps instead and recycles its own buffers).
	prep prepBuf
}

// NewAnalyzer builds an analyzer for the config.
func NewAnalyzer(cfg *Config) *Analyzer {
	return &Analyzer{
		cfg:        cfg,
		cache:      cache.New(cfg.MiniSimCache),
		opStats:    make(map[uint64]*OpStat),
		delinquent: make(map[uint64]bool),
		strides:    make(map[uint64]StrideInfo),
		columns:    make(map[uint64][]uint64),
	}
}

// BeginInvocation starts one analyzer invocation at the given guest cycle
// count, flushing the logical cache if the configured gap has elapsed.
// Non-monotonic cycle counts (a harness reset reusing the analyzer against
// a rewound clock) are treated as a zero gap: the subtraction is unsigned,
// and without the ordering guard a backwards step would wrap to a huge gap
// and spuriously flush on every invocation.
func (a *Analyzer) BeginInvocation(nowCycles uint64) {
	a.Invocations++
	if a.met != nil {
		a.met.Invocations.Inc()
	}
	if a.ranBefore && nowCycles > a.lastRun && nowCycles-a.lastRun > a.cfg.FlushCycleGap {
		a.cache.Flush()
		a.Flushes++
		if a.met != nil {
			a.met.Flushes.Inc()
		}
		a.tlog.Emit(tracelog.Event{Type: tracelog.EvCacheFlush,
			Cycles: nowCycles, Arg1: nowCycles - a.lastRun})
	}
	a.lastRun = nowCycles
	a.ranBefore = true
}

// Reset returns the analyzer to its just-constructed state so a harness
// can reuse one across runs: cumulative results are cleared and the
// logical cache is rewound (cache.Reset, not just Flush, so the LRU clock
// restarts too). The invocation clock also restarts, so the first
// BeginInvocation after a Reset never flushes regardless of the new run's
// cycle counter.
func (a *Analyzer) Reset() {
	a.cache.Reset()
	a.lastRun = 0
	a.ranBefore = false
	a.Invocations = 0
	a.SimulatedRefs = 0
	a.Flushes = 0
	a.opStats = make(map[uint64]*OpStat)
	a.delinquent = make(map[uint64]bool)
	a.strides = make(map[uint64]StrideInfo)
	a.columns = make(map[uint64][]uint64)
	a.totalAcc, a.totalMiss = 0, 0
	a.hist.reset()
}

// colPrep is the stateless half of one column's analysis: the materialized
// address sequence and its dominant stride. The pipeline's preparation
// workers compute these concurrently; only the cache simulation and the
// merge, which touch shared analyzer state, stay on the sequencer.
type colPrep struct {
	col    []uint64
	stride int64
	frac   float64
}

// prepBuf owns the reusable buffers one profile preparation fills: the
// per-column colPrep entries (whose col slices are recycled by appending
// into spare capacity) and the delta scratch for stride discovery. A warm
// prepBuf makes preparation allocation-free; the pipeline recycles one per
// in-flight job, and the inline analyzer path keeps its own.
type prepBuf struct {
	preps  []colPrep
	deltas []int64
}

// prepare computes the stateless per-column work for a profile: address
// columns and dominant strides for every load column. It reads only the
// profile and is safe to run concurrently with preparations of other
// profiles — but not with further recording into this one. The returned
// slice and its columns are owned by the prepBuf and valid until the next
// prepare call on it.
func (b *prepBuf) prepare(p *AddressProfile) []colPrep {
	n := len(p.Ops)
	if cap(b.preps) < n {
		b.preps = append(b.preps[:cap(b.preps)], make([]colPrep, n-cap(b.preps))...)
	}
	b.preps = b.preps[:n]
	for c := 0; c < n; c++ {
		pr := &b.preps[c]
		if !p.IsLoadOp[c] {
			pr.col, pr.stride, pr.frac = pr.col[:0], 0, 0
			continue
		}
		pr.col = p.columnInto(pr.col[:0], c)
		pr.stride, pr.frac, b.deltas = dominantStride(pr.col, b.deltas)
	}
	return b.preps
}

// prepareProfile is the buffer-less convenience wrapper (tests, one-shot
// callers); pipeline workers and the inline path reuse prepBufs instead.
func prepareProfile(p *AddressProfile) []colPrep {
	var b prepBuf
	return b.prepare(p)
}

// AnalyzeProfile mini-simulates one address profile: rows in recording
// order, operations in trace order, skipping the warm-up rows for miss
// accounting. Loads whose miss ratio in this profile exceeds alpha are
// labelled delinquent. It returns the modelled analysis cost in cycles.
func (a *Analyzer) AnalyzeProfile(p *AddressProfile, alpha float64) uint64 {
	return a.analyzeWithPrep(p, alpha, nil)
}

// batchChunkRefs is the target number of references per AccessBatch call
// during profile replay: large enough to amortize the batch entry overhead
// to noise, small enough that the result buffer stays cache-resident.
const batchChunkRefs = 4096

// analyzeWithPrep is AnalyzeProfile with the stateless column work
// optionally precomputed (nil means compute inline). Results are identical
// either way; the merge visits columns in trace order, so a fixed profile
// submission order gives a fixed merge order.
func (a *Analyzer) analyzeWithPrep(p *AddressProfile, alpha float64, preps []colPrep) uint64 {
	nOps := len(p.Ops)
	if nOps == 0 || p.Rows() == 0 {
		return 0
	}
	if preps == nil {
		preps = a.prep.prepare(p)
	}
	if cap(a.invAcc) < nOps {
		a.invAcc = make([]uint64, nOps)
		a.invMiss = make([]uint64, nOps)
	}
	a.invAcc = a.invAcc[:nOps]
	a.invMiss = a.invMiss[:nOps]
	for i := 0; i < nOps; i++ {
		a.invAcc[i], a.invMiss[i] = 0, 0
	}

	// Replay rows through the cache's batch entry point, which amortizes
	// policy dispatch and clock/statistics updates across a whole chunk.
	// Results are identical to per-cell Access calls (AccessBatch is
	// equivalence-tested against the scalar path); only the merge
	// bookkeeping differs between the two layouts here:
	//
	//   - dense profiles (every cell recorded — the steady state once a
	//     profile's rows have all executed) feed row-aligned windows of the
	//     flat cell array straight to AccessBatch, no gather copy, and hoist
	//     the per-column access counts out of the loop entirely (each column
	//     sees exactly one access per post-warmup row);
	//   - sparse profiles gather recorded cells and their column indexes
	//     into the reusable batch buffers, then merge per result.
	refs := uint64(0)
	cells := p.cells[:p.Rows()*nOps]
	warmEnd := a.cfg.WarmupRows * nOps
	if warmEnd > len(cells) {
		warmEnd = len(cells)
	}
	// Row-aligned chunk size: at least one row, and as many whole rows as
	// fit the target window.
	rowsPer := batchChunkRefs / nOps
	if rowsPer < 1 {
		rowsPer = 1
	}
	chunk := rowsPer * nOps
	if cap(a.batchRes) < chunk {
		a.batchAddrs = make([]uint64, chunk)
		a.batchCols = make([]int32, chunk)
		a.batchRes = make([]cache.AccessResult, chunk)
	}
	if p.recorded == len(cells) { // dense
		// Warm-up rows: simulate only, no accounting.
		for base := 0; base < warmEnd; base += chunk {
			end := base + chunk
			if end > warmEnd {
				end = warmEnd
			}
			a.cache.AccessBatch(cells[base:end], a.batchRes[:end-base])
		}
		for base := warmEnd; base < len(cells); base += chunk {
			end := base + chunk
			if end > len(cells) {
				end = len(cells)
			}
			res := a.batchRes[:end-base]
			a.cache.AccessBatch(cells[base:end], res)
			for rb := 0; rb < len(res); rb += nOps {
				row := res[rb : rb+nOps]
				for c := range row {
					if !row[c].Hit {
						a.invMiss[c]++
					}
				}
			}
		}
		refs = uint64(len(cells))
		postRows := uint64((len(cells) - warmEnd) / nOps)
		var missSum uint64
		for c := 0; c < nOps; c++ {
			a.invAcc[c] = postRows
			missSum += a.invMiss[c]
		}
		a.totalAcc += postRows * uint64(nOps)
		a.totalMiss += missSum
	} else { // sparse: gather recorded cells, then merge per result
		na := 0
		for _, addr := range cells[:warmEnd] {
			if addr == noAddr {
				continue
			}
			a.batchAddrs[na] = addr
			na++
			if na == chunk {
				a.cache.AccessBatch(a.batchAddrs[:na], a.batchRes[:na])
				refs += uint64(na)
				na = 0
			}
		}
		if na > 0 {
			a.cache.AccessBatch(a.batchAddrs[:na], a.batchRes[:na])
			refs += uint64(na)
			na = 0
		}
		flush := func() {
			a.cache.AccessBatch(a.batchAddrs[:na], a.batchRes[:na])
			for j := 0; j < na; j++ {
				c := a.batchCols[j]
				a.invAcc[c]++
				if !a.batchRes[j].Hit {
					a.invMiss[c]++
					a.totalMiss++
				}
			}
			refs += uint64(na)
			a.totalAcc += uint64(na)
			na = 0
		}
		for base := warmEnd; base < len(cells); base += nOps {
			row := cells[base : base+nOps]
			for c, addr := range row {
				if addr == noAddr {
					continue
				}
				a.batchAddrs[na] = addr
				a.batchCols[na] = int32(c)
				na++
				if na == chunk {
					flush()
				}
			}
		}
		if na > 0 {
			flush()
		}
	}
	a.SimulatedRefs += refs
	if a.met != nil {
		a.met.SimulatedRefs.Add(refs)
	}

	for c := 0; c < nOps; c++ {
		pc := p.Ops[c]
		st := a.opStats[pc]
		if st == nil {
			st = &OpStat{PC: pc, IsLoad: p.IsLoadOp[c]}
			a.opStats[pc] = st
		}
		st.Accesses += a.invAcc[c]
		st.Misses += a.invMiss[c]
		if p.IsLoadOp[c] && a.invAcc[c] > 0 {
			ratio := float64(a.invMiss[c]) / float64(a.invAcc[c])
			if ratio > alpha {
				a.delinquent[pc] = true
				// Keep the raw column so optimizers can tune against the
				// recorded history (e.g. prefetch distance selection). Copy
				// into the analyzer-owned slice: preps[c].col lives in a
				// recycled preparation buffer that the next profile will
				// overwrite.
				a.columns[pc] = append(a.columns[pc][:0], preps[c].col...)
			}
		}
		// Stride discovery feeds the prefetcher (§8).
		if p.IsLoadOp[c] {
			if stride, frac := preps[c].stride, preps[c].frac; frac >= 0.5 && stride != 0 {
				if prev, ok := a.strides[pc]; !ok || frac >= prev.Confidence {
					a.strides[pc] = StrideInfo{Stride: stride, Confidence: frac}
				}
			}
		}
	}
	return a.cfg.AnalyzerPerRef * refs
}

// Delinquent returns the predicted delinquent load set P (live map; do not
// mutate).
func (a *Analyzer) Delinquent() map[uint64]bool { return a.delinquent }

// Strides returns discovered per-load dominant strides.
func (a *Analyzer) Strides() map[uint64]StrideInfo { return a.strides }

// Column returns the most recent recorded address column for a delinquent
// load, if any — the raw history optimizers tune against.
func (a *Analyzer) Column(pc uint64) ([]uint64, bool) {
	col, ok := a.columns[pc]
	return col, ok
}

// OpStats returns cumulative per-operation simulation statistics.
func (a *Analyzer) OpStats() map[uint64]*OpStat { return a.opStats }

// MissRatio is the overall simulated (post-warmup) miss ratio, the UMI
// quantity correlated against hardware counters in Table 4.
func (a *Analyzer) MissRatio() float64 {
	if a.totalAcc == 0 {
		return 0
	}
	return float64(a.totalMiss) / float64(a.totalAcc)
}

// TopMissers returns operations ordered by simulated miss count, most
// first (for reports).
func (a *Analyzer) TopMissers(n int) []*OpStat {
	out := make([]*OpStat, 0, len(a.opStats))
	for _, s := range a.opStats {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Misses != out[j].Misses {
			return out[i].Misses > out[j].Misses
		}
		return out[i].PC < out[j].PC
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

func (a *Analyzer) String() string {
	return fmt.Sprintf("umi.Analyzer{%d invocations, %d refs, %d flushes, miss ratio %.4f}",
		a.Invocations, a.SimulatedRefs, a.Flushes, a.MissRatio())
}
