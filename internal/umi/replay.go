package umi

import (
	"errors"
	"fmt"
	"io"
	"time"

	"umi/internal/cache"
	"umi/internal/wire"
)

// ErrResume classifies ConsumeResume failures that happen before anything
// was applied — a re-sent stream whose bytes disagree with the session's
// recorded resume point, or one too short to reach it. The caller can
// safely keep waiting for a correct retry.
var ErrResume = errors.New("resume mismatch")

// Replay drives an Analyzer from a recorded umi-profile/v1 stream instead
// of a live guest: the receiving half of capture-once/analyze-many. It
// mirrors the in-process analysis paths exactly — BeginInvocation with
// the recorded hand-off cycle stamp, profiles in recorded order, window
// capture with the same stamp — inline (Workers < 2) or through the
// asynchronous pipeline (optionally over a SharedPrep fleet), so a report
// assembled from a replay is byte-identical to the capture process's
// report at any worker count.
//
// A Replay outlives a single stream: feeding it several shards in
// sequence continues the analysis (the logical cache, delinquent set, and
// history carry across shards exactly as they carry across invocations),
// which is the daemon's multi-shard ingest merge.
type Replay struct {
	cfg  Config
	an   *Analyzer
	met  *Metrics
	pool *analyzerPool

	// OnFrame, when set, observes the wall-clock latency of each stream
	// record Consume processed (decode plus apply) — the ingest path's
	// per-frame latency histogram feed. Purely observational.
	OnFrame func(time.Duration)

	profiledPCs map[uint64]bool
	profiles    int

	// Last safe resume point: the decoder's frame count and rolling
	// checksum immediately after the most recently applied invocation.
	// Safe points land only on invocation boundaries — resuming anywhere
	// else would split an invocation's profile group across uploads.
	safeFrames uint64
	safeChk    uint64

	// Reusable per-invocation staging (profile pointers hand ownership to
	// the analyzer; only the slice headers are recycled).
	profs  []*AddressProfile
	alphas []float64
}

// NewReplay builds a replayer for a stream-derived config
// (ConfigFromWireHeader, plus AnalyzerWorkers/SharedPrep layered on by
// the caller). With AnalyzerWorkers ≥ 2 analysis runs through the same
// pipeline a live System would use.
func NewReplay(cfg Config) *Replay {
	r := &Replay{
		cfg:         cfg,
		met:         newMetrics(),
		profiledPCs: make(map[uint64]bool),
	}
	r.an = NewAnalyzer(&r.cfg)
	r.an.met = r.met
	if cfg.HistoryWindows >= 0 {
		r.an.hist = newHistory(cfg.HistoryWindows, cfg.PhaseMissDelta, cfg.PhaseChurnDelta)
	}
	if cfg.AnalyzerWorkers >= 2 {
		r.pool = newAnalyzerPool(r.an, nil, r.met, nil, cfg.AnalyzerWorkers, cfg.SharedPrep)
	}
	return r
}

// invocation applies one recorded invocation: the exact sequence either
// in-process path runs, minus the guest.
func (r *Replay) invocation(cycles uint64, profs []*AddressProfile, alphas []float64) {
	for _, p := range profs {
		for _, pc := range p.Ops {
			r.profiledPCs[pc] = true
		}
	}
	r.profiles += len(profs)
	if r.pool != nil {
		cost := r.cfg.AnalyzerFixed
		jobs := make([]*analysisJob, len(profs))
		for i, p := range profs {
			cost += r.cfg.AnalyzerPerRef * uint64(p.Recorded())
			jobs[i] = &analysisJob{profile: p, alpha: alphas[i]}
		}
		r.pool.submit(cycles, cost, jobs)
		return
	}
	r.an.BeginInvocation(cycles)
	for i, p := range profs {
		r.an.analyzeWithPrep(p, alphas[i], nil)
	}
	r.an.captureWindow(cycles, nil)
}

// ReplayShard is what one consumed stream carried besides analyzer input:
// the capture side's streamed phase history (as recorded there — it may
// include working-set lines a replay could not recompute) and the run
// trailer. Trailer counts sum and PC sets union across shards; the
// introspect layer owns that accounting.
type ReplayShard struct {
	History HistoryView
	Trailer wire.Trailer
}

// Consume replays one stream (after its header has been read and
// validated by the caller) into the analyzer. On a decode error the
// analyzer keeps whatever invocations were applied before the bad frame —
// the caller decides whether a partially-applied shard poisons the
// session (Progress reports how far the applied prefix reached). The
// replayer stays usable for further shards after a clean consume.
func (r *Replay) Consume(dec *wire.Decoder) (*ReplayShard, error) {
	return r.consume(dec, 0, 0)
}

// Progress reports the last safe resume point: the stream frame count
// (header included) and rolling content checksum right after the most
// recently applied invocation. A client that re-sends the stream from the
// beginning can hand these to ConsumeResume to skip what was already
// applied. Zero frames means nothing has been applied yet.
func (r *Replay) Progress() (frames, checksum uint64) {
	return r.safeFrames, r.safeChk
}

// ConsumeResume is Consume for a re-sent stream: it decodes (and checks)
// the first skipFrames frames without applying them, verifies the rolling
// checksum at the resume point matches — proving the retried bytes are the
// bytes whose prefix was already analyzed — and applies everything after.
// A mismatched checksum, a resume point inside an invocation's profile
// group, or a stream shorter than the resume point is an error with
// nothing applied.
func (r *Replay) ConsumeResume(dec *wire.Decoder, skipFrames, checksum uint64) (*ReplayShard, error) {
	return r.consume(dec, skipFrames, checksum)
}

func (r *Replay) consume(dec *wire.Decoder, skip, skipSum uint64) (*ReplayShard, error) {
	shard := &ReplayShard{}
	var meta *wire.HistoryMeta
	var windows []WindowSummary
	var pendCycles uint64
	pendLeft := -1
	// Progress is per-stream: until this stream applies an invocation (or
	// clears its skip prefix), there is no safe point to resume it from.
	r.safeFrames, r.safeChk = 0, 0
	skipping := skip > 0
	if skipping {
		if dec.Frames() > skip {
			return nil, fmt.Errorf("umi: resume: decoder already past frame %d: %w", skip, ErrResume)
		}
		if dec.Frames() == skip {
			if dec.Checksum() != skipSum {
				return nil, fmt.Errorf("umi: resume: checksum %#016x at frame %d, session recorded %#016x: %w",
					dec.Checksum(), skip, skipSum, ErrResume)
			}
			skipping = false
			r.safeFrames, r.safeChk = skip, skipSum
		}
	}
	for {
		start := time.Now()
		rec, err := dec.Next()
		if err == io.EOF {
			if skipping {
				return nil, fmt.Errorf("umi: resume: point at frame %d past stream end: %w", skip, ErrResume)
			}
			break
		}
		if err != nil {
			return nil, err
		}
		if skipping {
			// Decode-only replay of the already-applied prefix. Safe
			// points precede any history/trailer frames, so only
			// analyzer input can legitimately appear here.
			switch t := rec.(type) {
			case *wire.Invocation:
				pendLeft = t.Profiles
			case *wire.Profile:
				pendLeft--
			default:
				return nil, fmt.Errorf("umi: resume: %T frame before resume point %d: %w", rec, skip, ErrResume)
			}
			if dec.Frames() == skip {
				if dec.Checksum() != skipSum {
					return nil, fmt.Errorf("umi: resume: checksum %#016x at frame %d, session recorded %#016x: %w",
						dec.Checksum(), skip, skipSum, ErrResume)
				}
				if pendLeft > 0 {
					return nil, fmt.Errorf("umi: resume: point at frame %d splits an invocation: %w", skip, ErrResume)
				}
				skipping = false
				r.safeFrames, r.safeChk = skip, skipSum
			}
			continue
		}
		switch t := rec.(type) {
		case *wire.Invocation:
			pendCycles = t.Cycles
			pendLeft = t.Profiles
			r.profs = r.profs[:0]
			r.alphas = r.alphas[:0]
			if pendLeft == 0 {
				r.invocation(pendCycles, nil, nil)
				r.safeFrames, r.safeChk = dec.Frames(), dec.Checksum()
			}
		case *wire.Profile:
			// The decoder's grammar guarantees profiles only follow an
			// invocation that still expects them.
			r.profs = append(r.profs, profileFromWire(t))
			r.alphas = append(r.alphas, t.Alpha)
			pendLeft--
			if pendLeft == 0 {
				r.invocation(pendCycles, r.profs, r.alphas)
				r.safeFrames, r.safeChk = dec.Frames(), dec.Checksum()
			}
		case *wire.HistoryMeta:
			meta = t
		case *wire.Window:
			windows = append(windows, windowFromWire(t))
		case *wire.Trailer:
			shard.Trailer = *t
		}
		if r.OnFrame != nil {
			r.OnFrame(time.Since(start))
		}
	}
	hv := HistoryView{Schema: historySchema, Windows: []WindowSummary{}}
	if meta != nil {
		if meta.Total < uint64(len(windows)) {
			return nil, fmt.Errorf("wire: history meta total %d < %d framed windows", meta.Total, len(windows))
		}
		hv.Total = meta.Total
		hv.Dropped = meta.Total - uint64(len(windows))
		hv.Cap = meta.Cap
		hv.PhaseChanges = meta.PhaseChanges
		if len(windows) > 0 {
			hv.Windows = windows
		}
	}
	shard.History = hv
	return shard, nil
}

// Sync blocks until every invocation consumed so far has been analyzed;
// the pipeline (if any) stays up for further shards. Analyzer-derived
// state (Report, History) is consistent after a Sync until the next
// Consume.
func (r *Replay) Sync() {
	if r.pool != nil {
		r.pool.drain()
	}
}

// Close drains and stops the pipeline (detaching its SharedPrep lane, if
// any). Further Consume calls fall back to inline analysis — reports are
// identical either way.
func (r *Replay) Close() {
	if r.pool != nil {
		r.pool.close()
		r.pool = nil
	}
}

// History returns the replay-side recomputed phase history (windows the
// replayed invocations re-captured — not the streamed capture-side
// history, which ReplayShard carries).
func (r *Replay) History() HistoryView {
	r.Sync()
	return r.an.hist.View()
}

// Metrics exposes the replayer's self-observability registry (pipeline
// gauges, analyzer counters) for the session /metrics surface.
func (r *Replay) Metrics() *Metrics { return r.met }

// Report assembles the run report: analyzer state recomputed by the
// replay, plus the accounting only the capture process knew, carried in
// (and, across shards, merged from) the stream trailers.
func (r *Replay) Report(tracesSeen, candidateOps int, instrumentEvents uint64) *Report {
	r.Sync()
	return &Report{
		Delinquent:          r.an.Delinquent(),
		Strides:             r.an.Strides(),
		OpStats:             r.an.OpStats(),
		SimMissRatio:        r.an.MissRatio(),
		ProfiledOps:         len(r.profiledPCs),
		CandidateOps:        candidateOps,
		ProfilesCollected:   r.profiles,
		AnalyzerInvocations: r.an.Invocations,
		InstrumentEvents:    int(instrumentEvents),
		TracesSeen:          tracesSeen,
		SimulatedRefs:       r.an.SimulatedRefs,
		Flushes:             r.an.Flushes,
	}
}

// HWMissRatio recomputes a hardware-model miss ratio from raw trailer
// counts through the same cache.Stats arithmetic the live path uses, so
// the replayed float is bit-identical to the in-process one.
func HWMissRatio(accesses, misses uint64) float64 {
	return cache.LevelStats{Accesses: accesses, Misses: misses}.MissRatio()
}
