package umi

import (
	"testing"

	"umi/internal/isa"
	"umi/internal/program"
)

// Contract tests for sampled and adaptive instrumentation: the sampled
// configurations must stay deterministic at every analyzer worker count,
// sampling-off must be byte-identical to a build that never heard of
// sampling, and each mechanism must actually deliver its cost cut without
// losing the delinquent loads.

// twoPhaseWorkload runs a long all-hits scratch loop (phase A, miss ratio
// ~0) followed by a strided walk over a large array (phase B, miss ratio
// ~1): the miss-ratio drift across the boundary is what the history
// layer's PhaseChange rule exists to flag.
func twoPhaseWorkload(t *testing.T, itersA, elemsB int64) *program.Program {
	t.Helper()
	b := program.NewBuilder("twophase")
	e := b.Block("entry")
	e.MovI(isa.R0, 0)
	e.MovI(isa.R5, int64(program.GlobalBase))
	a := b.Block("phaseA")
	a.Load(isa.R4, 8, isa.Mem(isa.R5, 0))
	a.AddI(isa.R0, isa.R0, 1)
	a.BrI(isa.CondLT, isa.R0, itersA, "phaseA")
	mid := b.Block("mid")
	mid.MovI(isa.R0, 0)
	mid.MovI(isa.R1, elemsB)
	mid.MovI(isa.R2, int64(program.HeapBase))
	l := b.Block("phaseB")
	l.Load(isa.R3, 8, isa.MemIdx(isa.R2, isa.R0, 8, 0))
	l.AddI(isa.R0, isa.R0, 8)
	l.Br(isa.CondLT, isa.R0, isa.R1, "phaseB")
	b.Block("done").Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

// TestSamplingDeterminism: every sampled configuration must report
// byte-identically at workers 0, 1, and 4 — the schedules derive from the
// seed and trace PCs alone, never from pipeline interleaving.
func TestSamplingDeterminism(t *testing.T) {
	progs := map[string]*program.Program{
		"manyloops": manyLoopsWorkload(t, 8, 30_000),
		"stride":    strideWorkload(t, 400_000),
	}
	mods := map[string]func(*Config){
		"burst":     func(c *Config) { c.BurstPeriod = 8; c.SamplerSeed = 1 },
		"reservoir": func(c *Config) { c.ReservoirRows = 64 },
		"burst+reservoir": func(c *Config) {
			c.BurstPeriod = 8
			c.SamplerSeed = 1
			c.ReservoirRows = 64
		},
		"adapt": func(c *Config) {
			c.BurstPeriod = 8
			c.SamplerSeed = 1
			c.AdaptSampling = true
		},
	}
	for mname, mod := range mods {
		for pname, prog := range progs {
			cfg := testConfig()
			mod(&cfg)
			want := workerKey(t, prog, cfg, 0)
			for _, workers := range []int{1, 4} {
				if got := workerKey(t, prog, cfg, workers); got != want {
					t.Errorf("%s/%s: workers=%d differs from serial:\n  got  %s\n  want %s",
						mname, pname, workers, got, want)
				}
			}
		}
	}
}

// TestSamplingOffInert: configurations that disable sampling in every
// spelling (zero period, explicit period 1, a seed with no period, a
// reservoir at or above the row target) must reproduce the plain config's
// report exactly — the off path is the pre-sampling code path.
func TestSamplingOffInert(t *testing.T) {
	prog := strideWorkload(t, 400_000)
	base := testConfig()
	want := workerKey(t, prog, base, 0)
	offs := map[string]func(*Config){
		"period-1":      func(c *Config) { c.BurstPeriod = 1 },
		"seed-only":     func(c *Config) { c.SamplerSeed = 0xdead },
		"reservoir-cap": func(c *Config) { c.ReservoirRows = c.AddressProfileRows },
		"reservoir-big": func(c *Config) { c.ReservoirRows = 4 * c.AddressProfileRows },
	}
	for name, mod := range offs {
		cfg := testConfig()
		mod(&cfg)
		if got := workerKey(t, prog, cfg, 0); got != want {
			t.Errorf("%s: sampled-off run differs from seed behaviour:\n  got  %s\n  want %s",
				name, got, want)
		}
	}
}

// TestBurstSamplingCutsFill: at 1-in-8 the fill stage must record ~1/8 of
// the references (>= 40% fewer modelled fill cycles — the acceptance bar)
// while still flagging the strided load delinquent.
func TestBurstSamplingCutsFill(t *testing.T) {
	prog := strideWorkload(t, 400_000)

	full, _ := runUMI(t, prog, testConfig())
	cfg := testConfig()
	cfg.BurstPeriod = 8
	cfg.SamplerSeed = 1
	burst, _ := runUMI(t, prog, cfg)

	fullFill := full.Overhead().Stage("fill").ModelledCycles
	burstFill := burst.Overhead().Stage("fill").ModelledCycles
	if fullFill == 0 {
		t.Fatal("full run charged no fill cycles")
	}
	if cut := 1 - float64(burstFill)/float64(fullFill); cut < 0.40 {
		t.Errorf("burst 1-in-8 cut fill cycles by %.0f%% (%d -> %d), want >= 40%%",
			100*cut, fullFill, burstFill)
	}
	if skips := burst.MetricsSnapshot().Counter("umi.sampler.burst_skips"); skips == 0 {
		t.Error("burst run recorded no skips")
	}
	loopPC := prog.Symbols["loop"]
	if !burst.Report().Delinquent[loopPC] {
		t.Errorf("burst run lost the strided delinquent load %#x", loopPC)
	}
}

// TestReservoirCapsRows: a reservoir below the row target must bound the
// profile's physical rows, keep replacing residents once full, and still
// find the delinquent load.
func TestReservoirCapsRows(t *testing.T) {
	prog := strideWorkload(t, 400_000)
	cfg := testConfig()
	cfg.ReservoirRows = 32
	s, _ := runUMI(t, prog, cfg)
	snap := s.MetricsSnapshot()
	if rep := snap.Counter("umi.sampler.reservoir_replaced"); rep == 0 {
		t.Error("reservoir never replaced a resident row")
	}
	// Rows simulated per invocation are bounded by the cap: total refs <=
	// invocations x cap x ops-per-trace. The coarse bound that matters is
	// refs being far below the uncapped run's.
	full, _ := runUMI(t, prog, testConfig())
	if s.Report().SimulatedRefs >= full.Report().SimulatedRefs {
		t.Errorf("capped run simulated %d refs, uncapped %d — cap had no effect",
			s.Report().SimulatedRefs, full.Report().SimulatedRefs)
	}
	loopPC := prog.Symbols["loop"]
	if !s.Report().Delinquent[loopPC] {
		t.Errorf("reservoir run lost the strided delinquent load %#x", loopPC)
	}
}

// TestAdaptShrinksWhenStable: a phase-stable run must step the adaptation
// level down (fewer rows per profile, longer cooldowns) and report it.
func TestAdaptShrinksWhenStable(t *testing.T) {
	prog := strideWorkload(t, 400_000)
	cfg := testConfig()
	cfg.AdaptSampling = true
	cfg.AdaptStableWindows = 2
	s, _ := runUMI(t, prog, cfg)
	snap := s.MetricsSnapshot()
	if snap.Counter("umi.sampler.adapt_shrinks") == 0 {
		t.Error("stable run never shrank")
	}
	if snap.Gauge("umi.sampler.level").Value == 0 {
		t.Error("adaptation level still 0 after a stable run")
	}
	if snap.Counter("umi.sampler.adapt_rearms") != 0 {
		t.Error("stable run re-armed")
	}
}

// TestAdaptRearmsOnPhaseChange: when the workload shifts phase, the
// PhaseChange window must reset adaptation to full profiling.
func TestAdaptRearmsOnPhaseChange(t *testing.T) {
	prog := twoPhaseWorkload(t, 400_000, 800_000)
	cfg := testConfig()
	cfg.AdaptSampling = true
	cfg.AdaptStableWindows = 2
	s, _ := runUMI(t, prog, cfg)
	snap := s.MetricsSnapshot()
	if s.History().PhaseChanges == 0 {
		t.Fatal("two-phase workload produced no PhaseChange window; test needs one")
	}
	if snap.Counter("umi.sampler.adapt_shrinks") == 0 {
		t.Error("phase A never shrank")
	}
	if snap.Counter("umi.sampler.adapt_rearms") == 0 {
		t.Error("phase change never re-armed full profiling")
	}
}

// TestAdaptForcesInline: AdaptSampling reads the just-captured window on
// the guest thread, so it must force the inline analyzer path even when
// workers are configured — and still match the serial report.
func TestAdaptForcesInline(t *testing.T) {
	prog := strideWorkload(t, 400_000)
	cfg := testConfig()
	cfg.AdaptSampling = true
	want := workerKey(t, prog, cfg, 0)
	if got := workerKey(t, prog, cfg, 4); got != want {
		t.Errorf("adaptive run with workers differs from serial:\n  got  %s\n  want %s", got, want)
	}
}
