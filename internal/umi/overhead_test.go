package umi

import (
	"strings"
	"testing"
)

// Attribution contract: the per-stage report must reconcile exactly with
// the cost model and the runtime's overhead ledger, stay deterministic
// across runs and worker counts, and be assemblable live from the
// registry alone.

func TestOverheadAttributionSums(t *testing.T) {
	prog := strideWorkload(t, 400_000)
	cfg := testConfig()
	s, rt := runUMI(t, prog, cfg)
	r := s.Overhead()

	if r.GuestCycles == 0 || r.OverheadCycles == 0 {
		t.Fatalf("empty report: %+v", r)
	}
	if r.GuestCycles != rt.M.Cycles {
		t.Errorf("GuestCycles = %d, want the machine's %d", r.GuestCycles, rt.M.Cycles)
	}
	if r.OverheadCycles != rt.Overhead {
		t.Errorf("OverheadCycles = %d, want the runtime ledger's %d", r.OverheadCycles, rt.Overhead)
	}
	// Stage charges must match the cost model applied to the counted
	// events, and the stages (with the substrate remainder) must partition
	// the ledger exactly.
	snap := s.MetricsSnapshot()
	wantFill := cfg.PrologCost*snap.Counter("umi.stage.fill.prologs") +
		cfg.PerRefCost*snap.Counter("umi.stage.fill.refs")
	if got := r.Stage("fill").ModelledCycles; got != wantFill {
		t.Errorf("fill cycles = %d, want %d", got, wantFill)
	}
	instrEv := snap.Counter("umi.traces.instrumented") + snap.Counter("umi.traces.deinstrumented")
	if got := r.Stage("instrument").ModelledCycles; got != cfg.InstrumentCost*instrEv {
		t.Errorf("instrument cycles = %d, want %d", got, cfg.InstrumentCost*instrEv)
	}
	var sum uint64
	for _, st := range r.Stages {
		sum += st.ModelledCycles
	}
	if sum != r.OverheadCycles {
		t.Errorf("stages sum to %d cycles, ledger says %d", sum, r.OverheadCycles)
	}
	// The observational stages carry no modelled cost by construction.
	for _, name := range []string{"prep", "history", "emit"} {
		if c := r.Stage(name).ModelledCycles; c != 0 {
			t.Errorf("observational stage %s charged %d cycles", name, c)
		}
	}
}

// TestOverheadDeterministic: the modelled render is byte-identical across
// repeated runs and across worker counts; only the wall view may differ.
func TestOverheadDeterministic(t *testing.T) {
	prog := manyLoopsWorkload(t, 8, 30_000)
	render := func(workers int) string {
		cfg := testConfig()
		cfg.BurstPeriod = 8
		cfg.SamplerSeed = 7
		cfg.AnalyzerWorkers = workers
		s, _ := runUMI(t, prog, cfg)
		return s.Overhead().String()
	}
	want := render(0)
	if !strings.Contains(want, "self-overhead: guest") {
		t.Fatalf("unexpected render:\n%s", want)
	}
	for _, workers := range []int{0, 1, 4} {
		if got := render(workers); got != want {
			t.Errorf("workers=%d render differs:\n got: %s\nwant: %s", workers, got, want)
		}
	}
}

// TestLiveOverheadFromRegistry: the live report must be assemblable from
// the registry alone and agree with the drained report at quiescence.
func TestLiveOverheadFromRegistry(t *testing.T) {
	prog := strideWorkload(t, 400_000)
	s, _ := runUMI(t, prog, testConfig())
	want := s.Overhead()
	live := s.LiveOverhead()
	if live.GuestCycles != want.GuestCycles || live.OverheadCycles != want.OverheadCycles {
		t.Errorf("live report differs at quiescence: live %d/%d, drained %d/%d",
			live.GuestCycles, live.OverheadCycles, want.GuestCycles, want.OverheadCycles)
	}
	for _, st := range want.Stages {
		if live.Stage(st.Stage).ModelledCycles != st.ModelledCycles {
			t.Errorf("stage %s: live %d cycles, drained %d",
				st.Stage, live.Stage(st.Stage).ModelledCycles, st.ModelledCycles)
		}
	}
	// The wall view renders from the same report (never golden-compared:
	// it carries measured time) and skips the modelled-only substrate row.
	wall := want.LiveString()
	for _, wantStr := range []string{"self-overhead (wall): run", "(sampled estimate)", "prep"} {
		if !strings.Contains(wall, wantStr) {
			t.Errorf("LiveString missing %q:\n%s", wantStr, wall)
		}
	}
	if strings.Contains(wall, "substrate") {
		t.Errorf("LiveString rendered the modelled-only substrate row:\n%s", wall)
	}
	if st := want.Stage("no-such-stage"); st.ModelledCycles != 0 || st.Stage != "" {
		t.Errorf("unknown stage lookup = %+v, want the zero cost", st)
	}
	// And the snapshot path the daemon uses reproduces the same report.
	cfg := testConfig()
	fromSnap := OverheadFromSnapshot(s.MetricsSnapshot(), &cfg)
	if fromSnap.String() != want.String() {
		t.Errorf("snapshot-rebuilt report differs:\n got: %s\nwant: %s",
			fromSnap.String(), want.String())
	}
}

// TestOverheadPromRender: the exposition must carry every family, and the
// fleet writer must label each sample while declaring types once.
func TestOverheadPromRender(t *testing.T) {
	prog := strideWorkload(t, 400_000)
	s, _ := runUMI(t, prog, testConfig())
	r := s.Overhead()

	var sb strings.Builder
	WriteOverheadProm(&sb, r)
	out := sb.String()
	for _, want := range []string{
		"# TYPE umi_overhead_guest_cycles gauge",
		"# TYPE umi_overhead_ratio gauge",
		`umi_overhead_stage_cycles{stage="fill"}`,
		`umi_overhead_stage_wall_ns{stage="analyze"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	WriteOverheadPromFleet(&sb, []LabeledOverhead{
		{Label: "s1", Report: r}, {Label: "s2", Report: r}, {Label: "s3"},
	})
	fleet := sb.String()
	if c := strings.Count(fleet, "# TYPE umi_overhead_ratio gauge"); c != 1 {
		t.Errorf("fleet exposition declares umi_overhead_ratio %d times, want 1", c)
	}
	for _, want := range []string{
		`umi_overhead_ratio{session="s1"}`,
		`umi_overhead_stage_cycles{session="s2",stage="fill"}`,
	} {
		if !strings.Contains(fleet, want) {
			t.Errorf("fleet exposition missing %q:\n%s", want, fleet)
		}
	}
	if strings.Contains(fleet, `session="s3"`) {
		t.Error("fleet exposition rendered the nil-report session")
	}
	sb.Reset()
	WriteOverheadPromFleet(&sb, nil)
	if sb.Len() != 0 {
		t.Errorf("empty fleet wrote %q", sb.String())
	}
}
