package umi

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase-aware profile history. Every other surface in the runtime reports
// cumulative end-of-run state; the paper's premise (§3.3, §5) is that
// memory behaviour evolves and the analyzer runs periodically precisely to
// track it. This file keeps the time axis: after each analyzer invocation
// the owner thread (the guest on the inline path, the sequencer on the
// pipeline path) captures one WindowSummary — the window's miss ratio, the
// delinquent-set membership and its churn against the previous window, the
// stride mix, the working-set size — into a bounded ring.
//
// Everything captured derives from modelled state stamped at profile
// hand-off time, never from wall clocks or queue depths, so inline
// (workers=0) and asynchronous (workers=N) runs record byte-identical
// histories, and recording never feeds back into modelled results:
// history-on and history-off reports are byte-identical by construction.

// WindowSummary is one analyzer invocation's compact record of memory
// behaviour: what this window looked like, and how far it moved from the
// previous one. All fields derive from the modelled execution, so a fixed
// workload produces a byte-identical summary sequence at any worker count.
type WindowSummary struct {
	// Invocation is the 1-based analyzer invocation number.
	Invocation int `json:"invocation"`
	// Cycles is the modelled guest-cycle stamp at profile hand-off — the
	// same clock BeginInvocation sees, identical inline and async.
	Cycles uint64 `json:"cycles"`
	// Refs counts references mini-simulated in this window (warm-up
	// included, matching Analyzer.SimulatedRefs accounting).
	Refs uint64 `json:"refs"`
	// Accesses and Misses count the window's post-warmup traffic.
	Accesses uint64 `json:"accesses"`
	Misses   uint64 `json:"misses"`
	// WindowMissRatio is Misses/Accesses for this window alone (0, never
	// NaN, when the window saw no post-warmup accesses).
	WindowMissRatio float64 `json:"window_miss_ratio"`
	// CumMissRatio is the analyzer's cumulative miss ratio after this
	// window — the end-of-run Report quantity, tracked over time.
	CumMissRatio float64 `json:"cum_miss_ratio"`

	// Delinquent is |P| after this window; NewDelinquent counts the PCs
	// that entered P during it. DelinquentHash is an FNV-1a hash over the
	// sorted membership, so two windows with equal sizes but different
	// sets are distinguishable without storing the sets.
	Delinquent     int    `json:"delinquent"`
	NewDelinquent  int    `json:"new_delinquent"`
	DelinquentHash uint64 `json:"delinquent_hash"`
	// Jaccard is the delinquent-set similarity |prev∩cur| / |prev∪cur|
	// against the previous window (1 when both are empty; 1 for the first
	// window, which has no baseline).
	Jaccard float64 `json:"jaccard"`

	// PhaseChange flags a detected phase transition: the window miss
	// ratio moved more than Config.PhaseMissDelta from the previous
	// window's, or delinquent-set churn (1 - Jaccard) exceeded
	// Config.PhaseChurnDelta. Never set on the first window.
	PhaseChange bool `json:"phase_change"`

	// StridedLoads counts loads with a discovered dominant stride so far;
	// TopStride is the modal stride among them (0 when none) — the
	// dominant-stride mix in two numbers.
	StridedLoads int   `json:"strided_loads"`
	TopStride    int64 `json:"top_stride"`

	// WSLines is the working-set size in distinct cache lines, read from a
	// registered WorkingSet consumer (0 when none is attached).
	WSLines int `json:"ws_lines"`
}

// historySchema names the exported JSON layout (umiprof -history-out and
// the /history introspection endpoint).
const historySchema = "umi-history/v1"

// DefaultHistoryWindows is the ring depth used when Config.HistoryWindows
// is zero.
const DefaultHistoryWindows = 64

// History is the bounded profile-history ring. Capture runs on the thread
// that owns the analyzer (single writer, in invocation order); snapshots
// are safe from any goroutine at any time, which is what the live HTTP
// introspection surface needs.
type History struct {
	mu     sync.Mutex
	cap    int
	buf    []WindowSummary // ring storage, len == cap once warm
	start  int             // index of the oldest retained window
	n      int             // retained windows
	total  uint64          // windows ever recorded
	phases uint64          // windows flagged PhaseChange, ever

	// Capture state, touched only by the analyzer owner (the pipeline's
	// ownership hand-offs give the necessary happens-before edges).
	missDelta  float64
	churnDelta float64
	prevRefs   uint64
	prevAcc    uint64
	prevMiss   uint64
	prevRatio  float64 // previous window's miss ratio
	prevSet    []uint64
	hasPrev    bool
}

// newHistory builds a ring of the given capacity (0 selects
// DefaultHistoryWindows) with the given phase-detection thresholds.
func newHistory(capacity int, missDelta, churnDelta float64) *History {
	if capacity <= 0 {
		capacity = DefaultHistoryWindows
	}
	return &History{cap: capacity, missDelta: missDelta, churnDelta: churnDelta}
}

// record appends one summary, dropping the oldest window when full.
func (h *History) record(w WindowSummary) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.buf) < h.cap {
		h.buf = append(h.buf, w)
		h.n++
	} else {
		h.buf[h.start] = w
		h.start = (h.start + 1) % h.cap
	}
	h.total++
	if w.PhaseChange {
		h.phases++
	}
}

// Windows returns the retained summaries, oldest first.
func (h *History) Windows() []WindowSummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]WindowSummary, 0, h.n)
	for i := 0; i < h.n; i++ {
		out = append(out, h.buf[(h.start+i)%len(h.buf)])
	}
	return out
}

// lastWindow returns the most recently recorded summary, or false when
// none has been captured yet. Nil-safe: the adaptation state machine
// consults it after every inline invocation, and a history-less run
// (HistoryWindows < 0) simply never adapts.
func (h *History) lastWindow() (WindowSummary, bool) {
	if h == nil {
		return WindowSummary{}, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return WindowSummary{}, false
	}
	return h.buf[(h.start+h.n-1)%len(h.buf)], true
}

// reset rewinds the ring and the capture baseline to the just-constructed
// state, so an analyzer reused across runs (Analyzer.Reset) records the
// same history a fresh one would. Nil-safe: standalone analyzers built in
// tests run history-less.
func (h *History) reset() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.buf = h.buf[:0]
	h.start, h.n = 0, 0
	h.total, h.phases = 0, 0
	h.mu.Unlock()
	h.prevRefs, h.prevAcc, h.prevMiss = 0, 0, 0
	h.prevRatio = 0
	h.prevSet = h.prevSet[:0]
	h.hasPrev = false
}

// Total returns the number of windows ever recorded.
func (h *History) Total() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// HistoryView is the exported snapshot of the ring: accounting plus the
// retained windows, oldest first. It is the payload of Session.History,
// umiprof -history-out, and the /history introspection endpoint.
type HistoryView struct {
	Schema       string          `json:"schema"`
	Total        uint64          `json:"total"`
	Dropped      uint64          `json:"dropped"`
	Cap          int             `json:"cap"`
	PhaseChanges uint64          `json:"phase_changes"`
	Windows      []WindowSummary `json:"windows"`
}

// View snapshots the ring. Safe from any goroutine; a nil receiver yields
// an empty view (analyzers built standalone in tests run history-less).
func (h *History) View() HistoryView {
	if h == nil {
		return HistoryView{Schema: historySchema, Windows: []WindowSummary{}}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	v := HistoryView{
		Schema:       historySchema,
		Total:        h.total,
		Dropped:      h.total - uint64(h.n),
		Cap:          h.cap,
		PhaseChanges: h.phases,
		Windows:      make([]WindowSummary, 0, h.n),
	}
	for i := 0; i < h.n; i++ {
		v.Windows = append(v.Windows, h.buf[(h.start+i)%len(h.buf)])
	}
	return v
}

// fnvOffset/fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// hashPCs is FNV-1a over the sorted PC list, 8 little-endian bytes each.
func hashPCs(pcs []uint64) uint64 {
	h := uint64(fnvOffset)
	for _, pc := range pcs {
		for b := 0; b < 8; b++ {
			h ^= (pc >> (8 * b)) & 0xff
			h *= fnvPrime
		}
	}
	return h
}

// jaccard computes |a∩b| / |a∪b| over two sorted slices; two empty sets
// are defined as identical (1).
func jaccard(a, b []uint64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// captureWindow records one WindowSummary for the invocation that just
// completed. It must run on the thread that owns the analyzer, after every
// profile of the invocation has been analyzed and consumed, with the
// modelled cycle stamp the invocation was submitted at — the rule that
// makes inline and asynchronous histories byte-identical.
func (a *Analyzer) captureWindow(cycles uint64, consumers []ProfileConsumer) {
	h := a.hist
	if h == nil {
		return
	}
	// Stage attribution (overhead.go): capture is observational, so its
	// modelled cost is zero by construction; its wall cost is measured
	// here, on whichever thread owns the analyzer for this invocation.
	var start time.Time
	if a.met != nil {
		start = time.Now()
		defer func() {
			ns := uint64(time.Since(start))
			a.met.HistoryWallNs.Add(ns)
			a.met.HistoryLatency.Observe(ns)
		}()
	}
	cur := make([]uint64, 0, len(a.delinquent))
	for pc := range a.delinquent {
		cur = append(cur, pc)
	}
	sort.Slice(cur, func(i, j int) bool { return cur[i] < cur[j] })

	w := WindowSummary{
		Invocation:     a.Invocations,
		Cycles:         cycles,
		Refs:           a.SimulatedRefs - h.prevRefs,
		Accesses:       a.totalAcc - h.prevAcc,
		Misses:         a.totalMiss - h.prevMiss,
		CumMissRatio:   a.MissRatio(),
		Delinquent:     len(cur),
		NewDelinquent:  len(cur) - len(h.prevSet),
		DelinquentHash: hashPCs(cur),
		StridedLoads:   len(a.strides),
		TopStride:      modalStride(a.strides),
	}
	if w.Accesses > 0 {
		w.WindowMissRatio = float64(w.Misses) / float64(w.Accesses)
	}
	w.Jaccard = jaccard(h.prevSet, cur)
	if h.hasPrev {
		drift := w.WindowMissRatio - h.prevRatio
		if drift < 0 {
			drift = -drift
		}
		w.PhaseChange = drift > h.missDelta || 1-w.Jaccard > h.churnDelta
	} else {
		w.Jaccard = 1
	}
	for _, c := range consumers {
		if ws, ok := c.(interface{ DistinctLines() int }); ok {
			w.WSLines = ws.DistinctLines()
			break
		}
	}
	h.record(w)
	h.prevRefs, h.prevAcc, h.prevMiss = a.SimulatedRefs, a.totalAcc, a.totalMiss
	h.prevRatio = w.WindowMissRatio
	h.prevSet = append(h.prevSet[:0], cur...)
	h.hasPrev = true
}

// modalStride returns the most common dominant stride across the
// discovered per-load strides, breaking count ties toward the smaller
// magnitude and then the positive value (the dominantStride rule), 0 when
// no strides have been discovered.
func modalStride(strides map[uint64]StrideInfo) int64 {
	if len(strides) == 0 {
		return 0
	}
	vals := make([]int64, 0, len(strides))
	for _, si := range strides {
		vals = append(vals, si.Stride)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	best, bestN := int64(0), 0
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		d, n := vals[i], j-i
		if n > bestN ||
			(n == bestN && (abs64(d) < abs64(best) || (abs64(d) == abs64(best) && d > best))) {
			best, bestN = d, n
		}
		i = j
	}
	return best
}

// FormatHistory renders a window sequence as the CLI's phase-history
// section: one line per analyzer invocation with the window and cumulative
// miss ratios, delinquent-set size and churn, stride mix, working-set
// size, and a *PHASE* marker on detected transitions. Deterministic —
// every column derives from modelled state.
func FormatHistory(windows []WindowSummary) string {
	if len(windows) == 0 {
		return "phase history: no analyzer invocations\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "phase history: %d windows\n", len(windows))
	fmt.Fprintf(&sb, "  %4s  %12s  %9s  %8s  %8s  %5s  %5s  %7s  %7s  %8s\n",
		"inv", "cycles", "refs", "win-miss", "cum-miss", "|P|", "+new", "jaccard", "strided", "ws-lines")
	for _, w := range windows {
		line := fmt.Sprintf("  %4d  %12d  %9d  %8.4f  %8.4f  %5d  %+5d  %7.3f  %7d  %8d",
			w.Invocation, w.Cycles, w.Refs, w.WindowMissRatio, w.CumMissRatio,
			w.Delinquent, w.NewDelinquent, w.Jaccard, w.StridedLoads, w.WSLines)
		if w.PhaseChange {
			line += "  *PHASE*"
		}
		sb.WriteString(line + "\n")
	}
	return sb.String()
}

// WriteHistoryProm appends the phase-history metrics to a Prometheus text
// exposition: running totals as counters and the latest window's behaviour
// as gauges, so a scraper polling /metrics/prom mid-run sees the current
// phase without parsing the full window list.
func WriteHistoryProm(w io.Writer, v HistoryView) {
	writeProm := func(name, typ string, value string) {
		fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", name, typ, name, value)
	}
	writeProm("umi_phase_windows_total", "counter", fmt.Sprintf("%d", v.Total))
	writeProm("umi_phase_windows_dropped_total", "counter", fmt.Sprintf("%d", v.Dropped))
	writeProm("umi_phase_changes_total", "counter", fmt.Sprintf("%d", v.PhaseChanges))
	if len(v.Windows) == 0 {
		return
	}
	last := v.Windows[len(v.Windows)-1]
	writeProm("umi_phase_window_miss_ratio", "gauge", promFloat(last.WindowMissRatio))
	writeProm("umi_phase_cum_miss_ratio", "gauge", promFloat(last.CumMissRatio))
	writeProm("umi_phase_delinquent_size", "gauge", fmt.Sprintf("%d", last.Delinquent))
	writeProm("umi_phase_jaccard", "gauge", promFloat(last.Jaccard))
	writeProm("umi_phase_strided_loads", "gauge", fmt.Sprintf("%d", last.StridedLoads))
	writeProm("umi_phase_ws_lines", "gauge", fmt.Sprintf("%d", last.WSLines))
	writeProm("umi_phase_last_cycles", "gauge", fmt.Sprintf("%d", last.Cycles))
}

// promFloat renders a float sample value the way Prometheus expects.
func promFloat(f float64) string { return fmt.Sprintf("%g", f) }
