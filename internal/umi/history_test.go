package umi

import (
	"encoding/json"
	"strings"
	"testing"
)

// historyKey serializes a HistoryView for byte-exact comparison.
func historyKey(t *testing.T, v HistoryView) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal history: %v", err)
	}
	return string(b)
}

// TestHistoryDeterminismAcrossWorkers is the tentpole contract: the
// sequencer stamps every window with the modelled hand-off cycle count, so
// inline and asynchronous pipelines record byte-identical histories.
func TestHistoryDeterminismAcrossWorkers(t *testing.T) {
	for _, name := range []string{"manyloops", "stride"} {
		prog := strideWorkload(t, 400_000)
		if name == "manyloops" {
			prog = manyLoopsWorkload(t, 8, 30_000)
		}
		cfg := testConfig()
		run := func(workers int) string {
			cfg.AnalyzerWorkers = workers
			s, _ := runUMI(t, prog, cfg)
			return historyKey(t, s.History())
		}
		want := run(0)
		if !strings.Contains(want, historySchema) {
			t.Fatalf("%s: history view missing schema: %s", name, want[:80])
		}
		for _, workers := range []int{1, 4} {
			if got := run(workers); got != want {
				t.Errorf("%s: workers=%d history differs from inline:\n  got  %s\n  want %s",
					name, workers, got, want)
			}
		}
	}
}

// TestHistoryInert: capture only reads modelled state, so the full report —
// delinquent set, miss ratios, modelled cycles — is byte-identical whether
// the history ring exists (default), is tiny, or is disabled outright.
func TestHistoryInert(t *testing.T) {
	prog := manyLoopsWorkload(t, 8, 30_000)
	for _, workers := range []int{0, 4} {
		cfg := testConfig()
		cfg.HistoryWindows = -1 // capture disabled
		off := workerKey(t, prog, cfg, workers)

		cfg.HistoryWindows = 0 // default ring
		on := workerKey(t, prog, cfg, workers)
		if on != off {
			t.Errorf("workers=%d: history-on report differs from history-off:\n  on  %s\n  off %s",
				workers, on, off)
		}
		cfg.HistoryWindows = 2 // tiny ring, maximal dropping
		if tiny := workerKey(t, prog, cfg, workers); tiny != off {
			t.Errorf("workers=%d: tiny-ring report differs from history-off", workers)
		}
	}
}

// TestHistoryDisabled: a negative HistoryWindows yields the empty view.
func TestHistoryDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.HistoryWindows = -1
	s, _ := runUMI(t, strideWorkload(t, 200_000), cfg)
	v := s.History()
	if v.Schema != historySchema || v.Total != 0 || len(v.Windows) != 0 {
		t.Errorf("disabled history view = %+v, want empty", v)
	}
}

// TestHistoryWindowContent cross-checks the recorded windows against the
// analyzer's cumulative accounting: invocation numbers are 1..N and cycle
// stamps nondecreasing, per-window refs sum to SimulatedRefs, and the last
// window's cumulative miss ratio is the report's.
func TestHistoryWindowContent(t *testing.T) {
	cfg := testConfig()
	s, _ := runUMI(t, strideWorkload(t, 400_000), cfg)
	rep := s.Report()
	v := s.History()
	if v.Total == 0 || int(v.Total) != rep.AnalyzerInvocations {
		t.Fatalf("Total = %d, want %d invocations", v.Total, rep.AnalyzerInvocations)
	}
	if v.Dropped != v.Total-uint64(len(v.Windows)) {
		t.Errorf("Dropped = %d, want %d", v.Dropped, v.Total-uint64(len(v.Windows)))
	}
	var refs uint64
	prevCyc := uint64(0)
	for i, w := range v.Windows {
		if want := int(v.Dropped) + i + 1; w.Invocation != want {
			t.Errorf("window %d: Invocation = %d, want %d", i, w.Invocation, want)
		}
		if w.Cycles < prevCyc {
			t.Errorf("window %d: cycle stamp decreased (%d < %d)", i, w.Cycles, prevCyc)
		}
		prevCyc = w.Cycles
		refs += w.Refs
		if w.Accesses > 0 {
			if want := float64(w.Misses) / float64(w.Accesses); w.WindowMissRatio != want {
				t.Errorf("window %d: WindowMissRatio = %v, want %v", i, w.WindowMissRatio, want)
			}
		} else if w.WindowMissRatio != 0 {
			t.Errorf("window %d: empty window has miss ratio %v", i, w.WindowMissRatio)
		}
		if w.Jaccard < 0 || w.Jaccard > 1 {
			t.Errorf("window %d: Jaccard = %v out of [0,1]", i, w.Jaccard)
		}
	}
	if v.Dropped == 0 && refs != rep.SimulatedRefs {
		t.Errorf("windowed refs sum = %d, want SimulatedRefs %d", refs, rep.SimulatedRefs)
	}
	last := v.Windows[len(v.Windows)-1]
	if last.CumMissRatio != rep.SimMissRatio {
		t.Errorf("last CumMissRatio = %v, want report SimMissRatio %v",
			last.CumMissRatio, rep.SimMissRatio)
	}
}

// TestHistoryRingBounded: a small ring retains only the newest windows and
// accounts for every drop.
func TestHistoryRingBounded(t *testing.T) {
	cfg := testConfig()
	cfg.HistoryWindows = 3
	s, _ := runUMI(t, manyLoopsWorkload(t, 8, 30_000), cfg)
	v := s.History()
	if v.Cap != 3 {
		t.Fatalf("Cap = %d, want 3", v.Cap)
	}
	if v.Total <= 3 {
		t.Skipf("workload produced only %d windows; cannot exercise overwrite", v.Total)
	}
	if len(v.Windows) != 3 {
		t.Fatalf("retained %d windows, want 3", len(v.Windows))
	}
	if v.Dropped != v.Total-3 {
		t.Errorf("Dropped = %d, want %d", v.Dropped, v.Total-3)
	}
	// The retained windows are the newest: the last one carries the final
	// invocation number.
	if got, want := v.Windows[2].Invocation, int(v.Total); got != want {
		t.Errorf("newest retained invocation = %d, want %d", got, want)
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []uint64
		want float64
	}{
		{nil, nil, 1},
		{[]uint64{1}, nil, 0},
		{nil, []uint64{1}, 0},
		{[]uint64{1, 2, 3}, []uint64{1, 2, 3}, 1},
		{[]uint64{1, 2}, []uint64{2, 3}, 1.0 / 3},
		{[]uint64{1, 2, 3, 4}, []uint64{3, 4, 5, 6}, 2.0 / 6},
		{[]uint64{1}, []uint64{2}, 0},
	}
	for i, c := range cases {
		if got := jaccard(c.a, c.b); got != c.want {
			t.Errorf("case %d: jaccard(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestHashPCs(t *testing.T) {
	if hashPCs(nil) != fnvOffset {
		t.Error("empty set must hash to the FNV offset basis")
	}
	a := hashPCs([]uint64{0x400000, 0x400008})
	b := hashPCs([]uint64{0x400000, 0x400010})
	if a == b {
		t.Error("different sets hashed equal")
	}
	if a != hashPCs([]uint64{0x400000, 0x400008}) {
		t.Error("hash not deterministic")
	}
}

// TestPhaseChangeDetection drives captureWindow directly on a standalone
// analyzer, mutating the cumulative counters between captures to trigger
// each phase rule separately.
func TestPhaseChangeDetection(t *testing.T) {
	cfg := testConfig()
	a := NewAnalyzer(&cfg)
	a.hist = newHistory(8, 0.05, 0.5)

	// Window 1: baseline. First window never flags a phase change.
	a.Invocations = 1
	a.SimulatedRefs, a.totalAcc, a.totalMiss = 100, 100, 10
	a.delinquent[0x400000] = true
	a.delinquent[0x400008] = true
	a.captureWindow(1000, nil)

	// Window 2: same miss ratio, same set — no phase change.
	a.Invocations = 2
	a.SimulatedRefs, a.totalAcc, a.totalMiss = 200, 200, 20
	a.captureWindow(2000, nil)

	// Window 3: window miss ratio jumps 0.10 → 0.60 (> missDelta).
	a.Invocations = 3
	a.SimulatedRefs, a.totalAcc, a.totalMiss = 300, 300, 80
	a.captureWindow(3000, nil)

	// Window 4: ratio held at 0.60, but the delinquent set is replaced
	// wholesale — churn 1 − Jaccard = 1 > churnDelta.
	a.Invocations = 4
	a.SimulatedRefs, a.totalAcc, a.totalMiss = 400, 400, 140
	delete(a.delinquent, 0x400000)
	delete(a.delinquent, 0x400008)
	a.delinquent[0x500000] = true
	a.delinquent[0x500008] = true
	a.captureWindow(4000, nil)

	w := a.hist.Windows()
	if len(w) != 4 {
		t.Fatalf("recorded %d windows, want 4", len(w))
	}
	wantPhase := []bool{false, false, true, true}
	for i, want := range wantPhase {
		if w[i].PhaseChange != want {
			t.Errorf("window %d: PhaseChange = %v, want %v", i+1, w[i].PhaseChange, want)
		}
	}
	if w[0].Jaccard != 1 {
		t.Errorf("first window Jaccard = %v, want 1", w[0].Jaccard)
	}
	if w[3].Jaccard != 0 {
		t.Errorf("replaced-set Jaccard = %v, want 0", w[3].Jaccard)
	}
	if w[3].NewDelinquent != 0 {
		t.Errorf("NewDelinquent = %d, want 0 (size unchanged)", w[3].NewDelinquent)
	}
	if w[2].WindowMissRatio != 0.6 {
		t.Errorf("window 3 miss ratio = %v, want 0.6", w[2].WindowMissRatio)
	}
	if a.hist.View().PhaseChanges != 2 {
		t.Errorf("PhaseChanges = %d, want 2", a.hist.View().PhaseChanges)
	}

	// Reset rewinds both ring and baseline: the next capture is a fresh
	// first window again.
	a.Reset()
	a.Invocations = 1
	a.SimulatedRefs, a.totalAcc, a.totalMiss = 50, 50, 25
	a.captureWindow(500, nil)
	w = a.hist.Windows()
	if len(w) != 1 || w[0].PhaseChange || w[0].Jaccard != 1 || w[0].Refs != 50 {
		t.Errorf("post-Reset window = %+v, want fresh first window", w[0])
	}
}

func TestModalStride(t *testing.T) {
	mk := func(strides ...int64) map[uint64]StrideInfo {
		m := make(map[uint64]StrideInfo)
		for i, s := range strides {
			m[uint64(i)] = StrideInfo{Stride: s}
		}
		return m
	}
	cases := []struct {
		in   map[uint64]StrideInfo
		want int64
	}{
		{nil, 0},
		{mk(8), 8},
		{mk(8, 8, 64), 8},
		{mk(-8, 8), 8},    // tie: positive wins
		{mk(64, 4, 4), 4}, // count beats magnitude
	}
	for i, c := range cases {
		if got := modalStride(c.in); got != c.want {
			t.Errorf("case %d: modalStride = %d, want %d", i, got, c.want)
		}
	}
}

func TestFormatHistory(t *testing.T) {
	if got := FormatHistory(nil); got != "phase history: no analyzer invocations\n" {
		t.Errorf("empty FormatHistory = %q", got)
	}
	cfg := testConfig()
	s, _ := runUMI(t, strideWorkload(t, 300_000), cfg)
	v := s.History()
	out := FormatHistory(v.Windows)
	if out != FormatHistory(v.Windows) {
		t.Error("FormatHistory not deterministic")
	}
	if !strings.Contains(out, "win-miss") || !strings.Contains(out, "jaccard") {
		t.Errorf("header missing columns:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != len(v.Windows)+2 {
		t.Errorf("rendered %d lines, want %d", lines, len(v.Windows)+2)
	}
}

func TestWriteHistoryProm(t *testing.T) {
	// Empty view: the three counters appear, no gauges, and no NaN ever.
	var sb strings.Builder
	WriteHistoryProm(&sb, (*History)(nil).View())
	out := sb.String()
	for _, c := range []string{
		"umi_phase_windows_total 0",
		"umi_phase_windows_dropped_total 0",
		"umi_phase_changes_total 0",
	} {
		if !strings.Contains(out, c) {
			t.Errorf("empty exposition missing %q:\n%s", c, out)
		}
	}
	if strings.Contains(out, "gauge") || strings.Contains(out, "NaN") {
		t.Errorf("empty exposition must carry no gauges:\n%s", out)
	}

	// Live view: gauges track the newest window.
	cfg := testConfig()
	s, _ := runUMI(t, strideWorkload(t, 300_000), cfg)
	sb.Reset()
	WriteHistoryProm(&sb, s.History())
	out = sb.String()
	for _, c := range []string{
		"# TYPE umi_phase_windows_total counter",
		"# TYPE umi_phase_window_miss_ratio gauge",
		"umi_phase_delinquent_size",
		"umi_phase_last_cycles",
	} {
		if !strings.Contains(out, c) {
			t.Errorf("exposition missing %q:\n%s", c, out)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("exposition contains NaN:\n%s", out)
	}
}

// TestEmptyDelinquentWindowsNoChurn is the regression test for the
// Jaccard empty∩empty case: two consecutive windows with an empty
// delinquent set must read as similarity 1.0 (no churn), not 0/0 → 0 —
// an idle phase must not trip PhaseChange through the churn rule.
func TestEmptyDelinquentWindowsNoChurn(t *testing.T) {
	cfg := testConfig()
	a := NewAnalyzer(&cfg)
	a.hist = newHistory(8, 0.05, 0.5)

	// Two quiet windows: steady miss ratio, no delinquent loads at all.
	a.Invocations = 1
	a.SimulatedRefs, a.totalAcc, a.totalMiss = 100, 100, 10
	a.captureWindow(1000, nil)
	a.Invocations = 2
	a.SimulatedRefs, a.totalAcc, a.totalMiss = 200, 200, 20
	a.captureWindow(2000, nil)

	w := a.hist.Windows()
	if len(w) != 2 {
		t.Fatalf("recorded %d windows, want 2", len(w))
	}
	for i, win := range w {
		if win.Delinquent != 0 {
			t.Fatalf("window %d: Delinquent = %d, want 0", i+1, win.Delinquent)
		}
		if win.Jaccard != 1 {
			t.Errorf("window %d: empty∩empty Jaccard = %v, want 1.0", i+1, win.Jaccard)
		}
		if win.PhaseChange {
			t.Errorf("window %d: spurious PhaseChange on an idle window", i+1)
		}
	}
}
