package umi

import (
	"testing"

	"umi/internal/cache"
)

// FuzzSamplerConfig throws arbitrary (including hostile: negative, zero,
// enormous) sampling knobs at the schedule helpers and checks the
// invariants the fill trigger leans on: the effective period is always
// at least 1, every burst's entry budget yields at least one recorded
// row (the clamp that keeps analyzer invocations non-empty), the adapted
// row target stays within (0, AddressProfileRows], and the schedule is a
// pure function of (seed, start PC, entry counter).
func FuzzSamplerConfig(f *testing.F) {
	f.Add(0, uint64(0), 0, 0, uint64(0x400000), uint8(0))
	f.Add(8, uint64(1), 64, 4, uint64(0x401000), uint8(1))
	f.Add(-5, uint64(1<<63), 1<<30, -3, uint64(0), uint8(3))
	f.Add(1, uint64(42), -1, 1, uint64(0xffffffffffffffff), uint8(7))
	f.Fuzz(func(t *testing.T, period int, seed uint64, reservoir, stable int, startPC uint64, levelRaw uint8) {
		cfg := DefaultConfig(cache.P4L2)
		cfg.BurstPeriod = period
		cfg.SamplerSeed = seed
		cfg.ReservoirRows = reservoir
		cfg.AdaptSampling = true
		cfg.AdaptStableWindows = stable

		if p := cfg.burstPeriod(); p < 1 {
			t.Fatalf("burstPeriod() = %d with BurstPeriod %d, want >= 1", p, period)
		}
		if k := cfg.adaptStableWindows(); k < 1 {
			t.Fatalf("adaptStableWindows() = %d with AdaptStableWindows %d, want >= 1", k, stable)
		}

		s := &System{cfg: cfg}
		s.adaptLevel = int(levelRaw % (adaptMaxLevel + 1))
		rows := s.effRows()
		if rows < 1 || rows > cfg.AddressProfileRows {
			t.Fatalf("effRows() = %d at level %d, want in (0, %d]", rows, s.adaptLevel, cfg.AddressProfileRows)
		}
		if gap := s.effGap(); gap < cfg.ReinstrumentGap {
			t.Fatalf("effGap() = %d below the configured %d", gap, cfg.ReinstrumentGap)
		}

		mk := func() *traceState {
			ts := &traceState{rowTarget: rows}
			h := splitmix64(seed ^ startPC)
			ts.burstOffset = h
			ts.rngState = splitmix64(h)
			return ts
		}
		ts := mk()
		recorded := 0
		var schedule []bool
		for e := 0; e < rows; e++ {
			ts.entrySeen = e
			hit := s.burstRecord(ts)
			schedule = append(schedule, hit)
			if hit {
				recorded++
			}
		}
		if recorded == 0 {
			t.Fatalf("schedule recorded 0 rows over a %d-entry burst (period %d)", rows, period)
		}
		// Replaying the same (seed, PC) stream must reproduce the schedule
		// and the reservoir PRNG sequence exactly.
		ts2 := mk()
		for e := 0; e < rows; e++ {
			ts2.entrySeen = e
			if s.burstRecord(ts2) != schedule[e] {
				t.Fatalf("entry %d: schedule not reproducible", e)
			}
		}
		if ts.nextRand() != ts2.nextRand() {
			t.Fatal("reservoir PRNG stream not reproducible")
		}
	})
}

// FuzzReservoirProfile drives the reservoir-sampling row discipline over
// an AddressProfile with arbitrary geometry — cap zero, cap at or above
// the stream length, duplicate PCs — and checks the structural invariants
// the analyzer assumes: row count never exceeds the cap, the recorded-cell
// ledger stays exact through ReuseRow overwrites, and the resulting
// profile analyzes without panicking.
func FuzzReservoirProfile(f *testing.F) {
	f.Add(uint8(4), uint8(8), uint8(40), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(1), uint8(0), uint8(10), []byte{})
	f.Add(uint8(3), uint8(32), uint8(5), []byte{255, 128, 0, 7})
	f.Fuzz(func(t *testing.T, nOpsRaw, capRaw, streamRaw uint8, data []byte) {
		nOps := 1 + int(nOpsRaw%8)
		rowCap := int(capRaw % 33) // includes 0
		stream := int(streamRaw)   // may be far above the cap
		cursor := 0
		next := func() byte {
			if cursor >= len(data) {
				return 0
			}
			b := data[cursor]
			cursor++
			return b
		}

		ops := make([]uint64, nOps)
		isLoad := make([]bool, nOps)
		for i := range ops {
			// Duplicate PCs on purpose: a trace can profile the same PC in
			// two columns after inlining.
			ops[i] = 0x400000 + uint64(i%3)*4
			isLoad[i] = next()%3 != 0
		}
		p := NewAddressProfile(ops, isLoad, rowCap)
		ts := &traceState{profile: p, rngState: splitmix64(uint64(next()) + 1)}

		recordRow := func(row int) {
			for c := 0; c < nOps; c++ {
				if next()%4 == 0 {
					continue
				}
				p.Record(row, c, uint64(next())*64)
			}
		}
		for k := 1; k <= stream; k++ {
			ts.rowsSeen++
			if row, ok := p.OpenRow(); ok {
				recordRow(row)
				continue
			}
			j := ts.nextRand() % uint64(ts.rowsSeen)
			if j >= uint64(rowCap) {
				continue // dropped
			}
			p.ReuseRow(int(j))
			recordRow(int(j))
		}

		if p.Rows() > rowCap {
			t.Fatalf("profile holds %d rows, cap %d", p.Rows(), rowCap)
		}
		// The recorded ledger must equal a direct count of populated cells.
		count := 0
		for r := 0; r < p.Rows(); r++ {
			for c := 0; c < nOps; c++ {
				if _, ok := p.At(r, c); ok {
					count++
				}
			}
		}
		if count != p.Recorded() {
			t.Fatalf("Recorded() = %d, cells hold %d", p.Recorded(), count)
		}
		if p.Rows() > 0 {
			cfg := DefaultConfig(cache.P4L2)
			an := NewAnalyzer(&cfg)
			an.BeginInvocation(1000)
			an.AnalyzeProfile(p, 0.1)
			if r := an.MissRatio(); r < 0 || r > 1 {
				t.Fatalf("miss ratio %v out of range on a reservoir profile", r)
			}
		}
	})
}
