package umi

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"umi/internal/cache"
	"umi/internal/program"
	"umi/internal/rio"
	"umi/internal/vm"
)

// --- satellite: BeginInvocation must not wrap on non-monotonic clocks ---

func TestBeginInvocationNonMonotonicClock(t *testing.T) {
	cfg := testConfig()
	cfg.FlushCycleGap = 1000
	an := NewAnalyzer(&cfg)
	an.BeginInvocation(10_000)
	// A cycle count below the previous invocation's (e.g. a harness reset
	// reused the analyzer against a rewound clock) used to underflow the
	// uint64 gap and flush on every invocation.
	an.BeginInvocation(500)
	if an.Flushes != 0 {
		t.Errorf("Flushes = %d after backwards clock step, want 0 (underflow wrap)", an.Flushes)
	}
	// The rewound time must become the new base: a genuine gap from there
	// still flushes.
	an.BeginInvocation(5_000)
	if an.Flushes != 1 {
		t.Errorf("Flushes = %d after genuine gap, want 1", an.Flushes)
	}
}

func TestAnalyzerReset(t *testing.T) {
	cfg := testConfig()
	cfg.FlushCycleGap = 1000
	an := NewAnalyzer(&cfg)
	p := NewAddressProfile([]uint64{0x400000}, []bool{true}, 4)
	for i := 0; i < 4; i++ {
		row, _ := p.OpenRow()
		p.Record(row, 0, uint64(0x1000+4096*i))
	}
	an.BeginInvocation(100)
	an.AnalyzeProfile(p, 0.5)
	if an.SimulatedRefs == 0 || len(an.OpStats()) == 0 {
		t.Fatal("analysis recorded nothing; test setup broken")
	}
	an.Reset()
	if an.Invocations != 0 || an.SimulatedRefs != 0 || an.Flushes != 0 ||
		len(an.OpStats()) != 0 || len(an.Delinquent()) != 0 || len(an.Strides()) != 0 ||
		an.MissRatio() != 0 {
		t.Errorf("Reset left state behind: %v", an)
	}
	// The first invocation after Reset must never flush, whatever the
	// clock says — the reset rewound the invocation history.
	an.BeginInvocation(1)
	if an.Flushes != 0 {
		t.Errorf("Flushes = %d on first post-Reset invocation, want 0", an.Flushes)
	}
}

// --- satellite: MissRatio must be 0, never NaN, with zero accesses ---

func TestMissRatioZeroWhenProfileShorterThanWarmup(t *testing.T) {
	cfg := testConfig()
	cfg.WarmupRows = 2
	an := NewAnalyzer(&cfg)
	// One recorded row with WarmupRows=2: every row is warm-up, so zero
	// post-warmup accesses reach the accounting.
	p := NewAddressProfile([]uint64{0x400000}, []bool{true}, 4)
	row, _ := p.OpenRow()
	p.Record(row, 0, 0x1000)
	an.BeginInvocation(0)
	an.AnalyzeProfile(p, 0.9)
	if r := an.MissRatio(); r != 0 || math.IsNaN(r) {
		t.Errorf("Analyzer.MissRatio() = %v with 0 accesses, want 0", r)
	}
	st := an.OpStats()[0x400000]
	if st == nil {
		t.Fatal("no OpStat recorded for the profiled op")
	}
	if st.Accesses != 0 {
		t.Fatalf("Accesses = %d, want 0 (all rows are warm-up)", st.Accesses)
	}
	if r := st.MissRatio(); r != 0 || math.IsNaN(r) {
		t.Errorf("OpStat.MissRatio() = %v with 0 accesses, want 0", r)
	}
}

// --- satellite: adaptive threshold stepping is clamped to [Min, Init] ---

func TestClampAlpha(t *testing.T) {
	cfg := Config{DelinquencyInit: 0.90, DelinquencyStep: 0.10, DelinquencyMin: 0.10}
	cases := []struct {
		name  string
		alpha float64
		want  float64
	}{
		{"in range", 0.50, 0.50},
		{"at floor", 0.10, 0.10},
		{"one step below floor", 0.10 - 0.10, 0.10},
		{"far below floor", -3.7, 0.10},
		{"at ceiling", 0.90, 0.90},
		{"above ceiling", 1.10, 0.90},
		{"far above ceiling", 42, 0.90},
	}
	for _, tc := range cases {
		if got := cfg.clampAlpha(tc.alpha); got != tc.want {
			t.Errorf("%s: clampAlpha(%v) = %v, want %v", tc.name, tc.alpha, got, tc.want)
		}
	}
	// A degenerate config with Min above Init clamps to Min.
	bad := Config{DelinquencyInit: 0.05, DelinquencyMin: 0.10}
	if got := bad.clampAlpha(0.5); got != 0.10 {
		t.Errorf("Min>Init: clampAlpha(0.5) = %v, want 0.10", got)
	}
}

func TestAdaptiveAlphaNeverLeavesWindow(t *testing.T) {
	// Many invocations on a hot trace: repeated stepping must never push
	// alpha outside [Min, Init] — including with a negative step, which
	// walks alpha upward.
	for _, step := range []float64{0.10, -0.10} {
		p := strideWorkload(t, 500_000)
		cfg := testConfig()
		cfg.Adaptive = true
		cfg.DelinquencyStep = step
		s, _ := runUMI(t, p, cfg)
		for _, ts := range s.traces {
			if ts.alpha < cfg.DelinquencyMin-1e-12 || ts.alpha > cfg.DelinquencyInit+1e-12 {
				t.Errorf("step %v: trace alpha %v outside [%v, %v]",
					step, ts.alpha, cfg.DelinquencyMin, cfg.DelinquencyInit)
			}
		}
	}
}

// --- profile double-buffering primitives ---

func TestProfileRecordedCount(t *testing.T) {
	p := NewAddressProfile([]uint64{0x10, 0x20}, []bool{true, true}, 4)
	if p.Recorded() != 0 {
		t.Fatalf("fresh profile Recorded() = %d", p.Recorded())
	}
	r0, _ := p.OpenRow()
	p.Record(r0, 0, 0x1000)
	p.Record(r0, 1, 0x2000)
	r1, _ := p.OpenRow()
	p.Record(r1, 0, 0x3000)
	p.Record(r1, 0, 0x4000) // overwrite: still one cell
	if p.Recorded() != 3 {
		t.Errorf("Recorded() = %d, want 3", p.Recorded())
	}
	p.Reset()
	if p.Recorded() != 0 {
		t.Errorf("Recorded() = %d after Reset, want 0", p.Recorded())
	}
}

func TestProfileReinit(t *testing.T) {
	p := NewAddressProfile([]uint64{0x10, 0x20, 0x30}, []bool{true, true, false}, 8)
	r0, _ := p.OpenRow()
	p.Record(r0, 0, 0x1000)
	p.Reinit([]uint64{0x40}, []bool{true}, 4)
	if len(p.Ops) != 1 || p.Ops[0] != 0x40 || p.rowCap != 4 {
		t.Fatalf("Reinit geometry wrong: %v", p)
	}
	if p.Rows() != 0 || p.Recorded() != 0 {
		t.Fatalf("Reinit kept rows: %v (recorded %d)", p, p.Recorded())
	}
	for r := 0; r < 4; r++ {
		if a, ok := p.At(r, 0); ok {
			t.Fatalf("stale cell %#x at row %d after Reinit", a, r)
		}
		p.OpenRow()
	}
	// Growing past the recycled capacity must also work.
	p.Reinit([]uint64{0x50, 0x60, 0x70, 0x80}, []bool{true, true, true, true}, 16)
	if got := len(p.cells); got != 64 {
		t.Fatalf("Reinit grew cells to %d, want 64", got)
	}
}

// --- pipeline determinism and lifecycle ---

// systemKey serializes a System's full report deterministically.
func systemKey(s *System, rt interface{ TotalCycles() uint64 }) string {
	r := s.Report()
	type opKey struct{ PC, A, M uint64 }
	var ops []opKey
	for pc, st := range r.OpStats {
		ops = append(ops, opKey{pc, st.Accesses, st.Misses})
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].PC < ops[j].PC })
	var dels []uint64
	for pc := range r.Delinquent {
		dels = append(dels, pc)
	}
	sort.Slice(dels, func(i, j int) bool { return dels[i] < dels[j] })
	var strides []string
	for pc, si := range r.Strides {
		strides = append(strides, fmt.Sprintf("%x:%d:%.4f", pc, si.Stride, si.Confidence))
	}
	sort.Strings(strides)
	return fmt.Sprintf("del=%v miss=%v refs=%d flush=%d inv=%d prof=%d instr=%d cyc=%d ops=%v strides=%v",
		dels, r.SimMissRatio, r.SimulatedRefs, r.Flushes, r.AnalyzerInvocations,
		r.ProfilesCollected, r.InstrumentEvents, rt.TotalCycles(), ops, strides)
}

func workerKey(t *testing.T, prog *program.Program, cfg Config, workers int) string {
	t.Helper()
	cfg.AnalyzerWorkers = workers
	s, rt := runUMI(t, prog, cfg)
	return systemKey(s, rt)
}

// TestPipelineDeterminism is the pool's core contract on a multi-trace
// workload: every worker count produces the report the inline analyzer
// produces, down to the modelled cycle totals.
func TestPipelineDeterminism(t *testing.T) {
	progs := map[string]*program.Program{
		"manyloops": manyLoopsWorkload(t, 8, 30_000),
		"stride":    strideWorkload(t, 400_000),
	}
	for name, prog := range progs {
		cfg := testConfig()
		want := workerKey(t, prog, cfg, 0) // pre-pipeline serial path
		for _, workers := range []int{1, 2, 4, 8} {
			if got := workerKey(t, prog, cfg, workers); got != want {
				t.Errorf("%s: workers=%d differs from serial:\n  got  %s\n  want %s",
					name, workers, got, want)
			}
		}
	}
}

// TestPipelineSyncFallback: OnAnalyzed needs analyzer state at the
// deinstrument boundary, so AnalyzerWorkers must silently degrade to the
// inline path — same results, hook still invoked.
func TestPipelineSyncFallback(t *testing.T) {
	prog := strideWorkload(t, 400_000)
	cfg := testConfig()
	cfg.AnalyzerWorkers = 4

	m := vm.New(prog, cache.NewP4(false))
	rt := rio.NewRuntime(m)
	s := Attach(rt, cfg)
	hookRuns := 0
	s.OnAnalyzed = func(clean *rio.Fragment, an *Analyzer) *rio.Fragment {
		hookRuns++
		if an.Invocations == 0 {
			t.Error("OnAnalyzed saw an analyzer that has not run")
		}
		return nil
	}
	if err := rt.Run(50_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s.Finish()
	if hookRuns == 0 {
		t.Fatal("OnAnalyzed never ran")
	}
	if s.pool != nil {
		t.Error("pipeline started despite a synchronous OnAnalyzed hook")
	}
}

// TestPipelineRecyclesBuffers: with the pipeline on, analyzed profile
// buffers flow back through the recycle queue instead of being
// re-allocated every instrumentation.
func TestPipelineRecyclesBuffers(t *testing.T) {
	prog := strideWorkload(t, 600_000)
	cfg := testConfig()
	cfg.AnalyzerWorkers = 2
	s, _ := runUMI(t, prog, cfg)
	rep := s.Report()
	if rep.ProfilesCollected < 2 {
		t.Skipf("only %d profiles collected; nothing to recycle", rep.ProfilesCollected)
	}
	if s.pool != nil {
		t.Error("Finish did not stop the pipeline")
	}
	if !s.poolClosed {
		t.Error("poolClosed not latched after Finish")
	}
}
