package umi

import (
	"fmt"
	"slices"

	"umi/internal/rio"
)

// noAddr marks an address-profile cell with no recorded reference (the
// trace exited before the operation executed in that iteration).
const noAddr = ^uint64(0)

// AddressProfile is the paper's two-dimensional profile for one code
// trace: rows are trace executions, columns are profiled operations in
// trace order, cells are effective addresses. Reading a column gives the
// address sequence of a single instruction across executions; reading row
// by row gives the reference stream the mini-simulator consumes.
type AddressProfile struct {
	// Ops holds the application PCs of the profiled operations, in trace
	// order. IsLoadOp marks which are loads.
	Ops      []uint64
	IsLoadOp []bool

	cells    []uint64 // rowCount x len(Ops), flat
	rowCap   int
	rowUsed  int
	recorded int // populated cells, maintained by Record
}

// NewAddressProfile allocates a profile for the given operations.
func NewAddressProfile(ops []uint64, isLoad []bool, rows int) *AddressProfile {
	p := &AddressProfile{Ops: ops, IsLoadOp: isLoad, rowCap: rows}
	p.cells = make([]uint64, rows*len(ops))
	for i := range p.cells {
		p.cells[i] = noAddr
	}
	return p
}

// Rows reports the number of recorded rows.
func (p *AddressProfile) Rows() int { return p.rowUsed }

// Full reports whether another row can be opened.
func (p *AddressProfile) Full() bool { return p.rowUsed >= p.rowCap }

// OpenRow starts recording a new trace execution and returns its row
// index, or false when the profile is full.
func (p *AddressProfile) OpenRow() (int, bool) {
	if p.Full() {
		return 0, false
	}
	p.rowUsed++
	return p.rowUsed - 1, true
}

// Record stores the address referenced by operation col during row.
func (p *AddressProfile) Record(row, col int, addr uint64) {
	i := row*len(p.Ops) + col
	if p.cells[i] == noAddr {
		p.recorded++
	}
	p.cells[i] = addr
}

// Recorded reports the number of populated cells: the reference count the
// mini-simulation will replay. The asynchronous pipeline charges the
// modelled analysis cost from this at hand-off time, before the profile is
// actually simulated.
func (p *AddressProfile) Recorded() int { return p.recorded }

// ReuseRow clears one already-open row so a new execution can record over
// it — the reservoir-sampling overwrite. The row stays counted in Rows();
// only its cells (and their contribution to Recorded) are discarded.
func (p *AddressProfile) ReuseRow(row int) {
	base := row * len(p.Ops)
	for i := base; i < base+len(p.Ops); i++ {
		if p.cells[i] != noAddr {
			p.recorded--
			p.cells[i] = noAddr
		}
	}
}

// At returns the recorded address for (row, col) and whether one exists.
func (p *AddressProfile) At(row, col int) (uint64, bool) {
	a := p.cells[row*len(p.Ops)+col]
	return a, a != noAddr
}

// Reset discards all recorded rows.
func (p *AddressProfile) Reset() {
	for i := 0; i < p.rowUsed*len(p.Ops); i++ {
		p.cells[i] = noAddr
	}
	p.rowUsed = 0
	p.recorded = 0
}

// Reinit repurposes the profile's backing storage for a different set of
// operations, growing it only when the new geometry needs more cells. The
// asynchronous pipeline recycles analyzed profiles through this instead of
// allocating a fresh buffer per instrumentation — the second half of the
// double-buffering: one buffer is being analyzed while the trace records
// into another.
func (p *AddressProfile) Reinit(ops []uint64, isLoad []bool, rows int) {
	p.Ops, p.IsLoadOp, p.rowCap = ops, isLoad, rows
	need := rows * len(ops)
	if cap(p.cells) < need {
		p.cells = make([]uint64, need)
	}
	p.cells = p.cells[:need]
	for i := range p.cells {
		p.cells[i] = noAddr
	}
	p.rowUsed = 0
	p.recorded = 0
}

// Column returns the recorded address sequence of one operation across
// executions, skipping unrecorded cells.
func (p *AddressProfile) Column(col int) []uint64 {
	return p.columnInto(make([]uint64, 0, p.rowUsed), col)
}

// columnInto appends the column's recorded addresses to dst and returns it.
// The profile-preparation hot path materializes every load column per
// analysis; appending into a recycled buffer keeps that allocation-free in
// steady state.
func (p *AddressProfile) columnInto(dst []uint64, col int) []uint64 {
	stride := len(p.Ops)
	for i := col; i < p.rowUsed*stride; i += stride {
		if a := p.cells[i]; a != noAddr {
			dst = append(dst, a)
		}
	}
	return dst
}

func (p *AddressProfile) String() string {
	return fmt.Sprintf("AddressProfile{%d ops, %d/%d rows}", len(p.Ops), p.rowUsed, p.rowCap)
}

// selectOps applies the instrumentor's operation filtering (§4.1) to a
// trace: loads and stores survive unless they are stack-relative or
// static, mirroring the esp/ebp heuristic. With filtering disabled every
// load/store is selected. Duplicate PCs (a trace can inline the same block
// twice) are profiled once. maxOps caps the selection (§4.2: 256).
func selectOps(f *rio.Fragment, filter bool, maxOps int) (pcs []uint64, isLoad []bool, candidates int) {
	seen := make(map[uint64]bool)
	for i := range f.Instrs {
		in := &f.Instrs[i]
		if !in.Op.IsLoad() && !in.Op.IsStore() {
			continue
		}
		pc := f.PCs[i]
		if seen[pc] {
			continue
		}
		seen[pc] = true
		candidates++
		if filter && (in.Mem.IsStackRelative() || in.Mem.IsStatic()) {
			continue
		}
		if len(pcs) >= maxOps {
			continue
		}
		pcs = append(pcs, pc)
		isLoad = append(isLoad, in.Op.IsLoad())
	}
	return pcs, isLoad, candidates
}

// DominantStride returns the most frequent successive-address delta in a
// column and its occurrence fraction. Used by the prefetching optimization
// (§8: "calculate the stride distance between successive memory references
// for individual loads").
func DominantStride(addrs []uint64) (stride int64, frac float64) {
	stride, frac, _ = dominantStride(addrs, nil)
	return stride, frac
}

// strideTableMax bounds the distinct-delta table dominantStride counts
// into before falling back to the sort-based path: real columns repeat a
// handful of strides, so the table almost always suffices, while the cap
// keeps the per-delta linear probe O(1) in practice.
const strideTableMax = 16

// dominantStride is DominantStride with a caller-owned scratch buffer for
// the delta sequence, so the preparation hot path runs allocation-free once
// warm. It counts distinct deltas in a small table (one pass, no sort);
// columns with more than strideTableMax distinct deltas take the
// sort-and-count-runs path instead. Both paths pick the winner with the
// same total order — count, then smaller magnitude, then the positive
// stride — so the choice of path never changes the result (the map-based
// predecessor left the equal-count, equal-magnitude case to hash iteration
// order).
func dominantStride(addrs []uint64, scratch []int64) (stride int64, frac float64, _ []int64) {
	if len(addrs) < 3 {
		return 0, 0, scratch
	}
	n := len(addrs) - 1
	var vals [strideTableMax]int64
	var counts [strideTableMax]int
	nd := 0
	for i := 1; i < len(addrs); i++ {
		d := int64(addrs[i] - addrs[i-1])
		k := 0
		for ; k < nd; k++ {
			if vals[k] == d {
				counts[k]++
				break
			}
		}
		if k == nd {
			if nd == strideTableMax {
				return dominantStrideSorted(addrs, scratch)
			}
			vals[nd], counts[nd] = d, 1
			nd++
		}
	}
	best, bestN := int64(0), 0
	for k := 0; k < nd; k++ {
		if d, c := vals[k], counts[k]; c > bestN ||
			(c == bestN && (abs64(d) < abs64(best) || (abs64(d) == abs64(best) && d > best))) {
			best, bestN = d, c
		}
	}
	return best, float64(bestN) / float64(n), scratch
}

// dominantStrideSorted is the general-case fallback: sort the deltas and
// count runs. Same winner as the table path, by the same total order.
func dominantStrideSorted(addrs []uint64, scratch []int64) (stride int64, frac float64, _ []int64) {
	deltas := scratch[:0]
	for i := 1; i < len(addrs); i++ {
		deltas = append(deltas, int64(addrs[i]-addrs[i-1]))
	}
	slices.Sort(deltas)
	best, bestN := int64(0), 0
	for i := 0; i < len(deltas); {
		j := i + 1
		for j < len(deltas) && deltas[j] == deltas[i] {
			j++
		}
		d, n := deltas[i], j-i
		if n > bestN ||
			(n == bestN && (abs64(d) < abs64(best) || (abs64(d) == abs64(best) && d > best))) {
			best, bestN = d, n
		}
		i = j
	}
	return best, float64(bestN) / float64(len(deltas)), deltas
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
