package umi

import (
	"fmt"
	"sort"
	"time"

	"umi/internal/cache"
	"umi/internal/wire"
)

// umi-profile/v1 bridging: conversions between the in-process types and
// the wire records (internal/wire), the System-side emit hook plumbing,
// and the header↔Config mapping that makes a stream self-describing. The
// contract throughout is that emit is observational — an emitting run
// reports exactly what a silent run reports — and that a stream carries
// everything the analyzer consumed, so a replay reproduces the analyzer's
// end state byte for byte.

// WireHeader captures the analyzer-relevant configuration (plus the
// informational workload/machine names) into a stream header. A replay
// built from this header analyzes exactly as the capture process did.
func WireHeader(cfg *Config, workload, machine string) wire.Header {
	return wire.Header{
		Workload:        workload,
		Machine:         machine,
		CacheName:       cfg.MiniSimCache.Name,
		CacheSize:       uint64(cfg.MiniSimCache.Size),
		CacheAssoc:      uint64(cfg.MiniSimCache.Assoc),
		CacheLine:       uint64(cfg.MiniSimCache.LineSize),
		CachePolicy:     uint8(cfg.MiniSimCache.Policy),
		WarmupRows:      uint64(cfg.WarmupRows),
		FlushCycleGap:   cfg.FlushCycleGap,
		AnalyzerPerRef:  cfg.AnalyzerPerRef,
		AnalyzerFixed:   cfg.AnalyzerFixed,
		HistoryWindows:  int64(cfg.HistoryWindows),
		PhaseMissDelta:  cfg.PhaseMissDelta,
		PhaseChurnDelta: cfg.PhaseChurnDelta,
	}
}

// ConfigFromWireHeader validates a received header and rebuilds the
// analyzer-relevant Config a replay needs. Fields that only steer guest
// execution (sampling, thresholds, costs charged to the guest) stay zero:
// a replay has no guest. The caller layers on AnalyzerWorkers/SharedPrep.
func ConfigFromWireHeader(h wire.Header) (Config, error) {
	const maxCacheBytes = 1 << 30
	if h.CacheSize == 0 || h.CacheSize > maxCacheBytes {
		return Config{}, fmt.Errorf("wire header: cache size %d out of range (1..%d)", h.CacheSize, maxCacheBytes)
	}
	if h.CacheAssoc > 64 || h.CacheLine > 1<<16 {
		return Config{}, fmt.Errorf("wire header: cache geometry assoc=%d line=%d out of range", h.CacheAssoc, h.CacheLine)
	}
	cc := cache.Config{
		Name:     h.CacheName,
		Size:     int(h.CacheSize),
		Assoc:    int(h.CacheAssoc),
		LineSize: int(h.CacheLine),
		Policy:   cache.Policy(h.CachePolicy),
	}
	if err := cc.Validate(); err != nil {
		return Config{}, fmt.Errorf("wire header: %w", err)
	}
	if h.WarmupRows > wire.MaxProfileRows {
		return Config{}, fmt.Errorf("wire header: warmup rows %d out of range", h.WarmupRows)
	}
	if h.HistoryWindows > wire.MaxHistoryWindows {
		return Config{}, fmt.Errorf("wire header: history windows %d out of range", h.HistoryWindows)
	}
	hw := int(h.HistoryWindows)
	if h.HistoryWindows < 0 {
		hw = -1 // any negative value disables capture; normalize
	}
	return Config{
		MiniSimCache:    cc,
		WarmupRows:      int(h.WarmupRows),
		FlushCycleGap:   h.FlushCycleGap,
		AnalyzerPerRef:  h.AnalyzerPerRef,
		AnalyzerFixed:   h.AnalyzerFixed,
		HistoryWindows:  hw,
		PhaseMissDelta:  h.PhaseMissDelta,
		PhaseChurnDelta: h.PhaseChurnDelta,
	}, nil
}

// ReplayConfigKey renders the analyzer-relevant header fields as a
// comparable string: two shards may merge into one replay session only
// when their keys match (the informational workload/machine names are
// free to differ across a fleet).
func ReplayConfigKey(h wire.Header) string {
	return fmt.Sprintf("%s/%d/%d/%d/p%d w%d g%d r%d f%d h%d md%x cd%x",
		h.CacheName, h.CacheSize, h.CacheAssoc, h.CacheLine, h.CachePolicy,
		h.WarmupRows, h.FlushCycleGap, h.AnalyzerPerRef, h.AnalyzerFixed,
		h.HistoryWindows, h.PhaseMissDelta, h.PhaseChurnDelta)
}

// wireProfile views a recorded profile as a wire record. The encoder
// copies everything out during the call, so aliasing the live profile's
// backing arrays is safe — and keeps emit allocation-free.
func wireProfile(p *AddressProfile, alpha float64) wire.Profile {
	return wire.Profile{
		Alpha:  alpha,
		PCs:    p.Ops,
		IsLoad: p.IsLoadOp,
		Rows:   p.rowUsed,
		Cells:  p.cells[:p.rowUsed*len(p.Ops)],
	}
}

// profileFromWire adopts a decoded profile record, taking ownership of
// its slices (the decoder allocates fresh ones per record): zero-copy
// from frame to analyzer input.
func profileFromWire(wp *wire.Profile) *AddressProfile {
	return &AddressProfile{
		Ops:      wp.PCs,
		IsLoadOp: wp.IsLoad,
		cells:    wp.Cells,
		rowCap:   wp.Rows,
		rowUsed:  wp.Rows,
		recorded: wp.Recorded,
	}
}

// windowToWire and windowFromWire map WindowSummary onto its frame, field
// for field.
func windowToWire(w WindowSummary) wire.Window {
	return wire.Window{
		Invocation:      w.Invocation,
		Cycles:          w.Cycles,
		Refs:            w.Refs,
		Accesses:        w.Accesses,
		Misses:          w.Misses,
		WindowMissRatio: w.WindowMissRatio,
		CumMissRatio:    w.CumMissRatio,
		Delinquent:      w.Delinquent,
		NewDelinquent:   w.NewDelinquent,
		DelinquentHash:  w.DelinquentHash,
		Jaccard:         w.Jaccard,
		PhaseChange:     w.PhaseChange,
		StridedLoads:    w.StridedLoads,
		TopStride:       w.TopStride,
		WSLines:         w.WSLines,
	}
}

func windowFromWire(w *wire.Window) WindowSummary {
	return WindowSummary{
		Invocation:      w.Invocation,
		Cycles:          w.Cycles,
		Refs:            w.Refs,
		Accesses:        w.Accesses,
		Misses:          w.Misses,
		WindowMissRatio: w.WindowMissRatio,
		CumMissRatio:    w.CumMissRatio,
		Delinquent:      w.Delinquent,
		NewDelinquent:   w.NewDelinquent,
		DelinquentHash:  w.DelinquentHash,
		Jaccard:         w.Jaccard,
		PhaseChange:     w.PhaseChange,
		StridedLoads:    w.StridedLoads,
		TopStride:       w.TopStride,
		WSLines:         w.WSLines,
	}
}

// EnableWireEmit attaches a stream encoder: from now on every analyzer
// invocation is recorded (hand-off cycle stamp plus each live profile,
// in the fixed merge order) before it is analyzed. Emission runs on the
// guest thread at the same point both analysis paths branch from, so the
// recorded stream — like the report — is identical at any worker count,
// and emit-on runs report exactly what emit-off runs report. Call before
// the runtime starts; pair with EmitWireTail after Finish. Encoder errors
// are sticky and surface from the encoder's Flush.
func (s *System) EnableWireEmit(enc *wire.Encoder) { s.wenc = enc }

// emitInvocation records one invocation's inputs, if emit is enabled.
// Emit-stage wall attribution covers the encoder and, through it, any
// synchronous LiveShipper write — everything the guest thread pays for
// telemetry; the stage's modelled cost is 0 (emission is observational).
func (s *System) emitInvocation(live []*traceState) {
	if s.wenc == nil {
		return
	}
	start := time.Now()
	s.wenc.Invocation(s.rt.M.Cycles, len(live))
	for _, ts := range live {
		s.wenc.Profile(wireProfile(ts.profile, ts.alpha))
	}
	ns := uint64(time.Since(start))
	s.met.EmitWallNs.Add(ns)
	s.met.EmitLatency.Observe(ns)
	s.met.EmitFrames.Inc()
}

// EmitWireTail writes the stream tail after Finish: the framed phase
// history and the trailer. The caller fills the machine-level trailer
// fields (cycles, instructions, hardware-model L2 counts); the System
// adds its own run accounting — the instrument-event count and the
// candidate/trace PC sets whose cardinalities the report cites.
func (s *System) EmitWireTail(enc *wire.Encoder, t wire.Trailer) {
	hv := s.History()
	start := time.Now() // after the pipeline drain: time the writes, not the wait
	enc.History(wire.HistoryMeta{
		Total:        hv.Total,
		PhaseChanges: hv.PhaseChanges,
		Cap:          hv.Cap,
		Windows:      len(hv.Windows),
	})
	for _, w := range hv.Windows {
		enc.Window(windowToWire(w))
	}
	t.InstrumentEvents = uint64(s.instrumentEvents)
	t.CandidatePCs = sortedPCSet(s.candidatePCs)
	t.TracePCs = s.TracePCs()
	enc.Trailer(t)
	ns := uint64(time.Since(start))
	s.met.EmitWallNs.Add(ns)
	s.met.EmitLatency.Observe(ns)
	s.met.EmitFrames.Inc()
}

// CandidatePCs returns the unique load/store PCs seen in traces, sorted
// ascending (Report.CandidateOps is its cardinality).
func (s *System) CandidatePCs() []uint64 { return sortedPCSet(s.candidatePCs) }

// TracePCs returns the start PCs of every trace seen, sorted ascending
// (Report.TracesSeen is its cardinality).
func (s *System) TracePCs() []uint64 {
	pcs := make([]uint64, 0, len(s.traces))
	for pc := range s.traces {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	return pcs
}

func sortedPCSet(set map[uint64]bool) []uint64 {
	pcs := make([]uint64, 0, len(set))
	for pc := range set {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	return pcs
}
