package umi

import (
	"fmt"
	"math/bits"
	"sort"

	"umi/internal/cache"
)

// ProfileConsumer is a pluggable profile analysis. The paper's §2 calls
// the profile analyzer "customizable": the delinquent-load cache
// mini-simulator of §5 is one instance, and consumers registered with
// System.AddConsumer run over the same recorded address profiles at every
// analyzer invocation — working-set characterization, what-if cache
// exploration, pattern classification, or anything an online optimizer
// needs.
type ProfileConsumer interface {
	// Consume processes one live address profile during an analyzer
	// invocation.
	Consume(p *AddressProfile)
}

// AddConsumer registers an additional profile analysis.
func (s *System) AddConsumer(c ProfileConsumer) {
	s.consumers = append(s.consumers, c)
}

// ---------------------------------------------------------------------
// Working-set and reuse-distance characterization (the paper's intro:
// "locality enhancing optimizations can significantly benefit from
// accurate measurements of the working sets size and characterization of
// their predominant reference patterns").
// ---------------------------------------------------------------------

// WorkingSet measures, from the profiled bursts, the distinct cache lines
// touched and an LRU reuse-distance histogram with power-of-two buckets.
type WorkingSet struct {
	LineSize int

	// stack is the LRU stack of line addresses, most recent first.
	stack []uint64
	// seen tracks all distinct lines ever profiled.
	seen map[uint64]bool
	// Hist[i] counts references with reuse distance in [2^i, 2^(i+1));
	// Cold counts first touches.
	Hist [32]uint64
	Cold uint64
	Refs uint64
}

// NewWorkingSet returns a working-set consumer for the given line size.
func NewWorkingSet(lineSize int) *WorkingSet {
	return &WorkingSet{LineSize: lineSize, seen: make(map[uint64]bool)}
}

// Consume implements ProfileConsumer.
func (w *WorkingSet) Consume(p *AddressProfile) {
	for r := 0; r < p.Rows(); r++ {
		for c := 0; c < len(p.Ops); c++ {
			addr, ok := p.At(r, c)
			if !ok {
				continue
			}
			w.observe(addr &^ uint64(w.LineSize-1))
		}
	}
}

func (w *WorkingSet) observe(line uint64) {
	w.Refs++
	w.seen[line] = true
	// Stack distance: position in the LRU stack.
	for i, l := range w.stack {
		if l == line {
			copy(w.stack[1:i+1], w.stack[:i])
			w.stack[0] = line
			if i == 0 {
				w.Hist[0]++
			} else {
				w.Hist[bits.Len(uint(i))]++
			}
			return
		}
	}
	w.Cold++
	// Bound the stack: distances beyond 64K lines are "effectively cold".
	if len(w.stack) >= 1<<16 {
		w.stack = w.stack[:1<<16-1]
	}
	w.stack = append([]uint64{line}, w.stack...)
}

// DistinctLines returns the working-set size, in lines, over everything
// profiled.
func (w *WorkingSet) DistinctLines() int { return len(w.seen) }

// DistinctBytes returns the working-set size in bytes.
func (w *WorkingSet) DistinctBytes() int { return len(w.seen) * w.LineSize }

// ReuseMedianBucket returns the power-of-two bucket holding the median
// non-cold reuse distance, and false when nothing was reused.
func (w *WorkingSet) ReuseMedianBucket() (int, bool) {
	var total uint64
	for _, n := range w.Hist {
		total += n
	}
	if total == 0 {
		return 0, false
	}
	var acc uint64
	for i, n := range w.Hist {
		acc += n
		if acc*2 >= total {
			return i, true
		}
	}
	return len(w.Hist) - 1, true
}

func (w *WorkingSet) String() string {
	med, ok := w.ReuseMedianBucket()
	medStr := "n/a"
	if ok {
		medStr = fmt.Sprintf("~2^%d lines", med)
	}
	return fmt.Sprintf("WorkingSet{%d refs, %d distinct lines (%d KiB), cold %d, median reuse %s}",
		w.Refs, w.DistinctLines(), w.DistinctBytes()/1024, w.Cold, medStr)
}

// ---------------------------------------------------------------------
// What-if cache exploration (§1.4: UMI "can be used to quickly evaluate
// speculative optimizations that consider multiple what-if scenarios";
// §5: results "far more dependent on the length of the address profiles
// than on the actual configuration of the simulated cache").
// ---------------------------------------------------------------------

// WhatIf mini-simulates every profile against several cache geometries in
// one pass, so an online optimizer can ask "would a bigger/smaller/more
// associative cache change this verdict?" without extra profiling runs.
type WhatIf struct {
	warmupRows int
	configs    []cache.Config
	caches     []*cache.Cache
	accesses   []uint64
	misses     []uint64
}

// NewWhatIf builds the explorer. warmupRows mirrors the main analyzer's
// warm-up skip.
func NewWhatIf(warmupRows int, configs ...cache.Config) *WhatIf {
	w := &WhatIf{
		warmupRows: warmupRows,
		configs:    configs,
		caches:     make([]*cache.Cache, len(configs)),
		accesses:   make([]uint64, len(configs)),
		misses:     make([]uint64, len(configs)),
	}
	for i, cfg := range configs {
		w.caches[i] = cache.New(cfg)
	}
	return w
}

// Consume implements ProfileConsumer.
func (w *WhatIf) Consume(p *AddressProfile) {
	for r := 0; r < p.Rows(); r++ {
		warm := r >= w.warmupRows
		for c := 0; c < len(p.Ops); c++ {
			addr, ok := p.At(r, c)
			if !ok {
				continue
			}
			for i, sim := range w.caches {
				hit := sim.Access(addr).Hit
				if !warm {
					continue
				}
				w.accesses[i]++
				if !hit {
					w.misses[i]++
				}
			}
		}
	}
}

// Result is one geometry's outcome.
type WhatIfResult struct {
	Config    cache.Config
	Accesses  uint64
	Misses    uint64
	MissRatio float64
}

// Results returns per-geometry outcomes, in construction order.
func (w *WhatIf) Results() []WhatIfResult {
	out := make([]WhatIfResult, len(w.configs))
	for i := range w.configs {
		r := WhatIfResult{Config: w.configs[i], Accesses: w.accesses[i], Misses: w.misses[i]}
		if r.Accesses > 0 {
			r.MissRatio = float64(r.Misses) / float64(r.Accesses)
		}
		out[i] = r
	}
	return out
}

// ---------------------------------------------------------------------
// Reference-pattern classification.
// ---------------------------------------------------------------------

// Pattern classifies one operation's reference behaviour.
type Pattern int

// Reference patterns.
const (
	PatternUnknown   Pattern = iota
	PatternConstant          // same address every execution
	PatternStrided           // one dominant stride
	PatternIrregular         // no dominant stride (pointer chasing, hashing)
)

var patternNames = [...]string{"unknown", "constant", "strided", "irregular"}

func (p Pattern) String() string {
	if int(p) < len(patternNames) {
		return patternNames[p]
	}
	return "pattern(?)"
}

// ClassifyColumn labels one operation's recorded address sequence.
func ClassifyColumn(addrs []uint64) Pattern {
	if len(addrs) < 3 {
		return PatternUnknown
	}
	constant := true
	for _, a := range addrs[1:] {
		if a != addrs[0] {
			constant = false
			break
		}
	}
	if constant {
		return PatternConstant
	}
	stride, frac := DominantStride(addrs)
	if stride != 0 && frac >= 0.6 {
		return PatternStrided
	}
	return PatternIrregular
}

// PatternCensus tallies per-operation patterns across profiles.
type PatternCensus struct {
	perOp map[uint64]Pattern
}

// NewPatternCensus returns an empty census.
func NewPatternCensus() *PatternCensus {
	return &PatternCensus{perOp: make(map[uint64]Pattern)}
}

// Consume implements ProfileConsumer.
func (pc *PatternCensus) Consume(p *AddressProfile) {
	for c := 0; c < len(p.Ops); c++ {
		col := p.Column(c)
		if pat := ClassifyColumn(col); pat != PatternUnknown {
			pc.perOp[p.Ops[c]] = pat
		}
	}
}

// Of returns the recorded pattern for an operation.
func (pc *PatternCensus) Of(op uint64) Pattern { return pc.perOp[op] }

// Counts returns the number of operations per pattern.
func (pc *PatternCensus) Counts() map[Pattern]int {
	out := make(map[Pattern]int)
	for _, p := range pc.perOp {
		out[p]++
	}
	return out
}

// Summary renders the census deterministically.
func (pc *PatternCensus) Summary() string {
	counts := pc.Counts()
	pats := make([]Pattern, 0, len(counts))
	for p := range counts {
		pats = append(pats, p)
	}
	sort.Slice(pats, func(i, j int) bool { return pats[i] < pats[j] })
	s := "patterns:"
	for _, p := range pats {
		s += fmt.Sprintf(" %v=%d", p, counts[p])
	}
	return s
}
