package umi

import (
	"bytes"
	"testing"

	"umi/internal/cache"
	"umi/internal/program"
	"umi/internal/rio"
	"umi/internal/tracelog"
	"umi/internal/vm"
)

// runUMITraced is runUMI with the structured event log attached.
func runUMITraced(t *testing.T, p *program.Program, cfg Config, capacity int) (*System, *rio.Runtime, *tracelog.Log) {
	t.Helper()
	h := cache.NewP4(false)
	m := vm.New(p, h)
	rt := rio.NewRuntime(m)
	s := Attach(rt, cfg)
	l := s.EnableEventTrace(capacity)
	if err := rt.Run(50_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s.Finish()
	return s, rt, l
}

// TestEventTraceDoesNotPerturbReports is the acceptance gate for the
// observability layer: enabling the event log must leave every modelled
// number byte-identical, on the inline path and with the pipeline racing.
func TestEventTraceDoesNotPerturbReports(t *testing.T) {
	prog := manyLoopsWorkload(t, 8, 30_000)
	for _, workers := range []int{0, 4} {
		cfg := testConfig()
		cfg.AnalyzerWorkers = workers
		sOff, rtOff := runUMI(t, prog, cfg)
		sOn, rtOn, l := runUMITraced(t, prog, cfg, 0)
		if l.Total() == 0 {
			t.Fatalf("workers=%d: event log recorded nothing", workers)
		}
		if off, on := systemKey(sOff, rtOff), systemKey(sOn, rtOn); off != on {
			t.Errorf("workers=%d: event trace perturbed the report:\n  off %s\n  on  %s",
				workers, off, on)
		}
	}
}

// TestEventTraceDeterministic: on the inline path the full event content is
// a function of the modelled execution alone, so two runs must render the
// same text timeline and the same Chrome trace, byte for byte.
func TestEventTraceDeterministic(t *testing.T) {
	prog := strideWorkload(t, 400_000)
	cfg := testConfig()
	cfg.Adaptive = true
	_, _, la := runUMITraced(t, prog, cfg, 0)
	_, _, lb := runUMITraced(t, prog, cfg, 0)
	ta := tracelog.Timeline(la.Events(), la.Drops())
	tb := tracelog.Timeline(lb.Events(), lb.Drops())
	if ta != tb {
		t.Errorf("text timeline differs across identical runs:\n--- a ---\n%s--- b ---\n%s", ta, tb)
	}
	var ba, bb bytes.Buffer
	if err := tracelog.WriteChromeTrace(&ba, la.Events()); err != nil {
		t.Fatal(err)
	}
	if err := tracelog.WriteChromeTrace(&bb, lb.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Error("Chrome trace differs across identical runs")
	}
}

// TestEventTraceCoversLifecycle checks that a real run emits the full
// lifecycle: promotion, instrumentation, profile fill, analyzer begin/end
// spans, deinstrumentation, and (with Adaptive on) threshold steps.
func TestEventTraceCoversLifecycle(t *testing.T) {
	prog := strideWorkload(t, 400_000)
	cfg := testConfig()
	cfg.Adaptive = true
	_, _, l := runUMITraced(t, prog, cfg, 0)
	seen := map[tracelog.Type]int{}
	for _, e := range l.Events() {
		seen[e.Type]++
	}
	for _, ty := range []tracelog.Type{
		tracelog.EvTracePromoted, tracelog.EvTraceInstrumented,
		tracelog.EvProfileFill, tracelog.EvAnalyzerBegin,
		tracelog.EvAnalyzerEnd, tracelog.EvTraceDeinstrumented,
		tracelog.EvAdaptiveStep,
	} {
		if seen[ty] == 0 {
			t.Errorf("no %s events in a full run; seen: %v", ty, seen)
		}
	}
	if seen[tracelog.EvAnalyzerBegin] != seen[tracelog.EvAnalyzerEnd] {
		t.Errorf("unbalanced analyzer spans: %d begin, %d end",
			seen[tracelog.EvAnalyzerBegin], seen[tracelog.EvAnalyzerEnd])
	}
	// Every analyzer-end span must carry the simulated-reference count and
	// a monotone-growing delinquent set (the set only accumulates).
	var lastP uint64
	for _, e := range tracelog.Sorted(l.Events()) {
		if e.Type != tracelog.EvAnalyzerEnd {
			continue
		}
		if e.Arg1 == 0 {
			t.Errorf("analyzer.end at cycle %d reports zero refs", e.Cycles)
		}
		if e.Arg3 < lastP {
			t.Errorf("delinquent set shrank: %d -> %d at cycle %d", lastP, e.Arg3, e.Cycles)
		}
		lastP = e.Arg3
	}
}

// TestEventTraceAsyncOverflow runs the pipeline at workers=4 into a tiny
// ring: guest thread and sequencer race to emit, the ring wraps, and the
// result must still be well-formed (the -race backstop for the wiring).
// Pipeline hand-off events must appear, stamped with hand-off cycles.
func TestEventTraceAsyncOverflow(t *testing.T) {
	prog := manyLoopsWorkload(t, 8, 30_000)
	cfg := testConfig()
	cfg.AnalyzerWorkers = 4
	_, _, l := runUMITraced(t, prog, cfg, 32)
	if l.Cap() != 32 {
		t.Fatalf("Cap() = %d, want 32", l.Cap())
	}
	if l.Total() <= 32 {
		t.Skipf("run emitted only %d events; overflow not exercised", l.Total())
	}
	if l.Drops() != l.Total()-32 {
		t.Errorf("Drops() = %d, want Total-Cap = %d", l.Drops(), l.Total()-32)
	}
	evs := l.Events()
	if len(evs) != 32 {
		t.Fatalf("Events() after overflow returned %d, want 32", len(evs))
	}
	var buf bytes.Buffer
	if err := tracelog.WriteChromeTrace(&buf, evs); err != nil {
		t.Fatalf("Chrome export after overflow: %v", err)
	}
}

// TestEventTracePipelineEvents: the async path must record hand-offs (and,
// once buffers circulate, recycles) that the inline path never emits.
func TestEventTracePipelineEvents(t *testing.T) {
	prog := manyLoopsWorkload(t, 8, 30_000)
	cfg := testConfig()
	cfg.AnalyzerWorkers = 4
	_, _, l := runUMITraced(t, prog, cfg, 0)
	submits := 0
	for _, e := range l.Events() {
		if e.Type == tracelog.EvPipelineSubmit {
			submits++
			if e.Arg1 == 0 {
				t.Errorf("pipeline.submit at cycle %d carries zero jobs", e.Cycles)
			}
		}
	}
	if submits == 0 {
		t.Error("no pipeline.submit events on the async path")
	}
}
