package umi

import (
	"fmt"
	"math"
	"sort"
	"time"

	"umi/internal/metrics"
	"umi/internal/rio"
	"umi/internal/tracelog"
	"umi/internal/wire"
)

// traceState tracks one code trace through the UMI lifecycle.
type traceState struct {
	clean *rio.Fragment // uninstrumented code (the clone T_c)
	// instr is the currently installed instrumented fragment, nil when
	// the trace runs clean.
	instr   *rio.Fragment
	profile *AddressProfile
	curRow  int
	rowOpen bool

	samples      int
	freqThresh   int // per-trace frequency threshold (AdaptiveFrequency)
	alpha        float64
	lastAnalyzed uint64 // guest instrs at last analysis (cooldown base)
	everAnalyzed bool
	analyses     int
	// barren marks traces with no profilable operations after filtering.
	barren bool

	// Sampler state (sampler.go). entrySeen counts instrumented entries
	// since the trace was last (re)instrumented — the burst position and
	// the fill trigger; rowTarget is the entry budget captured at
	// instrument time (adaptation can change it between bursts, never
	// mid-burst); rowsSeen counts recorded executions offered to the
	// reservoir; burstOffset and rngState are the per-trace deterministic
	// schedule seeds.
	entrySeen   int
	rowTarget   int
	rowsSeen    int
	burstOffset uint64
	rngState    uint64
}

// System wires the three UMI components (region selector, instrumentor,
// profile analyzer) into a rio runtime.
type System struct {
	cfg Config
	rt  *rio.Runtime
	an  *Analyzer

	// OnAnalyzed, when set, runs after each trace's profile is analyzed,
	// at the natural optimization boundary the paper describes ("before
	// replacing T with T_c, one can perform optimizations on T_c based
	// on the mini-simulation results"). It receives the trace's clean
	// code and the analyzer; returning a non-nil fragment installs it as
	// the trace's code from then on. The software prefetcher hangs here.
	OnAnalyzed func(clean *rio.Fragment, an *Analyzer) *rio.Fragment

	// OnMetrics, when set, receives a metrics snapshot after each analyzer
	// invocation triggered on the guest thread — the periodic emitter
	// behind pkg/umi's WithMetricsSink. It runs on the guest thread and
	// must not call back into the System.
	OnMetrics func(metrics.Snapshot)

	traces     map[uint64]*traceState
	globalRows int
	consumers  []ProfileConsumer

	// pool is the asynchronous analysis pipeline (pool.go), started
	// lazily on the first analyzer invocation when AnalyzerWorkers ≥ 2
	// and no synchronous hook needs analysis results at deinstrument
	// time. poolClosed latches after Finish so late invocations fall
	// back to the inline path instead of touching a stopped pipeline.
	pool       *analyzerPool
	poolClosed bool

	// statistics
	profilesCollected int
	profiledPCs       map[uint64]bool
	candidatePCs      map[uint64]bool
	instrumentEvents  int

	// Sampler adaptation state (sampler.go): the current shrink level and
	// the consecutive phase-stable window count feeding it. Guest thread
	// only — adaptation forces the inline analysis path.
	adaptLevel  int
	adaptStable int

	// Wall-clock attribution anchors (overhead.go). wallStart is set once
	// at Attach; prologTick drives the 1-in-N sampled prolog wall
	// estimator.
	wallStart  time.Time
	prologTick uint64

	// met is the self-observability registry (metrics.go); always present,
	// always collecting — the snapshot surfaces decide whether anyone
	// looks. Collection never feeds back into modelled overhead or
	// reported results, so metrics-on and metrics-off reports are
	// byte-identical by construction.
	met *Metrics

	// tlog is the structured event timeline (internal/tracelog), nil until
	// EnableEventTrace. Like met it is purely observational: every emit is
	// keyed to the modelled cycle clock and never feeds back into modelled
	// state, so trace-on and trace-off reports are byte-identical.
	tlog *tracelog.Log

	// wenc, when non-nil, records every analyzer invocation's inputs as a
	// umi-profile/v1 stream (EnableWireEmit / wire.go). Emission happens on
	// the guest thread before either analysis path consumes the profiles,
	// with the same cycle stamp both paths use, so the recorded stream is
	// byte-identical at any worker count — and, like met/tlog, it never
	// feeds back into modelled state.
	wenc *wire.Encoder
}

// Attach installs UMI onto the runtime. It must be called before the
// runtime starts executing. The runtime's sampler is always enabled (it is
// UMI's clock); cfg.UseSampling chooses whether it also gates region
// selection.
func Attach(rt *rio.Runtime, cfg Config) *System {
	s := &System{
		cfg:          cfg,
		rt:           rt,
		traces:       make(map[uint64]*traceState),
		profiledPCs:  make(map[uint64]bool),
		candidatePCs: make(map[uint64]bool),
	}
	s.met = newMetrics()
	s.wallStart = time.Now()
	s.an = NewAnalyzer(&s.cfg)
	s.an.met = s.met
	if cfg.HistoryWindows >= 0 {
		s.an.hist = newHistory(cfg.HistoryWindows, cfg.PhaseMissDelta, cfg.PhaseChurnDelta)
	}
	rt.SamplePeriod = cfg.SamplePeriod
	rt.OnTrace = s.onTrace
	rt.OnSample = s.onSample
	return s
}

// EnableEventTrace attaches a structured event log of the given ring
// capacity (0 selects tracelog.DefaultCapacity) and wires it through the
// region selector, instrumentor, analyzer, pipeline, and the underlying
// rio runtime. Must be called before the runtime starts executing; the
// returned log may be snapshotted from any goroutine at any time.
func (s *System) EnableEventTrace(capacity int) *tracelog.Log {
	l := tracelog.NewLog(capacity)
	s.tlog = l
	s.an.tlog = l
	s.rt.EventLog = l
	return l
}

// EventLog returns the attached event log (nil unless EnableEventTrace
// was called).
func (s *System) EventLog() *tracelog.Log { return s.tlog }

// History snapshots the profile-history ring, synchronizing with the
// analysis pipeline first so every invocation handed off so far is
// reflected — the end-of-run (or checkpoint) view.
func (s *System) History() HistoryView {
	if s.pool != nil {
		s.pool.drain()
	}
	return s.an.hist.View()
}

// LiveHistory snapshots the ring without draining the pipeline: windows
// the sequencer has not reached yet are simply absent. This is the path
// the introspection HTTP server scrapes mid-run — it must never block on,
// or interleave with, pipeline progress.
func (s *System) LiveHistory() HistoryView { return s.an.hist.View() }

// Analyzer exposes the profile analyzer and its cumulative results. When
// the asynchronous pipeline is running, the call synchronizes with it
// first, so the returned state reflects every profile handed off so far.
func (s *System) Analyzer() *Analyzer {
	if s.pool != nil {
		s.pool.drain()
	}
	return s.an
}

// onTrace is the region selector's trace-creation hook.
func (s *System) onTrace(f *rio.Fragment) {
	ts := &traceState{clean: f, alpha: s.cfg.clampAlpha(s.cfg.DelinquencyInit),
		freqThresh: s.cfg.FrequencyThreshold}
	s.samplerInit(ts)
	s.traces[f.Start] = ts
	s.met.TracesSeen.Inc()
	// Record candidate operations for Table 3 accounting even if the
	// trace is never instrumented.
	_, _, _ = s.noteCandidates(f)
	// Filter accounting (§4.1): what the instrumentor would keep vs. drop
	// for this trace, counted once at trace creation so the rate is
	// per-operation, not weighted by reinstrumentation count.
	kept, _, cand := selectOps(f, s.cfg.FilterOps, s.cfg.AddressProfileOps)
	s.met.CandidatesKept.Add(uint64(len(kept)))
	s.met.CandidatesFiltered.Add(uint64(cand - len(kept)))
	if !s.cfg.UseSampling {
		s.instrument(ts)
	}
}

func (s *System) noteCandidates(f *rio.Fragment) (loads, stores, total int) {
	for i := range f.Instrs {
		op := f.Instrs[i].Op
		if op.IsLoad() || op.IsStore() {
			s.candidatePCs[f.PCs[i]] = true
			total++
		}
	}
	return 0, 0, total
}

// onSample is the region selector's sampling hook: it reinforces hot
// traces (UseSampling) and re-arms traces whose cooldown has passed.
func (s *System) onSample(f *rio.Fragment) {
	if f == nil {
		return
	}
	ts, ok := s.traces[f.Start]
	if !ok || ts.barren || ts.instr != nil {
		return
	}
	if ts.everAnalyzed && s.rt.M.Instrs-ts.lastAnalyzed < s.effGap() {
		return
	}
	if s.cfg.UseSampling {
		threshold := s.cfg.FrequencyThreshold
		if s.cfg.AdaptiveFrequency {
			threshold = ts.freqThresh
		}
		ts.samples++
		if ts.samples < threshold {
			return
		}
		ts.samples = 0
	}
	s.instrument(ts)
}

// instrument builds and installs the instrumented version of a trace: the
// paper's clone-and-patch step.
func (s *System) instrument(ts *traceState) {
	wallStart := time.Now()
	ops, isLoad, _ := selectOps(ts.clean, s.cfg.FilterOps, s.cfg.AddressProfileOps)
	if len(ops) == 0 {
		ts.barren = true
		s.met.TracesBarren.Inc()
		return
	}
	// The burst's entry budget is the (possibly adaptation-shrunk) row
	// target; the profile's physical capacity is that, further capped by
	// the reservoir. Both are latched here so mid-burst adaptation never
	// changes a running trace's geometry.
	ts.rowTarget = s.effRows()
	capRows := ts.rowTarget
	if r := s.cfg.ReservoirRows; r > 0 && r < capRows {
		capRows = r
	}
	ts.entrySeen = 0
	ts.rowsSeen = 0
	switch {
	case ts.profile == nil:
		// No buffer attached: either the trace was never instrumented, or
		// its last profile is still in (or went through) the pipeline.
		// Prefer a recycled buffer over a fresh allocation.
		if s.pool != nil {
			ts.profile = s.pool.takeRecycled(ops, isLoad, capRows)
		}
		if ts.profile == nil {
			ts.profile = NewAddressProfile(ops, isLoad, capRows)
			s.met.RecycleMisses.Inc()
		} else {
			s.met.RecycleHits.Inc()
			s.tlog.Emit(tracelog.Event{Type: tracelog.EvPipelineRecycle,
				Cycles: s.rt.M.Cycles, TracePC: ts.clean.Start,
				Arg1: uint64(capRows)})
		}
	case len(ts.profile.Ops) != len(ops) || ts.profile.rowCap != capRows:
		ts.profile.Reinit(ops, isLoad, capRows)
	default:
		ts.profile.Reset()
	}
	for _, pc := range ops {
		s.profiledPCs[pc] = true
	}

	colOf := make(map[uint64]int, len(ops))
	for i, pc := range ops {
		colOf[pc] = i
	}
	hooks := make(map[uint64]rio.MemHook, len(ops))
	for pc, col := range colOf {
		col := col
		hooks[pc] = func(hpc, addr uint64, size uint8, write bool) {
			if ts.rowOpen {
				ts.profile.Record(ts.curRow, col, addr)
				s.met.FillRefs.Inc()
			}
		}
	}

	inst := ts.clean.Clone()
	inst.Instr = &rio.Instrumentation{
		Prolog: func() bool {
			s.met.FillPrologs.Inc()
			if ts.entrySeen >= ts.rowTarget || s.globalRows >= s.cfg.TraceProfileLen {
				global := uint64(0)
				if ts.entrySeen >= ts.rowTarget {
					s.met.ProfileFills.Inc()
				} else {
					s.met.GlobalFills.Inc()
					global = 1
				}
				s.tlog.Emit(tracelog.Event{Type: tracelog.EvProfileFill,
					Cycles: s.rt.M.Cycles, TracePC: ts.clean.Start,
					Arg1: uint64(ts.profile.Rows()), Arg2: global})
				s.runAnalyzer(ts)
				return false
			}
			// Fill-stage wall attribution: timing every prolog would put
			// two clock reads on the hottest guest path, so 1-in-N entries
			// are timed and scaled — a sampled estimator, flagged as such
			// in the live render.
			s.prologTick++
			if s.prologTick%prologWallSample == 0 {
				t0 := time.Now()
				defer func() {
					s.met.FillWallNs.Add(uint64(time.Since(t0)) * prologWallSample)
				}()
			}
			ts.entrySeen++
			if !s.burstRecord(ts) {
				// Off-schedule entry: run unprofiled (rio skips the hooks),
				// paying only the prolog conditional.
				s.met.BurstSkips.Inc()
				ts.rowOpen = false
				return false
			}
			ts.rowsSeen++
			if row, ok := ts.profile.OpenRow(); ok {
				ts.curRow = row
			} else {
				// Reservoir: replace a pseudo-random resident with
				// probability cap/seen, else drop this execution.
				j := ts.nextRand() % uint64(ts.rowsSeen)
				if j >= uint64(ts.profile.rowCap) {
					s.met.ReservoirDrops.Inc()
					ts.rowOpen = false
					return false
				}
				ts.profile.ReuseRow(int(j))
				ts.curRow = int(j)
				s.met.ReservoirReplaced.Inc()
			}
			ts.rowOpen = true
			s.globalRows++
			return true
		},
		Hooks:      hooks,
		PerRefCost: s.cfg.PerRefCost,
		PrologCost: s.cfg.PrologCost,
	}
	ts.instr = inst
	s.instrumentEvents++
	s.met.TracesInstrumented.Inc()
	s.tlog.Emit(tracelog.Event{Type: tracelog.EvTraceInstrumented,
		Cycles: s.rt.M.Cycles, TracePC: ts.clean.Start, Arg1: uint64(len(ops))})
	s.rt.AddOverhead(s.cfg.InstrumentCost)
	s.rt.ReplaceTrace(inst)
	ns := uint64(time.Since(wallStart))
	s.met.InstrumentWallNs.Add(ns)
	s.met.InstrumentLatency.Observe(ns)
}

// liveTraces returns the traces with a non-empty profile, sorted by trace
// start PC — the fixed merge order every analysis path uses. The previous
// map-order walk made reports depend on Go's randomized map iteration
// whenever an invocation covered more than one live profile (the shared
// logical cache makes the mini-simulation order-sensitive).
func (s *System) liveTraces() []*traceState {
	var live []*traceState
	for _, ts := range s.traces {
		if ts.instr == nil || ts.profile == nil || ts.profile.Rows() == 0 {
			continue
		}
		live = append(live, ts)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].clean.Start < live[j].clean.Start })
	return live
}

// asyncActive reports whether this invocation should go through the
// pipeline, starting it lazily on first use. The pipeline is off the
// table whenever a synchronous hook (OnAnalyzed, AdaptiveFrequency,
// AdaptSampling) needs analysis results at deinstrument time; if one
// appeared after the pool already ran, the inline path first synchronizes
// with the pipeline so it never touches analyzer state concurrently.
func (s *System) asyncActive() bool {
	if s.cfg.AnalyzerWorkers < 2 || s.OnAnalyzed != nil || s.cfg.AdaptiveFrequency || s.cfg.AdaptSampling || s.poolClosed {
		if s.pool != nil {
			s.pool.drain()
		}
		return false
	}
	if s.pool == nil {
		s.pool = newAnalyzerPool(s.an, s.consumers, s.met, s.tlog, s.cfg.AnalyzerWorkers, s.cfg.SharedPrep)
	}
	return true
}

// runAnalyzer performs one profile-analyzer invocation: it mini-simulates
// every live profile (inline, or via the pipeline hand-off), labels
// delinquent loads, swaps every analyzed trace back to its clean clone,
// and charges the modelled analysis cost.
func (s *System) runAnalyzer(trigger *traceState) {
	live := s.liveTraces()
	s.emitInvocation(live)
	s.tlog.Emit(tracelog.Event{Type: tracelog.EvAnalyzerBegin,
		Cycles: s.rt.M.Cycles, Arg1: uint64(len(live))})
	if s.asyncActive() {
		s.submitAnalysis(live)
	} else {
		s.analyzeInline(live)
	}
	if s.cfg.Adaptive {
		trigger.alpha = s.cfg.clampAlpha(trigger.alpha - s.cfg.DelinquencyStep)
		s.met.AdaptiveAlphaSteps.Inc()
		s.tlog.Emit(tracelog.Event{Type: tracelog.EvAdaptiveStep,
			Cycles: s.rt.M.Cycles, TracePC: trigger.clean.Start,
			Arg1: math.Float64bits(trigger.alpha)})
	}
	s.globalRows = 0
	s.syncGuestMirrors()
	s.emitMetrics()
}

// analyzeInline is the synchronous path: the guest thread runs the full
// mini-simulation before continuing, as in the paper.
func (s *System) analyzeInline(live []*traceState) {
	if s.cfg.AnalyzerWorkers >= 2 {
		// A pipeline was requested but this invocation could not use it
		// (synchronous hook, or post-Finish): the guest is paying the
		// stall the workers were meant to hide.
		s.met.SyncFallbacks.Inc()
	}
	start := time.Now()
	startCycles := s.rt.M.Cycles
	refs0, miss0 := s.an.SimulatedRefs, s.an.totalMiss
	cost := s.cfg.AnalyzerFixed
	s.an.BeginInvocation(startCycles)
	for _, ts := range live {
		cost += s.an.AnalyzeProfile(ts.profile, ts.alpha)
		for _, c := range s.consumers {
			c.Consume(ts.profile)
		}
		if s.cfg.AdaptiveFrequency {
			s.tuneFrequency(ts)
		}
		s.profilesCollected++
		s.met.ProfilesCollected.Inc()
		ts.profile.Reset()
		s.deinstrument(ts)
	}
	// The window summary is captured with the invocation's submit-time
	// cycle stamp — the same clock the pipeline path stamps at hand-off —
	// so inline and async histories are byte-identical.
	s.an.captureWindow(startCycles, s.consumers)
	if s.cfg.AdaptSampling {
		// The window just captured is visible here on the guest thread —
		// AdaptSampling forces the inline path — so the adaptation state
		// machine steps from fully-settled analysis results.
		s.adaptFromWindow()
	}
	wallNs := uint64(time.Since(start))
	s.met.AnalysisLatency.Observe(wallNs)
	s.met.AnalyzeWallNs.Add(wallNs)
	s.met.AnalyzeCycles.Add(cost)
	s.tlog.Emit(tracelog.Event{Type: tracelog.EvAnalyzerEnd,
		Cycles: startCycles, Dur: cost,
		Arg1: s.an.SimulatedRefs - refs0, Arg2: s.an.totalMiss - miss0,
		Arg3: uint64(len(s.an.delinquent))})
	s.rt.AddOverhead(cost)
}

// submitAnalysis is the pipeline path: profiles are detached from their
// traces and handed off, the traces swap back to clean code immediately,
// and the guest continues while the pool analyzes. The modelled analysis
// cost is charged now, at the point a synchronous run would have paid it,
// computed from the profile's recorded-cell count — the same reference
// count the simulation replays — so the guest-visible overhead stream is
// identical to the inline path's.
func (s *System) submitAnalysis(live []*traceState) {
	cycles := s.rt.M.Cycles
	cost := s.cfg.AnalyzerFixed
	jobs := make([]*analysisJob, 0, len(live))
	for _, ts := range live {
		cost += s.cfg.AnalyzerPerRef * uint64(ts.profile.Recorded())
		jobs = append(jobs, &analysisJob{profile: ts.profile, alpha: ts.alpha})
		ts.profile = nil
		s.profilesCollected++
		s.met.ProfilesCollected.Inc()
		s.deinstrument(ts)
	}
	s.pool.submit(cycles, cost, jobs)
	s.tlog.Emit(tracelog.Event{Type: tracelog.EvPipelineSubmit,
		Cycles: cycles, Arg1: uint64(len(jobs)),
		Arg2: uint64(len(s.pool.prepQ)), Arg3: uint64(len(s.pool.seqQ))})
	s.met.AnalyzeCycles.Add(cost)
	s.rt.AddOverhead(cost)
}

// tuneFrequency adapts a trace's sampling threshold to what its analysis
// just found (Config.AdaptiveFrequency).
func (s *System) tuneFrequency(ts *traceState) {
	interesting := false
	for _, pc := range ts.profile.Ops {
		if s.an.delinquent[pc] {
			interesting = true
			break
		}
	}
	s.met.AdaptiveFreqSteps.Inc()
	if interesting {
		ts.freqThresh /= 2
		if ts.freqThresh < 1 {
			ts.freqThresh = 1
		}
	} else {
		ts.freqThresh *= 2
		if max := s.cfg.MaxFrequencyThreshold; max > 0 && ts.freqThresh > max {
			ts.freqThresh = max
		}
	}
}

// deinstrument swaps a trace back to its clean clone and runs the
// optimization hook. The caller has already settled the profile: reset in
// place on the inline path, detached into the pipeline on the async one.
func (s *System) deinstrument(ts *traceState) {
	ts.instr = nil
	ts.rowOpen = false
	s.met.TracesDeinstrumented.Inc()
	s.tlog.Emit(tracelog.Event{Type: tracelog.EvTraceDeinstrumented,
		Cycles: s.rt.M.Cycles, TracePC: ts.clean.Start, Arg1: uint64(ts.analyses + 1)})
	ts.everAnalyzed = true
	ts.analyses++
	ts.lastAnalyzed = s.rt.M.Instrs
	if s.OnAnalyzed != nil {
		if nf := s.OnAnalyzed(ts.clean, s.an); nf != nil {
			ts.clean = nf
		}
	}
	s.rt.AddOverhead(s.cfg.InstrumentCost) // swap back
	s.rt.ReplaceTrace(ts.clean)
}

// Finish analyzes any profiles still live when execution ends, so short
// runs report complete results, then drains and stops the analysis
// pipeline if one is running. Further analyzer invocations (none are
// expected after execution ends) fall back to the inline path.
func (s *System) Finish() {
	if live := s.liveTraces(); len(live) > 0 {
		// The first live trace (fixed order) is the nominal trigger.
		s.runAnalyzer(live[0])
	}
	if s.pool != nil {
		s.pool.close()
		s.pool = nil
		s.poolClosed = true
	}
	s.syncGuestMirrors()
}

// Report summarizes a UMI run.
type Report struct {
	// Delinquent is the predicted delinquent load set P (application PCs).
	Delinquent map[uint64]bool
	// Strides holds dominant strides for profiled loads.
	Strides map[uint64]StrideInfo
	// OpStats holds cumulative per-operation mini-simulation statistics.
	OpStats map[uint64]*OpStat
	// SimMissRatio is the overall mini-simulated L2 miss ratio.
	SimMissRatio float64

	ProfiledOps         int // unique instrumented operations
	CandidateOps        int // unique load/store operations seen in traces
	ProfilesCollected   int
	AnalyzerInvocations int
	InstrumentEvents    int
	TracesSeen          int
	SimulatedRefs       uint64
	Flushes             int
}

// Report returns the run summary, synchronizing with the analysis
// pipeline first so every handed-off profile is reflected. Call Finish
// first for complete results.
func (s *System) Report() *Report {
	if s.pool != nil {
		s.pool.drain()
	}
	return &Report{
		Delinquent:          s.an.Delinquent(),
		Strides:             s.an.Strides(),
		OpStats:             s.an.OpStats(),
		SimMissRatio:        s.an.MissRatio(),
		ProfiledOps:         len(s.profiledPCs),
		CandidateOps:        len(s.candidatePCs),
		ProfilesCollected:   s.profilesCollected,
		AnalyzerInvocations: s.an.Invocations,
		InstrumentEvents:    s.instrumentEvents,
		TracesSeen:          len(s.traces),
		SimulatedRefs:       s.an.SimulatedRefs,
		Flushes:             s.an.Flushes,
	}
}

func (r *Report) String() string {
	if r.TracesSeen == 0 {
		// An empty session (the program halted before any region got hot)
		// is a legitimate outcome, not a formatting edge case: say so
		// explicitly instead of rendering a row of ambiguous zeros.
		return "umi.Report{no traces instrumented}"
	}
	return fmt.Sprintf("umi.Report{traces %d, profiled %d/%d ops, %d profiles, %d invocations, sim miss %.4f, |P|=%d}",
		r.TracesSeen, r.ProfiledOps, r.CandidateOps, r.ProfilesCollected,
		r.AnalyzerInvocations, r.SimMissRatio, len(r.Delinquent))
}
