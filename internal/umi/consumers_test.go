package umi

import (
	"strings"
	"testing"

	"umi/internal/cache"
	"umi/internal/rio"
	"umi/internal/vm"
)

func fillProfile(ops int, rows int, addr func(r, c int) uint64) *AddressProfile {
	pcs := make([]uint64, ops)
	isLoad := make([]bool, ops)
	for i := range pcs {
		pcs[i] = 0x400000 + uint64(i)*16
		isLoad[i] = true
	}
	p := NewAddressProfile(pcs, isLoad, rows)
	for r := 0; r < rows; r++ {
		row, _ := p.OpenRow()
		for c := 0; c < ops; c++ {
			p.Record(row, c, addr(r, c))
		}
	}
	return p
}

func TestWorkingSetDistinctLines(t *testing.T) {
	ws := NewWorkingSet(64)
	// One op cycling 4 lines, another streaming fresh lines.
	p := fillProfile(2, 64, func(r, c int) uint64 {
		if c == 0 {
			return uint64(r%4) * 64
		}
		return 0x100000 + uint64(r)*64
	})
	ws.Consume(p)
	if got := ws.DistinctLines(); got != 4+64 {
		t.Errorf("DistinctLines = %d, want 68", got)
	}
	if ws.Refs != 128 {
		t.Errorf("Refs = %d, want 128", ws.Refs)
	}
	// The cycling op reuses; the stream is all cold.
	if ws.Cold != 68 {
		t.Errorf("Cold = %d, want 68", ws.Cold)
	}
	if _, ok := ws.ReuseMedianBucket(); !ok {
		t.Error("reuse histogram must be non-empty")
	}
	if !strings.Contains(ws.String(), "distinct") {
		t.Error("String must summarize")
	}
}

func TestWorkingSetReuseDistances(t *testing.T) {
	ws := NewWorkingSet(64)
	// Immediate reuse: distance 0 bucket.
	p := fillProfile(2, 32, func(r, c int) uint64 { return 0x1000 })
	ws.Consume(p)
	if ws.Hist[0] == 0 {
		t.Error("immediate reuse must land in bucket 0")
	}
	if ws.Cold != 1 {
		t.Errorf("Cold = %d, want 1", ws.Cold)
	}
}

func TestWhatIfOrdersGeometries(t *testing.T) {
	small := cache.Config{Name: "64K", Size: 64 << 10, Assoc: 8, LineSize: 64}
	big := cache.Config{Name: "1M", Size: 1 << 20, Assoc: 8, LineSize: 64}
	w := NewWhatIf(2, small, big)
	// Cycle a 256 KiB footprint: misses in the small cache, resident in
	// the big one after warm-up.
	p := fillProfile(1, 256, func(r, c int) uint64 { return uint64(r%64) * 4096 })
	for i := 0; i < 4; i++ {
		w.Consume(p)
	}
	res := w.Results()
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].MissRatio <= res[1].MissRatio {
		t.Errorf("small cache ratio %.3f must exceed big cache %.3f",
			res[0].MissRatio, res[1].MissRatio)
	}
	if res[1].Accesses == 0 {
		t.Error("warm accesses must be counted")
	}
}

func TestClassifyColumn(t *testing.T) {
	cases := []struct {
		name  string
		addrs []uint64
		want  Pattern
	}{
		{"short", []uint64{1, 2}, PatternUnknown},
		{"constant", []uint64{5, 5, 5, 5}, PatternConstant},
		{"strided", []uint64{0, 64, 128, 192, 256}, PatternStrided},
		{"irregular", []uint64{10, 99999, 7, 123456, 42, 777777}, PatternIrregular},
	}
	for _, c := range cases {
		if got := ClassifyColumn(c.addrs); got != c.want {
			t.Errorf("%s: ClassifyColumn = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestPatternCensus(t *testing.T) {
	pc := NewPatternCensus()
	p := fillProfile(3, 16, func(r, c int) uint64 {
		switch c {
		case 0:
			return 0x1000 // constant
		case 1:
			return uint64(r) * 64 // strided
		default:
			return uint64(r*r*977+r) * 8 // irregular: every delta distinct
		}
	})
	pc.Consume(p)
	if pc.Of(0x400000) != PatternConstant {
		t.Errorf("op0 = %v, want constant", pc.Of(0x400000))
	}
	if pc.Of(0x400010) != PatternStrided {
		t.Errorf("op1 = %v, want strided", pc.Of(0x400010))
	}
	if pc.Of(0x400020) != PatternIrregular {
		t.Errorf("op2 = %v, want irregular", pc.Of(0x400020))
	}
	sum := pc.Summary()
	for _, want := range []string{"constant=1", "strided=1", "irregular=1"} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary = %q missing %q", sum, want)
		}
	}
}

// End to end: consumers attached to a running System receive the same
// profiles the analyzer sees.
func TestConsumersEndToEnd(t *testing.T) {
	p := strideWorkload(t, 400_000)
	h := cache.NewP4(false)
	m := vm.New(p, h)
	rt := rio.NewRuntime(m)
	cfg := testConfig()
	s := Attach(rt, cfg)
	ws := NewWorkingSet(64)
	census := NewPatternCensus()
	wi := NewWhatIf(cfg.WarmupRows,
		cache.Config{Name: "half", Size: 256 << 10, Assoc: 8, LineSize: 64},
		cache.P4L2)
	s.AddConsumer(ws)
	s.AddConsumer(census)
	s.AddConsumer(wi)
	if err := rt.Run(50_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	s.Finish()
	if ws.Refs == 0 {
		t.Fatal("working-set consumer saw no references")
	}
	if ws.DistinctLines() == 0 {
		t.Error("no distinct lines recorded")
	}
	loopPC := p.Symbols["loop"]
	if census.Of(loopPC) != PatternStrided {
		t.Errorf("strided load classified as %v", census.Of(loopPC))
	}
	res := wi.Results()
	if res[0].Accesses == 0 || res[1].Accesses == 0 {
		t.Fatal("what-if explorer saw no accesses")
	}
	// §5's claim: the mini-simulation is insensitive to geometry — the
	// two geometries must agree closely on this workload.
	d := res[0].MissRatio - res[1].MissRatio
	if d < -0.1 || d > 0.1 {
		t.Errorf("geometry sensitivity too high: %.3f vs %.3f",
			res[0].MissRatio, res[1].MissRatio)
	}
}
