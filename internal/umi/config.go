// Package umi implements Ubiquitous Memory Introspection: the region
// selector, instrumentor, and profile analyzer of the paper, layered on the
// rio runtime.
//
// Lifecycle of one code trace under UMI:
//
//  1. The rio trace builder installs a new trace; the region selector
//     registers it (and, when sampling reinforcement is on, waits until
//     the trace has accumulated FrequencyThreshold PC samples).
//  2. The instrumentor clones the trace (T_c), filters its memory
//     operations (stack-relative and static references are skipped),
//     attaches profiling hooks for the survivors, and installs a prolog.
//  3. Each trace entry opens a new row in the trace's two-dimensional
//     address profile; each profiled operation records its effective
//     address into the row.
//  4. When the trace's address profile fills (AddressProfileRows rows) or
//     the global trace profile fills (TraceProfileLen rows across all
//     live traces), the profile analyzer runs: a fast cache mini-simulation
//     over the recorded rows, with warm-up skipping, a single logical
//     cache carried across invocations, and periodic flushing.
//  5. The analyzer labels loads whose simulated miss ratio exceeds the
//     trace's (adaptive) delinquency threshold as delinquent, extracts
//     dominant strides, swaps the instrumented trace for its clean clone,
//     and the application continues unprofiled until the region selector
//     re-triggers the trace.
package umi

import "umi/internal/cache"

// Config controls the UMI prototype. DefaultConfig matches the paper's
// published parameter choices.
type Config struct {
	// FrequencyThreshold is the sample count that promotes a trace for
	// instrumentation when sampling reinforcement is on (§2; default 64).
	FrequencyThreshold int

	// UseSampling enables sample-based reinforcement of the region
	// selector. Without it every new trace is instrumented immediately
	// and re-instrumented after ReinstrumentGap guest instructions
	// (Table 3 reports this mode: "in the absence of sample-based
	// reinforcement").
	UseSampling bool

	// SamplePeriod is the PC-sampling period in retired guest
	// instructions, standing in for the paper's 10 ms timer.
	SamplePeriod uint64

	// ReinstrumentGap is the cooldown, in retired guest instructions,
	// before an analyzed trace may be instrumented again, keeping the
	// profiling bursty rather than continuous.
	ReinstrumentGap uint64

	// AddressProfileOps caps the profiled operations per trace (§4.2;
	// default 256).
	AddressProfileOps int
	// AddressProfileRows caps recorded executions per trace (§4.2;
	// default 256).
	AddressProfileRows int
	// TraceProfileLen caps rows across all live profiles before the
	// analyzer triggers (§4.2; default 8192, guarded in the paper by a
	// protected page so the prolog needs only one conditional jump).
	TraceProfileLen int

	// WarmupRows is how many leading rows of each address profile are
	// simulated without miss accounting (§5: "typically two executions
	// of the trace"), suppressing inflated compulsory misses.
	WarmupRows int

	// FlushCycleGap: the analyzer flushes its logical cache when more
	// than this many guest cycles have elapsed since it last ran (§5;
	// default 1M), avoiding long-term contamination.
	FlushCycleGap uint64

	// Delinquency threshold α (§7): a load is labelled delinquent when
	// its simulated miss ratio exceeds the trace's threshold. With
	// Adaptive set, each trace starts at Init and steps down by Step per
	// analyzer invocation it triggers, to a floor of Min; otherwise the
	// global value Init applies throughout.
	DelinquencyInit float64
	DelinquencyStep float64
	DelinquencyMin  float64
	Adaptive        bool

	// AdaptiveFrequency enables the paper's proposed extension (§7.2:
	// "Future work may explore adaptively tuning the threshold according
	// to the application and trace characteristics"): each trace gets its
	// own frequency threshold, halved after an analysis that found
	// delinquent loads in the trace (profile interesting code more
	// often) and doubled — up to MaxFrequencyThreshold — after one that
	// found none (back off boring code).
	AdaptiveFrequency     bool
	MaxFrequencyThreshold int

	// FilterOps enables the instrumentor's operation filtering (§4.1:
	// skip stack-relative and static references). Disabling it is the
	// ablation: every load/store in the trace is profiled.
	FilterOps bool

	// MiniSimCache is the mini-simulator geometry, configured to match
	// the host's L2 (§5).
	MiniSimCache cache.Config

	// HistoryWindows bounds the profile-history ring: how many trailing
	// per-invocation WindowSummary records are retained (0 selects
	// DefaultHistoryWindows; negative disables capture entirely). Capture
	// derives only from modelled state and never feeds back into results,
	// so reports are byte-identical at every setting.
	HistoryWindows int

	// Phase-change detection thresholds: a window is flagged as a phase
	// transition when its miss ratio moved more than PhaseMissDelta from
	// the previous window's, or when delinquent-set churn (1 − Jaccard
	// similarity against the previous window) exceeds PhaseChurnDelta.
	PhaseMissDelta  float64
	PhaseChurnDelta float64

	// AnalyzerWorkers sets the width of the asynchronous profile-analysis
	// pipeline. At 0 or 1 the analyzer runs inline on the guest thread
	// (the paper's synchronous model). At N ≥ 2 filled profiles are handed
	// off over bounded channels to N stateless preparation workers feeding
	// a single sequencer goroutine that owns the logical cache, so the
	// guest keeps executing while profiles are analyzed; the sequencer
	// replays profiles in the fixed PC-sorted submission order, so results
	// are identical for every N. The pipeline silently falls back to the
	// synchronous path when OnAnalyzed or AdaptiveFrequency needs analysis
	// results at deinstrumentation time.
	AnalyzerWorkers int

	// SharedPrep, when non-nil, routes the pipeline's preparation stage
	// through a multi-session shared worker pool instead of spawning
	// private workers: the daemon shape, where many concurrent sessions
	// share one worker fleet with round-robin fairness. Only consulted
	// when AnalyzerWorkers ≥ 2 selects the asynchronous pipeline at all;
	// the sequencer stays per-session either way, so reports remain
	// byte-identical to a standalone run.
	SharedPrep *SharedPrep

	// Burst sampling (Examem-style): when BurstPeriod > 1 an instrumented
	// trace records only 1-in-BurstPeriod of its executions — the prolog
	// skips hook installation for the rest, so a skipped entry pays
	// PrologCost but no per-reference cost and contributes no profile row.
	// The instrumented burst still ends after AddressProfileRows entries
	// (recorded or not), so the analyzer cadence is unchanged and each
	// invocation sees a ~1/BurstPeriod row sample. The schedule is
	// deterministic — derived from SamplerSeed and the trace's start PC,
	// advanced by the trace's own entry counter, all guest-thread modelled
	// state — so reports stay byte-identical at every worker count.
	// BurstPeriod ≤ 1 disables burst sampling (today's behaviour exactly).
	BurstPeriod int

	// SamplerSeed seeds the deterministic burst and reservoir schedules.
	// Zero is a valid seed; two runs with the same seed (and config)
	// produce byte-identical reports.
	SamplerSeed uint64

	// ReservoirRows, when > 0 and below the effective row target, caps how
	// many rows a profile physically retains: the first ReservoirRows
	// recorded executions fill the buffer, after which each further one
	// replaces a deterministically-pseudo-random resident with probability
	// cap/seen (classic reservoir sampling) or is dropped — so the
	// analyzer replays a uniform sample of the burst's executions at a
	// fraction of the simulation cost. 0 disables.
	ReservoirRows int

	// AdaptSampling enables history-driven adaptation: after
	// AdaptStableWindows consecutive analyzer windows without a
	// PhaseChange flag, the sampler steps down one level — halving the
	// per-trace row target and doubling the reinstrumentation cooldown —
	// down to at most adaptMaxLevel steps; any PhaseChange re-arms level 0
	// (full profiling) immediately. Adaptation reads analysis results at
	// deinstrument time, so (like OnAnalyzed and AdaptiveFrequency) it
	// forces the inline analysis path. Requires HistoryWindows ≥ 0.
	AdaptSampling bool

	// AdaptStableWindows is the consecutive phase-stable window count K
	// that triggers one adaptation step (0 selects
	// DefaultAdaptStableWindows).
	AdaptStableWindows int

	// Overhead model (cycles).
	PerRefCost     uint64 // per recorded (pc, address) tuple (§4.2: 4-6 ops)
	PrologCost     uint64 // per instrumented trace entry
	AnalyzerPerRef uint64 // analyzer cycles per simulated reference
	AnalyzerFixed  uint64 // analyzer invocation fixed cost (context switch)
	InstrumentCost uint64 // per instrument/swap event (clone + patching)
}

// DefaultAdaptStableWindows is the default stable-window count before an
// adaptation step when AdaptSampling is on and AdaptStableWindows is 0.
const DefaultAdaptStableWindows = 4

// adaptMaxLevel bounds history-driven adaptation: each level halves the
// row target and doubles the cooldown, so level 3 profiles 1/8 the rows
// at 8× the interval — deep enough to matter, shallow enough that a
// re-arm recovers full profiling within one window.
const adaptMaxLevel = 3

// adaptMinRows floors the adapted per-trace row target so even the
// quietest phase keeps enough post-warmup rows for stable miss ratios.
const adaptMinRows = 32

// burstPeriod returns the effective burst period (≥ 1).
func (c *Config) burstPeriod() int {
	if c.BurstPeriod < 1 {
		return 1
	}
	return c.BurstPeriod
}

// adaptStableWindows returns the effective K for AdaptSampling.
func (c *Config) adaptStableWindows() int {
	if c.AdaptStableWindows <= 0 {
		return DefaultAdaptStableWindows
	}
	return c.AdaptStableWindows
}

// clampAlpha bounds a delinquency threshold to the configured window
// [DelinquencyMin, max(DelinquencyInit, DelinquencyMin)] (§7: 0.90 → 0.10
// in 0.10 steps). Every adaptive step passes through here, so repeated
// adaptation can neither sink the threshold below the floor nor climb it
// above the starting value.
func (c *Config) clampAlpha(alpha float64) float64 {
	hi := c.DelinquencyInit
	if hi < c.DelinquencyMin {
		hi = c.DelinquencyMin
	}
	if alpha > hi {
		return hi
	}
	if alpha < c.DelinquencyMin {
		return c.DelinquencyMin
	}
	return alpha
}

// DefaultConfig returns the paper's parameters against the given host L2
// geometry.
func DefaultConfig(hostL2 cache.Config) Config {
	return Config{
		FrequencyThreshold:    64,
		MaxFrequencyThreshold: 1024,
		UseSampling:           true,
		SamplePeriod:          50_000,
		ReinstrumentGap:       2_000_000,
		AddressProfileOps:     256,
		AddressProfileRows:    256,
		TraceProfileLen:       8192,
		WarmupRows:            2,
		FlushCycleGap:         1_000_000,
		HistoryWindows:        DefaultHistoryWindows,
		PhaseMissDelta:        0.05,
		PhaseChurnDelta:       0.5,
		DelinquencyInit:       0.90,
		DelinquencyStep:       0.10,
		DelinquencyMin:        0.10,
		Adaptive:              true,
		FilterOps:             true,
		MiniSimCache:          hostL2,
		PerRefCost:            5,
		PrologCost:            3,
		AnalyzerPerRef:        3,
		AnalyzerFixed:         400,
		InstrumentCost:        120,
	}
}
