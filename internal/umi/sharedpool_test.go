package umi

import (
	"sync"
	"testing"

	"umi/internal/program"
)

// TestSharedPrepEquivalence is the multi-tenant form of the pipeline's
// core contract: a session whose preparation runs on a shared pool — of
// any width — produces the report the inline analyzer produces, down to
// the modelled cycle totals.
func TestSharedPrepEquivalence(t *testing.T) {
	progs := map[string]func() *program.Program{
		"stride":    func() *program.Program { return strideWorkload(t, 400_000) },
		"manyloops": func() *program.Program { return manyLoopsWorkload(t, 8, 30_000) },
	}
	for name, build := range progs {
		want := func() string {
			cfg := testConfig()
			cfg.AnalyzerWorkers = 0
			s, rt := runUMI(t, build(), cfg)
			return systemKey(s, rt)
		}()
		for _, width := range []int{1, 2, 4} {
			shared := NewSharedPrep(width, 0)
			cfg := testConfig()
			cfg.AnalyzerWorkers = 4
			cfg.SharedPrep = shared
			s, rt := runUMI(t, build(), cfg)
			got := systemKey(s, rt)
			shared.Close()
			if got != want {
				t.Errorf("%s: shared width=%d differs from inline:\n  got  %s\n  want %s",
					name, width, got, want)
			}
		}
	}
}

// sessionProg varies the guest per session slot so co-tenants stress the
// shared pool with heterogeneous job shapes.
func sessionProg(t *testing.T, i int) *program.Program {
	t.Helper()
	if i%2 == 0 {
		return strideWorkload(t, 200_000+int64(i)*10_000)
	}
	return manyLoopsWorkload(t, 4+i%4, 20_000)
}

// TestSharedPrepConcurrentSessions runs many sessions concurrently over
// one shared pool and checks each against its solo baseline: co-tenancy
// must not leak state across sessions or perturb any report.
func TestSharedPrepConcurrentSessions(t *testing.T) {
	const sessions = 8
	baselines := make([]string, sessions)
	for i := range baselines {
		cfg := testConfig()
		cfg.AnalyzerWorkers = 0
		s, rt := runUMI(t, sessionProg(t, i), cfg)
		baselines[i] = systemKey(s, rt)
	}

	shared := NewSharedPrep(4, 64)
	defer shared.Close()
	got := make([]string, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := testConfig()
			cfg.AnalyzerWorkers = 4
			cfg.SharedPrep = shared
			s, rt := runUMI(t, sessionProg(t, i), cfg)
			got[i] = systemKey(s, rt)
		}(i)
	}
	wg.Wait()
	for i := range got {
		if got[i] != baselines[i] {
			t.Errorf("session %d under co-tenant load differs from solo run:\n  got  %s\n  want %s",
				i, got[i], baselines[i])
		}
	}
	if d := shared.QueueDepth(); d != 0 {
		t.Errorf("QueueDepth = %d after all sessions drained, want 0", d)
	}
}

// TestSharedPrepFairness pins the scheduling invariant that makes one hot
// session unable to starve others: workers drain lanes round-robin, one
// job per visit, so a lane with one pending job is served within one
// round of the flooding lane's backlog — never behind it.
func TestSharedPrepFairness(t *testing.T) {
	// Build the pool without workers so the drain order is observable
	// deterministically through the scheduler itself.
	p := &SharedPrep{maxQueue: 1024, workers: 0}
	p.cond = sync.NewCond(&p.mu)
	mkPool := func() *analyzerPool {
		return &analyzerPool{met: newMetrics(), prepBufs: make(chan *prepBuf, 4)}
	}
	hot, small := mkPool(), mkPool()
	hotLane, smallLane := p.register(hot), p.register(small)

	mkJob := func() *analysisJob {
		return &analysisJob{
			profile: NewAddressProfile([]uint64{0x400000}, []bool{true}, 2),
			alpha:   0.5, ready: make(chan struct{}),
		}
	}
	const flood = 100
	for i := 0; i < flood; i++ {
		p.enqueue(hotLane, mkJob())
	}
	p.enqueue(smallLane, mkJob())

	// Drain exactly as a worker would and record which lane each pop
	// serves. The small lane's single job must surface within the first
	// round — at most one flooder job ahead of it.
	var order []string
	for {
		p.mu.Lock()
		job, lane := p.next()
		if job != nil {
			p.queued--
		}
		p.mu.Unlock()
		if job == nil {
			break
		}
		switch lane {
		case hotLane:
			order = append(order, "hot")
		case smallLane:
			order = append(order, "small")
		}
		lane.owner.prepareJob(job)
	}
	if len(order) != flood+1 {
		t.Fatalf("drained %d jobs, want %d", len(order), flood+1)
	}
	pos := -1
	for i, who := range order {
		if who == "small" {
			pos = i
			break
		}
	}
	if pos < 0 || pos > 1 {
		t.Errorf("small session's job served at position %d, want within the first round (0 or 1); order prefix %v",
			pos, order[:min(len(order), 4)])
	}
}

// TestSharedPrepClosedEnqueue: a job enqueued after Close must still
// complete (inline, on the enqueuer) so no sequencer can hang on a ready
// channel that nobody will close.
func TestSharedPrepClosedEnqueue(t *testing.T) {
	p := NewSharedPrep(1, 4)
	ap := &analyzerPool{met: newMetrics(), prepBufs: make(chan *prepBuf, 2)}
	lane := p.register(ap)
	p.Close()
	job := &analysisJob{
		profile: NewAddressProfile([]uint64{0x400000}, []bool{true}, 2),
		alpha:   0.5, ready: make(chan struct{}),
	}
	p.enqueue(lane, job)
	select {
	case <-job.ready:
	default:
		t.Fatal("job enqueued after Close never became ready")
	}
	if job.prep == nil {
		t.Error("closed-pool enqueue did not prepare the job")
	}
}

// TestSharedPrepUnregisterMidFleet: removing a middle lane must keep the
// round-robin cursor valid and the remaining lanes serviceable.
func TestSharedPrepUnregisterMidFleet(t *testing.T) {
	p := &SharedPrep{maxQueue: 16, workers: 0}
	p.cond = sync.NewCond(&p.mu)
	mkPool := func() *analyzerPool {
		return &analyzerPool{met: newMetrics(), prepBufs: make(chan *prepBuf, 2)}
	}
	lanes := make([]*prepLane, 3)
	for i := range lanes {
		lanes[i] = p.register(mkPool())
	}
	// Advance the cursor past lane 1, then remove lane 1.
	p.rr = 2
	p.unregister(lanes[1])
	if len(p.lanes) != 2 {
		t.Fatalf("lanes = %d after unregister, want 2", len(p.lanes))
	}
	if p.rr != 1 {
		t.Errorf("rr = %d after removing a lane below the cursor, want 1", p.rr)
	}
	// The remaining lanes still round-robin.
	job := &analysisJob{
		profile: NewAddressProfile([]uint64{0x400000}, []bool{true}, 2),
		alpha:   0.5, ready: make(chan struct{}),
	}
	p.enqueue(lanes[2], job)
	p.mu.Lock()
	got, lane := p.next()
	p.mu.Unlock()
	if got == nil || lane != lanes[2] {
		t.Error("next() failed to find the surviving lane's job")
	}
}
