// Package counters models hardware performance counters (the PAPI role in
// the paper): low-overhead event counts read from the ground-truth cache
// hierarchy, plus the interrupt-driven sampling cost model behind Table 1's
// "worst case scenario for HW counters".
package counters

import (
	"fmt"

	"umi/internal/cache"
)

// Event identifies a countable hardware event.
type Event int

// Supported events.
const (
	L1Accesses Event = iota
	L1Misses
	L2Accesses
	L2Misses
	L2PrefetchedHits
)

var eventNames = map[Event]string{
	L1Accesses:       "L1_ACCESSES",
	L1Misses:         "L1_MISSES",
	L2Accesses:       "L2_ACCESSES",
	L2Misses:         "L2_MISSES",
	L2PrefetchedHits: "L2_PREFETCH_HITS",
}

func (e Event) String() string {
	if n, ok := eventNames[e]; ok {
		return n
	}
	return fmt.Sprintf("EVENT(%d)", int(e))
}

// PMU reads event counts from a hierarchy, the way PAPI reads a
// processor's performance monitoring unit.
type PMU struct {
	H *cache.Hierarchy
}

// Read returns the current count of an event.
func (p *PMU) Read(ev Event) uint64 {
	switch ev {
	case L1Accesses:
		return p.H.L1Stats.Accesses
	case L1Misses:
		return p.H.L1Stats.Misses
	case L2Accesses:
		return p.H.L2Stats.Accesses
	case L2Misses:
		return p.H.L2Stats.Misses
	case L2PrefetchedHits:
		return p.H.L2Stats.PrefetchedHits
	}
	return 0
}

// L2MissRatio returns misses per access at L2 for loads and stores
// combined — the h_i of the paper's correlation study.
func (p *PMU) L2MissRatio() float64 { return p.H.L2Stats.MissRatio() }

// SamplingModel is the cost model for interrupt-driven counter sampling:
// every sampleSize events the counter saturates and raises an interrupt
// whose handler costs InterruptCycles; merely enabling counting costs
// BaseOverhead of the native running time. This reproduces the Table 1
// effect: near-instruction-granularity sampling is ruinously expensive,
// coarse sampling is nearly free.
type SamplingModel struct {
	// InterruptCycles is the cost of one counter-overflow interrupt
	// (kernel entry, handler, PAPI bookkeeping).
	InterruptCycles uint64
	// BaseOverheadPct is the fixed cost of running with a counter
	// enabled, as a percentage of native cycles.
	BaseOverheadPct float64
}

// DefaultSamplingModel approximates the paper's 2.2 GHz Xeon / PAPI setup,
// calibrated so that the Table 1 shape holds: ~20x slowdown at sample size
// 10, ~1% at 1M.
var DefaultSamplingModel = SamplingModel{
	InterruptCycles: 12000,
	BaseOverheadPct: 1.0,
}

// Time returns the modelled running time, in cycles, of a program whose
// native time is nativeCycles and which generates events countable events,
// sampled with the given sample size. Sample size 0 means no counter.
func (m SamplingModel) Time(nativeCycles, events, sampleSize uint64) uint64 {
	if sampleSize == 0 {
		return nativeCycles
	}
	interrupts := events / sampleSize
	t := nativeCycles + interrupts*m.InterruptCycles
	t += uint64(float64(nativeCycles) * m.BaseOverheadPct / 100)
	return t
}

// SlowdownPct returns the percentage slowdown over native for the given
// sampling configuration.
func (m SamplingModel) SlowdownPct(nativeCycles, events, sampleSize uint64) float64 {
	t := m.Time(nativeCycles, events, sampleSize)
	return 100 * (float64(t)/float64(nativeCycles) - 1)
}
