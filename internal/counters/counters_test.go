package counters

import (
	"testing"

	"umi/internal/cache"
)

func TestPMURead(t *testing.T) {
	h := cache.NewP4(false)
	pmu := &PMU{H: h}
	for addr := uint64(0); addr < 1<<20; addr += 64 {
		h.Access(addr, 8, false)
	}
	if got := pmu.Read(L1Accesses); got != h.L1Stats.Accesses || got == 0 {
		t.Errorf("L1Accesses = %d, want %d", got, h.L1Stats.Accesses)
	}
	if got := pmu.Read(L2Misses); got != h.L2Stats.Misses || got == 0 {
		t.Errorf("L2Misses = %d, want %d", got, h.L2Stats.Misses)
	}
	if pmu.L2MissRatio() != h.L2Stats.MissRatio() {
		t.Error("L2MissRatio mismatch")
	}
	if pmu.Read(Event(99)) != 0 {
		t.Error("unknown event must read 0")
	}
}

func TestEventString(t *testing.T) {
	if L2Misses.String() != "L2_MISSES" {
		t.Errorf("String = %q", L2Misses.String())
	}
	if Event(99).String() == "" {
		t.Error("unknown event must still format")
	}
}

func TestSamplingModelShape(t *testing.T) {
	m := DefaultSamplingModel
	// A memory-intensive program: 8e9 native cycles, 5e9 countable events
	// (roughly mcf's profile in the paper's Table 1 setup).
	native := uint64(8e9)
	events := uint64(5e9)

	var prev float64 = 1e18
	for _, size := range []uint64{10, 100, 1_000, 10_000, 100_000, 1_000_000} {
		sd := m.SlowdownPct(native, events, size)
		if sd >= prev {
			t.Errorf("slowdown must decrease with sample size: size=%d sd=%.2f prev=%.2f",
				size, sd, prev)
		}
		prev = sd
	}
	// Near-instruction granularity is ruinous (paper: 2056% at size 10).
	if sd := m.SlowdownPct(native, events, 10); sd < 500 {
		t.Errorf("sample size 10 slowdown = %.1f%%, want >= 500%%", sd)
	}
	// Coarse sampling is nearly free (paper: ~1% at 1M).
	if sd := m.SlowdownPct(native, events, 1_000_000); sd > 5 {
		t.Errorf("sample size 1M slowdown = %.1f%%, want <= 5%%", sd)
	}
	// No counter: no overhead.
	if tm := m.Time(native, events, 0); tm != native {
		t.Errorf("no-counter time = %d, want native %d", tm, native)
	}
}

func TestSampledProfiler(t *testing.T) {
	p := NewSampledProfiler(cache.P4L2, 10)
	// PC 0xA misses constantly (streaming); PC 0xB always hits after the
	// first touch.
	for i := uint64(0); i < 5000; i++ {
		p.Ref(0xA, 0x1_0000_0000+i*4096, 8, false)
		p.Ref(0xB, 0x2000, 8, false)
	}
	if p.Refs != 10000 {
		t.Errorf("Refs = %d", p.Refs)
	}
	if p.Interrupts == 0 {
		t.Fatal("no interrupts at sample size 10")
	}
	set := p.DelinquentSet(0.90)
	if !set[0xA] {
		t.Error("streaming PC must be in the sampled delinquent set")
	}
	if set[0xB] {
		t.Error("resident PC must not be sampled as delinquent")
	}
	if p.OverheadCycles(DefaultSamplingModel) == 0 {
		t.Error("interrupts must cost cycles")
	}
	// Coarser sampling sees fewer PCs.
	coarse := NewSampledProfiler(cache.P4L2, 1_000_000)
	for i := uint64(0); i < 5000; i++ {
		coarse.Ref(0xA, 0x3_0000_0000+i*4096, 8, false)
	}
	if len(coarse.DelinquentSet(0.90)) != 0 {
		t.Error("sample size beyond the miss count must see nothing")
	}
	if empty := NewSampledProfiler(cache.P4L2, 0); empty.sampleSize != 1 {
		t.Error("sample size 0 must clamp to 1")
	}
}
