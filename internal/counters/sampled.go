package counters

import (
	"sort"

	"umi/internal/cache"
)

// SampledProfiler models what interrupt-driven counter sampling can
// actually deliver for delinquent-load identification (§1.2: counters "add
// significant overhead to provide context-specific information, and
// gathering profiles at instruction granularity is an order of magnitude
// more expensive"). Every sampleSize-th L2 miss raises an interrupt whose
// handler records the program counter of the missing instruction; the
// resulting histogram is the PMU analogue of UMI's prediction set P.
//
// The profiler observes the ground-truth reference stream through a
// vm.RefHook and maintains its own L2 image (the same geometry as the
// hardware), so its miss attribution is exact up to the sampling — the
// best case for a PMU.
type SampledProfiler struct {
	l2         *cache.Cache
	sampleSize uint64
	missCount  uint64

	// Samples maps PC -> sampled miss count.
	Samples map[uint64]uint64
	// Interrupts counts handler invocations (each costs
	// SamplingModel.InterruptCycles).
	Interrupts uint64
	// Refs counts observed references.
	Refs uint64
}

// NewSampledProfiler builds a profiler for the given L2 geometry and
// counter sample size.
func NewSampledProfiler(l2 cache.Config, sampleSize uint64) *SampledProfiler {
	if sampleSize == 0 {
		sampleSize = 1
	}
	return &SampledProfiler{
		l2:         cache.New(l2),
		sampleSize: sampleSize,
		Samples:    make(map[uint64]uint64),
	}
}

// Ref observes one memory reference (vm.RefHook signature).
func (p *SampledProfiler) Ref(pc, addr uint64, size uint8, write bool) {
	p.Refs++
	if p.l2.Access(addr).Hit {
		return
	}
	p.missCount++
	if p.missCount%p.sampleSize == 0 {
		p.Interrupts++
		if !write {
			p.Samples[pc]++
		}
	}
}

// OverheadCycles returns the modelled profiling cost under the given
// sampling model.
func (p *SampledProfiler) OverheadCycles(m SamplingModel) uint64 {
	return p.Interrupts * m.InterruptCycles
}

// DelinquentSet returns the minimal set of sampled PCs covering the given
// fraction of sampled misses — the PMU counterpart of the paper's C/P
// construction.
func (p *SampledProfiler) DelinquentSet(coverage float64) map[uint64]bool {
	type rec struct {
		pc uint64
		n  uint64
	}
	var recs []rec
	var total uint64
	for pc, n := range p.Samples {
		recs = append(recs, rec{pc, n})
		total += n
	}
	set := make(map[uint64]bool)
	if total == 0 {
		return set
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].n != recs[j].n {
			return recs[i].n > recs[j].n
		}
		return recs[i].pc < recs[j].pc
	})
	need := uint64(coverage * float64(total))
	var acc uint64
	for _, r := range recs {
		if acc >= need {
			break
		}
		set[r.pc] = true
		acc += r.n
	}
	return set
}
