package workloads

import (
	"testing"

	"umi/internal/cache"
	"umi/internal/isa"
	"umi/internal/vm"
)

func TestRegistryComplete(t *testing.T) {
	counts := map[Suite]int{}
	for _, w := range All() {
		counts[w.Suite]++
	}
	want := map[Suite]int{
		CFP2000: 14, CINT2000: 12, Olden: 6, CFP2006: 7, CINT2006: 8,
		LinuxApps: 4,
	}
	for s, n := range want {
		if counts[s] != n {
			t.Errorf("%v: %d workloads, want %d", s, counts[s], n)
		}
	}
	if len(CPU2000AndOlden()) != 32 {
		t.Errorf("core collection = %d benchmarks, want 32 (the paper's count)",
			len(CPU2000AndOlden()))
	}
	if len(All()) != 51 {
		t.Errorf("total = %d, want 51", len(All()))
	}
}

func TestByNameAndNames(t *testing.T) {
	w, ok := ByName("181.mcf")
	if !ok || w.Name != "181.mcf" || w.Suite != CINT2000 {
		t.Fatalf("ByName(181.mcf) = %+v, %v", w, ok)
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName must fail for unknown names")
	}
	names := Names()
	if len(names) != len(All()) {
		t.Errorf("Names() = %d entries, want %d", len(names), len(All()))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

func TestProgramsAssembleAndValidate(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.Program()
			if err := p.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if p2 := w.Program(); p2 != p {
				t.Error("Program must cache the built instance")
			}
			if p.StaticLoads() == 0 || p.StaticStores() == 0 {
				t.Error("workload must contain loads and stores")
			}
		})
	}
}

// Every workload must include the reference classes the instrumentor
// filters: stack-relative and static, plus profilable heap references.
func TestWorkloadsContainFilterTargets(t *testing.T) {
	for _, w := range All() {
		p := w.Program()
		var stack, static, heap int
		for i := range p.Instrs {
			in := &p.Instrs[i]
			if !in.Op.IsLoad() && !in.Op.IsStore() {
				continue
			}
			switch {
			case in.Mem.IsStackRelative():
				stack++
			case in.Mem.IsStatic():
				static++
			default:
				heap++
			}
		}
		if stack == 0 {
			t.Errorf("%s: no stack-relative references", w.Name)
		}
		if heap == 0 {
			t.Errorf("%s: no profilable heap references", w.Name)
		}
		_ = static // a few generators (copy, tree, chase) legitimately omit them
	}
}

// TestLinuxAppsAreLowMiss checks §6.3's observation: the Linux application
// stand-ins all have very low hardware miss ratios.
func TestLinuxAppsAreLowMiss(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four workloads natively")
	}
	for _, w := range BySuite(LinuxApps) {
		h := cache.NewP4(false)
		m := vm.New(w.Program(), h)
		if err := m.Run(60_000_000); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if r := h.L2Stats.MissRatio(); r >= 0.01 {
			t.Errorf("%s: L2 miss ratio %.2f%%, must be < 1%% (§6.3)", w.Name, 100*r)
		}
	}
}

// TestMissRatioBands is the substitution contract (DESIGN.md §2): the
// CPU2000+Olden stand-ins must fall in the same high/low miss-ratio group
// as the paper's Table 6 reports for the originals, and the heavy hitters
// must keep their relative order.
func TestMissRatioBands(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full 32-benchmark suite")
	}
	ratios := make(map[string]float64)
	for _, w := range CPU2000AndOlden() {
		h := cache.NewP4(false)
		m := vm.New(w.Program(), h)
		if err := m.Run(60_000_000); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		ratios[w.Name] = 100 * h.L2Stats.MissRatio()
	}
	for _, w := range CPU2000AndOlden() {
		got := ratios[w.Name]
		if w.PaperMissPct >= 1.0 {
			if got < 1.0 {
				t.Errorf("%s: measured %.2f%% but the paper reports %.2f%% (high group)",
					w.Name, got, w.PaperMissPct)
			}
		} else if got >= 1.0 {
			t.Errorf("%s: measured %.2f%% but the paper reports %.2f%% (low group)",
				w.Name, got, w.PaperMissPct)
		}
	}
	// Heavy-hitter ordering from Table 6: ft > art > em3d > mcf > health > mst.
	order := []string{"ft", "179.art", "em3d", "181.mcf", "health", "mst"}
	for i := 1; i < len(order); i++ {
		if ratios[order[i-1]] <= ratios[order[i]] {
			t.Errorf("ordering violated: %s (%.2f%%) must exceed %s (%.2f%%)",
				order[i-1], ratios[order[i-1]], order[i], ratios[order[i]])
		}
	}
}

// The instrumentor filter must remove a substantial share of memory
// operations on these workloads (the paper reports ~80% filtered across
// the suite, i.e. ~19% profiled).
func TestFilterableFraction(t *testing.T) {
	for _, w := range CPU2000AndOlden() {
		p := w.Program()
		var filtered, total int
		for i := range p.Instrs {
			in := &p.Instrs[i]
			if !in.Op.IsLoad() && !in.Op.IsStore() {
				continue
			}
			total++
			if in.Mem.IsStackRelative() || in.Mem.IsStatic() {
				filtered++
			}
		}
		if total == 0 {
			t.Fatalf("%s: no memory ops", w.Name)
		}
		frac := float64(filtered) / float64(total)
		if frac < 0.05 {
			t.Errorf("%s: only %.1f%% of static memory ops filterable", w.Name, 100*frac)
		}
	}
}

func TestChaseRingIsHamiltonian(t *testing.T) {
	// The mcf chase must visit every node before repeating: run the
	// pointer loads and check the cycle length equals the node count.
	w, _ := ByName("em3d")
	p := w.Program()
	m := vm.New(p, nil)
	const nodes = 1 << 16
	seen := make(map[uint64]bool, nodes)
	ptr := uint64(0x1000_0000) // HeapBase: first node
	for i := 0; i < nodes; i++ {
		if seen[ptr] {
			t.Fatalf("cycle repeats after %d visits, want %d", i, nodes)
		}
		seen[ptr] = true
		ptr = m.Mem.Read(ptr, 8)
	}
	if ptr != 0x1000_0000 {
		t.Errorf("ring does not close: ended at %#x", ptr)
	}
}

func TestTreeaddSumCorrect(t *testing.T) {
	w, _ := ByName("treeadd")
	m := vm.New(w.Program(), nil)
	if err := m.Run(60_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Node values are 0..nodes-1 laid out at creation: the recursive sum
	// must equal n(n-1)/2 with n = 2^12 - 1.
	n := uint64(1<<12 - 1)
	want := n * (n - 1) / 2
	if got := m.Regs[isa.R0]; got != want {
		t.Errorf("tree sum = %d, want %d", got, want)
	}
}

func TestSuiteString(t *testing.T) {
	if CFP2000.String() != "CFP2000" || Olden.String() != "Olden" {
		t.Error("Suite.String broken")
	}
	if Suite(99).String() == "" {
		t.Error("unknown suite must format")
	}
}
