package workloads

// Linux desktop/server application stand-ins (§6.3: "Our extended
// benchmark collection includes ... several commonly used Linux
// applications such as Adobe Acrobat, Apache, MEncoder, and MySQL. We
// found the HW measured miss ratios to be very low for the Linux
// applications."). These generators model that profile: large code bases
// (huge cold-block populations), very branchy execution, small resident
// working sets, and the occasional cold touch — miss ratios well under 1%.

func init() {
	register("apache", LinuxApps, "request dispatch over resident state", 0,
		controlGen("apache", controlCfg{
			loops: 60, iters: 250, reps: 20,
			conflictLines: 8, coldEvery: 8, coldLines: 1, callEvery: 4,
			coldBlocks: 520, seed: 48,
		}))
	register("mysql", LinuxApps, "B-tree walks in a warm buffer pool", 0,
		chaseGen("mysql", chaseCfg{
			nodes: 1 << 12, nodeBytes: 64, payload: 2,
			hotLoads: 10, visits: 220_000,
			coldBlocks: 640, seed: 49,
		}))
	register("mencoder", LinuxApps, "media transcode, resident blocks", 0,
		streamGen("mencoder", streamCfg{
			arrays: 1, streamElems: 1 << 18, scatterLoads: 0,
			hotLoads: 3, innerIters: 384, outerIters: 400, compute: 3,
			coldBlocks: 260, seed: 50,
		}))
	register("acroread", LinuxApps, "document render, huge cold code", 0,
		controlGen("acroread", controlCfg{
			loops: 45, iters: 300, reps: 22,
			conflictLines: 8, coldEvery: 16, coldLines: 1, callEvery: 4,
			coldBlocks: 900, seed: 51,
		}))
}
