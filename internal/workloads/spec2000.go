package workloads

// SPEC CPU2000 stand-ins. Each registration names the original benchmark,
// its behaviour class, and the L2 miss ratio the paper's Table 6 reports
// for it; generator parameters are tuned so the ground-truth ratio lands in
// the same band (high >= 1% vs low < 1%) with the same rank ordering among
// the heavy hitters. Instruction counts target a few million per run so the
// whole suite is tractable under repeated simulation.
//
// streamGen ratio guide: (arrays + scatterLoads) / (arrays + scatterLoads
// + hotLoads*innerIters); chaseGen: 1 / (1 + hotLoads).

func init() {
	// ---- CFP2000: loop-intensive array codes ----
	register("168.wupwise", CFP2000, "array sweeps, low miss", 0.82,
		streamGen("168.wupwise", streamCfg{
			arrays: 1, streamElems: 1 << 19, scatterLoads: 1,
			hotLoads:   2,
			innerIters: 160, outerIters: 1200, compute: 2,
			coldBlocks: 32, seed: 1,
		}))
	register("171.swim", CFP2000, "multi-array stencil, streaming", 4.71,
		streamGen("171.swim", streamCfg{
			arrays: 2, streamElems: 1 << 19, scatterLoads: 1,
			hotLoads:   2,
			innerIters: 32, outerIters: 6000, compute: 1,
			coldBlocks: 30, seed: 2,
		}))
	register("172.mgrid", CFP2000, "multigrid relaxation", 1.30,
		streamGen("172.mgrid", streamCfg{
			arrays: 1, streamElems: 1 << 19, scatterLoads: 1,
			hotLoads:   2,
			innerIters: 64, outerIters: 4000, compute: 1,
			coldBlocks: 26, seed: 3,
		}))
	register("173.applu", CFP2000, "PDE solver, several streams", 1.26,
		streamGen("173.applu", streamCfg{
			arrays: 2, streamElems: 1 << 18, scatterLoads: 1,
			hotLoads:   3,
			innerIters: 64, outerIters: 2500, compute: 2,
			coldBlocks: 54, seed: 4,
		}))
	register("177.mesa", CFP2000, "resident compute, near-zero miss", 0.02,
		streamGen("177.mesa", streamCfg{
			arrays: 1, streamElems: 1 << 18, scatterLoads: 0,
			hotLoads:   2,
			innerIters: 512, outerIters: 350, compute: 4,
			coldBlocks: 36, seed: 5,
		}))
	register("178.galgel", CFP2000, "phased fluid dynamics", 1.93,
		phasedGen("178.galgel", phasedCfg{
			streamElems: 1 << 15, residentLds: 1,
			phaseIters: 320_000, phases: 2,
			coldBlocks: 125, seed: 6,
		}))
	register("179.art", CFP2000, "neural net, scattered gathers", 27.13,
		gatherGen("179.art", gatherCfg{
			tableElems: 1 << 20, idxElems: 1 << 17, hotFrac: 0.3,
			hotLoads: 1, reps: 2,
			coldBlocks: 16, seed: 7,
		}))
	register("183.equake", CFP2000, "sparse solver, streaming", 3.83,
		streamGen("183.equake", streamCfg{
			arrays: 1, streamElems: 1 << 19, scatterLoads: 1,
			hotLoads:   1,
			innerIters: 64, outerIters: 4500, compute: 1,
			coldBlocks: 26, seed: 8,
		}))
	register("187.facerec", CFP2000, "image sweeps, mostly resident", 0.83,
		streamGen("187.facerec", streamCfg{
			arrays: 1, streamElems: 1 << 19, scatterLoads: 1,
			hotLoads:   2,
			innerIters: 160, outerIters: 1200, compute: 2,
			coldBlocks: 48, seed: 9,
		}))
	register("188.ammp", CFP2000, "molecular dynamics", 1.48,
		streamGen("188.ammp", streamCfg{
			arrays: 1, streamElems: 1 << 19, scatterLoads: 1,
			hotLoads:   2,
			innerIters: 64, outerIters: 3000, compute: 2,
			coldBlocks: 34, seed: 10,
		}))
	register("189.lucas", CFP2000, "FFT-style sweeps", 1.12,
		streamGen("189.lucas", streamCfg{
			arrays: 1, streamElems: 1 << 19, scatterLoads: 1,
			hotLoads:   3,
			innerIters: 48, outerIters: 3500, compute: 2,
			coldBlocks: 38, seed: 11,
		}))
	register("191.fma3d", CFP2000, "finite elements, mixed locality", 1.73,
		streamGen("191.fma3d", streamCfg{
			arrays: 2, streamElems: 1 << 18, scatterLoads: 1,
			hotLoads:   2,
			innerIters: 64, outerIters: 2800, compute: 2,
			coldBlocks: 78, seed: 12,
		}))
	register("200.sixtrack", CFP2000, "particle tracking, resident", 0.12,
		streamGen("200.sixtrack", streamCfg{
			arrays: 1, streamElems: 1 << 18, scatterLoads: 0,
			hotLoads:   2,
			innerIters: 256, outerIters: 700, compute: 4,
			coldBlocks: 238, seed: 13,
		}))
	register("301.apsi", CFP2000, "phased weather model", 1.07,
		phasedGen("301.apsi", phasedCfg{
			streamElems: 1 << 14, residentLds: 1,
			phaseIters: 400_000, phases: 2,
			coldBlocks: 130, seed: 14,
		}))

	// ---- CINT2000: control-intensive codes ----
	register("164.gzip", CINT2000, "byte copy dominates misses", 0.06,
		copyGen("164.gzip", copyCfg{
			bufBytes: 1 << 17, reps: 6,
			hotLoads:   1,
			coldBlocks: 30, seed: 15,
		}))
	register("175.vpr", CINT2000, "place-and-route loops", 0.92,
		controlGen("175.vpr", controlCfg{
			loops: 30, iters: 400, reps: 25,
			conflictLines: 8, coldEvery: 1, coldLines: 3, callEvery: 4,
			coldBlocks: 92, seed: 16,
		}))
	register("176.gcc", CINT2000, "very many lukewarm loops", 0.48,
		controlGen("176.gcc", controlCfg{
			loops: 100, iters: 120, reps: 25,
			conflictLines: 8, coldEvery: 4, coldLines: 1, callEvery: 4,
			coldBlocks: 700, seed: 17,
		}))
	register("181.mcf", CINT2000, "pointer-chasing network simplex", 20.10,
		chaseGen("181.mcf", chaseCfg{
			nodes: 1 << 16, nodeBytes: 64, payload: 2,
			hotLoads: 3, visits: 260_000,
			coldBlocks: 29, seed: 18,
		}))
	register("186.crafty", CINT2000, "chess search, tiny working set", 0.03,
		controlGen("186.crafty", controlCfg{
			loops: 40, iters: 300, reps: 30,
			conflictLines: 8, coldEvery: 16, coldLines: 1, callEvery: 4,
			coldBlocks: 188, seed: 19,
		}))
	register("197.parser", CINT2000, "many short dynamic loops", 0.50,
		controlGen("197.parser", controlCfg{
			loops: 60, iters: 150, reps: 30,
			conflictLines: 8, coldEvery: 2, coldLines: 1, callEvery: 4,
			coldBlocks: 156, seed: 20,
		}))
	register("252.eon", CINT2000, "ray tracing, perfect locality", 0.00,
		controlGen("252.eon", controlCfg{
			loops: 30, iters: 300, reps: 30,
			conflictLines: 8, coldEvery: 0, callEvery: 4,
			coldBlocks: 238, seed: 21,
		}))
	register("253.perlbmk", CINT2000, "interpreter dispatch", 0.15,
		controlGen("253.perlbmk", controlCfg{
			loops: 70, iters: 200, reps: 25,
			conflictLines: 8, coldEvery: 16, coldLines: 1, callEvery: 4,
			coldBlocks: 300, seed: 22,
		}))
	register("254.gap", CINT2000, "group theory interpreter", 0.33,
		controlGen("254.gap", controlCfg{
			loops: 60, iters: 200, reps: 25,
			conflictLines: 8, coldEvery: 4, coldLines: 1, callEvery: 4,
			coldBlocks: 225, seed: 23,
		}))
	register("255.vortex", CINT2000, "OO database, large code", 0.19,
		controlGen("255.vortex", controlCfg{
			loops: 50, iters: 250, reps: 25,
			conflictLines: 8, coldEvery: 8, coldLines: 1, callEvery: 4,
			coldBlocks: 450, seed: 24,
		}))
	register("256.bzip2", CINT2000, "block compression", 0.89,
		controlGen("256.bzip2", controlCfg{
			loops: 20, iters: 500, reps: 20,
			conflictLines: 8, coldEvery: 1, coldLines: 4, callEvery: 4,
			coldBlocks: 41, seed: 25,
		}))
	register("300.twolf", CINT2000, "placement annealing", 1.78,
		controlGen("300.twolf", controlCfg{
			loops: 40, iters: 300, reps: 20,
			conflictLines: 8, coldEvery: 1, coldLines: 5, callEvery: 4,
			coldBlocks: 156, seed: 26,
		}))
}
