package workloads

// Olden and Ptrdist stand-ins: the pointer-intensive codes of §6. The
// paper keeps ft (Ptrdist) in the Olden group "for convenience"; so do we.

func init() {
	register("em3d", Olden, "electromagnetic graph chase", 24.49,
		chaseGen("em3d", chaseCfg{
			nodes: 1 << 16, nodeBytes: 64, payload: 1,
			hotLoads: 2, visits: 300_000,
			coldBlocks: 12, seed: 27,
		}))
	register("health", Olden, "hospital queue lists", 12.44,
		chaseGen("health", chaseCfg{
			nodes: 1 << 15, nodeBytes: 64, payload: 2,
			hotLoads: 7, visits: 150_000,
			coldBlocks: 17, seed: 28,
		}))
	register("mst", Olden, "minimum spanning tree hash walks", 7.53,
		chaseGen("mst", chaseCfg{
			nodes: 1 << 15, nodeBytes: 64, payload: 1,
			hotLoads: 12, visits: 100_000,
			coldBlocks: 11, seed: 29,
		}))
	register("treeadd", Olden, "recursive binary tree sum", 1.90,
		treeGen("treeadd", treeCfg{
			depth: 12, reps: 24,
			coldBlocks: 10, seed: 30,
		}))
	register("tsp", Olden, "tour construction over node lists", 1.12,
		chaseGen("tsp", chaseCfg{
			nodes: 1 << 14, nodeBytes: 64, payload: 3,
			hotLoads: 14, visits: 90_000,
			coldBlocks: 18, seed: 31,
		}))
	register("ft", Olden, "field traversal, maximally memory-bound", 49.63,
		streamGen("ft", streamCfg{
			arrays: 2, streamElems: 1 << 19, scatterLoads: 1,
			hotLoads:   1,
			innerIters: 1, outerIters: 110_000, compute: 0,
			coldBlocks: 15, seed: 32,
		}))
}
