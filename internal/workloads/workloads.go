// Package workloads provides the reproduction's benchmark suite: synthetic
// guest programs standing in for SPEC CPU2000, SPEC CPU2006 (the non-
// overlapping subset of §6.3), Olden, and Ptrdist's ft.
//
// The substitution rule (DESIGN.md): each named workload is built from a
// parameterized generator chosen to match the published behaviour class of
// the original — loop-intensive array sweeps for CFP2000, control-intensive
// code with irregular access for CINT2000, pointer chasing for Olden — and
// its parameters are tuned so the ground-truth L2 miss ratio lands in the
// band Table 6 reports (e.g. art ~27%, mcf ~20%, eon ~0%). What the
// evaluation needs from the suite is exactly this spread of miss ratios and
// access-pattern classes, not SPEC's instruction mix.
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"umi/internal/program"
)

// Suite groups workloads the way the paper's tables do.
type Suite int

// Benchmark suites.
const (
	CFP2000 Suite = iota
	CINT2000
	Olden // includes Ptrdist's ft, "for convenience" as in §6.2
	CFP2006
	CINT2006
	LinuxApps // §6.3's desktop/server applications
)

var suiteNames = map[Suite]string{
	CFP2000:   "CFP2000",
	CINT2000:  "CINT2000",
	Olden:     "Olden",
	CFP2006:   "CFP2006",
	CINT2006:  "CINT2006",
	LinuxApps: "LinuxApps",
}

func (s Suite) String() string {
	if n, ok := suiteNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Suite(%d)", int(s))
}

// Workload is one named benchmark.
type Workload struct {
	Name  string
	Suite Suite
	// Class describes the behaviour class the generator mimics.
	Class string
	// PaperMissPct is the L2 miss ratio Table 6 reports for the original
	// (CPU2000/Olden only; 0 when the paper gives none). Used to check
	// band alignment, never as a target to fake.
	PaperMissPct float64
	build        func() *program.Program
	buildOnce    sync.Once
	prog         *program.Program // built lazily, cached
}

// Program returns the workload's assembled program, building it on first
// use. Programs are immutable; the cached instance is shared, and the
// build is once-guarded so concurrent experiment cells can request the
// same workload.
func (w *Workload) Program() *program.Program {
	w.buildOnce.Do(func() { w.prog = w.build() })
	return w.prog
}

var registry []*Workload

func register(name string, suite Suite, class string, paperMiss float64, build func() *program.Program) {
	registry = append(registry, &Workload{
		Name: name, Suite: suite, Class: class, PaperMissPct: paperMiss, build: build,
	})
}

// All returns every registered workload in registration order (CFP2000,
// then CINT2000, then Olden, then the 2006 suites — the paper's ordering).
func All() []*Workload { return registry }

// CPU2000AndOlden returns the paper's core 32-benchmark collection.
func CPU2000AndOlden() []*Workload {
	var out []*Workload
	for _, w := range registry {
		switch w.Suite {
		case CFP2000, CINT2000, Olden:
			out = append(out, w)
		}
	}
	return out
}

// BySuite returns the workloads of one suite.
func BySuite(s Suite) []*Workload {
	var out []*Workload
	for _, w := range registry {
		if w.Suite == s {
			out = append(out, w)
		}
	}
	return out
}

// ByName looks a workload up by name.
func ByName(name string) (*Workload, bool) {
	for _, w := range registry {
		if w.Name == name {
			return w, true
		}
	}
	return nil, false
}

// Names returns all workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for _, w := range registry {
		out = append(out, w.Name)
	}
	sort.Strings(out)
	return out
}
