package workloads

// SPEC CPU2006 stand-ins: the non-overlapping subset evaluated in §6.3 for
// Table 5. The paper reports no per-benchmark miss ratios for these, so
// PaperMissPct is 0; the generators span the same locality spectrum as the
// 2000 suite.

func init() {
	// ---- CFP2006 ----
	register("433.milc", CFP2006, "lattice QCD sweeps", 0,
		streamGen("433.milc", streamCfg{
			arrays: 1, streamElems: 1 << 19, scatterLoads: 1,
			hotLoads:   1,
			innerIters: 48, outerIters: 5000, compute: 1,
			coldBlocks: 39, seed: 33,
		}))
	register("435.gromacs", CFP2006, "molecular dynamics, resident", 0,
		streamGen("435.gromacs", streamCfg{
			arrays: 1, streamElems: 1 << 18, scatterLoads: 1,
			hotLoads:   3,
			innerIters: 96, outerIters: 1200, compute: 3,
			coldBlocks: 65, seed: 34,
		}))
	register("444.namd", CFP2006, "particle interactions, resident", 0,
		streamGen("444.namd", streamCfg{
			arrays: 1, streamElems: 1 << 18, scatterLoads: 0,
			hotLoads:   3,
			innerIters: 192, outerIters: 600, compute: 4,
			coldBlocks: 53, seed: 35,
		}))
	register("450.soplex", CFP2006, "sparse LP, streaming", 0,
		streamGen("450.soplex", streamCfg{
			arrays: 2, streamElems: 1 << 18, scatterLoads: 1,
			hotLoads:   2,
			innerIters: 32, outerIters: 5500, compute: 1,
			coldBlocks: 80, seed: 36,
		}))
	register("453.povray", CFP2006, "ray tracing, tiny working set", 0,
		controlGen("453.povray", controlCfg{
			loops: 35, iters: 300, reps: 28,
			conflictLines: 8, coldEvery: 8, coldLines: 1, callEvery: 4,
			coldBlocks: 138, seed: 37,
		}))
	register("470.lbm", CFP2006, "lattice Boltzmann, heavy streaming", 0,
		streamGen("470.lbm", streamCfg{
			arrays: 2, streamElems: 1 << 19, scatterLoads: 1,
			hotLoads:   1,
			innerIters: 8, outerIters: 20000, compute: 0,
			coldBlocks: 18, seed: 38,
		}))
	register("482.sphinx3", CFP2006, "speech decoding gathers", 0,
		gatherGen("482.sphinx3", gatherCfg{
			tableElems: 1 << 19, idxElems: 1 << 16, hotFrac: 0.85,
			hotLoads: 1, reps: 3,
			coldBlocks: 60, seed: 39,
		}))

	// ---- CINT2006 ----
	register("445.gobmk", CINT2006, "go engine, branchy resident", 0,
		controlGen("445.gobmk", controlCfg{
			loops: 50, iters: 220, reps: 25,
			conflictLines: 8, coldEvery: 4, coldLines: 1, callEvery: 4,
			coldBlocks: 213, seed: 40,
		}))
	register("456.hmmer", CINT2006, "profile HMM sweeps", 0,
		streamGen("456.hmmer", streamCfg{
			arrays: 1, streamElems: 1 << 18, scatterLoads: 1,
			hotLoads:   2,
			innerIters: 96, outerIters: 1800, compute: 2,
			coldBlocks: 48, seed: 41,
		}))
	register("458.sjeng", CINT2006, "chess search, branchy", 0,
		controlGen("458.sjeng", controlCfg{
			loops: 45, iters: 250, reps: 25,
			conflictLines: 8, coldEvery: 4, coldLines: 1, callEvery: 4,
			coldBlocks: 163, seed: 42,
		}))
	register("462.libquantum", CINT2006, "quantum register streaming", 0,
		gatherGen("462.libquantum", gatherCfg{
			tableElems: 1 << 20, idxElems: 1 << 17, hotFrac: 0.0,
			hotLoads: 0, reps: 2,
			coldBlocks: 20, seed: 43,
		}))
	register("464.h264ref", CINT2006, "video motion estimation", 0,
		streamGen("464.h264ref", streamCfg{
			arrays: 1, streamElems: 1 << 18, scatterLoads: 1,
			hotLoads:   3,
			innerIters: 48, outerIters: 3000, compute: 2,
			coldBlocks: 110, seed: 44,
		}))
	register("471.omnetpp", CINT2006, "event queues, pointer heavy", 0,
		chaseGen("471.omnetpp", chaseCfg{
			nodes: 1 << 16, nodeBytes: 64, payload: 2,
			hotLoads: 5, visits: 180_000,
			coldBlocks: 113, seed: 45,
		}))
	register("473.astar", CINT2006, "path search, pointer heavy", 0,
		chaseGen("473.astar", chaseCfg{
			nodes: 1 << 15, nodeBytes: 64, payload: 2,
			hotLoads: 9, visits: 130_000,
			coldBlocks: 53, seed: 46,
		}))
	register("483.xalancbmk", CINT2006, "XML transform, many loops", 0,
		controlGen("483.xalancbmk", controlCfg{
			loops: 80, iters: 150, reps: 18,
			conflictLines: 8, coldEvery: 1, coldLines: 2, callEvery: 4,
			coldBlocks: 363, seed: 47,
		}))
}
