package workloads

import (
	"fmt"
	"math/rand"

	"umi/internal/isa"
	"umi/internal/program"
)

// Generator register conventions (kept uniform so generated code is easy
// to audit):
//
//	R0  loop index            R1  pointer / loaded value
//	R2  primary (stream) base R3  scratch value
//	R4  secondary value       R5  hot-region base
//	R6  limit                 R7  accumulator
//	R8  outer rep counter     R9  outer rep limit
//	R10-R12 temporaries
//
// Every generator folds in the reference patterns UMI's instrumentor must
// cope with: heap references through registers (profiled), stack
// references through SP/BP (filtered), and static absolute references
// (filtered). Cold, never-executed library blocks inflate the static
// load/store population the way real binaries do, so Table 3's
// "% profiled" is measured against a realistic denominator.
//
// Miss-ratio engineering: the ground-truth L2 miss ratio is L2 misses over
// L2 accesses, and L2 accesses are L1 misses. Generators therefore mix two
// kinds of line-granular traffic:
//
//   - "hot" loads cycle a conflict set of 8 lines spaced 32 KiB apart.
//     32 KiB is a multiple of both the P4 L1 set stride (2 KiB) and the
//     K7 L1 set stride (32 KiB), so the 8 lines share one L1 set on both
//     platforms and exceed any L1 associativity: every access misses L1
//     and hits L2. Because only 8 lines are live, the analyzer's logical
//     cache absorbs them within a few profile rows — hot loads look
//     resident to the mini-simulator, as real medium-reuse loads do;
//   - "stream" and "scatter" loads touch fresh lines far beyond L2 —
//     every one misses both levels.
const (
	hotBase    = program.GlobalBase        // hot (L2-resident) region
	staticCell = program.GlobalBase - 4096 // target of static refs

	// Conflict-set geometry for hot loads (see the package comment).
	conflictSetLines  = 8
	conflictStrideEls = 4096   // 32 KiB in 8-byte elements
	conflictSlotBytes = 262720 // per-load sub-region: 8*32 KiB + 9 lines of skew
)

// emitConflictLoad appends a hot conflict-set load: index register tmp is
// derived from counter (which must advance by 1 per iteration), cycling
// conflictSetLines lines spaced one conflict stride apart, in the j-th
// sub-region of the hot region.
func emitConflictLoad(blk *program.BlockBuilder, counter isa.Reg, j int) {
	blk.AndI(isa.R12, counter, conflictSetLines-1)
	blk.MulI(isa.R12, isa.R12, conflictStrideEls)
	blk.Load(isa.R4, 8, isa.MemIdx(isa.R5, isa.R12, 8, int64(j)*conflictSlotBytes))
	blk.Add(isa.R7, isa.R7, isa.R4)
}

// emitColdLibrary appends unreachable blocks full of memory operations,
// modelling the cold bulk of a real binary (error paths, init code,
// library functions the input never exercises).
func emitColdLibrary(b *program.Builder, blocks int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < blocks; i++ {
		blk := b.Block(fmt.Sprintf("cold_%d", i))
		n := 3 + r.Intn(6)
		for j := 0; j < n; j++ {
			reg := isa.Reg(r.Intn(12))
			base := isa.Reg(r.Intn(12))
			disp := int64(r.Intn(4096))
			switch r.Intn(4) {
			case 0:
				blk.Load(reg, 8, isa.Mem(base, disp))
			case 1:
				blk.Store(reg, 8, isa.Mem(base, disp))
			case 2:
				blk.Load(reg, 4, isa.Mem(isa.SP, int64(r.Intn(128))))
			default:
				blk.AddI(reg, base, disp)
			}
		}
		blk.Ret()
	}
}

// emitFrameOps adds the stack traffic of a compiled loop body: a spill and
// a reload through the frame pointer. These are exactly the references the
// paper's filter skips.
func emitFrameOps(blk *program.BlockBuilder) {
	blk.Store(isa.R3, 8, isa.Mem(isa.BP, -8))
	blk.Load(isa.R10, 8, isa.Mem(isa.BP, -8))
}

// emitStaticRef adds a load from an absolute address (a global counter in
// a real program) — also filtered.
func emitStaticRef(blk *program.BlockBuilder) {
	blk.Load(isa.R10, 8, isa.MemAbs(staticCell))
}

// emitPrologue establishes a stack frame.
func emitPrologue(blk *program.BlockBuilder) {
	blk.AddI(isa.SP, isa.SP, -64)
	blk.Mov(isa.BP, isa.SP)
}

func pow2Mask(n int64) int64 {
	m := int64(1)
	for m < n {
		m <<= 1
	}
	return m - 1
}

// streamCfg parameterizes array-sweep loop nests (the CFP2000 shape): an
// outer loop advances strided stream loads (and hash-scattered loads) one
// cache line per iteration, while a hot inner loop generates L2-hitting
// traffic. Delinquent loads therefore live in hot, frequently executed
// code with high per-load miss ratios — as in real FP codes — while the
// whole-program L2 miss ratio stays low:
//
//	ratio ≈ (arrays + scatterLoads) /
//	        (arrays + scatterLoads + hotLoads*innerIters)
type streamCfg struct {
	arrays       int   // strided stream loads per outer iteration
	streamElems  int64 // per-array footprint in 8-byte elements (power of two)
	scatterLoads int   // hash-scattered (unprefetchable) loads per outer iteration
	hotLoads     int   // hot conflict-set loads per inner iteration
	innerIters   int64 // inner-loop iterations per outer iteration
	outerIters   int64 // outer-loop iterations
	compute      int   // extra ALU pairs per inner iteration
	coldBlocks   int
	seed         int64
}

// streamGen builds the loop nest described on streamCfg.
//
// Register plan: R0 inner index, R1 outer index, R11 persistent hot-sweep
// index (continues across inner-loop entries so hot loads keep missing L1
// at line granularity).
func streamGen(name string, c streamCfg) func() *program.Program {
	return func() *program.Program {
		b := program.NewBuilder(name)
		streamMask := pow2Mask(c.streamElems)
		arrayBytes := (streamMask + 1) * 8

		e := b.Block("entry")
		emitPrologue(e)
		e.MovI(isa.R2, int64(program.HeapBase))
		e.MovI(isa.R5, int64(hotBase))
		e.MovI(isa.R6, c.innerIters)
		e.MovI(isa.R9, c.outerIters)
		e.MovI(isa.R1, 0)
		e.MovI(isa.R11, 0)
		outer := b.Block("outer")
		// Strided stream loads: one fresh cache line per outer iteration.
		outer.MulI(isa.R12, isa.R1, 8)
		outer.AndI(isa.R12, isa.R12, streamMask)
		for k := 0; k < c.arrays; k++ {
			outer.Load(isa.R3, 8, isa.MemIdx(isa.R2, isa.R12, 8, int64(k)*arrayBytes))
			outer.Add(isa.R7, isa.R7, isa.R3)
		}
		// Write stream into the first array (same line as the load).
		if c.arrays > 0 {
			outer.Store(isa.R7, 8, isa.MemIdx(isa.R2, isa.R12, 8, 0))
		}
		for k := 0; k < c.scatterLoads; k++ {
			// Fibonacci-hash the outer index: no stride for any
			// prefetcher to follow. The region sits past the arrays.
			outer.MulI(isa.R12, isa.R1, 0x9E3779B1+int64(k)*0x1003F)
			outer.ShrI(isa.R12, isa.R12, 9)
			outer.AndI(isa.R12, isa.R12, streamMask)
			outer.Load(isa.R3, 8, isa.MemIdx(isa.R2, isa.R12, 8, int64(c.arrays)*arrayBytes))
			outer.Add(isa.R7, isa.R7, isa.R3)
		}
		emitStaticRef(outer)
		outer.MovI(isa.R0, 0)
		inner := b.Block("inner")
		for j := 0; j < c.hotLoads; j++ {
			emitConflictLoad(inner, isa.R11, j)
		}
		for i := 0; i < c.compute; i++ {
			inner.Mul(isa.R7, isa.R7, isa.R7)
			inner.AddI(isa.R7, isa.R7, 1)
		}
		emitFrameOps(inner)
		inner.AddI(isa.R11, isa.R11, 1) // next conflict slot
		inner.AddI(isa.R0, isa.R0, 1)
		inner.Br(isa.CondLT, isa.R0, isa.R6, "inner")
		fin := b.Block("outerend")
		fin.AddI(isa.R1, isa.R1, 1)
		fin.Br(isa.CondLT, isa.R1, isa.R9, "outer")
		b.Block("done").Halt()
		emitColdLibrary(b, c.coldBlocks, c.seed)
		return b.MustAssemble()
	}
}

// chaseCfg parameterizes pointer-chasing kernels (Olden, mcf).
type chaseCfg struct {
	nodes      int   // linked ring length
	nodeBytes  int64 // node size (power of two >= 16)
	payload    int   // extra same-node loads per visit (L1 hits)
	hotLoads   int   // hot conflict-set loads per visit (L2 hits), dilutes ratio
	visits     int64 // total pointer dereferences
	coldBlocks int
	seed       int64
}

// chaseGen builds a random linked-ring traversal. The chase itself misses
// both levels once its footprint exceeds L2; hotLoads add L2-hitting
// traffic to dial the overall ratio down.
func chaseGen(name string, c chaseCfg) func() *program.Program {
	return func() *program.Program {
		b := program.NewBuilder(name)
		r := rand.New(rand.NewSource(c.seed))
		perm := r.Perm(c.nodes)
		next := make([]int, c.nodes)
		for i := 0; i < c.nodes; i++ {
			next[perm[i]] = perm[(i+1)%c.nodes]
		}
		stride := c.nodeBytes / 8
		words := make([]uint64, int64(c.nodes)*stride)
		for i := 0; i < c.nodes; i++ {
			words[int64(i)*stride] = program.HeapBase + uint64(int64(next[i])*c.nodeBytes)
			for f := int64(1); f < stride; f++ {
				words[int64(i)*stride+f] = uint64(r.Intn(1 << 16))
			}
		}
		b.AddWords(program.HeapBase, words)

		e := b.Block("entry")
		emitPrologue(e)
		e.MovI(isa.R1, int64(program.HeapBase))
		e.MovI(isa.R5, int64(hotBase))
		e.MovI(isa.R0, 0)
		e.MovI(isa.R6, c.visits)
		l := b.Block("loop")
		for f := 0; f < c.payload; f++ {
			l.Load(isa.R3, 8, isa.Mem(isa.R1, int64(f+1)*8))
			l.Add(isa.R7, isa.R7, isa.R3)
		}
		for j := 0; j < c.hotLoads; j++ {
			emitConflictLoad(l, isa.R0, j)
		}
		emitFrameOps(l)
		l.Load(isa.R1, 8, isa.Mem(isa.R1, 0)) // the chase
		l.AddI(isa.R0, isa.R0, 1)
		l.Br(isa.CondLT, isa.R0, isa.R6, "loop")
		b.Block("done").Halt()
		emitColdLibrary(b, c.coldBlocks, c.seed+1)
		return b.MustAssemble()
	}
}

// gatherCfg parameterizes index-gather kernels (art-like streaming with
// indirection).
type gatherCfg struct {
	tableElems int64 // 8-byte table entries
	idxElems   int64 // power of two
	hotFrac    float64
	hotLoads   int
	reps       int64
	coldBlocks int
	seed       int64
}

// gatherGen builds idx-array gathers: load index sequentially, then load
// table[index].
func gatherGen(name string, c gatherCfg) func() *program.Program {
	return func() *program.Program {
		b := program.NewBuilder(name)
		r := rand.New(rand.NewSource(c.seed))
		idx := make([]uint64, c.idxElems)
		hot := int64(float64(c.tableElems) * 0.02)
		if hot < 1 {
			hot = 1
		}
		for i := range idx {
			if r.Float64() < c.hotFrac {
				idx[i] = uint64(r.Int63n(hot))
			} else {
				idx[i] = uint64(r.Int63n(c.tableElems))
			}
		}
		idxBase := program.HeapBase
		tableBase := (program.HeapBase + uint64(c.idxElems*8) + 4095) &^ 4095
		b.AddWords(idxBase, idx)

		e := b.Block("entry")
		emitPrologue(e)
		e.MovI(isa.R2, int64(idxBase))
		e.MovI(isa.R3, int64(tableBase))
		e.MovI(isa.R5, int64(hotBase))
		e.MovI(isa.R6, c.idxElems)
		e.MovI(isa.R8, 0)
		e.MovI(isa.R9, c.reps)
		rep := b.Block("rep")
		rep.MovI(isa.R0, 0)
		l := b.Block("loop")
		l.Load(isa.R1, 8, isa.MemIdx(isa.R2, isa.R0, 8, 0)) // sequential index load
		l.Load(isa.R4, 8, isa.MemIdx(isa.R3, isa.R1, 8, 0)) // the gather
		l.Add(isa.R7, isa.R7, isa.R4)
		for j := 0; j < c.hotLoads; j++ {
			emitConflictLoad(l, isa.R0, j)
		}
		emitFrameOps(l)
		emitStaticRef(l)
		l.AddI(isa.R0, isa.R0, 1)
		l.Br(isa.CondLT, isa.R0, isa.R6, "loop")
		fin := b.Block("repend")
		fin.AddI(isa.R8, isa.R8, 1)
		fin.Br(isa.CondLT, isa.R8, isa.R9, "rep")
		b.Block("done").Halt()
		emitColdLibrary(b, c.coldBlocks, c.seed+2)
		return b.MustAssemble()
	}
}

// controlCfg parameterizes control-intensive kernels (the CINT2000 shape):
// many distinct small loops with data-dependent branches over a shared
// working set.
type controlCfg struct {
	loops int   // distinct loop bodies (distinct traces)
	iters int64 // iterations per loop per chain pass
	reps  int64 // chain passes
	// conflictLines (power of two): each loop cycles over this many
	// cache lines spaced one L1-set stride apart. With more lines than
	// L1 ways, every access conflict-misses L1 and hits L2 — the "many
	// L2 accesses, almost no L2 misses" signature of CINT codes.
	conflictLines int64
	// coldEvery (power of two, 0 = never): on the first iteration of a
	// loop visit, every coldEvery-th chain pass, the loop touches
	// coldLines hash-scattered lines of a large cold region — the rare,
	// unprefetchable L2 misses that set CINT's low ratios.
	coldEvery int64
	coldLines int
	// callEvery (power of two, 0 = never): every Nth iteration calls a
	// tiny shared helper, giving the code the call/return density (and
	// the runtime the indirect-branch lookups) of real CINT binaries.
	callEvery  int64
	coldBlocks int
	seed       int64
}

// controlGen builds a chain of loops, each cycling an L1 conflict set with
// alternating branch paths.
func controlGen(name string, c controlCfg) func() *program.Program {
	return func() *program.Program {
		b := program.NewBuilder(name)
		conflict := c.conflictLines
		if conflict < 8 {
			conflict = 8
		}
		// Lines one conflict stride (32 KiB) apart share an L1 set on
		// both evaluation platforms (2 KiB P4 and 32 KiB K7 set
		// strides divide it), so cycling >= 8 of them defeats either
		// associativity while staying L2-resident.
		const setStrideElems = conflictStrideEls
		const coldRegion = program.HeapBase + 1<<28 // far from the warm lines

		e := b.Block("entry")
		emitPrologue(e)
		e.MovI(isa.R2, int64(program.HeapBase))
		e.MovI(isa.R5, int64(coldRegion))
		e.MovI(isa.R6, c.iters)
		e.MovI(isa.R7, 0)
		e.MovI(isa.R8, 0)
		e.MovI(isa.R9, c.reps)
		b.Block("rep") // chain head; falls through to pre_0
		for k := 0; k < c.loops; k++ {
			// One conflict slot per loop: 8 lines spaced 32 KiB, with a
			// nine-line skew so different loops' lines stay in one L1
			// set each (the skew is a multiple of neither L1 stride's
			// period) while spreading across L2 sets.
			base := int64(k) * conflictSlotBytes
			pre := b.Block(fmt.Sprintf("pre_%d", k))
			pre.MovI(isa.R0, 0)
			l := b.Block(fmt.Sprintf("loop_%d", k))
			l.AndI(isa.R12, isa.R0, conflict-1)
			l.MulI(isa.R12, isa.R12, setStrideElems)
			l.Load(isa.R1, 8, isa.MemIdx(isa.R2, isa.R12, 8, base))
			l.AndI(isa.R4, isa.R0, 1)
			l.BrI(isa.CondEQ, isa.R4, 0, fmt.Sprintf("even_%d", k))
			odd := b.Block(fmt.Sprintf("odd_%d", k))
			odd.AddI(isa.R7, isa.R7, 3)
			odd.Store(isa.R7, 8, isa.MemIdx(isa.R2, isa.R12, 8, base))
			odd.Jmp(fmt.Sprintf("join_%d", k))
			even := b.Block(fmt.Sprintf("even_%d", k))
			even.Add(isa.R7, isa.R7, isa.R1)
			emitFrameOps(even)
			join := b.Block(fmt.Sprintf("join_%d", k))
			if c.coldEvery > 0 {
				lines := c.coldLines
				if lines < 1 {
					lines = 1
				}
				join.BrI(isa.CondNE, isa.R0, 0, fmt.Sprintf("warm_%d", k))
				join.AndI(isa.R12, isa.R8, c.coldEvery-1)
				join.BrI(isa.CondNE, isa.R12, 0, fmt.Sprintf("warm_%d", k))
				cold := b.Block(fmt.Sprintf("cold_touch_%d", k))
				for ln := 0; ln < lines; ln++ {
					// Hash-scatter each cold line inside a 4 MiB
					// per-loop region: scattered lines spread over L2
					// sets and defeat the hardware prefetchers, as real
					// CINT misses do.
					cold.MulI(isa.R12, isa.R8, 0x9E3779B1+int64(ln)*0x20021)
					cold.AddI(isa.R12, isa.R12, int64(k)*0x5bd1e995)
					cold.ShrI(isa.R12, isa.R12, 11)
					cold.AndI(isa.R12, isa.R12, (1<<19)-1)
					cold.Load(isa.R4, 8, isa.MemIdx(isa.R5, isa.R12, 8, int64(k)<<22))
					cold.Add(isa.R7, isa.R7, isa.R4)
				}
			}
			warm := b.Block(fmt.Sprintf("warm_%d", k))
			if c.callEvery > 0 {
				warm.AndI(isa.R12, isa.R0, c.callEvery-1)
				warm.BrI(isa.CondNE, isa.R12, 0, fmt.Sprintf("after_call_%d", k))
				cb := b.Block(fmt.Sprintf("call_%d", k))
				cb.Call("chain_helper")
			}
			after := b.Block(fmt.Sprintf("after_call_%d", k))
			after.AddI(isa.R0, isa.R0, 1)
			after.Br(isa.CondLT, isa.R0, isa.R6, fmt.Sprintf("loop_%d", k))
		}
		fin := b.Block("repend")
		fin.AddI(isa.R8, isa.R8, 1)
		fin.Br(isa.CondLT, isa.R8, isa.R9, "rep")
		b.Block("done").Halt()
		// Shared helper: a realistic leaf function with stack traffic,
		// returning through the link register (an indirect branch the
		// code-cache runtime must resolve per call site).
		hp := b.Block("chain_helper")
		hp.AddI(isa.SP, isa.SP, -16)
		hp.Store(isa.R7, 8, isa.Mem(isa.SP, 0))
		hp.Load(isa.R10, 8, isa.Mem(isa.SP, 0))
		hp.AddI(isa.SP, isa.SP, 16)
		hp.Ret()
		emitColdLibrary(b, c.coldBlocks, c.seed+3)
		return b.MustAssemble()
	}
}

// copyCfg parameterizes the gzip-like byte-copy kernel.
type copyCfg struct {
	bufBytes int64 // power of two
	reps     int64
	// hotLoads adds L2-hitting loads per copied byte, diluting the copy
	// load's misses in the overall ratio while leaving it responsible
	// for nearly all misses (the paper's gzip signature).
	hotLoads   int
	coldBlocks int
	seed       int64
}

// copyGen builds a byte-by-byte memory copy: one hot load causes nearly
// all misses (the paper's 164.gzip story: "one instruction causes more
// than 90% of the cache misses ... a byte-by-byte memory copy").
func copyGen(name string, c copyCfg) func() *program.Program {
	return func() *program.Program {
		b := program.NewBuilder(name)
		src := int64(program.HeapBase)
		dst := src + c.bufBytes + 4096
		e := b.Block("entry")
		emitPrologue(e)
		e.MovI(isa.R2, src)
		e.MovI(isa.R5, dst)
		e.MovI(isa.R3, int64(hotBase))
		e.MovI(isa.R6, c.bufBytes)
		e.MovI(isa.R8, 0)
		e.MovI(isa.R9, c.reps)
		rep := b.Block("rep")
		rep.MovI(isa.R0, 0)
		l := b.Block("loop")
		l.Load(isa.R1, 1, isa.MemIdx(isa.R2, isa.R0, 1, 0)) // the hot byte load
		l.Store(isa.R1, 1, isa.MemIdx(isa.R5, isa.R0, 1, 0))
		for j := 0; j < c.hotLoads; j++ {
			l.AndI(isa.R12, isa.R0, conflictSetLines-1)
			l.MulI(isa.R12, isa.R12, conflictStrideEls)
			l.Load(isa.R4, 8, isa.MemIdx(isa.R3, isa.R12, 8, int64(j)*conflictSlotBytes))
			l.Add(isa.R7, isa.R7, isa.R4)
		}
		l.AddI(isa.R0, isa.R0, 1)
		l.Br(isa.CondLT, isa.R0, isa.R6, "loop")
		fin := b.Block("repend")
		fin.AddI(isa.R8, isa.R8, 1)
		fin.Br(isa.CondLT, isa.R8, isa.R9, "rep")
		b.Block("done").Halt()
		emitColdLibrary(b, c.coldBlocks, c.seed)
		return b.MustAssemble()
	}
}

// treeCfg parameterizes the treeadd-like recursive tree sum.
type treeCfg struct {
	depth      int // tree of 2^depth - 1 nodes
	reps       int64
	coldBlocks int
	seed       int64
}

// treeGen builds a binary tree in depth-first layout and sums it with a
// genuinely recursive function (CALL/RET, stack frames through SP), giving
// the trace builder call-shaped control flow and the filter real stack
// traffic.
func treeGen(name string, c treeCfg) func() *program.Program {
	return func() *program.Program {
		b := program.NewBuilder(name)
		nodes := (1 << c.depth) - 1
		const nodeWords = 4 // left, right, value, pad
		words := make([]uint64, nodes*nodeWords)
		next := 0
		var lay func(depth int) uint64
		lay = func(depth int) uint64 {
			if depth == 0 {
				return 0
			}
			me := next
			next++
			addr := program.HeapBase + uint64(me*nodeWords*8)
			words[me*nodeWords+2] = uint64(me)
			words[me*nodeWords+0] = lay(depth - 1)
			words[me*nodeWords+1] = lay(depth - 1)
			return addr
		}
		root := lay(c.depth)
		b.AddWords(program.HeapBase, words)

		e := b.Block("entry")
		e.MovI(isa.R8, 0)
		e.MovI(isa.R9, c.reps)
		rep := b.Block("rep")
		rep.MovI(isa.R1, int64(root))
		rep.Call("treeadd")
		rep.AddI(isa.R8, isa.R8, 1)
		rep.Br(isa.CondLT, isa.R8, isa.R9, "rep")
		b.Block("done").Halt()

		// treeadd(node in R1) -> sum in R0, recursive.
		f := b.Block("treeadd")
		f.BrI(isa.CondNE, isa.R1, 0, "treeadd_body")
		zero := b.Block("treeadd_zero")
		zero.MovI(isa.R0, 0)
		zero.Ret()
		body := b.Block("treeadd_body")
		body.AddI(isa.SP, isa.SP, -32)
		body.Store(isa.LR, 8, isa.Mem(isa.SP, 0))
		body.Store(isa.R1, 8, isa.Mem(isa.SP, 8))
		body.Load(isa.R1, 8, isa.Mem(isa.R1, 0)) // left child (heap ref)
		body.Call("treeadd")
		body.Store(isa.R0, 8, isa.Mem(isa.SP, 16)) // spill left sum
		body.Load(isa.R1, 8, isa.Mem(isa.SP, 8))
		body.Load(isa.R1, 8, isa.Mem(isa.R1, 8)) // right child
		body.Call("treeadd")
		body.Load(isa.R3, 8, isa.Mem(isa.SP, 16))
		body.Add(isa.R0, isa.R0, isa.R3)
		body.Load(isa.R1, 8, isa.Mem(isa.SP, 8))
		body.Load(isa.R3, 8, isa.Mem(isa.R1, 16)) // node value (heap ref)
		body.Add(isa.R0, isa.R0, isa.R3)
		body.Load(isa.LR, 8, isa.Mem(isa.SP, 0))
		body.AddI(isa.SP, isa.SP, 32)
		body.Ret()
		emitColdLibrary(b, c.coldBlocks, c.seed)
		return b.MustAssemble()
	}
}

// phasedCfg parameterizes two-phase kernels (facerec/galgel/apsi-like):
// alternating streaming and resident-compute phases.
type phasedCfg struct {
	streamElems int64 // streamed elements per phase (power of two)
	residentLds int   // conflict-set loads per resident iteration
	phaseIters  int64 // resident-phase iterations
	phases      int64
	coldBlocks  int
	seed        int64
}

// phasedGen alternates a streaming sweep with a cache-resident compute
// loop, exercising UMI's phase adaptivity.
func phasedGen(name string, c phasedCfg) func() *program.Program {
	return func() *program.Program {
		b := program.NewBuilder(name)
		resLoads := c.residentLds
		if resLoads < 1 {
			resLoads = 1
		}
		e := b.Block("entry")
		emitPrologue(e)
		e.MovI(isa.R2, int64(program.HeapBase))
		e.MovI(isa.R5, int64(hotBase))
		e.MovI(isa.R8, 0)
		e.MovI(isa.R9, c.phases)
		ph := b.Block("phase")
		ph.MovI(isa.R0, 0)
		// Each phase sweeps a fresh region: offset by the phase counter
		// so later phases stay cold even when one phase's footprint
		// would fit in L2.
		ph.MulI(isa.R11, isa.R8, c.streamElems)
		s := b.Block("stream")
		s.Add(isa.R12, isa.R11, isa.R0)
		s.Load(isa.R3, 8, isa.MemIdx(isa.R2, isa.R12, 8, 0))
		s.Add(isa.R7, isa.R7, isa.R3)
		// A hash-scattered companion load: the phase keeps misses even
		// when a hardware prefetcher covers the strided sweep.
		s.MulI(isa.R12, isa.R12, 0x9E3779B1)
		s.ShrI(isa.R12, isa.R12, 9)
		s.AndI(isa.R12, isa.R12, (1<<22)-1)
		s.Load(isa.R4, 8, isa.MemIdx(isa.R2, isa.R12, 8, 1<<28))
		s.Add(isa.R7, isa.R7, isa.R4)
		emitFrameOps(s)
		s.AddI(isa.R0, isa.R0, 8)
		s.BrI(isa.CondLT, isa.R0, c.streamElems, "stream")
		mid := b.Block("mid")
		mid.MovI(isa.R0, 0)
		res := b.Block("resident")
		for j := 0; j < resLoads; j++ {
			emitConflictLoad(res, isa.R0, j)
		}
		res.Mul(isa.R7, isa.R7, isa.R7)
		res.AddI(isa.R0, isa.R0, 1)
		res.BrI(isa.CondLT, isa.R0, c.phaseIters, "resident")
		fin := b.Block("phend")
		fin.AddI(isa.R8, isa.R8, 1)
		fin.Br(isa.CondLT, isa.R8, isa.R9, "phase")
		b.Block("done").Halt()
		emitColdLibrary(b, c.coldBlocks, c.seed)
		return b.MustAssemble()
	}
}
