package workloads

import (
	"testing"

	"umi/internal/cache"
	"umi/internal/vm"
)

// TestCalibrationReport prints ground-truth statistics for every workload
// when run with -v; it asserts only that every workload halts within its
// instruction budget. Band assertions live in workloads_test.go.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs the full suite")
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			h := cache.NewP4(false)
			m := vm.New(w.Program(), h)
			if err := m.Run(60_000_000); err != nil {
				t.Fatalf("Run: %v", err)
			}
			t.Logf("%-16s %-8s instrs=%9d cycles=%11d L1acc=%9d L2acc=%8d L2miss=%8d ratio=%6.2f%% (paper %.2f%%)",
				w.Name, w.Suite, m.Instrs, m.Cycles,
				h.L1Stats.Accesses, h.L2Stats.Accesses, h.L2Stats.Misses,
				100*h.L2Stats.MissRatio(), w.PaperMissPct)
		})
	}
}
