// Package tracelog is the runtime's temporal self-observability substrate:
// a dependency-free, ring-buffered structured event log recording *when*
// lifecycle events happen, where internal/metrics records only how often.
// UMI's behaviour is inherently bursty — regions heat up, profiles fill,
// the analyzer fires, delinquent sets evolve as the adaptive threshold
// walks down — and none of that temporal structure survives into an
// end-of-run aggregate. The log captures it as typed events stamped with
// the modelled guest-cycle clock, so the recorded timeline is a modelled
// quantity: deterministic, golden-testable, and independent of host speed.
//
// Concurrency model, mirroring internal/metrics: producers (the guest
// thread, the pipeline's sequencer goroutine) append lock-free — one
// atomic slot reservation plus one atomic pointer store — and readers
// snapshot from any goroutine at any time, including mid-run over the
// introspection HTTP endpoint. On overflow the ring drops the oldest
// events and counts the drops; it never blocks and never grows.
//
// Determinism contract: an attached log never feeds back into modelled
// state, so every report is byte-identical with tracing on or off. Event
// *content* is deterministic on the inline analyzer path; Seq (append
// order) and WallNs (host wall clock) are not, and every deterministic
// renderer in this package excludes them — the same split as the metrics
// layer's String vs LiveString.
package tracelog

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Type enumerates the lifecycle events the runtime records. Values are
// ordered by position in a trace's lifecycle; deterministic renderers use
// the ordering to break ties between events sharing a cycle stamp.
type Type uint8

const (
	// EvTracePromoted: the rio trace builder installed a new trace
	// (Arg1 = instructions).
	EvTracePromoted Type = iota
	// EvBlockCacheFlush: the basic-block cache filled and was flushed
	// (Arg1 = instructions evicted).
	EvBlockCacheFlush
	// EvTraceInstrumented: the instrumentor installed the profiling clone
	// (Arg1 = profiled operations).
	EvTraceInstrumented
	// EvProfileFill: an address profile triggered analysis (Arg1 = rows;
	// Arg2 = 1 when the global trace-profile limit fired, 0 for a
	// per-trace fill).
	EvProfileFill
	// EvAnalyzerBegin: an analyzer invocation started (Arg1 = live
	// profiles).
	EvAnalyzerBegin
	// EvCacheFlush: the analyzer flushed its logical cache (§5 gap rule).
	EvCacheFlush
	// EvPipelineSubmit: an invocation was handed off to the asynchronous
	// pipeline (Arg1 = jobs, Arg2 = prep-queue depth, Arg3 = sequencer
	// backlog).
	EvPipelineSubmit
	// EvPipelineRecycle: an instrumentation reused a recycled profile
	// buffer instead of allocating (Arg1 = row capacity).
	EvPipelineRecycle
	// EvTraceDeinstrumented: a trace swapped back to its clean clone.
	EvTraceDeinstrumented
	// EvAdaptiveStep: the adaptive delinquency threshold stepped
	// (Arg1 = math.Float64bits of the new alpha).
	EvAdaptiveStep
	// EvAnalyzerEnd: an analyzer invocation completed (Arg1 = refs
	// simulated, Arg2 = misses, Arg3 = |P| after the invocation;
	// Dur = modelled invocation cost in cycles).
	EvAnalyzerEnd

	numTypes
)

var typeNames = [numTypes]string{
	EvTracePromoted:       "trace.promoted",
	EvBlockCacheFlush:     "rio.block_cache_flush",
	EvTraceInstrumented:   "trace.instrumented",
	EvProfileFill:         "profile.fill",
	EvAnalyzerBegin:       "analyzer.begin",
	EvCacheFlush:          "analyzer.cache_flush",
	EvPipelineSubmit:      "pipeline.submit",
	EvPipelineRecycle:     "pipeline.recycle",
	EvTraceDeinstrumented: "trace.deinstrumented",
	EvAdaptiveStep:        "adaptive.step",
	EvAnalyzerEnd:         "analyzer.end",
}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("tracelog.Type(%d)", uint8(t))
}

// argNames maps Arg1..Arg3 to their per-type meaning ("" = unused), the
// single source of truth for every renderer.
func (t Type) argNames() [3]string {
	switch t {
	case EvTracePromoted, EvBlockCacheFlush:
		return [3]string{"instrs"}
	case EvTraceInstrumented:
		return [3]string{"ops"}
	case EvProfileFill:
		return [3]string{"rows", "global"}
	case EvAnalyzerBegin:
		return [3]string{"profiles"}
	case EvPipelineSubmit:
		return [3]string{"jobs", "prep_queue", "seq_backlog"}
	case EvPipelineRecycle:
		return [3]string{"rows"}
	case EvAdaptiveStep:
		return [3]string{"alpha"}
	case EvAnalyzerEnd:
		return [3]string{"refs", "misses", "delinquent"}
	default:
		return [3]string{}
	}
}

// Event is one recorded lifecycle event. Cycles, Type, TracePC, Dur and
// the Args are modelled quantities (deterministic); Seq and WallNs are
// host-side annotations (append order and wall-clock nanoseconds since
// the log was created) that deterministic renderers exclude.
type Event struct {
	Seq     uint64
	Cycles  uint64
	Type    Type
	TracePC uint64
	// Dur is the modelled span length in cycles (analyzer invocations).
	Dur  uint64
	Arg1 uint64
	Arg2 uint64
	Arg3 uint64
	// WallNs is the non-deterministic wall-clock annotation, kept in a
	// clearly separated field (the metrics layer's String/LiveString
	// split, applied per event).
	WallNs int64
}

// Alpha decodes Arg1 as a float for EvAdaptiveStep events.
func (e Event) Alpha() float64 { return math.Float64frombits(e.Arg1) }

// detail renders the event's type-specific arguments as "k=v" pairs in
// declaration order — deterministic, shared by the text timeline and the
// HTTP /events view.
func (e Event) detail() string {
	names := e.Type.argNames()
	args := [3]uint64{e.Arg1, e.Arg2, e.Arg3}
	out := ""
	for i, n := range names {
		if n == "" {
			continue
		}
		if out != "" {
			out += " "
		}
		if n == "alpha" {
			out += fmt.Sprintf("alpha=%.2f", math.Float64frombits(args[i]))
		} else {
			out += fmt.Sprintf("%s=%d", n, args[i])
		}
	}
	return out
}

// DefaultCapacity is the ring size used when a caller passes 0: large
// enough that the harness workloads never drop, small enough to be left
// on (a few MB of pointers at worst).
const DefaultCapacity = 1 << 16

// Log is the ring buffer. One Log serves all producers of a run; append
// is lock-free and snapshot-safe from any goroutine. All methods are
// nil-receiver safe so call sites can emit unconditionally — a nil Log is
// the disabled state and costs one branch.
type Log struct {
	slots []atomic.Pointer[Event]
	// head counts events ever appended; it doubles as the Seq allocator.
	head  atomic.Uint64
	start time.Time
}

// NewLog returns an empty ring holding up to capacity events (0 selects
// DefaultCapacity).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{slots: make([]atomic.Pointer[Event], capacity), start: time.Now()}
}

// Emit appends one event, stamping Seq and WallNs. On overflow the oldest
// event is overwritten (dropped) and counted; Emit never blocks. Safe for
// concurrent producers: each reservation gets a distinct slot, and the
// slot write is a single atomic pointer store.
func (l *Log) Emit(ev Event) {
	if l == nil {
		return
	}
	n := l.head.Add(1)
	ev.Seq = n
	ev.WallNs = int64(time.Since(l.start))
	e := ev
	l.slots[(n-1)%uint64(len(l.slots))].Store(&e)
}

// Cap returns the ring capacity.
func (l *Log) Cap() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}

// Total returns the number of events ever appended, including dropped
// ones.
func (l *Log) Total() uint64 {
	if l == nil {
		return 0
	}
	return l.head.Load()
}

// Drops returns how many events were overwritten before being read:
// oldest-first, exactly Total minus capacity once the ring has wrapped.
func (l *Log) Drops() uint64 {
	if l == nil {
		return 0
	}
	if t := l.head.Load(); t > uint64(len(l.slots)) {
		return t - uint64(len(l.slots))
	}
	return 0
}

// Events snapshots the ring's current contents, oldest first (ascending
// Seq). Concurrent with producers the snapshot is best-effort — a slot
// being overwritten mid-read yields either its old or new event, never a
// torn one — and at quiescence (after Finish) it is exact.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	out := make([]Event, 0, len(l.slots))
	for i := range l.slots {
		if e := l.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Recent returns the newest n events, oldest of those first (n <= 0 or
// n > len returns everything buffered).
func (l *Log) Recent(n int) []Event {
	evs := l.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}
