package tracelog

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// This file holds the log's two deterministic consumers: the Chrome
// trace-event JSON exporter (loadable in Perfetto and chrome://tracing)
// and the plain-text timeline renderer (golden-testable). Both order
// events by modelled content alone — (cycles, type, pc, args) — so the
// output is byte-identical run to run regardless of how producer appends
// interleaved, and both exclude the non-deterministic Seq and WallNs
// fields by construction.

// Sorted returns a copy of events in the canonical deterministic order:
// ascending cycle stamp, with lifecycle position (Type), trace PC, and
// argument values breaking ties. Events identical under this key are
// interchangeable, so the order is total for rendering purposes.
func Sorted(events []Event) []Event {
	out := append([]Event(nil), events...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Cycles != b.Cycles:
			return a.Cycles < b.Cycles
		case a.Type != b.Type:
			return a.Type < b.Type
		case a.TracePC != b.TracePC:
			return a.TracePC < b.TracePC
		case a.Arg1 != b.Arg1:
			return a.Arg1 < b.Arg1
		case a.Arg2 != b.Arg2:
			return a.Arg2 < b.Arg2
		case a.Arg3 != b.Arg3:
			return a.Arg3 < b.Arg3
		default:
			return a.Dur < b.Dur
		}
	})
	return out
}

// Timeline renders events as the deterministic text timeline: one line
// per event, canonical order, modelled fields only. drops is the ring's
// overflow count, reported in the header so a truncated timeline says so.
func Timeline(events []Event, drops uint64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline: %d events", len(events))
	if drops > 0 {
		fmt.Fprintf(&sb, " (%d older events dropped)", drops)
	}
	sb.WriteString("\n")
	for _, e := range Sorted(events) {
		fmt.Fprintf(&sb, "[%12d] %-21s", e.Cycles, e.Type.String())
		if e.TracePC != 0 {
			fmt.Fprintf(&sb, " pc=%#08x", e.TracePC)
		}
		if d := e.detail(); d != "" {
			sb.WriteString(" " + d)
		}
		if e.Dur > 0 {
			fmt.Fprintf(&sb, " dur=%d", e.Dur)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Chrome trace-event track layout: one process, one thread ("track") per
// runtime component, plus tid 0 for counter series.
const (
	chromePid   = 1
	tidCounters = 0
	tidRIO      = 1
	tidSelector = 2
	tidAnalyzer = 3
	tidPipeline = 4
)

func chromeTid(t Type) int {
	switch t {
	case EvTracePromoted, EvBlockCacheFlush:
		return tidRIO
	case EvTraceInstrumented, EvTraceDeinstrumented, EvProfileFill, EvAdaptiveStep:
		return tidSelector
	case EvAnalyzerBegin, EvAnalyzerEnd, EvCacheFlush:
		return tidAnalyzer
	default:
		return tidPipeline
	}
}

// chromeEvent is one trace-event object. Field order is fixed by the
// struct, and args maps marshal with sorted keys, so the serialized form
// is deterministic. Every event carries the keys Perfetto's trace-event
// importer requires: name, ph, ts, pid, tid.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func metaEvent(name string, tid int, value string) chromeEvent {
	return chromeEvent{Name: name, Ph: "M", Pid: chromePid, Tid: tid,
		Args: map[string]any{"name": value}}
}

// chromeArgs materializes an event's named arguments.
func chromeArgs(e Event) map[string]any {
	args := make(map[string]any)
	if e.TracePC != 0 {
		args["pc"] = fmt.Sprintf("%#x", e.TracePC)
	}
	names := e.Type.argNames()
	vals := [3]uint64{e.Arg1, e.Arg2, e.Arg3}
	for i, n := range names {
		if n == "" {
			continue
		}
		if n == "alpha" {
			args[n] = math.Float64frombits(vals[i])
		} else {
			args[n] = vals[i]
		}
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// WriteChromeTrace serializes events as Chrome trace-event JSON, one
// event per line. Timestamps are the modelled guest-cycle stamps rendered
// in the format's microsecond field, so one timeline microsecond equals
// one modelled cycle; analyzer invocations appear as complete ("X") spans
// with their modelled cost as the duration, lifecycle events as
// thread-scoped instants, and two derived counter tracks plot delinquent-
// set size and pipeline queue depth over time. Output is byte-
// deterministic for deterministic event content.
func WriteChromeTrace(w io.Writer, events []Event) error {
	evs := Sorted(events)
	out := make([]chromeEvent, 0, len(evs)+8)
	out = append(out,
		metaEvent("process_name", tidCounters, "umi runtime"),
		metaEvent("thread_name", tidRIO, "rio code cache"),
		metaEvent("thread_name", tidSelector, "region selector / instrumentor"),
		metaEvent("thread_name", tidAnalyzer, "profile analyzer"),
		metaEvent("thread_name", tidPipeline, "analysis pipeline"),
	)
	for _, e := range evs {
		switch e.Type {
		case EvAnalyzerEnd:
			out = append(out, chromeEvent{
				Name: "analyzer.invocation", Ph: "X", Ts: e.Cycles, Dur: e.Dur,
				Pid: chromePid, Tid: tidAnalyzer, Args: chromeArgs(e),
			})
			// Derived counter: delinquent-set size after this invocation.
			out = append(out, chromeEvent{
				Name: "delinquent set", Ph: "C", Ts: e.Cycles + e.Dur,
				Pid: chromePid, Tid: tidCounters,
				Args: map[string]any{"size": e.Arg3},
			})
		case EvPipelineSubmit:
			out = append(out, chromeEvent{
				Name: e.Type.String(), Ph: "i", S: "t", Ts: e.Cycles,
				Pid: chromePid, Tid: tidPipeline, Args: chromeArgs(e),
			})
			// Derived counter: pipeline queue depth at hand-off.
			out = append(out, chromeEvent{
				Name: "queue depth", Ph: "C", Ts: e.Cycles,
				Pid: chromePid, Tid: tidCounters,
				Args: map[string]any{"prep": e.Arg2, "seq": e.Arg3},
			})
		default:
			out = append(out, chromeEvent{
				Name: e.Type.String(), Ph: "i", S: "t", Ts: e.Cycles,
				Pid: chromePid, Tid: chromeTid(e.Type), Args: chromeArgs(e),
			})
		}
	}
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ce := range out {
		data, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(out)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(data, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "],\"displayTimeUnit\":\"ns\"}\n")
	return err
}

// MarshalJSON renders an event for the live /events endpoint: type by
// name, named arguments, and the wall-clock annotation in its clearly
// separated field.
func (e Event) MarshalJSON() ([]byte, error) {
	obj := struct {
		Seq    uint64         `json:"seq"`
		Cycles uint64         `json:"cycles"`
		Type   string         `json:"type"`
		PC     string         `json:"pc,omitempty"`
		Dur    uint64         `json:"dur_cycles,omitempty"`
		Args   map[string]any `json:"args,omitempty"`
		WallNs int64          `json:"wall_ns"`
	}{
		Seq: e.Seq, Cycles: e.Cycles, Type: e.Type.String(),
		Dur: e.Dur, WallNs: e.WallNs,
	}
	if e.TracePC != 0 {
		obj.PC = fmt.Sprintf("%#x", e.TracePC)
	}
	args := chromeArgs(e)
	delete(args, "pc")
	if len(args) > 0 {
		obj.Args = args
	}
	return json.Marshal(obj)
}
