package tracelog

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// --- ring semantics ---

func TestRingOverflowDropsOldestFirst(t *testing.T) {
	l := NewLog(4)
	for i := 1; i <= 10; i++ {
		l.Emit(Event{Type: EvTracePromoted, Cycles: uint64(i * 100)})
	}
	if got := l.Total(); got != 10 {
		t.Errorf("Total() = %d, want 10", got)
	}
	if got := l.Drops(); got != 6 {
		t.Errorf("Drops() = %d, want 6 (oldest six overwritten)", got)
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("Events() returned %d events, want 4", len(evs))
	}
	for i, e := range evs {
		wantCycles := uint64((7 + i) * 100)
		if e.Cycles != wantCycles {
			t.Errorf("event %d: cycles %d, want %d (survivors must be the newest, oldest-first)",
				i, e.Cycles, wantCycles)
		}
		if i > 0 && evs[i-1].Seq >= e.Seq {
			t.Errorf("Events() not in ascending Seq order at %d", i)
		}
	}
}

func TestNoDropsBelowCapacity(t *testing.T) {
	l := NewLog(8)
	for i := 0; i < 8; i++ {
		l.Emit(Event{Type: EvTraceInstrumented})
	}
	if l.Drops() != 0 {
		t.Errorf("Drops() = %d with ring exactly full, want 0", l.Drops())
	}
	l.Emit(Event{Type: EvTraceInstrumented})
	if l.Drops() != 1 {
		t.Errorf("Drops() = %d after one overflow, want 1", l.Drops())
	}
}

func TestRecent(t *testing.T) {
	l := NewLog(16)
	for i := 1; i <= 5; i++ {
		l.Emit(Event{Cycles: uint64(i)})
	}
	got := l.Recent(2)
	if len(got) != 2 || got[0].Cycles != 4 || got[1].Cycles != 5 {
		t.Errorf("Recent(2) = %v, want cycles [4 5]", got)
	}
	if n := len(l.Recent(0)); n != 5 {
		t.Errorf("Recent(0) returned %d events, want all 5", n)
	}
	if n := len(l.Recent(100)); n != 5 {
		t.Errorf("Recent(100) returned %d events, want 5", n)
	}
}

// A nil Log is the disabled state: every method must be a cheap no-op so
// call sites emit unconditionally.
func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Emit(Event{Type: EvAnalyzerEnd})
	if l.Total() != 0 || l.Drops() != 0 || l.Cap() != 0 {
		t.Error("nil Log reported nonzero state")
	}
	if evs := l.Events(); evs != nil {
		t.Errorf("nil Log Events() = %v, want nil", evs)
	}
	if evs := l.Recent(3); evs != nil {
		t.Errorf("nil Log Recent() = %v, want nil", evs)
	}
}

// TestConcurrentEmitAndSnapshot exercises the lock-free append path from
// several producers racing a snapshotting reader — the -race backstop for
// the guest-thread/sequencer/HTTP-handler triangle.
func TestConcurrentEmitAndSnapshot(t *testing.T) {
	l := NewLog(64)
	const producers, perProducer = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				l.Emit(Event{Type: Type(uint8(p) % uint8(numTypes)), Cycles: uint64(i)})
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, e := range l.Events() {
				if int(e.Type) >= int(numTypes) {
					t.Errorf("torn event read: type %d", e.Type)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := l.Total(); got != producers*perProducer {
		t.Errorf("Total() = %d, want %d", got, producers*perProducer)
	}
	if got := l.Drops(); got != producers*perProducer-64 {
		t.Errorf("Drops() = %d, want %d", got, producers*perProducer-64)
	}
}

// --- deterministic renderers ---

// fixedEvents is a synthetic lifecycle covering every event type, used by
// the golden and schema tests. Seq/WallNs are left to Emit on purpose:
// the deterministic renderers must ignore them.
func fixedEvents() ([]Event, uint64) {
	l := NewLog(64)
	l.Emit(Event{Type: EvTracePromoted, Cycles: 1_000, TracePC: 0x400, Arg1: 12})
	l.Emit(Event{Type: EvTraceInstrumented, Cycles: 1_500, TracePC: 0x400, Arg1: 3})
	l.Emit(Event{Type: EvPipelineRecycle, Cycles: 1_500, TracePC: 0x400, Arg1: 256})
	l.Emit(Event{Type: EvProfileFill, Cycles: 9_000, TracePC: 0x400, Arg1: 256, Arg2: 0})
	l.Emit(Event{Type: EvAnalyzerBegin, Cycles: 9_000, Arg1: 1})
	l.Emit(Event{Type: EvCacheFlush, Cycles: 9_000})
	l.Emit(Event{Type: EvPipelineSubmit, Cycles: 9_000, Arg1: 1, Arg2: 1, Arg3: 0})
	l.Emit(Event{Type: EvTraceDeinstrumented, Cycles: 9_000, TracePC: 0x400})
	l.Emit(Event{Type: EvAdaptiveStep, Cycles: 9_000, TracePC: 0x400,
		Arg1: math.Float64bits(0.80)})
	l.Emit(Event{Type: EvAnalyzerEnd, Cycles: 9_000, Dur: 2_168,
		Arg1: 768, Arg2: 91, Arg3: 2})
	l.Emit(Event{Type: EvBlockCacheFlush, Cycles: 20_000, Arg1: 4096})
	return l.Events(), l.Drops()
}

func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with `go test ./internal/tracelog -update`): %v",
			path, err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from its golden file\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestGoldenTimeline(t *testing.T) {
	evs, drops := fixedEvents()
	golden(t, "timeline", Timeline(evs, drops))
}

func TestTimelineReportsDrops(t *testing.T) {
	l := NewLog(2)
	for i := 0; i < 5; i++ {
		l.Emit(Event{Type: EvTracePromoted, Cycles: uint64(i)})
	}
	out := Timeline(l.Events(), l.Drops())
	if want := "timeline: 2 events (3 older events dropped)\n"; out[:len(want)] != want {
		t.Errorf("Timeline header = %q, want prefix %q", out, want)
	}
}

// TestTimelineIgnoresWallClock pins the determinism contract: two logs
// with identical modelled content but different wall-clock annotations
// and append orders must render identically.
func TestTimelineIgnoresWallClock(t *testing.T) {
	evs, drops := fixedEvents()
	a := Timeline(evs, drops)
	reversed := make([]Event, len(evs))
	for i, e := range evs {
		e.WallNs += 1_000_000 // perturb the non-deterministic field
		e.Seq += 50
		reversed[len(evs)-1-i] = e
	}
	if b := Timeline(reversed, drops); a != b {
		t.Errorf("Timeline depends on Seq/WallNs/append order:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}
