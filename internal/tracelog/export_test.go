package tracelog

import (
	"bytes"
	"encoding/json"
	"testing"
)

// decodeTrace parses Chrome trace-event JSON into the generic container
// shape Perfetto's importer reads.
func decodeTrace(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, data)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("exported trace has no traceEvents")
	}
	return doc.TraceEvents
}

// TestChromeTraceSchema checks every exported event against the
// trace-event format's required keys (what Perfetto validates on import):
// name, ph, ts, pid, tid, plus dur on complete ("X") spans.
func TestChromeTraceSchema(t *testing.T) {
	evs, _ := fixedEvents()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	phs := map[string]int{}
	for i, ev := range decodeTrace(t, buf.Bytes()) {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event %d missing required key %q: %v", i, key, ev)
			}
		}
		ph, _ := ev["ph"].(string)
		phs[ph]++
		if ph == "X" {
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete span missing dur: %v", ev)
			}
		}
	}
	// The synthetic lifecycle must produce all four phases: metadata,
	// instants, the analyzer span, and the derived counter tracks.
	for _, ph := range []string{"M", "i", "X", "C"} {
		if phs[ph] == 0 {
			t.Errorf("export produced no %q events; phases seen: %v", ph, phs)
		}
	}
}

// TestChromeTraceDeterministic: identical modelled content must serialize
// byte-identically, whatever the append order or wall-clock values.
func TestChromeTraceDeterministic(t *testing.T) {
	evs, _ := fixedEvents()
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, evs); err != nil {
		t.Fatal(err)
	}
	perturbed := make([]Event, len(evs))
	for i, e := range evs {
		e.Seq += 1000
		e.WallNs *= 7
		perturbed[len(evs)-1-i] = e
	}
	if err := WriteChromeTrace(&b, perturbed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("Chrome export depends on Seq/WallNs/append order:\n--- a ---\n%s--- b ---\n%s",
			a.String(), b.String())
	}
}

// TestChromeTraceWellFormedUnderOverflow: a wrapped ring (events dropped
// oldest-first) must still export well-formed, schema-complete JSON.
func TestChromeTraceWellFormedUnderOverflow(t *testing.T) {
	l := NewLog(8)
	for i := 0; i < 100; i++ {
		l.Emit(Event{Type: Type(i % int(numTypes)), Cycles: uint64(i * 10),
			TracePC: 0x400, Arg1: uint64(i), Dur: uint64(i % 3)})
	}
	if l.Drops() == 0 {
		t.Fatal("test setup: ring did not overflow")
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, l.Events()); err != nil {
		t.Fatal(err)
	}
	for i, ev := range decodeTrace(t, buf.Bytes()) {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event %d missing required key %q after overflow: %v", i, key, ev)
			}
		}
	}
}

// TestEventJSONNamedArgs: the live /events marshalling renders the type
// by name and the arguments by their per-type names, with the wall-clock
// annotation in its separated field.
func TestEventJSONNamedArgs(t *testing.T) {
	e := Event{Seq: 7, Cycles: 9000, Type: EvAnalyzerEnd, Dur: 2168,
		Arg1: 768, Arg2: 91, Arg3: 2, WallNs: 12345}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["type"] != "analyzer.end" {
		t.Errorf("type = %v, want analyzer.end", m["type"])
	}
	if m["wall_ns"] != float64(12345) {
		t.Errorf("wall_ns = %v, want 12345", m["wall_ns"])
	}
	args, _ := m["args"].(map[string]any)
	if args["refs"] != float64(768) || args["misses"] != float64(91) || args["delinquent"] != float64(2) {
		t.Errorf("args = %v, want named refs/misses/delinquent", args)
	}
}

func TestTypeStrings(t *testing.T) {
	for ty := Type(0); ty < numTypes; ty++ {
		if ty.String() == "" {
			t.Errorf("type %d has no name", ty)
		}
	}
	if got := Type(200).String(); got != "tracelog.Type(200)" {
		t.Errorf("unknown type renders %q", got)
	}
}
