package vm

import (
	"errors"
	"fmt"

	"umi/internal/isa"
	"umi/internal/program"
)

// MemModel supplies memory-hierarchy latency for the machine's loads and
// stores. Access reports the stall cycles beyond the instruction's base
// cost. The model is the "hardware": a cache hierarchy with performance
// counters implements this interface.
type MemModel interface {
	Access(addr uint64, size uint8, write bool) (stall uint64)
}

// PrefetchModel is implemented by memory models that accept software
// prefetch hints.
type PrefetchModel interface {
	Prefetch(addr uint64)
}

// NTModel is implemented by memory models that honour non-temporal
// access hints (isa.Instr.NT): the line should not be cached beyond the
// first level.
type NTModel interface {
	AccessNT(addr uint64, size uint8, write bool) (stall uint64)
}

// InstrFetchModel is implemented by memory models that charge for
// instruction fetches (an instruction cache). The machine consults it
// once per executed instruction when attached.
type InstrFetchModel interface {
	FetchInstr(pc uint64) (stall uint64)
}

// RefHook observes one dynamic memory reference: the instruction's PC, the
// effective address, the access size, and whether it is a write. Prefetch
// instructions do not invoke the hook (they are hints, not references).
type RefHook func(pc, addr uint64, size uint8, write bool)

// Execution errors.
var (
	ErrDivideByZero = errors.New("vm: divide by zero")
	ErrBadPC        = errors.New("vm: pc outside code image")
	ErrNotHalted    = errors.New("vm: instruction budget exhausted before halt")
)

// Machine is one guest hardware context.
type Machine struct {
	Prog *program.Program
	Regs [isa.NumRegs]uint64
	PC   uint64
	Mem  *Memory

	// Model provides load/store stall cycles. Nil means a perfect
	// single-cycle memory.
	Model MemModel

	// fetch is Model's instruction-fetch view, cached at Reset time to
	// avoid a type assertion per instruction.
	fetch InstrFetchModel
	// nt is Model's non-temporal view, if any.
	nt NTModel

	// RefHook, when non-nil, observes every load and store.
	RefHook RefHook

	// Cycles is the modelled execution time; Instrs counts retired guest
	// instructions (both exclude any runtime-system overhead, which the
	// rio layer accounts separately).
	Cycles uint64
	Instrs uint64
	Halted bool
}

// New creates a machine for the program with data segments installed,
// SP/BP initialized, and PC at the entry point.
func New(p *program.Program, model MemModel) *Machine {
	m := &Machine{Prog: p, Mem: NewMemory(), Model: model}
	if f, ok := model.(InstrFetchModel); ok {
		m.fetch = f
	}
	if n, ok := model.(NTModel); ok {
		m.nt = n
	}
	m.Reset()
	return m
}

// Reset rewinds the machine to the program's initial state, reinstalling
// data segments into a fresh memory.
func (m *Machine) Reset() {
	m.Mem = NewMemory()
	for _, seg := range m.Prog.Data {
		m.Mem.WriteBytes(seg.Addr, seg.Bytes)
	}
	for i := range m.Regs {
		m.Regs[i] = 0
	}
	m.Regs[isa.SP] = program.StackBase
	m.Regs[isa.BP] = program.StackBase
	m.PC = m.Prog.Entry
	m.Cycles = 0
	m.Instrs = 0
	m.Halted = false
}

// EA computes the effective address of a memory operand in the current
// register state.
func (m *Machine) EA(ref isa.MemRef) uint64 {
	var ea uint64
	if ref.Base != isa.NoReg {
		ea = m.Regs[ref.Base]
	}
	if ref.Index != isa.NoReg {
		ea += m.Regs[ref.Index] * uint64(ref.Scale)
	}
	return ea + uint64(ref.Disp)
}

// ExecInstr executes one instruction whose original application PC is pc,
// updating registers, memory, cycle and instruction counters, and returns
// the next PC. It does not touch m.PC: callers (Step, and the rio
// dispatcher, which executes instructions out of code-cache fragments)
// manage control flow themselves.
func (m *Machine) ExecInstr(in *isa.Instr, pc uint64) (uint64, error) {
	next := pc + isa.InstrBytes
	cost := in.BaseCost()
	if m.fetch != nil {
		cost += m.fetch.FetchInstr(pc)
	}
	switch in.Op {
	case isa.OpNop:
	case isa.OpHalt:
		m.Halted = true
	case isa.OpAdd:
		m.Regs[in.Rd] = m.Regs[in.Rs1] + m.Regs[in.Rs2]
	case isa.OpSub:
		m.Regs[in.Rd] = m.Regs[in.Rs1] - m.Regs[in.Rs2]
	case isa.OpMul:
		m.Regs[in.Rd] = m.Regs[in.Rs1] * m.Regs[in.Rs2]
	case isa.OpDiv:
		if m.Regs[in.Rs2] == 0 {
			return pc, fmt.Errorf("%w at pc %#x", ErrDivideByZero, pc)
		}
		m.Regs[in.Rd] = uint64(int64(m.Regs[in.Rs1]) / int64(m.Regs[in.Rs2]))
	case isa.OpAnd:
		m.Regs[in.Rd] = m.Regs[in.Rs1] & m.Regs[in.Rs2]
	case isa.OpOr:
		m.Regs[in.Rd] = m.Regs[in.Rs1] | m.Regs[in.Rs2]
	case isa.OpXor:
		m.Regs[in.Rd] = m.Regs[in.Rs1] ^ m.Regs[in.Rs2]
	case isa.OpShl:
		m.Regs[in.Rd] = m.Regs[in.Rs1] << (m.Regs[in.Rs2] & 63)
	case isa.OpShr:
		m.Regs[in.Rd] = m.Regs[in.Rs1] >> (m.Regs[in.Rs2] & 63)
	case isa.OpAddI:
		m.Regs[in.Rd] = m.Regs[in.Rs1] + uint64(in.Imm)
	case isa.OpMulI:
		m.Regs[in.Rd] = m.Regs[in.Rs1] * uint64(in.Imm)
	case isa.OpAndI:
		m.Regs[in.Rd] = m.Regs[in.Rs1] & uint64(in.Imm)
	case isa.OpShrI:
		m.Regs[in.Rd] = m.Regs[in.Rs1] >> (uint64(in.Imm) & 63)
	case isa.OpMov:
		m.Regs[in.Rd] = m.Regs[in.Rs1]
	case isa.OpMovI:
		m.Regs[in.Rd] = uint64(in.Imm)
	case isa.OpLoad:
		ea := m.EA(in.Mem)
		if m.RefHook != nil {
			m.RefHook(pc, ea, in.Size, false)
		}
		if in.NT && m.nt != nil {
			cost += m.nt.AccessNT(ea, in.Size, false)
		} else if m.Model != nil {
			cost += m.Model.Access(ea, in.Size, false)
		}
		m.Regs[in.Rd] = m.Mem.Read(ea, in.Size)
	case isa.OpStore:
		ea := m.EA(in.Mem)
		if m.RefHook != nil {
			m.RefHook(pc, ea, in.Size, true)
		}
		if in.NT && m.nt != nil {
			cost += m.nt.AccessNT(ea, in.Size, true)
		} else if m.Model != nil {
			cost += m.Model.Access(ea, in.Size, true)
		}
		m.Mem.Write(ea, in.Size, m.Regs[in.Rs1])
	case isa.OpPrefetch:
		if pf, ok := m.Model.(PrefetchModel); ok {
			pf.Prefetch(m.EA(in.Mem))
		}
	case isa.OpJmp:
		next = uint64(in.Imm)
	case isa.OpBr:
		if in.Cond.Eval(m.Regs[in.Rs1], m.Regs[in.Rs2]) {
			next = uint64(in.Imm)
		}
	case isa.OpBrI:
		if in.Cond.Eval(m.Regs[in.Rs1], uint64(in.Imm2)) {
			next = uint64(in.Imm)
		}
	case isa.OpCall:
		m.Regs[isa.LR] = next
		next = uint64(in.Imm)
	case isa.OpRet:
		next = m.Regs[isa.LR]
	case isa.OpJmpInd:
		next = m.Regs[in.Rs1]
	default:
		return pc, fmt.Errorf("vm: unimplemented opcode %v at pc %#x", in.Op, pc)
	}
	m.Cycles += cost
	m.Instrs++
	return next, nil
}

// Step fetches and executes the instruction at the current PC.
func (m *Machine) Step() error {
	in, ok := m.Prog.InstrAt(m.PC)
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadPC, m.PC)
	}
	next, err := m.ExecInstr(in, m.PC)
	if err != nil {
		return err
	}
	m.PC = next
	return nil
}

// Run executes until the program halts or maxInstrs instructions retire.
// It returns ErrNotHalted if the budget is exhausted first.
func (m *Machine) Run(maxInstrs uint64) error {
	start := m.Instrs
	for !m.Halted {
		if m.Instrs-start >= maxInstrs {
			return fmt.Errorf("%w (%d instructions)", ErrNotHalted, maxInstrs)
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// FixedLatency is a trivial MemModel charging the same stall for every
// access; useful for tests and as a memory-only baseline.
type FixedLatency uint64

// Access implements MemModel.
func (f FixedLatency) Access(addr uint64, size uint8, write bool) uint64 { return uint64(f) }
