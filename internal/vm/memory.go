// Package vm executes guest programs: a sparse paged memory, an interpreter
// with a cycle cost model, and hooks that let higher layers (the runtime
// code manipulator, the offline simulator, the counter model) observe every
// memory reference. The machine is the reproduction's stand-in for the
// physical processor the paper measures: "native execution" is the machine
// running a program with a hardware cache model attached and nothing else.
package vm

import "fmt"

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Memory is a sparse, paged, byte-addressed guest memory. Pages materialize
// zero-filled on first touch. Multi-byte accesses are little endian and may
// straddle page boundaries.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64) *[pageSize]byte {
	pn := addr >> pageShift
	p, ok := m.pages[pn]
	if !ok {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// ByteAt returns the byte at addr.
func (m *Memory) ByteAt(addr uint64) byte {
	pn := addr >> pageShift
	p, ok := m.pages[pn]
	if !ok {
		return 0
	}
	return p[addr&pageMask]
}

// SetByte stores b at addr.
func (m *Memory) SetByte(addr uint64, b byte) {
	m.page(addr)[addr&pageMask] = b
}

// Read returns the little-endian value of the given size (1, 2, 4 or 8
// bytes) at addr, zero extended.
func (m *Memory) Read(addr uint64, size uint8) uint64 {
	off := addr & pageMask
	if off+uint64(size) <= pageSize {
		if p, ok := m.pages[addr>>pageShift]; ok {
			var v uint64
			for i := uint8(0); i < size; i++ {
				v |= uint64(p[off+uint64(i)]) << (8 * i)
			}
			return v
		}
		return 0
	}
	var v uint64
	for i := uint8(0); i < size; i++ {
		v |= uint64(m.ByteAt(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores the low size bytes of v at addr, little endian.
func (m *Memory) Write(addr uint64, size uint8, v uint64) {
	off := addr & pageMask
	if off+uint64(size) <= pageSize {
		p := m.page(addr)
		for i := uint8(0); i < size; i++ {
			p[off+uint64(i)] = byte(v >> (8 * i))
		}
		return
	}
	for i := uint8(0); i < size; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// WriteBytes copies a byte slice into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		off := addr & pageMask
		n := copy(m.page(addr)[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = m.ByteAt(addr + uint64(i))
	}
	return out
}

// PageCount reports the number of materialized pages (for tests and memory
// footprint accounting).
func (m *Memory) PageCount() int { return len(m.pages) }

// String summarizes the memory for debugging.
func (m *Memory) String() string {
	return fmt.Sprintf("vm.Memory{%d pages, %d KiB resident}", len(m.pages), len(m.pages)*pageSize/1024)
}
