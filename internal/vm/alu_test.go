package vm

import (
	"testing"

	"umi/internal/isa"
	"umi/internal/program"
)

// execOne runs a single ALU instruction with preset register inputs and
// returns the destination value.
func execOne(t *testing.T, in isa.Instr, setup map[isa.Reg]uint64) uint64 {
	t.Helper()
	b := program.NewBuilder("one")
	blk := b.Block("entry")
	blk.Nop()
	blk.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	m := New(p, nil)
	for r, v := range setup {
		m.Regs[r] = v
	}
	if _, err := m.ExecInstr(&in, p.Entry); err != nil {
		t.Fatalf("ExecInstr(%v): %v", in, err)
	}
	return m.Regs[in.Rd]
}

func TestALUSemantics(t *testing.T) {
	cases := []struct {
		name  string
		in    isa.Instr
		setup map[isa.Reg]uint64
		want  uint64
	}{
		{"add", isa.Instr{Op: isa.OpAdd, Rd: isa.R0, Rs1: isa.R1, Rs2: isa.R2},
			map[isa.Reg]uint64{isa.R1: 7, isa.R2: 5}, 12},
		{"add-wrap", isa.Instr{Op: isa.OpAdd, Rd: isa.R0, Rs1: isa.R1, Rs2: isa.R2},
			map[isa.Reg]uint64{isa.R1: ^uint64(0), isa.R2: 1}, 0},
		{"sub", isa.Instr{Op: isa.OpSub, Rd: isa.R0, Rs1: isa.R1, Rs2: isa.R2},
			map[isa.Reg]uint64{isa.R1: 5, isa.R2: 7}, ^uint64(1)}, // -2
		{"mul", isa.Instr{Op: isa.OpMul, Rd: isa.R0, Rs1: isa.R1, Rs2: isa.R2},
			map[isa.Reg]uint64{isa.R1: 6, isa.R2: 7}, 42},
		{"div-signed", isa.Instr{Op: isa.OpDiv, Rd: isa.R0, Rs1: isa.R1, Rs2: isa.R2},
			map[isa.Reg]uint64{isa.R1: ^uint64(6), isa.R2: 2}, ^uint64(2)},
		{"and", isa.Instr{Op: isa.OpAnd, Rd: isa.R0, Rs1: isa.R1, Rs2: isa.R2},
			map[isa.Reg]uint64{isa.R1: 0xFF00, isa.R2: 0x0FF0}, 0x0F00},
		{"or", isa.Instr{Op: isa.OpOr, Rd: isa.R0, Rs1: isa.R1, Rs2: isa.R2},
			map[isa.Reg]uint64{isa.R1: 0xF0, isa.R2: 0x0F}, 0xFF},
		{"xor", isa.Instr{Op: isa.OpXor, Rd: isa.R0, Rs1: isa.R1, Rs2: isa.R2},
			map[isa.Reg]uint64{isa.R1: 0xFF, isa.R2: 0x0F}, 0xF0},
		{"shl", isa.Instr{Op: isa.OpShl, Rd: isa.R0, Rs1: isa.R1, Rs2: isa.R2},
			map[isa.Reg]uint64{isa.R1: 1, isa.R2: 12}, 4096},
		{"shl-mask", isa.Instr{Op: isa.OpShl, Rd: isa.R0, Rs1: isa.R1, Rs2: isa.R2},
			map[isa.Reg]uint64{isa.R1: 1, isa.R2: 64}, 1}, // shift amount mod 64
		{"shr", isa.Instr{Op: isa.OpShr, Rd: isa.R0, Rs1: isa.R1, Rs2: isa.R2},
			map[isa.Reg]uint64{isa.R1: 4096, isa.R2: 12}, 1},
		{"addi-neg", isa.Instr{Op: isa.OpAddI, Rd: isa.R0, Rs1: isa.R1, Imm: -3},
			map[isa.Reg]uint64{isa.R1: 10}, 7},
		{"muli", isa.Instr{Op: isa.OpMulI, Rd: isa.R0, Rs1: isa.R1, Imm: 9},
			map[isa.Reg]uint64{isa.R1: 9}, 81},
		{"andi", isa.Instr{Op: isa.OpAndI, Rd: isa.R0, Rs1: isa.R1, Imm: 0xFF},
			map[isa.Reg]uint64{isa.R1: 0x1234}, 0x34},
		{"shri", isa.Instr{Op: isa.OpShrI, Rd: isa.R0, Rs1: isa.R1, Imm: 4},
			map[isa.Reg]uint64{isa.R1: 0x100}, 0x10},
		{"mov", isa.Instr{Op: isa.OpMov, Rd: isa.R0, Rs1: isa.R1},
			map[isa.Reg]uint64{isa.R1: 77}, 77},
		{"movi-neg", isa.Instr{Op: isa.OpMovI, Rd: isa.R0, Imm: -1},
			nil, ^uint64(0)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := execOne(t, c.in, c.setup); got != c.want {
				t.Errorf("got %#x, want %#x", got, c.want)
			}
		})
	}
}

func TestLoadSizesZeroExtend(t *testing.T) {
	b := program.NewBuilder("sizes")
	b.AddData(program.HeapBase, []byte{0xEF, 0xBE, 0xAD, 0xDE, 0x78, 0x56, 0x34, 0x12})
	e := b.Block("entry")
	e.MovI(isa.R2, int64(program.HeapBase))
	e.Load(isa.R0, 1, isa.Mem(isa.R2, 0))
	e.Load(isa.R1, 2, isa.Mem(isa.R2, 0))
	e.Load(isa.R3, 4, isa.Mem(isa.R2, 0))
	e.Load(isa.R4, 8, isa.Mem(isa.R2, 0))
	e.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	m := New(p, nil)
	if err := m.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, c := range []struct {
		r    isa.Reg
		want uint64
	}{
		{isa.R0, 0xEF},
		{isa.R1, 0xBEEF},
		{isa.R3, 0xDEADBEEF},
		{isa.R4, 0x12345678DEADBEEF},
	} {
		if m.Regs[c.r] != c.want {
			t.Errorf("%v = %#x, want %#x", c.r, m.Regs[c.r], c.want)
		}
	}
}

func TestStoreTruncates(t *testing.T) {
	b := program.NewBuilder("trunc")
	e := b.Block("entry")
	e.MovI(isa.R2, int64(program.HeapBase))
	e.MovI(isa.R0, -1) // all ones
	e.Store(isa.R0, 8, isa.Mem(isa.R2, 0))
	e.MovI(isa.R1, 0x42)
	e.Store(isa.R1, 1, isa.Mem(isa.R2, 0)) // overwrite only the low byte
	e.Load(isa.R3, 8, isa.Mem(isa.R2, 0))
	e.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	m := New(p, nil)
	if err := m.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := uint64(0xFFFFFFFFFFFFFF42); m.Regs[isa.R3] != want {
		t.Errorf("R3 = %#x, want %#x", m.Regs[isa.R3], want)
	}
}

func TestIndexedAddressing(t *testing.T) {
	b := program.NewBuilder("idx")
	b.AddWords(program.HeapBase+3*8+16, []uint64{0xCAFE})
	e := b.Block("entry")
	e.MovI(isa.R2, int64(program.HeapBase))
	e.MovI(isa.R1, 3)
	e.Load(isa.R0, 8, isa.MemIdx(isa.R2, isa.R1, 8, 16))
	e.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	m := New(p, nil)
	if err := m.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Regs[isa.R0] != 0xCAFE {
		t.Errorf("indexed load = %#x, want 0xCAFE", m.Regs[isa.R0])
	}
}

func TestPrefetchIsArchitecturallyInvisible(t *testing.T) {
	b := program.NewBuilder("pf")
	e := b.Block("entry")
	e.MovI(isa.R2, int64(program.HeapBase))
	e.Prefetch(isa.Mem(isa.R2, 4096))
	e.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	var refs int
	m := New(p, nil)
	m.RefHook = func(pc, addr uint64, size uint8, write bool) { refs++ }
	before := m.Regs
	if err := m.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if refs != 0 {
		t.Error("prefetch must not invoke the reference hook")
	}
	after := m.Regs
	after[isa.R2] = before[isa.R2] // R2 was set by the program
	// No other register may change.
	for i := range after {
		if isa.Reg(i) == isa.R2 {
			continue
		}
		if after[i] != before[i] {
			t.Errorf("prefetch changed register %v", isa.Reg(i))
		}
	}
}
