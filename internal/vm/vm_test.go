package vm

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"umi/internal/isa"
	"umi/internal/program"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	m.Write(0x1000, 8, 0x1122334455667788)
	if got := m.Read(0x1000, 8); got != 0x1122334455667788 {
		t.Errorf("Read8 = %#x", got)
	}
	if got := m.Read(0x1000, 4); got != 0x55667788 {
		t.Errorf("Read4 = %#x", got)
	}
	if got := m.Read(0x1004, 4); got != 0x11223344 {
		t.Errorf("Read4 high = %#x", got)
	}
	if got := m.Read(0x1000, 1); got != 0x88 {
		t.Errorf("Read1 = %#x", got)
	}
	if got := m.Read(0x2000, 8); got != 0 {
		t.Errorf("untouched memory = %#x, want 0", got)
	}
}

func TestMemoryPageStraddle(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 3) // 8-byte access crosses the page boundary
	m.Write(addr, 8, 0xAABBCCDDEEFF0011)
	if got := m.Read(addr, 8); got != 0xAABBCCDDEEFF0011 {
		t.Errorf("straddling Read = %#x", got)
	}
	if m.PageCount() != 2 {
		t.Errorf("PageCount = %d, want 2", m.PageCount())
	}
}

func TestMemoryBytes(t *testing.T) {
	m := NewMemory()
	data := make([]byte, 3*pageSize)
	for i := range data {
		data[i] = byte(i)
	}
	m.WriteBytes(0x10, data)
	back := m.ReadBytes(0x10, len(data))
	for i := range data {
		if back[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, back[i], data[i])
		}
	}
}

func TestMemoryQuick(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, v uint64, szSel uint8) bool {
		addr %= 1 << 30
		size := uint8(1 << (szSel % 4))
		m.Write(addr, size, v)
		want := v
		if size < 8 {
			want &= 1<<(8*size) - 1
		}
		return m.Read(addr, size) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// sumProgram sums n consecutive 8-byte words at HeapBase into R0.
func sumProgram(t *testing.T, n int64, words []uint64) *program.Program {
	t.Helper()
	b := program.NewBuilder("sum")
	b.AddWords(program.HeapBase, words)
	e := b.Block("entry")
	e.MovI(isa.R0, 0)                       // acc
	e.MovI(isa.R1, 0)                       // i
	e.MovI(isa.R2, n)                       // limit
	e.MovI(isa.R3, int64(program.HeapBase)) // base
	l := b.Block("loop")
	l.Load(isa.R4, 8, isa.MemIdx(isa.R3, isa.R1, 8, 0))
	l.Add(isa.R0, isa.R0, isa.R4)
	l.AddI(isa.R1, isa.R1, 1)
	l.Br(isa.CondLT, isa.R1, isa.R2, "loop")
	b.Block("done").Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestRunSumLoop(t *testing.T) {
	words := []uint64{3, 5, 7, 11, 13}
	p := sumProgram(t, int64(len(words)), words)
	m := New(p, nil)
	if err := m.Run(1_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Regs[isa.R0] != 39 {
		t.Errorf("sum = %d, want 39", m.Regs[isa.R0])
	}
	if !m.Halted {
		t.Error("machine must be halted")
	}
	// 4 entry movi + fall-through jmp + 5*4 loop + exit fall-through jmp +
	// halt = 27 instructions.
	if m.Instrs != 27 {
		t.Errorf("Instrs = %d, want 27", m.Instrs)
	}
}

func TestRefHookSeesEveryReference(t *testing.T) {
	words := []uint64{1, 2, 3}
	p := sumProgram(t, 3, words)
	m := New(p, nil)
	var refs []uint64
	m.RefHook = func(pc, addr uint64, size uint8, write bool) {
		if write {
			t.Error("sum loop performs no stores")
		}
		if size != 8 {
			t.Errorf("size = %d, want 8", size)
		}
		refs = append(refs, addr)
	}
	if err := m.Run(1_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []uint64{program.HeapBase, program.HeapBase + 8, program.HeapBase + 16}
	if len(refs) != len(want) {
		t.Fatalf("refs = %v, want %v", refs, want)
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Errorf("ref %d = %#x, want %#x", i, refs[i], want[i])
		}
	}
}

func TestCycleAccounting(t *testing.T) {
	words := []uint64{1}
	p := sumProgram(t, 1, words)
	base := New(p, nil)
	if err := base.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	slow := New(p, FixedLatency(100))
	if err := slow.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if slow.Cycles != base.Cycles+100 {
		t.Errorf("latency model: cycles = %d, want %d", slow.Cycles, base.Cycles+100)
	}
}

func TestDivideByZero(t *testing.T) {
	b := program.NewBuilder("div0")
	blk := b.Block("entry")
	blk.MovI(isa.R1, 10)
	blk.MovI(isa.R2, 0)
	blk.Div(isa.R0, isa.R1, isa.R2)
	blk.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	m := New(p, nil)
	if err := m.Run(10); !errors.Is(err, ErrDivideByZero) {
		t.Errorf("Run = %v, want ErrDivideByZero", err)
	}
}

func TestBadPC(t *testing.T) {
	b := program.NewBuilder("p")
	blk := b.Block("entry")
	blk.MovI(isa.R1, 0x99999990)
	blk.JmpInd(isa.R1)
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	m := New(p, nil)
	if err := m.Run(10); !errors.Is(err, ErrBadPC) {
		t.Errorf("Run = %v, want ErrBadPC", err)
	}
}

func TestBudgetExhausted(t *testing.T) {
	b := program.NewBuilder("spin")
	b.Block("entry").Jmp("entry")
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	m := New(p, nil)
	if err := m.Run(100); !errors.Is(err, ErrNotHalted) {
		t.Errorf("Run = %v, want ErrNotHalted", err)
	}
	if m.Instrs != 100 {
		t.Errorf("Instrs = %d, want 100", m.Instrs)
	}
}

func TestCallRet(t *testing.T) {
	b := program.NewBuilder("callret")
	e := b.Block("entry")
	e.MovI(isa.R0, 5)
	e.Call("double")
	e.Call("double")
	e.Halt()
	f := b.Block("double")
	f.Add(isa.R0, isa.R0, isa.R0)
	f.Ret()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	m := New(p, nil)
	if err := m.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Regs[isa.R0] != 20 {
		t.Errorf("R0 = %d, want 20", m.Regs[isa.R0])
	}
}

func TestStackConventions(t *testing.T) {
	b := program.NewBuilder("stack")
	e := b.Block("entry")
	e.AddI(isa.SP, isa.SP, -16)
	e.MovI(isa.R0, 42)
	e.Store(isa.R0, 8, isa.Mem(isa.SP, 0))
	e.Load(isa.R1, 8, isa.Mem(isa.SP, 0))
	e.AddI(isa.SP, isa.SP, 16)
	e.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	m := New(p, nil)
	if err := m.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Regs[isa.R1] != 42 {
		t.Errorf("R1 = %d, want 42", m.Regs[isa.R1])
	}
	if m.Regs[isa.SP] != program.StackBase {
		t.Errorf("SP = %#x, want %#x", m.Regs[isa.SP], program.StackBase)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	words := []uint64{9, 9}
	p := sumProgram(t, 2, words)
	m := New(p, nil)
	if err := m.Run(1000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	m.Reset()
	if m.Cycles != 0 || m.Instrs != 0 || m.Halted || m.PC != p.Entry {
		t.Error("Reset did not clear execution state")
	}
	if got := m.Mem.Read(program.HeapBase, 8); got != 9 {
		t.Errorf("data segment not reinstalled: %d", got)
	}
	if err := m.Run(1000); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if m.Regs[isa.R0] != 18 {
		t.Errorf("sum after reset = %d, want 18", m.Regs[isa.R0])
	}
}

// Property: a random straight-line ALU program executes deterministically —
// two machines running it produce identical register files.
func TestDeterminismQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := program.NewBuilder("alu")
		blk := b.Block("entry")
		for i := 0; i < 50; i++ {
			rd := isa.Reg(r.Intn(13))
			rs1 := isa.Reg(r.Intn(13))
			rs2 := isa.Reg(r.Intn(13))
			switch r.Intn(5) {
			case 0:
				blk.Add(rd, rs1, rs2)
			case 1:
				blk.Sub(rd, rs1, rs2)
			case 2:
				blk.Mul(rd, rs1, rs2)
			case 3:
				blk.MovI(rd, r.Int63n(1<<30))
			case 4:
				blk.Xor(rd, rs1, rs2)
			}
		}
		blk.Halt()
		p, err := b.Assemble()
		if err != nil {
			return false
		}
		m1, m2 := New(p, nil), New(p, nil)
		if m1.Run(100) != nil || m2.Run(100) != nil {
			return false
		}
		return m1.Regs == m2.Regs && m1.Cycles == m2.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMemoryAgainstMapModel drives the paged memory and a trivially
// correct map-of-bytes model with identical random operations.
func TestMemoryAgainstMapModel(t *testing.T) {
	mem := NewMemory()
	model := make(map[uint64]byte)
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 30_000; i++ {
		addr := uint64(r.Intn(1 << 16)) // heavy overlap
		size := uint8(1 << r.Intn(4))
		if r.Intn(2) == 0 {
			v := r.Uint64()
			mem.Write(addr, size, v)
			for b := uint8(0); b < size; b++ {
				model[addr+uint64(b)] = byte(v >> (8 * b))
			}
		} else {
			got := mem.Read(addr, size)
			var want uint64
			for b := uint8(0); b < size; b++ {
				want |= uint64(model[addr+uint64(b)]) << (8 * b)
			}
			if got != want {
				t.Fatalf("op %d: Read(%#x, %d) = %#x, want %#x", i, addr, size, got, want)
			}
		}
	}
}
