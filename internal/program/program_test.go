package program

import (
	"strings"
	"testing"
	"testing/quick"

	"umi/internal/isa"
)

func buildLoop(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("loop")
	entry := b.Block("entry")
	entry.MovI(isa.R0, 0)
	entry.MovI(isa.R1, 10)
	loop := b.Block("loop")
	loop.Load(isa.R2, 8, isa.MemIdx(isa.R3, isa.R0, 8, 0))
	loop.AddI(isa.R0, isa.R0, 1)
	loop.Br(isa.CondLT, isa.R0, isa.R1, "loop")
	b.Block("exit").Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestAssembleLayout(t *testing.T) {
	p := buildLoop(t)
	if p.Base != CodeBase {
		t.Errorf("Base = %#x, want %#x", p.Base, CodeBase)
	}
	if p.Entry != p.Symbols["entry"] {
		t.Errorf("Entry = %#x, want symbol entry %#x", p.Entry, p.Symbols["entry"])
	}
	// entry: movi, movi, fallthrough jmp = 3 instrs; loop: load, addi, br,
	// fallthrough jmp = 4; exit: halt = 1.
	if len(p.Instrs) != 8 {
		t.Fatalf("len(Instrs) = %d, want 8", len(p.Instrs))
	}
	if p.Symbols["loop"] != CodeBase+3*isa.InstrBytes {
		t.Errorf("loop at %#x, want %#x", p.Symbols["loop"], CodeBase+3*isa.InstrBytes)
	}
	// The fall-through jump at the end of entry must target loop.
	j := p.Instrs[2]
	if j.Op != isa.OpJmp || uint64(j.Imm) != p.Symbols["loop"] {
		t.Errorf("fall-through = %v, want jmp to loop %#x", j, p.Symbols["loop"])
	}
	// The conditional branch inside loop must target loop.
	br := p.Instrs[5]
	if br.Op != isa.OpBr || uint64(br.Imm) != p.Symbols["loop"] {
		t.Errorf("branch = %v, want br to %#x", br, p.Symbols["loop"])
	}
}

func TestPCIndexRoundTrip(t *testing.T) {
	p := buildLoop(t)
	for i := range p.Instrs {
		pc := p.PCOf(i)
		j, ok := p.IndexOf(pc)
		if !ok || j != i {
			t.Fatalf("IndexOf(PCOf(%d)) = %d, %v", i, j, ok)
		}
		in, ok := p.InstrAt(pc)
		if !ok || in != &p.Instrs[i] {
			t.Fatalf("InstrAt(%#x) mismatch", pc)
		}
	}
	if _, ok := p.IndexOf(p.Base - isa.InstrBytes); ok {
		t.Error("IndexOf accepted address below base")
	}
	if _, ok := p.IndexOf(p.Base + 1); ok {
		t.Error("IndexOf accepted misaligned address")
	}
	if _, ok := p.IndexOf(p.End()); ok {
		t.Error("IndexOf accepted address past end")
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Block("entry").Jmp("nowhere")
	if _, err := b.Assemble(); err == nil {
		t.Error("Assemble accepted undefined label")
	}
}

func TestUndefinedEntry(t *testing.T) {
	b := NewBuilder("bad")
	b.Block("entry").Halt()
	b.SetEntry("missing")
	if _, err := b.Assemble(); err == nil {
		t.Error("Assemble accepted undefined entry")
	}
}

func TestEmptyProgram(t *testing.T) {
	if _, err := NewBuilder("empty").Assemble(); err == nil {
		t.Error("Assemble accepted empty program")
	}
}

func TestInstrAfterTerminator(t *testing.T) {
	b := NewBuilder("bad")
	blk := b.Block("entry")
	blk.Halt()
	blk.Nop()
	if _, err := b.Assemble(); err == nil {
		t.Error("Assemble accepted instruction after terminator")
	}
}

func TestFinalBlockGetsHalt(t *testing.T) {
	b := NewBuilder("p")
	b.Block("entry").MovI(isa.R0, 1)
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	last := p.Instrs[len(p.Instrs)-1]
	if last.Op != isa.OpHalt {
		t.Errorf("final instruction = %v, want halt", last)
	}
}

func TestStaticCounts(t *testing.T) {
	b := NewBuilder("p")
	blk := b.Block("entry")
	blk.Load(isa.R0, 8, isa.Mem(isa.R1, 0))
	blk.Load(isa.R0, 8, isa.Mem(isa.R1, 8))
	blk.Store(isa.R0, 8, isa.Mem(isa.R2, 0))
	blk.Prefetch(isa.Mem(isa.R1, 64))
	blk.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if got := p.StaticLoads(); got != 2 {
		t.Errorf("StaticLoads = %d, want 2", got)
	}
	if got := p.StaticStores(); got != 1 {
		t.Errorf("StaticStores = %d, want 1", got)
	}
}

func TestDisassembleContainsLabels(t *testing.T) {
	p := buildLoop(t)
	dis := p.Disassemble()
	for _, want := range []string{"entry:", "loop:", "exit:", "load8", "br.lt"} {
		if !strings.Contains(dis, want) {
			t.Errorf("Disassemble missing %q:\n%s", want, dis)
		}
	}
}

func TestAddWords(t *testing.T) {
	b := NewBuilder("p")
	b.Block("entry").Halt()
	b.AddWords(HeapBase, []uint64{0x1122334455667788, 42})
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(p.Data) != 1 {
		t.Fatalf("len(Data) = %d, want 1", len(p.Data))
	}
	seg := p.Data[0]
	if seg.Addr != HeapBase || len(seg.Bytes) != 16 {
		t.Fatalf("segment = %#x len %d", seg.Addr, len(seg.Bytes))
	}
	if seg.Bytes[0] != 0x88 || seg.Bytes[7] != 0x11 || seg.Bytes[8] != 42 {
		t.Errorf("little-endian encoding wrong: % x", seg.Bytes)
	}
}

func TestBlockReopen(t *testing.T) {
	b := NewBuilder("p")
	blk := b.Block("entry")
	blk.MovI(isa.R0, 1)
	same := b.Block("entry")
	if same != blk {
		t.Fatal("Block with same label must return the same builder")
	}
	same.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(p.Instrs) != 2 {
		t.Errorf("len(Instrs) = %d, want 2", len(p.Instrs))
	}
}

// Property: for any chain length, assembling N sequential blocks produces
// symbols in strictly increasing address order and a valid program.
func TestChainedBlocksQuick(t *testing.T) {
	f := func(n uint8) bool {
		k := int(n%20) + 2
		b := NewBuilder("chain")
		for i := 0; i < k; i++ {
			blk := b.Block(blockName(i))
			blk.AddI(isa.R0, isa.R0, 1)
			if i == k-1 {
				blk.Halt()
			}
		}
		p, err := b.Assemble()
		if err != nil {
			return false
		}
		prev := uint64(0)
		for i := 0; i < k; i++ {
			addr := p.Symbols[blockName(i)]
			if i > 0 && addr <= prev {
				return false
			}
			prev = addr
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func blockName(i int) string { return "b" + string(rune('a'+i)) }

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble must panic on invalid programs")
		}
	}()
	b := NewBuilder("bad")
	b.Block("entry").Jmp("nowhere")
	b.MustAssemble()
}

func TestMustAssembleOK(t *testing.T) {
	b := NewBuilder("ok")
	b.Block("entry").Halt()
	if p := b.MustAssemble(); p == nil || len(p.Instrs) != 1 {
		t.Error("MustAssemble must return the program")
	}
}

func TestBuilderFullALUCoverage(t *testing.T) {
	b := NewBuilder("alu")
	blk := b.Block("entry")
	blk.Div(isa.R0, isa.R1, isa.R2)
	blk.And(isa.R0, isa.R1, isa.R2)
	blk.Or(isa.R0, isa.R1, isa.R2)
	blk.Xor(isa.R0, isa.R1, isa.R2)
	blk.Shl(isa.R0, isa.R1, isa.R2)
	blk.Mul(isa.R0, isa.R1, isa.R2)
	blk.Sub(isa.R0, isa.R1, isa.R2)
	blk.Mov(isa.R0, isa.R1)
	blk.MulI(isa.R0, isa.R1, 3)
	blk.ShrI(isa.R0, isa.R1, 2)
	blk.AndI(isa.R0, isa.R1, 0xF)
	blk.Nop()
	blk.JmpInd(isa.R3)
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	wantOps := []isa.Op{isa.OpDiv, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl,
		isa.OpMul, isa.OpSub, isa.OpMov, isa.OpMulI, isa.OpShrI, isa.OpAndI,
		isa.OpNop, isa.OpJmpInd}
	for i, op := range wantOps {
		if p.Instrs[i].Op != op {
			t.Errorf("instr %d = %v, want %v", i, p.Instrs[i].Op, op)
		}
	}
	if blk.Label() != "entry" {
		t.Errorf("Label = %q", blk.Label())
	}
}

func TestProgramEnd(t *testing.T) {
	b := NewBuilder("p")
	b.Block("entry").Halt()
	p, _ := b.Assemble()
	if p.End() != p.Base+isa.InstrBytes {
		t.Errorf("End = %#x", p.End())
	}
}
