// Package program represents guest programs: basic blocks of ISA
// instructions assembled into a flat code image, plus initialized data
// segments. A Builder DSL constructs programs with symbolic labels; Assemble
// lays out blocks, resolves labels to absolute instruction addresses, and
// produces an immutable Program the virtual machine executes.
package program

import (
	"fmt"
	"sort"
	"strings"

	"umi/internal/isa"
)

// Memory layout constants for assembled programs. Code, stack, globals and
// heap live in one flat address space, mirroring a conventional process
// image. Workloads allocate their arrays from HeapBase upward.
const (
	CodeBase   uint64 = 0x0040_0000
	GlobalBase uint64 = 0x0800_0000
	HeapBase   uint64 = 0x1000_0000
	StackBase  uint64 = 0x7FFF_F000 // initial SP; stack grows down
)

// DataSegment is a host-initialized region of guest memory, installed
// before execution begins. It stands in for a binary's initialized data
// sections and for the setup phases of workloads that would otherwise
// dominate simulation time.
type DataSegment struct {
	Addr  uint64
	Bytes []byte
}

// Program is an assembled guest program.
type Program struct {
	Name    string
	Entry   uint64
	Base    uint64
	Instrs  []isa.Instr
	Symbols map[string]uint64 // block label -> address
	Data    []DataSegment
}

// PCOf converts an instruction index to its address.
func (p *Program) PCOf(index int) uint64 { return p.Base + uint64(index)*isa.InstrBytes }

// IndexOf converts an instruction address to its index, reporting whether
// the address falls on an instruction boundary inside the image.
func (p *Program) IndexOf(pc uint64) (int, bool) {
	if pc < p.Base {
		return 0, false
	}
	off := pc - p.Base
	if off%isa.InstrBytes != 0 {
		return 0, false
	}
	i := int(off / isa.InstrBytes)
	if i >= len(p.Instrs) {
		return 0, false
	}
	return i, true
}

// InstrAt fetches the instruction at pc.
func (p *Program) InstrAt(pc uint64) (*isa.Instr, bool) {
	i, ok := p.IndexOf(pc)
	if !ok {
		return nil, false
	}
	return &p.Instrs[i], true
}

// End returns the first address past the code image.
func (p *Program) End() uint64 { return p.Base + uint64(len(p.Instrs))*isa.InstrBytes }

// StaticLoads counts load instructions in the image.
func (p *Program) StaticLoads() int {
	n := 0
	for i := range p.Instrs {
		if p.Instrs[i].Op.IsLoad() {
			n++
		}
	}
	return n
}

// StaticStores counts store instructions in the image.
func (p *Program) StaticStores() int {
	n := 0
	for i := range p.Instrs {
		if p.Instrs[i].Op.IsStore() {
			n++
		}
	}
	return n
}

// Disassemble renders the program as text, one instruction per line, with
// block labels interleaved.
func (p *Program) Disassemble() string {
	byAddr := make(map[uint64][]string)
	for sym, addr := range p.Symbols {
		byAddr[addr] = append(byAddr[addr], sym)
	}
	var sb strings.Builder
	for i := range p.Instrs {
		pc := p.PCOf(i)
		if syms := byAddr[pc]; len(syms) > 0 {
			sort.Strings(syms)
			for _, s := range syms {
				fmt.Fprintf(&sb, "%s:\n", s)
			}
		}
		fmt.Fprintf(&sb, "  %#08x  %v\n", pc, p.Instrs[i])
	}
	return sb.String()
}

// Validate checks structural invariants: every instruction well formed,
// every direct branch targeting an instruction boundary inside the image,
// and the entry point valid.
func (p *Program) Validate() error {
	if _, ok := p.IndexOf(p.Entry); !ok {
		return fmt.Errorf("program %s: entry %#x not inside image", p.Name, p.Entry)
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if err := in.Validate(); err != nil {
			return fmt.Errorf("program %s: instr %d: %w", p.Name, i, err)
		}
		if tgt, ok := in.Target(); ok {
			if _, ok := p.IndexOf(tgt); !ok {
				return fmt.Errorf("program %s: instr %d (%v): branch target %#x outside image",
					p.Name, i, in, tgt)
			}
		}
	}
	return nil
}
