package program

import (
	"fmt"

	"umi/internal/isa"
)

// Builder constructs a Program from labelled basic blocks. Blocks are laid
// out in definition order starting at CodeBase. Branch targets are symbolic
// labels resolved during Assemble. A block that does not end in a
// terminator falls through: Assemble appends an explicit jump to the next
// block, so every assembled block ends with a branch (the property the
// runtime's block discovery relies on).
type Builder struct {
	name   string
	blocks []*BlockBuilder
	byName map[string]*BlockBuilder
	entry  string
	data   []DataSegment
	errs   []error
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]*BlockBuilder)}
}

// SetEntry selects the entry block by label. If never called, the first
// defined block is the entry.
func (b *Builder) SetEntry(label string) { b.entry = label }

// Block starts (or retrieves, if already started) the block with the given
// label. Revisiting a block appends to it.
func (b *Builder) Block(label string) *BlockBuilder {
	if blk, ok := b.byName[label]; ok {
		return blk
	}
	blk := &BlockBuilder{b: b, label: label}
	b.blocks = append(b.blocks, blk)
	b.byName[label] = blk
	return blk
}

// AddData registers a host-initialized data segment.
func (b *Builder) AddData(addr uint64, bytes []byte) {
	b.data = append(b.data, DataSegment{Addr: addr, Bytes: bytes})
}

// AddWords installs 8-byte little-endian words starting at addr.
func (b *Builder) AddWords(addr uint64, words []uint64) {
	buf := make([]byte, len(words)*8)
	for i, w := range words {
		for j := 0; j < 8; j++ {
			buf[i*8+j] = byte(w >> (8 * j))
		}
	}
	b.AddData(addr, buf)
}

func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Assemble lays out the blocks, resolves labels, validates and returns the
// Program.
func (b *Builder) Assemble() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.blocks) == 0 {
		return nil, fmt.Errorf("program %s: no blocks", b.name)
	}
	// Lay out blocks and assign addresses.
	symbols := make(map[string]uint64, len(b.blocks))
	total := 0
	for i, blk := range b.blocks {
		symbols[blk.label] = CodeBase + uint64(total)*isa.InstrBytes
		n := len(blk.instrs)
		if !blk.terminated() && i < len(b.blocks)-1 {
			n++ // room for the fall-through jump
		}
		if !blk.terminated() && i == len(b.blocks)-1 {
			n++ // final block falls off the end: append halt
		}
		total += n
	}
	instrs := make([]isa.Instr, 0, total)
	fixups := make([]fixup, 0)
	for i, blk := range b.blocks {
		for j, in := range blk.instrs {
			if lbl, ok := blk.targets[j]; ok {
				fixups = append(fixups, fixup{index: len(instrs), label: lbl})
				_ = in
			}
			instrs = append(instrs, in)
		}
		if !blk.terminated() {
			if i < len(b.blocks)-1 {
				fixups = append(fixups, fixup{index: len(instrs), label: b.blocks[i+1].label})
				instrs = append(instrs, isa.Instr{Op: isa.OpJmp, Mem: isa.NoMem})
			} else {
				instrs = append(instrs, isa.Instr{Op: isa.OpHalt, Mem: isa.NoMem})
			}
		}
	}
	for _, f := range fixups {
		addr, ok := symbols[f.label]
		if !ok {
			return nil, fmt.Errorf("program %s: undefined label %q", b.name, f.label)
		}
		instrs[f.index].Imm = int64(addr)
	}
	entry := b.blocks[0].label
	if b.entry != "" {
		entry = b.entry
	}
	entryAddr, ok := symbols[entry]
	if !ok {
		return nil, fmt.Errorf("program %s: undefined entry label %q", b.name, entry)
	}
	p := &Program{
		Name:    b.name,
		Entry:   entryAddr,
		Base:    CodeBase,
		Instrs:  instrs,
		Symbols: symbols,
		Data:    b.data,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error; for use by workload
// constructors whose programs are fixed at build time.
func (b *Builder) MustAssemble() *Program {
	p, err := b.Assemble()
	if err != nil {
		panic(err)
	}
	return p
}

type fixup struct {
	index int
	label string
}

// BlockBuilder appends instructions to one basic block.
type BlockBuilder struct {
	b       *Builder
	label   string
	instrs  []isa.Instr
	targets map[int]string // instruction index -> target label
	done    bool
}

// Label returns the block's label.
func (blk *BlockBuilder) Label() string { return blk.label }

func (blk *BlockBuilder) terminated() bool { return blk.done }

func (blk *BlockBuilder) add(in isa.Instr) *BlockBuilder {
	if blk.done {
		blk.b.errorf("program %s: block %q: instruction after terminator", blk.b.name, blk.label)
		return blk
	}
	blk.instrs = append(blk.instrs, in)
	return blk
}

func (blk *BlockBuilder) addBranch(in isa.Instr, target string) *BlockBuilder {
	if blk.done {
		blk.b.errorf("program %s: block %q: instruction after terminator", blk.b.name, blk.label)
		return blk
	}
	if blk.targets == nil {
		blk.targets = make(map[int]string)
	}
	blk.targets[len(blk.instrs)] = target
	blk.instrs = append(blk.instrs, in)
	return blk
}

// --- ALU ---

// Add appends rd = rs1 + rs2.
func (blk *BlockBuilder) Add(rd, rs1, rs2 isa.Reg) *BlockBuilder {
	return blk.add(isa.Instr{Op: isa.OpAdd, Rd: rd, Rs1: rs1, Rs2: rs2, Mem: isa.NoMem})
}

// Sub appends rd = rs1 - rs2.
func (blk *BlockBuilder) Sub(rd, rs1, rs2 isa.Reg) *BlockBuilder {
	return blk.add(isa.Instr{Op: isa.OpSub, Rd: rd, Rs1: rs1, Rs2: rs2, Mem: isa.NoMem})
}

// Mul appends rd = rs1 * rs2.
func (blk *BlockBuilder) Mul(rd, rs1, rs2 isa.Reg) *BlockBuilder {
	return blk.add(isa.Instr{Op: isa.OpMul, Rd: rd, Rs1: rs1, Rs2: rs2, Mem: isa.NoMem})
}

// Div appends rd = rs1 / rs2 (signed; division by zero halts the machine).
func (blk *BlockBuilder) Div(rd, rs1, rs2 isa.Reg) *BlockBuilder {
	return blk.add(isa.Instr{Op: isa.OpDiv, Rd: rd, Rs1: rs1, Rs2: rs2, Mem: isa.NoMem})
}

// And appends rd = rs1 & rs2.
func (blk *BlockBuilder) And(rd, rs1, rs2 isa.Reg) *BlockBuilder {
	return blk.add(isa.Instr{Op: isa.OpAnd, Rd: rd, Rs1: rs1, Rs2: rs2, Mem: isa.NoMem})
}

// Or appends rd = rs1 | rs2.
func (blk *BlockBuilder) Or(rd, rs1, rs2 isa.Reg) *BlockBuilder {
	return blk.add(isa.Instr{Op: isa.OpOr, Rd: rd, Rs1: rs1, Rs2: rs2, Mem: isa.NoMem})
}

// Xor appends rd = rs1 ^ rs2.
func (blk *BlockBuilder) Xor(rd, rs1, rs2 isa.Reg) *BlockBuilder {
	return blk.add(isa.Instr{Op: isa.OpXor, Rd: rd, Rs1: rs1, Rs2: rs2, Mem: isa.NoMem})
}

// Shl appends rd = rs1 << rs2.
func (blk *BlockBuilder) Shl(rd, rs1, rs2 isa.Reg) *BlockBuilder {
	return blk.add(isa.Instr{Op: isa.OpShl, Rd: rd, Rs1: rs1, Rs2: rs2, Mem: isa.NoMem})
}

// AddI appends rd = rs1 + imm.
func (blk *BlockBuilder) AddI(rd, rs1 isa.Reg, imm int64) *BlockBuilder {
	return blk.add(isa.Instr{Op: isa.OpAddI, Rd: rd, Rs1: rs1, Imm: imm, Mem: isa.NoMem})
}

// MulI appends rd = rs1 * imm.
func (blk *BlockBuilder) MulI(rd, rs1 isa.Reg, imm int64) *BlockBuilder {
	return blk.add(isa.Instr{Op: isa.OpMulI, Rd: rd, Rs1: rs1, Imm: imm, Mem: isa.NoMem})
}

// AndI appends rd = rs1 & imm.
func (blk *BlockBuilder) AndI(rd, rs1 isa.Reg, imm int64) *BlockBuilder {
	return blk.add(isa.Instr{Op: isa.OpAndI, Rd: rd, Rs1: rs1, Imm: imm, Mem: isa.NoMem})
}

// ShrI appends rd = rs1 >> imm (logical).
func (blk *BlockBuilder) ShrI(rd, rs1 isa.Reg, imm int64) *BlockBuilder {
	return blk.add(isa.Instr{Op: isa.OpShrI, Rd: rd, Rs1: rs1, Imm: imm, Mem: isa.NoMem})
}

// Mov appends rd = rs1.
func (blk *BlockBuilder) Mov(rd, rs1 isa.Reg) *BlockBuilder {
	return blk.add(isa.Instr{Op: isa.OpMov, Rd: rd, Rs1: rs1, Mem: isa.NoMem})
}

// MovI appends rd = imm.
func (blk *BlockBuilder) MovI(rd isa.Reg, imm int64) *BlockBuilder {
	return blk.add(isa.Instr{Op: isa.OpMovI, Rd: rd, Imm: imm, Mem: isa.NoMem})
}

// --- memory ---

// Load appends rd = mem[ref] with the given access size.
func (blk *BlockBuilder) Load(rd isa.Reg, size uint8, ref isa.MemRef) *BlockBuilder {
	return blk.add(isa.Instr{Op: isa.OpLoad, Rd: rd, Size: size, Mem: ref})
}

// Store appends mem[ref] = rs with the given access size.
func (blk *BlockBuilder) Store(rs isa.Reg, size uint8, ref isa.MemRef) *BlockBuilder {
	return blk.add(isa.Instr{Op: isa.OpStore, Rs1: rs, Size: size, Mem: ref})
}

// Prefetch appends a software prefetch of the line containing ref.
func (blk *BlockBuilder) Prefetch(ref isa.MemRef) *BlockBuilder {
	return blk.add(isa.Instr{Op: isa.OpPrefetch, Mem: ref})
}

// --- control flow (terminators) ---

// Jmp ends the block with an unconditional jump to the labelled block.
func (blk *BlockBuilder) Jmp(target string) *BlockBuilder {
	blk.addBranch(isa.Instr{Op: isa.OpJmp, Mem: isa.NoMem}, target)
	blk.done = true
	return blk
}

// Br appends a conditional branch to the labelled block; execution falls
// through to the following instruction when the condition is false. Br does
// not terminate the block unless it is the last instruction appended.
func (blk *BlockBuilder) Br(cond isa.Cond, rs1, rs2 isa.Reg, target string) *BlockBuilder {
	return blk.addBranch(isa.Instr{Op: isa.OpBr, Cond: cond, Rs1: rs1, Rs2: rs2, Mem: isa.NoMem}, target)
}

// BrI appends a conditional branch comparing rs1 against an immediate.
func (blk *BlockBuilder) BrI(cond isa.Cond, rs1 isa.Reg, imm int64, target string) *BlockBuilder {
	return blk.addBranch(isa.Instr{Op: isa.OpBrI, Cond: cond, Rs1: rs1, Imm2: imm, Mem: isa.NoMem}, target)
}

// Call ends nothing: call is not a block terminator in this DSL because
// control returns; the trace builder still treats it as a block boundary.
func (blk *BlockBuilder) Call(target string) *BlockBuilder {
	return blk.addBranch(isa.Instr{Op: isa.OpCall, Mem: isa.NoMem}, target)
}

// Ret ends the block, returning through the link register.
func (blk *BlockBuilder) Ret() *BlockBuilder {
	blk.add(isa.Instr{Op: isa.OpRet, Mem: isa.NoMem})
	blk.done = true
	return blk
}

// JmpInd ends the block with an indirect jump through rs1.
func (blk *BlockBuilder) JmpInd(rs1 isa.Reg) *BlockBuilder {
	blk.add(isa.Instr{Op: isa.OpJmpInd, Rs1: rs1, Mem: isa.NoMem})
	blk.done = true
	return blk
}

// Halt ends the block and the program.
func (blk *BlockBuilder) Halt() *BlockBuilder {
	blk.add(isa.Instr{Op: isa.OpHalt, Mem: isa.NoMem})
	blk.done = true
	return blk
}

// Nop appends a no-op.
func (blk *BlockBuilder) Nop() *BlockBuilder {
	return blk.add(isa.Instr{Op: isa.OpNop, Mem: isa.NoMem})
}
