// Package stats provides the statistical helpers the evaluation harness
// uses: the coefficient of correlation from §6.2, aggregation, and plain
// text table rendering for reproducing the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Correlation returns the Pearson coefficient of correlation C(s, h)
// between two equal-length samples (§6.2). It returns 0 when either sample
// has zero variance or fewer than two points.
func Correlation(s, h []float64) float64 {
	if len(s) != len(h) || len(s) < 2 {
		return 0
	}
	ms, mh := Mean(s), Mean(h)
	var num, ds, dh float64
	for i := range s {
		a, b := s[i]-ms, h[i]-mh
		num += a * b
		ds += a * a
		dh += b * b
	}
	if ds == 0 || dh == 0 {
		return 0
	}
	return num / math.Sqrt(ds*dh)
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive samples (0 if any sample
// is non-positive or the slice is empty). Running-time ratios are averaged
// geometrically.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Recall returns |P ∩ C| / |C|: the fraction of true delinquent loads that
// the prediction found (§7.1).
func Recall(predicted, truth map[uint64]bool) float64 {
	if len(truth) == 0 {
		return 0
	}
	hit := 0
	for pc := range truth {
		if predicted[pc] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// FalsePositiveRatio returns |P - C| / |P|: the fraction of predictions
// that were wrong (§7.1).
func FalsePositiveRatio(predicted, truth map[uint64]bool) float64 {
	if len(predicted) == 0 {
		return 0
	}
	wrong := 0
	for pc := range predicted {
		if !truth[pc] {
			wrong++
		}
	}
	return float64(wrong) / float64(len(predicted))
}

// Intersection returns P ∩ C.
func Intersection(a, b map[uint64]bool) map[uint64]bool {
	out := make(map[uint64]bool)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// Table renders rows of cells as an aligned plain-text table. The first
// row is the header, separated by a rule.
type Table struct {
	Title string
	rows  [][]string
}

// NewTable creates a table with the given title and header cells.
func NewTable(title string, header ...string) *Table {
	t := &Table{Title: title}
	t.rows = append(t.rows, header)
	return t
}

// AddRow appends one data row.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row formatting each value with its verb.
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			out[i] = v
		case float64:
			out[i] = fmt.Sprintf("%.3f", v)
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, out)
}

// String renders the table.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return t.Title + "\n"
	}
	widths := make([]int, 0)
	for _, row := range t.rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.rows[0])
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.rows[1:] {
		writeRow(row)
	}
	return sb.String()
}

// Pct formats a fraction as a percentage string.
func Pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
