package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCorrelationPerfect(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	h := []float64{10, 20, 30, 40}
	if c := Correlation(s, h); !almostEq(c, 1) {
		t.Errorf("Correlation = %v, want 1", c)
	}
	inv := []float64{40, 30, 20, 10}
	if c := Correlation(s, inv); !almostEq(c, -1) {
		t.Errorf("anti-correlation = %v, want -1", c)
	}
}

func TestCorrelationDegenerate(t *testing.T) {
	if Correlation([]float64{1}, []float64{2}) != 0 {
		t.Error("single point must yield 0")
	}
	if Correlation([]float64{1, 2}, []float64{3}) != 0 {
		t.Error("length mismatch must yield 0")
	}
	if Correlation([]float64{5, 5, 5}, []float64{1, 2, 3}) != 0 {
		t.Error("zero variance must yield 0")
	}
}

// Property: correlation is bounded in [-1, 1] and invariant under positive
// affine transformation of either argument.
func TestCorrelationQuick(t *testing.T) {
	f := func(xs []float64, a float64, b float64) bool {
		if len(xs) < 3 {
			return true
		}
		if len(xs) > 16 {
			xs = xs[:16]
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true
			}
		}
		ys := make([]float64, len(xs))
		scale := math.Mod(math.Abs(a), 10) + 0.5
		off := math.Mod(b, 100)
		for i, x := range xs {
			ys[i] = scale*x + off
		}
		c := Correlation(xs, ys)
		if c < -1.0000001 || c > 1.0000001 {
			return false
		}
		// Positive affine transform of itself: correlation 1 unless
		// degenerate.
		allSame := true
		for _, x := range xs[1:] {
			if x != xs[0] {
				allSame = false
			}
		}
		if allSame {
			return c == 0
		}
		return almostEq(c, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) must be 0")
	}
	if m := Mean([]float64{2, 4, 6}); !almostEq(m, 4) {
		t.Errorf("Mean = %v", m)
	}
	if g := GeoMean([]float64{1, 4, 16}); !almostEq(g, 4) {
		t.Errorf("GeoMean = %v", g)
	}
	if GeoMean([]float64{1, -2}) != 0 {
		t.Error("GeoMean with non-positive input must be 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) must be 0")
	}
}

func set(pcs ...uint64) map[uint64]bool {
	m := make(map[uint64]bool)
	for _, pc := range pcs {
		m[pc] = true
	}
	return m
}

func TestRecallAndFalsePositives(t *testing.T) {
	truth := set(1, 2, 3, 4)
	pred := set(2, 3, 9)
	if r := Recall(pred, truth); !almostEq(r, 0.5) {
		t.Errorf("Recall = %v, want 0.5", r)
	}
	if f := FalsePositiveRatio(pred, truth); !almostEq(f, 1.0/3) {
		t.Errorf("FP ratio = %v, want 1/3", f)
	}
	if Recall(pred, set()) != 0 {
		t.Error("empty truth must yield 0 recall")
	}
	if FalsePositiveRatio(set(), truth) != 0 {
		t.Error("empty prediction must yield 0 FP ratio")
	}
	inter := Intersection(pred, truth)
	if len(inter) != 2 || !inter[2] || !inter[3] {
		t.Errorf("Intersection = %v", inter)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X", "Benchmark", "Value")
	tb.AddRow("mcf", "20.10%")
	tb.AddRowf("parser", 0.5)
	out := tb.String()
	for _, want := range []string{"Table X", "Benchmark", "mcf", "20.10%", "parser", "0.500", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.8815); got != "88.15%" {
		t.Errorf("Pct = %q", got)
	}
}
