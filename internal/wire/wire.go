// Package wire defines umi-profile/v1 and /v2, the compact binary streams
// that carry one UMI run's analyzer-input telemetry out of the capture
// process: the profiled address stream (per analyzer invocation), the
// framed WindowSummary phase history, and the run trailer. A stream
// recorded by `umiprof -emit` and replayed through umi.Replay — locally or
// via the daemon's POST /sessions/{id}/ingest — reproduces the in-process
// run's report byte for byte; that contract is what makes
// capture-once/analyze-many (geometry sweeps over a recording, remote
// analysis) sound.
//
// # Stream grammar
//
//	stream  := magic version [codec] frame*
//	magic   := "UMIP" (4 bytes)
//	version := 0x01 | 0x02 (1 byte)
//	codec   := v2 only: 0x00 stored | 0x01 flate (1 byte)
//	frame   := v1: type (1 byte) · payloadLen (uvarint) · payload
//	           v2: type (1 byte) · method (1 byte)
//	              · method 0x00 (stored): payloadLen (uvarint) · payload
//	              · method 0x01 (coded):  rawLen (uvarint) · codedLen (uvarint)
//	                                      · coded payload (inflates to exactly rawLen)
//
// Frame order is fixed and enforced by the decoder:
//
//	Header (Invocation Profile{n})* [HistoryMeta Window{k}] Trailer EOF
//
// Each Invocation frame declares how many Profile frames follow it; a
// HistoryMeta frame declares how many Window frames follow it; the Trailer
// must be the final frame, with nothing after it. A stream without a
// Trailer is truncated, and truncation is an error — a decoded stream is
// either complete or rejected.
//
// # v2: compression and shard manifest
//
// Version 0x02 keeps the frame payloads' field grammar but adds three
// transport-level mechanisms:
//
//   - Per-frame compression. The codec byte after the version negotiates
//     the block coder for the whole stream (0x01 is DEFLATE); each frame
//     then independently chooses method 0x00 (stored) or 0x01 (coded),
//     so tiny frames never pay the coder's framing overhead. The encoder
//     codes a frame only when that makes it smaller.
//   - Profile cell predictor pre-transform. A v2 profile frame carries a
//     per-column predictor list, then each recorded cell as the zigzag
//     delta from its prediction: predictor 0 is the column's previous
//     recorded cell (seeded from the stream-persistent per-PC last
//     value, so regular strides survive frame boundaries), predictor
//     i+1 is the same row's column i — which captures loads at fixed
//     offsets from another column's address, the common shape of
//     pointer-chasing rows. The encoder picks each column's predictor
//     by exact varint cost; the choice is deterministic, keeping
//     streams canonical.
//   - Shard manifest. The v2 trailer payload opens with a manifest —
//     shard ID, frame count, and a rolling FNV-1a checksum over every
//     on-wire frame byte before the trailer — which the decoder verifies
//     against what it observed. The manifest identifies a shard across
//     retries (duplicate-upload idempotence) and anchors live-tail
//     resume points (Decoder.Checksum at a frame boundary).
//
// A v1 stream is decoded bit-exactly as before; Decoder auto-detects the
// version from the preamble.
//
// # Scalar encodings
//
//   - uvarint: unsigned LEB128 (encoding/binary.Uvarint).
//   - zigzag:  signed values as uvarint((v << 1) XOR (v >> 63)).
//   - float64: IEEE-754 bits, 8 bytes little-endian (exact — miss ratios
//     and thresholds must survive the round trip bit for bit).
//   - u64:     8 bytes little-endian (hashes, where varint buys nothing).
//   - string:  uvarint length then bytes (length ≤ MaxString).
//   - bitmap:  ceil(n/8) bytes, bit i of byte i/8, LSB first; bits past n
//     must be zero (streams are canonical).
//
// PC lists are delta-encoded: the first PC as uvarint, each subsequent PC
// as the zigzag delta from its predecessor (profile op order is trace
// order, not sorted, so deltas may be negative). Sorted PC sets in the
// trailer use plain uvarint deltas.
//
// # Versioning and compatibility
//
// The version byte names the whole grammar. Decoders reject versions they
// do not know; there are no in-band extension points below the version
// byte, so any layout change — new frame type, new field, changed
// encoding — bumps the version. Unknown frame types within a known
// version are an error, not a skip: v1 streams have exactly the six frame
// types below.
//
// # Bounds
//
// Every variable-length structure has a hard cap (the Max* constants), and
// the decoder reads one frame at a time into a reusable buffer — it never
// buffers the whole stream, so decode memory is bounded by the largest
// single frame regardless of stream length. All malformed input surfaces
// as an error from Header/Next; the decoder never panics.
package wire

// Magic opens every stream, followed by the version byte.
const (
	Magic    = "UMIP"
	Version  = 0x01
	Version2 = 0x02
)

// Stream codecs (the byte after a v2 version byte) and per-frame methods.
// CodecStored streams may only use stored frames; CodecFlate streams may
// code any frame with DEFLATE.
const (
	CodecStored = 0x00
	CodecFlate  = 0x01

	methodStored = 0x00
	methodCoded  = 0x01
)

// Frame type bytes.
const (
	frameHeader     = 0x01
	frameInvocation = 0x02
	frameProfile    = 0x03
	frameHistory    = 0x04
	frameWindow     = 0x05
	frameTrailer    = 0x06
)

// Hard limits. Encoding something larger is an encoder error; a stream
// claiming something larger is a decode error. They bound decoder memory:
// one frame payload plus one decoded profile's cells.
const (
	// MaxFramePayload caps a single frame's payload length.
	MaxFramePayload = 4 << 20
	// MaxString caps workload/machine name lengths in the header.
	MaxString = 256
	// MaxProfileOps caps profiled operations per profile frame (the
	// in-process cap is Config.AddressProfileOps, default 256).
	MaxProfileOps = 4096
	// MaxProfileRows caps recorded rows per profile frame.
	MaxProfileRows = 1 << 16
	// MaxProfileCells caps rows × ops — the decoded cell allocation
	// (8 bytes per cell, so at most 8 MiB per profile).
	MaxProfileCells = 1 << 20
	// MaxInvocationProfiles caps profiles declared by one invocation.
	MaxInvocationProfiles = 1 << 12
	// MaxHistoryWindows caps the window count a HistoryMeta may declare.
	MaxHistoryWindows = 1 << 20
	// MaxPCSet caps the trailer's candidate/trace PC set sizes.
	MaxPCSet = 1 << 20
)

// NoCell marks an unrecorded profile cell in Profile.Cells (the trace
// exited before that operation executed in that row). Its value matches
// the in-process sentinel.
const NoCell = ^uint64(0)

// Header is the stream's opening frame: where the stream came from
// (informational) and the full analyzer-relevant configuration, so a
// replay needs nothing but the stream to reproduce the capture-side
// analysis — and a geometry sweep overrides just the cache fields.
type Header struct {
	Workload string // informational: guest program name
	Machine  string // informational: modelled platform name

	CacheName   string // mini-simulator geometry (the capture host's L2)
	CacheSize   uint64
	CacheAssoc  uint64
	CacheLine   uint64
	CachePolicy uint8

	WarmupRows      uint64
	FlushCycleGap   uint64
	AnalyzerPerRef  uint64
	AnalyzerFixed   uint64
	HistoryWindows  int64 // signed: negative disables history capture
	PhaseMissDelta  float64
	PhaseChurnDelta float64
}

// Invocation announces one analyzer invocation: the modelled cycle stamp
// at profile hand-off and the number of Profile frames that follow, in
// the fixed PC-sorted merge order.
type Invocation struct {
	Cycles   uint64
	Profiles int
}

// Profile is one live trace's address profile at analyzer hand-off, with
// the delinquency threshold captured alongside. Cells is the flat
// rows × ops array in recording order; unrecorded cells hold NoCell.
type Profile struct {
	Alpha    float64
	PCs      []uint64
	IsLoad   []bool
	Rows     int
	Cells    []uint64
	Recorded int // populated (non-NoCell) cells; derived during decode
}

// HistoryMeta opens the phase-history section: ring accounting plus the
// number of Window frames that follow (the retained windows, oldest
// first).
type HistoryMeta struct {
	Total        uint64
	PhaseChanges uint64
	Cap          int
	Windows      int
}

// Window is one framed WindowSummary, field for field.
type Window struct {
	Invocation      int
	Cycles          uint64
	Refs            uint64
	Accesses        uint64
	Misses          uint64
	WindowMissRatio float64
	CumMissRatio    float64
	Delinquent      int
	NewDelinquent   int
	DelinquentHash  uint64
	Jaccard         float64
	PhaseChange     bool
	StridedLoads    int
	TopStride       int64
	WSLines         int
}

// Trailer closes the stream with the run-level quantities a replay cannot
// recompute from the profile frames: machine counters, the hardware-model
// L2 statistics (raw counts, so ratios are recomputed exactly), and the
// candidate/trace PC sets (sorted ascending) whose cardinalities the
// report cites. These are the shard-mergeable quantities: counts sum,
// sets union.
type Trailer struct {
	InstrumentEvents uint64
	GuestCycles      uint64
	TotalCycles      uint64
	Instrs           uint64
	HWAccesses       uint64
	HWMisses         uint64
	HWEvictions      uint64
	CandidatePCs     []uint64
	TracePCs         []uint64

	// Shard is the v2 shard manifest. On decode of a v2 stream it holds
	// the manifest the trailer declared (already verified against the
	// observed frame count and rolling checksum); for v1 streams it is
	// zero. On encode, only ShardID is consulted (see Encoder.Trailer);
	// Frames and Checksum are always computed from the frames actually
	// written.
	Shard Manifest
}

// Manifest identifies one shard's content: how many frames precede the
// trailer (header included) and the rolling FNV-1a-64 checksum over their
// on-wire bytes (everything between the stream preamble and the trailer's
// type byte). ShardID names the shard across retries; an encoder given no
// explicit ID derives it from the checksum, so identical content gets an
// identical ID and a re-recorded upload stays idempotent.
type Manifest struct {
	ShardID  uint64
	Frames   uint64
	Checksum uint64
}

// FNV-1a 64-bit, computed incrementally so both codec ends can roll it
// over frame bytes as they stream.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvUpdate(h uint64, b []byte) uint64 {
	for _, x := range b {
		h = (h ^ uint64(x)) * fnvPrime64
	}
	return h
}

// Record is the sum type Decoder.Next yields: one of *Invocation,
// *Profile, *HistoryMeta, *Window, or *Trailer. (The Header is returned
// by Decoder.Header, before iteration starts.)
type Record interface{ wireRecord() }

func (*Invocation) wireRecord()  {}
func (*Profile) wireRecord()     {}
func (*HistoryMeta) wireRecord() {}
func (*Window) wireRecord()      {}
func (*Trailer) wireRecord()     {}

// zigzag maps a signed value onto the unsigned varint space.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
