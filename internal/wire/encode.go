package wire

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
)

// minCodedPayload is the smallest payload the v2 encoder tries to
// compress: below it DEFLATE framing overhead always loses, so small
// frames (invocations, windows) go straight to stored.
const minCodedPayload = 64

// Encoder writes one umi-profile stream (v1 or v2). Frame methods buffer
// the payload, validate it against the format limits and the stream
// grammar, and write the framed record through an internal bufio.Writer;
// errors — both I/O and misuse — are sticky, checked via Err or the final
// Flush. An Encoder is single-goroutine, like the analyzer path that
// feeds it.
type Encoder struct {
	w       *bufio.Writer
	buf     []byte // payload scratch, reused across frames
	err     error
	version byte
	codec   byte

	fw       *flate.Writer     // v2 block coder, Reset per frame
	cbuf     bytes.Buffer      // coded-payload scratch
	cellPrev map[uint64]uint64 // v2 per-PC cell predecessors, stream-persistent
	colPrev  []uint64          // per-column predecessor scratch, one profile frame
	predBuf  []int             // per-column predictor scratch

	chk       uint64 // rolling FNV-1a over written frame bytes (pre-trailer)
	framesOut uint64 // frames written before the trailer
	shardID   uint64
	frameHook func()

	wroteHeader     bool
	pendingProfiles int // Profile frames owed to the last Invocation
	historyWritten  bool
	pendingWindows  int // Window frames owed to the HistoryMeta
	done            bool
}

// NewEncoder returns a v1 encoder writing to w. The caller owns w; Flush
// must be called (and its error checked) before the underlying writer is
// closed.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w), version: Version, codec: CodecStored, chk: fnvOffset64}
}

// NewEncoderV2 returns a v2 encoder writing to w, negotiating the DEFLATE
// codec: frame payloads are delta pre-transformed where the format allows
// and block-coded whenever that shrinks them, and the trailer carries the
// shard manifest. Same ownership contract as NewEncoder.
func NewEncoderV2(w io.Writer) *Encoder {
	fw, err := flate.NewWriter(io.Discard, flate.DefaultCompression)
	if err != nil {
		// flate.NewWriter fails only on an invalid level constant.
		panic(err)
	}
	return &Encoder{w: bufio.NewWriter(w), version: Version2, codec: CodecFlate, fw: fw,
		cellPrev: make(map[uint64]uint64), chk: fnvOffset64}
}

// SetShardID names the shard in the v2 trailer manifest. Zero (the
// default) derives the ID from the content checksum, which already makes
// retried uploads of the same recording idempotent; set it explicitly
// when splitting one logical run across distinct shards that could carry
// identical frame content. No effect on v1 streams.
func (e *Encoder) SetShardID(id uint64) { e.shardID = id }

// SetFrameHook registers fn to run after each frame (preamble included
// with the first) has been flushed through to the underlying writer — so
// when fn runs, the writer has seen every byte up to a frame boundary.
// Live shippers use this to chunk the stream into whole-frame units.
func (e *Encoder) SetFrameHook(fn func()) { e.frameHook = fn }

// Err returns the first error the encoder hit, nil if none.
func (e *Encoder) Err() error { return e.err }

// Flush writes any buffered bytes through to the underlying writer and
// returns the sticky error, reporting an incomplete stream (no trailer,
// or owed frames) as an error so a truncated recording cannot pass
// silently.
func (e *Encoder) Flush() error {
	if e.err == nil && !e.done {
		e.fail("stream incomplete: no trailer written")
	}
	if e.err != nil {
		return e.err
	}
	if err := e.w.Flush(); err != nil {
		e.err = fmt.Errorf("wire: flush: %w", err)
	}
	return e.err
}

func (e *Encoder) fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf("wire: encode: "+format, args...)
	}
}

// frame writes the buffered payload as one frame of the given type. In v2
// it picks the per-frame method (stored, or coded when that shrinks the
// payload) and rolls the manifest checksum over the on-wire bytes.
func (e *Encoder) frame(typ byte) {
	if e.err != nil {
		return
	}
	if len(e.buf) > MaxFramePayload {
		e.fail("frame type 0x%02x payload %d exceeds MaxFramePayload %d",
			typ, len(e.buf), MaxFramePayload)
		return
	}
	var hdr [2*binary.MaxVarintLen64 + 2]byte
	hdr[0] = typ
	var n int
	payload := e.buf
	if e.version >= Version2 {
		if coded, ok := e.deflate(e.buf); ok {
			hdr[1] = methodCoded
			n = 2
			n += binary.PutUvarint(hdr[n:], uint64(len(e.buf)))
			n += binary.PutUvarint(hdr[n:], uint64(len(coded)))
			payload = coded
		} else {
			if e.err != nil {
				return
			}
			hdr[1] = methodStored
			n = 2 + binary.PutUvarint(hdr[2:], uint64(len(e.buf)))
		}
	} else {
		n = 1 + binary.PutUvarint(hdr[1:], uint64(len(e.buf)))
	}
	if typ != frameTrailer {
		e.chk = fnvUpdate(fnvUpdate(e.chk, hdr[:n]), payload)
		e.framesOut++
	}
	if _, err := e.w.Write(hdr[:n]); err != nil {
		e.err = fmt.Errorf("wire: write frame: %w", err)
		return
	}
	if _, err := e.w.Write(payload); err != nil {
		e.err = fmt.Errorf("wire: write frame: %w", err)
		return
	}
	e.frameEnd()
}

// deflate block-codes payload into the reusable scratch buffer, reporting
// ok=false when the stream's codec is stored-only or coding would not
// shrink the frame.
func (e *Encoder) deflate(payload []byte) ([]byte, bool) {
	if e.codec != CodecFlate || len(payload) < minCodedPayload {
		return nil, false
	}
	e.cbuf.Reset()
	e.fw.Reset(&e.cbuf)
	if _, err := e.fw.Write(payload); err != nil {
		e.err = fmt.Errorf("wire: deflate: %w", err)
		return nil, false
	}
	if err := e.fw.Close(); err != nil {
		e.err = fmt.Errorf("wire: deflate: %w", err)
		return nil, false
	}
	if e.cbuf.Len() >= len(payload) {
		return nil, false
	}
	return e.cbuf.Bytes(), true
}

// frameEnd flushes through to the underlying writer and fires the frame
// hook, if one is registered.
func (e *Encoder) frameEnd() {
	if e.frameHook == nil || e.err != nil {
		return
	}
	if err := e.w.Flush(); err != nil {
		e.err = fmt.Errorf("wire: flush: %w", err)
		return
	}
	e.frameHook()
}

func (e *Encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *Encoder) zigzag(v int64)   { e.buf = binary.AppendUvarint(e.buf, zigzag(v)) }
func (e *Encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *Encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *Encoder) boolByte(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

func (e *Encoder) str(s string) {
	if len(s) > MaxString {
		e.fail("string length %d exceeds MaxString %d", len(s), MaxString)
		s = s[:MaxString]
	}
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Header writes the stream preamble (magic, version) and the header
// frame. It must be the first call on the encoder.
func (e *Encoder) Header(h Header) {
	if e.err != nil {
		return
	}
	if e.wroteHeader {
		e.fail("header written twice")
		return
	}
	e.wroteHeader = true
	if _, err := e.w.WriteString(Magic); err != nil {
		e.err = fmt.Errorf("wire: write magic: %w", err)
		return
	}
	if err := e.w.WriteByte(e.version); err != nil {
		e.err = fmt.Errorf("wire: write version: %w", err)
		return
	}
	if e.version >= Version2 {
		if err := e.w.WriteByte(e.codec); err != nil {
			e.err = fmt.Errorf("wire: write codec: %w", err)
			return
		}
	}
	e.buf = e.buf[:0]
	e.str(h.Workload)
	e.str(h.Machine)
	e.str(h.CacheName)
	e.uvarint(h.CacheSize)
	e.uvarint(h.CacheAssoc)
	e.uvarint(h.CacheLine)
	e.buf = append(e.buf, h.CachePolicy)
	e.uvarint(h.WarmupRows)
	e.uvarint(h.FlushCycleGap)
	e.uvarint(h.AnalyzerPerRef)
	e.uvarint(h.AnalyzerFixed)
	e.zigzag(h.HistoryWindows)
	e.f64(h.PhaseMissDelta)
	e.f64(h.PhaseChurnDelta)
	e.frame(frameHeader)
}

// ready reports whether a non-header frame may be written now.
func (e *Encoder) ready(what string) bool {
	if e.err != nil {
		return false
	}
	switch {
	case !e.wroteHeader:
		e.fail("%s before header", what)
	case e.done:
		e.fail("%s after trailer", what)
	default:
		return true
	}
	return false
}

// Invocation writes one invocation frame declaring the profile count that
// must follow via Profile.
func (e *Encoder) Invocation(cycles uint64, profiles int) {
	if !e.ready("invocation") {
		return
	}
	if e.pendingProfiles > 0 {
		e.fail("invocation while %d profiles still owed", e.pendingProfiles)
		return
	}
	if e.historyWritten {
		e.fail("invocation after history section")
		return
	}
	if profiles < 0 || profiles > MaxInvocationProfiles {
		e.fail("invocation declares %d profiles (max %d)", profiles, MaxInvocationProfiles)
		return
	}
	e.buf = e.buf[:0]
	e.uvarint(cycles)
	e.uvarint(uint64(profiles))
	e.frame(frameInvocation)
	e.pendingProfiles = profiles
}

// Profile writes one profile frame. p.Recorded is ignored; the encoder
// derives the recorded-cell count from Cells itself.
func (e *Encoder) Profile(p Profile) {
	if !e.ready("profile") {
		return
	}
	if e.pendingProfiles == 0 {
		e.fail("profile without a pending invocation")
		return
	}
	nops := len(p.PCs)
	switch {
	case nops == 0 || nops > MaxProfileOps:
		e.fail("profile has %d ops (1..%d)", nops, MaxProfileOps)
		return
	case len(p.IsLoad) != nops:
		e.fail("profile IsLoad length %d != ops %d", len(p.IsLoad), nops)
		return
	case p.Rows <= 0 || p.Rows > MaxProfileRows:
		e.fail("profile has %d rows (1..%d)", p.Rows, MaxProfileRows)
		return
	case p.Rows*nops > MaxProfileCells:
		e.fail("profile %d cells exceeds MaxProfileCells %d", p.Rows*nops, MaxProfileCells)
		return
	case len(p.Cells) != p.Rows*nops:
		e.fail("profile cells length %d != rows*ops %d", len(p.Cells), p.Rows*nops)
		return
	}
	e.pendingProfiles--

	e.buf = e.buf[:0]
	e.f64(p.Alpha)
	e.uvarint(uint64(nops))
	e.uvarint(p.PCs[0])
	for i := 1; i < nops; i++ {
		e.zigzag(int64(p.PCs[i] - p.PCs[i-1]))
	}
	e.bitmapBools(p.IsLoad)
	e.uvarint(uint64(p.Rows))
	recorded := 0
	for _, c := range p.Cells {
		if c != NoCell {
			recorded++
		}
	}
	e.uvarint(uint64(recorded))
	dense := recorded == len(p.Cells)
	switch {
	case e.version >= Version2:
		e.cellsV2(p, nops, dense)
	case dense: // dense: no presence bitmap needed
		for _, c := range p.Cells {
			e.uvarint(c)
		}
	default:
		e.bitmapCells(p.Cells)
		for _, c := range p.Cells {
			if c != NoCell {
				e.uvarint(c)
			}
		}
	}
	e.frame(frameProfile)
}

// maxPredictorSearch caps the rows*nops^2 work of the exhaustive
// predictor search; wider frames fall back to self prediction so
// encoding stays linear in the cell count.
const maxPredictorSearch = 1 << 22

// cellsV2 writes the v2 profile cell section: a per-column predictor
// list, the sparse presence bitmap if one is needed, then the recorded
// cells row-major as zigzag deltas from their column's predictor.
//
// Each column j (one op's address stream down the rows) declares how its
// cells are predicted: 0 — the previous recorded cell in the same
// column, seeded across frames from the per-PC predecessor map, the
// right axis when the op strides; or i+1 with i<j — the same row's
// column i cell, the right axis when the op tracks another op at a
// near-constant offset (fields of one object, parallel arrays), whose
// own addresses may be arbitrarily irregular. The encoder picks
// whichever minimizes the pre-compression byte count; the choice rides
// in the stream, so the decoder just follows it.
func (e *Encoder) cellsV2(p Profile, nops int, dense bool) {
	if cap(e.colPrev) < nops {
		e.colPrev = make([]uint64, nops)
	}
	colPrev := e.colPrev[:nops]
	for j := range colPrev {
		colPrev[j] = e.cellPrev[p.PCs[j]]
	}
	pred := e.choosePredictors(p, nops, colPrev)
	for _, pr := range pred {
		e.uvarint(uint64(pr))
	}
	if !dense {
		e.bitmapCells(p.Cells)
	}
	for i, c := range p.Cells {
		if c == NoCell {
			continue
		}
		j := i % nops
		base := colPrev[j]
		if pr := pred[j]; pr > 0 {
			// Reference cell already emitted this row; a hole there
			// falls back to the column's own predecessor.
			if ref := p.Cells[i-j+(pr-1)]; ref != NoCell {
				base = ref
			}
		}
		e.zigzag(int64(c - base))
		colPrev[j] = c
	}
	for j := 0; j < nops; j++ {
		e.cellPrev[p.PCs[j]] = colPrev[j]
	}
}

// choosePredictors picks each column's cheapest predictor by exact
// pre-compression varint cost, self prediction winning ties (and used
// outright past the search cap). The result lives in e.predBuf.
func (e *Encoder) choosePredictors(p Profile, nops int, seed []uint64) []int {
	if cap(e.predBuf) < nops {
		e.predBuf = make([]int, nops)
	}
	pred := e.predBuf[:nops]
	for j := range pred {
		pred[j] = 0
	}
	if p.Rows*nops*nops > maxPredictorSearch {
		return pred
	}
	for j := 1; j < nops; j++ {
		chain := seed[j]
		bestCost := 0
		for r := 0; r < p.Rows; r++ {
			c := p.Cells[r*nops+j]
			if c == NoCell {
				continue
			}
			bestCost += uvarintLen(zigzag(int64(c - chain)))
			chain = c
		}
		for i := 0; i < j; i++ {
			cost := 0
			chain = seed[j]
			for r := 0; r < p.Rows && cost < bestCost; r++ {
				c := p.Cells[r*nops+j]
				if c == NoCell {
					continue
				}
				base := chain
				if ref := p.Cells[r*nops+i]; ref != NoCell {
					base = ref
				}
				cost += uvarintLen(zigzag(int64(c - base)))
				chain = c
			}
			if cost < bestCost {
				pred[j], bestCost = i+1, cost
			}
		}
	}
	return pred
}

// uvarintLen is the encoded size of v as a uvarint, in bytes.
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

func (e *Encoder) bitmapBools(bits []bool) {
	n := (len(bits) + 7) / 8
	start := len(e.buf)
	e.buf = append(e.buf, make([]byte, n)...)
	for i, b := range bits {
		if b {
			e.buf[start+i/8] |= 1 << (i % 8)
		}
	}
}

func (e *Encoder) bitmapCells(cells []uint64) {
	n := (len(cells) + 7) / 8
	start := len(e.buf)
	e.buf = append(e.buf, make([]byte, n)...)
	for i, c := range cells {
		if c != NoCell {
			e.buf[start+i/8] |= 1 << (i % 8)
		}
	}
}

// History opens the phase-history section; exactly m.Windows Window
// frames must follow.
func (e *Encoder) History(m HistoryMeta) {
	if !e.ready("history") {
		return
	}
	if e.pendingProfiles > 0 {
		e.fail("history while %d profiles still owed", e.pendingProfiles)
		return
	}
	if e.historyWritten {
		e.fail("history written twice")
		return
	}
	if m.Windows < 0 || m.Windows > MaxHistoryWindows {
		e.fail("history declares %d windows (max %d)", m.Windows, MaxHistoryWindows)
		return
	}
	if m.Cap < 0 || m.Cap > MaxHistoryWindows {
		e.fail("history cap %d out of range (max %d)", m.Cap, MaxHistoryWindows)
		return
	}
	e.historyWritten = true
	e.pendingWindows = m.Windows
	e.buf = e.buf[:0]
	e.uvarint(m.Total)
	e.uvarint(m.PhaseChanges)
	e.uvarint(uint64(m.Cap))
	e.uvarint(uint64(m.Windows))
	e.frame(frameHistory)
}

// Window writes one framed WindowSummary.
func (e *Encoder) Window(w Window) {
	if !e.ready("window") {
		return
	}
	if e.pendingWindows == 0 {
		e.fail("window without a pending history section")
		return
	}
	e.pendingWindows--
	e.buf = e.buf[:0]
	e.zigzag(int64(w.Invocation))
	e.uvarint(w.Cycles)
	e.uvarint(w.Refs)
	e.uvarint(w.Accesses)
	e.uvarint(w.Misses)
	e.f64(w.WindowMissRatio)
	e.f64(w.CumMissRatio)
	e.zigzag(int64(w.Delinquent))
	e.zigzag(int64(w.NewDelinquent))
	e.u64(w.DelinquentHash)
	e.f64(w.Jaccard)
	e.boolByte(w.PhaseChange)
	e.zigzag(int64(w.StridedLoads))
	e.zigzag(w.TopStride)
	e.zigzag(int64(w.WSLines))
	e.frame(frameWindow)
}

// Trailer closes the stream. No frame may follow it. In v2 the payload
// opens with the shard manifest: the ID (t.Shard.ShardID if set, else
// SetShardID's value, else derived from the content checksum) plus the
// frame count and rolling checksum of everything written so far — the
// latter two always computed, never taken from t.
func (e *Encoder) Trailer(t Trailer) {
	if !e.ready("trailer") {
		return
	}
	if e.pendingProfiles > 0 {
		e.fail("trailer while %d profiles still owed", e.pendingProfiles)
		return
	}
	if e.pendingWindows > 0 {
		e.fail("trailer while %d windows still owed", e.pendingWindows)
		return
	}
	e.buf = e.buf[:0]
	if e.version >= Version2 {
		id := t.Shard.ShardID
		if id == 0 {
			id = e.shardID
		}
		if id == 0 {
			id = e.chk
		}
		e.uvarint(id)
		e.uvarint(e.framesOut)
		e.u64(e.chk)
	}
	e.uvarint(t.InstrumentEvents)
	e.uvarint(t.GuestCycles)
	e.uvarint(t.TotalCycles)
	e.uvarint(t.Instrs)
	e.uvarint(t.HWAccesses)
	e.uvarint(t.HWMisses)
	e.uvarint(t.HWEvictions)
	e.pcSet("candidate", t.CandidatePCs)
	e.pcSet("trace", t.TracePCs)
	e.frame(frameTrailer)
	e.done = true
}

// pcSet appends a sorted ascending PC set as count + plain deltas.
func (e *Encoder) pcSet(what string, pcs []uint64) {
	if len(pcs) > MaxPCSet {
		e.fail("%s PC set size %d exceeds MaxPCSet %d", what, len(pcs), MaxPCSet)
		return
	}
	e.uvarint(uint64(len(pcs)))
	prev := uint64(0)
	for i, pc := range pcs {
		if i > 0 && pc <= prev {
			e.fail("%s PC set not strictly ascending at index %d", what, i)
			return
		}
		e.uvarint(pc - prev)
		prev = pc
	}
}
