package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Encoder writes one umi-profile/v1 stream. Frame methods buffer the
// payload, validate it against the format limits and the stream grammar,
// and write the framed record through an internal bufio.Writer; errors —
// both I/O and misuse — are sticky, checked via Err or the final Flush.
// An Encoder is single-goroutine, like the analyzer path that feeds it.
type Encoder struct {
	w   *bufio.Writer
	buf []byte // payload scratch, reused across frames
	err error

	wroteHeader     bool
	pendingProfiles int // Profile frames owed to the last Invocation
	historyWritten  bool
	pendingWindows  int // Window frames owed to the HistoryMeta
	done            bool
}

// NewEncoder returns an encoder writing to w. The caller owns w; Flush
// must be called (and its error checked) before the underlying writer is
// closed.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w)}
}

// Err returns the first error the encoder hit, nil if none.
func (e *Encoder) Err() error { return e.err }

// Flush writes any buffered bytes through to the underlying writer and
// returns the sticky error, reporting an incomplete stream (no trailer,
// or owed frames) as an error so a truncated recording cannot pass
// silently.
func (e *Encoder) Flush() error {
	if e.err == nil && !e.done {
		e.fail("stream incomplete: no trailer written")
	}
	if e.err != nil {
		return e.err
	}
	if err := e.w.Flush(); err != nil {
		e.err = fmt.Errorf("wire: flush: %w", err)
	}
	return e.err
}

func (e *Encoder) fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf("wire: encode: "+format, args...)
	}
}

// frame writes the buffered payload as one frame of the given type.
func (e *Encoder) frame(typ byte) {
	if e.err != nil {
		return
	}
	if len(e.buf) > MaxFramePayload {
		e.fail("frame type 0x%02x payload %d exceeds MaxFramePayload %d",
			typ, len(e.buf), MaxFramePayload)
		return
	}
	var hdr [binary.MaxVarintLen64 + 1]byte
	hdr[0] = typ
	n := binary.PutUvarint(hdr[1:], uint64(len(e.buf))) + 1
	if _, err := e.w.Write(hdr[:n]); err != nil {
		e.err = fmt.Errorf("wire: write frame: %w", err)
		return
	}
	if _, err := e.w.Write(e.buf); err != nil {
		e.err = fmt.Errorf("wire: write frame: %w", err)
	}
}

func (e *Encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *Encoder) zigzag(v int64)   { e.buf = binary.AppendUvarint(e.buf, zigzag(v)) }
func (e *Encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *Encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *Encoder) boolByte(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

func (e *Encoder) str(s string) {
	if len(s) > MaxString {
		e.fail("string length %d exceeds MaxString %d", len(s), MaxString)
		s = s[:MaxString]
	}
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Header writes the stream preamble (magic, version) and the header
// frame. It must be the first call on the encoder.
func (e *Encoder) Header(h Header) {
	if e.err != nil {
		return
	}
	if e.wroteHeader {
		e.fail("header written twice")
		return
	}
	e.wroteHeader = true
	if _, err := e.w.WriteString(Magic); err != nil {
		e.err = fmt.Errorf("wire: write magic: %w", err)
		return
	}
	if err := e.w.WriteByte(Version); err != nil {
		e.err = fmt.Errorf("wire: write version: %w", err)
		return
	}
	e.buf = e.buf[:0]
	e.str(h.Workload)
	e.str(h.Machine)
	e.str(h.CacheName)
	e.uvarint(h.CacheSize)
	e.uvarint(h.CacheAssoc)
	e.uvarint(h.CacheLine)
	e.buf = append(e.buf, h.CachePolicy)
	e.uvarint(h.WarmupRows)
	e.uvarint(h.FlushCycleGap)
	e.uvarint(h.AnalyzerPerRef)
	e.uvarint(h.AnalyzerFixed)
	e.zigzag(h.HistoryWindows)
	e.f64(h.PhaseMissDelta)
	e.f64(h.PhaseChurnDelta)
	e.frame(frameHeader)
}

// ready reports whether a non-header frame may be written now.
func (e *Encoder) ready(what string) bool {
	if e.err != nil {
		return false
	}
	switch {
	case !e.wroteHeader:
		e.fail("%s before header", what)
	case e.done:
		e.fail("%s after trailer", what)
	default:
		return true
	}
	return false
}

// Invocation writes one invocation frame declaring the profile count that
// must follow via Profile.
func (e *Encoder) Invocation(cycles uint64, profiles int) {
	if !e.ready("invocation") {
		return
	}
	if e.pendingProfiles > 0 {
		e.fail("invocation while %d profiles still owed", e.pendingProfiles)
		return
	}
	if e.historyWritten {
		e.fail("invocation after history section")
		return
	}
	if profiles < 0 || profiles > MaxInvocationProfiles {
		e.fail("invocation declares %d profiles (max %d)", profiles, MaxInvocationProfiles)
		return
	}
	e.buf = e.buf[:0]
	e.uvarint(cycles)
	e.uvarint(uint64(profiles))
	e.frame(frameInvocation)
	e.pendingProfiles = profiles
}

// Profile writes one profile frame. p.Recorded is ignored; the encoder
// derives the recorded-cell count from Cells itself.
func (e *Encoder) Profile(p Profile) {
	if !e.ready("profile") {
		return
	}
	if e.pendingProfiles == 0 {
		e.fail("profile without a pending invocation")
		return
	}
	nops := len(p.PCs)
	switch {
	case nops == 0 || nops > MaxProfileOps:
		e.fail("profile has %d ops (1..%d)", nops, MaxProfileOps)
		return
	case len(p.IsLoad) != nops:
		e.fail("profile IsLoad length %d != ops %d", len(p.IsLoad), nops)
		return
	case p.Rows <= 0 || p.Rows > MaxProfileRows:
		e.fail("profile has %d rows (1..%d)", p.Rows, MaxProfileRows)
		return
	case p.Rows*nops > MaxProfileCells:
		e.fail("profile %d cells exceeds MaxProfileCells %d", p.Rows*nops, MaxProfileCells)
		return
	case len(p.Cells) != p.Rows*nops:
		e.fail("profile cells length %d != rows*ops %d", len(p.Cells), p.Rows*nops)
		return
	}
	e.pendingProfiles--

	e.buf = e.buf[:0]
	e.f64(p.Alpha)
	e.uvarint(uint64(nops))
	e.uvarint(p.PCs[0])
	for i := 1; i < nops; i++ {
		e.zigzag(int64(p.PCs[i] - p.PCs[i-1]))
	}
	e.bitmapBools(p.IsLoad)
	e.uvarint(uint64(p.Rows))
	recorded := 0
	for _, c := range p.Cells {
		if c != NoCell {
			recorded++
		}
	}
	e.uvarint(uint64(recorded))
	if recorded == len(p.Cells) { // dense: no presence bitmap needed
		for _, c := range p.Cells {
			e.uvarint(c)
		}
	} else {
		e.bitmapCells(p.Cells)
		for _, c := range p.Cells {
			if c != NoCell {
				e.uvarint(c)
			}
		}
	}
	e.frame(frameProfile)
}

func (e *Encoder) bitmapBools(bits []bool) {
	n := (len(bits) + 7) / 8
	start := len(e.buf)
	e.buf = append(e.buf, make([]byte, n)...)
	for i, b := range bits {
		if b {
			e.buf[start+i/8] |= 1 << (i % 8)
		}
	}
}

func (e *Encoder) bitmapCells(cells []uint64) {
	n := (len(cells) + 7) / 8
	start := len(e.buf)
	e.buf = append(e.buf, make([]byte, n)...)
	for i, c := range cells {
		if c != NoCell {
			e.buf[start+i/8] |= 1 << (i % 8)
		}
	}
}

// History opens the phase-history section; exactly m.Windows Window
// frames must follow.
func (e *Encoder) History(m HistoryMeta) {
	if !e.ready("history") {
		return
	}
	if e.pendingProfiles > 0 {
		e.fail("history while %d profiles still owed", e.pendingProfiles)
		return
	}
	if e.historyWritten {
		e.fail("history written twice")
		return
	}
	if m.Windows < 0 || m.Windows > MaxHistoryWindows {
		e.fail("history declares %d windows (max %d)", m.Windows, MaxHistoryWindows)
		return
	}
	if m.Cap < 0 || m.Cap > MaxHistoryWindows {
		e.fail("history cap %d out of range (max %d)", m.Cap, MaxHistoryWindows)
		return
	}
	e.historyWritten = true
	e.pendingWindows = m.Windows
	e.buf = e.buf[:0]
	e.uvarint(m.Total)
	e.uvarint(m.PhaseChanges)
	e.uvarint(uint64(m.Cap))
	e.uvarint(uint64(m.Windows))
	e.frame(frameHistory)
}

// Window writes one framed WindowSummary.
func (e *Encoder) Window(w Window) {
	if !e.ready("window") {
		return
	}
	if e.pendingWindows == 0 {
		e.fail("window without a pending history section")
		return
	}
	e.pendingWindows--
	e.buf = e.buf[:0]
	e.zigzag(int64(w.Invocation))
	e.uvarint(w.Cycles)
	e.uvarint(w.Refs)
	e.uvarint(w.Accesses)
	e.uvarint(w.Misses)
	e.f64(w.WindowMissRatio)
	e.f64(w.CumMissRatio)
	e.zigzag(int64(w.Delinquent))
	e.zigzag(int64(w.NewDelinquent))
	e.u64(w.DelinquentHash)
	e.f64(w.Jaccard)
	e.boolByte(w.PhaseChange)
	e.zigzag(int64(w.StridedLoads))
	e.zigzag(w.TopStride)
	e.zigzag(int64(w.WSLines))
	e.frame(frameWindow)
}

// Trailer closes the stream. No frame may follow it.
func (e *Encoder) Trailer(t Trailer) {
	if !e.ready("trailer") {
		return
	}
	if e.pendingProfiles > 0 {
		e.fail("trailer while %d profiles still owed", e.pendingProfiles)
		return
	}
	if e.pendingWindows > 0 {
		e.fail("trailer while %d windows still owed", e.pendingWindows)
		return
	}
	e.buf = e.buf[:0]
	e.uvarint(t.InstrumentEvents)
	e.uvarint(t.GuestCycles)
	e.uvarint(t.TotalCycles)
	e.uvarint(t.Instrs)
	e.uvarint(t.HWAccesses)
	e.uvarint(t.HWMisses)
	e.uvarint(t.HWEvictions)
	e.pcSet("candidate", t.CandidatePCs)
	e.pcSet("trace", t.TracePCs)
	e.frame(frameTrailer)
	e.done = true
}

// pcSet appends a sorted ascending PC set as count + plain deltas.
func (e *Encoder) pcSet(what string, pcs []uint64) {
	if len(pcs) > MaxPCSet {
		e.fail("%s PC set size %d exceeds MaxPCSet %d", what, len(pcs), MaxPCSet)
		return
	}
	e.uvarint(uint64(len(pcs)))
	prev := uint64(0)
	for i, pc := range pcs {
		if i > 0 && pc <= prev {
			e.fail("%s PC set not strictly ascending at index %d", what, i)
			return
		}
		e.uvarint(pc - prev)
		prev = pc
	}
}
