package wire

import (
	"errors"
	"fmt"
	"io"
)

// ScanManifest frame-walks one complete stream and returns its shard
// manifest, verified against the observed frame count and rolling
// checksum. ok is false (with a nil error) for v1 streams, which carry no
// manifest. Unlike a full decode it never materializes records past the
// header — payloads are read (and coded frames inflated) but not parsed —
// so it is the cheap pre-upload pass the duplicate-shard check rides on.
func ScanManifest(r io.Reader) (Manifest, bool, error) {
	d := NewDecoder(r)
	if _, err := d.Header(); err != nil {
		return Manifest{}, false, err
	}
	if d.version < Version2 {
		return Manifest{}, false, nil
	}
	for {
		typ, payload, err := d.readFrame()
		if err != nil {
			return Manifest{}, false, err
		}
		if typ != frameTrailer {
			continue
		}
		c := cursor{d: d, b: payload}
		m := Manifest{ShardID: c.uvarint(), Frames: c.uvarint(), Checksum: c.u64()}
		if d.err != nil {
			return Manifest{}, false, d.err
		}
		if m.Frames != d.frames-1 {
			return Manifest{}, false, d.fail("shard manifest declares %d frames, observed %d", m.Frames, d.frames-1)
		}
		if m.Checksum != d.chk {
			return Manifest{}, false, d.fail("shard manifest checksum %#016x != observed %#016x", m.Checksum, d.chk)
		}
		if _, err := d.r.ReadByte(); err == nil {
			return Manifest{}, false, d.fail("trailing bytes after trailer")
		} else if !errors.Is(err, io.EOF) {
			return Manifest{}, false, d.failTruncated("after trailer", err)
		}
		return m, true, nil
	}
}

// Transcode re-encodes one complete stream at the given version (Version
// or Version2), record for record — and, when the source is v2, shard ID
// for shard ID. Replaying either stream produces byte-identical reports;
// a v1 recording transcoded to v2 gains per-frame compression and the
// trailer manifest without re-running the guest.
func Transcode(dst io.Writer, src io.Reader, version byte) error {
	var enc *Encoder
	switch version {
	case Version:
		enc = NewEncoder(dst)
	case Version2:
		enc = NewEncoderV2(dst)
	default:
		return fmt.Errorf("wire: transcode: unknown version 0x%02x", version)
	}
	return TranscodeInto(enc, src)
}

// TranscodeInto is Transcode onto a caller-built encoder — the hook for
// destinations that need encoder configuration first (a frame hook for
// live shipping, an explicit shard ID). It drives the encoder through
// the whole source stream, Flush included.
func TranscodeInto(enc *Encoder, src io.Reader) error {
	dec := NewDecoder(src)
	h, err := dec.Header()
	if err != nil {
		return err
	}
	enc.Header(h)
	for {
		rec, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch t := rec.(type) {
		case *Invocation:
			enc.Invocation(t.Cycles, t.Profiles)
		case *Profile:
			enc.Profile(*t)
		case *HistoryMeta:
			enc.History(*t)
		case *Window:
			enc.Window(*t)
		case *Trailer:
			enc.Trailer(*t)
		}
	}
	return enc.Flush()
}
