package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Decoder reads one umi-profile/v1 stream record by record. It reads one
// frame at a time into a reusable buffer — never the whole stream — so
// memory stays bounded by the per-frame limits regardless of input size.
// Malformed input (bad magic, unknown version or frame type, frames out
// of grammar order, over-limit sizes, non-canonical encodings, truncation,
// trailing bytes) is an error from Header or Next; the decoder never
// panics on any input.
type Decoder struct {
	r      *bufio.Reader
	buf    []byte // frame payload scratch, reused
	err    error  // sticky
	frames uint64
	bytes  uint64

	gotHeader       bool
	pendingProfiles int
	historySeen     bool
	pendingWindows  int
	done            bool
}

// NewDecoder returns a decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// Frames reports how many frames have been decoded so far (header
// included).
func (d *Decoder) Frames() uint64 { return d.frames }

// Bytes reports how many stream bytes the decoded frames span (magic and
// version included).
func (d *Decoder) Bytes() uint64 { return d.bytes }

func (d *Decoder) fail(format string, args ...any) error {
	if d.err == nil {
		d.err = fmt.Errorf("wire: decode: "+format, args...)
	}
	return d.err
}

// failTruncated wraps a raw-read error, mapping bare EOF mid-structure to
// ErrUnexpectedEOF: inside a frame, running out of bytes is truncation.
func (d *Decoder) failTruncated(what string, err error) error {
	if errors.Is(err, io.EOF) {
		err = io.ErrUnexpectedEOF
	}
	if d.err == nil {
		d.err = fmt.Errorf("wire: decode: %s: %w", what, err)
	}
	return d.err
}

// Header consumes the stream preamble and the header frame. It must be
// called once, before Next.
func (d *Decoder) Header() (Header, error) {
	if d.err != nil {
		return Header{}, d.err
	}
	if d.gotHeader {
		return Header{}, d.fail("Header called twice")
	}
	var magic [5]byte
	if _, err := io.ReadFull(d.r, magic[:]); err != nil {
		return Header{}, d.failTruncated("magic", err)
	}
	d.bytes += 5
	if string(magic[:4]) != Magic {
		return Header{}, d.fail("bad magic %q", magic[:4])
	}
	if magic[4] != Version {
		return Header{}, d.fail("unsupported version 0x%02x (want 0x%02x)", magic[4], Version)
	}
	typ, payload, err := d.readFrame()
	if err != nil {
		return Header{}, err
	}
	if typ != frameHeader {
		return Header{}, d.fail("first frame type 0x%02x, want header", typ)
	}
	c := cursor{d: d, b: payload}
	var h Header
	h.Workload = c.str()
	h.Machine = c.str()
	h.CacheName = c.str()
	h.CacheSize = c.uvarint()
	h.CacheAssoc = c.uvarint()
	h.CacheLine = c.uvarint()
	h.CachePolicy = c.byte()
	h.WarmupRows = c.uvarint()
	h.FlushCycleGap = c.uvarint()
	h.AnalyzerPerRef = c.uvarint()
	h.AnalyzerFixed = c.uvarint()
	h.HistoryWindows = c.zigzag()
	h.PhaseMissDelta = c.f64()
	h.PhaseChurnDelta = c.f64()
	if err := c.finish("header"); err != nil {
		return Header{}, err
	}
	d.gotHeader = true
	return h, nil
}

// Next returns the next record: one of *Invocation, *Profile,
// *HistoryMeta, *Window, *Trailer. After the trailer it verifies the
// stream ends and returns io.EOF. Slices in returned records are freshly
// allocated and owned by the caller.
func (d *Decoder) Next() (Record, error) {
	if d.err != nil {
		return nil, d.err
	}
	if !d.gotHeader {
		return nil, d.fail("Next before Header")
	}
	if d.done {
		return nil, io.EOF
	}
	typ, payload, err := d.readFrame()
	if err != nil {
		return nil, err
	}
	// Grammar: an invocation's declared profiles and a history section's
	// declared windows must follow immediately and exactly.
	switch {
	case d.pendingProfiles > 0 && typ != frameProfile:
		return nil, d.fail("frame type 0x%02x while %d profiles still expected", typ, d.pendingProfiles)
	case d.pendingWindows > 0 && typ != frameWindow:
		return nil, d.fail("frame type 0x%02x while %d windows still expected", typ, d.pendingWindows)
	}
	c := cursor{d: d, b: payload}
	switch typ {
	case frameInvocation:
		if d.historySeen {
			return nil, d.fail("invocation frame after history section")
		}
		inv := &Invocation{Cycles: c.uvarint()}
		inv.Profiles = c.count("invocation profiles", MaxInvocationProfiles)
		if err := c.finish("invocation"); err != nil {
			return nil, err
		}
		d.pendingProfiles = inv.Profiles
		return inv, nil
	case frameProfile:
		if d.pendingProfiles == 0 {
			return nil, d.fail("profile frame without a pending invocation")
		}
		p, err := d.decodeProfile(&c)
		if err != nil {
			return nil, err
		}
		d.pendingProfiles--
		return p, nil
	case frameHistory:
		if d.historySeen {
			return nil, d.fail("second history frame")
		}
		m := &HistoryMeta{Total: c.uvarint(), PhaseChanges: c.uvarint()}
		m.Cap = c.count("history cap", MaxHistoryWindows)
		m.Windows = c.count("history windows", MaxHistoryWindows)
		if err := c.finish("history"); err != nil {
			return nil, err
		}
		d.historySeen = true
		d.pendingWindows = m.Windows
		return m, nil
	case frameWindow:
		if d.pendingWindows == 0 {
			return nil, d.fail("window frame without a pending history section")
		}
		w := &Window{}
		w.Invocation = int(c.zigzag())
		w.Cycles = c.uvarint()
		w.Refs = c.uvarint()
		w.Accesses = c.uvarint()
		w.Misses = c.uvarint()
		w.WindowMissRatio = c.f64()
		w.CumMissRatio = c.f64()
		w.Delinquent = int(c.zigzag())
		w.NewDelinquent = int(c.zigzag())
		w.DelinquentHash = c.u64()
		w.Jaccard = c.f64()
		w.PhaseChange = c.bool()
		w.StridedLoads = int(c.zigzag())
		w.TopStride = c.zigzag()
		w.WSLines = int(c.zigzag())
		if err := c.finish("window"); err != nil {
			return nil, err
		}
		d.pendingWindows--
		return w, nil
	case frameTrailer:
		t := &Trailer{
			InstrumentEvents: c.uvarint(),
			GuestCycles:      c.uvarint(),
			TotalCycles:      c.uvarint(),
			Instrs:           c.uvarint(),
			HWAccesses:       c.uvarint(),
			HWMisses:         c.uvarint(),
			HWEvictions:      c.uvarint(),
		}
		t.CandidatePCs = c.pcSet("candidate")
		t.TracePCs = c.pcSet("trace")
		if err := c.finish("trailer"); err != nil {
			return nil, err
		}
		// The trailer must be the last thing in the stream.
		if _, err := d.r.ReadByte(); err == nil {
			return nil, d.fail("trailing bytes after trailer")
		} else if !errors.Is(err, io.EOF) {
			return nil, d.failTruncated("after trailer", err)
		}
		d.done = true
		return t, nil
	case frameHeader:
		return nil, d.fail("second header frame")
	default:
		return nil, d.fail("unknown frame type 0x%02x", typ)
	}
}

// readFrame reads one frame header and its payload into the reusable
// buffer.
func (d *Decoder) readFrame() (byte, []byte, error) {
	typ, err := d.r.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			// Clean EOF between frames is still an invalid stream: only a
			// trailer ends one. Report it as truncation.
			return 0, nil, d.failTruncated("frame type", io.ErrUnexpectedEOF)
		}
		return 0, nil, d.failTruncated("frame type", err)
	}
	n, lenBytes, err := readUvarint(d.r)
	if err != nil {
		return 0, nil, d.failTruncated("frame length", err)
	}
	if n > MaxFramePayload {
		return 0, nil, d.fail("frame type 0x%02x payload %d exceeds MaxFramePayload %d", typ, n, MaxFramePayload)
	}
	if uint64(cap(d.buf)) < n {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		return 0, nil, d.failTruncated("frame payload", err)
	}
	d.frames++
	d.bytes += 1 + uint64(lenBytes) + n
	return typ, d.buf, nil
}

// decodeProfile parses a profile payload, allocating cells only after the
// declared geometry passes the hard caps and a payload-size plausibility
// check (every encoded cell is at least one byte), so a hostile frame
// cannot demand memory disproportionate to its own size beyond the fixed
// per-profile cap.
func (d *Decoder) decodeProfile(c *cursor) (*Profile, error) {
	p := &Profile{Alpha: c.f64()}
	nops := c.count("profile ops", MaxProfileOps)
	if d.err != nil {
		return nil, d.err
	}
	if nops == 0 {
		return nil, d.fail("profile has zero ops")
	}
	p.PCs = make([]uint64, nops)
	p.PCs[0] = c.uvarint()
	for i := 1; i < nops; i++ {
		p.PCs[i] = p.PCs[i-1] + uint64(c.zigzag())
	}
	p.IsLoad = c.bitmapBools(nops)
	p.Rows = c.count("profile rows", MaxProfileRows)
	if d.err != nil {
		return nil, d.err
	}
	if p.Rows == 0 {
		return nil, d.fail("profile has zero rows")
	}
	ncells := p.Rows * nops
	if ncells > MaxProfileCells {
		return nil, d.fail("profile %d cells exceeds MaxProfileCells %d", ncells, MaxProfileCells)
	}
	recorded := c.count("profile recorded", MaxProfileCells)
	if d.err != nil {
		return nil, d.err
	}
	if recorded > ncells {
		return nil, d.fail("profile recorded %d exceeds cells %d", recorded, ncells)
	}
	p.Recorded = recorded
	if recorded == ncells { // dense
		if c.remaining() < ncells {
			return nil, d.fail("profile payload too short for %d dense cells", ncells)
		}
		p.Cells = make([]uint64, ncells)
		for i := range p.Cells {
			v := c.uvarint()
			if v == NoCell {
				return nil, d.fail("profile cell %d holds the NoCell sentinel", i)
			}
			p.Cells[i] = v
		}
	} else {
		bitmapLen := (ncells + 7) / 8
		if c.remaining() < bitmapLen+recorded {
			return nil, d.fail("profile payload too short for %d sparse cells", recorded)
		}
		bitmap := c.bytes(bitmapLen)
		if d.err != nil {
			return nil, d.err
		}
		if popcount(bitmap) != recorded {
			return nil, d.fail("profile presence bitmap popcount != recorded %d", recorded)
		}
		if trailingBitsSet(bitmap, ncells) {
			return nil, d.fail("profile presence bitmap has bits set past cell %d", ncells)
		}
		p.Cells = make([]uint64, ncells)
		for i := range p.Cells {
			if bitmap[i/8]&(1<<(i%8)) != 0 {
				v := c.uvarint()
				if v == NoCell {
					return nil, d.fail("profile cell %d holds the NoCell sentinel", i)
				}
				p.Cells[i] = v
			} else {
				p.Cells[i] = NoCell
			}
		}
	}
	if err := c.finish("profile"); err != nil {
		return nil, err
	}
	return p, nil
}

// readUvarint is binary.ReadUvarint plus the consumed byte count, so the
// decoder's Bytes accounting stays exact.
func readUvarint(r *bufio.Reader) (uint64, int, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return 0, i, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, i + 1, errors.New("uvarint overflows 64 bits")
			}
			return x | uint64(b)<<s, i + 1, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, binary.MaxVarintLen64, errors.New("uvarint too long")
}

func popcount(b []byte) int {
	n := 0
	for _, x := range b {
		for ; x != 0; x &= x - 1 {
			n++
		}
	}
	return n
}

func trailingBitsSet(bitmap []byte, nbits int) bool {
	for i := nbits; i < len(bitmap)*8; i++ {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			return true
		}
	}
	return false
}

// cursor parses scalars out of one frame payload, reporting the first
// error through the decoder's sticky error (subsequent reads yield
// zeros, so straight-line parse code needs only one check at the end).
type cursor struct {
	d   *Decoder
	b   []byte
	off int
}

func (c *cursor) remaining() int { return len(c.b) - c.off }

func (c *cursor) uvarint() uint64 {
	if c.d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.d.fail("truncated or overlong uvarint at payload offset %d", c.off)
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) zigzag() int64 { return unzigzag(c.uvarint()) }

// count reads a uvarint that must fit the given cap (and the int type).
func (c *cursor) count(what string, max int) int {
	v := c.uvarint()
	if c.d.err != nil {
		return 0
	}
	if v > uint64(max) {
		c.d.fail("%s %d exceeds limit %d", what, v, max)
		return 0
	}
	return int(v)
}

func (c *cursor) byte() uint8 {
	if c.d.err != nil {
		return 0
	}
	if c.remaining() < 1 {
		c.d.fail("truncated byte at payload offset %d", c.off)
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) bool() bool {
	switch c.byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		if c.d.err == nil {
			c.d.fail("bool byte not 0 or 1 at payload offset %d", c.off-1)
		}
		return false
	}
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cursor) u64() uint64 {
	if c.d.err != nil {
		return 0
	}
	if c.remaining() < 8 {
		c.d.fail("truncated u64 at payload offset %d", c.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) bytes(n int) []byte {
	if c.d.err != nil {
		return nil
	}
	if c.remaining() < n {
		c.d.fail("truncated %d-byte field at payload offset %d", n, c.off)
		return nil
	}
	b := c.b[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) str() string {
	n := c.count("string length", MaxString)
	return string(c.bytes(n))
}

func (c *cursor) bitmapBools(n int) []bool {
	bitmap := c.bytes((n + 7) / 8)
	if c.d.err != nil {
		return nil
	}
	if trailingBitsSet(bitmap, n) {
		c.d.fail("bool bitmap has bits set past entry %d", n)
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = bitmap[i/8]&(1<<(i%8)) != 0
	}
	return out
}

// pcSet reads a sorted ascending PC set (count + plain deltas, deltas
// after the first strictly positive).
func (c *cursor) pcSet(what string) []uint64 {
	n := c.count(what+" PC set size", MaxPCSet)
	if c.d.err != nil {
		return nil
	}
	if c.remaining() < n { // each delta is at least one byte
		c.d.fail("%s PC set payload too short for %d entries", what, n)
		return nil
	}
	pcs := make([]uint64, n)
	prev := uint64(0)
	for i := range pcs {
		delta := c.uvarint()
		if c.d.err != nil {
			return nil
		}
		if i > 0 && delta == 0 {
			c.d.fail("%s PC set has a duplicate entry at index %d", what, i)
			return nil
		}
		pc := prev + delta
		if i > 0 && pc < prev { // wraparound
			c.d.fail("%s PC set delta overflows at index %d", what, i)
			return nil
		}
		pcs[i] = pc
		prev = pc
	}
	return pcs
}

// finish asserts the payload was fully consumed.
func (c *cursor) finish(what string) error {
	if c.d.err != nil {
		return c.d.err
	}
	if c.off != len(c.b) {
		return c.d.fail("%s frame has %d unconsumed payload bytes", what, len(c.b)-c.off)
	}
	return nil
}
