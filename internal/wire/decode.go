package wire

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrTruncated marks decode errors caused by the stream ending (or the
// transport failing) mid-frame, as opposed to well-framed but invalid
// content. A consumer holding a cleanly-applied prefix may treat such a
// stream as resumable; every other decode error means corrupt content.
var ErrTruncated = errors.New("truncated stream")

// Decoder reads one umi-profile stream (v1 or v2, auto-detected from the
// preamble) record by record. It reads one frame at a time into a
// reusable buffer — never the whole stream — so memory stays bounded by
// the per-frame limits regardless of input size. Malformed input (bad
// magic, unknown version, codec, frame type or method, frames out of
// grammar order, over-limit sizes, non-canonical encodings, a manifest
// contradicting the observed frames, truncation, trailing bytes) is an
// error from Header or Next; the decoder never panics on any input.
type Decoder struct {
	r       *bufio.Reader
	buf     []byte // on-wire frame payload scratch, reused
	raw     []byte // v2 inflated payload scratch, reused
	fhdr    []byte // current frame's on-wire header bytes, for the checksum
	err     error  // sticky
	frames  uint64
	bytes   uint64
	chk     uint64 // rolling FNV-1a over non-trailer frame bytes
	version byte
	codec   byte

	fr io.ReadCloser // v2 block decoder, Reset per coded frame
	br *bytes.Reader

	cellPrev map[uint64]uint64 // v2 per-PC cell predecessors, stream-persistent

	gotHeader       bool
	pendingProfiles int
	historySeen     bool
	pendingWindows  int
	done            bool
}

// NewDecoder returns a decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r), chk: fnvOffset64}
}

// Frames reports how many frames have been decoded so far (header
// included).
func (d *Decoder) Frames() uint64 { return d.frames }

// Bytes reports how many stream bytes the decoded frames span (magic and
// version included).
func (d *Decoder) Bytes() uint64 { return d.bytes }

// Version reports the stream's version byte, valid once Header returns.
func (d *Decoder) Version() byte { return d.version }

// Checksum reports the rolling FNV-1a over the on-wire bytes of every
// non-trailer frame decoded so far — the quantity a v2 trailer manifest
// declares and, paired with Frames at a frame boundary, the resume point
// a live-tail re-upload is verified against.
func (d *Decoder) Checksum() uint64 { return d.chk }

func (d *Decoder) fail(format string, args ...any) error {
	if d.err == nil {
		d.err = fmt.Errorf("wire: decode: "+format, args...)
	}
	return d.err
}

// failTruncated wraps a raw-read error, mapping bare EOF mid-structure to
// ErrUnexpectedEOF: inside a frame, running out of bytes is truncation.
// The resulting error matches ErrTruncated.
func (d *Decoder) failTruncated(what string, err error) error {
	if errors.Is(err, io.EOF) {
		err = io.ErrUnexpectedEOF
	}
	if d.err == nil {
		d.err = fmt.Errorf("wire: decode: %s: %w (%w)", what, err, ErrTruncated)
	}
	return d.err
}

// Header consumes the stream preamble and the header frame. It must be
// called once, before Next.
func (d *Decoder) Header() (Header, error) {
	if d.err != nil {
		return Header{}, d.err
	}
	if d.gotHeader {
		return Header{}, d.fail("Header called twice")
	}
	var magic [5]byte
	if _, err := io.ReadFull(d.r, magic[:]); err != nil {
		return Header{}, d.failTruncated("magic", err)
	}
	d.bytes += 5
	if string(magic[:4]) != Magic {
		return Header{}, d.fail("bad magic %q", magic[:4])
	}
	switch magic[4] {
	case Version:
		d.version = Version
	case Version2:
		d.version = Version2
		codec, err := d.r.ReadByte()
		if err != nil {
			return Header{}, d.failTruncated("codec", err)
		}
		d.bytes++
		if codec != CodecStored && codec != CodecFlate {
			return Header{}, d.fail("unknown codec 0x%02x", codec)
		}
		d.codec = codec
	default:
		return Header{}, d.fail("unsupported version 0x%02x (want 0x%02x or 0x%02x)",
			magic[4], Version, Version2)
	}
	typ, payload, err := d.readFrame()
	if err != nil {
		return Header{}, err
	}
	if typ != frameHeader {
		return Header{}, d.fail("first frame type 0x%02x, want header", typ)
	}
	c := cursor{d: d, b: payload}
	var h Header
	h.Workload = c.str()
	h.Machine = c.str()
	h.CacheName = c.str()
	h.CacheSize = c.uvarint()
	h.CacheAssoc = c.uvarint()
	h.CacheLine = c.uvarint()
	h.CachePolicy = c.byte()
	h.WarmupRows = c.uvarint()
	h.FlushCycleGap = c.uvarint()
	h.AnalyzerPerRef = c.uvarint()
	h.AnalyzerFixed = c.uvarint()
	h.HistoryWindows = c.zigzag()
	h.PhaseMissDelta = c.f64()
	h.PhaseChurnDelta = c.f64()
	if err := c.finish("header"); err != nil {
		return Header{}, err
	}
	d.gotHeader = true
	return h, nil
}

// Next returns the next record: one of *Invocation, *Profile,
// *HistoryMeta, *Window, *Trailer. After the trailer it verifies the
// stream ends and returns io.EOF. Slices in returned records are freshly
// allocated and owned by the caller.
func (d *Decoder) Next() (Record, error) {
	if d.err != nil {
		return nil, d.err
	}
	if !d.gotHeader {
		return nil, d.fail("Next before Header")
	}
	if d.done {
		return nil, io.EOF
	}
	typ, payload, err := d.readFrame()
	if err != nil {
		return nil, err
	}
	// Grammar: an invocation's declared profiles and a history section's
	// declared windows must follow immediately and exactly.
	switch {
	case d.pendingProfiles > 0 && typ != frameProfile:
		return nil, d.fail("frame type 0x%02x while %d profiles still expected", typ, d.pendingProfiles)
	case d.pendingWindows > 0 && typ != frameWindow:
		return nil, d.fail("frame type 0x%02x while %d windows still expected", typ, d.pendingWindows)
	}
	c := cursor{d: d, b: payload}
	switch typ {
	case frameInvocation:
		if d.historySeen {
			return nil, d.fail("invocation frame after history section")
		}
		inv := &Invocation{Cycles: c.uvarint()}
		inv.Profiles = c.count("invocation profiles", MaxInvocationProfiles)
		if err := c.finish("invocation"); err != nil {
			return nil, err
		}
		d.pendingProfiles = inv.Profiles
		return inv, nil
	case frameProfile:
		if d.pendingProfiles == 0 {
			return nil, d.fail("profile frame without a pending invocation")
		}
		p, err := d.decodeProfile(&c)
		if err != nil {
			return nil, err
		}
		d.pendingProfiles--
		return p, nil
	case frameHistory:
		if d.historySeen {
			return nil, d.fail("second history frame")
		}
		m := &HistoryMeta{Total: c.uvarint(), PhaseChanges: c.uvarint()}
		m.Cap = c.count("history cap", MaxHistoryWindows)
		m.Windows = c.count("history windows", MaxHistoryWindows)
		if err := c.finish("history"); err != nil {
			return nil, err
		}
		d.historySeen = true
		d.pendingWindows = m.Windows
		return m, nil
	case frameWindow:
		if d.pendingWindows == 0 {
			return nil, d.fail("window frame without a pending history section")
		}
		w := &Window{}
		w.Invocation = int(c.zigzag())
		w.Cycles = c.uvarint()
		w.Refs = c.uvarint()
		w.Accesses = c.uvarint()
		w.Misses = c.uvarint()
		w.WindowMissRatio = c.f64()
		w.CumMissRatio = c.f64()
		w.Delinquent = int(c.zigzag())
		w.NewDelinquent = int(c.zigzag())
		w.DelinquentHash = c.u64()
		w.Jaccard = c.f64()
		w.PhaseChange = c.bool()
		w.StridedLoads = int(c.zigzag())
		w.TopStride = c.zigzag()
		w.WSLines = int(c.zigzag())
		if err := c.finish("window"); err != nil {
			return nil, err
		}
		d.pendingWindows--
		return w, nil
	case frameTrailer:
		t := &Trailer{}
		if d.version >= Version2 {
			t.Shard = Manifest{ShardID: c.uvarint(), Frames: c.uvarint(), Checksum: c.u64()}
		}
		t.InstrumentEvents = c.uvarint()
		t.GuestCycles = c.uvarint()
		t.TotalCycles = c.uvarint()
		t.Instrs = c.uvarint()
		t.HWAccesses = c.uvarint()
		t.HWMisses = c.uvarint()
		t.HWEvictions = c.uvarint()
		t.CandidatePCs = c.pcSet("candidate")
		t.TracePCs = c.pcSet("trace")
		if err := c.finish("trailer"); err != nil {
			return nil, err
		}
		// The manifest must agree with what was actually observed — a
		// checksum mismatch means frames were corrupted or substituted in a
		// way the per-frame parsing did not catch.
		if d.version >= Version2 {
			if t.Shard.Frames != d.frames-1 {
				return nil, d.fail("shard manifest declares %d frames, observed %d", t.Shard.Frames, d.frames-1)
			}
			if t.Shard.Checksum != d.chk {
				return nil, d.fail("shard manifest checksum %#016x != observed %#016x", t.Shard.Checksum, d.chk)
			}
		}
		// The trailer must be the last thing in the stream.
		if _, err := d.r.ReadByte(); err == nil {
			return nil, d.fail("trailing bytes after trailer")
		} else if !errors.Is(err, io.EOF) {
			return nil, d.failTruncated("after trailer", err)
		}
		d.done = true
		return t, nil
	case frameHeader:
		return nil, d.fail("second header frame")
	default:
		return nil, d.fail("unknown frame type 0x%02x", typ)
	}
}

// readFrame reads one frame header and its payload into the reusable
// buffer, inflating coded v2 frames, and rolls the manifest checksum over
// the on-wire bytes of every non-trailer frame.
func (d *Decoder) readFrame() (byte, []byte, error) {
	typ, err := d.r.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			// Clean EOF between frames is still an invalid stream: only a
			// trailer ends one. Report it as truncation.
			return 0, nil, d.failTruncated("frame type", io.ErrUnexpectedEOF)
		}
		return 0, nil, d.failTruncated("frame type", err)
	}
	d.fhdr = append(d.fhdr[:0], typ)
	payload, err := d.readFrameBody(typ)
	if err != nil {
		return 0, nil, err
	}
	if typ != frameTrailer {
		d.chk = fnvUpdate(fnvUpdate(d.chk, d.fhdr), d.buf)
	}
	d.frames++
	d.bytes += uint64(len(d.fhdr)) + uint64(len(d.buf))
	return typ, payload, nil
}

// readFrameBody reads the length fields and on-wire payload (into d.buf)
// of one frame whose type byte is already consumed, returning the raw
// payload — d.buf itself for stored frames, the inflated d.raw for coded
// ones.
func (d *Decoder) readFrameBody(typ byte) ([]byte, error) {
	method := byte(methodStored)
	if d.version >= Version2 {
		m, err := d.r.ReadByte()
		if err != nil {
			return nil, d.failTruncated("frame method", err)
		}
		d.fhdr = append(d.fhdr, m)
		if m != methodStored && m != methodCoded {
			return nil, d.fail("frame type 0x%02x has unknown method 0x%02x", typ, m)
		}
		if m == methodCoded && d.codec != CodecFlate {
			return nil, d.fail("coded frame in a stored-codec stream")
		}
		method = m
	}
	rawLen := uint64(0)
	if method == methodCoded {
		n, err := d.frameUvarint()
		if err != nil {
			return nil, d.failTruncated("frame raw length", err)
		}
		if n > MaxFramePayload {
			return nil, d.fail("frame type 0x%02x raw payload %d exceeds MaxFramePayload %d", typ, n, MaxFramePayload)
		}
		rawLen = n
	}
	n, err := d.frameUvarint()
	if err != nil {
		return nil, d.failTruncated("frame length", err)
	}
	if n > MaxFramePayload {
		return nil, d.fail("frame type 0x%02x payload %d exceeds MaxFramePayload %d", typ, n, MaxFramePayload)
	}
	if uint64(cap(d.buf)) < n {
		d.buf = make([]byte, n)
	}
	d.buf = d.buf[:n]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		return nil, d.failTruncated("frame payload", err)
	}
	if method == methodStored {
		return d.buf, nil
	}
	return d.inflate(typ, rawLen)
}

// inflate decodes the coded payload sitting in d.buf into d.raw, which
// must inflate to exactly the declared raw length. Inflation failures are
// content corruption, never ErrTruncated: the on-wire frame arrived
// whole.
func (d *Decoder) inflate(typ byte, rawLen uint64) ([]byte, error) {
	if d.fr == nil {
		d.br = bytes.NewReader(nil)
		d.fr = flate.NewReader(d.br)
	}
	d.br.Reset(d.buf)
	if err := d.fr.(flate.Resetter).Reset(d.br, nil); err != nil {
		return nil, d.fail("frame type 0x%02x inflate reset: %v", typ, err)
	}
	if uint64(cap(d.raw)) < rawLen {
		d.raw = make([]byte, rawLen)
	}
	d.raw = d.raw[:rawLen]
	if _, err := io.ReadFull(d.fr, d.raw); err != nil {
		return nil, d.fail("frame type 0x%02x inflate: %v", typ, err)
	}
	var one [1]byte
	if n, err := d.fr.Read(one[:]); n != 0 || !errors.Is(err, io.EOF) {
		return nil, d.fail("frame type 0x%02x inflates past its declared %d raw bytes", typ, rawLen)
	}
	return d.raw, nil
}

// frameUvarint reads one frame-header uvarint, recording the consumed
// bytes into d.fhdr so the rolling checksum covers the wire exactly.
func (d *Decoder) frameUvarint() (uint64, error) {
	v, rec, err := readUvarint(d.r, d.fhdr)
	d.fhdr = rec
	return v, err
}

// decodeProfile parses a profile payload, allocating cells only after the
// declared geometry passes the hard caps and a payload-size plausibility
// check (every encoded cell is at least one byte), so a hostile frame
// cannot demand memory disproportionate to its own size beyond the fixed
// per-profile cap.
func (d *Decoder) decodeProfile(c *cursor) (*Profile, error) {
	p := &Profile{Alpha: c.f64()}
	nops := c.count("profile ops", MaxProfileOps)
	if d.err != nil {
		return nil, d.err
	}
	if nops == 0 {
		return nil, d.fail("profile has zero ops")
	}
	p.PCs = make([]uint64, nops)
	p.PCs[0] = c.uvarint()
	for i := 1; i < nops; i++ {
		p.PCs[i] = p.PCs[i-1] + uint64(c.zigzag())
	}
	p.IsLoad = c.bitmapBools(nops)
	p.Rows = c.count("profile rows", MaxProfileRows)
	if d.err != nil {
		return nil, d.err
	}
	if p.Rows == 0 {
		return nil, d.fail("profile has zero rows")
	}
	ncells := p.Rows * nops
	if ncells > MaxProfileCells {
		return nil, d.fail("profile %d cells exceeds MaxProfileCells %d", ncells, MaxProfileCells)
	}
	recorded := c.count("profile recorded", MaxProfileCells)
	if d.err != nil {
		return nil, d.err
	}
	if recorded > ncells {
		return nil, d.fail("profile recorded %d exceeds cells %d", recorded, ncells)
	}
	p.Recorded = recorded
	// v2 cell prediction state: the per-column predictor list rides in
	// the frame (0 = previous recorded cell in the same column, i+1 =
	// the same row's column i, which must be an earlier column), and
	// each column's predecessor is seeded from the stream-persistent
	// per-PC map — the exact inverse of Encoder.cellsV2.
	var pred []int
	var colPrev []uint64
	if d.version >= Version2 {
		if d.cellPrev == nil {
			d.cellPrev = make(map[uint64]uint64)
		}
		pred = make([]int, nops)
		for j := range pred {
			pred[j] = c.count("profile cell predictor", j)
		}
		if d.err != nil {
			return nil, d.err
		}
		colPrev = make([]uint64, nops)
		for j := range colPrev {
			colPrev[j] = d.cellPrev[p.PCs[j]]
		}
	}
	cell := func(i int) uint64 {
		if d.version < Version2 {
			return c.uvarint()
		}
		j := i % nops
		base := colPrev[j]
		if pr := pred[j]; pr > 0 {
			if ref := p.Cells[i-j+(pr-1)]; ref != NoCell {
				base = ref
			}
		}
		v := base + uint64(c.zigzag())
		colPrev[j] = v
		return v
	}
	if recorded == ncells { // dense
		if c.remaining() < ncells {
			return nil, d.fail("profile payload too short for %d dense cells", ncells)
		}
		p.Cells = make([]uint64, ncells)
		for i := range p.Cells {
			v := cell(i)
			if v == NoCell {
				return nil, d.fail("profile cell %d holds the NoCell sentinel", i)
			}
			p.Cells[i] = v
		}
	} else {
		bitmapLen := (ncells + 7) / 8
		if c.remaining() < bitmapLen+recorded {
			return nil, d.fail("profile payload too short for %d sparse cells", recorded)
		}
		bitmap := c.bytes(bitmapLen)
		if d.err != nil {
			return nil, d.err
		}
		if popcount(bitmap) != recorded {
			return nil, d.fail("profile presence bitmap popcount != recorded %d", recorded)
		}
		if trailingBitsSet(bitmap, ncells) {
			return nil, d.fail("profile presence bitmap has bits set past cell %d", ncells)
		}
		p.Cells = make([]uint64, ncells)
		for i := range p.Cells {
			if bitmap[i/8]&(1<<(i%8)) != 0 {
				v := cell(i)
				if v == NoCell {
					return nil, d.fail("profile cell %d holds the NoCell sentinel", i)
				}
				p.Cells[i] = v
			} else {
				p.Cells[i] = NoCell
			}
		}
	}
	if d.version >= Version2 {
		for j := 0; j < nops; j++ {
			d.cellPrev[p.PCs[j]] = colPrev[j]
		}
	}
	if err := c.finish("profile"); err != nil {
		return nil, err
	}
	return p, nil
}

// readUvarint is binary.ReadUvarint plus the consumed bytes appended to
// rec, so the decoder's Bytes accounting and rolling checksum cover the
// wire exactly (including non-canonical encodings, which hash as read).
func readUvarint(r *bufio.Reader, rec []byte) (uint64, []byte, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return 0, rec, err
		}
		rec = append(rec, b)
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, rec, errors.New("uvarint overflows 64 bits")
			}
			return x | uint64(b)<<s, rec, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, rec, errors.New("uvarint too long")
}

func popcount(b []byte) int {
	n := 0
	for _, x := range b {
		for ; x != 0; x &= x - 1 {
			n++
		}
	}
	return n
}

func trailingBitsSet(bitmap []byte, nbits int) bool {
	for i := nbits; i < len(bitmap)*8; i++ {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			return true
		}
	}
	return false
}

// cursor parses scalars out of one frame payload, reporting the first
// error through the decoder's sticky error (subsequent reads yield
// zeros, so straight-line parse code needs only one check at the end).
type cursor struct {
	d   *Decoder
	b   []byte
	off int
}

func (c *cursor) remaining() int { return len(c.b) - c.off }

func (c *cursor) uvarint() uint64 {
	if c.d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.d.fail("truncated or overlong uvarint at payload offset %d", c.off)
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) zigzag() int64 { return unzigzag(c.uvarint()) }

// count reads a uvarint that must fit the given cap (and the int type).
func (c *cursor) count(what string, max int) int {
	v := c.uvarint()
	if c.d.err != nil {
		return 0
	}
	if v > uint64(max) {
		c.d.fail("%s %d exceeds limit %d", what, v, max)
		return 0
	}
	return int(v)
}

func (c *cursor) byte() uint8 {
	if c.d.err != nil {
		return 0
	}
	if c.remaining() < 1 {
		c.d.fail("truncated byte at payload offset %d", c.off)
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) bool() bool {
	switch c.byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		if c.d.err == nil {
			c.d.fail("bool byte not 0 or 1 at payload offset %d", c.off-1)
		}
		return false
	}
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *cursor) u64() uint64 {
	if c.d.err != nil {
		return 0
	}
	if c.remaining() < 8 {
		c.d.fail("truncated u64 at payload offset %d", c.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) bytes(n int) []byte {
	if c.d.err != nil {
		return nil
	}
	if c.remaining() < n {
		c.d.fail("truncated %d-byte field at payload offset %d", n, c.off)
		return nil
	}
	b := c.b[c.off : c.off+n]
	c.off += n
	return b
}

func (c *cursor) str() string {
	n := c.count("string length", MaxString)
	return string(c.bytes(n))
}

func (c *cursor) bitmapBools(n int) []bool {
	bitmap := c.bytes((n + 7) / 8)
	if c.d.err != nil {
		return nil
	}
	if trailingBitsSet(bitmap, n) {
		c.d.fail("bool bitmap has bits set past entry %d", n)
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = bitmap[i/8]&(1<<(i%8)) != 0
	}
	return out
}

// pcSet reads a sorted ascending PC set (count + plain deltas, deltas
// after the first strictly positive).
func (c *cursor) pcSet(what string) []uint64 {
	n := c.count(what+" PC set size", MaxPCSet)
	if c.d.err != nil {
		return nil
	}
	if c.remaining() < n { // each delta is at least one byte
		c.d.fail("%s PC set payload too short for %d entries", what, n)
		return nil
	}
	pcs := make([]uint64, n)
	prev := uint64(0)
	for i := range pcs {
		delta := c.uvarint()
		if c.d.err != nil {
			return nil
		}
		if i > 0 && delta == 0 {
			c.d.fail("%s PC set has a duplicate entry at index %d", what, i)
			return nil
		}
		pc := prev + delta
		if i > 0 && pc < prev { // wraparound
			c.d.fail("%s PC set delta overflows at index %d", what, i)
			return nil
		}
		pcs[i] = pc
		prev = pc
	}
	return pcs
}

// finish asserts the payload was fully consumed.
func (c *cursor) finish(what string) error {
	if c.d.err != nil {
		return c.d.err
	}
	if c.off != len(c.b) {
		return c.d.fail("%s frame has %d unconsumed payload bytes", what, len(c.b)-c.off)
	}
	return nil
}
