package wire

import (
	"bytes"

	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

// testHeader is a header exercising every field, including an exact
// float threshold and a negative HistoryWindows.
func testHeader() Header {
	return Header{
		Workload:        "470.lbm",
		Machine:         "p4",
		CacheName:       "L2",
		CacheSize:       512 << 10,
		CacheAssoc:      8,
		CacheLine:       128,
		CachePolicy:     1,
		WarmupRows:      2,
		FlushCycleGap:   1_000_000,
		AnalyzerPerRef:  3,
		AnalyzerFixed:   400,
		HistoryWindows:  -1,
		PhaseMissDelta:  0.05,
		PhaseChurnDelta: 0.5,
	}
}

// denseProfile fills every cell; sparseProfile leaves holes.
func denseProfile() Profile {
	p := Profile{
		Alpha:  0.9,
		PCs:    []uint64{0x400100, 0x400090, 0x400200}, // trace order, not sorted
		IsLoad: []bool{true, false, true},
		Rows:   4,
	}
	p.Cells = make([]uint64, p.Rows*len(p.PCs))
	for i := range p.Cells {
		p.Cells[i] = 0x7f_0000_0000 + uint64(i)*64
	}
	return p
}

func sparseProfile() Profile {
	p := denseProfile()
	p.Alpha = 0.4
	p.Cells = append([]uint64(nil), p.Cells...)
	p.Cells[1] = NoCell
	p.Cells[7] = NoCell
	p.Cells[11] = NoCell
	return p
}

func testWindow(i int) Window {
	return Window{
		Invocation:      i,
		Cycles:          uint64(1000 * i),
		Refs:            uint64(12 * i),
		Accesses:        uint64(10 * i),
		Misses:          uint64(i),
		WindowMissRatio: 0.1,
		CumMissRatio:    0.125,
		Delinquent:      i,
		NewDelinquent:   1 - i,
		DelinquentHash:  0xdeadbeefcafe0000 + uint64(i),
		Jaccard:         0.75,
		PhaseChange:     i%2 == 1,
		StridedLoads:    i,
		TopStride:       -128,
		WSLines:         42 * i,
	}
}

func testTrailer() Trailer {
	return Trailer{
		InstrumentEvents: 17,
		GuestCycles:      123456,
		TotalCycles:      133700,
		Instrs:           99999,
		HWAccesses:       5000,
		HWMisses:         321,
		HWEvictions:      300,
		CandidatePCs:     []uint64{0x400090, 0x400100, 0x400200, 0x400400},
		TracePCs:         []uint64{0x400080, 0x400100},
	}
}

// testStream builds a representative stream: an empty invocation, a
// two-profile invocation (dense + sparse), a history section, a trailer.
// It panics on encoder error so fuzz seed registration can use it too.
func testStream() []byte {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Header(testHeader())
	e.Invocation(500, 0)
	e.Invocation(1500, 2)
	e.Profile(denseProfile())
	e.Profile(sparseProfile())
	e.History(HistoryMeta{Total: 5, PhaseChanges: 1, Cap: 64, Windows: 2})
	e.Window(testWindow(1))
	e.Window(testWindow(2))
	e.Trailer(testTrailer())
	if err := e.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// decodeAll drains a stream, returning the header and every record.
func decodeAll(r io.Reader) (Header, []Record, error) {
	h, recs, _, err := decodeAllVer(r)
	return h, recs, err
}

// decodeAllVer is decodeAll plus the detected stream version.
func decodeAllVer(r io.Reader) (Header, []Record, byte, error) {
	d := NewDecoder(r)
	h, err := d.Header()
	if err != nil {
		return Header{}, nil, 0, err
	}
	var recs []Record
	for {
		rec, err := d.Next()
		if err == io.EOF {
			return h, recs, d.Version(), nil
		}
		if err != nil {
			return Header{}, nil, 0, err
		}
		recs = append(recs, rec)
	}
}

func TestRoundTrip(t *testing.T) {
	stream := testStream()
	h, recs, err := decodeAll(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if want := testHeader(); h != want {
		t.Errorf("header round trip:\n got %+v\nwant %+v", h, want)
	}
	wantSparse := sparseProfile()
	wantSparse.Recorded = len(wantSparse.Cells) - 3
	wantDense := denseProfile()
	wantDense.Recorded = len(wantDense.Cells)
	want := []Record{
		&Invocation{Cycles: 500, Profiles: 0},
		&Invocation{Cycles: 1500, Profiles: 2},
		&wantDense,
		&wantSparse,
		&HistoryMeta{Total: 5, PhaseChanges: 1, Cap: 64, Windows: 2},
		ptr(testWindow(1)),
		ptr(testWindow(2)),
		ptr(testTrailer()),
	}
	if len(recs) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(recs[i], want[i]) {
			t.Errorf("record %d:\n got %#v\nwant %#v", i, recs[i], want[i])
		}
	}
}

func ptr[T any](v T) *T { return &v }

func TestDecoderAccounting(t *testing.T) {
	stream := testStream()
	d := NewDecoder(bytes.NewReader(stream))
	if _, err := d.Header(); err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := d.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if got, want := d.Bytes(), uint64(len(stream)); got != want {
		t.Errorf("Bytes() = %d, want %d (stream length)", got, want)
	}
	if got := d.Frames(); got != 9 { // header + 8 records
		t.Errorf("Frames() = %d, want 9", got)
	}
}

// TestTruncation: every strict prefix of a valid stream must fail to
// decode — a stream is complete or rejected, never silently partial.
func TestTruncation(t *testing.T) {
	stream := testStream()
	for n := 0; n < len(stream); n++ {
		if _, _, err := decodeAll(bytes.NewReader(stream[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(stream))
		}
	}
}

func TestTrailingGarbage(t *testing.T) {
	stream := append(testStream(), 0x00)
	if _, _, err := decodeAll(bytes.NewReader(stream)); err == nil ||
		!strings.Contains(err.Error(), "trailing bytes") {
		t.Fatalf("trailing byte: err = %v, want trailing-bytes error", err)
	}
}

func TestDecodeRejections(t *testing.T) {
	valid := testStream()
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"bad version", func(b []byte) []byte { b[4] = 0x7f; return b }, "unsupported version"},
		{"unknown frame type", func(b []byte) []byte { b[5] = 0x6e; return b }, "first frame type"},
		{"empty input", func(b []byte) []byte { return nil }, "magic"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), valid...))
			_, _, err := decodeAll(bytes.NewReader(b))
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

// TestOversizedFrameRejected: a frame length past MaxFramePayload is
// rejected before any payload allocation happens.
func TestOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.WriteByte(Version)
	buf.WriteByte(frameHeader)
	// Claimed payload of 1 << 40 bytes, no payload behind it.
	buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	if _, err := d.Header(); err == nil || !strings.Contains(err.Error(), "MaxFramePayload") {
		t.Fatalf("err = %v, want MaxFramePayload error", err)
	}
}

// TestProfileAllocationBounded: a profile frame declaring a huge dense
// geometry with a tiny payload is rejected by the plausibility check, not
// by attempting the allocation and replaying garbage.
func TestProfileAllocationBounded(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Header(testHeader())
	e.Invocation(1, 1)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if err := e.w.Flush(); err != nil { // white-box: flush the partial stream
		t.Fatal(err)
	}
	// Hand-build a profile frame: 1 op at PC 1, 60000 rows, dense (60000
	// recorded) — but no cell bytes at all.
	var p []byte
	p = appendF64(p, 0.5)  // alpha
	p = appendUv(p, 1)     // nops
	p = appendUv(p, 1)     // pc[0]
	p = append(p, 0x01)    // isLoad bitmap
	p = appendUv(p, 60000) // rows
	p = appendUv(p, 60000) // recorded == cells → dense
	buf.WriteByte(frameProfile)
	buf.Write(appendUv(nil, uint64(len(p))))
	buf.Write(p)

	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	if _, err := d.Header(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Next(); err != nil { // invocation
		t.Fatal(err)
	}
	_, err := d.Next()
	if err == nil || !strings.Contains(err.Error(), "payload too short") {
		t.Fatalf("err = %v, want payload-too-short error", err)
	}
}

func appendUv(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendF64(b []byte, f float64) []byte {
	v := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		b = append(b, byte(v>>(8*i)))
	}
	return b
}

// TestGrammarRejections: frames out of the declared order are rejected.
func TestGrammarRejections(t *testing.T) {
	// An invocation owing one profile, followed by a trailer frame.
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.WriteByte(Version)
	writeFrame := func(typ byte, payload []byte) {
		buf.WriteByte(typ)
		buf.Write(appendUv(nil, uint64(len(payload))))
		buf.Write(payload)
	}
	var hdr []byte
	for i := 0; i < 3; i++ { // workload, machine, cache name: empty strings
		hdr = appendUv(hdr, 0)
	}
	hdr = appendUv(hdr, 1024) // size
	hdr = appendUv(hdr, 2)    // assoc
	hdr = appendUv(hdr, 64)   // line
	hdr = append(hdr, 0)      // policy
	for i := 0; i < 4; i++ {  // warmup, flush gap, per-ref, fixed
		hdr = appendUv(hdr, 1)
	}
	hdr = appendUv(hdr, 0) // history windows (zigzag 0)
	hdr = appendF64(hdr, 0)
	hdr = appendF64(hdr, 0)
	writeFrame(frameHeader, hdr)
	inv := appendUv(nil, 7)
	inv = appendUv(inv, 1) // declares one profile
	writeFrame(frameInvocation, inv)
	writeFrame(frameTrailer, nil)

	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	if _, err := d.Header(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Next(); err == nil || !strings.Contains(err.Error(), "profiles still expected") {
		t.Fatalf("err = %v, want profiles-still-expected error", err)
	}
}

// TestEncoderMisuse: grammar violations on the encode side surface as
// sticky errors rather than producing undecodable streams.
func TestEncoderMisuse(t *testing.T) {
	cases := []struct {
		name    string
		drive   func(e *Encoder)
		wantSub string
	}{
		{"profile before header", func(e *Encoder) {
			e.Profile(denseProfile())
		}, "before header"},
		{"profile without invocation", func(e *Encoder) {
			e.Header(testHeader())
			e.Profile(denseProfile())
		}, "without a pending invocation"},
		{"trailer owing profiles", func(e *Encoder) {
			e.Header(testHeader())
			e.Invocation(1, 2)
			e.Profile(denseProfile())
			e.Trailer(testTrailer())
		}, "profiles still owed"},
		{"window count mismatch", func(e *Encoder) {
			e.Header(testHeader())
			e.History(HistoryMeta{Windows: 2})
			e.Window(testWindow(1))
			e.Trailer(testTrailer())
		}, "windows still owed"},
		{"double header", func(e *Encoder) {
			e.Header(testHeader())
			e.Header(testHeader())
		}, "twice"},
		{"unsorted trailer set", func(e *Encoder) {
			e.Header(testHeader())
			tr := testTrailer()
			tr.CandidatePCs = []uint64{5, 3}
			e.Trailer(tr)
		}, "not strictly ascending"},
		{"no trailer", func(e *Encoder) {
			e.Header(testHeader())
		}, "no trailer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEncoder(io.Discard)
			tc.drive(e)
			err := e.Flush()
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

// TestEncodeCompactness pins the encoding's density: the dense test
// profile (12 recorded cells with shared high bits) must land well under
// 8 bytes per cell plus framing — the property that makes capture cheap.
func TestEncodeCompactness(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Header(Header{CacheSize: 1024, CacheAssoc: 1, CacheLine: 64})
	e.Invocation(1, 1)
	p := denseProfile()
	e.Profile(p)
	e.Trailer(Trailer{})
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	// 12 cells at ≤6 varint bytes each plus header/trailer framing.
	if buf.Len() > 200 {
		t.Errorf("stream is %d bytes for 12 cells — encoding lost its compactness", buf.Len())
	}
}

func FuzzWireDecode(f *testing.F) {
	f.Add(testStream())
	// A minimal stream: header + trailer only.
	var minimal bytes.Buffer
	e := NewEncoder(&minimal)
	e.Header(Header{})
	e.Trailer(Trailer{})
	if err := e.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(minimal.Bytes())
	f.Add(testStreamV2())
	var minimal2 bytes.Buffer
	e2 := NewEncoderV2(&minimal2)
	e2.Header(Header{})
	e2.Trailer(Trailer{})
	if err := e2.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(minimal2.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte("UMIP\x01\x01\x00"))
	f.Add([]byte("UMIP\x02\x01\x01\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 1: the decoder never panics and always terminates with
		// a record stream or an error, on any input.
		h, recs, ver, err := decodeAllVer(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Property 2: every valid stream round-trips — re-encoding the
		// decoded records at the stream's own version yields a stream that
		// decodes to the same bytes again (byte-level fixed point, which
		// also sidesteps NaN comparison traps in float fields).
		enc1 := reencode(t, h, recs, ver)
		h2, recs2, ver2, err := decodeAllVer(bytes.NewReader(enc1))
		if err != nil {
			t.Fatalf("re-decode of re-encoded stream failed: %v", err)
		}
		enc2 := reencode(t, h2, recs2, ver2)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("re-encode not a fixed point:\n first %x\nsecond %x", enc1, enc2)
		}
	})
}

// reencode writes the decoded records back out through the encoder, at the
// version the stream was decoded from.
func reencode(t *testing.T, h Header, recs []Record, version byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	if version == Version2 {
		e = NewEncoderV2(&buf)
	}
	e.Header(h)
	for _, rec := range recs {
		switch r := rec.(type) {
		case *Invocation:
			e.Invocation(r.Cycles, r.Profiles)
		case *Profile:
			e.Profile(*r)
		case *HistoryMeta:
			e.History(*r)
		case *Window:
			e.Window(*r)
		case *Trailer:
			e.Trailer(*r)
		default:
			t.Fatalf("unknown record type %T", rec)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("re-encode of valid decode failed: %v", err)
	}
	return buf.Bytes()
}
