package wire

import (
	"bytes"
	"compress/flate"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// testStreamV2 is testStream re-recorded through the v2 encoder.
func testStreamV2() []byte {
	var buf bytes.Buffer
	e := NewEncoderV2(&buf)
	e.Header(testHeader())
	e.Invocation(500, 0)
	e.Invocation(1500, 2)
	e.Profile(denseProfile())
	e.Profile(sparseProfile())
	e.History(HistoryMeta{Total: 5, PhaseChanges: 1, Cap: 64, Windows: 2})
	e.Window(testWindow(1))
	e.Window(testWindow(2))
	e.Trailer(testTrailer())
	if err := e.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func TestRoundTripV2(t *testing.T) {
	stream := testStreamV2()
	d := NewDecoder(bytes.NewReader(stream))
	h, err := d.Header()
	if err != nil {
		t.Fatalf("decode header: %v", err)
	}
	if d.Version() != Version2 {
		t.Fatalf("Version() = %#02x, want Version2", d.Version())
	}
	if want := testHeader(); h != want {
		t.Errorf("header round trip:\n got %+v\nwant %+v", h, want)
	}
	var recs []Record
	for {
		rec, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		recs = append(recs, rec)
	}
	tr, ok := recs[len(recs)-1].(*Trailer)
	if !ok {
		t.Fatalf("last record is %T, want *Trailer", recs[len(recs)-1])
	}
	// The manifest was auto-derived: 7 record frames + the header precede
	// the trailer, the shard ID defaults to the content checksum, and the
	// decoder's rolling checksum must agree with the declaration.
	if tr.Shard.Frames != 8 {
		t.Errorf("manifest frames = %d, want 8", tr.Shard.Frames)
	}
	if tr.Shard.Checksum == 0 || tr.Shard.ShardID != tr.Shard.Checksum {
		t.Errorf("manifest = %+v, want shard ID derived from a nonzero checksum", tr.Shard)
	}
	if d.Checksum() != tr.Shard.Checksum {
		t.Errorf("Decoder.Checksum() = %#x, manifest says %#x", d.Checksum(), tr.Shard.Checksum)
	}
	// Record contents match the v1 round trip expectations exactly.
	wantSparse := sparseProfile()
	wantSparse.Recorded = len(wantSparse.Cells) - 3
	wantDense := denseProfile()
	wantDense.Recorded = len(wantDense.Cells)
	wantTrailer := testTrailer()
	wantTrailer.Shard = tr.Shard
	want := []Record{
		&Invocation{Cycles: 500, Profiles: 0},
		&Invocation{Cycles: 1500, Profiles: 2},
		&wantDense,
		&wantSparse,
		&HistoryMeta{Total: 5, PhaseChanges: 1, Cap: 64, Windows: 2},
		ptr(testWindow(1)),
		ptr(testWindow(2)),
		&wantTrailer,
	}
	if len(recs) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(recs[i], want[i]) {
			t.Errorf("record %d:\n got %#v\nwant %#v", i, recs[i], want[i])
		}
	}
}

func TestV2Truncation(t *testing.T) {
	stream := testStreamV2()
	for n := 0; n < len(stream); n++ {
		if _, _, err := decodeAll(bytes.NewReader(stream[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(stream))
		}
	}
}

func TestV2TrailingGarbage(t *testing.T) {
	stream := append(testStreamV2(), 0x00)
	if _, _, err := decodeAll(bytes.NewReader(stream)); err == nil ||
		!strings.Contains(err.Error(), "trailing bytes") {
		t.Fatalf("trailing byte: err = %v, want trailing-bytes error", err)
	}
}

// bigProfile is a stride-regular profile large enough for the block coder
// to bite: the shape real captures have (few hot PCs, striding addresses).
func bigProfile(rows int) Profile {
	p := Profile{
		Alpha:  0.9,
		PCs:    []uint64{0x400100, 0x400180, 0x400240, 0x4002c0},
		IsLoad: []bool{true, true, false, true},
		Rows:   rows,
	}
	p.Cells = make([]uint64, p.Rows*len(p.PCs))
	for i := range p.Cells {
		p.Cells[i] = 0x7f_0000_0000 + uint64(i)*2 // constant stride
	}
	return p
}

// TestV2Compression pins the tentpole ratio on a synthetic stride-regular
// stream: delta pre-transform plus DEFLATE must beat the v1 encoding by
// at least 3x (the em3d acceptance bar, reproduced here without a guest).
func TestV2Compression(t *testing.T) {
	record := func(e *Encoder) {
		e.Header(testHeader())
		for i := 0; i < 4; i++ {
			e.Invocation(uint64(1000*i), 1)
			e.Profile(bigProfile(2048))
		}
		e.Trailer(testTrailer())
	}
	var v1, v2 bytes.Buffer
	e1 := NewEncoder(&v1)
	record(e1)
	if err := e1.Flush(); err != nil {
		t.Fatal(err)
	}
	e2 := NewEncoderV2(&v2)
	record(e2)
	if err := e2.Flush(); err != nil {
		t.Fatal(err)
	}
	if ratio := float64(v1.Len()) / float64(v2.Len()); ratio < 3 {
		t.Errorf("v2 compression ratio %.2fx (v1 %d bytes, v2 %d bytes), want >= 3x",
			ratio, v1.Len(), v2.Len())
	}
	// And the compressed stream still decodes to the same records.
	h1, r1, err := decodeAll(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	h2, r2, err := decodeAll(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("headers differ across versions")
	}
	t2 := r2[len(r2)-1].(*Trailer)
	t2.Shard = Manifest{} // v1 carries no manifest; compare the rest
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("records differ across versions")
	}
}

// writeFrameV2 hand-builds one stored v2 frame, returning the bytes.
func writeFrameV2(typ byte, payload []byte) []byte {
	b := []byte{typ, methodStored}
	b = appendUv(b, uint64(len(payload)))
	return append(b, payload...)
}

// minimalHeaderPayload is the hand-built header TestGrammarRejections
// uses, shared here for v2 frame-level rejection tests.
func minimalHeaderPayload() []byte {
	var hdr []byte
	for i := 0; i < 3; i++ {
		hdr = appendUv(hdr, 0)
	}
	hdr = appendUv(hdr, 1024)
	hdr = appendUv(hdr, 2)
	hdr = appendUv(hdr, 64)
	hdr = append(hdr, 0)
	for i := 0; i < 4; i++ {
		hdr = appendUv(hdr, 1)
	}
	hdr = appendUv(hdr, 0)
	hdr = appendF64(hdr, 0)
	hdr = appendF64(hdr, 0)
	return hdr
}

// TestV2ManifestRejections: a trailer manifest contradicting the observed
// frame count or checksum is a decode error, not a shrug.
func TestV2ManifestRejections(t *testing.T) {
	headerFrame := writeFrameV2(frameHeader, minimalHeaderPayload())
	goodChk := fnvUpdate(fnvOffset64, headerFrame)
	trailerPayload := func(frames, chk uint64) []byte {
		p := appendUv(nil, 7) // shard ID
		p = appendUv(p, frames)
		var le [8]byte
		for i := range le {
			le[i] = byte(chk >> (8 * i))
		}
		p = append(p, le[:]...)
		for i := 0; i < 7; i++ { // trailer counters
			p = appendUv(p, 0)
		}
		p = appendUv(p, 0) // candidate set
		p = appendUv(p, 0) // trace set
		return p
	}
	build := func(frames, chk uint64) []byte {
		b := []byte(Magic)
		b = append(b, Version2, CodecStored)
		b = append(b, headerFrame...)
		return append(b, writeFrameV2(frameTrailer, trailerPayload(frames, chk))...)
	}
	if _, _, err := decodeAll(bytes.NewReader(build(1, goodChk))); err != nil {
		t.Fatalf("well-formed manifest rejected: %v", err)
	}
	if _, _, err := decodeAll(bytes.NewReader(build(2, goodChk))); err == nil ||
		!strings.Contains(err.Error(), "declares 2 frames") {
		t.Fatalf("frame-count mismatch: err = %v", err)
	}
	if _, _, err := decodeAll(bytes.NewReader(build(1, goodChk+1))); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Fatalf("checksum mismatch: err = %v", err)
	}
}

// TestV2FrameRejections: transport-level v2 malformations.
func TestV2FrameRejections(t *testing.T) {
	preamble := func(codec byte) []byte {
		return append([]byte(Magic), Version2, codec)
	}
	t.Run("unknown codec", func(t *testing.T) {
		d := NewDecoder(bytes.NewReader(preamble(0x7e)))
		if _, err := d.Header(); err == nil || !strings.Contains(err.Error(), "unknown codec") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unknown method", func(t *testing.T) {
		b := append(preamble(CodecFlate), frameHeader, 0x7e)
		d := NewDecoder(bytes.NewReader(b))
		if _, err := d.Header(); err == nil || !strings.Contains(err.Error(), "unknown method") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("coded frame under stored codec", func(t *testing.T) {
		b := append(preamble(CodecStored), frameHeader, methodCoded)
		d := NewDecoder(bytes.NewReader(b))
		if _, err := d.Header(); err == nil || !strings.Contains(err.Error(), "stored-codec") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("raw length mismatch", func(t *testing.T) {
		payload := minimalHeaderPayload()
		var coded bytes.Buffer
		fw, _ := flate.NewWriter(&coded, flate.DefaultCompression)
		fw.Write(payload)
		fw.Close()
		b := append(preamble(CodecFlate), frameHeader, methodCoded)
		b = appendUv(b, uint64(len(payload))+1) // lies about the raw length
		b = appendUv(b, uint64(coded.Len()))
		b = append(b, coded.Bytes()...)
		d := NewDecoder(bytes.NewReader(b))
		if _, err := d.Header(); err == nil || !strings.Contains(err.Error(), "inflate") {
			t.Fatalf("err = %v", err)
		}
	})
}

// TestTranscode: v1 -> v2 -> v1 is the identity on our encoder's output,
// and the v2 leg preserves the shard ID.
func TestTranscode(t *testing.T) {
	v1 := testStream()
	var v2 bytes.Buffer
	if err := Transcode(&v2, bytes.NewReader(v1), Version2); err != nil {
		t.Fatalf("v1->v2: %v", err)
	}
	var back bytes.Buffer
	if err := Transcode(&back, bytes.NewReader(v2.Bytes()), Version); err != nil {
		t.Fatalf("v2->v1: %v", err)
	}
	if !bytes.Equal(v1, back.Bytes()) {
		t.Errorf("v1 -> v2 -> v1 is not the identity (%d vs %d bytes)", len(v1), back.Len())
	}
	var again bytes.Buffer
	if err := Transcode(&again, bytes.NewReader(v2.Bytes()), Version2); err != nil {
		t.Fatalf("v2->v2: %v", err)
	}
	m1, ok1, err1 := ScanManifest(bytes.NewReader(v2.Bytes()))
	m2, ok2, err2 := ScanManifest(bytes.NewReader(again.Bytes()))
	if err1 != nil || err2 != nil || !ok1 || !ok2 {
		t.Fatalf("ScanManifest: %v %v %v %v", m1, err1, m2, err2)
	}
	if m1.ShardID != m2.ShardID {
		t.Errorf("v2->v2 transcode changed shard ID: %#x -> %#x", m1.ShardID, m2.ShardID)
	}
}

func TestScanManifest(t *testing.T) {
	if _, ok, err := ScanManifest(bytes.NewReader(testStream())); ok || err != nil {
		t.Fatalf("v1 stream: ok=%v err=%v, want no manifest, no error", ok, err)
	}
	stream := testStreamV2()
	m, ok, err := ScanManifest(bytes.NewReader(stream))
	if err != nil || !ok {
		t.Fatalf("v2 stream: ok=%v err=%v", ok, err)
	}
	if m.Frames != 8 || m.Checksum == 0 || m.ShardID != m.Checksum {
		t.Errorf("manifest = %+v, want 8 frames and checksum-derived shard ID", m)
	}
	if _, _, err := ScanManifest(bytes.NewReader(stream[:len(stream)-3])); err == nil {
		t.Errorf("truncated stream scanned without error")
	}
}

// TestFrameHook: the hook fires once per frame with the underlying writer
// flushed to a frame boundary — the contract the live shipper chunks on.
func TestFrameHook(t *testing.T) {
	var out bytes.Buffer
	e := NewEncoderV2(&out)
	var marks []int
	e.SetFrameHook(func() { marks = append(marks, out.Len()) })
	e.Header(testHeader())
	e.Invocation(500, 1)
	e.Profile(denseProfile())
	e.Trailer(testTrailer())
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(marks) != 4 {
		t.Fatalf("hook fired %d times, want 4", len(marks))
	}
	if marks[len(marks)-1] != out.Len() {
		t.Errorf("final hook at %d bytes, stream is %d", marks[len(marks)-1], out.Len())
	}
	// Every prefix the hook observed must be strictly growing, and the
	// whole stream must decode.
	for i := 1; i < len(marks); i++ {
		if marks[i] <= marks[i-1] {
			t.Errorf("hook mark %d (%d bytes) did not advance past %d", i, marks[i], marks[i-1])
		}
	}
	if _, _, err := decodeAll(bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("hooked stream does not decode: %v", err)
	}
}

// TestSetShardID: an explicit shard ID overrides checksum derivation.
func TestSetShardID(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoderV2(&buf)
	e.SetShardID(0xabcdef)
	e.Header(testHeader())
	e.Trailer(Trailer{})
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	m, ok, err := ScanManifest(bytes.NewReader(buf.Bytes()))
	if err != nil || !ok {
		t.Fatalf("ScanManifest: ok=%v err=%v", ok, err)
	}
	if m.ShardID != 0xabcdef {
		t.Errorf("shard ID = %#x, want 0xabcdef", m.ShardID)
	}
}

// TestErrTruncated: transport-level failures (the stream cuts off) match
// ErrTruncated — the resumable class — while content-level malformations
// do not. The ingest path keys poison-vs-resume on this distinction.
func TestErrTruncated(t *testing.T) {
	stream := testStreamV2()
	for _, n := range []int{len(stream) / 3, len(stream) / 2, len(stream) - 1} {
		_, _, err := decodeAll(bytes.NewReader(stream[:n]))
		if err == nil || !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d/%d bytes: err = %v, want ErrTruncated", n, len(stream), err)
		}
	}
	// A content-level malformation: an oversized frame declaration is
	// corruption, not a short read, and must not read as resumable.
	bad := append([]byte(Magic), Version2, CodecStored)
	bad = append(bad, frameHeader, methodStored)
	bad = appendUv(bad, MaxFramePayload+1)
	d := NewDecoder(bytes.NewReader(bad))
	if _, err := d.Header(); err == nil || errors.Is(err, ErrTruncated) {
		t.Errorf("oversized frame: err = %v, want non-truncation error", err)
	}
}
