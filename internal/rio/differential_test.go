package rio

import (
	"fmt"
	"math/rand"
	"testing"

	"umi/internal/isa"
	"umi/internal/program"
	"umi/internal/vm"
)

// Differential testing: random structured programs must execute to the
// same architectural state natively, under the code cache, and under the
// code cache with every trace instrumented. This is the strongest
// statement we can make about dispatcher and instrumentation transparency.

// genProgram builds a random but guaranteed-terminating program: a
// sequence of bounded counted loops with random ALU/memory bodies,
// optional helper calls, and nested inner loops.
func genProgram(r *rand.Rand) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("diff%d", r.Int63()))
	e := b.Block("entry")
	e.AddI(isa.SP, isa.SP, -128)
	e.Mov(isa.BP, isa.SP)
	e.MovI(isa.R2, int64(program.HeapBase))
	nLoops := 1 + r.Intn(4)
	for li := 0; li < nLoops; li++ {
		pre := b.Block(fmt.Sprintf("pre%d", li))
		pre.MovI(isa.R0, 0)
		trip := int64(50 + r.Intn(300))
		l := b.Block(fmt.Sprintf("loop%d", li))
		emitRandomBody(r, b, l, li)
		l.AddI(isa.R0, isa.R0, 1)
		l.BrI(isa.CondLT, isa.R0, trip, fmt.Sprintf("loop%d", li))
	}
	b.Block("done").Halt()

	// Helper functions with stack traffic, targets of random calls.
	for h := 0; h < 3; h++ {
		f := b.Block(fmt.Sprintf("helper%d", h))
		f.AddI(isa.SP, isa.SP, -16)
		f.Store(isa.R7, 8, isa.Mem(isa.SP, 0))
		f.AddI(isa.R7, isa.R7, int64(h+1))
		f.Load(isa.R10, 8, isa.Mem(isa.SP, 0))
		f.AddI(isa.SP, isa.SP, 16)
		f.Ret()
	}
	p, err := b.Assemble()
	if err != nil {
		panic(err)
	}
	return p
}

// emitRandomBody appends 3-10 random instructions to a loop body. Memory
// addresses stay inside a 1 MiB heap window via masking.
func emitRandomBody(r *rand.Rand, b *program.Builder, blk *program.BlockBuilder, loopIdx int) {
	n := 3 + r.Intn(8)
	for i := 0; i < n; i++ {
		rd := isa.Reg(3 + r.Intn(9)) // r3..r11: avoid loop/base registers
		rs := isa.Reg(3 + r.Intn(9))
		switch r.Intn(9) {
		case 0:
			blk.Add(rd, rd, rs)
		case 1:
			blk.Sub(rd, rd, rs)
		case 2:
			blk.MulI(rd, rs, int64(r.Intn(7))+1)
		case 3:
			blk.Xor(rd, rd, rs)
		case 4:
			blk.MovI(rd, r.Int63n(1<<20))
		case 5: // masked heap load
			blk.AndI(isa.R12, rs, (1<<17)-1)
			blk.Load(rd, 8, isa.MemIdx(isa.R2, isa.R12, 8, 0))
		case 6: // masked heap store
			blk.AndI(isa.R12, rs, (1<<17)-1)
			blk.Store(rd, 8, isa.MemIdx(isa.R2, isa.R12, 8, 0))
		case 7: // stack spill/fill
			blk.Store(rd, 8, isa.Mem(isa.BP, int64(8*(r.Intn(8)))))
			blk.Load(rd, 8, isa.Mem(isa.BP, int64(8*(r.Intn(8)))))
		case 8:
			blk.Call(fmt.Sprintf("helper%d", r.Intn(3)))
		}
	}
}

// memChecksum folds the touched heap window into one value.
func memChecksum(m *vm.Machine) uint64 {
	var sum uint64
	for off := uint64(0); off < 1<<20; off += 4096 {
		// One word per page is enough to catch divergent stores given
		// random addresses (pages materialize identically).
		sum = sum*1099511628211 + m.Mem.Read(program.HeapBase+off, 8)
	}
	return sum
}

type execResult struct {
	regs   [isa.NumRegs]uint64
	instrs uint64
	mem    uint64
}

func runNativeDiff(t *testing.T, p *program.Program) execResult {
	t.Helper()
	m := vm.New(p, nil)
	if err := m.Run(10_000_000); err != nil {
		t.Fatalf("native: %v", err)
	}
	return execResult{regs: m.Regs, instrs: m.Instrs, mem: memChecksum(m)}
}

func runRIODiff(t *testing.T, p *program.Program, instrument bool, blockCap int) execResult {
	t.Helper()
	m := vm.New(p, nil)
	rt := NewRuntime(m)
	rt.BlockCacheCap = blockCap
	if instrument {
		rt.OnTrace = func(f *Fragment) {
			hooks := make(map[uint64]MemHook)
			for _, i := range f.MemOps() {
				hooks[f.PCs[i]] = func(pc, addr uint64, size uint8, write bool) {}
			}
			f.Instr = &Instrumentation{
				Prolog:     func() bool { return true },
				Hooks:      hooks,
				PerRefCost: 5,
				PrologCost: 3,
			}
		}
		rt.SamplePeriod = 500
		rt.OnSample = func(*Fragment) {}
	}
	if err := rt.Run(10_000_000); err != nil {
		t.Fatalf("rio (instrument=%v): %v", instrument, err)
	}
	return execResult{regs: m.Regs, instrs: m.Instrs, mem: memChecksum(m)}
}

func TestDifferentialRandomPrograms(t *testing.T) {
	const trials = 40
	for seed := int64(0); seed < trials; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			p := genProgram(r)
			want := runNativeDiff(t, p)
			plain := runRIODiff(t, p, false, 0)
			if plain != want {
				t.Fatalf("code-cache execution diverged:\nnative %+v\nrio    %+v", want, plain)
			}
			inst := runRIODiff(t, p, true, 0)
			if inst != want {
				t.Fatalf("instrumented execution diverged:\nnative %+v\nrio    %+v", want, inst)
			}
			tiny := runRIODiff(t, p, false, 24) // constant block-cache churn
			if tiny != want {
				t.Fatalf("capacity-flushing execution diverged:\nnative %+v\nrio    %+v", want, tiny)
			}
		})
	}
}
