// Package rio is the reproduction's DynamoRIO analogue: a runtime code
// manipulation layer that executes guest programs out of a code cache,
// discovers basic blocks on demand, promotes hot block sequences into
// single-entry multiple-exit traces, links fragments to avoid dispatch
// overhead, and exposes the instrumentation surface UMI builds on (trace
// observation callbacks, per-operation memory hooks, trace cloning and
// replacement, and PC sampling).
//
// The layer also carries the cost model that stands in for real DynamoRIO
// overhead: fragment construction, unlinked dispatches and indirect-branch
// lookups add cycles, while instructions executed from traces earn a small
// code-layout credit. Figure 2's three bars (DynamoRIO, UMI, UMI+sampling)
// are ratios of these modelled cycle totals.
package rio

import (
	"fmt"

	"umi/internal/isa"
)

// MemHook observes one profiled memory reference executed inside an
// instrumented fragment.
type MemHook func(pc, addr uint64, size uint8, write bool)

// Instrumentation attaches UMI profiling to a fragment. The zero value
// means "not instrumented".
type Instrumentation struct {
	// Prolog runs on every fragment entry (the paper's bookkeeping
	// prolog: one conditional jump thanks to the guard-page trick). If it
	// returns true, the entry is profiled: the fragment's hooks are
	// installed for this execution. If it returns false, the dispatcher
	// re-resolves the fragment for the same PC: when the prolog replaced
	// the fragment (analysis finished) execution continues in the
	// replacement, and when it did not (a burst-sampling skip) this entry
	// executes unprofiled, paying only PrologCost.
	Prolog func() bool
	// Hooks maps original application PCs of profiled operations to
	// their observers.
	Hooks map[uint64]MemHook
	// PerRefCost is charged per profiled reference (the paper's 4-6
	// extra operations per recorded (pc, address) tuple).
	PerRefCost uint64
	// PrologCost is charged per fragment entry.
	PrologCost uint64
}

// Fragment is a code-cache fragment: a dynamic basic block or a trace.
type Fragment struct {
	ID    int
	Start uint64 // application PC of the fragment head
	// Instrs is the copied code; PCs holds each instruction's original
	// application PC (instrumented clones and prefetching rewrites keep
	// original PCs so profiles stay in application terms).
	Instrs []isa.Instr
	PCs    []uint64

	IsTrace bool
	// ExecCount counts fragment entries.
	ExecCount uint64

	// Instr is the attached instrumentation, nil for clean fragments.
	Instr *Instrumentation

	// links records exit targets with established direct links; a
	// transition through a linked exit bypasses dispatch.
	links map[uint64]bool

	// blocks lists the head PCs of the basic blocks inlined into a trace
	// (for diagnostics and tests).
	blocks []uint64
}

// NumInstrs returns the fragment length in instructions.
func (f *Fragment) NumInstrs() int { return len(f.Instrs) }

// Blocks returns the head PCs of the blocks inlined into this trace.
func (f *Fragment) Blocks() []uint64 { return f.blocks }

// Linked reports whether an exit to target has been linked.
func (f *Fragment) Linked(target uint64) bool { return f.links[target] }

func (f *Fragment) link(target uint64) {
	if f.links == nil {
		f.links = make(map[uint64]bool)
	}
	f.links[target] = true
}

// unlinkAll drops every established link (used when a fragment is
// replaced, since its successors may now differ).
func (f *Fragment) unlinkAll() { f.links = nil }

// MemOps returns the indexes of load/store instructions in the fragment.
func (f *Fragment) MemOps() []int {
	var out []int
	for i := range f.Instrs {
		op := f.Instrs[i].Op
		if op.IsLoad() || op.IsStore() {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns a deep copy of the fragment's code with no
// instrumentation, links, or execution history — the paper's T_c, kept so
// profiling can be switched off by swapping fragments.
func (f *Fragment) Clone() *Fragment {
	c := &Fragment{
		ID:      f.ID,
		Start:   f.Start,
		Instrs:  append([]isa.Instr(nil), f.Instrs...),
		PCs:     append([]uint64(nil), f.PCs...),
		IsTrace: f.IsTrace,
		blocks:  append([]uint64(nil), f.blocks...),
	}
	return c
}

func (f *Fragment) String() string {
	kind := "block"
	if f.IsTrace {
		kind = "trace"
	}
	inst := ""
	if f.Instr != nil {
		inst = " instrumented"
	}
	return fmt.Sprintf("%s@%#x[%d instrs]%s", kind, f.Start, len(f.Instrs), inst)
}
