package rio

import (
	"errors"
	"fmt"

	"umi/internal/isa"
	"umi/internal/program"
	"umi/internal/tracelog"
	"umi/internal/vm"
)

// Costs is the runtime-system overhead model, in cycles. The defaults are
// tuned so that the substrate alone shows the behaviour Figure 2 reports
// for DynamoRIO: near-zero to ~15% slowdown for loop codes (occasionally a
// small speedup from trace layout), and larger slowdowns for
// control-intensive codes that keep leaving the trace cache.
type Costs struct {
	BlockBuild    uint64 // per new basic block fragment
	BlockPerInstr uint64 // per instruction copied into a block
	TraceBuild    uint64 // per new trace fragment
	TracePerInstr uint64 // per instruction inlined into a trace
	Dispatch      uint64 // per unlinked fragment transition
	IndirectLook  uint64 // per indirect-branch lookup
	SampleEvent   uint64 // per PC sample taken
	BlockFlush    uint64 // per block-cache flush (cache-full eviction)
	// TraceCreditShift: every (1<<shift) instructions executed from a
	// trace earn one cycle of layout credit, letting loopy programs run
	// slightly faster than native, as DynamoRIO does.
	TraceCreditShift uint
}

// DefaultCosts is the standard overhead model.
var DefaultCosts = Costs{
	BlockBuild:       80,
	BlockPerInstr:    10,
	TraceBuild:       160,
	TracePerInstr:    14,
	Dispatch:         45,
	IndirectLook:     18,
	SampleEvent:      180,
	BlockFlush:       2000,
	TraceCreditShift: 5, // ~3% credit on trace instructions
}

// HotThreshold is the default block execution count that promotes a trace
// head into a trace (DynamoRIO's default region-promotion threshold).
const HotThreshold = 52

// MaxTraceInstrs caps trace length.
const MaxTraceInstrs = 256

// SamplePeriod is the default PC-sampling period in retired instructions.
// It stands in for the paper's 10 ms timer on a 3 GHz machine scaled down
// to our workload sizes: frequent enough to catch hot traces, rare enough
// to cost little.
const SamplePeriod = 50_000

// ErrNotHalted mirrors vm.ErrNotHalted for runs under the code cache.
var ErrNotHalted = errors.New("rio: instruction budget exhausted before halt")

// TraceObserver is notified when a new trace is installed; UMI's region
// selector hangs off this callback.
type TraceObserver func(*Fragment)

// SampleObserver is notified at every PC sample with the fragment the
// sample landed in (nil when sampling hits non-trace code).
type SampleObserver func(*Fragment)

// Runtime executes a program through a basic-block cache and trace cache.
type Runtime struct {
	M    *vm.Machine
	Prog *program.Program
	Cost Costs

	HotThreshold uint64
	MaxTraceLen  int
	SamplePeriod uint64 // 0 disables sampling
	// BlockCacheCap bounds the basic-block cache in instructions; when a
	// build would exceed it the whole block cache is flushed and rebuilt
	// on demand, as DynamoRIO does when its cache fills. 0 = unbounded.
	BlockCacheCap int
	OnTrace       TraceObserver
	OnSample      SampleObserver
	// EventLog, when non-nil, receives the runtime's own lifecycle events
	// (trace promotions, block-cache flushes) stamped with the guest cycle
	// clock. Recording never feeds back into the overhead model, so runs
	// with and without a log are byte-identical.
	EventLog *tracelog.Log

	blocks map[uint64]*Fragment
	traces map[uint64]*Fragment
	// headCount tracks candidate trace-head execution counts.
	headCount map[uint64]uint64

	// Overhead accumulates runtime-system cycles; Credit accumulates
	// trace-layout savings.
	Overhead uint64
	Credit   uint64

	// statistics
	BlocksBuilt  int
	TracesBuilt  int
	BlockFlushes int
	Dispatches   uint64
	IndirectLks  uint64
	Samples      uint64
	// SampleHits counts samples that landed inside an installed trace —
	// the fraction of the sampler's clock ticks that actually reinforce
	// region selection.
	SampleHits   uint64
	blockInstrs  int
	traceInstrs  uint64
	nextSample   uint64
	nextFragID   int
	recording    bool
	recordHead   uint64
	recordInstrs []isa.Instr
	recordPCs    []uint64
	recordBlocks []uint64
}

// NewRuntime wraps a machine (already positioned at the program entry).
func NewRuntime(m *vm.Machine) *Runtime {
	return &Runtime{
		M:            m,
		Prog:         m.Prog,
		Cost:         DefaultCosts,
		HotThreshold: HotThreshold,
		MaxTraceLen:  MaxTraceInstrs,
		SamplePeriod: 0,
		blocks:       make(map[uint64]*Fragment),
		traces:       make(map[uint64]*Fragment),
		headCount:    make(map[uint64]uint64),
	}
}

// TotalCycles returns the modelled running time under the code cache:
// guest cycles plus runtime overhead minus trace-layout credit.
func (rt *Runtime) TotalCycles() uint64 {
	t := rt.M.Cycles + rt.Overhead
	if rt.Credit >= t {
		return 0
	}
	return t - rt.Credit
}

// AddOverhead charges extra runtime-system cycles (used by the UMI layer
// for analyzer invocations).
func (rt *Runtime) AddOverhead(cycles uint64) { rt.Overhead += cycles }

// TraceAt returns the installed trace starting at pc, if any.
func (rt *Runtime) TraceAt(pc uint64) (*Fragment, bool) {
	f, ok := rt.traces[pc]
	return f, ok
}

// Traces returns the trace cache contents (live map; callers must not
// mutate).
func (rt *Runtime) Traces() map[uint64]*Fragment { return rt.traces }

// ReplaceTrace installs frag as the trace for its start PC, dropping links
// into the old fragment. This is the paper's T <-> T_c swap and the
// prefetcher's rewrite point.
func (rt *Runtime) ReplaceTrace(frag *Fragment) {
	old, ok := rt.traces[frag.Start]
	if ok {
		old.unlinkAll()
	}
	// Links into the replaced fragment are modelled implicitly: linking
	// is by target PC, so successors are unaffected.
	rt.traces[frag.Start] = frag
}

// Run executes until the program halts or maxInstrs guest instructions
// retire.
func (rt *Runtime) Run(maxInstrs uint64) error {
	pc := rt.M.PC
	start := rt.M.Instrs
	if rt.SamplePeriod > 0 && rt.nextSample == 0 {
		rt.nextSample = rt.M.Instrs + rt.SamplePeriod
	}
	var prev *Fragment
	var prevIndirect bool
	for !rt.M.Halted {
		if rt.M.Instrs-start >= maxInstrs {
			return fmt.Errorf("%w (%d instructions)", ErrNotHalted, maxInstrs)
		}
		frag, rebuilt := rt.lookup(pc)
		// Transition cost: linked direct exits are free; indirect exits
		// pay the hash lookup; everything else pays a full dispatch.
		switch {
		case prev == nil || rebuilt:
			rt.Overhead += rt.Cost.Dispatch
			rt.Dispatches++
		case prevIndirect:
			rt.Overhead += rt.Cost.IndirectLook
			rt.IndirectLks++
		case prev.Linked(pc):
			// free
		default:
			rt.Overhead += rt.Cost.Dispatch
			rt.Dispatches++
			prev.link(pc)
		}
		next, indirect, err := rt.execFragment(frag)
		if err != nil {
			return err
		}
		prev, prevIndirect = frag, indirect
		pc = next
	}
	rt.M.PC = pc
	return nil
}

// lookup finds or builds the fragment for pc. rebuilt reports that a build
// occurred (forcing a dispatch charge).
func (rt *Runtime) lookup(pc uint64) (*Fragment, bool) {
	if f, ok := rt.traces[pc]; ok {
		return f, false
	}
	if f, ok := rt.blocks[pc]; ok {
		return f, false
	}
	f := rt.buildBlock(pc)
	return f, true
}

// buildBlock discovers the dynamic basic block at pc: instructions up to
// and including the first branch.
func (rt *Runtime) buildBlock(pc uint64) *Fragment {
	f := &Fragment{ID: rt.nextFragID, Start: pc}
	rt.nextFragID++
	for {
		in, ok := rt.Prog.InstrAt(pc)
		if !ok {
			break // dispatcher will fault on execution
		}
		f.Instrs = append(f.Instrs, *in)
		f.PCs = append(f.PCs, pc)
		if in.Op.IsBranch() {
			break
		}
		pc += isa.InstrBytes
	}
	if rt.BlockCacheCap > 0 && rt.blockInstrs+len(f.Instrs) > rt.BlockCacheCap {
		// Cache full: flush everything and start over (DynamoRIO's
		// all-at-once eviction). Links into flushed blocks resolve by
		// target PC, so traces are unaffected.
		rt.EventLog.Emit(tracelog.Event{Type: tracelog.EvBlockCacheFlush,
			Cycles: rt.M.Cycles, Arg1: uint64(rt.blockInstrs)})
		rt.blocks = make(map[uint64]*Fragment)
		rt.blockInstrs = 0
		rt.BlockFlushes++
		rt.Overhead += rt.Cost.BlockFlush
	}
	rt.blocks[f.Start] = f
	rt.blockInstrs += len(f.Instrs)
	rt.BlocksBuilt++
	rt.Overhead += rt.Cost.BlockBuild + rt.Cost.BlockPerInstr*uint64(len(f.Instrs))
	return f
}

// execFragment runs the fragment to one of its exits. It returns the next
// application PC and whether the exit was through an indirect branch.
func (rt *Runtime) execFragment(f *Fragment) (uint64, bool, error) {
	f.ExecCount++
	m := rt.M
	if f.Instr != nil {
		rt.Overhead += f.Instr.PrologCost
		profile := f.Instr.Prolog()
		if !profile {
			// The prolog declined this execution. Either the fragment asked
			// to be replaced (analysis finished) — re-dispatch to whatever
			// now owns the PC — or the fragment is unchanged and this entry
			// simply runs without its reference hooks: the burst-sampling
			// skip, which pays only the prolog conditional already charged
			// above.
			nf, _ := rt.lookup(f.Start)
			if nf != f {
				return rt.execFragment(nf)
			}
		}
		if profile {
			savedHook := m.RefHook
			hooks := f.Instr.Hooks
			perRef := f.Instr.PerRefCost
			m.RefHook = func(pc, addr uint64, size uint8, write bool) {
				if savedHook != nil {
					savedHook(pc, addr, size, write)
				}
				if h, ok := hooks[pc]; ok {
					h(pc, addr, size, write)
					rt.Overhead += perRef
				}
			}
			defer func() { m.RefHook = savedHook }()
		}
	}

	for i := 0; i < len(f.Instrs); i++ {
		in := &f.Instrs[i]
		pc := f.PCs[i]
		next, err := m.ExecInstr(in, pc)
		if err != nil {
			return 0, false, err
		}
		if f.IsTrace {
			rt.traceInstrs++
			if rt.traceInstrs&(1<<rt.Cost.TraceCreditShift-1) == 0 {
				rt.Credit++
			}
		}
		if rt.SamplePeriod > 0 && m.Instrs >= rt.nextSample {
			rt.nextSample = m.Instrs + rt.SamplePeriod
			rt.Samples++
			if f.IsTrace {
				rt.SampleHits++
			}
			rt.Overhead += rt.Cost.SampleEvent
			if rt.OnSample != nil {
				if f.IsTrace {
					rt.OnSample(f)
				} else {
					rt.OnSample(nil)
				}
			}
		}
		if m.Halted {
			return 0, false, nil
		}
		if !in.Op.IsBranch() && i+1 < len(f.Instrs) {
			// Straight-line code always continues inside the fragment
			// (runtime-injected instructions may share their neighbour's
			// application PC, so PC comparison is reserved for branches).
			continue
		}
		if i+1 < len(f.Instrs) && next == f.PCs[i+1] {
			continue // untaken or fall-through branch stays inside
		}
		// Fragment exit.
		indirect := in.Op.IsIndirect()
		rt.observeExit(f, pc, next)
		return next, indirect, nil
	}
	// Fragments always end with a branch, so execution cannot fall off
	// the end; defend anyway.
	return f.PCs[len(f.PCs)-1] + isa.InstrBytes, false, nil
}

// observeExit feeds the trace builder: backward branches identify trace
// heads; hot heads trigger trace recording; recording appends the blocks
// executed next until a stop condition.
func (rt *Runtime) observeExit(f *Fragment, branchPC, target uint64) {
	if rt.recording {
		rt.appendToRecording(f)
		stop := false
		switch {
		case target == rt.recordHead: // loop closed
			stop = true
		case len(rt.recordInstrs) >= rt.MaxTraceLen:
			stop = true
		case rt.traces[target] != nil: // reached another trace
			stop = true
		case len(f.Instrs) > 0 && f.Instrs[len(f.Instrs)-1].Op.IsIndirect():
			stop = true // indirect branches end traces
		}
		if stop {
			rt.finishRecording()
		}
		return
	}
	// Trace-head candidates, as in NET: targets of taken backward
	// branches, and exits of existing traces (side paths of a hot loop
	// get promoted too — without this, a conditional body inside a hot
	// loop would never be profiled).
	if target <= branchPC || f.IsTrace {
		rt.headCount[target]++
		if rt.headCount[target] >= rt.HotThreshold && rt.traces[target] == nil {
			rt.recording = true
			rt.recordHead = target
			rt.recordInstrs = nil
			rt.recordPCs = nil
			rt.recordBlocks = nil
		}
	}
}

func (rt *Runtime) appendToRecording(f *Fragment) {
	if len(rt.recordBlocks) == 0 && f.Start != rt.recordHead {
		// The first recorded block must be the head; we are called at
		// the exit of the block that *branched to* the head, so skip
		// until the head block itself executes.
		return
	}
	rt.recordBlocks = append(rt.recordBlocks, f.Start)
	rt.recordInstrs = append(rt.recordInstrs, f.Instrs...)
	rt.recordPCs = append(rt.recordPCs, f.PCs...)
}

func (rt *Runtime) finishRecording() {
	rt.recording = false
	if len(rt.recordInstrs) == 0 {
		return
	}
	f := &Fragment{
		ID:      rt.nextFragID,
		Start:   rt.recordHead,
		Instrs:  rt.recordInstrs,
		PCs:     rt.recordPCs,
		IsTrace: true,
		blocks:  rt.recordBlocks,
	}
	rt.nextFragID++
	rt.recordInstrs, rt.recordPCs, rt.recordBlocks = nil, nil, nil
	rt.traces[f.Start] = f
	rt.TracesBuilt++
	rt.Overhead += rt.Cost.TraceBuild + rt.Cost.TracePerInstr*uint64(len(f.Instrs))
	rt.EventLog.Emit(tracelog.Event{Type: tracelog.EvTracePromoted,
		Cycles: rt.M.Cycles, TracePC: f.Start, Arg1: uint64(len(f.Instrs))})
	if rt.OnTrace != nil {
		rt.OnTrace(f)
	}
}

// RuntimeCounters is a copy of the runtime's event counters, taken at a
// point where the caller owns the runtime (rio is single-threaded).
type RuntimeCounters struct {
	BlocksBuilt     int
	TracesBuilt     int
	BlockFlushes    int
	Dispatches      uint64
	IndirectLookups uint64
	Samples         uint64
	SampleHits      uint64
}

// Counters snapshots the runtime's event counters.
func (rt *Runtime) Counters() RuntimeCounters {
	return RuntimeCounters{
		BlocksBuilt:     rt.BlocksBuilt,
		TracesBuilt:     rt.TracesBuilt,
		BlockFlushes:    rt.BlockFlushes,
		Dispatches:      rt.Dispatches,
		IndirectLookups: rt.IndirectLks,
		Samples:         rt.Samples,
		SampleHits:      rt.SampleHits,
	}
}

// CodeCacheInstrs reports the instructions resident in both caches.
func (rt *Runtime) CodeCacheInstrs() (blocks, traces int) {
	for _, f := range rt.blocks {
		blocks += len(f.Instrs)
	}
	for _, f := range rt.traces {
		traces += len(f.Instrs)
	}
	return
}
