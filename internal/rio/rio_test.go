package rio

import (
	"errors"
	"testing"

	"umi/internal/isa"
	"umi/internal/program"
	"umi/internal/vm"
)

// loopProgram builds a program that sums n words at HeapBase with a hot
// inner loop; identical to the vm test workload so native and code-cache
// execution can be compared.
func loopProgram(t *testing.T, n int64) *program.Program {
	t.Helper()
	words := make([]uint64, n)
	for i := range words {
		words[i] = uint64(i)
	}
	b := program.NewBuilder("loop")
	b.AddWords(program.HeapBase, words)
	e := b.Block("entry")
	e.MovI(isa.R0, 0)
	e.MovI(isa.R1, 0)
	e.MovI(isa.R2, n)
	e.MovI(isa.R3, int64(program.HeapBase))
	l := b.Block("loop")
	l.Load(isa.R4, 8, isa.MemIdx(isa.R3, isa.R1, 8, 0))
	l.Add(isa.R0, isa.R0, isa.R4)
	l.AddI(isa.R1, isa.R1, 1)
	l.Br(isa.CondLT, isa.R1, isa.R2, "loop")
	b.Block("done").Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func runBoth(t *testing.T, p *program.Program, maxInstrs uint64) (*vm.Machine, *Runtime) {
	t.Helper()
	native := vm.New(p, nil)
	if err := native.Run(maxInstrs); err != nil {
		t.Fatalf("native Run: %v", err)
	}
	m := vm.New(p, nil)
	rt := NewRuntime(m)
	if err := rt.Run(maxInstrs); err != nil {
		t.Fatalf("rio Run: %v", err)
	}
	return native, rt
}

func TestSemanticsMatchNative(t *testing.T) {
	p := loopProgram(t, 500)
	native, rt := runBoth(t, p, 100_000)
	if rt.M.Regs != native.Regs {
		t.Errorf("register files differ:\nnative %v\nrio    %v", native.Regs, rt.M.Regs)
	}
	if rt.M.Instrs != native.Instrs {
		t.Errorf("instruction counts differ: native %d rio %d", native.Instrs, rt.M.Instrs)
	}
	if rt.M.Cycles != native.Cycles {
		t.Errorf("guest cycles differ: native %d rio %d", native.Cycles, rt.M.Cycles)
	}
}

func TestBuildsTraceForHotLoop(t *testing.T) {
	p := loopProgram(t, 500)
	_, rt := runBoth(t, p, 100_000)
	if rt.TracesBuilt == 0 {
		t.Fatal("hot loop must be promoted to a trace")
	}
	loopStart := p.Symbols["loop"]
	tr, ok := rt.TraceAt(loopStart)
	if !ok {
		t.Fatalf("no trace at loop head %#x; traces: %v", loopStart, rt.Traces())
	}
	if !tr.IsTrace {
		t.Error("fragment must be marked as trace")
	}
	if tr.ExecCount == 0 {
		t.Error("trace must have executed")
	}
	// The loop body is 4 instructions; a closed loop trace is exactly it.
	if tr.NumInstrs() != 4 {
		t.Errorf("trace length = %d instrs, want 4", tr.NumInstrs())
	}
}

func TestTraceObserverFires(t *testing.T) {
	p := loopProgram(t, 500)
	m := vm.New(p, nil)
	rt := NewRuntime(m)
	var seen []*Fragment
	rt.OnTrace = func(f *Fragment) { seen = append(seen, f) }
	if err := rt.Run(100_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(seen) != rt.TracesBuilt {
		t.Errorf("observer saw %d traces, built %d", len(seen), rt.TracesBuilt)
	}
	if len(seen) == 0 {
		t.Fatal("no traces observed")
	}
}

func TestOverheadAccounting(t *testing.T) {
	p := loopProgram(t, 2000)
	native, rt := runBoth(t, p, 100_000)
	if rt.Overhead == 0 {
		t.Error("runtime must accrue overhead")
	}
	total := rt.TotalCycles()
	// The loop is hot: overhead must be amortized to within 25% of native,
	// and execution can even be slightly faster than native thanks to
	// trace credit.
	ratio := float64(total) / float64(native.Cycles)
	if ratio > 1.25 {
		t.Errorf("slowdown ratio = %.3f, want <= 1.25 for a hot loop", ratio)
	}
	if ratio <= 0 {
		t.Errorf("ratio = %.3f, want positive", ratio)
	}
}

func TestDispatchThenLink(t *testing.T) {
	p := loopProgram(t, 500)
	_, rt := runBoth(t, p, 100_000)
	// A tight loop transitions thousands of times but dispatches only a
	// handful: links and the closed-loop trace absorb the rest.
	if rt.Dispatches > 20 {
		t.Errorf("Dispatches = %d, want few (links must absorb repeats)", rt.Dispatches)
	}
}

func TestInstrumentationHooksFire(t *testing.T) {
	p := loopProgram(t, 2000)
	m := vm.New(p, nil)
	rt := NewRuntime(m)
	var hooked int
	var prologs int
	rt.OnTrace = func(f *Fragment) {
		hooks := make(map[uint64]MemHook)
		for _, i := range f.MemOps() {
			hooks[f.PCs[i]] = func(pc, addr uint64, size uint8, write bool) { hooked++ }
		}
		f.Instr = &Instrumentation{
			Prolog:     func() bool { prologs++; return true },
			Hooks:      hooks,
			PerRefCost: 5,
			PrologCost: 3,
		}
	}
	if err := rt.Run(1_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if prologs == 0 {
		t.Fatal("prolog never ran")
	}
	if hooked == 0 {
		t.Fatal("memory hooks never fired")
	}
	// Every trace iteration has exactly one load; prologs count trace
	// entries, and a closed-loop trace re-enters without leaving, so
	// hooked >= prologs.
	if hooked < prologs {
		t.Errorf("hooked = %d < prologs = %d", hooked, prologs)
	}
}

func TestPrologReplacementSwitchesFragment(t *testing.T) {
	p := loopProgram(t, 5000)
	m := vm.New(p, nil)
	rt := NewRuntime(m)
	replaced := false
	rt.OnTrace = func(f *Fragment) {
		if replaced {
			return
		}
		clone := f.Clone()
		entries := 0
		f.Instr = &Instrumentation{
			Prolog: func() bool {
				entries++
				if entries >= 10 {
					rt.ReplaceTrace(clone)
					replaced = true
					return false
				}
				return true
			},
			PrologCost: 3,
		}
	}
	if err := rt.Run(1_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !replaced {
		t.Fatal("replacement never happened")
	}
	loopStart := p.Symbols["loop"]
	tr, ok := rt.TraceAt(loopStart)
	if !ok {
		t.Fatal("no trace after replacement")
	}
	if tr.Instr != nil {
		t.Error("replacement trace must be clean")
	}
	if tr.ExecCount == 0 {
		t.Error("replacement trace must have executed")
	}
}

func TestSampling(t *testing.T) {
	p := loopProgram(t, 20000)
	m := vm.New(p, nil)
	rt := NewRuntime(m)
	rt.SamplePeriod = 1000
	var inTrace, outTrace int
	rt.OnSample = func(f *Fragment) {
		if f != nil {
			inTrace++
		} else {
			outTrace++
		}
	}
	if err := rt.Run(1_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rt.Samples == 0 {
		t.Fatal("no samples taken")
	}
	if inTrace == 0 {
		t.Error("a hot loop must receive in-trace samples")
	}
	if uint64(inTrace+outTrace) != rt.Samples {
		t.Errorf("observer saw %d samples, runtime counted %d", inTrace+outTrace, rt.Samples)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := &Fragment{
		ID:      1,
		Start:   0x400000,
		Instrs:  []isa.Instr{{Op: isa.OpNop, Mem: isa.NoMem}, {Op: isa.OpRet, Mem: isa.NoMem}},
		PCs:     []uint64{0x400000, 0x400010},
		IsTrace: true,
		blocks:  []uint64{0x400000},
	}
	f.Instr = &Instrumentation{}
	f.link(0x400020)
	c := f.Clone()
	if c.Instr != nil {
		t.Error("clone must not carry instrumentation")
	}
	if c.Linked(0x400020) {
		t.Error("clone must not carry links")
	}
	c.Instrs[0].Op = isa.OpHalt
	if f.Instrs[0].Op != isa.OpNop {
		t.Error("clone must deep-copy instructions")
	}
	if c.ExecCount != 0 {
		t.Error("clone must reset execution count")
	}
}

func TestCallReturnAcrossFragments(t *testing.T) {
	b := program.NewBuilder("callret")
	e := b.Block("entry")
	e.MovI(isa.R0, 0)
	e.MovI(isa.R1, 0)
	l := b.Block("loop")
	l.Call("inc")
	l.AddI(isa.R1, isa.R1, 1)
	l.BrI(isa.CondLT, isa.R1, 200, "loop")
	b.Block("done").Halt()
	f := b.Block("inc")
	f.AddI(isa.R0, isa.R0, 2)
	f.Ret()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	native := vm.New(p, nil)
	if err := native.Run(100_000); err != nil {
		t.Fatalf("native: %v", err)
	}
	m := vm.New(p, nil)
	rt := NewRuntime(m)
	if err := rt.Run(100_000); err != nil {
		t.Fatalf("rio: %v", err)
	}
	if m.Regs[isa.R0] != native.Regs[isa.R0] || m.Regs[isa.R0] != 400 {
		t.Errorf("R0 = %d (native %d), want 400", m.Regs[isa.R0], native.Regs[isa.R0])
	}
	if rt.IndirectLks == 0 {
		t.Error("returns must pay indirect lookups")
	}
}

func TestBudgetError(t *testing.T) {
	b := program.NewBuilder("spin")
	b.Block("entry").Jmp("entry")
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	rt := NewRuntime(vm.New(p, nil))
	if err := rt.Run(1000); !errors.Is(err, ErrNotHalted) {
		t.Errorf("Run = %v, want ErrNotHalted", err)
	}
}

func TestGroundTruthModelSeesSameAccesses(t *testing.T) {
	p := loopProgram(t, 3000)
	nativeModel := &countingModel{}
	native := vm.New(p, nativeModel)
	if err := native.Run(1_000_000); err != nil {
		t.Fatalf("native: %v", err)
	}
	rioModel := &countingModel{}
	m := vm.New(p, rioModel)
	rt := NewRuntime(m)
	if err := rt.Run(1_000_000); err != nil {
		t.Fatalf("rio: %v", err)
	}
	if nativeModel.n != rioModel.n {
		t.Errorf("memory model saw %d accesses under rio, %d native", rioModel.n, nativeModel.n)
	}
}

type countingModel struct{ n uint64 }

func (c *countingModel) Access(addr uint64, size uint8, write bool) uint64 {
	c.n++
	return 0
}

func TestBlockCacheCapacityFlush(t *testing.T) {
	// A loop over many distinct blocks with a tiny block cache: the
	// runtime must flush repeatedly yet preserve program semantics.
	b := program.NewBuilder("bigcode")
	e := b.Block("entry")
	e.MovI(isa.R0, 0)
	e.MovI(isa.R8, 0)
	b.Block("rep")
	for i := 0; i < 40; i++ {
		blk := b.Block(blockName2(i))
		blk.AddI(isa.R0, isa.R0, int64(i))
		blk.AddI(isa.R0, isa.R0, 1)
	}
	fin := b.Block("repend")
	fin.AddI(isa.R8, isa.R8, 1)
	fin.BrI(isa.CondLT, isa.R8, 30, "rep")
	b.Block("done").Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	native := vm.New(p, nil)
	if err := native.Run(1_000_000); err != nil {
		t.Fatalf("native: %v", err)
	}
	m := vm.New(p, nil)
	rt := NewRuntime(m)
	rt.HotThreshold = 1 << 30 // no traces: stress the block cache alone
	rt.BlockCacheCap = 30     // far smaller than the 120-instr loop body
	if err := rt.Run(1_000_000); err != nil {
		t.Fatalf("rio: %v", err)
	}
	if rt.BlockFlushes == 0 {
		t.Fatal("tiny block cache must flush")
	}
	if m.Regs != native.Regs {
		t.Error("register state diverged under cache flushing")
	}
	// Rebuild churn must show up as extra block builds.
	if rt.BlocksBuilt <= 43 {
		t.Errorf("BlocksBuilt = %d; flushing must force rebuilds", rt.BlocksBuilt)
	}
}

func blockName2(i int) string { return "blk" + string(rune('a'+i/26)) + string(rune('a'+i%26)) }
