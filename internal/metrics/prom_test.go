package metrics

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

// checkExposition validates a Prometheus 0.0.4 text exposition the way a
// scraper's parser would: every non-comment line is `name[{labels}] value`
// with a legal metric name and a parseable value, every sample is preceded
// by a # TYPE declaration for its family, histogram buckets are cumulative
// and end at le="+Inf" with the family's _count. Returns the declared
// families by type.
func checkExposition(t *testing.T, text string) map[string]string {
	t.Helper()
	types := make(map[string]string)
	lastBucket := make(map[string]uint64)  // family -> running cumulative count
	lastInf := make(map[string]uint64)     // family -> +Inf bucket value
	sampleCount := make(map[string]uint64) // family -> _count value
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		name, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("line %d: unparseable value %q: %v", ln+1, val, err)
		}
		labels := ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("line %d: unterminated label set in %q", ln+1, name)
			}
			labels = name[i+1 : len(name)-1]
			name = name[:i]
		}
		for i, r := range name {
			ok := r == '_' || r == ':' ||
				(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
				(r >= '0' && r <= '9' && i > 0)
			if !ok {
				t.Fatalf("line %d: illegal rune %q in metric name %q", ln+1, r, name)
			}
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count", "_max"} {
			if f := strings.TrimSuffix(name, suffix); f != name && types[f] != "" {
				family = f
			}
		}
		if types[family] == "" {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln+1, name)
		}
		if strings.HasSuffix(name, "_bucket") {
			u, _ := strconv.ParseUint(val, 10, 64)
			if u < lastBucket[family] {
				t.Fatalf("line %d: bucket count %d below previous %d (not cumulative)",
					ln+1, u, lastBucket[family])
			}
			lastBucket[family] = u
			if labels == `le="+Inf"` {
				lastInf[family] = u
			}
		}
		if strings.HasSuffix(name, "_count") {
			u, _ := strconv.ParseUint(val, 10, 64)
			sampleCount[family] = u
		}
	}
	for family, typ := range types {
		if typ != "histogram" {
			continue
		}
		inf, ok := lastInf[family]
		if !ok {
			t.Errorf("histogram %s has no le=\"+Inf\" bucket", family)
		}
		if inf != sampleCount[family] {
			t.Errorf("histogram %s: +Inf bucket %d != _count %d",
				family, inf, sampleCount[family])
		}
	}
	return types
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("umi.traces.seen").Add(17)
	r.Gauge("umi.pool.depth").Set(3)
	h := r.Histogram("umi.analysis.latency", ExpBuckets(1, 4))
	for _, v := range []uint64{1, 2, 2, 3, 9, 100} {
		h.Observe(v)
	}
	var sb strings.Builder
	WritePrometheus(&sb, r.Snapshot())
	out := sb.String()

	types := checkExposition(t, out)
	if types["umi_traces_seen"] != "counter" {
		t.Errorf("sanitized counter not declared: %v", types)
	}
	if types["umi_pool_depth"] != "gauge" || types["umi_pool_depth_max"] != "gauge" {
		t.Errorf("gauge and _max companion not declared: %v", types)
	}
	if types["umi_analysis_latency"] != "histogram" {
		t.Errorf("histogram not declared: %v", types)
	}
	for _, want := range []string{
		"umi_traces_seen 17\n",
		"umi_pool_depth 3\n",
		"umi_pool_depth_max 3\n",
		"umi_analysis_latency_sum 117\n",
		"umi_analysis_latency_count 6\n",
		`umi_analysis_latency_bucket{le="+Inf"} 6` + "\n",
		// bounds 1,2,4,8: cumulative 1,3,4,4 then 9 and 100 overflow
		`umi_analysis_latency_bucket{le="1"} 1` + "\n",
		`umi_analysis_latency_bucket{le="2"} 3` + "\n",
		`umi_analysis_latency_bucket{le="4"} 4` + "\n",
		`umi_analysis_latency_bucket{le="8"} 4` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Deterministic: a second render is byte-identical.
	var again strings.Builder
	WritePrometheus(&again, r.Snapshot())
	if again.String() != out {
		t.Error("exposition not deterministic for a fixed snapshot")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"umi.traces.seen": "umi_traces_seen",
		"9lives":          "_lives",
		"a:b_c9":          "a:b_c9",
		"sp ace-dash":     "sp_ace_dash",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusEmptyAndDiff is the Diff-agreement regression: a
// histogram diffed against an empty snapshot must render identically to
// the original, a self-diff must render as a valid all-zero histogram, and
// a zero-valued HistogramValue (Diff against a never-observed name) must
// still produce a well-formed histogram with an +Inf bucket — never a
// division or a NaN.
func TestWritePrometheusEmptyAndDiff(t *testing.T) {
	var sb strings.Builder
	WritePrometheus(&sb, Snapshot{})
	if sb.String() != "" {
		t.Errorf("empty snapshot rendered %q, want empty", sb.String())
	}

	r := NewRegistry()
	h := r.Histogram("lat", ExpBuckets(1, 2)) // bounds 1,2 + overflow
	h.Observe(1)
	h.Observe(5)
	cur := r.Snapshot()

	render := func(s Snapshot) string {
		var b strings.Builder
		WritePrometheus(&b, s)
		return b.String()
	}
	if got, want := render(cur.Diff(Snapshot{})), render(cur); got != want {
		t.Errorf("diff against empty differs from original:\n%s\nvs\n%s", got, want)
	}

	self := cur.Diff(cur)
	out := render(self)
	checkExposition(t, out)
	for _, want := range []string{"lat_sum 0\n", "lat_count 0\n", `lat_bucket{le="+Inf"} 0` + "\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("self-diff missing %q:\n%s", want, out)
		}
	}

	// A zero HistogramValue has no buckets at all; the renderer must
	// synthesize the +Inf bucket.
	zero := Snapshot{Histograms: map[string]HistogramValue{"ghost": {}}}
	out = render(zero)
	checkExposition(t, out)
	if !strings.Contains(out, `ghost_bucket{le="+Inf"} 0`+"\n") {
		t.Errorf("zero histogram missing synthesized +Inf bucket:\n%s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("zero histogram rendered NaN:\n%s", out)
	}
}

func TestPromOverflowBound(t *testing.T) {
	// A bucket at the MaxUint64 bound must render as +Inf, not as the
	// literal integer.
	s := Snapshot{Histograms: map[string]HistogramValue{
		"h": {Count: 1, Sum: 3, Buckets: []Bucket{{Le: math.MaxUint64, Count: 1}}},
	}}
	var sb strings.Builder
	WritePrometheus(&sb, s)
	if strings.Contains(sb.String(), fmt.Sprintf("%d", uint64(math.MaxUint64))) {
		t.Errorf("overflow bound leaked as integer:\n%s", sb.String())
	}
	checkExposition(t, sb.String())
}
