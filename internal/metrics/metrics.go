// Package metrics is the runtime's self-observability substrate: a small,
// dependency-free registry of atomic counters, gauges, and fixed-bucket
// histograms. UMI's whole pitch is that introspection is cheap enough to
// leave on in production; this package is how the runtime measures its own
// cost — instrumentation events, analysis latency, pipeline queue
// pressure, profile fill and filter rates — continuously, the way PROMPT
// and Examem treat profiler self-accounting as a first-class output.
//
// The hot paths (Counter.Inc, Gauge.Set, Histogram.Observe) are single
// atomic operations and never allocate; allocation happens only at
// registration and snapshot time. All values may be updated and read from
// any goroutine: each metric is individually consistent, a Snapshot is not
// a cross-metric atomic cut (documented per call site where it matters).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing (or externally synced) uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Store overwrites the value; used to mirror counters owned elsewhere
// (e.g. the rio runtime's fragment-build counts) into the registry at a
// synchronization point.
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, backlog) that also tracks
// its high-water mark.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set records the current level and raises the high-water mark if needed.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Add shifts the level by d and returns the new value, raising the
// high-water mark if needed.
func (g *Gauge) Add(d int64) int64 {
	v := g.v.Add(d)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return v
		}
	}
}

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Histogram is a fixed-bucket distribution of uint64 observations
// (latencies in nanoseconds, sizes in rows). Bucket bounds are upper
// bounds, ascending; observations above the last bound land in an
// implicit overflow bucket.
type Histogram struct {
	bounds  []uint64
	buckets []atomic.Uint64 // len(bounds)+1
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // initialized to MaxUint64
	max     atomic.Uint64
}

func newHistogram(bounds []uint64) *Histogram {
	h := &Histogram{
		bounds:  append([]uint64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	h.min.Store(math.MaxUint64)
	return h
}

// Observe records one value. Allocation-free: a binary search over the
// bounds plus four atomic updates.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.min.Load()
		if v >= m || h.min.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// ExpBuckets returns n upper bounds starting at start and doubling each
// step — the histogram scheme the runtime uses for latencies (1µs, 2µs,
// 4µs, ... when start is 1000).
func ExpBuckets(start uint64, n int) []uint64 {
	out := make([]uint64, n)
	b := start
	for i := 0; i < n; i++ {
		out[i] = b
		b *= 2
	}
	return out
}

// Registry holds named metrics. Registration is idempotent: asking for an
// existing name returns the same metric.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// GaugeValue is a gauge's snapshot: current level and high-water mark.
type GaugeValue struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Bucket is one histogram bucket: the count of observations at or below
// the upper bound Le. The overflow bucket carries Le == MaxUint64.
type Bucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramValue is a histogram's snapshot.
type HistogramValue struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket
// counts, returning the upper bound of the bucket holding that rank (Max
// for the overflow bucket). Returns 0 when the histogram is empty.
func (h HistogramValue) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank == 0 {
		rank = 1
	}
	var acc uint64
	for _, b := range h.Buckets {
		acc += b.Count
		if acc >= rank {
			if b.Le == math.MaxUint64 {
				return h.Max
			}
			return b.Le
		}
	}
	return h.Max
}

// Mean returns the average observation (0 when empty).
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a point-in-time copy of every registered metric, marshalable
// with encoding/json and renderable with String.
type Snapshot struct {
	Counters   map[string]uint64         `json:"counters,omitempty"`
	Gauges     map[string]GaugeValue     `json:"gauges,omitempty"`
	Histograms map[string]HistogramValue `json:"histograms,omitempty"`
}

// Snapshot copies every metric's current value. Each metric is read
// atomically; the set as a whole is not an atomic cut across concurrent
// writers.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]GaugeValue, len(r.gauges)),
		Histograms: make(map[string]HistogramValue, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeValue{Value: g.Load(), Max: g.Max()}
	}
	for name, h := range r.hists {
		hv := HistogramValue{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
		if min := h.min.Load(); min != math.MaxUint64 {
			hv.Min = min
		}
		hv.Buckets = make([]Bucket, 0, len(h.buckets))
		for i := range h.buckets {
			le := uint64(math.MaxUint64)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hv.Buckets = append(hv.Buckets, Bucket{Le: le, Count: h.buckets[i].Load()})
		}
		s.Histograms[name] = hv
	}
	return s
}

// Counter returns a snapshotted counter value (0 when absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns a snapshotted gauge value (zero value when absent).
func (s Snapshot) Gauge(name string) GaugeValue { return s.Gauges[name] }

// Histogram returns a snapshotted histogram (zero value when absent).
func (s Snapshot) Histogram(name string) HistogramValue { return s.Histograms[name] }

// Diff returns the change from prev to s, the interval view a periodic
// scraper (the /metrics/delta endpoint, a rate display) wants. Counters
// subtract; a counter absent from prev diffs against zero, and a counter
// that went backwards (an externally synced mirror that was re-stored
// lower) clamps to zero rather than wrapping. Gauges are levels, not
// accumulations, so the current value and high-water mark pass through
// unchanged. Histograms subtract count, sum, and per-bucket counts
// (bucket-by-bucket — the bounds are fixed at registration); min and max
// pass through, since the interval's extremes are not recoverable from
// two cumulative snapshots.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]GaugeValue, len(s.Gauges)),
		Histograms: make(map[string]HistogramValue, len(s.Histograms)),
	}
	for name, cur := range s.Counters {
		old := prev.Counters[name]
		if cur < old {
			old = cur
		}
		d.Counters[name] = cur - old
	}
	for name, g := range s.Gauges {
		d.Gauges[name] = g
	}
	for name, cur := range s.Histograms {
		old := prev.Histograms[name]
		hv := HistogramValue{Min: cur.Min, Max: cur.Max}
		if cur.Count >= old.Count {
			hv.Count = cur.Count - old.Count
		}
		if cur.Sum >= old.Sum {
			hv.Sum = cur.Sum - old.Sum
		}
		hv.Buckets = make([]Bucket, 0, len(cur.Buckets))
		for i, b := range cur.Buckets {
			if i < len(old.Buckets) && old.Buckets[i].Le == b.Le && b.Count >= old.Buckets[i].Count {
				b.Count -= old.Buckets[i].Count
			}
			hv.Buckets = append(hv.Buckets, b)
		}
		d.Histograms[name] = hv
	}
	return d
}

// String renders the snapshot as an aligned, name-sorted plain-text block:
// counters first, then gauges (value / high-water mark), then histograms
// (count, mean, p50/p90/p99, max). Deterministic ordering; the values
// themselves (latencies) naturally vary run to run.
func (s Snapshot) String() string {
	var sb strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	for n := range s.Gauges {
		if len(n) > width {
			width = len(n)
		}
	}
	for n := range s.Histograms {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, n := range names {
		fmt.Fprintf(&sb, "  %-*s  %d\n", width, n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := s.Gauges[n]
		fmt.Fprintf(&sb, "  %-*s  %d (max %d)\n", width, n, g.Value, g.Max)
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&sb, "  %-*s  n=%d mean=%.0f p50=%d p90=%d p99=%d max=%d\n",
			width, n, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max)
	}
	return sb.String()
}
