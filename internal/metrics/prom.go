package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) of a Snapshot, so any
// standard scraper can poll the runtime's self-observability registry
// mid-run. The mapping:
//
//   - counters  → counter samples
//   - gauges    → a gauge sample plus a companion <name>_max gauge for the
//     high-water mark (Prometheus has no native max-tracking gauge)
//   - histograms → classic cumulative-bucket histograms: the registry
//     stores per-bucket counts, so buckets are accumulated here, with the
//     overflow bucket rendered as le="+Inf" and _sum/_count appended
//
// Metric names are sanitized to the Prometheus grammar (dots and every
// other illegal rune become underscores). Output is name-sorted, so a
// fixed snapshot renders byte-identically.

// PromContentType is the Content-Type an HTTP handler should serve the
// exposition under.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registry metric name ("umi.traces.seen") into a
// Prometheus metric name ("umi_traces_seen").
func promName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			r = '_'
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

// WritePrometheus renders the snapshot as Prometheus text exposition.
func WritePrometheus(w io.Writer, s Snapshot) {
	WritePrometheusFleet(w, []LabeledSnapshot{{Snap: s}})
}

// LabeledSnapshot pairs one snapshot with the value of its `session`
// label in a fleet exposition. An empty Label renders unlabeled samples
// (the single-session exposition).
type LabeledSnapshot struct {
	Label string
	Snap  Snapshot
}

// labelEscape escapes a label value per the exposition grammar.
func labelEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// sampleLabels renders the label set for one sample: the session label
// (when present) joined with any extra pre-rendered `k="v"` pairs.
func sampleLabels(session string, extra ...string) string {
	parts := make([]string, 0, 1+len(extra))
	if session != "" {
		parts = append(parts, fmt.Sprintf("session=%q", labelEscape(session)))
	}
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheusFleet renders many sessions' snapshots as one valid text
// exposition: metric families are grouped across sessions — each family's
// TYPE line appears exactly once, followed by one labeled sample per
// session carrying it — because the exposition format forbids repeating a
// family. Sessions render in slice order (the caller sorts by label);
// family names sort within each metric kind, so a fixed fleet renders
// byte-identically.
func WritePrometheusFleet(w io.Writer, sessions []LabeledSnapshot) {
	family := func(collect func(Snapshot) []string) []string {
		seen := map[string]bool{}
		var names []string
		for _, ls := range sessions {
			for _, n := range collect(ls.Snap) {
				if !seen[n] {
					seen[n] = true
					names = append(names, n)
				}
			}
		}
		sort.Strings(names)
		return names
	}

	for _, n := range family(func(s Snapshot) []string { return mapKeys(s.Counters) }) {
		pn := promName(n)
		fmt.Fprintf(w, "# TYPE %s counter\n", pn)
		for _, ls := range sessions {
			if v, ok := ls.Snap.Counters[n]; ok {
				fmt.Fprintf(w, "%s%s %d\n", pn, sampleLabels(ls.Label), v)
			}
		}
	}

	for _, n := range family(func(s Snapshot) []string { return mapKeys(s.Gauges) }) {
		pn := promName(n)
		fmt.Fprintf(w, "# TYPE %s gauge\n", pn)
		for _, ls := range sessions {
			if g, ok := ls.Snap.Gauges[n]; ok {
				fmt.Fprintf(w, "%s%s %d\n", pn, sampleLabels(ls.Label), g.Value)
			}
		}
		fmt.Fprintf(w, "# TYPE %s_max gauge\n", pn)
		for _, ls := range sessions {
			if g, ok := ls.Snap.Gauges[n]; ok {
				fmt.Fprintf(w, "%s_max%s %d\n", pn, sampleLabels(ls.Label), g.Max)
			}
		}
	}

	for _, n := range family(func(s Snapshot) []string { return mapKeys(s.Histograms) }) {
		pn := promName(n)
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		for _, ls := range sessions {
			h, ok := ls.Snap.Histograms[n]
			if !ok {
				continue
			}
			cum := uint64(0)
			for _, b := range h.Buckets {
				cum += b.Count
				le := "+Inf"
				if b.Le != math.MaxUint64 {
					le = fmt.Sprintf("%d", b.Le)
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", pn, sampleLabels(ls.Label, fmt.Sprintf("le=%q", le)), cum)
			}
			if len(h.Buckets) == 0 {
				// An empty bucket list (a zero-valued HistogramValue, e.g.
				// out of Snapshot.Diff against a never-observed name) still
				// needs the +Inf bucket for the exposition to be a valid
				// histogram.
				fmt.Fprintf(w, "%s_bucket%s %d\n", pn, sampleLabels(ls.Label, `le="+Inf"`), h.Count)
			}
			fmt.Fprintf(w, "%s_sum%s %d\n", pn, sampleLabels(ls.Label), h.Sum)
			fmt.Fprintf(w, "%s_count%s %d\n", pn, sampleLabels(ls.Label), h.Count)
		}
	}
}

func mapKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
