package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) of a Snapshot, so any
// standard scraper can poll the runtime's self-observability registry
// mid-run. The mapping:
//
//   - counters  → counter samples
//   - gauges    → a gauge sample plus a companion <name>_max gauge for the
//     high-water mark (Prometheus has no native max-tracking gauge)
//   - histograms → classic cumulative-bucket histograms: the registry
//     stores per-bucket counts, so buckets are accumulated here, with the
//     overflow bucket rendered as le="+Inf" and _sum/_count appended
//
// Metric names are sanitized to the Prometheus grammar (dots and every
// other illegal rune become underscores). Output is name-sorted, so a
// fixed snapshot renders byte-identically.

// PromContentType is the Content-Type an HTTP handler should serve the
// exposition under.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registry metric name ("umi.traces.seen") into a
// Prometheus metric name ("umi_traces_seen").
func promName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			r = '_'
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

// WritePrometheus renders the snapshot as Prometheus text exposition.
func WritePrometheus(w io.Writer, s Snapshot) {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n])
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := s.Gauges[n]
		pn := promName(n)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, g.Value)
		fmt.Fprintf(w, "# TYPE %s_max gauge\n%s_max %d\n", pn, pn, g.Max)
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := promName(n)
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		cum := uint64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if b.Le != math.MaxUint64 {
				le = fmt.Sprintf("%d", b.Le)
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum)
		}
		if len(h.Buckets) == 0 {
			// An empty bucket list (a zero-valued HistogramValue, e.g. out
			// of Snapshot.Diff against a never-observed name) still needs
			// the +Inf bucket for the exposition to be a valid histogram.
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		}
		fmt.Fprintf(w, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
	}
}
